// Package repro is a from-scratch Go reproduction of Elliott et al.,
// "Combining Partial Redundancy and Checkpointing for HPC" (ICDCS 2012):
// a partial-redundancy message-passing layer (RedMPI equivalent) over an
// in-process MPI runtime, coordinated checkpoint/restart, Poisson failure
// injection, the paper's full analytic model, a Monte-Carlo cluster
// simulator, and a harness regenerating every table and figure of the
// evaluation.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-versus-measured results.
// The benchmarks in bench_test.go regenerate each published artefact:
//
//	go test -bench=. -benchmem
package repro
