// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per published artefact), plus ablation
// benches for the design choices DESIGN.md calls out. Key quantities are
// attached via b.ReportMetric so `go test -bench=. -benchmem` prints the
// reproduced numbers alongside the timings.
package repro_test

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/expt"
	"repro/internal/model"
	"repro/internal/sim"
)

// --- Table 1: cluster reliability survey (static context) ---

func BenchmarkTable1ClusterSurvey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := expt.Table1().Format(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- Table 2: 168 h job, 5 yr MTBF, work breakdown vs node count ---

func BenchmarkTable2WorkBreakdown(b *testing.B) {
	var work100k float64
	for i := 0; i < b.N; i++ {
		_, breakdowns, err := expt.Table2(expt.DefaultBreakdownParams())
		if err != nil {
			b.Fatal(err)
		}
		work100k = breakdowns[3].Work
	}
	// Paper reports 35% useful work at 100k nodes.
	b.ReportMetric(work100k*100, "work%@100k")
}

// --- Table 3: 100k-node job, varied MTBF ---

func BenchmarkTable3VariedMTBF(b *testing.B) {
	var work168 float64
	for i := 0; i < b.N; i++ {
		_, breakdowns, err := expt.Table3(expt.DefaultBreakdownParams())
		if err != nil {
			b.Fatal(err)
		}
		work168 = breakdowns[0].Work
	}
	b.ReportMetric(work168*100, "work%@168h")
}

// --- Figure 2: reliability vs redundancy degree ---

func BenchmarkFigure2Reliability(b *testing.B) {
	var rel3x float64
	for i := 0; i < b.N; i++ {
		f, err := expt.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		series := f.Series[1] // θ=5y, α=0.2
		rel3x = series.Y[len(series.Y)-1]
	}
	b.ReportMetric(rel3x, "R_sys@3x")
}

// --- Figures 4-6: modeled T_total vs degree for three configurations ---

func benchFigureConfig(b *testing.B, idx int) {
	b.Helper()
	var fc expt.FigureCurve
	for i := 0; i < b.N; i++ {
		curves, err := expt.Figures4to6()
		if err != nil {
			b.Fatal(err)
		}
		fc = curves[idx]
	}
	b.ReportMetric(fc.BestDegree, "best_r")
	b.ReportMetric(fc.TMin, "Tmin_h")
	b.ReportMetric(fc.CheckpointsAtR1, "chkpts@r1")
}

func BenchmarkFigure4Config1(b *testing.B) { benchFigureConfig(b, 0) }
func BenchmarkFigure5Config2(b *testing.B) { benchFigureConfig(b, 1) }
func BenchmarkFigure6Config3(b *testing.B) { benchFigureConfig(b, 2) }

// --- Table 4 / Figures 8-9: the combined C/R + redundancy experiment ---

func table4Params(runs int) expt.Table4Params {
	p := expt.DefaultTable4Params()
	p.Runs = runs
	return p
}

func BenchmarkTable4CombinedCRRedundancy(b *testing.B) {
	var meanDev float64
	var best6h float64
	for i := 0; i < b.N; i++ {
		res, err := expt.Table4(table4Params(150))
		if err != nil {
			b.Fatal(err)
		}
		var dev float64
		var cells int
		for r := range res.Minutes {
			for c := range res.Minutes[r] {
				paper := expt.PaperTable4Minutes[r][c]
				dev += math.Abs(res.Minutes[r][c]-paper) / paper
				cells++
			}
		}
		meanDev = dev / float64(cells)
		best6h = res.BestDegree[0]
	}
	b.ReportMetric(meanDev, "relDev_vs_paper")
	b.ReportMetric(best6h, "best_r@6h")
}

// benchTable4AtParallelism runs the full Table 4 grid pinned to the given
// worker count; the engine guarantees identical output at every setting,
// so the serial/parallel pair measures pure scheduling speedup.
func benchTable4AtParallelism(b *testing.B, workers int) {
	b.Helper()
	p := table4Params(150)
	p.Parallelism = workers
	var best6h float64
	for i := 0; i < b.N; i++ {
		res, err := expt.Table4(p)
		if err != nil {
			b.Fatal(err)
		}
		best6h = res.BestDegree[0]
	}
	b.ReportMetric(best6h, "best_r@6h")
}

// BenchmarkTable4Serial is the pre-parallel baseline: one worker walks
// all 45 cells sequentially.
func BenchmarkTable4Serial(b *testing.B) { benchTable4AtParallelism(b, 1) }

// BenchmarkTable4Parallel spreads the 45-cell grid across GOMAXPROCS
// workers. Compare against BenchmarkTable4Serial; at GOMAXPROCS ≥ 4 the
// grid speedup is expected to exceed 3x while the emitted matrix stays
// byte-identical (see TestTable4DeterministicAcrossParallelism).
func BenchmarkTable4Parallel(b *testing.B) { benchTable4AtParallelism(b, 0) }

func BenchmarkFigure8Lines(b *testing.B) {
	res, err := expt.Table4(table4Params(80))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := expt.Figure8(res).Format(); len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure9Surface(b *testing.B) {
	res, err := expt.Table4(table4Params(80))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := expt.Figure9(res).Format(); len(out) == 0 {
			b.Fatal("empty surface")
		}
	}
}

// --- Table 5 / Figure 10: failure-free redundancy overhead ---

func BenchmarkTable5FailureFreeOverhead(b *testing.B) {
	// Live measurement through the functional redundancy stack; small
	// configuration so the full sweep stays benchmark-friendly.
	p := expt.Table5LiveParams{
		Ranks:        4,
		Grid:         6,
		Iterations:   20,
		SendDelay:    50 * time.Microsecond,
		ComputeDelay: time.Millisecond,
		Degrees:      []float64{1, 1.5, 2, 2.5, 3},
	}
	var dilation float64
	for i := 0; i < b.N; i++ {
		_, secs, err := expt.Table5Live(p)
		if err != nil {
			b.Fatal(err)
		}
		dilation = secs[len(secs)-1] / secs[0]
	}
	b.ReportMetric(dilation, "runtime_3x/1x")
}

func BenchmarkFigure10Overhead(b *testing.B) {
	var firstStep float64
	for i := 0; i < b.N; i++ {
		_, f := expt.Table5()
		obs := f.Series[0].Y
		firstStep = obs[1] - obs[0]
	}
	// Paper: the 1x→1.25x jump (9 min) is the largest single step.
	b.ReportMetric(firstStep, "min_1x_to_1.25x")
}

// --- Figure 11: simplified §6 model ---

func BenchmarkFigure11SimplifiedModel(b *testing.B) {
	var t1x6h float64
	for i := 0; i < b.N; i++ {
		_, minutes, err := expt.Figure11(0)
		if err != nil {
			b.Fatal(err)
		}
		t1x6h = minutes[0][0]
	}
	b.ReportMetric(t1x6h, "model_min@1x_6h")
}

// --- Figure 12: observed vs modeled + Q-Q fit ---

func BenchmarkFigure12ObservedVsModeled(b *testing.B) {
	t4, err := expt.Table4(table4Params(100))
	if err != nil {
		b.Fatal(err)
	}
	_, minutes, err := expt.Figure11(0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var corr float64
	for i := 0; i < b.N; i++ {
		res, err := expt.Figure12(t4, minutes, nil)
		if err != nil {
			b.Fatal(err)
		}
		corr = res.QQCorrelation
	}
	b.ReportMetric(corr, "QQ_corr")
}

// --- Figures 13-14: weak-scaling crossovers ---

func BenchmarkFigure13Crossovers30k(b *testing.B) {
	var n12, n13 float64
	for i := 0; i < b.N; i++ {
		res, err := expt.Scaling(expt.DefaultScalingParams(), 30000, "fig13")
		if err != nil {
			b.Fatal(err)
		}
		n12, n13 = float64(res.Crossover12), float64(res.Crossover13)
	}
	b.ReportMetric(n12, "crossover_1x2x")
	b.ReportMetric(n13, "crossover_1x3x")
}

func BenchmarkFigure14Crossovers200k(b *testing.B) {
	var twoForOne, n23 float64
	for i := 0; i < b.N; i++ {
		res, err := expt.Scaling(expt.DefaultScalingParams(), 200000, "fig14")
		if err != nil {
			b.Fatal(err)
		}
		twoForOne, n23 = float64(res.TwoForOne), float64(res.Crossover23)
	}
	b.ReportMetric(twoForOne, "two_jobs_for_one_N")
	b.ReportMetric(n23, "crossover_2x3x")
}

// --- Ablations: design choices DESIGN.md calls out ---

// BenchmarkAblationFailureLaws quantifies the divergence between the
// paper's exponentialised failure model (Eq. 10 rate) and the exact
// sphere renewal process at 2x, 6 h MTBF.
func BenchmarkAblationFailureLaws(b *testing.B) {
	base := sim.Config{
		N: 128, Degree: 2, Work: 46 * model.Minute, Alpha: 0.2,
		NodeMTBF: 6 * model.Hour, CheckpointCost: 120, RestartCost: 500,
	}
	var modelMin, sphereMin float64
	for i := 0; i < b.N; i++ {
		m := base
		m.Law = sim.LawModelRate
		em, err := sim.Run(m, 150, 3)
		if err != nil {
			b.Fatal(err)
		}
		s := base
		s.Law = sim.LawSphere
		es, err := sim.Run(s, 150, 3)
		if err != nil {
			b.Fatal(err)
		}
		modelMin, sphereMin = em.Total.Mean/60, es.Total.Mean/60
	}
	b.ReportMetric(modelMin, "modelLaw_min")
	b.ReportMetric(sphereMin, "sphereLaw_min")
}

// BenchmarkAblationYoungVsDaly compares the two optimal-interval formulas
// end to end through Eq. 14.
func BenchmarkAblationYoungVsDaly(b *testing.B) {
	p := model.Params{
		N: 128, Work: 46 * model.Minute, Alpha: 0.2,
		NodeMTBF: 12 * model.Hour, CheckpointCost: 120, RestartCost: 500,
	}
	var daly, young float64
	for i := 0; i < b.N; i++ {
		d, err := model.Evaluate(p, 2, model.Options{})
		if err != nil {
			b.Fatal(err)
		}
		y, err := model.Evaluate(p, 2, model.Options{UseYoung: true})
		if err != nil {
			b.Fatal(err)
		}
		daly, young = d.Total/60, y.Total/60
	}
	b.ReportMetric(daly, "daly_min")
	b.ReportMetric(young, "young_min")
}

// BenchmarkAblationObservedVsLinearOverhead re-runs Table 4's 30 h row
// with Eq. 1's linear dilation instead of the measured Table 5 overhead.
func BenchmarkAblationObservedVsLinearOverhead(b *testing.B) {
	var observed, linear float64
	for i := 0; i < b.N; i++ {
		po := table4Params(100)
		ro, err := expt.Table4(po)
		if err != nil {
			b.Fatal(err)
		}
		pl := table4Params(100)
		pl.UseObservedOverhead = false
		rl, err := expt.Table4(pl)
		if err != nil {
			b.Fatal(err)
		}
		last := len(expt.MTBFHours) - 1
		observed = ro.Minutes[last][8]
		linear = rl.Minutes[last][8]
	}
	b.ReportMetric(observed, "obs_3x@30h_min")
	b.ReportMetric(linear, "lin_3x@30h_min")
}

// BenchmarkAblationIncrementalCheckpoint measures the bytes saved by
// page-granular incremental checkpointing on a CG-like state where only a
// fraction of the image mutates between snapshots.
func BenchmarkAblationIncrementalCheckpoint(b *testing.B) {
	const stateSize = 1 << 20 // 1 MiB image
	var fullBytes, incrBytes float64
	for i := 0; i < b.N; i++ {
		state := make([]byte, stateSize)
		enc := &checkpoint.IncrementalEncoder{PageSize: 4096, FullEvery: 16}
		fullBytes, incrBytes = 0, 0
		for snap := 0; snap < 16; snap++ {
			// Mutate ~2% of pages, like an iterative solver touching its
			// active working set.
			for p := 0; p < 5; p++ {
				idx := (snap*7919 + p*104729) % stateSize
				state[idx]++
			}
			img, st := enc.Encode(state)
			fullBytes += float64(st.RawBytes)
			incrBytes += float64(len(img))
		}
	}
	b.ReportMetric(fullBytes/incrBytes, "size_reduction_x")
}

// BenchmarkAblationCompressedCheckpoint measures DEFLATE on a repetitive
// scientific-state image through the storage middleware.
func BenchmarkAblationCompressedCheckpoint(b *testing.B) {
	state := bytes.Repeat([]byte{0, 0, 0, 0, 0, 0, 240, 63}, 1<<15) // ~1.0 float64 pattern
	var ratio float64
	for i := 0; i < b.N; i++ {
		inner := checkpoint.NewMemStorage()
		s := checkpoint.NewCompressedStorage(inner)
		if err := s.Write(1, 0, state); err != nil {
			b.Fatal(err)
		}
		if err := s.Commit(1, 1); err != nil {
			b.Fatal(err)
		}
		stored, err := inner.Read(1, 0)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(len(state)) / float64(len(stored))
	}
	b.ReportMetric(ratio, "compression_x")
}
