// Partial redundancy sweep: measure the failure-free runtime and message
// dilation of the same application at every redundancy degree from 1x to
// 3x in quarter steps — the live analogue of the paper's Table 5 /
// Figure 10 experiment — and compare the shape against Eq. 1.
//
//	go run ./examples/partialredundancy
package main

import (
	"fmt"
	"log"

	"repro/internal/expt"
	"repro/internal/model"
)

func main() {
	fmt.Println("paper's measured overhead vs the Eq. 1 linear model:")
	table, _ := expt.Table5()
	fmt.Println(table.Format())

	fmt.Println("live measurement on the functional stack (CG through the")
	fmt.Println("redundancy layer with emulated wire latency):")
	p := expt.DefaultTable5LiveParams()
	live, secs, err := expt.Table5Live(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(live.Format())

	// The headline shape: runtime dilates with degree because each
	// virtual message becomes r physical messages (Fig. 1a/1b).
	base := secs[0]
	fmt.Println("dilation relative to 1x (Eq. 1 predicts 1.0 → 1.4 for α=0.2):")
	for i, d := range p.Degrees {
		predicted := model.RedundantTime(1, 0.2, d)
		fmt.Printf("  %5.2fx: measured %.2f, Eq. 1 %.2f\n", d, secs[i]/base, predicted)
	}
}
