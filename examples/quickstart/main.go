// Quickstart: run a conjugate-gradient solve at dual redundancy with
// coordinated checkpointing and injected node failures, and watch the job
// survive what would kill an unreplicated run.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/failure"
)

func main() {
	// The application: CG on a 2-D Laplacian (100 unknowns), written once
	// against the mpi.Comm interface — the redundancy degree is purely a
	// launch-time knob, as with RedMPI.
	matrix, err := apps.Laplacian2D(10)
	if err != nil {
		log.Fatal(err)
	}
	factory := func() apps.App {
		return &apps.CG{Matrix: matrix, Iterations: 200}
	}

	// Kill two physical ranks mid-run. At 2x redundancy these are
	// replicas; their partners carry on and no restart is needed unless
	// both replicas of one rank die.
	schedule := []failure.Kill{
		{Rank: 3, After: 50 * time.Millisecond},
		{Rank: 6, After: 120 * time.Millisecond},
	}

	res, err := core.Run(core.Config{
		Ranks:           8,  // N virtual processes
		Degree:          2,  // dual redundancy: 16 physical processes
		StepInterval:    25, // coordinated checkpoint every 25 CG iterations
		FailureSchedule: schedule,
		MaxRestarts:     5,
		ComputeDelay:    2 * time.Millisecond,
		AttemptTimeout:  time.Minute,
	}, factory)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("completed: %v after %d attempt(s), %d injected failure(s), %d checkpoint(s)\n",
		res.Completed, len(res.Attempts), res.TotalFailures, res.TotalCheckpoints)
	fmt.Printf("physical ranks used: %d (Eq. 8 for N=8, r=2)\n", res.PhysicalRanks)
	fmt.Printf("redundant messaging: %d physical sends for %d virtual deliveries\n",
		res.Redundancy.PhysicalSends, res.Redundancy.Deliveries)
	cg := res.CompletedApps[0].(*apps.CG)
	fmt.Printf("solution: residual %.3e, checksum %.6f (exact answer: 100)\n",
		cg.ResidualNorm, cg.Checksum)
}
