// Message-logging recovery: record every message delivered to each rank
// of a CG run, then "crash" one rank and reconstruct its exact final
// state from its delivery log alone — no peers, no global rollback. This
// demonstrates the piecewise-deterministic assumption the paper's §2
// survey describes, and contrasts with the global checkpoint/restart the
// rest of the repository builds on.
//
//	go run ./examples/messagelogging
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/msglog"
	"repro/internal/simmpi"
)

func main() {
	const ranks = 4
	matrix, err := apps.Laplacian2D(8)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: the original run, with a delivery recorder on every rank.
	logs := make([]*msglog.Log, ranks)
	for i := range logs {
		logs[i] = &msglog.Log{}
	}
	checksums := make([]float64, ranks)
	world, err := simmpi.NewWorld(ranks)
	if err != nil {
		log.Fatal(err)
	}
	appErr, failures := world.Run(func(c *simmpi.Comm) error {
		app := &apps.CG{Matrix: matrix, Iterations: 40}
		if err := app.Run(&apps.Context{Comm: msglog.NewRecorder(c, logs[c.Rank()])}); err != nil {
			return err
		}
		checksums[c.Rank()] = app.Checksum
		return nil
	})
	if appErr != nil || len(failures) != 0 {
		log.Fatalf("original run: %v %v", appErr, failures)
	}
	for rank, l := range logs {
		fmt.Printf("rank %d logged %d message deliveries\n", rank, l.Len())
	}

	// Phase 2: rank 2 "crashes". Recover it from its log alone.
	const crashed = 2
	replayer := msglog.NewReplayer(crashed, ranks, logs[crashed].Events())
	recovered := &apps.CG{Matrix: matrix, Iterations: 40}
	if err := recovered.Run(&apps.Context{Comm: replayer}); err != nil {
		log.Fatalf("replay: %v", err)
	}

	fmt.Printf("\nrecovered rank %d from its log: %d events replayed, %d sends suppressed\n",
		crashed, replayer.Replayed(), replayer.SuppressedSends)
	fmt.Printf("original checksum:  %.12f\n", checksums[crashed])
	fmt.Printf("recovered checksum: %.12f\n", recovered.Checksum)
	if recovered.Checksum != checksums[crashed] {
		log.Fatal("piecewise-deterministic recovery failed")
	}
	fmt.Println("bit-identical: the process state is fully determined by its delivery history")
}
