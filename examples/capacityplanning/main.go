// Capacity planning: use the Section 4 analytic model as the paper's
// "tuning knob" — given a job and a machine, find the redundancy degree
// and checkpoint interval that minimise wallclock, minimise node-hours,
// or optimise a weighted blend; then locate the scale at which redundancy
// starts paying for itself (the Figure 13/14 crossovers).
//
//	go run ./examples/capacityplanning
package main

import (
	"fmt"
	"log"

	"repro/internal/model"
)

func main() {
	// A 24-hour, 16k-process job on a machine with 5-year node MTBF,
	// 3-minute coordinated checkpoints and a 5-minute restart.
	job := model.Params{
		N:              16384,
		Work:           24 * model.Hour,
		Alpha:          0.2,
		NodeMTBF:       5 * model.Year,
		CheckpointCost: 3 * model.Minute,
		RestartCost:    5 * model.Minute,
	}

	fmt.Println("degree sweep (Daly-optimal checkpoint interval at each point):")
	fmt.Printf("%8s %10s %12s %12s %10s\n", "degree", "nodes", "T_total[h]", "node-hours", "E[failures]")
	sweep, err := model.Sweep(job, 1, 3, 0.25, model.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, ev := range sweep {
		fmt.Printf("%8.2f %10d %12.2f %12.0f %10.2f\n",
			ev.Degree, ev.NodesUsed, ev.Total/model.Hour, ev.NodeHours(), ev.Failures)
	}

	fastest, err := model.OptimizeDegree(job, 1, 3, 0.25, model.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfastest completion:   r = %.2f → %.2f h on %d nodes\n",
		fastest.Best.Degree, fastest.Best.Total/model.Hour, fastest.Best.NodesUsed)

	cheapest, err := model.OptimizeCost(job, 1, 3, 0.25, model.Options{}, model.NodeHoursCost)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cheapest node-hours:  r = %.2f → %.0f node-hours\n",
		cheapest.Best.Degree, cheapest.Best.NodeHours())

	balanced, err := model.OptimizeCost(job, 1, 3, 0.25, model.Options{},
		model.WeightedCost(job, 1.0, 0.5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("balanced (1.0/0.5):   r = %.2f\n", balanced.Best.Degree)

	// Where does redundancy start to win as this job weak-scales?
	n12, err := model.Crossover(job, 1, 2, 2, 4_000_000, model.Options{})
	if err != nil {
		log.Fatal(err)
	}
	n13, err := model.Crossover(job, 1, 3, 2, 4_000_000, model.Options{})
	if err != nil {
		log.Fatal(err)
	}
	twoForOne, err := model.ThroughputBreakEven(job, 2, 2, 2, 4_000_000, model.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nweak-scaling crossovers for this machine:\n")
	fmt.Printf("  2x beats 1x from N = %d processes\n", n12)
	fmt.Printf("  3x beats 1x from N = %d processes\n", n13)
	fmt.Printf("  two dual-redundant jobs finish within one plain job from N = %d\n", twoForOne)

	// Sanity anchor from the model: Daly vs direct numerical optimum.
	delta, total, err := model.OptimizeInterval(job, fastest.Best.Degree, model.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncheckpoint interval at the optimum: Daly δ = %.0f s; numerical δ* = %.0f s (T %.2f h)\n",
		fastest.Best.Interval, delta, total/model.Hour)
}
