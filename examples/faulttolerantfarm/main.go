// Fault-tolerant task farm: a master/worker application whose master uses
// MPI_ANY_SOURCE wildcard receives — the case that needs the paper's §3
// envelope-forwarding protocol so every replica of the master observes
// the same virtual sender order. We kill one replica of the master
// mid-run and the farm still completes with the exact answer.
//
//	go run ./examples/faulttolerantfarm
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/redundancy"
)

func main() {
	const (
		ranks  = 6
		degree = 2.0
		tasks  = 100
	)
	// Physical layout per Eq. 8: rank 0 (the master) occupies physical
	// ranks 0 and 1; kill its replica 0 early.
	rankMap, err := redundancy.NewRankMap(ranks, degree)
	if err != nil {
		log.Fatal(err)
	}
	masterSphere, err := rankMap.Sphere(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("master's replica sphere: physical ranks %v — killing %d at t=30ms\n",
		masterSphere, masterSphere[0])

	res, err := core.Run(core.Config{
		Ranks:  ranks,
		Degree: degree,
		FailureSchedule: []failure.Kill{
			{Rank: masterSphere[0], After: 30 * time.Millisecond},
		},
		MaxRestarts:    3,
		ComputeDelay:   2 * time.Millisecond,
		AttemptTimeout: time.Minute,
	}, func() apps.App { return &apps.TaskFarm{Tasks: tasks} })
	if err != nil {
		log.Fatal(err)
	}

	var want int64
	for task := 0; task < tasks; task++ {
		v := int64(task)
		want += v*v%9973 + v
	}
	got := res.CompletedApps[0].(*apps.TaskFarm).Total
	fmt.Printf("completed=%v restarts=%d failures=%d\n",
		res.Completed, res.Restarts, res.TotalFailures)
	fmt.Printf("farm total = %d (expected %d) — wildcard order stayed consistent across replicas\n",
		got, want)
	fmt.Printf("wildcard protocol: %d envelopes forwarded, %d leader failovers\n",
		res.Redundancy.EnvelopesSent, res.Redundancy.Failovers)
	if got != want {
		log.Fatalf("result mismatch")
	}
}
