package msglog

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/apps"
	"repro/internal/mpi"
	"repro/internal/simmpi"
)

func TestRecorderLogsDeliveries(t *testing.T) {
	w, err := simmpi.NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	logs := [2]*Log{{}, {}}
	appErr, _ := w.Run(func(c *simmpi.Comm) error {
		rec := NewRecorder(c, logs[c.Rank()])
		if rec.Rank() != c.Rank() || rec.Size() != 2 {
			return fmt.Errorf("identity mismatch")
		}
		if c.Rank() == 0 {
			if err := rec.Send(1, 5, []byte("a")); err != nil {
				return err
			}
			req, err := rec.Isend(1, 6, []byte("b"))
			if err != nil {
				return err
			}
			_, _, err = req.Wait()
			return err
		}
		if _, err := rec.Recv(0, 5); err != nil {
			return err
		}
		req, err := rec.Irecv(0, 6)
		if err != nil {
			return err
		}
		if _, _, err := req.Wait(); err != nil {
			return err
		}
		// Wait twice: the event must be logged once.
		if _, _, err := req.Wait(); err != nil {
			return err
		}
		return nil
	})
	if appErr != nil {
		t.Fatal(appErr)
	}
	if logs[0].Len() != 0 {
		t.Fatalf("sender logged %d deliveries", logs[0].Len())
	}
	events := logs[1].Events()
	if len(events) != 2 {
		t.Fatalf("receiver logged %d deliveries, want 2", len(events))
	}
	if events[0].Tag != 5 || string(events[0].Data) != "a" {
		t.Fatalf("event 0 = %+v", events[0])
	}
	if events[1].Tag != 6 || string(events[1].Data) != "b" {
		t.Fatalf("event 1 = %+v", events[1])
	}
}

func TestReplayerServesHistory(t *testing.T) {
	events := []Event{
		{Source: 0, Tag: 1, Data: []byte("x")},
		{Source: 2, Tag: 3, Data: []byte("y")},
	}
	rp := NewReplayer(1, 3, events)
	msg, err := rp.Recv(0, 1)
	if err != nil || string(msg.Data) != "x" {
		t.Fatalf("recv 1: %v %q", err, msg.Data)
	}
	// Wildcards replay too.
	msg, err = rp.Recv(mpi.AnySource, mpi.AnyTag)
	if err != nil || msg.Source != 2 || msg.Tag != 3 {
		t.Fatalf("recv 2: %v %+v", err, msg)
	}
	if !rp.Done() {
		t.Fatal("history not consumed")
	}
	if _, err := rp.Recv(0, 1); !errors.Is(err, ErrLogExhausted) {
		t.Fatalf("err = %v, want ErrLogExhausted", err)
	}
}

func TestReplayerDetectsDeterminismViolation(t *testing.T) {
	rp := NewReplayer(0, 2, []Event{{Source: 1, Tag: 7, Data: nil}})
	if _, err := rp.Recv(1, 8); !errors.Is(err, ErrDeterminismViolation) {
		t.Fatalf("tag mismatch err = %v", err)
	}
	rp2 := NewReplayer(0, 3, []Event{{Source: 1, Tag: 7, Data: nil}})
	if _, err := rp2.Recv(2, 7); !errors.Is(err, ErrDeterminismViolation) {
		t.Fatalf("source mismatch err = %v", err)
	}
}

func TestReplayerSuppressesSends(t *testing.T) {
	rp := NewReplayer(0, 2, nil)
	if err := rp.Send(1, 0, []byte("ignored")); err != nil {
		t.Fatal(err)
	}
	req, err := rp.Isend(1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := req.Wait(); err != nil {
		t.Fatal(err)
	}
	if rp.SuppressedSends != 2 {
		t.Fatalf("suppressed %d sends, want 2", rp.SuppressedSends)
	}
}

func TestReplayerProbe(t *testing.T) {
	rp := NewReplayer(0, 2, []Event{{Source: 1, Tag: 4, Data: []byte("abc")}})
	st, err := rp.Probe(1, 4)
	if err != nil || st.Len != 3 {
		t.Fatalf("probe: %v %+v", err, st)
	}
	// Probe does not consume.
	if rp.Replayed() != 0 {
		t.Fatal("probe consumed an event")
	}
	if _, err := rp.Probe(0, 4); !errors.Is(err, ErrDeterminismViolation) {
		t.Fatalf("probe mismatch err = %v", err)
	}
}

// TestPiecewiseDeterministicRecovery is the headline property: run a real
// distributed CG with recorders, then re-execute one rank against its log
// alone (no peers, sends suppressed) and obtain the identical result —
// "the state of a process is determined by its initial state and by the
// sequence of messages delivered to it."
func TestPiecewiseDeterministicRecovery(t *testing.T) {
	const ranks = 3
	m, err := apps.Laplacian2D(6)
	if err != nil {
		t.Fatal(err)
	}
	logs := make([]*Log, ranks)
	for i := range logs {
		logs[i] = &Log{}
	}
	checksums := make([]float64, ranks)
	w, err := simmpi.NewWorld(ranks)
	if err != nil {
		t.Fatal(err)
	}
	appErr, _ := w.Run(func(c *simmpi.Comm) error {
		app := &apps.CG{Matrix: m, Iterations: 25}
		if err := app.Run(&apps.Context{Comm: NewRecorder(c, logs[c.Rank()])}); err != nil {
			return err
		}
		checksums[c.Rank()] = app.Checksum
		return nil
	})
	if appErr != nil {
		t.Fatal(appErr)
	}

	// "Crash" rank 1 and recover it purely from its delivery log.
	rp := NewReplayer(1, ranks, logs[1].Events())
	recovered := &apps.CG{Matrix: m, Iterations: 25}
	if err := recovered.Run(&apps.Context{Comm: rp}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if recovered.Checksum != checksums[1] {
		t.Fatalf("replayed checksum %v, original %v", recovered.Checksum, checksums[1])
	}
	if !rp.Done() {
		t.Fatalf("replay consumed %d of %d events", rp.Replayed(), logs[1].Len())
	}
	if rp.SuppressedSends == 0 {
		t.Fatal("replay should have suppressed the rank's sends")
	}
}

func TestLogEventsAreCopies(t *testing.T) {
	var l Log
	data := []byte("mutable")
	l.Append(Event{Source: 0, Tag: 0, Data: data})
	copy(data, "XXXXXXX")
	if got := l.Events()[0].Data; !bytes.Equal(got, []byte("mutable")) {
		t.Fatalf("log aliased caller buffer: %q", got)
	}
}
