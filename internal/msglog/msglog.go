// Package msglog implements message logging, the third fault-tolerance
// technique the paper's background surveys (§2): "Message logging
// techniques record message events in a log that can be replayed to
// recover a failed process from its intermediate state. All message
// logging techniques require the application to adhere to the piecewise
// deterministic assumption that states that the state of a process is
// determined by its initial state and by the sequence of messages
// delivered to it."
//
// The Recorder wraps a communicator and logs every delivered message
// event; the Replayer re-executes a failed process against its log —
// receives are served from the recorded history (verified against the
// re-executed code's selectors, so determinism violations surface as
// errors rather than silent divergence) and sends are suppressed (their
// effects already reached the peers). Together they demonstrate the
// piecewise-deterministic recovery property; a full distributed
// message-logging protocol (orphan tracking, sender-based logging) is out
// of the paper's scope and ours.
package msglog

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/mpi"
)

// Event is one delivered-message record.
type Event struct {
	// Source and Tag are the delivered envelope.
	Source, Tag int
	// Data is the payload (copied).
	Data []byte
}

// Log is an append-only per-process delivery history.
type Log struct {
	mu     sync.Mutex
	events []Event
}

// Append records one delivery.
func (l *Log) Append(e Event) {
	data := make([]byte, len(e.Data))
	copy(data, e.Data)
	e.Data = data
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

// Len returns the number of recorded deliveries.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Events returns a copy of the history.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Recorder wraps a communicator and logs every delivered message.
type Recorder struct {
	inner mpi.Comm
	log   *Log
}

var _ mpi.Comm = (*Recorder)(nil)

// NewRecorder wraps inner; deliveries are appended to log.
func NewRecorder(inner mpi.Comm, log *Log) *Recorder {
	return &Recorder{inner: inner, log: log}
}

// Rank implements mpi.Comm.
func (r *Recorder) Rank() int { return r.inner.Rank() }

// Size implements mpi.Comm.
func (r *Recorder) Size() int { return r.inner.Size() }

// Send implements mpi.Comm (sends are not logged; receiver-side logging).
func (r *Recorder) Send(dst, tag int, data []byte) error {
	return r.inner.Send(dst, tag, data)
}

// Recv implements mpi.Comm, recording the delivery.
func (r *Recorder) Recv(src, tag int) (mpi.Message, error) {
	msg, err := r.inner.Recv(src, tag)
	if err != nil {
		return msg, err
	}
	r.log.Append(Event{Source: msg.Source, Tag: msg.Tag, Data: msg.Data})
	return msg, nil
}

// Isend implements mpi.Comm.
func (r *Recorder) Isend(dst, tag int, data []byte) (mpi.Request, error) {
	return r.inner.Isend(dst, tag, data)
}

// Irecv implements mpi.Comm; the delivery is logged at completion.
func (r *Recorder) Irecv(src, tag int) (mpi.Request, error) {
	req, err := r.inner.Irecv(src, tag)
	if err != nil {
		return nil, err
	}
	return &loggingRequest{inner: req, log: r.log}, nil
}

// Probe implements mpi.Comm.
func (r *Recorder) Probe(src, tag int) (mpi.Status, error) {
	return r.inner.Probe(src, tag)
}

// SetErrhandler implements mpi.Comm by delegating to the wrapped
// communicator (failure notification is not part of the logged
// history).
func (r *Recorder) SetErrhandler(fn func(mpi.FailureInfo)) { r.inner.SetErrhandler(fn) }

// FailureAck implements mpi.Comm.
func (r *Recorder) FailureAck() []int { return r.inner.FailureAck() }

// Shrink implements mpi.Comm: the shrunk communicator keeps recording
// into the same log.
func (r *Recorder) Shrink() (mpi.Comm, error) {
	inner, err := r.inner.Shrink()
	if err != nil {
		return nil, err
	}
	return NewRecorder(inner, r.log), nil
}

// Agree implements mpi.Comm.
func (r *Recorder) Agree(flag bool) (bool, error) { return r.inner.Agree(flag) }

// loggingRequest appends the delivery when the receive completes.
type loggingRequest struct {
	inner  mpi.Request
	log    *Log
	logged bool
}

var _ mpi.Request = (*loggingRequest)(nil)

func (lr *loggingRequest) record(msg mpi.Message, err error) {
	if err != nil || lr.logged {
		return
	}
	lr.log.Append(Event{Source: msg.Source, Tag: msg.Tag, Data: msg.Data})
	lr.logged = true
}

// Wait implements mpi.Request.
func (lr *loggingRequest) Wait() (mpi.Message, mpi.Status, error) {
	msg, st, err := lr.inner.Wait()
	lr.record(msg, err)
	return msg, st, err
}

// Test implements mpi.Request.
func (lr *loggingRequest) Test() (bool, mpi.Message, mpi.Status, error) {
	done, msg, st, err := lr.inner.Test()
	if done {
		lr.record(msg, err)
	}
	return done, msg, st, err
}

// Errors of the replayer.
var (
	// ErrLogExhausted reports a receive beyond the recorded history.
	ErrLogExhausted = errors.New("msglog: log exhausted")
	// ErrDeterminismViolation reports that the re-executed code asked
	// for a message the history cannot satisfy at this position —
	// the piecewise-deterministic assumption does not hold.
	ErrDeterminismViolation = errors.New("msglog: determinism violation")
)

// Replayer is a communicator that re-executes a process against its
// delivery log: receives are served from the history in order, sends are
// suppressed. It is single-goroutine like every Comm.
type Replayer struct {
	rank, size int
	events     []Event
	pos        int

	// SuppressedSends counts the sends swallowed during replay.
	SuppressedSends int
}

var _ mpi.Comm = (*Replayer)(nil)

// NewReplayer builds a replayer for the given rank/size identity over a
// recorded history.
func NewReplayer(rank, size int, events []Event) *Replayer {
	evs := make([]Event, len(events))
	copy(evs, events)
	return &Replayer{rank: rank, size: size, events: evs}
}

// Rank implements mpi.Comm.
func (rp *Replayer) Rank() int { return rp.rank }

// Size implements mpi.Comm.
func (rp *Replayer) Size() int { return rp.size }

// Replayed reports how many events have been consumed.
func (rp *Replayer) Replayed() int { return rp.pos }

// Done reports whether the whole history has been consumed.
func (rp *Replayer) Done() bool { return rp.pos == len(rp.events) }

// Send implements mpi.Comm as a suppressed no-op.
func (rp *Replayer) Send(dst, tag int, data []byte) error {
	rp.SuppressedSends++
	return nil
}

// Recv implements mpi.Comm by serving the next logged event. The
// re-executed code must issue the identical receive sequence; selector
// mismatches mean the code is not piecewise deterministic.
func (rp *Replayer) Recv(src, tag int) (mpi.Message, error) {
	if rp.pos >= len(rp.events) {
		return mpi.Message{}, fmt.Errorf("recv(src=%d, tag=%d) at position %d: %w",
			src, tag, rp.pos, ErrLogExhausted)
	}
	e := rp.events[rp.pos]
	if src != mpi.AnySource && src != e.Source {
		return mpi.Message{}, fmt.Errorf("position %d: logged source %d, requested %d: %w",
			rp.pos, e.Source, src, ErrDeterminismViolation)
	}
	if tag != mpi.AnyTag && tag != e.Tag {
		return mpi.Message{}, fmt.Errorf("position %d: logged tag %d, requested %d: %w",
			rp.pos, e.Tag, tag, ErrDeterminismViolation)
	}
	rp.pos++
	data := make([]byte, len(e.Data))
	copy(data, e.Data)
	return mpi.Message{Source: e.Source, Tag: e.Tag, Data: data}, nil
}

// Isend implements mpi.Comm (suppressed, fulfilled handle).
func (rp *Replayer) Isend(dst, tag int, data []byte) (mpi.Request, error) {
	rp.SuppressedSends++
	return &replayRequest{done: true, st: mpi.Status{Source: rp.rank, Tag: tag, Len: len(data)}}, nil
}

// Irecv implements mpi.Comm (lazy; serves the log at Wait/Test).
func (rp *Replayer) Irecv(src, tag int) (mpi.Request, error) {
	return &replayRequest{rp: rp, src: src, tag: tag, isRecv: true}, nil
}

// Probe implements mpi.Comm against the next logged event.
func (rp *Replayer) Probe(src, tag int) (mpi.Status, error) {
	if rp.pos >= len(rp.events) {
		return mpi.Status{}, fmt.Errorf("probe at position %d: %w", rp.pos, ErrLogExhausted)
	}
	e := rp.events[rp.pos]
	if (src != mpi.AnySource && src != e.Source) || (tag != mpi.AnyTag && tag != e.Tag) {
		return mpi.Status{}, fmt.Errorf("position %d: %w", rp.pos, ErrDeterminismViolation)
	}
	return mpi.Status{Source: e.Source, Tag: e.Tag, Len: len(e.Data)}, nil
}

// SetErrhandler implements mpi.Comm as a no-op: a replayed history
// contains no failures — the log was recorded up to the crash point.
func (rp *Replayer) SetErrhandler(fn func(mpi.FailureInfo)) {}

// FailureAck implements mpi.Comm (no failures to acknowledge).
func (rp *Replayer) FailureAck() []int { return nil }

// Shrink implements mpi.Comm: replay has no live peers to agree with,
// so the "shrunk" communicator is the replayer itself (every logged
// rank is a survivor of its own history).
func (rp *Replayer) Shrink() (mpi.Comm, error) { return rp, nil }

// Agree implements mpi.Comm: with no failures in the history, agreement
// degenerates to the local flag.
func (rp *Replayer) Agree(flag bool) (bool, error) { return flag, nil }

type replayRequest struct {
	rp       *Replayer
	src, tag int
	isRecv   bool

	done bool
	st   mpi.Status
	msg  mpi.Message
	err  error
}

var _ mpi.Request = (*replayRequest)(nil)

func (r *replayRequest) Wait() (mpi.Message, mpi.Status, error) {
	if r.done {
		return r.msg, r.st, r.err
	}
	msg, err := r.rp.Recv(r.src, r.tag)
	r.done = true
	r.err = err
	if err == nil {
		r.msg = msg
		r.st = mpi.Status{Source: msg.Source, Tag: msg.Tag, Len: len(msg.Data)}
	}
	return r.msg, r.st, r.err
}

func (r *replayRequest) Test() (bool, mpi.Message, mpi.Status, error) {
	msg, st, err := r.Wait() // the log is always "ready"
	return true, msg, st, err
}
