package stats

import (
	"math"
	"sort"
)

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics for xs. It returns the zero
// Summary for an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{
		N:      len(xs),
		Min:    math.Inf(1),
		Max:    math.Inf(-1),
		Mean:   Mean(xs),
		Median: Quantile(xs, 0.5),
	}
	var sq kahan
	for _, x := range xs {
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
		d := x - s.Mean
		sq.add(d * d)
	}
	if s.N > 1 {
		s.StdDev = math.Sqrt(sq.sum / float64(s.N-1))
	}
	return s
}

// kahan is a compensated summation accumulator; long Monte-Carlo runs sum
// millions of small increments and plain float64 accumulation drifts.
type kahan struct {
	sum float64
	c   float64
}

func (k *kahan) add(x float64) {
	y := x - k.c
	t := k.sum + y
	k.c = (t - k.sum) - y
	k.sum = t
}

// Accumulator is a compensated (Kahan) summation accumulator for callers
// that reduce large samples incrementally — e.g. the parallel Monte-Carlo
// engine folding per-trial statistics in trial order. The zero value is
// ready to use.
type Accumulator struct {
	k kahan
}

// Add folds x into the accumulator.
func (a *Accumulator) Add(x float64) { a.k.add(x) }

// Sum returns the compensated running sum.
func (a *Accumulator) Sum() float64 { return a.k.sum }

// Sum returns the compensated (Kahan) sum of xs.
func Sum(xs []float64) float64 {
	var k kahan
	for _, x := range xs {
		k.add(x)
	}
	return k.sum
}

// Mean returns the arithmetic mean of xs, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It copies its input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Correlation returns the Pearson correlation coefficient of the paired
// samples xs and ys. It returns NaN if the lengths differ, the sample is
// smaller than two, or either sample has zero variance.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy kahan
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy.add(dx * dy)
		sxx.add(dx * dx)
		syy.add(dy * dy)
	}
	den := math.Sqrt(sxx.sum * syy.sum)
	if den == 0 {
		return math.NaN()
	}
	return sxy.sum / den
}

// RelativeError returns |got-want| / |want|, or |got| when want is zero.
func RelativeError(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}
