package stats

import (
	"math"
	"testing"
)

func TestQQIdenticalSamples(t *testing.T) {
	s := NewStream(1)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = s.Exp(2)
	}
	pts := QQ(xs, xs, 20)
	if len(pts) != 20 {
		t.Fatalf("got %d points, want 20", len(pts))
	}
	for _, p := range pts {
		if p.Observed != p.Model {
			t.Fatalf("identical samples should give identity Q-Q, got %+v", p)
		}
	}
	corr, dev := QQFit(pts)
	if math.Abs(corr-1) > 1e-9 || dev > 1e-12 {
		t.Fatalf("QQFit on identity = (%v, %v), want (1, 0)", corr, dev)
	}
}

func TestQQSameDistributionCloseFit(t *testing.T) {
	a, b := NewStream(10), NewStream(20)
	xs := make([]float64, 50000)
	ys := make([]float64, 50000)
	for i := range xs {
		xs[i] = a.Exp(3)
		ys[i] = b.Exp(3)
	}
	corr, dev := QQFit(QQ(xs, ys, 50))
	if corr < 0.999 {
		t.Errorf("correlation = %v, want > 0.999 for same distribution", corr)
	}
	if dev > 0.05 {
		t.Errorf("mean relative deviation = %v, want < 0.05", dev)
	}
}

func TestQQDifferentScaleDetected(t *testing.T) {
	a, b := NewStream(10), NewStream(20)
	xs := make([]float64, 20000)
	ys := make([]float64, 20000)
	for i := range xs {
		xs[i] = a.Exp(3)
		ys[i] = b.Exp(6)
	}
	_, dev := QQFit(QQ(xs, ys, 50))
	if dev < 0.3 {
		t.Errorf("mean relative deviation = %v; 2x scale difference should exceed 0.3", dev)
	}
}

func TestQQEmpty(t *testing.T) {
	if pts := QQ(nil, []float64{1}, 10); pts != nil {
		t.Errorf("QQ with empty observed = %v, want nil", pts)
	}
	if pts := QQ([]float64{1}, []float64{1}, 0); pts != nil {
		t.Errorf("QQ with n=0 = %v, want nil", pts)
	}
	corr, dev := QQFit(nil)
	if !math.IsNaN(corr) || !math.IsNaN(dev) {
		t.Errorf("QQFit(nil) = (%v, %v), want NaNs", corr, dev)
	}
}

func TestHistogramCountsSum(t *testing.T) {
	s := NewStream(4)
	xs := make([]float64, 1234)
	for i := range xs {
		xs[i] = s.Float64() * 10
	}
	edges, counts := Histogram(xs, 7)
	if len(edges) != 7 || len(counts) != 7 {
		t.Fatalf("got %d edges, %d counts, want 7 each", len(edges), len(counts))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(xs) {
		t.Fatalf("histogram counts sum to %d, want %d", total, len(xs))
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			t.Fatalf("edges not increasing: %v", edges)
		}
	}
}

func TestHistogramConstantSample(t *testing.T) {
	_, counts := Histogram([]float64{5, 5, 5}, 3)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 3 {
		t.Fatalf("constant-sample histogram lost values: %v", counts)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	if e, c := Histogram(nil, 5); e != nil || c != nil {
		t.Error("Histogram(nil) should return nils")
	}
	if e, c := Histogram([]float64{1}, 0); e != nil || c != nil {
		t.Error("Histogram with 0 bins should return nils")
	}
}
