package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d, want 8", s.N)
	}
	if s.Mean != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min, s.Max)
	}
	// Sample stddev with n-1: variance = 32/7.
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", s.StdDev, want)
	}
	if s.Median != 4.5 {
		t.Errorf("Median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("Summarize(nil) = %+v, want zero value", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3.25})
	if s.N != 1 || s.Mean != 3.25 || s.Min != 3.25 || s.Max != 3.25 || s.StdDev != 0 {
		t.Fatalf("Summarize single = %+v", s)
	}
}

func TestKahanSumPrecision(t *testing.T) {
	// 1 followed by many tiny values that a naive sum drops entirely.
	xs := make([]float64, 1_000_001)
	xs[0] = 1
	for i := 1; i < len(xs); i++ {
		xs[i] = 1e-16
	}
	got := Sum(xs)
	want := 1 + 1e-10
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Kahan sum = %.17g, want %.17g", got, want)
	}
}

func TestQuantileEndpoints(t *testing.T) {
	xs := []float64{5, 1, 3}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("Quantile(0) = %v, want 1", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("Quantile(1) = %v, want 5", got)
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("Quantile(0.5) = %v, want 3", got)
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.25); got != 2.5 {
		t.Errorf("Quantile(0.25) = %v, want 2.5", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Quantile mutated its input: %v", xs)
	}
}

func TestQuantileEmpty(t *testing.T) {
	if got := Quantile(nil, 0.5); !math.IsNaN(got) {
		t.Fatalf("Quantile(nil) = %v, want NaN", got)
	}
}

func TestCorrelationPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{10, 20, 30, 40}
	if got := Correlation(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Correlation = %v, want 1", got)
	}
	neg := []float64{40, 30, 20, 10}
	if got := Correlation(xs, neg); math.Abs(got+1) > 1e-12 {
		t.Fatalf("Correlation = %v, want -1", got)
	}
}

func TestCorrelationDegenerate(t *testing.T) {
	if got := Correlation([]float64{1, 2}, []float64{1}); !math.IsNaN(got) {
		t.Errorf("mismatched lengths: got %v, want NaN", got)
	}
	if got := Correlation([]float64{1, 1, 1}, []float64{1, 2, 3}); !math.IsNaN(got) {
		t.Errorf("zero variance: got %v, want NaN", got)
	}
}

func TestMeanBounds(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 && s.StdDev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelativeError(110,100) = %v, want 0.1", got)
	}
	if got := RelativeError(5, 0); got != 5 {
		t.Errorf("RelativeError(5,0) = %v, want 5", got)
	}
}
