package stats

import (
	"math"
	"sort"
)

// QQPoint is one point of a quantile-quantile plot: the q-th quantile of
// the observed sample against the q-th quantile of the model sample.
type QQPoint struct {
	Q        float64
	Observed float64
	Model    float64
}

// QQ computes n evenly spaced quantile-quantile points comparing the
// observed sample against the modeled sample. The paper reports that "a
// Q-Q plot of the modeled and observed values indicates a close fit"
// (§6, discussion of Figure 12); this is the data behind that plot.
func QQ(observed, model []float64, n int) []QQPoint {
	if n <= 0 || len(observed) == 0 || len(model) == 0 {
		return nil
	}
	obs := make([]float64, len(observed))
	copy(obs, observed)
	sort.Float64s(obs)
	mod := make([]float64, len(model))
	copy(mod, model)
	sort.Float64s(mod)

	pts := make([]QQPoint, 0, n)
	for i := 0; i < n; i++ {
		q := (float64(i) + 0.5) / float64(n)
		pts = append(pts, QQPoint{
			Q:        q,
			Observed: quantileSorted(obs, q),
			Model:    quantileSorted(mod, q),
		})
	}
	return pts
}

// QQFit summarises how well a Q-Q point set tracks the identity line:
// it returns the Pearson correlation of observed vs model quantiles and
// the mean absolute relative deviation from y = x.
func QQFit(pts []QQPoint) (corr, meanRelDev float64) {
	if len(pts) == 0 {
		return math.NaN(), math.NaN()
	}
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	var dev kahan
	for i, p := range pts {
		xs[i] = p.Model
		ys[i] = p.Observed
		dev.add(RelativeError(p.Observed, p.Model))
	}
	return Correlation(xs, ys), dev.sum / float64(len(pts))
}

// Histogram bins xs into nbins equal-width bins over [min, max] of the
// sample and returns the bin left edges and counts.
func Histogram(xs []float64, nbins int) (edges []float64, counts []int) {
	if nbins <= 0 || len(xs) == 0 {
		return nil, nil
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if lo == hi {
		hi = lo + 1
	}
	width := (hi - lo) / float64(nbins)
	edges = make([]float64, nbins)
	counts = make([]int, nbins)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	for _, x := range xs {
		bin := int((x - lo) / width)
		if bin >= nbins {
			bin = nbins - 1
		}
		counts[bin]++
	}
	return edges, counts
}
