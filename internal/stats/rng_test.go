package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamReproducible(t *testing.T) {
	a := NewStream(42)
	b := NewStream(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Float64(), b.Float64(); got != want {
			t.Fatalf("draw %d: streams with equal seeds diverged: %v vs %v", i, got, want)
		}
	}
}

func TestStreamDifferentSeedsDiverge(t *testing.T) {
	a := NewStream(1)
	b := NewStream(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("streams with different seeds produced %d/100 equal draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewStream(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Float64() == c2.Float64() && c1.Float64() == c2.Float64() {
		t.Fatal("sibling child streams produced identical draws")
	}
}

func TestExpMean(t *testing.T) {
	s := NewStream(123)
	const mean = 3.5
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exp(mean)
	}
	got := sum / n
	if RelativeError(got, mean) > 0.02 {
		t.Fatalf("exponential sample mean = %v, want ≈ %v", got, mean)
	}
}

func TestExpRateMatchesExp(t *testing.T) {
	a := NewStream(9)
	b := NewStream(9)
	for i := 0; i < 100; i++ {
		if got, want := a.ExpRate(0.25), b.Exp(4.0); got != want {
			t.Fatalf("ExpRate(0.25) and Exp(4) diverged on draw %d: %v vs %v", i, got, want)
		}
	}
}

func TestExpAlwaysPositive(t *testing.T) {
	s := NewStream(5)
	f := func(seedDelta uint8) bool {
		v := s.Exp(float64(seedDelta%20) + 0.1)
		return v >= 0 && !math.IsInf(v, 0) && !math.IsNaN(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpPanicsOnNonPositiveMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	NewStream(1).Exp(0)
}

func TestExpMedianMatchesTheory(t *testing.T) {
	// Median of Exp(mean) is mean*ln2.
	s := NewStream(77)
	const mean = 10.0
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = s.Exp(mean)
	}
	got := Quantile(xs, 0.5)
	want := mean * math.Ln2
	if RelativeError(got, want) > 0.03 {
		t.Fatalf("exponential median = %v, want ≈ %v", got, want)
	}
}

func TestPoissonMean(t *testing.T) {
	for _, mean := range []float64{0.5, 3, 20, 200} {
		s := NewStream(int64(mean * 100))
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(mean))
		}
		got := sum / n
		if RelativeError(got, mean) > 0.05 {
			t.Fatalf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	s := NewStream(1)
	for i := 0; i < 100; i++ {
		if got := s.Poisson(0); got != 0 {
			t.Fatalf("Poisson(0) = %d, want 0", got)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	s := NewStream(3)
	for i := 0; i < 10000; i++ {
		if got := s.Poisson(100); got < 0 {
			t.Fatalf("Poisson(100) = %d < 0", got)
		}
	}
}

func TestPoissonPanicsOnNegativeMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Poisson(-1) did not panic")
		}
	}()
	NewStream(1).Poisson(-1)
}

func TestPermIsPermutation(t *testing.T) {
	s := NewStream(11)
	p := s.Perm(50)
	seen := make(map[int]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm(50) is not a permutation: %v", p)
		}
		seen[v] = true
	}
}

// The failure injector depends on the memorylessness of the exponential:
// the distribution of X-c given X>c equals the distribution of X.
func TestExpMemoryless(t *testing.T) {
	s := NewStream(31)
	const mean, cut = 5.0, 2.0
	var tail []float64
	for i := 0; i < 400000 && len(tail) < 100000; i++ {
		if x := s.Exp(mean); x > cut {
			tail = append(tail, x-cut)
		}
	}
	got := Mean(tail)
	if RelativeError(got, mean) > 0.03 {
		t.Fatalf("E[X-c | X>c] = %v, want ≈ %v (memorylessness)", got, mean)
	}
}
