package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamReproducible(t *testing.T) {
	a := NewStream(42)
	b := NewStream(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Float64(), b.Float64(); got != want {
			t.Fatalf("draw %d: streams with equal seeds diverged: %v vs %v", i, got, want)
		}
	}
}

func TestStreamDifferentSeedsDiverge(t *testing.T) {
	a := NewStream(1)
	b := NewStream(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("streams with different seeds produced %d/100 equal draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewStream(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Float64() == c2.Float64() && c1.Float64() == c2.Float64() {
		t.Fatal("sibling child streams produced identical draws")
	}
}

func TestSubstreamPureInSeedAndIndex(t *testing.T) {
	// Substream is a pure function of (seed, index): deriving children in
	// any order, or repeatedly, yields identical streams.
	for _, idx := range []int{3, 0, 7, 3} {
		a := Substream(42, idx)
		b := Substream(42, idx)
		for d := 0; d < 100; d++ {
			if got, want := a.Float64(), b.Float64(); got != want {
				t.Fatalf("index %d draw %d: %v vs %v", idx, d, got, want)
			}
		}
	}
}

func TestSubstreamSiblingsDiverge(t *testing.T) {
	// Adjacent indexes and adjacent seeds must yield decorrelated
	// streams — the SplitMix64 finalizer's job.
	pairs := [][2]*Stream{
		{Substream(1, 0), Substream(1, 1)},
		{Substream(1, 5), Substream(2, 5)},
		{Substream(0, 0), Substream(0, 1)},
	}
	for i, p := range pairs {
		same := 0
		for d := 0; d < 100; d++ {
			if p[0].Float64() == p[1].Float64() {
				same++
			}
		}
		if same > 5 {
			t.Fatalf("pair %d: %d/100 equal draws", i, same)
		}
	}
}

func TestSubstreamSeedNoCollisions(t *testing.T) {
	seen := make(map[int64]bool, 40000)
	for _, seed := range []int64{0, 1, -1, 1 << 40} {
		for idx := 0; idx < 10000; idx++ {
			s := SubstreamSeed(seed, idx)
			if seen[s] {
				t.Fatalf("collision at seed=%d index=%d", seed, idx)
			}
			seen[s] = true
		}
	}
}

func TestSubstreamSeedNegativeIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SubstreamSeed(1, -1) did not panic")
		}
	}()
	SubstreamSeed(1, -1)
}

func TestSubstreamUniformAcrossIndexes(t *testing.T) {
	// First draws across many substreams of one seed behave like uniform
	// [0,1) samples — the cross-stream independence the Monte-Carlo
	// engine relies on.
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += Substream(99, i).Float64()
	}
	if got := sum / n; RelativeError(got, 0.5) > 0.02 {
		t.Fatalf("mean of first draws = %v, want ≈ 0.5", got)
	}
}

func TestAccumulatorMatchesSum(t *testing.T) {
	// The incremental Accumulator must agree bit-for-bit with the batch
	// Sum — sim.Run's parallel reduction relies on this equivalence.
	s := NewStream(13)
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = s.Exp(3600)
	}
	var a Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	if got, want := a.Sum(), Sum(xs); got != want {
		t.Fatalf("Accumulator %v vs Sum %v", got, want)
	}
}

func TestAccumulatorCompensates(t *testing.T) {
	// 10^6 additions of 0.1: the compensated sum stays within a few ulps
	// of the true value where naive accumulation drifts.
	var a Accumulator
	for i := 0; i < 1_000_000; i++ {
		a.Add(0.1)
	}
	if math.Abs(a.Sum()-100000) > 1e-9 {
		t.Fatalf("compensated sum = %.12f, want 100000", a.Sum())
	}
}

func TestExpMean(t *testing.T) {
	s := NewStream(123)
	const mean = 3.5
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exp(mean)
	}
	got := sum / n
	if RelativeError(got, mean) > 0.02 {
		t.Fatalf("exponential sample mean = %v, want ≈ %v", got, mean)
	}
}

func TestExpRateMatchesExp(t *testing.T) {
	a := NewStream(9)
	b := NewStream(9)
	for i := 0; i < 100; i++ {
		if got, want := a.ExpRate(0.25), b.Exp(4.0); got != want {
			t.Fatalf("ExpRate(0.25) and Exp(4) diverged on draw %d: %v vs %v", i, got, want)
		}
	}
}

func TestExpAlwaysPositive(t *testing.T) {
	s := NewStream(5)
	f := func(seedDelta uint8) bool {
		v := s.Exp(float64(seedDelta%20) + 0.1)
		return v >= 0 && !math.IsInf(v, 0) && !math.IsNaN(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpPanicsOnNonPositiveMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	NewStream(1).Exp(0)
}

func TestExpMedianMatchesTheory(t *testing.T) {
	// Median of Exp(mean) is mean*ln2.
	s := NewStream(77)
	const mean = 10.0
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = s.Exp(mean)
	}
	got := Quantile(xs, 0.5)
	want := mean * math.Ln2
	if RelativeError(got, want) > 0.03 {
		t.Fatalf("exponential median = %v, want ≈ %v", got, want)
	}
}

func TestPoissonMean(t *testing.T) {
	for _, mean := range []float64{0.5, 3, 20, 200} {
		s := NewStream(int64(mean * 100))
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(mean))
		}
		got := sum / n
		if RelativeError(got, mean) > 0.05 {
			t.Fatalf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	s := NewStream(1)
	for i := 0; i < 100; i++ {
		if got := s.Poisson(0); got != 0 {
			t.Fatalf("Poisson(0) = %d, want 0", got)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	s := NewStream(3)
	for i := 0; i < 10000; i++ {
		if got := s.Poisson(100); got < 0 {
			t.Fatalf("Poisson(100) = %d < 0", got)
		}
	}
}

func TestPoissonPanicsOnNegativeMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Poisson(-1) did not panic")
		}
	}()
	NewStream(1).Poisson(-1)
}

func TestPermIsPermutation(t *testing.T) {
	s := NewStream(11)
	p := s.Perm(50)
	seen := make(map[int]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm(50) is not a permutation: %v", p)
		}
		seen[v] = true
	}
}

// The failure injector depends on the memorylessness of the exponential:
// the distribution of X-c given X>c equals the distribution of X.
func TestExpMemoryless(t *testing.T) {
	s := NewStream(31)
	const mean, cut = 5.0, 2.0
	var tail []float64
	for i := 0; i < 400000 && len(tail) < 100000; i++ {
		if x := s.Exp(mean); x > cut {
			tail = append(tail, x-cut)
		}
	}
	got := Mean(tail)
	if RelativeError(got, mean) > 0.03 {
		t.Fatalf("E[X-c | X>c] = %v, want ≈ %v (memorylessness)", got, mean)
	}
}
