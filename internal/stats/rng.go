// Package stats provides the statistical substrate used across the
// repository: seeded random-number streams, the distributions the paper's
// failure model depends on (exponential inter-arrival times of a Poisson
// process), summary statistics, histograms, and Q-Q data used to reproduce
// the paper's model-fit analysis.
package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// Stream is a seeded source of pseudo-random draws. Every stochastic
// component in the repository (failure injector, Monte-Carlo simulator,
// workload generators) takes a Stream rather than reaching for global
// randomness, so that experiments are reproducible run to run.
type Stream struct {
	rng *rand.Rand
}

// NewStream returns a reproducible stream seeded with seed.
func NewStream(seed int64) *Stream {
	return &Stream{rng: rand.New(rand.NewSource(seed))}
}

// Split derives a child stream from this one. Children seeded from
// distinct parent draws are statistically independent for our purposes and
// keep per-component reproducibility even when components draw in
// nondeterministic interleavings.
//
// Split is order-dependent: the k-th child depends on every draw the
// parent made before it, so it only yields reproducible child streams
// when the split points themselves are sequenced deterministically. At
// fan-out points where work is distributed across goroutines, use
// Substream instead — it derives the child purely from (seed, index).
func (s *Stream) Split() *Stream {
	return NewStream(s.rng.Int63())
}

// Substream returns the index-th child stream of a root seed. The
// derivation is a pure function of (seed, index) — a SplitMix64 step and
// finalizer — so trial i receives the same stream no matter which worker
// claims it or in what order trials are scheduled. This is what makes the
// parallel Monte-Carlo engine bit-reproducible at any parallelism level.
func Substream(seed int64, index int) *Stream {
	return NewStream(SubstreamSeed(seed, index))
}

// SubstreamSeed derives the index-th child seed of a root seed using the
// SplitMix64 generator: the child seed is the output of the (index+1)-th
// SplitMix64 step starting from the root state. The golden-ratio
// increment guarantees distinct states for distinct indexes and the
// finalizer decorrelates adjacent ones. index must be non-negative.
func SubstreamSeed(seed int64, index int) int64 {
	if index < 0 {
		panic(fmt.Sprintf("stats: substream index must be non-negative, got %d", index))
	}
	x := uint64(seed) + (uint64(index)+1)*0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}

// Float64 returns a uniform draw in [0, 1).
func (s *Stream) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform draw in [0, n).
func (s *Stream) Intn(n int) int { return s.rng.Intn(n) }

// Int63 returns a uniform non-negative 63-bit integer.
func (s *Stream) Int63() int64 { return s.rng.Int63() }

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.rng.Perm(n) }

// NormFloat64 returns a standard normal draw.
func (s *Stream) NormFloat64() float64 { return s.rng.NormFloat64() }

// Exp returns an exponentially distributed draw with the given mean.
// The paper's assumption (3) states node failures follow a Poisson
// process, so inter-failure times are Exp(θ) with mean θ (the node MTBF).
func (s *Stream) Exp(mean float64) float64 {
	if mean <= 0 {
		panic(fmt.Sprintf("stats: exponential mean must be positive, got %v", mean))
	}
	// Inverse-CDF sampling: -mean * ln(U) with U in (0, 1].
	u := 1 - s.rng.Float64() // in (0, 1]
	return -mean * math.Log(u)
}

// ExpRate returns an exponential draw with the given rate λ (mean 1/λ).
func (s *Stream) ExpRate(rate float64) float64 {
	if rate <= 0 {
		panic(fmt.Sprintf("stats: exponential rate must be positive, got %v", rate))
	}
	return s.Exp(1 / rate)
}

// Poisson returns a Poisson-distributed count with the given mean,
// using Knuth's product method for small means and a normal approximation
// for large ones (mean > 64) where the product method underflows.
func (s *Stream) Poisson(mean float64) int {
	if mean < 0 {
		panic(fmt.Sprintf("stats: Poisson mean must be non-negative, got %v", mean))
	}
	if mean == 0 {
		return 0
	}
	if mean > 64 {
		// Normal approximation with continuity correction.
		n := int(math.Round(s.rng.NormFloat64()*math.Sqrt(mean) + mean))
		if n < 0 {
			return 0
		}
		return n
	}
	limit := math.Exp(-mean)
	n := 0
	for p := s.rng.Float64(); p > limit; p *= s.rng.Float64() {
		n++
	}
	return n
}
