//go:build !windows

package procmpi_test

import (
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/procmpi"
)

// TestHelperProcWorker is not a test: it is the body of the worker child
// processes the real-process tests below fork (the test binary re-execs
// itself with -test.run pinned here). The child dials the coordinator,
// reports its real PID, and parks in a receive until the hub tears the
// world down — or until it is killed for real.
func TestHelperProcWorker(t *testing.T) {
	if os.Getenv("PROCMPI_HELPER") != "1" {
		t.Skip("helper process entry point")
	}
	rank, _ := strconv.Atoi(os.Getenv("PROCMPI_RANK"))
	size, _ := strconv.Atoi(os.Getenv("PROCMPI_SIZE"))
	hbms, _ := strconv.Atoi(os.Getenv("PROCMPI_HB_MS"))
	hb := time.Duration(hbms) * time.Millisecond
	w, err := procmpi.Dial(procmpi.WorkerConfig{
		Network:           "unix",
		Addr:              os.Getenv("PROCMPI_ADDR"),
		Rank:              rank,
		Size:              size,
		PID:               os.Getpid(),
		HeartbeatInterval: hb,
	})
	if err != nil {
		os.Exit(2)
	}
	_, _ = w.Recv(mpi.AnySource, 1)
	w.Close()
	os.Exit(0)
}

func spawnWorker(t *testing.T, addr string, rank, size, hbms int) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperProcWorker$")
	cmd.Env = append(os.Environ(),
		"PROCMPI_HELPER=1",
		"PROCMPI_ADDR="+addr,
		"PROCMPI_RANK="+strconv.Itoa(rank),
		"PROCMPI_SIZE="+strconv.Itoa(size),
		"PROCMPI_HB_MS="+strconv.Itoa(hbms),
	)
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn rank %d: %v", rank, err)
	}
	return cmd
}

func newHub(t *testing.T, timeout time.Duration, flight *obs.Recorder, deaths chan int) (*procmpi.Coordinator, string) {
	t.Helper()
	ln, err := net.Listen("unix", filepath.Join(t.TempDir(), "hub.sock"))
	if err != nil {
		t.Fatal(err)
	}
	coord, err := procmpi.NewCoordinator(ln, procmpi.CoordinatorConfig{
		Size:             2,
		HeartbeatTimeout: timeout,
		Flight:           flight,
		OnDeath:          func(rank int) { deaths <- rank },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	return coord, ln.Addr().String()
}

func awaitDeath(t *testing.T, deaths chan int, want int) {
	t.Helper()
	select {
	case r := <-deaths:
		if r != want {
			t.Fatalf("death reported for rank %d, want %d", r, want)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("rank %d never declared dead", want)
	}
}

// TestRealProcessSIGKILL kills a real worker process with an external
// SIGKILL — not through any transport API — and proves the coordinator
// observes the death through socket EOF: the liveness view flips, the
// OnDeath hook fires, and the flight recorder logs the real death.
func TestRealProcessSIGKILL(t *testing.T) {
	flight := obs.NewRecorder(256, true)
	deaths := make(chan int, 4)
	coord, addr := newHub(t, 0, flight, deaths)

	w0 := spawnWorker(t, addr, 0, 2, 0)
	w1 := spawnWorker(t, addr, 1, 2, 0)
	defer func() {
		_ = w0.Process.Kill()
		_, _ = w0.Process.Wait()
		_ = w1.Process.Kill()
		_, _ = w1.Process.Wait()
	}()
	if err := coord.WaitConnected(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	pid, ok := coord.PID(1)
	if !ok || pid != w1.Process.Pid {
		t.Fatalf("coordinator PID(1) = %d,%v; child pid %d", pid, ok, w1.Process.Pid)
	}

	if err := syscall.Kill(w1.Process.Pid, syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	awaitDeath(t, deaths, 1)
	if coord.Alive(1) {
		t.Fatal("rank 1 alive after real SIGKILL")
	}
	if !coord.Alive(0) {
		t.Fatal("rank 0 died collaterally")
	}
	found := false
	for _, rec := range flight.Records() {
		if rec.Kind == "dead" && rec.Rank == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("no dead flight record for the SIGKILLed rank")
	}
}

// TestRealProcessSIGSTOP wedges a real worker with SIGSTOP. Its socket
// stays open — EOF can never fire — so only the heartbeat monitor can
// declare it dead, after which the coordinator's enforcement SIGKILL
// actually reaps it (SIGKILL terminates a stopped process).
func TestRealProcessSIGSTOP(t *testing.T) {
	flight := obs.NewRecorder(256, true)
	deaths := make(chan int, 4)
	coord, addr := newHub(t, 500*time.Millisecond, flight, deaths)

	w0 := spawnWorker(t, addr, 0, 2, 50)
	w1 := spawnWorker(t, addr, 1, 2, 50)
	defer func() {
		_ = syscall.Kill(w1.Process.Pid, syscall.SIGCONT)
		_ = w0.Process.Kill()
		_, _ = w0.Process.Wait()
		_ = w1.Process.Kill()
		_, _ = w1.Process.Wait()
	}()
	if err := coord.WaitConnected(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	if err := syscall.Kill(w1.Process.Pid, syscall.SIGSTOP); err != nil {
		t.Fatal(err)
	}
	awaitDeath(t, deaths, 1)
	if coord.Alive(1) {
		t.Fatal("rank 1 alive after heartbeat timeout")
	}
	if !coord.Alive(0) {
		t.Fatal("rank 0 died collaterally")
	}
	found := false
	for _, rec := range flight.Records() {
		if rec.Kind == "heartbeat_timeout" && rec.Rank == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("no heartbeat_timeout flight record for the wedged rank")
	}
	// The enforcement SIGKILL must actually reap the stopped process.
	st, err := w1.Process.Wait()
	if err != nil {
		t.Fatalf("wait on wedged child: %v", err)
	}
	if ws, ok := st.Sys().(syscall.WaitStatus); ok && (!ws.Signaled() || ws.Signal() != syscall.SIGKILL) {
		t.Fatalf("wedged child exited %v, want SIGKILL", st)
	}
}
