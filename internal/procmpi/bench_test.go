package procmpi_test

import (
	"sync"
	"testing"

	"repro/internal/mpi"
	"repro/internal/procmpi"
)

// benchWorld builds an n-rank in-process proc world or skips the
// benchmark (socket setup can fail in constrained sandboxes).
func benchWorld(b *testing.B, n int) *procmpi.Local {
	b.Helper()
	l, err := procmpi.NewLocal(n, procmpi.LocalConfig{})
	if err != nil {
		b.Skipf("proc world unavailable: %v", err)
	}
	b.Cleanup(l.Close)
	return l
}

// BenchmarkProcPingPong measures the two-hop (src → hub → dst) round
// trip over a real unix socket, batched so one op amortises scheduler
// noise. The alloc gate holds the pooled receive path honest: steady
// state must borrow every rx buffer from the arena, not the heap.
func BenchmarkProcPingPong(b *testing.B) {
	const rounds = 512
	l := benchWorld(b, 2)
	c0, err := l.Endpoint(0)
	if err != nil {
		b.Fatal(err)
	}
	c1, err := l.Endpoint(1)
	if err != nil {
		b.Fatal(err)
	}
	go func() { // echo server: rank 1 bounces every ball back
		for {
			m, err := c1.Recv(0, 1)
			if err != nil {
				return
			}
			if err := c1.Send(0, 2, m.Data); err != nil {
				m.Release()
				return
			}
			m.Release()
		}
	}()
	payload := make([]byte, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < rounds; j++ {
			if err := c0.Send(1, 1, payload); err != nil {
				b.Fatal(err)
			}
			m, err := c0.Recv(1, 2)
			if err != nil {
				b.Fatal(err)
			}
			m.Release()
		}
	}
}

// BenchmarkProcAllreduce8 measures a full 8-rank allreduce storm over
// the socket transport — every rank both fans out and drains through
// the hub concurrently, the collective pattern CG spends its time in.
func BenchmarkProcAllreduce8(b *testing.B) {
	const n, rounds = 8, 64
	l := benchWorld(b, n)
	comms := make([]mpi.Comm, n)
	for r := 0; r < n; r++ {
		c, err := l.Endpoint(r)
		if err != nil {
			b.Fatal(err)
		}
		comms[r] = c
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				in := []float64{float64(r + 1)}
				for j := 0; j < rounds; j++ {
					if _, err := mpi.AllreduceFloat64s(comms[r], in, mpi.OpSum); err != nil {
						b.Error(err)
						return
					}
				}
			}(r)
		}
		wg.Wait()
	}
}
