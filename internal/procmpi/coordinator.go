package procmpi

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/mpi"
	"repro/internal/obs"
)

// defaultHeartbeatTimeout is how long a worker may stay silent before
// the coordinator declares it dead. Twelve heartbeat intervals at the
// default cadence: far above scheduling jitter, far below a test's
// patience.
const defaultHeartbeatTimeout = 3 * time.Second

// epoch phases of the coordinator's routing plane.
const (
	phaseRun = iota
	// phaseInterrupted: the epoch is paused; all data frames are dropped.
	phaseInterrupted
	// phaseResuming: resume frames are going out; data is forwarded only
	// from workers that have already acked (their traffic is new-epoch)
	// and only once the resume broadcast has fully landed (resumeReady),
	// so no destination can see new-epoch data before its own resume.
	phaseResuming
)

// CoordinatorConfig configures the rank-zero routing hub.
type CoordinatorConfig struct {
	// Size is the number of physical ranks expected to rendezvous.
	Size int
	// HeartbeatTimeout declares a silent worker dead; zero means the
	// default, negative disables heartbeat monitoring (socket EOF still
	// detects deaths).
	HeartbeatTimeout time.Duration
	// Obs registers the transport counters (proc_frames_tx_total, ...);
	// nil disables them.
	Obs *obs.Registry
	// Flight receives liveness and epoch transitions — the same "dead",
	// "revive", "interrupt", "resume", "abort" records the simulated
	// backend emits, so redreport and the timeline read identically.
	Flight *obs.Recorder
	// OnDeath is called (outside coordinator locks) whenever a rank dies
	// — by Kill, socket EOF, or heartbeat timeout. The job runner's
	// sphere accounting hangs off this: it is authoritative even for
	// kills delivered externally (a CI script SIGKILLing a worker).
	OnDeath func(rank int)
	// OnBye is called when a worker reports clean completion.
	OnBye func(rank int)
	// OnStep is called for relayed application step notifications.
	OnStep func(rank, step int)
	// OnAppErr is called for relayed application errors.
	OnAppErr func(rank int, msg string)
}

// wconn is one worker's registered connection.
type wconn struct {
	rank int
	gen  int // incarnation; a reconnect bumps it
	c    net.Conn

	wmu     sync.Mutex // serialises writes to this worker
	scratch []byte

	lastBeat int64 // atomic: UnixNano of the last heartbeat or frame
}

// coordMetrics bundles the hub's counters.
type coordMetrics struct {
	framesTx   *obs.Counter
	framesRx   *obs.Counter
	bytesTx    *obs.Counter
	bytesRx    *obs.Counter
	drops      *obs.Counter
	kills      *obs.Counter
	reconnects *obs.Counter
	hbMisses   *obs.Counter
}

func newCoordMetrics(reg *obs.Registry) coordMetrics {
	if reg == nil {
		return coordMetrics{}
	}
	return coordMetrics{
		framesTx:   reg.Counter("proc_frames_tx_total"),
		framesRx:   reg.Counter("proc_frames_rx_total"),
		bytesTx:    reg.Counter("proc_bytes_tx_total"),
		bytesRx:    reg.Counter("proc_bytes_rx_total"),
		drops:      reg.Counter("proc_drops_total"),
		kills:      reg.Counter("proc_kills_total"),
		reconnects: reg.Counter("proc_reconnects_total"),
		hbMisses:   reg.Counter("proc_heartbeat_misses_total"),
	}
}

// Coordinator is the rank-zero hub: it accepts worker connections,
// routes data frames between them, observes liveness (EOF, heartbeat
// timeout), and drives the shared epoch protocol. It implements the
// control half of mpi.Transport; a harness or job runner supplies
// Endpoint from its side of the world.
type Coordinator struct {
	cfg    CoordinatorConfig
	ln     net.Listener
	arena  *mpi.Arena
	flight *obs.Recorder
	met    coordMetrics

	mu           sync.Mutex
	cond         *sync.Cond
	conns        []*wconn
	pids         []int
	gens         []int
	dead         []bool
	byes         []bool
	aliveN       int
	aborted      bool
	closed       bool
	phase        int
	resumeReady  bool
	acked        []bool
	rendezvoused bool     // initial all-ranks rendezvous completed
	pending      []*wconn // conns awaiting the rendezvous welcome

	// Fault-tolerant collective round (Agree/Shrink), under mu. A round
	// completes when every rank is arrived or excused (dead, byed, or
	// disconnected) with at least one live arrival; each reply echoes
	// that rank's own request sequence so stale results are ignored.
	ftArrived []bool
	ftSeqs    []int32
	ftShrink  []bool
	ftFlag    bool
}

// NewCoordinator starts a hub on ln (the caller picks unix vs tcp by
// what it listens on) and begins accepting worker connections.
func NewCoordinator(ln net.Listener, cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Size <= 0 {
		return nil, fmt.Errorf("procmpi: coordinator size %d", cfg.Size)
	}
	c := &Coordinator{
		cfg:    cfg,
		ln:     ln,
		arena:  mpi.NewArena(),
		flight: cfg.Flight,
		met:    newCoordMetrics(cfg.Obs),
		conns:  make([]*wconn, cfg.Size),
		pids:   make([]int, cfg.Size),
		gens:   make([]int, cfg.Size),
		dead:   make([]bool, cfg.Size),
		byes:   make([]bool, cfg.Size),
		acked:  make([]bool, cfg.Size),
		aliveN: cfg.Size,

		ftArrived: make([]bool, cfg.Size),
		ftSeqs:    make([]int32, cfg.Size),
		ftShrink:  make([]bool, cfg.Size),
		ftFlag:    true,
	}
	c.cond = sync.NewCond(&c.mu)
	go c.acceptLoop()
	hb := cfg.HeartbeatTimeout
	if hb == 0 {
		hb = defaultHeartbeatTimeout
	}
	if hb > 0 {
		go c.monitorLoop(hb)
	}
	return c, nil
}

// Addr returns the listener's address (what workers dial).
func (c *Coordinator) Addr() net.Addr { return c.ln.Addr() }

// Close shuts the hub down: no deaths are recorded for connections torn
// down by the close itself.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	conns := c.liveConnsLocked()
	c.cond.Broadcast()
	c.mu.Unlock()
	c.ln.Close()
	for _, wc := range conns {
		wc.c.Close()
	}
}

// Size implements mpi.Transport.
func (c *Coordinator) Size() int { return c.cfg.Size }

// Alive implements mpi.Liveness.
func (c *Coordinator) Alive(rank int) bool {
	if rank < 0 || rank >= c.cfg.Size {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.dead[rank]
}

// AliveCount implements mpi.Transport.
func (c *Coordinator) AliveCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.aliveN
}

// ForEachDead implements mpi.Transport.
func (c *Coordinator) ForEachDead(fn func(rank int)) {
	for r := 0; r < c.cfg.Size; r++ {
		c.mu.Lock()
		d := c.dead[r]
		c.mu.Unlock()
		if d {
			fn(r)
		}
	}
}

// ForEachLive implements mpi.Transport.
func (c *Coordinator) ForEachLive(fn func(rank int)) {
	for r := 0; r < c.cfg.Size; r++ {
		c.mu.Lock()
		d := c.dead[r]
		c.mu.Unlock()
		if !d {
			fn(r)
		}
	}
}

// PID returns the OS process ID a rank reported at rendezvous (ok false
// when the rank never connected or is an in-process worker).
func (c *Coordinator) PID(rank int) (int, bool) {
	if rank < 0 || rank >= c.cfg.Size {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pids[rank], c.pids[rank] > 0
}

// Byes returns how many ranks have reported clean completion.
func (c *Coordinator) Byes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, b := range c.byes {
		if b {
			n++
		}
	}
	return n
}

// ByedRank reports whether a rank completed cleanly.
func (c *Coordinator) ByedRank(rank int) bool {
	if rank < 0 || rank >= c.cfg.Size {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byes[rank]
}

// WaitConnected blocks until every rank has rendezvoused (or the
// deadline passes, or the hub aborts/closes).
func (c *Coordinator) WaitConnected(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	stop := time.AfterFunc(timeout, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer stop.Stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		n := 0
		for _, wc := range c.conns {
			if wc != nil {
				n++
			}
		}
		if n == c.cfg.Size {
			return nil
		}
		if c.aborted || c.closed {
			return fmt.Errorf("procmpi: coordinator down with %d/%d workers connected", n, c.cfg.Size)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("procmpi: rendezvous timeout with %d/%d workers connected", n, c.cfg.Size)
		}
		c.cond.Wait()
	}
}

// Kill implements mpi.Transport: fail-stop a rank. The death is
// recorded synchronously; the enforcement is best-effort asynchronous —
// SIGKILL for a real process, a killed-notification for an in-process
// worker — exactly like pulling a node's power.
func (c *Coordinator) Kill(rank int) {
	if rank < 0 || rank >= c.cfg.Size {
		return
	}
	c.mu.Lock()
	if c.dead[rank] || c.aborted || c.closed {
		c.mu.Unlock()
		return
	}
	c.markDeadLocked(rank)
	wc := c.conns[rank]
	pid := c.pids[rank]
	peers := c.liveConnsLocked()
	c.mu.Unlock()

	c.met.kills.Inc()
	if pid > 0 {
		_ = syscall.Kill(pid, syscall.SIGKILL)
	} else if wc != nil {
		_ = c.writeTo(wc, mpi.Frame{Type: frameKilled, Src: int32(rank), Dst: int32(rank), Tag: 0})
	}
	c.broadcast(peers, mpi.Frame{Type: frameDead, Src: int32(rank), Dst: -1, Tag: 0})
	if c.cfg.OnDeath != nil {
		c.cfg.OnDeath(rank)
	}
	// The death may have been the last thing an FT round was waiting on.
	c.ftMaybeComplete()
}

// markDeadLocked flips the dead bit and emits the forensic record; the
// caller broadcasts and runs callbacks after unlocking.
func (c *Coordinator) markDeadLocked(rank int) {
	c.dead[rank] = true
	c.aliveN--
	c.flight.Emit("dead", rank, -1, 0, 0)
	c.cond.Broadcast()
}

// Abort implements mpi.Transport.
func (c *Coordinator) Abort() {
	c.mu.Lock()
	if c.aborted || c.closed {
		c.mu.Unlock()
		return
	}
	c.aborted = true
	c.flight.Emit("abort", -1, -1, 0, 0)
	peers := c.liveConnsLocked()
	c.cond.Broadcast()
	c.mu.Unlock()
	c.broadcast(peers, mpi.Frame{Type: frameAbort, Src: -1, Dst: -1, Tag: 0})
}

// Aborted implements mpi.Transport.
func (c *Coordinator) Aborted() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.aborted
}

// Interrupt implements mpi.Transport: pause the epoch and wait until
// every live worker has acknowledged (its blocked operations released),
// so the pause is as synchronous as the in-process backend's.
func (c *Coordinator) Interrupt() {
	c.mu.Lock()
	if c.aborted || c.closed || c.phase != phaseRun {
		c.mu.Unlock()
		return
	}
	c.phase = phaseInterrupted
	for i := range c.acked {
		c.acked[i] = false
	}
	c.ftResetLocked() // workers abandon FT rounds on interrupt
	c.flight.Emit("interrupt", -1, -1, 0, 0)
	peers := c.liveConnsLocked()
	c.mu.Unlock()
	c.broadcast(peers, mpi.Frame{Type: frameInterrupt, Src: -1, Dst: -1, Tag: 0})
	c.waitAcks()
}

// Interrupted implements mpi.Transport.
func (c *Coordinator) Interrupted() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.phase != phaseRun
}

// Revive implements mpi.Transport: bring a dead rank back while the
// epoch is paused. The rank's replacement incarnation must already have
// rendezvoused (reconnect-on-revive); reviving a rank with no
// connection still flips the liveness bit — the job runner uses that
// between attempts.
func (c *Coordinator) Revive(rank int) {
	if rank < 0 || rank >= c.cfg.Size {
		return
	}
	c.mu.Lock()
	if !c.dead[rank] || c.aborted || c.closed {
		c.mu.Unlock()
		return
	}
	c.dead[rank] = false
	c.byes[rank] = false
	c.aliveN++
	c.flight.Emit("revive", rank, -1, 0, 0)
	peers := c.liveConnsLocked()
	c.cond.Broadcast()
	c.mu.Unlock()
	c.broadcast(peers, mpi.Frame{Type: frameRevive, Src: int32(rank), Dst: -1, Tag: 0})
}

// Resume implements mpi.Transport: end the pause. Every live worker
// purges its mailbox and resets its bookmark counts before acking; data
// flows again per-worker as acks land (resumeReady gates re-ordering,
// see phaseResuming).
func (c *Coordinator) Resume() {
	c.mu.Lock()
	if c.phase != phaseInterrupted {
		c.mu.Unlock()
		return
	}
	c.phase = phaseResuming
	c.resumeReady = false
	for i := range c.acked {
		c.acked[i] = false
	}
	peers := c.liveConnsLocked()
	c.mu.Unlock()
	c.broadcast(peers, mpi.Frame{Type: frameResume, Src: -1, Dst: -1, Tag: 0})
	c.mu.Lock()
	c.resumeReady = true
	c.mu.Unlock()
	c.waitAcks()
	c.mu.Lock()
	c.phase = phaseRun
	c.ftResetLocked()
	c.flight.Emit("resume", -1, -1, 0, 0)
	c.mu.Unlock()
}

// ftResetLocked abandons the in-progress FT round; workers re-request
// with fresh sequence numbers, so a late reply cannot be mistaken for a
// new round's.
func (c *Coordinator) ftResetLocked() {
	for i := range c.ftArrived {
		c.ftArrived[i] = false
		c.ftShrink[i] = false
	}
	c.ftFlag = true
}

// ftArrive records one rank's contribution to the FT round.
func (c *Coordinator) ftArrive(wc *wconn, seq int32, flag, shrink bool) {
	c.mu.Lock()
	if c.conns[wc.rank] != wc || c.dead[wc.rank] || c.aborted || c.closed || c.phase != phaseRun {
		c.mu.Unlock()
		return
	}
	r := wc.rank
	c.ftArrived[r] = true
	c.ftSeqs[r] = seq
	c.ftShrink[r] = shrink
	if !flag {
		c.ftFlag = false
	}
	c.mu.Unlock()
	c.ftMaybeComplete()
}

// ftMaybeComplete completes the FT round if every rank is arrived or
// excused (dead, byed, disconnected) and at least one live rank
// arrived. Replies are snapshotted under the lock and written after, in
// the broadcast convention.
func (c *Coordinator) ftMaybeComplete() {
	c.mu.Lock()
	if c.aborted || c.closed || c.phase != phaseRun {
		c.mu.Unlock()
		return
	}
	arrivals := 0
	for r := 0; r < c.cfg.Size; r++ {
		if c.ftArrived[r] {
			if !c.dead[r] && c.conns[r] != nil {
				arrivals++
			}
			continue
		}
		if c.dead[r] || c.byes[r] || c.conns[r] == nil {
			continue // excused: cannot and need not contribute
		}
		c.mu.Unlock()
		return // a live rank has yet to arrive
	}
	if arrivals == 0 {
		c.mu.Unlock()
		return
	}
	flag := c.ftFlag
	var survivors []int
	for r := 0; r < c.cfg.Size; r++ {
		if c.ftArrived[r] && !c.dead[r] && c.conns[r] != nil {
			survivors = append(survivors, r)
		}
	}
	type reply struct {
		wc *wconn
		f  mpi.Frame
	}
	var replies []reply
	var surv []byte
	anyShrink := false
	for r := 0; r < c.cfg.Size; r++ {
		if !c.ftArrived[r] || c.dead[r] || c.conns[r] == nil {
			continue
		}
		if c.ftShrink[r] {
			anyShrink = true
			if surv == nil {
				surv = encodeSurvivors(survivors)
			}
			replies = append(replies, reply{c.conns[r], mpi.Frame{
				Type: frameShrinkResult, Src: -1, Dst: int32(r), Tag: c.ftSeqs[r], Payload: surv,
			}})
		} else {
			var p byte
			if flag {
				p = 1
			}
			replies = append(replies, reply{c.conns[r], mpi.Frame{
				Type: frameAgreeResult, Src: -1, Dst: int32(r), Tag: c.ftSeqs[r], Payload: []byte{p},
			}})
		}
	}
	c.ftResetLocked()
	c.mu.Unlock()
	if anyShrink {
		c.flight.Emit("shrink", -1, -1, len(survivors), 0)
	}
	for _, rp := range replies {
		if err := c.writeTo(rp.wc, rp.f); err != nil {
			c.connLost(rp.wc)
		}
	}
}

// waitAcks blocks until every rank is dead, disconnected, or acked; a
// death during the wait satisfies it via markDeadLocked's broadcast.
func (c *Coordinator) waitAcks() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.aborted || c.closed {
			return
		}
		all := true
		for r := 0; r < c.cfg.Size; r++ {
			if !c.dead[r] && c.conns[r] != nil && !c.acked[r] {
				all = false
				break
			}
		}
		if all {
			return
		}
		c.cond.Wait()
	}
}

// liveConnsLocked snapshots the registered connections of live ranks.
func (c *Coordinator) liveConnsLocked() []*wconn {
	out := make([]*wconn, 0, c.aliveN)
	for r, wc := range c.conns {
		if wc != nil && !c.dead[r] {
			out = append(out, wc)
		}
	}
	return out
}

// broadcast writes a control frame to each connection in turn.
func (c *Coordinator) broadcast(peers []*wconn, f mpi.Frame) {
	for _, wc := range peers {
		_ = c.writeTo(wc, f)
	}
}

// writeTo writes one frame to a worker under its write lock.
func (c *Coordinator) writeTo(wc *wconn, f mpi.Frame) error {
	wc.wmu.Lock()
	var err error
	wc.scratch, err = mpi.WriteFrame(wc.c, f, wc.scratch)
	wc.wmu.Unlock()
	if err == nil {
		c.met.framesTx.Inc()
		c.met.bytesTx.Add(uint64(mpi.EncodedFrameLen(len(f.Payload))))
	}
	return err
}

// acceptLoop admits workers until the listener closes.
func (c *Coordinator) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		go c.handshake(conn)
	}
}

// handshake reads a hello, registers the worker, and starts its reader.
func (c *Coordinator) handshake(conn net.Conn) {
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	f, pb, err := mpi.ReadFrame(conn, c.arena)
	if err != nil || f.Type != frameHello {
		if pb != nil {
			pb.Release()
		}
		conn.Close()
		return
	}
	rank := int(f.Src)
	pid, perr := decodeHello(f.Payload)
	if pb != nil {
		pb.Release()
	}
	if perr != nil || rank < 0 || rank >= c.cfg.Size {
		conn.Close()
		return
	}
	_ = conn.SetDeadline(time.Time{})

	c.mu.Lock()
	if c.aborted || c.closed {
		c.mu.Unlock()
		conn.Close()
		return
	}
	if old := c.conns[rank]; old != nil {
		if !c.dead[rank] {
			// A live rank already owns this slot; refuse the impostor.
			c.mu.Unlock()
			conn.Close()
			return
		}
		// A dead rank's replacement incarnation takes over the slot.
		old.c.Close()
	}
	c.gens[rank]++
	wc := &wconn{rank: rank, gen: c.gens[rank], c: conn}
	atomic.StoreInt64(&wc.lastBeat, time.Now().UnixNano())
	c.conns[rank] = wc
	c.pids[rank] = pid
	if wc.gen > 1 {
		c.met.reconnects.Inc()
	}
	c.cond.Broadcast()
	// The read loop starts before the welcome so a death during
	// rendezvous is still observed via EOF. No data can arrive yet —
	// a worker blocks in Dial until its welcome lands.
	go c.readLoop(wc)

	if !c.rendezvoused {
		// Initial rendezvous is a barrier: nobody is released into the
		// application until every rank is connected, so no early frame
		// can be dropped at a not-yet-registered destination.
		c.pending = append(c.pending, wc)
		for _, w := range c.conns {
			if w == nil {
				c.mu.Unlock()
				return
			}
		}
		c.rendezvoused = true
		batch := c.pending
		c.pending = nil
		// The barrier wait must not count against anyone's heartbeat.
		now := time.Now().UnixNano()
		for _, w := range batch {
			atomic.StoreInt64(&w.lastBeat, now)
		}
		welcome := encodeWelcome(c.cfg.Size, c.phase != phaseRun, c.deadRanksLocked())
		c.mu.Unlock()
		for _, w := range batch {
			if err := c.writeTo(w, mpi.Frame{Type: frameWelcome, Src: -1, Dst: int32(w.rank), Tag: 0, Payload: welcome}); err != nil {
				c.connLost(w)
			}
		}
		return
	}

	// Post-rendezvous joiner (a revived rank's new incarnation): welcome
	// immediately with the current liveness view.
	welcome := encodeWelcome(c.cfg.Size, c.phase != phaseRun, c.deadRanksLocked())
	c.mu.Unlock()
	if err := c.writeTo(wc, mpi.Frame{Type: frameWelcome, Src: -1, Dst: int32(rank), Tag: 0, Payload: welcome}); err != nil {
		c.connLost(wc)
	}
}

func (c *Coordinator) deadRanksLocked() []int {
	var out []int
	for r, d := range c.dead {
		if d {
			out = append(out, r)
		}
	}
	return out
}

// readLoop drains one worker connection. A single reader per connection
// guarantees every frame the worker sent before dying is forwarded
// before its death is announced — receivers never observe a death ahead
// of the victim's last message.
func (c *Coordinator) readLoop(wc *wconn) {
	for {
		f, pb, err := mpi.ReadFrame(wc.c, c.arena)
		if err != nil {
			c.connLost(wc)
			return
		}
		c.met.framesRx.Inc()
		c.met.bytesRx.Add(uint64(mpi.EncodedFrameLen(len(f.Payload))))
		atomic.StoreInt64(&wc.lastBeat, time.Now().UnixNano())
		c.handleFrame(wc, f, pb)
	}
}

func (c *Coordinator) handleFrame(wc *wconn, f mpi.Frame, pb *mpi.PooledBuf) {
	release := func() {
		if pb != nil {
			pb.Release()
		}
	}
	switch f.Type {
	case frameData:
		c.route(wc, f)
		release()
	case frameHeartbeat:
		release()
	case frameInterruptAck, frameResumeAck:
		c.mu.Lock()
		if c.conns[wc.rank] == wc {
			c.acked[wc.rank] = true
			c.cond.Broadcast()
		}
		c.mu.Unlock()
		release()
	case frameBye:
		c.mu.Lock()
		c.byes[wc.rank] = true
		c.cond.Broadcast()
		c.mu.Unlock()
		release()
		if c.cfg.OnBye != nil {
			c.cfg.OnBye(wc.rank)
		}
		// A completed rank is excused from FT rounds.
		c.ftMaybeComplete()
	case frameAgree:
		flag := len(f.Payload) > 0 && f.Payload[0] != 0
		release()
		c.ftArrive(wc, f.Tag, flag, false)
	case frameShrink:
		release()
		c.ftArrive(wc, f.Tag, true, true)
	case frameStep:
		release()
		if c.cfg.OnStep != nil {
			c.cfg.OnStep(wc.rank, int(f.Tag))
		}
	case frameAppErr:
		msg := string(f.Payload)
		release()
		if c.cfg.OnAppErr != nil {
			c.cfg.OnAppErr(wc.rank, msg)
		}
	default:
		release()
	}
}

// route forwards one data frame src → dst, enforcing the liveness and
// epoch gates at the hub.
func (c *Coordinator) route(wc *wconn, f mpi.Frame) {
	src, dst := wc.rank, int(f.Dst)
	c.mu.Lock()
	drop := true
	var dwc *wconn
	switch {
	case c.aborted, c.closed:
	case int(f.Src) != src:
		// A worker may only speak as its own rank.
	case c.dead[src]:
	case c.phase == phaseInterrupted:
	case c.phase == phaseResuming && !(c.resumeReady && c.acked[src]):
	case dst < 0 || dst >= c.cfg.Size, c.dead[dst], c.conns[dst] == nil:
	default:
		drop = false
		dwc = c.conns[dst]
	}
	c.mu.Unlock()
	if drop {
		c.met.drops.Inc()
		c.flight.Emit("drop", src, -1, int(f.Tag), int64(dst))
		return
	}
	if err := c.writeTo(dwc, f); err != nil {
		c.connLost(dwc)
	}
}

// connLost handles a connection failure: if the rank was alive, its
// socket EOF is the death certificate (a SIGKILLed process closes its
// socket instantly). A rank that already said bye departs cleanly — its
// process exiting after completion is not a failure.
func (c *Coordinator) connLost(wc *wconn) {
	c.mu.Lock()
	if c.conns[wc.rank] != wc {
		// A replacement incarnation already owns the slot.
		c.mu.Unlock()
		wc.c.Close()
		return
	}
	c.conns[wc.rank] = nil
	died := false
	if !c.dead[wc.rank] && !c.aborted && !c.closed && !c.byes[wc.rank] {
		c.markDeadLocked(wc.rank)
		died = true
	}
	peers := c.liveConnsLocked()
	c.mu.Unlock()
	wc.c.Close()
	if died {
		c.met.kills.Inc()
		c.broadcast(peers, mpi.Frame{Type: frameDead, Src: int32(wc.rank), Dst: -1, Tag: 0})
		if c.cfg.OnDeath != nil {
			c.cfg.OnDeath(wc.rank)
		}
	}
	// Losing the connection excuses the rank from any FT round.
	c.ftMaybeComplete()
}

// monitorLoop watches heartbeats: a worker silent past the timeout is
// fail-stopped even though its socket is open (SIGSTOP, livelock). The
// kernel keeps sockets of stopped processes alive, so EOF alone cannot
// catch them.
func (c *Coordinator) monitorLoop(timeout time.Duration) {
	tick := timeout / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for range t.C {
		c.mu.Lock()
		if c.closed || c.aborted {
			c.mu.Unlock()
			return
		}
		now := time.Now().UnixNano()
		var late []int
		for r, wc := range c.conns {
			if wc == nil || c.dead[r] {
				continue
			}
			if now-atomic.LoadInt64(&wc.lastBeat) > int64(timeout) {
				late = append(late, r)
			}
		}
		c.mu.Unlock()
		for _, r := range late {
			c.met.hbMisses.Inc()
			c.flight.Emit("heartbeat_timeout", r, -1, 0, 0)
			c.Kill(r)
		}
	}
}
