package procmpi

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/mpi"
	"repro/internal/obs"
)

// LocalConfig configures an in-process proc world.
type LocalConfig struct {
	// Network is "unix" (default) or "tcp"; the harness picks the
	// address (a socket in a fresh temp dir, or a loopback port).
	Network string
	// HeartbeatTimeout and HeartbeatInterval thread through to the
	// coordinator and workers (zero means defaults).
	HeartbeatTimeout  time.Duration
	HeartbeatInterval time.Duration
	// Obs and Flight thread through to the coordinator.
	Obs    *obs.Registry
	Flight *obs.Recorder
}

// Local hosts a complete proc-transport world in one process: a real
// coordinator listening on a real socket, and one dialed Worker per
// rank. Message bytes travel through the kernel exactly as they do
// between processes — only the process boundary is elided — which makes
// it the conformance and benchmark harness for the socket transport,
// and the reference implementation of reconnect-on-revive (Revive dials
// a replacement incarnation before flipping the liveness bit).
type Local struct {
	coord *Coordinator
	cfg   LocalConfig
	addr  string
	dir   string // temp dir holding the unix socket, "" for tcp

	mu      sync.Mutex
	workers []*Worker
}

var _ mpi.Transport = (*Local)(nil)

// NewLocal builds a proc world of n in-process workers.
func NewLocal(n int, cfg LocalConfig) (*Local, error) {
	network := cfg.Network
	if network == "" {
		network = "unix"
	}
	var (
		ln  net.Listener
		dir string
		err error
	)
	switch network {
	case "unix":
		dir, err = os.MkdirTemp("", "procmpi")
		if err != nil {
			return nil, err
		}
		ln, err = net.Listen("unix", filepath.Join(dir, "hub.sock"))
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
	case "tcp":
		ln, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("procmpi: unsupported network %q", network)
	}
	coord, err := NewCoordinator(ln, CoordinatorConfig{
		Size:             n,
		HeartbeatTimeout: cfg.HeartbeatTimeout,
		Obs:              cfg.Obs,
		Flight:           cfg.Flight,
	})
	if err != nil {
		ln.Close()
		if dir != "" {
			os.RemoveAll(dir)
		}
		return nil, err
	}
	l := &Local{
		coord:   coord,
		cfg:     cfg,
		addr:    ln.Addr().String(),
		dir:     dir,
		workers: make([]*Worker, n),
	}
	// Dial concurrently: rendezvous is a barrier, so no welcome arrives
	// until every rank has connected.
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			w, derr := l.dial(rank)
			if derr != nil {
				errs[rank] = derr
				return
			}
			l.mu.Lock()
			l.workers[rank] = w
			l.mu.Unlock()
		}(r)
	}
	wg.Wait()
	for _, derr := range errs {
		if derr != nil {
			l.Close()
			return nil, derr
		}
	}
	if err := coord.WaitConnected(10 * time.Second); err != nil {
		l.Close()
		return nil, err
	}
	return l, nil
}

func (l *Local) dial(rank int) (*Worker, error) {
	network := l.cfg.Network
	if network == "" {
		network = "unix"
	}
	return Dial(WorkerConfig{
		Network:           network,
		Addr:              l.addr,
		Rank:              rank,
		Size:              l.coord.Size(),
		HeartbeatInterval: l.cfg.HeartbeatInterval,
		Flight:            l.cfg.Flight,
	})
}

// Coordinator exposes the hub (PIDs, byes) to tests.
func (l *Local) Coordinator() *Coordinator { return l.coord }

// Close tears the world down: workers first, then the hub.
func (l *Local) Close() {
	l.mu.Lock()
	ws := append([]*Worker(nil), l.workers...)
	l.mu.Unlock()
	for _, w := range ws {
		if w != nil {
			w.Close()
		}
	}
	l.coord.Close()
	if l.dir != "" {
		os.RemoveAll(l.dir)
	}
}

// Size implements mpi.Transport.
func (l *Local) Size() int { return l.coord.Size() }

// Endpoint implements mpi.Transport: the rank's current worker
// incarnation.
func (l *Local) Endpoint(rank int) (mpi.Comm, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if rank < 0 || rank >= len(l.workers) {
		return nil, fmt.Errorf("procmpi: rank %d of %d: %w", rank, len(l.workers), mpi.ErrInvalidRank)
	}
	return l.workers[rank], nil
}

// Alive implements mpi.Liveness (the coordinator's authoritative view).
func (l *Local) Alive(rank int) bool { return l.coord.Alive(rank) }

// AliveCount implements mpi.Transport.
func (l *Local) AliveCount() int { return l.coord.AliveCount() }

// ForEachDead implements mpi.Transport.
func (l *Local) ForEachDead(fn func(rank int)) { l.coord.ForEachDead(fn) }

// ForEachLive implements mpi.Transport.
func (l *Local) ForEachLive(fn func(rank int)) { l.coord.ForEachLive(fn) }

// Kill implements mpi.Transport.
func (l *Local) Kill(rank int) { l.coord.Kill(rank) }

// Abort implements mpi.Transport.
func (l *Local) Abort() { l.coord.Abort() }

// Aborted implements mpi.Transport.
func (l *Local) Aborted() bool { return l.coord.Aborted() }

// Interrupt implements mpi.Transport.
func (l *Local) Interrupt() { l.coord.Interrupt() }

// Interrupted implements mpi.Transport.
func (l *Local) Interrupted() bool { return l.coord.Interrupted() }

// Revive implements mpi.Transport: reconnect-on-revive. A replacement
// incarnation dials in (taking over the dead rank's slot), then the
// liveness bit flips and peers learn of the revival — the same order a
// respawned process follows.
func (l *Local) Revive(rank int) {
	if rank < 0 || rank >= l.coord.Size() || l.coord.Alive(rank) {
		return
	}
	w, err := l.dial(rank)
	if err != nil {
		return
	}
	l.mu.Lock()
	old := l.workers[rank]
	l.workers[rank] = w
	l.mu.Unlock()
	if old != nil {
		old.Close()
	}
	l.coord.Revive(rank)
}

// Resume implements mpi.Transport.
func (l *Local) Resume() { l.coord.Resume() }
