// Package procmpi is the multi-process transport backend: each physical
// rank is a real OS process connected to a rank-zero coordinator over a
// Unix or TCP socket, exchanging length-prefixed frames (mpi.Frame).
// The coordinator is a routing hub — workers have exactly one connection
// each, and every data frame takes two hops (src → hub → dst) — which
// keeps rendezvous, liveness, and the epoch protocol in one place at the
// cost of one forwarding copy per message.
//
// Liveness is observed, not simulated: a worker is dead when its socket
// reaches EOF (the kernel reports a SIGKILLed process immediately) or
// when its heartbeats stop (a wedged-but-alive process, e.g. SIGSTOP).
// Both paths feed the same flight-recorder events ("dead", "revive",
// "interrupt", "resume", "abort") and the same Interrupt → Revive →
// Resume epoch protocol as the simulated backend, so the recovery
// orchestration and its forensics are transport-independent.
package procmpi

import (
	"encoding/binary"
	"fmt"
)

// Frame types on the worker⇄coordinator wire. Data frames carry
// application payloads end to end; everything else is the transport's
// control plane.
const (
	// frameData carries one application message; Src/Dst/Tag are the MPI
	// envelope and the payload is the message body. Worker → hub → worker.
	frameData byte = iota + 1
	// frameHello opens a worker connection: Src is the claimed rank, the
	// payload is the worker's PID (zero for in-process workers).
	frameHello
	// frameWelcome acknowledges a hello: the payload carries the world
	// size, the interrupted flag, and the current dead-rank set, so a
	// late or revived worker joins with a correct liveness view.
	frameWelcome
	// frameHeartbeat is the worker's periodic liveness proof.
	frameHeartbeat
	// frameDead announces a rank's death to every worker (Src = victim).
	frameDead
	// frameRevive announces a revived rank to every worker (Src = rank).
	frameRevive
	// frameInterrupt pauses the epoch; workers answer frameInterruptAck
	// once their blocked operations have been released.
	frameInterrupt
	frameInterruptAck
	// frameResume starts a fresh epoch; workers purge their mailboxes and
	// reset bookmark counts before answering frameResumeAck.
	frameResume
	frameResumeAck
	// frameAbort tears the attempt down.
	frameAbort
	// frameKilled tells a worker its own rank was fail-stopped (the
	// in-process analogue of SIGKILL).
	frameKilled
	// frameBye reports clean application completion (worker → hub).
	frameBye
	// frameStep relays an application step notification (Tag = step) so
	// the job runner can drive step-triggered kills.
	frameStep
	// frameAppErr reports an application error; the payload is the error
	// text.
	frameAppErr
	// frameAgree contributes to a fault-tolerant agreement round
	// (mpi.Comm.Agree): Tag is the worker's request sequence number, the
	// payload is one flag byte. Worker → hub.
	frameAgree
	// frameAgreeResult completes an agreement round: Tag echoes the
	// worker's request sequence, the payload is the agreed flag byte.
	frameAgreeResult
	// frameShrink contributes to a shrink round (mpi.Comm.Shrink): Tag is
	// the request sequence. Worker → hub.
	frameShrink
	// frameShrinkResult completes a shrink round: Tag echoes the request
	// sequence, the payload is the agreed survivor set.
	frameShrinkResult
)

// encodeHello builds the hello payload: the worker's PID as 8 bytes big
// endian (zero when the worker is not its own process).
func encodeHello(pid int) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(pid))
	return b[:]
}

func decodeHello(p []byte) (pid int, err error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("procmpi: hello payload %d bytes", len(p))
	}
	return int(binary.BigEndian.Uint64(p)), nil
}

// encodeWelcome builds the welcome payload: world size, interrupted
// flag, and the dead-rank set at join time.
func encodeWelcome(size int, interrupted bool, dead []int) []byte {
	b := make([]byte, 0, 9+4*len(dead))
	var u [4]byte
	binary.BigEndian.PutUint32(u[:], uint32(size))
	b = append(b, u[:]...)
	if interrupted {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	binary.BigEndian.PutUint32(u[:], uint32(len(dead)))
	b = append(b, u[:]...)
	for _, r := range dead {
		binary.BigEndian.PutUint32(u[:], uint32(r))
		b = append(b, u[:]...)
	}
	return b
}

// encodeSurvivors builds the shrink-result payload: uint32 count
// followed by the survivor ranks as uint32s (the welcome's dead-set
// layout).
func encodeSurvivors(ranks []int) []byte {
	b := make([]byte, 4+4*len(ranks))
	binary.BigEndian.PutUint32(b, uint32(len(ranks)))
	for i, r := range ranks {
		binary.BigEndian.PutUint32(b[4+4*i:], uint32(r))
	}
	return b
}

func decodeSurvivors(p []byte) ([]int, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("procmpi: shrink payload %d bytes", len(p))
	}
	n := int(binary.BigEndian.Uint32(p))
	if len(p) != 4+4*n {
		return nil, fmt.Errorf("procmpi: shrink payload %d bytes for %d survivors", len(p), n)
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(binary.BigEndian.Uint32(p[4+4*i:]))
	}
	return out, nil
}

func decodeWelcome(p []byte) (size int, interrupted bool, dead []int, err error) {
	if len(p) < 9 {
		return 0, false, nil, fmt.Errorf("procmpi: welcome payload %d bytes", len(p))
	}
	size = int(binary.BigEndian.Uint32(p))
	interrupted = p[4] != 0
	n := int(binary.BigEndian.Uint32(p[5:]))
	if len(p) != 9+4*n {
		return 0, false, nil, fmt.Errorf("procmpi: welcome payload %d bytes for %d dead", len(p), n)
	}
	for i := 0; i < n; i++ {
		dead = append(dead, int(binary.BigEndian.Uint32(p[9+4*i:])))
	}
	return size, interrupted, dead, nil
}
