package procmpi_test

import (
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/procmpi"
)

// TestHeartbeatTimeoutKillsSilentWorker proves the liveness monitor
// catches a worker that is connected but silent — the SIGSTOP failure
// mode, where the kernel keeps the socket open so EOF never fires. One
// worker dials with heartbeats disabled; only that rank must be declared
// dead, via a "heartbeat_timeout" flight record.
func TestHeartbeatTimeoutKillsSilentWorker(t *testing.T) {
	dir := t.TempDir()
	ln, err := net.Listen("unix", filepath.Join(dir, "hub.sock"))
	if err != nil {
		t.Fatal(err)
	}
	flight := obs.NewRecorder(256, true)
	deaths := make(chan int, 4)
	coord, err := procmpi.NewCoordinator(ln, procmpi.CoordinatorConfig{
		Size:             3,
		HeartbeatTimeout: 300 * time.Millisecond,
		Flight:           flight,
		OnDeath:          func(rank int) { deaths <- rank },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// Dial concurrently: rendezvous is a barrier, so no Dial returns
	// until every rank has connected.
	addr := ln.Addr().String()
	workers := make([]*procmpi.Worker, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			hb := 50 * time.Millisecond
			if r == 1 {
				hb = -1 // silent: no liveness proof, ever
			}
			workers[r], errs[r] = procmpi.Dial(procmpi.WorkerConfig{
				Network:           "unix",
				Addr:              addr,
				Rank:              r,
				Size:              3,
				HeartbeatInterval: hb, // PID stays zero: in-process, no real SIGKILL
			})
		}(r)
	}
	wg.Wait()
	for r, derr := range errs {
		if derr != nil {
			t.Fatalf("dial rank %d: %v", r, derr)
		}
		defer workers[r].Close()
	}
	if err := coord.WaitConnected(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	select {
	case r := <-deaths:
		if r != 1 {
			t.Fatalf("death reported for rank %d, want 1", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("silent worker never declared dead")
	}
	if coord.Alive(1) {
		t.Fatal("rank 1 still alive after heartbeat timeout")
	}
	// Give the chatty workers a few more monitor ticks: they must not be
	// false-positived.
	time.Sleep(400 * time.Millisecond)
	if !coord.Alive(0) || !coord.Alive(2) {
		t.Fatalf("heartbeating workers declared dead: alive0=%v alive2=%v",
			coord.Alive(0), coord.Alive(2))
	}
	found := false
	for _, rec := range flight.Records() {
		if rec.Kind == "heartbeat_timeout" && rec.Rank == 1 {
			found = true
		}
		if rec.Kind == "heartbeat_timeout" && rec.Rank != 1 {
			t.Fatalf("heartbeat_timeout recorded for rank %d", rec.Rank)
		}
	}
	if !found {
		t.Fatal("no heartbeat_timeout flight record for rank 1")
	}
}
