package procmpi

import (
	"testing"

	"repro/internal/failure"
	"repro/internal/stats"
)

// fakeKiller records InjectNow victims through the failure.Injector.
type fakeKiller struct {
	kills []int
}

func (f *fakeKiller) Kill(rank int) { f.kills = append(f.kills, rank) }

// TestSphereTrackerRestart pins the restart-policy tracker semantics:
// exhausting any sphere is job failure, completion needs every sphere.
func TestSphereTrackerRestart(t *testing.T) {
	spheres := [][]int{{0, 1}, {2, 3}}
	tr := newSphereTracker(spheres, 4, false)
	tr.death(2)
	select {
	case <-tr.failed:
		t.Fatal("partial sphere death reported as job failure")
	default:
	}
	tr.bye(0)
	tr.death(3)
	select {
	case v := <-tr.failed:
		if v != 1 {
			t.Fatalf("failed sphere %d, want 1", v)
		}
	default:
		t.Fatal("sphere exhaustion not reported")
	}
	select {
	case <-tr.done:
		t.Fatal("done closed with an unfinished sphere")
	default:
	}
}

// TestSphereTrackerShrink pins the survivor-recovery semantics: a sphere
// exhaustion is an episode, not job failure, and completion requires
// byes only from the surviving spheres.
func TestSphereTrackerShrink(t *testing.T) {
	spheres := [][]int{{0, 1}, {2, 3}, {4, 5}}
	tr := newSphereTracker(spheres, 6, true)
	tr.death(2)
	tr.death(3) // sphere 1 exhausted → episode
	select {
	case <-tr.failed:
		t.Fatal("sphere exhaustion reported as job failure under shrink")
	default:
	}
	select {
	case v := <-tr.episodes:
		if v != 1 {
			t.Fatalf("episode for sphere %d, want 1", v)
		}
	default:
		t.Fatal("no shrink episode recorded")
	}
	tr.bye(0)
	select {
	case <-tr.done:
		t.Fatal("done closed before the last survivor byed")
	default:
	}
	tr.bye(5)
	select {
	case <-tr.done:
	default:
		t.Fatal("done not closed with every surviving sphere byed")
	}
	// A stale bye from the excused sphere's straggler must not panic or
	// double-count.
	tr.bye(2)
}

// TestSphereTrackerShrinkAllDead pins the boundary: exhausting the last
// sphere leaves nobody to shrink onto, which is job failure even under
// the shrink policy.
func TestSphereTrackerShrinkAllDead(t *testing.T) {
	spheres := [][]int{{0}, {1}}
	tr := newSphereTracker(spheres, 2, true)
	tr.death(0)
	tr.death(1)
	select {
	case <-tr.failed:
	default:
		t.Fatal("total extinction not reported as job failure")
	}
	select {
	case <-tr.done:
		t.Fatal("done closed with zero byes")
	default:
	}
}

// TestStepKillerFiresOnce proves the step matcher SIGKILL conduit: each
// schedule entry fires exactly once, at the first step report at or past
// its step, and only while armed.
func TestStepKillerFiresOnce(t *testing.T) {
	fk := &fakeKiller{}
	inj, err := failure.New(fk, [][]int{{0, 1}, {2, 3}}, failure.Config{
		Stream:   stats.NewStream(1),
		Schedule: []failure.Kill{},
	})
	if err != nil {
		t.Fatal(err)
	}
	sk := newStepKiller([]StepKill{{Step: 5, Rank: 2}, {Step: 9, Rank: 3}})

	sk.onStep(0, 4) // unarmed and below threshold
	sk.arm(inj)
	sk.onStep(0, 4)
	if len(fk.kills) != 0 {
		t.Fatalf("kills %v before any entry's step", fk.kills)
	}
	sk.onStep(1, 6) // past entry 0
	sk.onStep(2, 7) // entry 0 already fired
	sk.onStep(0, 9) // entry 1
	sk.onStep(0, 50)
	if len(fk.kills) != 2 || fk.kills[0] != 2 || fk.kills[1] != 3 {
		t.Fatalf("kills = %v, want [2 3]", fk.kills)
	}
	sk.arm(nil)
	sk.onStep(0, 100) // disarmed: nothing left anyway
	if len(fk.kills) != 2 {
		t.Fatalf("disarmed step killer fired: %v", fk.kills)
	}
}
