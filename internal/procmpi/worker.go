package procmpi

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/mpi"
	"repro/internal/obs"
)

// defaultHeartbeatInterval is how often a worker proves liveness; the
// coordinator's default timeout is a large multiple, so transient
// scheduling stalls never read as deaths.
const defaultHeartbeatInterval = 250 * time.Millisecond

// WorkerConfig describes one worker's connection to the coordinator.
type WorkerConfig struct {
	// Network and Addr locate the coordinator's listener ("unix" +
	// socket path, or "tcp" + host:port).
	Network string
	Addr    string
	// Rank is this worker's physical rank; Size the world size.
	Rank int
	Size int
	// PID is the worker's OS process ID, reported at rendezvous so the
	// coordinator can deliver real SIGKILLs. Zero for in-process
	// workers (conformance harness, benchmarks).
	PID int
	// HeartbeatInterval is the liveness-proof cadence; zero means the
	// default, negative disables heartbeats (tests of the timeout path).
	HeartbeatInterval time.Duration
	// Arena is the pooled-buffer arena receives borrow from; nil means a
	// fresh private arena.
	Arena *mpi.Arena
	// Flight receives the worker's send/drop forensic records.
	Flight *obs.Recorder
}

// Worker is one rank's endpoint on the socket transport: an mpi.Comm
// whose mailbox is fed by a reader goroutine draining the coordinator
// connection. It also implements mpi.CountTracker (bookmark exchange),
// mpi.SharedSender (pooled fan-out sends), and mpi.Liveness (the local
// dead-rank view, updated by coordinator broadcasts, which the
// redundancy layer consults for replica failover).
type Worker struct {
	rank   int
	size   int
	conn   net.Conn
	arena  *mpi.Arena
	flight *obs.Recorder

	wmu     sync.Mutex // serialises conn writes
	scratch []byte

	hbStop chan struct{}
	hbOnce sync.Once

	mu          sync.Mutex
	cond        *sync.Cond
	queue       []mpi.Message // arrival order; FIFO per (src, tag) by in-order scan
	dead        []bool
	killed      bool
	aborted     bool
	interrupted bool
	connDown    bool
	sent        []uint64
	recvd       []uint64

	// ULFM-style fault-notification state (all under mu): the installed
	// errhandler, which deaths it has been told about, and the
	// deaths/ackedDeaths watermark pair gating wildcard operations with
	// mpi.ErrFailurePending.
	handler     func(mpi.FailureInfo)
	notified    map[int]bool
	deaths      uint64
	ackedDeaths uint64

	// Fault-tolerant collective state: ftMu serialises Agree/Shrink
	// calls from this endpoint; the round's completion lands via
	// frameAgreeResult/frameShrinkResult (matched on ftSeq) and is
	// signalled through cond.
	ftMu        sync.Mutex
	ftSeq       int32
	ftDone      bool
	ftFlag      bool
	ftSurvivors []int
}

var (
	_ mpi.Comm         = (*Worker)(nil)
	_ mpi.CountTracker = (*Worker)(nil)
	_ mpi.SharedSender = (*Worker)(nil)
	_ mpi.Liveness     = (*Worker)(nil)
)

// Dial connects to the coordinator, performs the hello/welcome
// rendezvous, and starts the reader and heartbeat goroutines. The
// returned worker reflects the world's liveness and epoch state as of
// the welcome (a revived incarnation joins knowing who is dead and
// whether the epoch is paused).
func Dial(cfg WorkerConfig) (*Worker, error) {
	if cfg.Size <= 0 || cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, fmt.Errorf("procmpi: rank %d of %d: %w", cfg.Rank, cfg.Size, mpi.ErrInvalidRank)
	}
	conn, err := net.Dial(cfg.Network, cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("procmpi: dial coordinator: %w", err)
	}
	arena := cfg.Arena
	if arena == nil {
		arena = mpi.NewArena()
	}
	w := &Worker{
		rank:   cfg.Rank,
		size:   cfg.Size,
		conn:   conn,
		arena:  arena,
		flight: cfg.Flight,
		hbStop: make(chan struct{}),
		dead:   make([]bool, cfg.Size),
		sent:   make([]uint64, cfg.Size),
		recvd:  make([]uint64, cfg.Size),
	}
	w.cond = sync.NewCond(&w.mu)

	// Rendezvous under a deadline so a wedged coordinator cannot hang
	// the worker forever.
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	hello := mpi.Frame{Type: frameHello, Src: int32(cfg.Rank), Dst: -1, Tag: 0, Payload: encodeHello(cfg.PID)}
	if err := w.writeFrame(hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("procmpi: hello: %w", err)
	}
	// The rendezvous barrier releases all welcomes in one sequential
	// sweep, so frames from already-welcomed parties can legally arrive
	// ahead of ours: a death broadcast (some batch member crashed during
	// the sweep) or even early data from a fast peer. Buffer everything
	// until the welcome shows up, then replay it in wire order on top of
	// the welcome's (older) snapshot.
	type early struct {
		f  mpi.Frame
		pb *mpi.PooledBuf
	}
	var pre []early
	var welcome mpi.Frame
	for {
		f, pb, err := mpi.ReadFrame(conn, arena)
		if err != nil {
			for _, e := range pre {
				if e.pb != nil {
					e.pb.Release()
				}
			}
			conn.Close()
			return nil, fmt.Errorf("procmpi: welcome: %w", err)
		}
		if f.Type == frameWelcome {
			welcome = f
			defer func() {
				if pb != nil {
					pb.Release()
				}
			}()
			break
		}
		pre = append(pre, early{f: f, pb: pb})
	}
	size, interrupted, deadRanks, err := decodeWelcome(welcome.Payload)
	if err != nil {
		for _, e := range pre {
			if e.pb != nil {
				e.pb.Release()
			}
		}
		conn.Close()
		return nil, err
	}
	if size != cfg.Size {
		for _, e := range pre {
			if e.pb != nil {
				e.pb.Release()
			}
		}
		conn.Close()
		return nil, fmt.Errorf("procmpi: coordinator size %d, worker expects %d", size, cfg.Size)
	}
	w.interrupted = interrupted
	for _, r := range deadRanks {
		if r >= 0 && r < cfg.Size {
			w.dead[r] = true
			w.deaths++
		}
	}
	// Pre-welcome frames were written before our welcome but after its
	// payload was encoded, so they are strictly newer than the snapshot.
	for _, e := range pre {
		w.handleFrame(e.f, e.pb)
	}
	_ = conn.SetDeadline(time.Time{})

	go w.readLoop()
	hb := cfg.HeartbeatInterval
	if hb == 0 {
		hb = defaultHeartbeatInterval
	}
	if hb > 0 {
		go w.heartbeatLoop(hb)
	}
	return w, nil
}

// Close tears the worker down: the heartbeat stops and the connection
// closes, which the coordinator reads as this rank's death if it was
// still alive.
func (w *Worker) Close() error {
	w.hbOnce.Do(func() { close(w.hbStop) })
	return w.conn.Close()
}

// Rank implements mpi.Comm.
func (w *Worker) Rank() int { return w.rank }

// Size implements mpi.Comm.
func (w *Worker) Size() int { return w.size }

// Alive implements mpi.Liveness from the worker's local view (updated
// by coordinator dead/revive broadcasts, so it can lag the hub by one
// in-flight frame).
func (w *Worker) Alive(rank int) bool {
	if rank < 0 || rank >= w.size {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if rank == w.rank {
		return !w.killed
	}
	return !w.dead[rank]
}

func (w *Worker) checkPeer(rank int) error {
	if rank < 0 || rank >= w.size {
		return fmt.Errorf("procmpi: peer %d of %d: %w", rank, w.size, mpi.ErrInvalidRank)
	}
	return nil
}

// sendPrologue performs the Send-side state checks and bookkeeping. ok
// false with nil error means the destination is locally known dead and
// the send is silently dropped, like a lost packet (the coordinator
// drops hub-side too, covering the window where the local view lags).
func (w *Worker) sendPrologue(dst, tag int) (ok bool, err error) {
	if err := w.checkPeer(dst); err != nil {
		return false, err
	}
	w.mu.Lock()
	switch {
	case w.aborted, w.connDown:
		w.mu.Unlock()
		return false, mpi.ErrAborted
	case w.killed:
		w.mu.Unlock()
		return false, mpi.ErrKilled
	case w.interrupted:
		w.mu.Unlock()
		return false, mpi.ErrInterrupted
	}
	w.sent[dst]++
	drop := w.dead[dst]
	w.mu.Unlock()
	w.flight.Emit("send", w.rank, -1, tag, int64(dst))
	if drop {
		w.flight.Emit("drop", w.rank, -1, tag, int64(dst))
		return false, nil
	}
	return true, nil
}

// Send implements mpi.Comm. The payload is copied into the socket by
// the kernel, so the caller may reuse data immediately — the eager-send
// contract holds without an intermediate buffer.
func (w *Worker) Send(dst, tag int, data []byte) error {
	ok, err := w.sendPrologue(dst, tag)
	if !ok {
		return err
	}
	f := mpi.Frame{Type: frameData, Src: int32(w.rank), Dst: int32(dst), Tag: int32(tag), Payload: data}
	if err := w.writeFrame(f); err != nil {
		return mpi.ErrAborted
	}
	return nil
}

// AcquireBuffer implements mpi.SharedSender.
func (w *Worker) AcquireBuffer(n int) ([]byte, *mpi.PooledBuf) {
	return w.arena.Acquire(n)
}

// SendPooled implements mpi.SharedSender. The socket write is the copy,
// so sharing needs no reference handoff: the caller's reference outlives
// the call and the bytes are consumed before it returns.
func (w *Worker) SendPooled(dst, tag int, data []byte, pb *mpi.PooledBuf) error {
	return w.Send(dst, tag, data)
}

// Recv implements mpi.Comm: match first — a queued message from a
// now-dead peer is still delivered (death invalidates only future
// traffic) — then fail by liveness state, else park on the mailbox.
func (w *Worker) Recv(src, tag int) (mpi.Message, error) {
	msg, err := w.recv(src, tag)
	if err != nil {
		w.fireHandler(err)
	}
	return msg, err
}

func (w *Worker) recv(src, tag int) (mpi.Message, error) {
	if src != mpi.AnySource {
		if err := w.checkPeer(src); err != nil {
			return mpi.Message{}, err
		}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if i, ok := w.matchLocked(src, tag); ok {
			return w.takeLocked(i), nil
		}
		if err := w.errIfDownLocked(src); err != nil {
			return mpi.Message{}, err
		}
		w.cond.Wait()
	}
}

// Probe implements mpi.Comm.
func (w *Worker) Probe(src, tag int) (mpi.Status, error) {
	st, err := w.probe(src, tag)
	if err != nil {
		w.fireHandler(err)
	}
	return st, err
}

func (w *Worker) probe(src, tag int) (mpi.Status, error) {
	if src != mpi.AnySource {
		if err := w.checkPeer(src); err != nil {
			return mpi.Status{}, err
		}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if i, ok := w.matchLocked(src, tag); ok {
			m := w.queue[i]
			return mpi.Status{Source: m.Source, Tag: m.Tag, Len: len(m.Data)}, nil
		}
		if err := w.errIfDownLocked(src); err != nil {
			return mpi.Status{}, err
		}
		w.cond.Wait()
	}
}

// Isend implements mpi.Comm; sends are eager, so the request is born
// fulfilled.
func (w *Worker) Isend(dst, tag int, data []byte) (mpi.Request, error) {
	err := w.Send(dst, tag, data)
	return &request{
		done: true,
		st:   mpi.Status{Source: w.rank, Tag: tag, Len: len(data)},
		err:  err,
	}, nil
}

// Irecv implements mpi.Comm; matching is lazy (at Wait/Test), like the
// simulated backend.
func (w *Worker) Irecv(src, tag int) (mpi.Request, error) {
	if src != mpi.AnySource {
		if err := w.checkPeer(src); err != nil {
			return nil, err
		}
	}
	return &request{w: w, src: src, tag: tag, isRecv: true}, nil
}

// SentCounts implements mpi.CountTracker.
func (w *Worker) SentCounts() []uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]uint64, len(w.sent))
	copy(out, w.sent)
	return out
}

// RecvCounts implements mpi.CountTracker.
func (w *Worker) RecvCounts() []uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]uint64, len(w.recvd))
	copy(out, w.recvd)
	return out
}

// PendingMessages returns the number of queued-but-unreceived messages.
func (w *Worker) PendingMessages() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.queue)
}

// Bye reports clean application completion to the coordinator.
func (w *Worker) Bye() error { return w.writeControl(frameBye) }

// NoteStep relays an application step notification, so step-triggered
// kill schedules work across the process boundary.
func (w *Worker) NoteStep(step int) error {
	if step < 0 {
		return nil
	}
	return w.writeFrame(mpi.Frame{Type: frameStep, Src: int32(w.rank), Dst: -1, Tag: int32(step)})
}

// ReportError relays an application error to the coordinator.
func (w *Worker) ReportError(msg string) error {
	return w.writeFrame(mpi.Frame{Type: frameAppErr, Src: int32(w.rank), Dst: -1, Tag: 0, Payload: []byte(msg)})
}

// SetErrhandler implements mpi.Comm. Installing a handler arms the
// wildcard failure gate, so parked wildcard receivers are woken to
// re-evaluate pending deaths.
func (w *Worker) SetErrhandler(fn func(mpi.FailureInfo)) {
	w.mu.Lock()
	w.handler = fn
	if fn != nil && w.notified == nil {
		w.notified = make(map[int]bool)
	}
	w.cond.Broadcast()
	w.mu.Unlock()
}

// FailureAck implements mpi.Comm: it acknowledges every death observed
// so far (clearing ErrFailurePending until the next one) and returns
// the acknowledged failed ranks in ascending order.
func (w *Worker) FailureAck() []int {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.ackedDeaths = w.deaths
	var acked []int
	for r, d := range w.dead {
		if d {
			acked = append(acked, r)
		}
	}
	return acked
}

// fireHandler invokes the errhandler for deaths it has not yet been
// told about. The fresh set is collected under the lock but the handler
// runs outside it, so a handler may call FailureAck, Agree, or Shrink.
func (w *Worker) fireHandler(err error) {
	if !isNotifiableErr(err) {
		return
	}
	w.mu.Lock()
	if w.handler == nil {
		w.mu.Unlock()
		return
	}
	fn := w.handler
	var fresh []int
	for r, d := range w.dead {
		if d && !w.notified[r] {
			w.notified[r] = true
			fresh = append(fresh, r)
		}
	}
	w.mu.Unlock()
	for _, r := range fresh {
		fn(mpi.FailureInfo{Rank: r})
	}
}

func isNotifiableErr(err error) bool {
	return errors.Is(err, mpi.ErrPeerDead) || errors.Is(err, mpi.ErrFailurePending)
}

// ftStart opens a fault-tolerant collective round: it bumps the request
// sequence (stale results from an interrupted round are ignored by the
// seq echo) after verifying the endpoint may still participate. The
// caller holds ftMu.
func (w *Worker) ftStart() (int32, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	switch {
	case w.aborted, w.connDown:
		return 0, mpi.ErrAborted
	case w.killed:
		return 0, mpi.ErrKilled
	case w.interrupted:
		return 0, mpi.ErrInterrupted
	}
	w.ftSeq++
	w.ftDone = false
	return w.ftSeq, nil
}

// ftWait parks until the round identified by seq completes or the
// endpoint leaves the world (abort, own death, epoch interrupt).
func (w *Worker) ftWait(seq int32) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		switch {
		case w.aborted, w.connDown:
			return mpi.ErrAborted
		case w.killed:
			return mpi.ErrKilled
		case w.interrupted:
			return mpi.ErrInterrupted
		}
		if w.ftDone && w.ftSeq == seq {
			return nil
		}
		w.cond.Wait()
	}
}

// Agree implements mpi.Comm: a fault-tolerant all-reduce of one flag
// (logical AND) across the live ranks, coordinated hub-side. Dead ranks
// are excused; every live rank gets the same result.
func (w *Worker) Agree(flag bool) (bool, error) {
	w.ftMu.Lock()
	defer w.ftMu.Unlock()
	seq, err := w.ftStart()
	if err != nil {
		return false, err
	}
	var p byte
	if flag {
		p = 1
	}
	f := mpi.Frame{Type: frameAgree, Src: int32(w.rank), Dst: -1, Tag: seq, Payload: []byte{p}}
	if err := w.writeFrame(f); err != nil {
		return false, mpi.ErrAborted
	}
	if err := w.ftWait(seq); err != nil {
		return false, err
	}
	w.mu.Lock()
	out := w.ftFlag
	w.mu.Unlock()
	return out, nil
}

// Shrink implements mpi.Comm: the live ranks agree on the survivor set
// (coordinated hub-side, same round machinery as Agree) and each wraps
// itself in a dense-renumbered communicator over that set.
func (w *Worker) Shrink() (mpi.Comm, error) {
	w.ftMu.Lock()
	survivors, err := w.shrinkRound()
	w.ftMu.Unlock()
	if err != nil {
		return nil, err
	}
	member := false
	for _, r := range survivors {
		if r == w.rank {
			member = true
			break
		}
	}
	if !member {
		// This rank died (or was announced dead) while the round ran; it
		// cannot continue in a communicator it is not part of.
		return nil, mpi.ErrKilled
	}
	w.FailureAck() // Shrink implies failure_ack at the transport level
	return mpi.NewShrunk(w, survivors)
}

func (w *Worker) shrinkRound() ([]int, error) {
	seq, err := w.ftStart()
	if err != nil {
		return nil, err
	}
	f := mpi.Frame{Type: frameShrink, Src: int32(w.rank), Dst: -1, Tag: seq}
	if err := w.writeFrame(f); err != nil {
		return nil, mpi.ErrAborted
	}
	if err := w.ftWait(seq); err != nil {
		return nil, err
	}
	w.mu.Lock()
	survivors := make([]int, len(w.ftSurvivors))
	copy(survivors, w.ftSurvivors)
	w.mu.Unlock()
	return survivors, nil
}

// matchLocked returns the index of the first queued message matching
// (src, tag); scanning in arrival order preserves FIFO per (src, tag).
func (w *Worker) matchLocked(src, tag int) (int, bool) {
	for i := range w.queue {
		m := &w.queue[i]
		if (src == mpi.AnySource || m.Source == src) && (tag == mpi.AnyTag || m.Tag == tag) {
			return i, true
		}
	}
	return 0, false
}

// takeLocked removes and returns queue[i], recording the delivery.
func (w *Worker) takeLocked(i int) mpi.Message {
	m := w.queue[i]
	copy(w.queue[i:], w.queue[i+1:])
	w.queue[len(w.queue)-1] = mpi.Message{}
	w.queue = w.queue[:len(w.queue)-1]
	w.recvd[m.Source]++
	return m
}

// errIfDownLocked mirrors the simulated backend's priority: abort, own
// death, epoch interrupt, then awaited-peer death.
func (w *Worker) errIfDownLocked(src int) error {
	switch {
	case w.aborted, w.connDown:
		return mpi.ErrAborted
	case w.killed:
		return mpi.ErrKilled
	case w.interrupted:
		return mpi.ErrInterrupted
	case src != mpi.AnySource && w.dead[src]:
		return mpi.ErrPeerDead
	case src == mpi.AnySource && w.handler != nil && w.ackedDeaths < w.deaths:
		// A handler-bearing endpoint must observe unacknowledged deaths
		// before blocking on a wildcard: the awaited sender may be dead.
		return mpi.ErrFailurePending
	}
	return nil
}

// tryRecvLocked-style non-blocking receive for request.Test.
func (w *Worker) tryRecv(src, tag int) (mpi.Message, bool, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if i, ok := w.matchLocked(src, tag); ok {
		return w.takeLocked(i), true, nil
	}
	if err := w.errIfDownLocked(src); err != nil {
		return mpi.Message{}, true, err
	}
	return mpi.Message{}, false, nil
}

// purgeLocked discards the interrupted epoch's queued traffic.
func (w *Worker) purgeLocked() {
	for i := range w.queue {
		w.queue[i].Release()
	}
	w.queue = w.queue[:0]
}

func (w *Worker) writeFrame(f mpi.Frame) error {
	w.wmu.Lock()
	var err error
	w.scratch, err = mpi.WriteFrame(w.conn, f, w.scratch)
	w.wmu.Unlock()
	if err != nil {
		w.markConnDown()
	}
	return err
}

func (w *Worker) writeControl(typ byte) error {
	return w.writeFrame(mpi.Frame{Type: typ, Src: int32(w.rank), Dst: -1, Tag: 0})
}

func (w *Worker) markConnDown() {
	w.mu.Lock()
	if !w.connDown {
		w.connDown = true
		w.cond.Broadcast()
	}
	w.mu.Unlock()
}

// readLoop drains the coordinator connection until it fails; a lost
// connection reads as a torn-down world (the coordinator is the
// attempt).
func (w *Worker) readLoop() {
	for {
		f, pb, err := mpi.ReadFrame(w.conn, w.arena)
		if err != nil {
			w.markConnDown()
			return
		}
		w.handleFrame(f, pb)
	}
}

func (w *Worker) handleFrame(f mpi.Frame, pb *mpi.PooledBuf) {
	release := func() {
		if pb != nil {
			pb.Release()
		}
	}
	switch f.Type {
	case frameData:
		src := int(f.Src)
		w.mu.Lock()
		// Traffic addressed to a dead incarnation of this rank, or from a
		// peer already announced dead, belongs to a closed epoch: drop it.
		if w.killed || w.aborted || src < 0 || src >= w.size || w.dead[src] {
			w.mu.Unlock()
			release()
			return
		}
		w.queue = append(w.queue, mpi.NewMessage(src, int(f.Tag), f.Payload, pb))
		w.cond.Broadcast()
		w.mu.Unlock()
	case frameDead:
		w.mu.Lock()
		if r := int(f.Src); r >= 0 && r < w.size && !w.dead[r] {
			w.dead[r] = true
			w.deaths++
		}
		w.cond.Broadcast()
		w.mu.Unlock()
		release()
	case frameRevive:
		w.mu.Lock()
		if r := int(f.Src); r >= 0 && r < w.size {
			w.dead[r] = false
		}
		w.cond.Broadcast()
		w.mu.Unlock()
		release()
	case frameInterrupt:
		w.mu.Lock()
		w.interrupted = true
		w.cond.Broadcast()
		w.mu.Unlock()
		release()
		_ = w.writeControl(frameInterruptAck)
	case frameResume:
		w.mu.Lock()
		w.purgeLocked()
		for i := range w.sent {
			w.sent[i], w.recvd[i] = 0, 0
		}
		w.interrupted = false
		w.cond.Broadcast()
		w.mu.Unlock()
		release()
		_ = w.writeControl(frameResumeAck)
	case frameAbort:
		w.mu.Lock()
		w.aborted = true
		w.cond.Broadcast()
		w.mu.Unlock()
		release()
	case frameKilled:
		w.mu.Lock()
		w.killed = true
		w.cond.Broadcast()
		w.mu.Unlock()
		release()
	case frameAgreeResult:
		w.mu.Lock()
		if f.Tag == w.ftSeq && !w.ftDone {
			w.ftDone = true
			w.ftFlag = len(f.Payload) > 0 && f.Payload[0] != 0
			w.cond.Broadcast()
		}
		w.mu.Unlock()
		release()
	case frameShrinkResult:
		survivors, err := decodeSurvivors(f.Payload)
		w.mu.Lock()
		if err == nil && f.Tag == w.ftSeq && !w.ftDone {
			w.ftDone = true
			w.ftSurvivors = survivors
			w.cond.Broadcast()
		}
		w.mu.Unlock()
		release()
	default:
		release()
	}
}

func (w *Worker) heartbeatLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-w.hbStop:
			return
		case <-t.C:
			if w.writeControl(frameHeartbeat) != nil {
				return
			}
		}
	}
}

// request implements mpi.Request for worker operations.
type request struct {
	w      *Worker
	src    int
	tag    int
	isRecv bool

	mu   sync.Mutex
	done bool
	st   mpi.Status
	msg  mpi.Message
	err  error
}

var _ mpi.Request = (*request)(nil)

func statusOf(msg mpi.Message) mpi.Status {
	return mpi.Status{Source: msg.Source, Tag: msg.Tag, Len: len(msg.Data)}
}

func (r *request) Wait() (mpi.Message, mpi.Status, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return r.msg, r.st, r.err
	}
	msg, err := r.w.Recv(r.src, r.tag)
	r.done = true
	r.err = err
	if err == nil {
		r.msg = msg
		r.st = statusOf(msg)
	}
	return r.msg, r.st, r.err
}

func (r *request) Test() (bool, mpi.Message, mpi.Status, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return true, r.msg, r.st, r.err
	}
	msg, ok, err := r.w.tryRecv(r.src, r.tag)
	if !ok {
		return false, mpi.Message{}, mpi.Status{}, nil
	}
	r.done = true
	r.err = err
	if err == nil {
		r.msg = msg
		r.st = statusOf(msg)
	} else {
		r.w.fireHandler(err)
	}
	return true, r.msg, r.st, r.err
}
