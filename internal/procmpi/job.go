package procmpi

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/failure"
	"repro/internal/obs"
	"repro/internal/stats"
)

// ErrRestartsExhausted reports that a multi-process job kept failing
// past its restart budget (the proc analogue of core.ErrRestartsExhausted;
// redmpirun maps both to exit code 3).
var ErrRestartsExhausted = errors.New("procmpi: restart budget exhausted")

// JobConfig describes one multi-process job: the attempt loop that forks
// one worker process per physical rank and watches them through the
// coordinator.
type JobConfig struct {
	// Physical is the physical rank count (N · r under Eq. 8).
	Physical int
	// Spheres maps each virtual rank to its physical replica sphere
	// (redundancy.RankMap.Sphere order).
	Spheres [][]int

	// Network is "unix" (default, socket in a fresh temp dir) or "tcp".
	Network string
	// Listen is the tcp listen address (Network "tcp" only); empty means
	// 127.0.0.1:0.
	Listen string

	// Spawn launches the worker process for one physical rank, given the
	// hub's network and address; it must return the started process.
	// Required — this is where redmpirun re-execs itself.
	Spawn func(rank int, network, addr string) (*os.Process, error)
	// OnSpawn, when non-nil, observes every launched worker (attempt,
	// rank, pid) — redmpirun prints the "proc: rank N pid=P" lines CI
	// greps for its external-SIGKILL step.
	OnSpawn func(attempt, rank, pid int)

	// MaxRestarts bounds restart attempts; zero means none allowed.
	MaxRestarts int
	// AttemptTimeout aborts a wedged attempt; zero means 2 minutes.
	AttemptTimeout time.Duration
	// HeartbeatTimeout threads through to the coordinator (zero =
	// default).
	HeartbeatTimeout time.Duration

	// Shrink selects survivor recovery: the job runs exactly one attempt
	// and a sphere exhaustion is not job failure — the workers repair the
	// communicator in place through the fault-notification API and the
	// job completes when every surviving sphere reports a bye. Mutually
	// exclusive with MaxRestarts > 0.
	Shrink bool

	// Schedule injects these kills per attempt as real SIGKILLs to the
	// worker PIDs. ScheduleOnce restricts it to the first attempt.
	Schedule     []failure.Kill
	ScheduleOnce bool
	// StepKills fires real SIGKILLs pinned to application steps: each
	// entry kills its physical rank the first time any worker relays a
	// step notification at or past Step (the proc analogue of
	// core.Config.StepKills, riding the frameStep relay).
	StepKills []StepKill
	// NodeMTBF draws Poisson kills instead (with Seed); zero disables.
	NodeMTBF time.Duration
	Seed     int64

	// Obs, Flight, Tracer thread through to the coordinator and the
	// injector.
	Obs    *obs.Registry
	Flight *obs.Recorder
	Tracer *obs.Tracer

	// OnCoordinator, when non-nil, observes each attempt's hub right
	// after it starts accepting (introspection wiring: the coordinator
	// satisfies obs.RankView).
	OnCoordinator func(*Coordinator)
}

// StepKill pins a SIGKILL to an application step (see JobConfig.StepKills).
type StepKill struct {
	// Step is the 1-based application step that triggers the kill.
	Step int
	// Rank is the physical rank to kill.
	Rank int
}

// JobAttempt records one attempt of a multi-process job.
type JobAttempt struct {
	Index          int
	Failures       int
	JobFailed      bool
	TimedOut       bool
	ShrinkEpisodes int
	Elapsed        time.Duration
	Kills          []failure.Kill
}

// JobResult summarises a multi-process job run.
type JobResult struct {
	Completed      bool
	Restarts       int
	TotalFailures  int
	ShrinkEpisodes int
	Elapsed        time.Duration
	Attempts       []JobAttempt
	PhysicalRanks  int
}

// sphereTracker is the job runner's authoritative completion and failure
// accounting, driven by coordinator callbacks. Because it hangs off
// OnDeath it counts every death the same way regardless of origin —
// injected SIGKILL, a CI script killing a PID from outside, or a worker
// crash — which is the property the proc-smoke job exists to prove.
type sphereTracker struct {
	mu        sync.Mutex
	sphereOf  []int
	remaining []int
	byed      []bool
	byedN     int
	shrink    bool
	excused   []bool
	excusedN  int
	episodes  chan int
	failed    chan int
	done      chan struct{}
	closed    bool
}

func newSphereTracker(spheres [][]int, physical int, shrink bool) *sphereTracker {
	t := &sphereTracker{
		sphereOf:  make([]int, physical),
		remaining: make([]int, len(spheres)),
		byed:      make([]bool, len(spheres)),
		shrink:    shrink,
		excused:   make([]bool, len(spheres)),
		episodes:  make(chan int, len(spheres)),
		failed:    make(chan int, 1),
		done:      make(chan struct{}),
	}
	for i := range t.sphereOf {
		t.sphereOf[i] = -1
	}
	for v, sphere := range spheres {
		t.remaining[v] = len(sphere)
		for _, p := range sphere {
			t.sphereOf[p] = v
		}
	}
	return t
}

// death records one physical rank's death. Under the restart policy,
// exhausting a sphere that has not yet completed is job failure
// (Fig. 7); under shrink it is an episode — the survivors repair the
// job in place, and the exhausted sphere is excused from completion.
func (t *sphereTracker) death(rank int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if rank < 0 || rank >= len(t.sphereOf) {
		return
	}
	v := t.sphereOf[rank]
	if v < 0 || t.byed[v] || t.excused[v] {
		return
	}
	t.remaining[v]--
	if t.remaining[v] > 0 {
		return
	}
	if !t.shrink {
		select {
		case t.failed <- v:
		default:
		}
		return
	}
	t.excused[v] = true
	t.excusedN++
	if t.excusedN == len(t.remaining) {
		// Nobody left to shrink onto.
		select {
		case t.failed <- v:
		default:
		}
		return
	}
	t.episodes <- v // buffered to len(spheres): never blocks
	t.maybeDoneLocked()
}

// bye records one physical rank's clean completion; the job is done when
// every non-excused sphere has at least one finisher.
func (t *sphereTracker) bye(rank int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if rank < 0 || rank >= len(t.sphereOf) {
		return
	}
	v := t.sphereOf[rank]
	if v < 0 || t.byed[v] || t.excused[v] {
		return
	}
	t.byed[v] = true
	t.byedN++
	t.maybeDoneLocked()
}

func (t *sphereTracker) maybeDoneLocked() {
	if t.byedN+t.excusedN == len(t.remaining) && t.byedN > 0 && !t.closed {
		t.closed = true
		close(t.done)
	}
}

// appError carries a worker-reported application error.
type appError struct {
	rank int
	msg  string
}

// RunJob runs the multi-process attempt loop: fork every worker, watch
// deaths and byes through the coordinator, and restart from shared
// storage until the application completes or the budget is spent. The
// workers own checkpoint restore — a fresh attempt's processes find the
// last committed generation in the shared checkpoint directory exactly
// as a BLCR restart would.
func RunJob(cfg JobConfig) (JobResult, error) {
	if cfg.Physical <= 0 {
		return JobResult{}, fmt.Errorf("procmpi: Physical = %d", cfg.Physical)
	}
	if cfg.Spawn == nil {
		return JobResult{}, fmt.Errorf("procmpi: nil Spawn")
	}
	if len(cfg.Spheres) == 0 {
		return JobResult{}, fmt.Errorf("procmpi: empty sphere map")
	}
	if cfg.Shrink && cfg.MaxRestarts > 0 {
		return JobResult{}, fmt.Errorf("procmpi: Shrink never restarts, so MaxRestarts must be 0")
	}
	timeout := cfg.AttemptTimeout
	if timeout <= 0 {
		timeout = 2 * time.Minute
	}
	stream := stats.NewStream(cfg.Seed)
	sk := newStepKiller(cfg.StepKills)

	res := JobResult{PhysicalRanks: cfg.Physical}
	start := time.Now()
	for attempt := 0; attempt <= cfg.MaxRestarts; attempt++ {
		cfg.Tracer.Emit("attempt_start", -1, -1, attempt, nil)
		span := cfg.Flight.StartSpan("attempt", -1, -1, attempt)
		at, appErr := runJobAttempt(cfg, attempt, timeout, stream.Split(), sk)
		span.End()
		at.Index = attempt
		res.Attempts = append(res.Attempts, at)
		res.TotalFailures += at.Failures
		res.ShrinkEpisodes += at.ShrinkEpisodes
		res.Restarts = attempt
		cfg.Tracer.Emit("attempt_end", -1, -1, attempt, map[string]any{
			"job_failed": at.JobFailed,
			"timed_out":  at.TimedOut,
			"failures":   at.Failures,
		})
		switch {
		case appErr == nil && !at.JobFailed && !at.TimedOut:
			res.Completed = true
			res.Elapsed = time.Since(start)
			return res, nil
		case at.TimedOut:
			res.Elapsed = time.Since(start)
			return res, fmt.Errorf("procmpi: attempt %d timed out after %v", attempt, timeout)
		case appErr != nil && !at.JobFailed:
			// A genuine application error, not failure-induced: retrying
			// would fail identically.
			res.Elapsed = time.Since(start)
			return res, appErr
		}
		// Job failure: loop for a restart.
	}
	res.Elapsed = time.Since(start)
	return res, fmt.Errorf("%w after %d attempts", ErrRestartsExhausted, cfg.MaxRestarts+1)
}

// stepKiller matches relayed application steps against the step-kill
// schedule and fires each entry at most once per job (mirroring core's
// once-per-Run semantics). The injector target is attached late — the
// coordinator starts relaying steps before the attempt's injector
// exists — and swapped per attempt.
type stepKiller struct {
	mu    sync.Mutex
	kills []StepKill
	fired []bool
	inj   *failure.Injector
}

func newStepKiller(kills []StepKill) *stepKiller {
	return &stepKiller{kills: kills, fired: make([]bool, len(kills))}
}

func (s *stepKiller) arm(inj *failure.Injector) {
	s.mu.Lock()
	s.inj = inj
	s.mu.Unlock()
}

// onStep is the CoordinatorConfig.OnStep hook: a step report at or past
// a schedule entry's step SIGKILLs that entry's rank.
func (s *stepKiller) onStep(_, step int) {
	s.mu.Lock()
	inj := s.inj
	var victims []int
	for i, k := range s.kills {
		if inj != nil && !s.fired[i] && step >= k.Step {
			s.fired[i] = true
			victims = append(victims, k.Rank)
		}
	}
	s.mu.Unlock()
	for _, r := range victims {
		inj.InjectNow(r)
	}
}

// runJobAttempt runs one attempt: fresh hub, fresh worker processes,
// fresh injector. Teardown is unconditional — every child is reaped
// before the next attempt starts.
func runJobAttempt(cfg JobConfig, attempt int, timeout time.Duration, stream *stats.Stream, sk *stepKiller) (at JobAttempt, appErr error) {
	begin := time.Now()

	network := cfg.Network
	if network == "" {
		network = "unix"
	}
	var (
		ln  net.Listener
		dir string
		err error
	)
	switch network {
	case "unix":
		dir, err = os.MkdirTemp("", "procmpi-job")
		if err != nil {
			return at, err
		}
		defer os.RemoveAll(dir)
		ln, err = net.Listen("unix", filepath.Join(dir, "hub.sock"))
	case "tcp":
		addr := cfg.Listen
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		ln, err = net.Listen("tcp", addr)
	default:
		err = fmt.Errorf("procmpi: unsupported network %q", network)
	}
	if err != nil {
		return at, err
	}

	tracker := newSphereTracker(cfg.Spheres, cfg.Physical, cfg.Shrink)
	appErrs := make(chan appError, cfg.Physical)
	ccfg := CoordinatorConfig{
		Size:             cfg.Physical,
		HeartbeatTimeout: cfg.HeartbeatTimeout,
		Obs:              cfg.Obs,
		Flight:           cfg.Flight,
		OnDeath:          tracker.death,
		OnBye:            tracker.bye,
		OnAppErr: func(rank int, msg string) {
			select {
			case appErrs <- appError{rank: rank, msg: msg}:
			default:
			}
		},
	}
	if len(sk.kills) > 0 {
		ccfg.OnStep = sk.onStep
	}
	coord, err := NewCoordinator(ln, ccfg)
	if err != nil {
		ln.Close()
		return at, err
	}
	defer coord.Close()
	if cfg.OnCoordinator != nil {
		cfg.OnCoordinator(coord)
	}

	addr := ln.Addr().String()
	procs := make([]*os.Process, cfg.Physical)
	defer func() {
		for _, p := range procs {
			if p == nil {
				continue
			}
			_ = p.Kill()
			_, _ = p.Wait()
		}
	}()
	for r := 0; r < cfg.Physical; r++ {
		p, serr := cfg.Spawn(r, network, addr)
		if serr != nil {
			coord.Abort()
			return at, fmt.Errorf("procmpi: spawning rank %d: %w", r, serr)
		}
		procs[r] = p
		if cfg.OnSpawn != nil {
			cfg.OnSpawn(attempt, r, p.Pid)
		}
	}
	if err := coord.WaitConnected(30 * time.Second); err != nil {
		// A worker died (or wedged) before rendezvous; treat it like any
		// other failure and let the restart budget decide.
		coord.Abort()
		at.JobFailed = true
		at.Elapsed = time.Since(begin)
		return at, nil
	}

	// The injector is a schedule timer here: its kills land as real
	// SIGKILLs (the coordinator knows every worker's PID), and the
	// resulting deaths flow back through OnDeath like any external kill.
	schedule := cfg.Schedule
	if cfg.ScheduleOnce && attempt > 0 {
		schedule = nil
	}
	var inj *failure.Injector
	if schedule != nil || cfg.NodeMTBF > 0 || len(cfg.StepKills) > 0 {
		if schedule == nil && cfg.NodeMTBF <= 0 {
			// Step kills only: the injector is a pure InjectNow conduit.
			schedule = []failure.Kill{}
		}
		inj, err = failure.New(coord, cfg.Spheres, failure.Config{
			Stream:   stream,
			NodeMTBF: cfg.NodeMTBF,
			Schedule: schedule,
			Obs:      cfg.Obs,
			Trace:    cfg.Tracer,
			Flight:   cfg.Flight,
		})
		if err != nil {
			coord.Abort()
			return at, err
		}
		inj.Start()
		sk.arm(inj)
		defer func() {
			sk.arm(nil)
			inj.Stop()
			at.Failures = inj.Failures()
			at.Kills = inj.Log()
		}()
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for waiting := true; waiting; {
		select {
		case <-tracker.done:
			// Every non-excused sphere has a finisher. Completion wins over
			// a pending sphere exhaustion: the dead sphere must have byed
			// first, or the tracker would not have closed done.
			waiting = false
		case v := <-tracker.episodes:
			// Shrink policy: a sphere exhaustion the survivors repair in
			// place. Record it and keep waiting for the byes.
			at.ShrinkEpisodes++
			cfg.Obs.Counter("shrink_episodes_total").Inc()
			sp := cfg.Flight.StartSpan("shrink", -1, v, at.ShrinkEpisodes)
			sp.End()
			cfg.Tracer.Emit("shrink_episode", -1, v, at.ShrinkEpisodes, nil)
		case v := <-tracker.failed:
			cfg.Flight.Emit("job_failed", -1, v, 0, int64(attempt))
			at.JobFailed = true
			coord.Abort()
			waiting = false
		case e := <-appErrs:
			appErr = fmt.Errorf("procmpi: rank %d: %s", e.rank, e.msg)
			coord.Abort()
			waiting = false
		case <-timer.C:
			at.TimedOut = true
			coord.Abort()
			waiting = false
		}
	}
	// An episode landing exactly as the last bye drains must still count.
	for done := false; !done; {
		select {
		case v := <-tracker.episodes:
			at.ShrinkEpisodes++
			cfg.Obs.Counter("shrink_episodes_total").Inc()
			sp := cfg.Flight.StartSpan("shrink", -1, v, at.ShrinkEpisodes)
			sp.End()
			cfg.Tracer.Emit("shrink_episode", -1, v, at.ShrinkEpisodes, nil)
		default:
			done = true
		}
	}
	// Externally-delivered deaths are counted even without an injector.
	if inj == nil {
		deaths := 0
		coord.ForEachDead(func(int) { deaths++ })
		at.Failures = deaths
	}
	at.Elapsed = time.Since(begin)
	return at, appErr
}
