package procmpi

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/failure"
	"repro/internal/obs"
	"repro/internal/stats"
)

// ErrRestartsExhausted reports that a multi-process job kept failing
// past its restart budget (the proc analogue of core.ErrRestartsExhausted;
// redmpirun maps both to exit code 3).
var ErrRestartsExhausted = errors.New("procmpi: restart budget exhausted")

// JobConfig describes one multi-process job: the attempt loop that forks
// one worker process per physical rank and watches them through the
// coordinator.
type JobConfig struct {
	// Physical is the physical rank count (N · r under Eq. 8).
	Physical int
	// Spheres maps each virtual rank to its physical replica sphere
	// (redundancy.RankMap.Sphere order).
	Spheres [][]int

	// Network is "unix" (default, socket in a fresh temp dir) or "tcp".
	Network string
	// Listen is the tcp listen address (Network "tcp" only); empty means
	// 127.0.0.1:0.
	Listen string

	// Spawn launches the worker process for one physical rank, given the
	// hub's network and address; it must return the started process.
	// Required — this is where redmpirun re-execs itself.
	Spawn func(rank int, network, addr string) (*os.Process, error)
	// OnSpawn, when non-nil, observes every launched worker (attempt,
	// rank, pid) — redmpirun prints the "proc: rank N pid=P" lines CI
	// greps for its external-SIGKILL step.
	OnSpawn func(attempt, rank, pid int)

	// MaxRestarts bounds restart attempts; zero means none allowed.
	MaxRestarts int
	// AttemptTimeout aborts a wedged attempt; zero means 2 minutes.
	AttemptTimeout time.Duration
	// HeartbeatTimeout threads through to the coordinator (zero =
	// default).
	HeartbeatTimeout time.Duration

	// Schedule injects these kills per attempt as real SIGKILLs to the
	// worker PIDs. ScheduleOnce restricts it to the first attempt.
	Schedule     []failure.Kill
	ScheduleOnce bool
	// NodeMTBF draws Poisson kills instead (with Seed); zero disables.
	NodeMTBF time.Duration
	Seed     int64

	// Obs, Flight, Tracer thread through to the coordinator and the
	// injector.
	Obs    *obs.Registry
	Flight *obs.Recorder
	Tracer *obs.Tracer

	// OnCoordinator, when non-nil, observes each attempt's hub right
	// after it starts accepting (introspection wiring: the coordinator
	// satisfies obs.RankView).
	OnCoordinator func(*Coordinator)
}

// JobAttempt records one attempt of a multi-process job.
type JobAttempt struct {
	Index     int
	Failures  int
	JobFailed bool
	TimedOut  bool
	Elapsed   time.Duration
	Kills     []failure.Kill
}

// JobResult summarises a multi-process job run.
type JobResult struct {
	Completed     bool
	Restarts      int
	TotalFailures int
	Elapsed       time.Duration
	Attempts      []JobAttempt
	PhysicalRanks int
}

// sphereTracker is the job runner's authoritative completion and failure
// accounting, driven by coordinator callbacks. Because it hangs off
// OnDeath it counts every death the same way regardless of origin —
// injected SIGKILL, a CI script killing a PID from outside, or a worker
// crash — which is the property the proc-smoke job exists to prove.
type sphereTracker struct {
	mu        sync.Mutex
	sphereOf  []int
	remaining []int
	byed      []bool
	byedN     int
	failed    chan int
	done      chan struct{}
	closed    bool
}

func newSphereTracker(spheres [][]int, physical int) *sphereTracker {
	t := &sphereTracker{
		sphereOf:  make([]int, physical),
		remaining: make([]int, len(spheres)),
		byed:      make([]bool, len(spheres)),
		failed:    make(chan int, 1),
		done:      make(chan struct{}),
	}
	for i := range t.sphereOf {
		t.sphereOf[i] = -1
	}
	for v, sphere := range spheres {
		t.remaining[v] = len(sphere)
		for _, p := range sphere {
			t.sphereOf[p] = v
		}
	}
	return t
}

// death records one physical rank's death; exhausting a sphere that has
// not yet completed is job failure (Fig. 7).
func (t *sphereTracker) death(rank int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if rank < 0 || rank >= len(t.sphereOf) {
		return
	}
	v := t.sphereOf[rank]
	if v < 0 || t.byed[v] {
		return
	}
	t.remaining[v]--
	if t.remaining[v] == 0 {
		select {
		case t.failed <- v:
		default:
		}
	}
}

// bye records one physical rank's clean completion; the job is done when
// every sphere has at least one finisher.
func (t *sphereTracker) bye(rank int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if rank < 0 || rank >= len(t.sphereOf) {
		return
	}
	v := t.sphereOf[rank]
	if v < 0 || t.byed[v] {
		return
	}
	t.byed[v] = true
	t.byedN++
	if t.byedN == len(t.remaining) && !t.closed {
		t.closed = true
		close(t.done)
	}
}

// appError carries a worker-reported application error.
type appError struct {
	rank int
	msg  string
}

// RunJob runs the multi-process attempt loop: fork every worker, watch
// deaths and byes through the coordinator, and restart from shared
// storage until the application completes or the budget is spent. The
// workers own checkpoint restore — a fresh attempt's processes find the
// last committed generation in the shared checkpoint directory exactly
// as a BLCR restart would.
func RunJob(cfg JobConfig) (JobResult, error) {
	if cfg.Physical <= 0 {
		return JobResult{}, fmt.Errorf("procmpi: Physical = %d", cfg.Physical)
	}
	if cfg.Spawn == nil {
		return JobResult{}, fmt.Errorf("procmpi: nil Spawn")
	}
	if len(cfg.Spheres) == 0 {
		return JobResult{}, fmt.Errorf("procmpi: empty sphere map")
	}
	timeout := cfg.AttemptTimeout
	if timeout <= 0 {
		timeout = 2 * time.Minute
	}
	stream := stats.NewStream(cfg.Seed)

	res := JobResult{PhysicalRanks: cfg.Physical}
	start := time.Now()
	for attempt := 0; attempt <= cfg.MaxRestarts; attempt++ {
		cfg.Tracer.Emit("attempt_start", -1, -1, attempt, nil)
		span := cfg.Flight.StartSpan("attempt", -1, -1, attempt)
		at, appErr := runJobAttempt(cfg, attempt, timeout, stream.Split())
		span.End()
		at.Index = attempt
		res.Attempts = append(res.Attempts, at)
		res.TotalFailures += at.Failures
		res.Restarts = attempt
		cfg.Tracer.Emit("attempt_end", -1, -1, attempt, map[string]any{
			"job_failed": at.JobFailed,
			"timed_out":  at.TimedOut,
			"failures":   at.Failures,
		})
		switch {
		case appErr == nil && !at.JobFailed && !at.TimedOut:
			res.Completed = true
			res.Elapsed = time.Since(start)
			return res, nil
		case at.TimedOut:
			res.Elapsed = time.Since(start)
			return res, fmt.Errorf("procmpi: attempt %d timed out after %v", attempt, timeout)
		case appErr != nil && !at.JobFailed:
			// A genuine application error, not failure-induced: retrying
			// would fail identically.
			res.Elapsed = time.Since(start)
			return res, appErr
		}
		// Job failure: loop for a restart.
	}
	res.Elapsed = time.Since(start)
	return res, fmt.Errorf("%w after %d attempts", ErrRestartsExhausted, cfg.MaxRestarts+1)
}

// runJobAttempt runs one attempt: fresh hub, fresh worker processes,
// fresh injector. Teardown is unconditional — every child is reaped
// before the next attempt starts.
func runJobAttempt(cfg JobConfig, attempt int, timeout time.Duration, stream *stats.Stream) (at JobAttempt, appErr error) {
	begin := time.Now()

	network := cfg.Network
	if network == "" {
		network = "unix"
	}
	var (
		ln  net.Listener
		dir string
		err error
	)
	switch network {
	case "unix":
		dir, err = os.MkdirTemp("", "procmpi-job")
		if err != nil {
			return at, err
		}
		defer os.RemoveAll(dir)
		ln, err = net.Listen("unix", filepath.Join(dir, "hub.sock"))
	case "tcp":
		addr := cfg.Listen
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		ln, err = net.Listen("tcp", addr)
	default:
		err = fmt.Errorf("procmpi: unsupported network %q", network)
	}
	if err != nil {
		return at, err
	}

	tracker := newSphereTracker(cfg.Spheres, cfg.Physical)
	appErrs := make(chan appError, cfg.Physical)
	coord, err := NewCoordinator(ln, CoordinatorConfig{
		Size:             cfg.Physical,
		HeartbeatTimeout: cfg.HeartbeatTimeout,
		Obs:              cfg.Obs,
		Flight:           cfg.Flight,
		OnDeath:          tracker.death,
		OnBye:            tracker.bye,
		OnAppErr: func(rank int, msg string) {
			select {
			case appErrs <- appError{rank: rank, msg: msg}:
			default:
			}
		},
	})
	if err != nil {
		ln.Close()
		return at, err
	}
	defer coord.Close()
	if cfg.OnCoordinator != nil {
		cfg.OnCoordinator(coord)
	}

	addr := ln.Addr().String()
	procs := make([]*os.Process, cfg.Physical)
	defer func() {
		for _, p := range procs {
			if p == nil {
				continue
			}
			_ = p.Kill()
			_, _ = p.Wait()
		}
	}()
	for r := 0; r < cfg.Physical; r++ {
		p, serr := cfg.Spawn(r, network, addr)
		if serr != nil {
			coord.Abort()
			return at, fmt.Errorf("procmpi: spawning rank %d: %w", r, serr)
		}
		procs[r] = p
		if cfg.OnSpawn != nil {
			cfg.OnSpawn(attempt, r, p.Pid)
		}
	}
	if err := coord.WaitConnected(30 * time.Second); err != nil {
		// A worker died (or wedged) before rendezvous; treat it like any
		// other failure and let the restart budget decide.
		coord.Abort()
		at.JobFailed = true
		at.Elapsed = time.Since(begin)
		return at, nil
	}

	// The injector is a schedule timer here: its kills land as real
	// SIGKILLs (the coordinator knows every worker's PID), and the
	// resulting deaths flow back through OnDeath like any external kill.
	schedule := cfg.Schedule
	if cfg.ScheduleOnce && attempt > 0 {
		schedule = nil
	}
	var inj *failure.Injector
	if schedule != nil || cfg.NodeMTBF > 0 {
		inj, err = failure.New(coord, cfg.Spheres, failure.Config{
			Stream:   stream,
			NodeMTBF: cfg.NodeMTBF,
			Schedule: schedule,
			Obs:      cfg.Obs,
			Trace:    cfg.Tracer,
			Flight:   cfg.Flight,
		})
		if err != nil {
			coord.Abort()
			return at, err
		}
		inj.Start()
		defer func() {
			inj.Stop()
			at.Failures = inj.Failures()
			at.Kills = inj.Log()
		}()
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-tracker.done:
		// Every sphere has a finisher. Completion wins over a pending
		// sphere exhaustion: the dead sphere must have byed first, or the
		// tracker would not have closed done.
	case v := <-tracker.failed:
		cfg.Flight.Emit("job_failed", -1, v, 0, int64(attempt))
		at.JobFailed = true
		coord.Abort()
	case e := <-appErrs:
		appErr = fmt.Errorf("procmpi: rank %d: %s", e.rank, e.msg)
		coord.Abort()
	case <-timer.C:
		at.TimedOut = true
		coord.Abort()
	}
	// Externally-delivered deaths are counted even without an injector.
	if inj == nil {
		deaths := 0
		coord.ForEachDead(func(int) { deaths++ })
		at.Failures = deaths
	}
	at.Elapsed = time.Since(begin)
	return at, appErr
}
