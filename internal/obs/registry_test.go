package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("counter not reused by name")
	}

	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	g.SetMax(3)
	if got := g.Value(); got != 5 {
		t.Fatalf("SetMax lowered gauge to %d", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("SetMax = %d, want 9", got)
	}

	h := r.Histogram("h", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	if got := h.Count(); got != 3 {
		t.Fatalf("hist count = %d, want 3", got)
	}
	if got := h.Sum(); got != 55.5 {
		t.Fatalf("hist sum = %v, want 55.5", got)
	}

	snap := r.Snapshot()
	if snap.Counter("c") != 5 || snap.Gauge("g") != 9 {
		t.Fatalf("snapshot lookup: %+v", snap)
	}
	if len(snap.Histograms) != 1 || snap.Histograms[0].Counts[1] != 1 {
		t.Fatalf("snapshot histograms: %+v", snap.Histograms)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", MillisBuckets)
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	g.SetMax(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments retained state")
	}
	if err := r.Merge(Snapshot{}); err != nil {
		t.Fatal(err)
	}
	if snap := r.Snapshot(); len(snap.Counters) != 0 {
		t.Fatalf("nil registry snapshot: %+v", snap)
	}
	var tr *Tracer
	tr.Emit("k", 0, 0, 0, nil)
	if tr.Events() != nil {
		t.Fatal("nil tracer captured events")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryConcurrentHammer drives one registry from many goroutines
// — concurrent counter/gauge/histogram updates, instrument creation, and
// snapshotting — and verifies the totals. Run under -race this is the
// registry's thread-safety proof.
func TestRegistryConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 16
		iters   = 2000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Snapshot continuously while writers hammer.
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot()
			}
		}
	}()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			c := r.Counter("shared_total")
			g := r.Gauge("hwm")
			h := r.Histogram("lat_ms", MillisBuckets)
			for i := 0; i < iters; i++ {
				c.Inc()
				r.Counter("late_bound_total").Add(2)
				g.SetMax(int64(w*iters + i))
				h.Observe(float64(i % 300))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()

	snap := r.Snapshot()
	if got := snap.Counter("shared_total"); got != workers*iters {
		t.Fatalf("shared_total = %d, want %d", got, workers*iters)
	}
	if got := snap.Counter("late_bound_total"); got != 2*workers*iters {
		t.Fatalf("late_bound_total = %d, want %d", got, 2*workers*iters)
	}
	if got := snap.Gauge("hwm"); got != int64(workers*iters-1) {
		t.Fatalf("hwm = %d, want %d", got, workers*iters-1)
	}
	var hcount uint64
	for _, h := range snap.Histograms {
		if h.Name == "lat_ms" {
			for _, n := range h.Counts {
				hcount += n
			}
		}
	}
	if hcount != workers*iters {
		t.Fatalf("histogram count = %d, want %d", hcount, workers*iters)
	}
}

func TestMergeAddsCountersMaxesGauges(t *testing.T) {
	a := NewRegistry()
	a.Counter("c").Add(3)
	a.Gauge("g").Set(10)
	a.Histogram("h", []float64{1, 2}).Observe(1.5)

	b := NewRegistry()
	b.Counter("c").Add(4)
	b.Gauge("g").Set(7)
	b.Histogram("h", []float64{1, 2}).Observe(0.5)

	if err := a.Merge(b.Snapshot()); err != nil {
		t.Fatal(err)
	}
	snap := a.Snapshot()
	if got := snap.Counter("c"); got != 7 {
		t.Fatalf("merged counter = %d, want 7", got)
	}
	if got := snap.Gauge("g"); got != 10 {
		t.Fatalf("merged gauge = %d, want 10 (max)", got)
	}
	for _, h := range snap.Histograms {
		if h.Name == "h" {
			if h.Counts[0] != 1 || h.Counts[1] != 1 || h.Sum != 2 {
				t.Fatalf("merged histogram: %+v", h)
			}
		}
	}

	// Shape mismatch is rejected.
	c := NewRegistry()
	c.Histogram("h", []float64{5}).Observe(1)
	if err := a.Merge(c.Snapshot()); err == nil {
		t.Fatal("mismatched histogram bounds merged silently")
	}
}

func TestSnapshotFormatAndJSONDeterministic(t *testing.T) {
	mk := func() Snapshot {
		r := NewRegistry()
		r.Counter("b_total").Add(2)
		r.Counter("a_total").Add(1)
		r.Gauge("depth_hwm").Set(4)
		r.Histogram("ms", []float64{10}).Observe(3)
		return r.Snapshot()
	}
	s1, s2 := mk(), mk()
	j1, err := json.Marshal(s1)
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := json.Marshal(s2)
	if string(j1) != string(j2) {
		t.Fatalf("snapshot JSON not deterministic:\n%s\n%s", j1, j2)
	}
	text := s1.Format()
	if !strings.Contains(text, "a_total") || !strings.Contains(text, "depth_hwm") {
		t.Fatalf("format missing instruments:\n%s", text)
	}
	if strings.Index(text, "a_total") > strings.Index(text, "b_total") {
		t.Fatalf("counters not sorted:\n%s", text)
	}

	filtered := s1.FilterCounters(func(name string) bool { return name != "b_total" })
	if len(filtered.Counters) != 1 || filtered.Counters[0].Name != "a_total" {
		t.Fatalf("filter: %+v", filtered)
	}
	if len(filtered.Gauges) != 0 || len(filtered.Histograms) != 0 {
		t.Fatalf("filter kept non-counters: %+v", filtered)
	}
}
