package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// DefaultFlightCap is the per-rank ring capacity a Recorder uses when the
// caller does not choose one: enough to hold a whole recovery episode
// (interrupt, revive, resume, fetch, restore, the first recomputed
// steps) without retaining a long run's full history.
const DefaultFlightCap = 256

// Record is one flight-recorder entry. Unlike the Tracer's Event it is a
// fixed-size value — no payload map — so the Emit hot path stores it
// into a preallocated ring slot without allocating.
//
// Seq is the per-rank logical clock (0, 1, 2, … in emission order on
// that rank), exactly like Event.Seq. Nanos is monotonic nanoseconds
// since the recorder was created, recorded only in dual-clock mode; in
// the default deterministic mode it stays zero so two runs of the same
// seeded job dump byte-identical black boxes. Ev distinguishes span
// boundaries ("B"/"E", matching Chrome trace_event phase names) from
// point records (empty). Arg is a kind-specific integer: the peer rank
// of a send, the duration in nanoseconds of a span end (dual-clock mode
// only), the kill ordinal of a kill.
type Record struct {
	Seq    uint64 `json:"seq"`
	Nanos  int64  `json:"ns,omitempty"`
	Kind   string `json:"kind"`
	Ev     string `json:"ev,omitempty"`
	Rank   int32  `json:"rank"`
	Sphere int32  `json:"sphere"`
	Step   int32  `json:"step"`
	Arg    int64  `json:"arg,omitempty"`
}

// Span-boundary markers for Record.Ev (Chrome trace_event phase names,
// so a dump converts to a Perfetto timeline without a mapping table).
const (
	EvBegin = "B"
	EvEnd   = "E"
)

// recStripes is the number of lock stripes. Ranks hash onto stripes, so
// contention on Emit is bounded by stripe collisions, not by a single
// global mutex like the Tracer's.
const recStripes = 64

// recRing is one rank's ring: a fixed-capacity buffer plus the rank's
// logical clock. seq counts every emission; only the last cap records
// are retained (seq-cap .. seq-1), so memory is bounded regardless of
// run length.
type recRing struct {
	seq uint64
	buf []Record
}

type recStripe struct {
	mu    sync.Mutex
	rings map[int]*recRing
	// Pad each stripe to its own cache line so unrelated ranks' Emits do
	// not false-share.
	_ [40]byte
}

// Recorder is the bounded flight recorder: a lock-striped set of
// per-rank ring buffers sized cap records each. Emit is allocation-free
// after a rank's first record (the ring materializes lazily), making it
// cheap enough to leave on message hot paths; memory is fixed at
// cap × ranks-that-emitted regardless of how long the job runs. On
// failure or exit the retained records are the "black box": the last
// cap events of every rank, dumped with WriteJSONL.
//
// A nil *Recorder is the disabled mode: Emit, StartSpan, and every
// accessor are no-ops, so instrumented code holds recorder pointers
// unconditionally, like the rest of the obs instruments.
type Recorder struct {
	cap     int
	mono    bool
	base    time.Time
	stripes [recStripes]recStripe
}

// NewRecorder creates a recorder with the given per-rank ring capacity
// (DefaultFlightCap when cap <= 0). mono selects dual-clock mode: each
// record additionally carries monotonic nanoseconds since recorder
// creation, trading byte-identical determinism for real phase timings.
func NewRecorder(cap int, mono bool) *Recorder {
	if cap <= 0 {
		cap = DefaultFlightCap
	}
	r := &Recorder{cap: cap, mono: mono, base: time.Now()}
	for i := range r.stripes {
		r.stripes[i].rings = make(map[int]*recRing)
	}
	return r
}

// Cap returns the per-rank ring capacity (0 on a nil recorder).
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return r.cap
}

// Mono reports whether the recorder runs in dual-clock mode.
func (r *Recorder) Mono() bool { return r != nil && r.mono }

// Emit records one point record on rank's stream. kind should be a
// static string (a constant) so the call stays allocation-free; arg is
// kind-specific (see Record).
func (r *Recorder) Emit(kind string, rank, sphere, step int, arg int64) {
	r.emit(kind, "", rank, sphere, step, arg)
}

func (r *Recorder) emit(kind, ev string, rank, sphere, step int, arg int64) {
	if r == nil {
		return
	}
	var ns int64
	if r.mono {
		ns = int64(time.Since(r.base))
	}
	s := &r.stripes[uint(rank)%recStripes]
	s.mu.Lock()
	rg := s.rings[rank]
	if rg == nil {
		rg = &recRing{buf: make([]Record, r.cap)}
		s.rings[rank] = rg
	}
	rg.buf[rg.seq%uint64(r.cap)] = Record{
		Seq:    rg.seq,
		Nanos:  ns,
		Kind:   kind,
		Ev:     ev,
		Rank:   int32(rank),
		Sphere: int32(sphere),
		Step:   int32(step),
		Arg:    arg,
	}
	rg.seq++
	s.mu.Unlock()
}

// Span is an in-progress phase measurement. End emits the matching "E"
// record; in dual-clock mode its Arg carries the span duration in
// nanoseconds. The zero Span (from a nil recorder) is a no-op.
type Span struct {
	rec    *Recorder
	kind   string
	rank   int
	sphere int
	step   int
	start  int64
}

// StartSpan emits a span-begin record and returns the handle whose End
// emits the matching end. Spans of the same kind on the same rank must
// nest (End in reverse Start order), which is how every call site uses
// them; redreport pairs B/E per (rank, kind) with a stack.
func (r *Recorder) StartSpan(kind string, rank, sphere, step int) Span {
	if r == nil {
		return Span{}
	}
	var start int64
	if r.mono {
		start = int64(time.Since(r.base))
	}
	r.emit(kind, EvBegin, rank, sphere, step, 0)
	return Span{rec: r, kind: kind, rank: rank, sphere: sphere, step: step, start: start}
}

// End closes the span. Safe on the zero Span.
func (sp Span) End() {
	if sp.rec == nil {
		return
	}
	var dur int64
	if sp.rec.mono {
		dur = int64(time.Since(sp.rec.base)) - sp.start
	}
	sp.rec.emit(sp.kind, EvEnd, sp.rank, sp.sphere, sp.step, dur)
}

// Records returns every retained record in canonical order — sorted by
// (Rank, Seq), the same order WriteJSONL dumps — as a copy safe to hold
// while emission continues.
func (r *Recorder) Records() []Record {
	if r == nil {
		return nil
	}
	var out []Record
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		for _, rg := range s.rings {
			lo := uint64(0)
			if rg.seq > uint64(r.cap) {
				lo = rg.seq - uint64(r.cap)
			}
			for q := lo; q < rg.seq; q++ {
				out = append(out, rg.buf[q%uint64(r.cap)])
			}
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Tail returns the most recent n retained records: ordered by monotonic
// time in dual-clock mode, by (Rank, Seq) in deterministic mode (where
// "recent" across ranks is not defined). This is the /timeline view.
func (r *Recorder) Tail(n int) []Record {
	recs := r.Records()
	if r != nil && r.mono {
		sort.Slice(recs, func(i, j int) bool {
			if recs[i].Nanos != recs[j].Nanos {
				return recs[i].Nanos < recs[j].Nanos
			}
			if recs[i].Rank != recs[j].Rank {
				return recs[i].Rank < recs[j].Rank
			}
			return recs[i].Seq < recs[j].Seq
		})
	}
	if n > 0 && len(recs) > n {
		recs = recs[len(recs)-n:]
	}
	return recs
}

// Dropped returns how many records the rings have overwritten: total
// emissions minus retained. Nonzero means the black box holds only each
// rank's most recent cap events.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	var dropped uint64
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		for _, rg := range s.rings {
			if rg.seq > uint64(r.cap) {
				dropped += rg.seq - uint64(r.cap)
			}
		}
		s.mu.Unlock()
	}
	return dropped
}

// WriteJSONL dumps the black box: every retained record as one JSON
// line, in (Rank, Seq) order. In deterministic mode the bytes are
// identical across runs of the same seeded job (for streams whose
// emission order is deterministic — failure-free runs, and every
// single-goroutine stream).
func (r *Recorder) WriteJSONL(w io.Writer) error {
	for _, rec := range r.Records() {
		line, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("obs: marshal flight record: %w", err)
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return fmt.Errorf("obs: write flight record: %w", err)
		}
	}
	return nil
}
