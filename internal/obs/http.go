package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
)

// RankView is the liveness surface /ranks exposes; *simmpi.World
// implements it. The view is attached per attempt (worlds are torn down
// and rebuilt across restarts), so the server holds it through an
// atomic swap rather than at construction.
type RankView interface {
	Size() int
	AliveCount() int
	ForEachDead(fn func(rank int))
}

// Server is the live introspection endpoint of a running job:
//
//	/metrics  — the Registry snapshot in Prometheus text format 0.0.4
//	/healthz  — liveness probe ("ok")
//	/ranks    — the world's liveness bitset as JSON (size, alive, dead ranks)
//	/timeline — the flight recorder's recent records as JSON
//
// Registry and Recorder may each be nil; the matching endpoints then
// serve empty-but-well-formed responses, so a caller can wire up
// whichever subset of telemetry it enabled.
type Server struct {
	reg   *Registry
	rec   *Recorder
	ranks atomic.Pointer[rankViewBox]
	srv   *http.Server
	ln    net.Listener
}

type rankViewBox struct{ v RankView }

// NewServer creates an introspection server over the given registry and
// recorder (either may be nil).
func NewServer(reg *Registry, rec *Recorder) *Server {
	return &Server{reg: reg, rec: rec}
}

// SetRankView attaches (or replaces) the liveness view behind /ranks.
// Safe to call concurrently with request handling; the orchestrator
// calls it once per attempt with the fresh world.
func (s *Server) SetRankView(v RankView) {
	s.ranks.Store(&rankViewBox{v: v})
}

// Handler returns the HTTP handler serving the four endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.reg.Snapshot().WritePrometheus(w); err != nil {
			// Headers are gone; nothing useful left to do but note it.
			return
		}
	})
	mux.HandleFunc("/ranks", func(w http.ResponseWriter, _ *http.Request) {
		reply := ranksReply{Dead: []int{}}
		if box := s.ranks.Load(); box != nil && box.v != nil {
			reply.Size = box.v.Size()
			reply.Alive = box.v.AliveCount()
			box.v.ForEachDead(func(rank int) {
				reply.Dead = append(reply.Dead, rank)
			})
		}
		writeJSON(w, reply)
	})
	mux.HandleFunc("/timeline", func(w http.ResponseWriter, r *http.Request) {
		n := 256
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil && v > 0 {
				n = v
			}
		}
		reply := timelineReply{Clock: "none", Records: []Record{}}
		if s.rec != nil {
			reply.Clock = "logical"
			if s.rec.Mono() {
				reply.Clock = "mono"
			}
			reply.Dropped = s.rec.Dropped()
			reply.Records = s.rec.Tail(n)
		}
		writeJSON(w, reply)
	})
	return mux
}

// ranksReply is the /ranks JSON shape.
type ranksReply struct {
	Size  int   `json:"size"`
	Alive int   `json:"alive"`
	Dead  []int `json:"dead"`
}

// timelineReply is the /timeline JSON shape.
type timelineReply struct {
	Clock   string   `json:"clock"`
	Dropped uint64   `json:"dropped"`
	Records []Record `json:"records"`
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(append(data, '\n'))
}

// Start binds addr and serves in the background, returning the bound
// address (useful with a ":0" port). Stop shuts the listener down.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler()}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Stop
	return ln.Addr().String(), nil
}

// Stop closes the server started by Start. Safe when Start never ran.
func (s *Server) Stop() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}
