package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	rpprof "runtime/pprof"
)

// ProfileConfig selects which profiling surfaces to enable for a run.
type ProfileConfig struct {
	// Addr, when non-empty, serves net/http/pprof on this address for
	// the duration of the run (e.g. "localhost:6060").
	Addr string
	// CPUFile, when non-empty, captures a CPU profile of the whole run
	// into this file.
	CPUFile string
	// HeapFile, when non-empty, writes a heap profile at shutdown.
	HeapFile string
}

// StartProfiling enables the configured profiling surfaces and returns a
// stop function that finalises them (stops the CPU profile, dumps the
// heap profile, shuts the pprof listener). The stop function must be
// called exactly once; it reports the first finalisation error.
func StartProfiling(cfg ProfileConfig) (func() error, error) {
	var stops []func() error

	if cfg.CPUFile != "" {
		f, err := os.Create(cfg.CPUFile)
		if err != nil {
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := rpprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		stops = append(stops, func() error {
			rpprof.StopCPUProfile()
			return f.Close()
		})
	}

	if cfg.Addr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ln, err := net.Listen("tcp", cfg.Addr)
		if err != nil {
			runStops(stops)
			return nil, fmt.Errorf("obs: pprof listener: %w", err)
		}
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln) // Serve returns when the listener closes
		stops = append(stops, func() error {
			err := srv.Close()
			if err == http.ErrServerClosed {
				return nil
			}
			return err
		})
	}

	if cfg.HeapFile != "" {
		heapFile := cfg.HeapFile
		stops = append(stops, func() error {
			f, err := os.Create(heapFile)
			if err != nil {
				return fmt.Errorf("obs: heap profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialise final live-heap statistics
			if err := rpprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("obs: heap profile: %w", err)
			}
			return nil
		})
	}

	return func() error { return runStops(stops) }, nil
}

func runStops(stops []func() error) error {
	var first error
	for _, stop := range stops {
		if err := stop(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
