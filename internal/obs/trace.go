package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Event is one structured trace record. Rank identifies the emitting
// stream (virtual rank for protocol events, physical rank for failure
// events, -1 for orchestrator-level events); Sphere is the replica
// sphere involved, -1 when not applicable; Step is the logical step the
// event belongs to (application step, checkpoint generation, or attempt
// index — whatever the Kind documents).
//
// Seq is a deterministic logical clock: each Rank's events are numbered
// 0, 1, 2, … in emission order on that rank. Events deliberately carry
// no wall-clock timestamps, so two runs of the same deterministic job
// produce byte-identical traces, and the streams of replica ranks can be
// diffed directly.
type Event struct {
	Seq     uint64         `json:"seq"`
	Kind    string         `json:"kind"`
	Rank    int            `json:"rank"`
	Sphere  int            `json:"sphere"`
	Step    int            `json:"step"`
	Payload map[string]any `json:"payload,omitempty"`
}

// Tracer collects events and, on Close, writes them as sorted JSONL.
// A nil *Tracer is the default no-op implementation: Emit on nil does
// nothing, so instrumented code needs no enabled-check.
//
// Emit is safe for concurrent use; the per-rank sequence numbers make
// the final sorted output independent of goroutine interleaving across
// ranks.
type Tracer struct {
	mu     sync.Mutex
	w      io.Writer
	seq    map[int]uint64
	events []Event
}

// NewTracer returns a tracer that writes JSONL to w on Close. w may be
// nil, in which case the tracer only captures (for tests — read back
// with Events).
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w, seq: make(map[int]uint64)}
}

// Emit records one event. Payload values must be JSON-marshalable;
// encoding/json sorts map keys, so payload rendering is deterministic.
func (t *Tracer) Emit(kind string, rank, sphere, step int, payload map[string]any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := Event{Seq: t.seq[rank], Kind: kind, Rank: rank, Sphere: sphere, Step: step, Payload: payload}
	t.seq[rank]++
	t.events = append(t.events, e)
}

// Events returns a copy of the captured events in canonical order:
// sorted by (Rank, Seq), which is the same order Close writes.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	sortEvents(out)
	return out
}

// Close writes the captured events as JSONL in canonical (Rank, Seq)
// order. Safe on a nil tracer and on a tracer without a writer.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.w == nil {
		return nil
	}
	sortEvents(t.events)
	for _, e := range t.events {
		line, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("obs: marshal trace event: %w", err)
		}
		if _, err := t.w.Write(append(line, '\n')); err != nil {
			return fmt.Errorf("obs: write trace: %w", err)
		}
	}
	return nil
}

func sortEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Rank != events[j].Rank {
			return events[i].Rank < events[j].Rank
		}
		return events[i].Seq < events[j].Seq
	})
}
