package obs

import (
	"fmt"
	"io"
	"math"
	"strings"
	"testing"
)

func promSnapshot(t *testing.T) Snapshot {
	t.Helper()
	reg := NewRegistry()
	reg.Counter("simmpi_sends_total").Add(42)
	reg.Gauge("simmpi_mailbox_depth_hwm").Set(7)
	h := reg.Histogram("runner_attempt_ms", []float64{1, 4, 16})
	for _, v := range []float64{0.5, 2, 2, 8, 100} {
		h.Observe(v)
	}
	return reg.Snapshot()
}

func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := promSnapshot(t).WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE simmpi_sends_total counter
simmpi_sends_total 42
# TYPE simmpi_mailbox_depth_hwm gauge
simmpi_mailbox_depth_hwm 7
# TYPE runner_attempt_ms histogram
runner_attempt_ms_bucket{le="1"} 1
runner_attempt_ms_bucket{le="4"} 3
runner_attempt_ms_bucket{le="16"} 4
runner_attempt_ms_bucket{le="+Inf"} 5
runner_attempt_ms_sum 112.5
runner_attempt_ms_count 5
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	var a, b strings.Builder
	snap := promSnapshot(t)
	if err := snap.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := snap.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two expositions of one snapshot differ")
	}
}

func TestPromName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"simmpi_sends_total", "simmpi_sends_total"},
		{"metric:sub", "metric:sub"},
		{"bad-name.with spaces", "bad_name_with_spaces"},
		{"9leading", "_leading"},
		{"", "_"},
	} {
		if got := promName(tc.in); got != tc.want {
			t.Errorf("promName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSnapshotHistogramAccessor(t *testing.T) {
	snap := promSnapshot(t)
	hv, ok := snap.Histogram("runner_attempt_ms")
	if !ok {
		t.Fatal("Histogram() did not find runner_attempt_ms")
	}
	if hv.Count() != 5 {
		t.Fatalf("Count() = %d, want 5", hv.Count())
	}
	if _, ok := snap.Histogram("nope"); ok {
		t.Fatal("Histogram() found a histogram that does not exist")
	}
}

func TestHistogramQuantile(t *testing.T) {
	hv := HistogramValue{Bounds: []float64{1, 4, 16}, Counts: []uint64{1, 2, 1, 1}}
	// p50: target 2.5 of 5 lands in the (1,4] bucket (cum 1→3):
	// 1 + 3*(2.5-1)/2 = 3.25.
	if got := hv.Quantile(0.5); math.Abs(got-3.25) > 1e-9 {
		t.Fatalf("p50 = %g, want 3.25", got)
	}
	// p99 lands in +Inf: clamp to the highest finite bound.
	if got := hv.Quantile(0.99); got != 16 {
		t.Fatalf("p99 = %g, want 16 (clamped)", got)
	}
	if got := (HistogramValue{}).Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty histogram quantile = %g, want NaN", got)
	}
}

func TestSnapshotFilterPreservesAllFamilies(t *testing.T) {
	snap := promSnapshot(t)
	all := snap.Filter(func(string) bool { return true })
	if len(all.Counters) != 1 || len(all.Gauges) != 1 || len(all.Histograms) != 1 {
		t.Fatalf("Filter(keep-all) dropped instruments: %d/%d/%d",
			len(all.Counters), len(all.Gauges), len(all.Histograms))
	}
	none := snap.Filter(func(name string) bool { return strings.HasPrefix(name, "runner_") })
	if len(none.Counters) != 0 || len(none.Gauges) != 0 || len(none.Histograms) != 1 {
		t.Fatalf("Filter(runner_) kept the wrong set: %d/%d/%d",
			len(none.Counters), len(none.Gauges), len(none.Histograms))
	}
}

func TestFilterCountersStillStrips(t *testing.T) {
	// The redmpirun golden-metrics test depends on FilterCounters
	// producing a counters-only snapshot; the generalization must not
	// have changed that.
	out := promSnapshot(t).FilterCounters(func(string) bool { return true })
	if len(out.Counters) != 1 || out.Gauges != nil || out.Histograms != nil {
		t.Fatalf("FilterCounters no longer counters-only: %d/%v/%v",
			len(out.Counters), out.Gauges, out.Histograms)
	}
}

func TestFormatRendersQuantiles(t *testing.T) {
	text := promSnapshot(t).Format()
	for _, want := range []string{"p50=", "p90=", "p99="} {
		if !strings.Contains(text, want) {
			t.Fatalf("Format() missing %q:\n%s", want, text)
		}
	}
}

// BenchmarkPromExposition is the /metrics render cost: a scrape-sized
// registry (a few dozen families of each kind) written to the 0.0.4
// text format. Gated by benchgate on allocs/op.
func BenchmarkPromExposition(b *testing.B) {
	reg := NewRegistry()
	for i := 0; i < 24; i++ {
		reg.Counter(fmt.Sprintf("bench_counter_%02d_total", i)).Add(uint64(i) * 17)
		reg.Gauge(fmt.Sprintf("bench_gauge_%02d", i)).Set(int64(i))
		h := reg.Histogram(fmt.Sprintf("bench_hist_%02d_ms", i), MillisBuckets)
		for v := 0.25; v < 5000; v *= 3 {
			h.Observe(v)
		}
	}
	snap := reg.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := snap.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
