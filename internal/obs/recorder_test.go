package obs

import (
	"bytes"
	"sync"
	"testing"
)

func TestRecorderNilIsNoOp(t *testing.T) {
	var r *Recorder
	r.Emit("send", 1, -1, 0, 2)
	sp := r.StartSpan("restore", 1, -1, 0)
	sp.End()
	if got := r.Records(); got != nil {
		t.Fatalf("nil recorder Records() = %v, want nil", got)
	}
	if got := r.Tail(10); got != nil {
		t.Fatalf("nil recorder Tail() = %v, want nil", got)
	}
	if r.Dropped() != 0 || r.Cap() != 0 || r.Mono() {
		t.Fatalf("nil recorder accessors: dropped=%d cap=%d mono=%v", r.Dropped(), r.Cap(), r.Mono())
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil recorder WriteJSONL: err=%v len=%d", err, buf.Len())
	}
}

func TestRecorderBoundedMemory(t *testing.T) {
	const cap, emits = 64, 64 * 10
	r := NewRecorder(cap, false)
	for i := 0; i < emits; i++ {
		r.Emit("send", 3, -1, i, 0)
	}
	recs := r.Records()
	if len(recs) != cap {
		t.Fatalf("retained %d records, want ring cap %d", len(recs), cap)
	}
	if got, want := r.Dropped(), uint64(emits-cap); got != want {
		t.Fatalf("Dropped() = %d, want %d", got, want)
	}
	// The retained window is the most recent cap emissions, in seq order.
	for i, rec := range recs {
		if want := uint64(emits - cap + i); rec.Seq != want {
			t.Fatalf("record %d: seq %d, want %d", i, rec.Seq, want)
		}
	}
}

func TestRecorderDefaultCap(t *testing.T) {
	if got := NewRecorder(0, false).Cap(); got != DefaultFlightCap {
		t.Fatalf("default cap = %d, want %d", got, DefaultFlightCap)
	}
}

func TestRecorderRecordsCanonicalOrder(t *testing.T) {
	r := NewRecorder(16, false)
	// Ranks -1 and 63 share stripe 63; interleave them with others.
	for _, rank := range []int{63, -1, 0, 5, -1, 63, 0} {
		r.Emit("send", rank, -1, 0, 0)
	}
	recs := r.Records()
	if len(recs) != 7 {
		t.Fatalf("retained %d records, want 7", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		a, b := recs[i-1], recs[i]
		if a.Rank > b.Rank || (a.Rank == b.Rank && a.Seq >= b.Seq) {
			t.Fatalf("records out of (rank, seq) order at %d: %+v then %+v", i, a, b)
		}
	}
	// Per-rank logical clocks are independent even on a shared stripe.
	if recs[0].Rank != -1 || recs[0].Seq != 0 || recs[1].Rank != -1 || recs[1].Seq != 1 {
		t.Fatalf("rank -1 stream mis-clocked: %+v %+v", recs[0], recs[1])
	}
}

func TestRecorderSpans(t *testing.T) {
	r := NewRecorder(16, false)
	sp := r.StartSpan("recovery", -1, 2, 0)
	r.Emit("kill", -1, 2, 0, 1)
	sp.End()
	recs := r.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if recs[0].Ev != EvBegin || recs[2].Ev != EvEnd || recs[1].Ev != "" {
		t.Fatalf("span markers wrong: %q %q %q", recs[0].Ev, recs[1].Ev, recs[2].Ev)
	}
	if recs[0].Nanos != 0 || recs[2].Arg != 0 {
		t.Fatalf("deterministic mode leaked wall time: ns=%d arg=%d", recs[0].Nanos, recs[2].Arg)
	}
}

func TestRecorderMonoClock(t *testing.T) {
	r := NewRecorder(16, true)
	if !r.Mono() {
		t.Fatal("Mono() = false")
	}
	sp := r.StartSpan("restore", 1, -1, 0)
	sp.End()
	recs := r.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[1].Nanos < recs[0].Nanos {
		t.Fatalf("mono clock went backwards: %d then %d", recs[0].Nanos, recs[1].Nanos)
	}
	if dur := recs[1].Arg; dur < 0 || dur > recs[1].Nanos {
		t.Fatalf("span end Arg (duration) = %d, end ns = %d", dur, recs[1].Nanos)
	}
}

func TestRecorderDeterministicDump(t *testing.T) {
	dump := func() []byte {
		r := NewRecorder(32, false)
		for rank := 0; rank < 8; rank++ {
			sp := r.StartSpan("restore", rank, -1, 0)
			for i := 0; i < 40; i++ { // overflow the ring too
				r.Emit("send", rank, -1, i, int64(rank+1))
			}
			sp.End()
		}
		var buf bytes.Buffer
		if err := r.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := dump(), dump()
	if !bytes.Equal(a, b) {
		t.Fatalf("deterministic dumps differ:\n%s\n----\n%s", a, b)
	}
}

// TestRecorderConcurrentEmit hammers Emit from many goroutines (colliding
// on stripes) while readers snapshot — the race detector is the real
// assertion; the count check proves no emission was lost.
func TestRecorderConcurrentEmit(t *testing.T) {
	const goroutines, emits = 32, 500
	r := NewRecorder(128, true)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() { // concurrent reader
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			r.Records()
			r.Tail(16)
			r.Dropped()
			r.WriteJSONL(&bytes.Buffer{}) //nolint:errcheck
		}
	}()
	var writers sync.WaitGroup
	writers.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(rank int) {
			defer writers.Done()
			for i := 0; i < emits; i++ {
				r.Emit("send", rank, -1, i, 0)
				if i%100 == 0 {
					sp := r.StartSpan("restore", rank, -1, i)
					sp.End()
				}
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	total := uint64(len(r.Records())) + r.Dropped()
	want := uint64(goroutines * (emits + 2*(emits/100)))
	if total != want {
		t.Fatalf("retained+dropped = %d, want %d emissions", total, want)
	}
}

func TestRecorderEmitZeroAllocs(t *testing.T) {
	r := NewRecorder(64, false)
	r.Emit("send", 7, -1, 0, 0) // materialize the ring
	allocs := testing.AllocsPerRun(200, func() {
		r.Emit("send", 7, -1, 1, 2)
	})
	if allocs != 0 {
		t.Fatalf("Emit allocates %.1f objects/op, want 0", allocs)
	}
}

func TestRecorderTail(t *testing.T) {
	r := NewRecorder(16, false)
	for i := 0; i < 5; i++ {
		r.Emit("send", 1, -1, i, 0)
	}
	if got := len(r.Tail(3)); got != 3 {
		t.Fatalf("Tail(3) returned %d records", got)
	}
	if got := len(r.Tail(100)); got != 5 {
		t.Fatalf("Tail(100) returned %d records, want all 5", got)
	}
}

func BenchmarkRecorderEmit(b *testing.B) {
	r := NewRecorder(DefaultFlightCap, false)
	r.Emit("send", 1, -1, 0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Emit("send", 1, -1, i, 2)
	}
}

func BenchmarkRecorderEmitParallel(b *testing.B) {
	r := NewRecorder(DefaultFlightCap, false)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		rank := 0
		for pb.Next() {
			r.Emit("send", rank, -1, 0, 2)
			rank++
		}
	})
}
