package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

type fakeRankView struct {
	size int
	dead []int
}

func (v fakeRankView) Size() int       { return v.size }
func (v fakeRankView) AliveCount() int { return v.size - len(v.dead) }
func (v fakeRankView) ForEachDead(fn func(rank int)) {
	for _, r := range v.dead {
		fn(r)
	}
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("runner_attempts_total").Inc()
	rec := NewRecorder(16, false)
	rec.Emit("kill", 3, 1, 0, 1)
	srv := NewServer(reg, rec)
	srv.SetRankView(fakeRankView{size: 8, dead: []int{3, 5}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz: %d %q", resp.StatusCode, body)
	}

	resp, body = get(t, ts, "/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q, want text format 0.0.4", ct)
	}
	if !strings.Contains(body, "runner_attempts_total 1") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	_, body = get(t, ts, "/ranks")
	var ranks struct {
		Size  int   `json:"size"`
		Alive int   `json:"alive"`
		Dead  []int `json:"dead"`
	}
	if err := json.Unmarshal([]byte(body), &ranks); err != nil {
		t.Fatalf("/ranks not JSON: %v\n%s", err, body)
	}
	if ranks.Size != 8 || ranks.Alive != 6 || len(ranks.Dead) != 2 {
		t.Fatalf("/ranks = %+v", ranks)
	}

	_, body = get(t, ts, "/timeline?n=5")
	var tl struct {
		Clock   string   `json:"clock"`
		Records []Record `json:"records"`
	}
	if err := json.Unmarshal([]byte(body), &tl); err != nil {
		t.Fatalf("/timeline not JSON: %v\n%s", err, body)
	}
	if tl.Clock != "logical" || len(tl.Records) != 1 || tl.Records[0].Kind != "kill" {
		t.Fatalf("/timeline = %+v", tl)
	}
}

func TestServerNilTelemetry(t *testing.T) {
	ts := httptest.NewServer(NewServer(nil, nil).Handler())
	defer ts.Close()
	resp, body := get(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK || body != "" {
		t.Fatalf("/metrics on nil registry: %d %q", resp.StatusCode, body)
	}
	_, body = get(t, ts, "/ranks")
	if strings.TrimSpace(body) != `{"size":0,"alive":0,"dead":[]}` {
		t.Fatalf("/ranks on nil view: %q", body)
	}
	_, body = get(t, ts, "/timeline")
	if !strings.Contains(body, `"clock":"none"`) {
		t.Fatalf("/timeline on nil recorder: %q", body)
	}
}

func TestServerStartStop(t *testing.T) {
	srv := NewServer(NewRegistry(), nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d", resp.StatusCode)
	}
	if err := srv.Stop(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Fatal("server still serving after Stop")
	}
	if err := (&Server{}).Stop(); err != nil {
		t.Fatalf("Stop without Start: %v", err)
	}
}
