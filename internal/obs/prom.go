package obs

import (
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders the snapshot in Prometheus text exposition
// format 0.0.4: counters and gauges as single samples, histograms as
// cumulative le-labelled buckets plus _sum and _count. Instruments come
// out sorted by name (Snapshot already guarantees that), so the
// exposition of a deterministic run is byte-stable — the golden test
// pins it.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, c := range s.Counters {
		name := promName(c.Name)
		b.WriteString("# TYPE " + name + " counter\n")
		b.WriteString(name + " " + strconv.FormatUint(c.Value, 10) + "\n")
	}
	for _, g := range s.Gauges {
		name := promName(g.Name)
		b.WriteString("# TYPE " + name + " gauge\n")
		b.WriteString(name + " " + strconv.FormatInt(g.Value, 10) + "\n")
	}
	for _, h := range s.Histograms {
		name := promName(h.Name)
		b.WriteString("# TYPE " + name + " histogram\n")
		var cum uint64
		for i, n := range h.Counts {
			cum += n
			le := "+Inf"
			if i < len(h.Bounds) {
				le = formatPromFloat(h.Bounds[i])
			}
			b.WriteString(name + `_bucket{le="` + le + `"} ` + strconv.FormatUint(cum, 10) + "\n")
		}
		b.WriteString(name + "_sum " + formatPromFloat(h.Sum) + "\n")
		b.WriteString(name + "_count " + strconv.FormatUint(cum, 10) + "\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatPromFloat renders a float the way Prometheus clients do:
// shortest representation that round-trips.
func formatPromFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promName sanitizes a metric name to the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]*. Registry names are already conforming; this
// guards names built from user input (labels folded into names, app
// identifiers).
func promName(name string) string {
	if name == "" {
		return "_"
	}
	var b []byte
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			if b == nil {
				b = []byte(name)
			}
			b[i] = '_'
		}
	}
	if b != nil {
		return string(b)
	}
	return name
}
