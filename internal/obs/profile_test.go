package obs

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

func TestStartProfilingCapturesFilesAndServes(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	heap := filepath.Join(dir, "heap.prof")
	stop, err := StartProfiling(ProfileConfig{
		Addr:     "127.0.0.1:0",
		CPUFile:  cpu,
		HeapFile: heap,
	})
	if err != nil {
		// Sandboxed environments may forbid listening; retry file-only.
		stop, err = StartProfiling(ProfileConfig{CPUFile: cpu, HeapFile: heap})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Burn a little CPU so the profile has samples to encode.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i * i
	}
	_ = fmt.Sprint(sink)
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{cpu, heap} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", f)
		}
	}
}

func TestStartProfilingAddrInUse(t *testing.T) {
	stop, err := StartProfiling(ProfileConfig{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Skip("cannot listen in this environment:", err)
	}
	defer stop()
	// A second listener on a distinct ephemeral port must also work; a
	// malformed address must fail cleanly.
	if _, err := StartProfiling(ProfileConfig{Addr: "127.0.0.1:notaport"}); err == nil {
		t.Fatal("malformed address accepted")
	}
	_ = http.DefaultClient // keep net/http linked for the handler path
}
