// Package obs is the reproduction's dependency-free telemetry layer:
// a Registry of atomic counters, gauges, and fixed-bucket histograms
// cheap enough to leave enabled on hot paths (one atomic add per event),
// plus a structured Tracer emitting ordered JSONL events with a
// deterministic per-rank logical clock, and pprof capture helpers for
// the CLIs.
//
// Every instrument is nil-safe: methods on a nil *Counter, *Gauge,
// *Histogram, *Registry, or *Tracer are no-ops (reads return zero).
// This is the disabled path — components hold instrument pointers
// unconditionally and pay only a nil check when telemetry is off.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current total.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. SetMax turns it into a
// high-water mark (e.g. peak mailbox depth).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to v if v exceeds the current value
// (lock-free high-water mark).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram: bounds are inclusive upper
// edges, with an implicit +Inf bucket at the end. Observe is one atomic
// add plus a short branch-free-ish bucket search.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1
	sum    atomic.Uint64   // math.Float64bits accumulator
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// MillisBuckets is the default bucket layout for wall-time histograms,
// in milliseconds: 1ms to ~2min, roughly ×4 per step.
var MillisBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 131072}

// Registry is a named set of instruments. Lookup (Counter, Gauge,
// Histogram) is get-or-create under a mutex — fetch instruments once and
// hold them; only the instrument operations themselves are hot-path
// safe. A nil *Registry hands out nil instruments, giving callers a
// zero-cost disabled mode.
type Registry struct {
	mu    sync.Mutex
	ctrs  map[string]*Counter
	gaug  map[string]*Gauge
	hists map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:  make(map[string]*Counter),
		gaug:  make(map[string]*Gauge),
		hists: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.ctrs[name]
	if c == nil {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gaug[name]
	if g == nil {
		g = &Gauge{}
		r.gaug[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later calls reuse the original bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// CounterValue is a point-in-time counter reading.
type CounterValue struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeValue is a point-in-time gauge reading.
type GaugeValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramValue is a point-in-time histogram reading. Counts[i] pairs
// with Bounds[i]; the final extra count is the +Inf bucket.
type HistogramValue struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
}

// Snapshot is a consistent-enough copy of a registry: each instrument is
// read atomically (the set is not frozen as a whole, which is fine for
// monotonic counters). Instruments are sorted by name, so snapshots of
// identical runs render identically.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
}

// Snapshot reads every instrument. A nil registry snapshots empty.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.ctrs {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.Value()})
	}
	for name, g := range r.gaug {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		hv := HistogramValue{Name: name, Sum: h.Sum()}
		hv.Bounds = append(hv.Bounds, h.bounds...)
		for i := range h.counts {
			hv.Counts = append(hv.Counts, h.counts[i].Load())
		}
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Merge folds a snapshot into this registry: counters add, gauges keep
// the maximum (our gauges are high-water marks), histograms add
// bucket-wise. A histogram whose bounds disagree with an existing one of
// the same name is rejected.
func (r *Registry) Merge(s Snapshot) error {
	if r == nil {
		return nil
	}
	for _, c := range s.Counters {
		r.Counter(c.Name).Add(c.Value)
	}
	for _, g := range s.Gauges {
		r.Gauge(g.Name).SetMax(g.Value)
	}
	for _, hv := range s.Histograms {
		h := r.Histogram(hv.Name, hv.Bounds)
		if len(h.bounds) != len(hv.Bounds) || len(h.counts) != len(hv.Counts) {
			return fmt.Errorf("obs: merge histogram %q: bucket shape mismatch", hv.Name)
		}
		for i, b := range h.bounds {
			if b != hv.Bounds[i] {
				return fmt.Errorf("obs: merge histogram %q: bounds differ at %d", hv.Name, i)
			}
		}
		for i, n := range hv.Counts {
			h.counts[i].Add(n)
		}
		for {
			old := h.sum.Load()
			nw := math.Float64bits(math.Float64frombits(old) + hv.Sum)
			if h.sum.CompareAndSwap(old, nw) {
				break
			}
		}
	}
	return nil
}

// Counter returns the named counter's value from the snapshot (0 when
// absent).
func (s Snapshot) Counter(name string) uint64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the named gauge's value from the snapshot (0 when
// absent).
func (s Snapshot) Gauge(name string) int64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// Histogram returns the named histogram reading from the snapshot; ok
// is false when absent (the zero HistogramValue is returned).
func (s Snapshot) Histogram(name string) (hv HistogramValue, ok bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramValue{}, false
}

// Count returns the total number of observations in the reading.
func (hv HistogramValue) Count() uint64 {
	var n uint64
	for _, c := range hv.Counts {
		n += c
	}
	return n
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket counts
// by linear interpolation inside the winning bucket, the same estimator
// Prometheus' histogram_quantile uses: the first bucket interpolates
// from zero, and a quantile landing in the +Inf bucket reports the
// highest finite bound (the estimate cannot exceed observed resolution).
// NaN when the histogram is empty.
func (hv HistogramValue) Quantile(q float64) float64 {
	total := hv.Count()
	if total == 0 || len(hv.Counts) == 0 {
		return math.NaN()
	}
	target := q * float64(total)
	var cum uint64
	for i, c := range hv.Counts {
		cum += c
		if float64(cum) < target {
			continue
		}
		if i >= len(hv.Bounds) {
			// +Inf bucket: no upper edge to interpolate toward.
			if len(hv.Bounds) == 0 {
				return math.NaN()
			}
			return hv.Bounds[len(hv.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = hv.Bounds[i-1]
		}
		hi := hv.Bounds[i]
		inBucket := float64(c)
		if inBucket == 0 {
			return hi
		}
		before := float64(cum) - inBucket
		return lo + (hi-lo)*(target-before)/inBucket
	}
	return hv.Bounds[len(hv.Bounds)-1]
}

// Filter returns a copy of the snapshot keeping only the instruments —
// counters, gauges, and histograms alike — whose name keep accepts.
func (s Snapshot) Filter(keep func(name string) bool) Snapshot {
	var out Snapshot
	for _, c := range s.Counters {
		if keep(c.Name) {
			out.Counters = append(out.Counters, c)
		}
	}
	for _, g := range s.Gauges {
		if keep(g.Name) {
			out.Gauges = append(out.Gauges, g)
		}
	}
	for _, h := range s.Histograms {
		if keep(h.Name) {
			out.Histograms = append(out.Histograms, h)
		}
	}
	return out
}

// FilterCounters is the counters-only projection of Filter: gauges and
// histograms are stripped (they carry wall-time readings, which golden
// tests that pin the deterministic counter subset must exclude). Use
// Filter to keep all three instrument families.
func (s Snapshot) FilterCounters(keep func(name string) bool) Snapshot {
	out := s.Filter(keep)
	out.Gauges, out.Histograms = nil, nil
	return out
}

// Format renders the snapshot as an aligned text table.
func (s Snapshot) Format() string {
	var b strings.Builder
	width := 0
	for _, c := range s.Counters {
		if len(c.Name) > width {
			width = len(c.Name)
		}
	}
	for _, g := range s.Gauges {
		if len(g.Name) > width {
			width = len(g.Name)
		}
	}
	for _, h := range s.Histograms {
		if len(h.Name) > width {
			width = len(h.Name)
		}
	}
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, c := range s.Counters {
			fmt.Fprintf(&b, "  %-*s %d\n", width, c.Name, c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, g := range s.Gauges {
			fmt.Fprintf(&b, "  %-*s %d\n", width, g.Name, g.Value)
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("histograms:\n")
		for _, h := range s.Histograms {
			n := h.Count()
			fmt.Fprintf(&b, "  %-*s count=%d sum=%.3f", width, h.Name, n, h.Sum)
			if n > 0 {
				fmt.Fprintf(&b, " p50=%g p90=%g p99=%g",
					h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99))
			}
			b.WriteByte('\n')
			for i, c := range h.Counts {
				if c == 0 {
					continue
				}
				if i < len(h.Bounds) {
					fmt.Fprintf(&b, "  %-*s   le=%g: %d\n", width, "", h.Bounds[i], c)
				} else {
					fmt.Fprintf(&b, "  %-*s   le=+Inf: %d\n", width, "", c)
				}
			}
		}
	}
	return b.String()
}
