package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTracerPerRankLogicalClock(t *testing.T) {
	tr := NewTracer(nil)
	tr.Emit("a", 1, -1, 0, nil)
	tr.Emit("b", 0, -1, 0, nil)
	tr.Emit("c", 1, -1, 1, map[string]any{"k": 2})
	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	// Canonical order: rank 0 first, then rank 1's stream by seq.
	if events[0].Kind != "b" || events[0].Seq != 0 {
		t.Fatalf("events[0] = %+v", events[0])
	}
	if events[1].Kind != "a" || events[1].Seq != 0 {
		t.Fatalf("events[1] = %+v", events[1])
	}
	if events[2].Kind != "c" || events[2].Seq != 1 {
		t.Fatalf("events[2] = %+v", events[2])
	}
}

func TestTracerJSONLOutputSortedAndParseable(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Emit("kill", 3, 1, 0, map[string]any{"after_ms": 5})
	tr.Emit("attempt_start", -1, -1, 0, nil)
	tr.Emit("ckpt_commit", 0, 0, 2, nil)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3: %q", len(lines), buf.String())
	}
	var ranks []int
	for _, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		ranks = append(ranks, e.Rank)
	}
	if ranks[0] != -1 || ranks[1] != 0 || ranks[2] != 3 {
		t.Fatalf("ranks out of canonical order: %v", ranks)
	}
}

// TestTracerDeterministicUnderConcurrency emits the same per-rank event
// streams from racing goroutines twice and verifies the canonical event
// sequences are identical — the property that makes replica-rank traces
// diffable.
func TestTracerDeterministicUnderConcurrency(t *testing.T) {
	run := func() []Event {
		tr := NewTracer(nil)
		var wg sync.WaitGroup
		for rank := 0; rank < 8; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				for step := 0; step < 50; step++ {
					tr.Emit("step", rank, rank/2, step, map[string]any{"v": step * rank})
				}
			}(rank)
		}
		wg.Wait()
		return tr.Events()
	}
	a, b := run(), run()
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatal("concurrent emission changed the canonical trace")
	}
}
