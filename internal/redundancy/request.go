package redundancy

import (
	"errors"
	"fmt"

	"repro/internal/mpi"
)

// Isend starts a non-blocking virtual send. The underlying transport's
// sends are eager, so the fan-out completes immediately and the returned
// handle is already fulfilled (it exists so application code structured
// around request sets runs unchanged).
func (c *Comm) Isend(dst, tag int, data []byte) (mpi.Request, error) {
	err := c.Send(dst, tag, data)
	return &sendRequest{
		st:  mpi.Status{Source: c.me.Virtual, Tag: tag, Len: len(data)},
		err: err,
	}, nil
}

// Irecv starts a non-blocking virtual receive. Following the paper's §3
// design, a specific-source receive posts one physical receive per
// replica of the sender and returns a single handle identifying the whole
// set; Wait/Test complete when every set member has (or provably never
// will) deliver its copy.
//
// Wildcard (mpi.AnySource) receives return a handle whose Wait runs the
// envelope-forwarding protocol; Test on an incomplete wildcard request
// reports not-done without making progress, because the protocol's
// leader step consumes a message and cannot be polled side-effect-free.
func (c *Comm) Irecv(src, tag int) (mpi.Request, error) {
	if tag != mpi.AnyTag {
		if err := c.checkTag(tag); err != nil {
			return nil, err
		}
	}
	if src == mpi.AnySource {
		return &recvRequest{c: c, src: src, tag: tag, wildcard: true}, nil
	}
	sphere, err := c.m.Sphere(src)
	if err != nil {
		return nil, err
	}
	reqs := make([]mpi.Request, 0, len(sphere))
	for _, q := range sphere {
		r, err := c.phys.Irecv(q, tag)
		if err != nil {
			return nil, fmt.Errorf("redundancy: posting replica receive: %w", err)
		}
		reqs = append(reqs, r)
	}
	return &recvRequest{c: c, src: src, tag: tag, physReqs: reqs}, nil
}

// sendRequest is a fulfilled handle for an eager redundant send.
type sendRequest struct {
	st  mpi.Status
	err error
}

var _ mpi.Request = (*sendRequest)(nil)

func (r *sendRequest) Wait() (mpi.Message, mpi.Status, error) {
	return mpi.Message{}, r.st, r.err
}

func (r *sendRequest) Test() (bool, mpi.Message, mpi.Status, error) {
	return true, mpi.Message{}, r.st, r.err
}

// recvRequest identifies a set of physical receives (paper §3: "RedMPI
// maintains the set of request handles returned by all the non-blocking
// MPI calls").
type recvRequest struct {
	c        *Comm
	src, tag int
	wildcard bool
	physReqs []mpi.Request

	done bool
	msg  mpi.Message
	st   mpi.Status
	err  error
}

var _ mpi.Request = (*recvRequest)(nil)

func (r *recvRequest) finish(msg mpi.Message, err error) (mpi.Message, mpi.Status, error) {
	r.done = true
	r.msg = msg
	r.err = err
	if err == nil {
		r.st = mpi.Status{Source: msg.Source, Tag: msg.Tag, Len: len(msg.Data)}
	}
	return r.msg, r.st, r.err
}

// Wait blocks until every receive in the set completes (dead replicas are
// skipped), verifies the copies against each other, and delivers.
func (r *recvRequest) Wait() (mpi.Message, mpi.Status, error) {
	if r.done {
		return r.msg, r.st, r.err
	}
	if r.wildcard {
		return r.finish(r.c.recvWildcard(r.tag))
	}
	copies := make([]wireMsg, 0, len(r.physReqs))
	for _, pr := range r.physReqs {
		msg, _, err := pr.Wait()
		if err != nil {
			if errors.Is(err, mpi.ErrPeerDead) {
				continue
			}
			releaseCopies(copies, -1)
			return r.finish(mpi.Message{}, err)
		}
		wm, err := decodeWireFrom(msg)
		if err != nil {
			releaseCopies(copies, -1)
			return r.finish(mpi.Message{}, err)
		}
		copies = append(copies, wm)
	}
	return r.finish(r.c.deliverSpecific(r.src, copies))
}

// Test polls the whole set; it completes only when every member has.
func (r *recvRequest) Test() (bool, mpi.Message, mpi.Status, error) {
	if r.done {
		return true, r.msg, r.st, r.err
	}
	if r.wildcard {
		return false, mpi.Message{}, mpi.Status{}, nil
	}
	for _, pr := range r.physReqs {
		done, _, _, err := pr.Test()
		if !done {
			return false, mpi.Message{}, mpi.Status{}, nil
		}
		if err != nil && !errors.Is(err, mpi.ErrPeerDead) {
			msg, st, ferr := r.finish(mpi.Message{}, err)
			return true, msg, st, ferr
		}
	}
	// Every set member is resolved; assemble exactly as Wait would.
	copies := make([]wireMsg, 0, len(r.physReqs))
	for _, pr := range r.physReqs {
		msg, _, err := pr.Wait()
		if err != nil {
			continue // already-resolved dead replica
		}
		wm, err := decodeWireFrom(msg)
		if err != nil {
			releaseCopies(copies, -1)
			fmsg, st, ferr := r.finish(mpi.Message{}, err)
			return true, fmsg, st, ferr
		}
		copies = append(copies, wm)
	}
	msg, st, err := r.finish(r.c.deliverSpecific(r.src, copies))
	return true, msg, st, err
}

// deliverSpecific verifies the collected copies from a specific virtual
// source and performs delivery bookkeeping. The winning copy's transport
// buffer is reframed into the delivered message (its ownership passes to
// the application); the losing copies' buffers go back to the pool.
func (c *Comm) deliverSpecific(src int, copies []wireMsg) (mpi.Message, error) {
	if len(copies) == 0 {
		c.failVirtual(src)
		return mpi.Message{}, fmt.Errorf("recv from virtual %d: %w", src, ErrSphereDead)
	}
	data, win, err := c.verify(copies)
	if err != nil {
		releaseCopies(copies, -1)
		return mpi.Message{}, fmt.Errorf("recv from virtual %d: %w", src, err)
	}
	releaseCopies(copies, win)
	c.recv[src].Add(1)
	c.stats.deliveries.Add(1)
	return copies[win].msg.Reframe(src, copies[0].tag, data), nil
}
