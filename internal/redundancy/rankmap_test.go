package redundancy

import (
	"testing"
	"testing/quick"
)

func TestRankMapIntegerDegree(t *testing.T) {
	m, err := NewRankMap(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.VirtualSize() != 8 || m.PhysicalSize() != 16 {
		t.Fatalf("sizes %d/%d, want 8/16", m.VirtualSize(), m.PhysicalSize())
	}
	for v := 0; v < 8; v++ {
		sphere, err := m.Sphere(v)
		if err != nil {
			t.Fatal(err)
		}
		if len(sphere) != 2 {
			t.Fatalf("virtual %d sphere %v", v, sphere)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRankMapEveryOtherProcessAt15x(t *testing.T) {
	// Paper: "a redundancy degree of 1.5x means that every other process
	// (i.e., every even process) has a replica."
	m, err := NewRankMap(8, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if m.PhysicalSize() != 12 {
		t.Fatalf("physical size %d, want 12", m.PhysicalSize())
	}
	for v := 0; v < 8; v++ {
		sphere, err := m.Sphere(v)
		if err != nil {
			t.Fatal(err)
		}
		want := 1
		if v%2 == 0 {
			want = 2
		}
		if len(sphere) != want {
			t.Fatalf("virtual %d has %d replicas, want %d", v, len(sphere), want)
		}
	}
}

func TestRankMapOwnerRoundTrip(t *testing.T) {
	m, err := NewRankMap(10, 2.25)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < m.PhysicalSize(); p++ {
		o, err := m.Owner(p)
		if err != nil {
			t.Fatal(err)
		}
		sphere, err := m.Sphere(o.Virtual)
		if err != nil {
			t.Fatal(err)
		}
		if sphere[o.Index] != p {
			t.Fatalf("physical %d: owner %+v but sphere %v", p, o, sphere)
		}
	}
}

func TestRankMapBoundsErrors(t *testing.T) {
	m, err := NewRankMap(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Sphere(4); err == nil {
		t.Error("Sphere(4) of 4 should fail")
	}
	if _, err := m.Sphere(-1); err == nil {
		t.Error("Sphere(-1) should fail")
	}
	if _, err := m.Owner(8); err == nil {
		t.Error("Owner(8) of 8 should fail")
	}
	if _, err := NewRankMap(0, 2); err == nil {
		t.Error("NewRankMap(0, 2) should fail")
	}
	if _, err := NewRankMap(4, 0.5); err == nil {
		t.Error("NewRankMap(4, 0.5) should fail")
	}
}

func TestRankMapPropertyValid(t *testing.T) {
	f := func(nRaw uint8, rRaw uint8) bool {
		n := int(nRaw%200) + 1
		r := 1 + float64(rRaw%96)/32.0 // [1, ~3.97]
		m, err := NewRankMap(n, r)
		if err != nil {
			return false
		}
		return m.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestRankMapPartitionConsistency(t *testing.T) {
	m, err := NewRankMap(128, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	part := m.Partition()
	// r = 2.5 on 128: 64 at 2 copies, 64 at 3 copies, 320 physical.
	if part.NFloor != 64 || part.NCeil != 64 {
		t.Fatalf("partition %+v", part)
	}
	if m.PhysicalSize() != 320 {
		t.Fatalf("physical %d, want 320", m.PhysicalSize())
	}
	if m.Degree() != 2.5 {
		t.Fatalf("degree %v", m.Degree())
	}
	if m.EffectiveDegree() != 2.5 {
		t.Fatalf("effective degree %v", m.EffectiveDegree())
	}
}
