package redundancy

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/mpi"
	"repro/internal/simmpi"
)

// tamperComm wraps a physical endpoint and corrupts outgoing application
// payloads when corrupt reports true, simulating the faulted processes
// RedMPI's voting is designed to catch (soft errors flipping message
// bits).
type tamperComm struct {
	mpi.Comm
	corrupt func(dst, tag int) bool
}

func (tc *tamperComm) Send(dst, tag int, data []byte) error {
	if tc.corrupt(dst, tag) && len(data) > wireHeaderLen && data[0] == byte(kindFull) {
		flipped := make([]byte, len(data))
		copy(flipped, data)
		flipped[wireHeaderLen] ^= 0xFF // bit-flip the first payload byte
		return tc.Comm.Send(dst, tag, flipped)
	}
	return tc.Comm.Send(dst, tag, data)
}

func (tc *tamperComm) Isend(dst, tag int, data []byte) (mpi.Request, error) {
	if err := tc.Send(dst, tag, data); err != nil {
		return nil, err
	}
	return tc.Comm.Isend(dst, tag, nil) // fulfilled no-op handle
}

// launchTampered runs a 2-virtual-rank world at the given degree where
// physical rank corruptRank corrupts all its user-tag sends.
func launchTampered(t *testing.T, degree float64, corruptPhys int, mode Mode,
	fn func(c *Comm) error) (appErr error, stats map[string]Stats) {
	t.Helper()
	m, err := NewRankMap(2, degree)
	if err != nil {
		t.Fatal(err)
	}
	w, err := simmpi.NewWorld(m.PhysicalSize())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	stats = map[string]Stats{}
	appErr, failures := w.Run(func(pc *simmpi.Comm) error {
		var phys mpi.Comm = pc
		if pc.Rank() == corruptPhys {
			phys = &tamperComm{Comm: pc, corrupt: func(dst, tag int) bool {
				return tag < mpi.TagUserMax
			}}
		}
		rc, err := New(phys, m, Options{Live: w, Mode: mode})
		if err != nil {
			return err
		}
		err = fn(rc)
		mu.Lock()
		stats[fmt.Sprintf("%d/%d", rc.Rank(), rc.ReplicaIndex())] = rc.Stats()
		mu.Unlock()
		return err
	})
	if len(failures) != 0 {
		t.Fatalf("failures: %v", failures)
	}
	return appErr, stats
}

func pingPong(c *Comm) error {
	if c.Rank() == 0 {
		return c.Send(1, 1, []byte("payload under test"))
	}
	msg, err := c.Recv(0, 1)
	if err != nil {
		return err
	}
	if string(msg.Data) != "payload under test" {
		return fmt.Errorf("delivered corrupt payload %q", msg.Data)
	}
	return nil
}

func TestTripleRedundancyVotesOutCorruption(t *testing.T) {
	// Physical rank 1 = replica 1 of virtual rank 0 (sender). Its copies
	// are corrupt; the receiver's 2-vs-1 majority must vote them out —
	// "With triple redundancy, it can vote out the corrupt message and
	// thereby provide the error-free message to the application."
	appErr, stats := launchTampered(t, 3, 1, AllToAll, pingPong)
	if appErr != nil {
		t.Fatalf("app error: %v", appErr)
	}
	var corrections, mismatches uint64
	for key, s := range stats {
		if key[0] == '1' { // receiver replicas
			corrections += s.Corrections
			mismatches += s.Mismatches
		}
	}
	if mismatches == 0 || corrections == 0 {
		t.Fatalf("mismatches=%d corrections=%d, want both > 0", mismatches, corrections)
	}
}

func TestDualRedundancyDetectsWithoutCorrecting(t *testing.T) {
	// At 2x a corrupt copy is detectable (copies differ) but there is no
	// majority; the layer delivers the lowest replica's copy and records
	// the mismatch. Corrupt the *second* replica so the delivered copy is
	// clean and the app-level check passes.
	appErr, stats := launchTampered(t, 2, 1, AllToAll, pingPong)
	if appErr != nil {
		t.Fatalf("app error: %v", appErr)
	}
	var corrections, mismatches uint64
	for key, s := range stats {
		if key[0] == '1' {
			corrections += s.Corrections
			mismatches += s.Mismatches
		}
	}
	if mismatches == 0 {
		t.Fatal("corruption went undetected at 2x")
	}
	if corrections != 0 {
		t.Fatalf("corrections=%d, want 0 (no majority at 2x)", corrections)
	}
}

func TestNoFalsePositivesWithoutCorruption(t *testing.T) {
	_, stats := launchTampered(t, 3, -1, AllToAll, pingPong)
	for key, s := range stats {
		if s.Mismatches != 0 || s.Corrections != 0 {
			t.Fatalf("replica %s reported mismatches on a clean run: %+v", key, s)
		}
	}
}

func TestMsgPlusHashDelivers(t *testing.T) {
	// Failure-free Msg-PlusHash: full copy plus hashes, delivered intact.
	appErr, stats := launchTampered(t, 3, -1, MsgPlusHash, pingPong)
	if appErr != nil {
		t.Fatalf("app error: %v", appErr)
	}
	for key, s := range stats {
		if s.Mismatches != 0 {
			t.Fatalf("replica %s: clean hash run reported mismatch: %+v", key, s)
		}
	}
}

func TestMsgPlusHashDetectsCorruptHashSender(t *testing.T) {
	// In Msg-PlusHash at 3x, receiver replica j gets the full copy from
	// sender replica j%3 and hashes from the rest. Corrupting sender
	// replica 2's traffic corrupts: the full copy to receiver replica 2,
	// and hashes elsewhere — all three receiver replicas see mismatches.
	// Receiver replica 2's majority (2 hash votes vs its corrupt full
	// copy) cannot reconstruct the payload, so it must surface
	// ErrPayloadCorrupt rather than deliver silently-wrong data.
	appErr, stats := launchTampered(t, 3, 2, MsgPlusHash, pingPong)
	if appErr == nil {
		// Acceptable alternative: every replica detected and the corrupt
		// one corrected — but correction is impossible from hashes, so a
		// nil error means detection failed somewhere.
		var mismatches uint64
		for key, s := range stats {
			if key[0] == '1' {
				mismatches += s.Mismatches
			}
		}
		t.Fatalf("corrupt full copy delivered without error (mismatches=%d)", mismatches)
	}
	if !errors.Is(appErr, ErrPayloadCorrupt) {
		t.Fatalf("app error = %v, want ErrPayloadCorrupt", appErr)
	}
}

func TestMsgPlusHashPayloadLostOnFullSenderDeath(t *testing.T) {
	// Kill the sender replica that carries the receiver's full copy
	// before it sends: only hashes remain — ErrPayloadLost, the
	// documented Msg-PlusHash limitation under failures.
	m, err := NewRankMap(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := simmpi.NewWorld(m.PhysicalSize())
	if err != nil {
		t.Fatal(err)
	}
	sphere0, err := m.Sphere(0)
	if err != nil {
		t.Fatal(err)
	}
	w.Kill(sphere0[0]) // replica 0 of sender: the full-copy source for receiver replica 0
	appErr, _ := w.Run(func(pc *simmpi.Comm) error {
		if !w.Alive(pc.Rank()) {
			return nil
		}
		rc, err := New(pc, m, Options{Live: w, Mode: MsgPlusHash})
		if err != nil {
			return err
		}
		if rc.Rank() == 0 {
			return rc.Send(1, 1, []byte("only hashed"))
		}
		_, err = rc.Recv(0, 1)
		if rc.ReplicaIndex() == 0 {
			if !errors.Is(err, ErrPayloadLost) {
				return fmt.Errorf("replica 0 err = %v, want ErrPayloadLost", err)
			}
			return nil
		}
		// Receiver replica 1's full copy comes from sender replica 1,
		// which is alive — it must deliver fine.
		return err
	})
	if appErr != nil {
		t.Fatal(appErr)
	}
}
