package redundancy

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/simmpi"
)

// TestWildcardLeaderDiesMidStream kills the wildcard leader after it has
// already forwarded several envelopes: the surviving replica must detect
// the death, resynchronise by sequence number, promote itself to leader,
// and keep delivering the remaining messages in a consistent order.
func TestWildcardLeaderDiesMidStream(t *testing.T) {
	const (
		n        = 3  // rank 0 master, 1..2 workers
		perWork  = 20 // messages per worker
		killAt   = 8  // master replica 0 dies after its 8th delivery
		expected = (n - 1) * perWork
	)
	m, err := NewRankMap(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := simmpi.NewWorld(m.PhysicalSize())
	if err != nil {
		t.Fatal(err)
	}
	sphere0, err := m.Sphere(0)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	orders := map[int][]int{}
	appErr, failures := w.Run(func(pc *simmpi.Comm) error {
		rc, err := New(pc, m, Options{Live: w})
		if err != nil {
			return err
		}
		if rc.Rank() != 0 {
			for i := 0; i < perWork; i++ {
				if err := rc.Send(0, 7, []byte{byte(rc.Rank()), byte(i)}); err != nil {
					return err
				}
				time.Sleep(time.Millisecond) // spread the stream out
			}
			return nil
		}
		var order []int
		for len(order) < expected {
			msg, err := rc.Recv(mpi.AnySource, 7)
			if err != nil {
				if rc.ReplicaIndex() == 0 && !w.Alive(pc.Rank()) {
					return err // the killed leader unwinds; expected
				}
				return err
			}
			order = append(order, msg.Source)
			if rc.ReplicaIndex() == 0 && len(order) == killAt {
				// The leader dies mid-protocol, after forwarding killAt
				// envelopes to its sibling.
				w.Kill(sphere0[0])
			}
		}
		mu.Lock()
		orders[rc.ReplicaIndex()] = order
		mu.Unlock()
		return nil
	})
	if appErr != nil {
		t.Fatalf("app error: %v", appErr)
	}
	// The killed leader's goroutine must be the only failure.
	for _, f := range failures {
		if f.Rank != sphere0[0] {
			t.Fatalf("unexpected failure on physical rank %d: %v", f.Rank, f.Err)
		}
	}
	full := orders[1]
	if len(full) != expected {
		t.Fatalf("survivor delivered %d/%d messages", len(full), expected)
	}
	// Every worker's full stream must be delivered exactly once each.
	counts := map[int]int{}
	for _, src := range full {
		counts[src]++
	}
	for wkr := 1; wkr < n; wkr++ {
		if counts[wkr] != perWork {
			t.Fatalf("worker %d delivered %d times, want %d (order %v)", wkr, counts[wkr], perWork, full)
		}
	}
}

// TestWildcardAnyTag uses (AnySource, AnyTag) receives under redundancy:
// the envelope protocol must transport the matched tag so both replicas
// deliver identical (source, tag) sequences.
func TestWildcardAnyTag(t *testing.T) {
	const n = 3
	var mu sync.Mutex
	seqs := map[int][]string{}
	launch(t, n, 2, Options{}, func(c *Comm) error {
		if c.Rank() == 0 {
			var seq []string
			for i := 0; i < (n-1)*4; i++ {
				msg, err := c.Recv(mpi.AnySource, mpi.AnyTag)
				if err != nil {
					return err
				}
				if msg.Tag != int(msg.Data[0]) {
					return fmt.Errorf("delivered tag %d but payload says %d", msg.Tag, msg.Data[0])
				}
				seq = append(seq, fmt.Sprintf("%d/%d", msg.Source, msg.Tag))
			}
			mu.Lock()
			seqs[c.ReplicaIndex()] = seq
			mu.Unlock()
			return nil
		}
		for i := 0; i < 4; i++ {
			tag := c.Rank()*10 + i
			if err := c.Send(0, tag, []byte{byte(tag)}); err != nil {
				return err
			}
		}
		return nil
	})
	if len(seqs) != 2 {
		t.Fatalf("%d replica sequences", len(seqs))
	}
	if fmt.Sprint(seqs[0]) != fmt.Sprint(seqs[1]) {
		t.Fatalf("replicas diverged:\n  %v\n  %v", seqs[0], seqs[1])
	}
}

// TestWildcardMixedWithSpecific interleaves wildcard receives on one tag
// with specific receives on another: control-channel sequencing must not
// leak between them.
func TestWildcardMixedWithSpecific(t *testing.T) {
	const n = 3
	launch(t, n, 2, Options{}, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 6; i++ {
				if i%2 == 0 {
					msg, err := c.Recv(mpi.AnySource, 1)
					if err != nil {
						return err
					}
					if msg.Tag != 1 {
						return fmt.Errorf("tag %d on wildcard channel", msg.Tag)
					}
				} else {
					msg, err := c.Recv(1, 2)
					if err != nil {
						return err
					}
					if msg.Source != 1 || msg.Tag != 2 {
						return fmt.Errorf("specific recv got %+v", msg)
					}
				}
			}
			return nil
		}
		if c.Rank() == 1 {
			for i := 0; i < 3; i++ {
				if err := c.Send(0, 2, []byte{9}); err != nil {
					return err
				}
			}
		}
		for i := 0; i < 3; i++ {
			if err := c.Send(0, 1, []byte{byte(c.Rank())}); err != nil {
				return err
			}
		}
		return nil
	})
}

// TestTwoWildcardChannels runs concurrent wildcard streams on two
// different tags; per-channel sequence counters must stay independent.
func TestTwoWildcardChannels(t *testing.T) {
	const n = 3
	var mu sync.Mutex
	got := map[string][]int{}
	launch(t, n, 2, Options{}, func(c *Comm) error {
		if c.Rank() == 0 {
			var a, b []int
			for i := 0; i < (n-1)*3; i++ {
				m1, err := c.Recv(mpi.AnySource, 1)
				if err != nil {
					return err
				}
				a = append(a, m1.Source)
				m2, err := c.Recv(mpi.AnySource, 2)
				if err != nil {
					return err
				}
				b = append(b, m2.Source)
			}
			mu.Lock()
			got[fmt.Sprintf("a%d", c.ReplicaIndex())] = a
			got[fmt.Sprintf("b%d", c.ReplicaIndex())] = b
			mu.Unlock()
			return nil
		}
		for i := 0; i < 3; i++ {
			if err := c.Send(0, 1, []byte{1}); err != nil {
				return err
			}
			if err := c.Send(0, 2, []byte{2}); err != nil {
				return err
			}
		}
		return nil
	})
	if fmt.Sprint(got["a0"]) != fmt.Sprint(got["a1"]) {
		t.Fatalf("channel 1 diverged: %v vs %v", got["a0"], got["a1"])
	}
	if fmt.Sprint(got["b0"]) != fmt.Sprint(got["b1"]) {
		t.Fatalf("channel 2 diverged: %v vs %v", got["b0"], got["b1"])
	}
}
