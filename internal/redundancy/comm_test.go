package redundancy

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/simmpi"
)

// launch runs fn once per physical rank of a redundant world at the given
// degree, each wrapped in its virtual-rank view, and fails on any
// application error. Returns the world for post-run inspection.
func launch(t *testing.T, n int, degree float64, opts Options, fn func(c *Comm) error) *simmpi.World {
	t.Helper()
	w := launchErr(t, n, degree, opts, func(c *Comm) error { return fn(c) }, true)
	return w
}

func launchErr(t *testing.T, n int, degree float64, opts Options, fn func(c *Comm) error, failOnErr bool) *simmpi.World {
	t.Helper()
	m, err := NewRankMap(n, degree)
	if err != nil {
		t.Fatal(err)
	}
	w, err := simmpi.NewWorld(m.PhysicalSize())
	if err != nil {
		t.Fatal(err)
	}
	if opts.Live == nil {
		opts.Live = w
	}
	appErr, failures := w.Run(func(pc *simmpi.Comm) error {
		rc, err := New(pc, m, opts)
		if err != nil {
			return err
		}
		return fn(rc)
	})
	if failOnErr {
		if appErr != nil {
			t.Fatalf("app error: %v", appErr)
		}
		if len(failures) != 0 {
			t.Fatalf("failure errors: %v", failures)
		}
	}
	return w
}

func TestNewValidatesWorldSize(t *testing.T) {
	m, err := NewRankMap(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := simmpi.NewWorld(3) // wrong: map needs 8
	if err != nil {
		t.Fatal(err)
	}
	pc, err := w.Comm(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(pc, m, Options{}); err == nil {
		t.Fatal("mismatched world size accepted")
	}
}

func TestVirtualIdentity(t *testing.T) {
	launch(t, 4, 2.5, Options{}, func(c *Comm) error {
		if c.Size() != 4 {
			return fmt.Errorf("virtual size %d", c.Size())
		}
		if c.Rank() < 0 || c.Rank() >= 4 {
			return fmt.Errorf("virtual rank %d", c.Rank())
		}
		return nil
	})
}

func TestRingExchangeAllDegrees(t *testing.T) {
	for _, degree := range []float64{1, 1.25, 1.5, 1.75, 2, 2.5, 3} {
		degree := degree
		t.Run(fmt.Sprintf("r=%v", degree), func(t *testing.T) {
			const n = 8
			launch(t, n, degree, Options{}, func(c *Comm) error {
				right := (c.Rank() + 1) % n
				left := (c.Rank() - 1 + n) % n
				for iter := 0; iter < 10; iter++ {
					payload := []byte{byte(c.Rank()), byte(iter)}
					if err := c.Send(right, 5, payload); err != nil {
						return err
					}
					msg, err := c.Recv(left, 5)
					if err != nil {
						return err
					}
					if msg.Source != left || msg.Data[0] != byte(left) || msg.Data[1] != byte(iter) {
						return fmt.Errorf("iter %d: got %+v", iter, msg)
					}
				}
				return nil
			})
		})
	}
}

func TestPhysicalSendFanOut(t *testing.T) {
	// Fig. 1a: with 2 replicas each, one virtual send = 2 physical sends
	// per sender replica (4 total messages for the virtual message).
	var mu sync.Mutex
	var total uint64
	launch(t, 2, 2, Options{}, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, []byte("x")); err != nil {
				return err
			}
		} else {
			if _, err := c.Recv(0, 1); err != nil {
				return err
			}
		}
		mu.Lock()
		total += c.Stats().PhysicalSends
		mu.Unlock()
		return nil
	})
	if total != 4 {
		t.Fatalf("physical sends = %d, want 4 (paper: up to 4x the messages)", total)
	}
}

func TestPartialRedundancyFanOut(t *testing.T) {
	// Fig. 1b: A has two replicas, B has one. A and A' each send one
	// message; B receives two.
	var mu sync.Mutex
	sends := map[int]uint64{}
	launch(t, 2, 1.5, Options{}, func(c *Comm) error {
		// At 1.5x on 2 ranks, rank 0 (even) is duplicated, rank 1 is not.
		if c.Rank() == 0 {
			if err := c.Send(1, 1, []byte("ab")); err != nil {
				return err
			}
		} else {
			msg, err := c.Recv(0, 1)
			if err != nil {
				return err
			}
			if string(msg.Data) != "ab" {
				return fmt.Errorf("payload %q", msg.Data)
			}
		}
		mu.Lock()
		sends[c.Rank()*10+c.ReplicaIndex()] += c.Stats().PhysicalSends
		mu.Unlock()
		return nil
	})
	if sends[0] != 1 || sends[1] != 1 {
		t.Fatalf("sender replicas sent %v, want 1 each", sends)
	}
}

func TestReplicaConsistencyDeterministicResult(t *testing.T) {
	// Every replica of every rank must compute the identical reduction
	// result: this is the core replica-consistency property.
	const n = 6
	var mu sync.Mutex
	results := map[string][]float64{}
	launch(t, n, 2, Options{}, func(c *Comm) error {
		acc := []float64{float64(c.Rank() + 1)}
		for iter := 0; iter < 5; iter++ {
			out, err := mpi.AllreduceFloat64s(c, acc, mpi.OpSum)
			if err != nil {
				return err
			}
			acc = out
		}
		mu.Lock()
		key := fmt.Sprintf("%d/%d", c.Rank(), c.ReplicaIndex())
		results[key] = acc
		mu.Unlock()
		return nil
	})
	var want []float64
	for key, got := range results {
		if want == nil {
			want = got
			continue
		}
		if got[0] != want[0] {
			t.Fatalf("replica %s diverged: %v vs %v", key, got, want)
		}
	}
	if len(results) != 12 {
		t.Fatalf("%d replica results, want 12", len(results))
	}
}

func TestCollectivesOverPartialRedundancy(t *testing.T) {
	const n = 5
	launch(t, n, 1.75, Options{}, func(c *Comm) error {
		if err := mpi.Barrier(c); err != nil {
			return err
		}
		got, err := mpi.Bcast(c, 2, payloadIf(c.Rank() == 2, "hello"))
		if err != nil {
			return err
		}
		if string(got) != "hello" {
			return fmt.Errorf("bcast got %q", got)
		}
		sum, err := mpi.AllreduceFloat64s(c, []float64{1}, mpi.OpSum)
		if err != nil {
			return err
		}
		if sum[0] != n {
			return fmt.Errorf("sum %v", sum)
		}
		parts, err := mpi.Allgather(c, []byte{byte(c.Rank())})
		if err != nil {
			return err
		}
		for i, p := range parts {
			if p[0] != byte(i) {
				return fmt.Errorf("allgather part %d = %v", i, p)
			}
		}
		return nil
	})
}

func payloadIf(cond bool, s string) []byte {
	if cond {
		return []byte(s)
	}
	return nil
}

func TestWildcardSameOrderAcrossReplicas(t *testing.T) {
	// Workers send to rank 0 with AnySource receives on 0's replicas; both
	// replicas of rank 0 must observe the identical virtual sender order
	// (the §3 wildcard protocol's whole purpose).
	const n = 5 // rank 0 master, 1..4 workers
	var mu sync.Mutex
	orders := map[int][]int{}
	launch(t, n, 2, Options{}, func(c *Comm) error {
		if c.Rank() == 0 {
			var order []int
			for i := 0; i < (n-1)*3; i++ {
				msg, err := c.Recv(mpi.AnySource, 7)
				if err != nil {
					return err
				}
				if int(msg.Data[0]) != msg.Source {
					return fmt.Errorf("payload source %d != envelope %d", msg.Data[0], msg.Source)
				}
				order = append(order, msg.Source)
			}
			mu.Lock()
			orders[c.ReplicaIndex()] = order
			mu.Unlock()
			return nil
		}
		for i := 0; i < 3; i++ {
			if err := c.Send(0, 7, []byte{byte(c.Rank()), byte(i)}); err != nil {
				return err
			}
			// Stagger sends to mix arrival order between workers.
			time.Sleep(time.Duration(c.Rank()) * time.Millisecond)
		}
		return nil
	})
	if len(orders) != 2 {
		t.Fatalf("got %d orders, want 2 replicas", len(orders))
	}
	if fmt.Sprint(orders[0]) != fmt.Sprint(orders[1]) {
		t.Fatalf("replica orders diverged:\n  r0: %v\n  r1: %v", orders[0], orders[1])
	}
}

func TestWildcardAtTripleRedundancy(t *testing.T) {
	const n = 3
	var mu sync.Mutex
	orders := map[int][]int{}
	launch(t, n, 3, Options{}, func(c *Comm) error {
		if c.Rank() == 0 {
			var order []int
			for i := 0; i < (n-1)*4; i++ {
				msg, err := c.Recv(mpi.AnySource, 2)
				if err != nil {
					return err
				}
				order = append(order, msg.Source)
			}
			mu.Lock()
			orders[c.ReplicaIndex()] = order
			mu.Unlock()
			return nil
		}
		for i := 0; i < 4; i++ {
			if err := c.Send(0, 2, []byte{byte(i)}); err != nil {
				return err
			}
		}
		return nil
	})
	if len(orders) != 3 {
		t.Fatalf("%d orders", len(orders))
	}
	for idx := 1; idx < 3; idx++ {
		if fmt.Sprint(orders[idx]) != fmt.Sprint(orders[0]) {
			t.Fatalf("replica %d order %v != replica 0 order %v", idx, orders[idx], orders[0])
		}
	}
}

func TestSurvivesReplicaDeath(t *testing.T) {
	// Kill one replica of rank 1 before communication: the virtual rank
	// still works through its surviving replica.
	const n = 4
	m, err := NewRankMap(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := simmpi.NewWorld(m.PhysicalSize())
	if err != nil {
		t.Fatal(err)
	}
	sphere1, err := m.Sphere(1)
	if err != nil {
		t.Fatal(err)
	}
	w.Kill(sphere1[0]) // kill rank 1's replica 0
	appErr, failures := w.Run(func(pc *simmpi.Comm) error {
		rc, err := New(pc, m, Options{Live: w})
		if err != nil {
			return err
		}
		if !w.Alive(pc.Rank()) {
			return nil // the dead replica does not participate
		}
		right := (rc.Rank() + 1) % n
		left := (rc.Rank() - 1 + n) % n
		for iter := 0; iter < 5; iter++ {
			if err := rc.Send(right, 3, []byte{byte(rc.Rank())}); err != nil {
				return err
			}
			msg, err := rc.Recv(left, 3)
			if err != nil {
				return err
			}
			if msg.Data[0] != byte(left) {
				return fmt.Errorf("got %v from %d", msg.Data, left)
			}
		}
		return nil
	})
	if appErr != nil {
		t.Fatalf("app error: %v", appErr)
	}
	if len(failures) != 0 {
		t.Fatalf("failures: %v", failures)
	}
}

func TestSphereDeathSurfaces(t *testing.T) {
	// Kill every replica of rank 1: receiving from it reports ErrSphereDead.
	m, err := NewRankMap(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := simmpi.NewWorld(m.PhysicalSize())
	if err != nil {
		t.Fatal(err)
	}
	sphere1, err := m.Sphere(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sphere1 {
		w.Kill(p)
	}
	appErr, _ := w.Run(func(pc *simmpi.Comm) error {
		if !w.Alive(pc.Rank()) {
			return nil
		}
		rc, err := New(pc, m, Options{Live: w})
		if err != nil {
			return err
		}
		_, err = rc.Recv(1, 0)
		if !errors.Is(err, ErrSphereDead) {
			return fmt.Errorf("recv err = %v, want ErrSphereDead", err)
		}
		return nil
	})
	if appErr != nil {
		t.Fatal(appErr)
	}
}

func TestWildcardLeaderFailover(t *testing.T) {
	// The leader replica of the receiving sphere dies before the run;
	// the surviving replica must lead the wildcard protocol itself.
	const n = 3
	m, err := NewRankMap(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := simmpi.NewWorld(m.PhysicalSize())
	if err != nil {
		t.Fatal(err)
	}
	sphere0, err := m.Sphere(0)
	if err != nil {
		t.Fatal(err)
	}
	w.Kill(sphere0[0]) // replica 0 of the master is gone
	appErr, failures := w.Run(func(pc *simmpi.Comm) error {
		if !w.Alive(pc.Rank()) {
			return nil
		}
		rc, err := New(pc, m, Options{Live: w})
		if err != nil {
			return err
		}
		if rc.Rank() == 0 {
			seen := 0
			for seen < 2*(n-1) {
				msg, err := rc.Recv(mpi.AnySource, 4)
				if err != nil {
					return err
				}
				if len(msg.Data) != 1 {
					return fmt.Errorf("bad payload %v", msg.Data)
				}
				seen++
			}
			return nil
		}
		for i := 0; i < 2; i++ {
			if err := rc.Send(0, 4, []byte{byte(i)}); err != nil {
				return err
			}
		}
		return nil
	})
	if appErr != nil {
		t.Fatalf("app error: %v", appErr)
	}
	if len(failures) != 0 {
		t.Fatalf("failures: %v", failures)
	}
}

func TestIrecvRequestSet(t *testing.T) {
	launch(t, 2, 2, Options{}, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 6, []byte("nonblocking"))
		}
		req, err := c.Irecv(0, 6)
		if err != nil {
			return err
		}
		msg, st, err := req.Wait()
		if err != nil {
			return err
		}
		if st.Source != 0 || st.Len != len("nonblocking") {
			return fmt.Errorf("status %+v", st)
		}
		if string(msg.Data) != "nonblocking" {
			return fmt.Errorf("payload %q", msg.Data)
		}
		// Wait is idempotent.
		if again, _, err := req.Wait(); err != nil || string(again.Data) != "nonblocking" {
			return fmt.Errorf("second Wait: %q err=%v", again.Data, err)
		}
		msg.Release()
		return nil
	})
}

func TestIrecvTestPolling(t *testing.T) {
	launch(t, 2, 2, Options{}, func(c *Comm) error {
		if c.Rank() == 0 {
			time.Sleep(20 * time.Millisecond)
			return c.Send(1, 6, []byte("late"))
		}
		req, err := c.Irecv(0, 6)
		if err != nil {
			return err
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			done, msg, st, err := req.Test()
			if done {
				if err != nil {
					return err
				}
				if st.Len != 4 || string(msg.Data) != "late" {
					return fmt.Errorf("st %+v msg %q", st, msg.Data)
				}
				msg.Release()
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("request never completed")
			}
			time.Sleep(time.Millisecond)
		}
	})
}

func TestIsendCompletes(t *testing.T) {
	launch(t, 2, 3, Options{}, func(c *Comm) error {
		if c.Rank() == 0 {
			req, err := c.Isend(1, 1, []byte("x"))
			if err != nil {
				return err
			}
			done, _, _, err := req.Test()
			if !done || err != nil {
				return fmt.Errorf("isend done=%v err=%v", done, err)
			}
			if _, _, err := req.Wait(); err != nil {
				return err
			}
			return nil
		}
		_, err := c.Recv(0, 1)
		return err
	})
}

func TestProbeVirtual(t *testing.T) {
	launch(t, 2, 2, Options{}, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 9, []byte("abc"))
		}
		st, err := c.Probe(0, 9)
		if err != nil {
			return err
		}
		if st.Source != 0 || st.Len != 3 {
			return fmt.Errorf("probe %+v", st)
		}
		msg, err := c.Recv(0, 9)
		if err != nil {
			return err
		}
		if !bytes.Equal(msg.Data, []byte("abc")) {
			return fmt.Errorf("payload %q", msg.Data)
		}
		if _, err := c.Probe(mpi.AnySource, 9); err == nil {
			return fmt.Errorf("wildcard probe should be rejected")
		}
		return nil
	})
}

func TestControlTagRejected(t *testing.T) {
	launch(t, 2, 1, Options{}, func(c *Comm) error {
		if err := c.Send(1, mpi.TagControlBase+5, nil); !errors.Is(err, mpi.ErrInvalidTag) {
			return fmt.Errorf("control-tag send err = %v", err)
		}
		if _, err := c.Irecv(1, -3); !errors.Is(err, mpi.ErrInvalidTag) {
			return fmt.Errorf("negative-tag irecv err = %v", err)
		}
		return nil
	})
}

func TestVirtualCountTracking(t *testing.T) {
	var mu sync.Mutex
	counts := map[string][]uint64{}
	launch(t, 2, 2, Options{}, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 3; i++ {
				if err := c.Send(1, 0, nil); err != nil {
					return err
				}
			}
		} else {
			for i := 0; i < 3; i++ {
				if _, err := c.Recv(0, 0); err != nil {
					return err
				}
			}
		}
		mu.Lock()
		counts[fmt.Sprintf("s%d/%d", c.Rank(), c.ReplicaIndex())] = c.SentCounts()
		counts[fmt.Sprintf("r%d/%d", c.Rank(), c.ReplicaIndex())] = c.RecvCounts()
		mu.Unlock()
		return nil
	})
	for _, idx := range []int{0, 1} {
		if got := counts[fmt.Sprintf("s0/%d", idx)]; got[1] != 3 {
			t.Fatalf("sender replica %d sent counts %v", idx, got)
		}
		if got := counts[fmt.Sprintf("r1/%d", idx)]; got[0] != 3 {
			t.Fatalf("receiver replica %d recv counts %v", idx, got)
		}
	}
}
