package redundancy

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/mpi"
	"repro/internal/simmpi"
)

// TestScaleLargeWorldDegree2 runs degree-2 replication on a world big
// enough that the sharded mailbox table stops being one-shard-per-rank:
// 300 virtual ranks × 2 replicas = 600 physical ranks, past the 512-shard
// cap, so every shard multiplexes at least two mailboxes. The redundancy
// layer must run unchanged on that layout — ring traffic, collectives,
// and mid-run replica loss all behave exactly as they do at small N.
func TestScaleLargeWorldDegree2(t *testing.T) {
	if testing.Short() {
		t.Skip("large-world scale test")
	}
	const n = 300
	m, err := NewRankMap(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.PhysicalSize() != 2*n {
		t.Fatalf("physical size %d, want %d", m.PhysicalSize(), 2*n)
	}
	w, err := simmpi.NewWorld(m.PhysicalSize())
	if err != nil {
		t.Fatal(err)
	}

	// Victim virtual ranks lose their second replica between the barrier
	// and the allreduce; the surviving replica must carry the rank through.
	victims := map[int]bool{10: true, 100: true, 250: true}
	killedPhys := map[int]bool{}
	for v := range victims {
		sphere, err := m.Sphere(v)
		if err != nil {
			t.Fatal(err)
		}
		if len(sphere) != 2 {
			t.Fatalf("sphere(%d) = %v, want 2 replicas", v, sphere)
		}
		killedPhys[sphere[1]] = true
	}

	wantSum := float64(n*(n+1)) / 2
	var mu sync.Mutex
	results := map[string]float64{}
	appErr, failures := w.Run(func(pc *simmpi.Comm) error {
		rc, err := New(pc, m, Options{Live: w})
		if err != nil {
			return err
		}
		me := rc.Rank()
		right := (me + 1) % n
		left := (me - 1 + n) % n
		for iter := 0; iter < 2; iter++ {
			if err := rc.Send(right, 5, []byte{byte(me), byte(me >> 8), byte(iter)}); err != nil {
				return err
			}
			msg, err := rc.Recv(left, 5)
			if err != nil {
				return err
			}
			if got := int(msg.Data[0]) | int(msg.Data[1])<<8; got != left || int(msg.Data[2]) != iter {
				return fmt.Errorf("rank %d iter %d: got ring payload from %d iter %d", me, iter, got, msg.Data[2])
			}
		}
		if err := mpi.Barrier(rc); err != nil {
			return err
		}
		// Each victim's second replica kills itself at a deterministic
		// point in its own flow; its unwind is the expected failure.
		if victims[me] && rc.ReplicaIndex() == 1 {
			w.Kill(pc.Rank())
		}
		out, err := mpi.AllreduceFloat64s(rc, []float64{float64(me + 1)}, mpi.OpSum)
		if err != nil {
			return err
		}
		mu.Lock()
		results[fmt.Sprintf("%d/%d", me, rc.ReplicaIndex())] = out[0]
		mu.Unlock()
		return nil
	})
	if appErr != nil {
		t.Fatalf("app error: %v", appErr)
	}
	for _, f := range failures {
		if !killedPhys[f.Rank] {
			t.Fatalf("unexpected failure on physical rank %d: %v", f.Rank, f.Err)
		}
	}
	// Every surviving replica — including the victims' remaining one —
	// must hold the identical global sum.
	if len(results) < 2*n-len(killedPhys) {
		t.Fatalf("%d replica results, want at least %d", len(results), 2*n-len(killedPhys))
	}
	for key, got := range results {
		if got != wantSum {
			t.Fatalf("replica %s computed %v, want %v", key, got, wantSum)
		}
	}
	for v := range victims {
		if _, ok := results[fmt.Sprintf("%d/0", v)]; !ok {
			t.Fatalf("victim rank %d's surviving replica produced no result", v)
		}
	}
}
