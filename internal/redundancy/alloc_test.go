package redundancy

import (
	"testing"

	"repro/internal/simmpi"
)

// degree2Fixture builds a 2-virtual/4-physical world with degree-2
// replication, the configuration the copy-on-write fan-out targets.
func degree2Fixture(t *testing.T) (comms []*Comm, sphere0, sphere1 []int) {
	t.Helper()
	w, err := simmpi.NewWorld(4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewRankMap(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	comms = make([]*Comm, 4)
	for p := range comms {
		pc, _ := w.Comm(p)
		comms[p], err = Wrap(pc, m)
		if err != nil {
			t.Fatal(err)
		}
	}
	sphere0, _ = m.Sphere(0)
	sphere1, _ = m.Sphere(1)
	return comms, sphere0, sphere1
}

// TestDegree2SendSteadyStateAllocs pins the copy-on-write replica
// fan-out: after warm-up, a full virtual round trip (two redundant
// senders, two verifying receivers) stays within a one-allocation
// budget — the encoded payload is pooled and shared, the verify path
// runs on per-Comm scratch.
func TestDegree2SendSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under the race detector")
	}
	comms, sphere0, sphere1 := degree2Fixture(t)
	payload := make([]byte, 256)
	round := func() {
		for _, p := range sphere0 {
			if err := comms[p].Send(1, 1, payload); err != nil {
				t.Fatal(err)
			}
		}
		for _, p := range sphere1 {
			msg, err := comms[p].Recv(0, 1)
			if err != nil {
				t.Fatal(err)
			}
			msg.Release()
		}
	}
	for i := 0; i < 50; i++ {
		round()
	}
	if avg := testing.AllocsPerRun(100, round); avg > 1 {
		t.Errorf("degree-2 send/recv steady state allocates %.2f per round, want ≤1", avg)
	}
}

// TestDegree2IsendFanoutAllocs bounds the non-blocking path: each Isend
// may allocate its fulfilled request handle, but the fan-out underneath
// must still ride the shared pooled buffer.
func TestDegree2IsendFanoutAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under the race detector")
	}
	comms, sphere0, sphere1 := degree2Fixture(t)
	payload := make([]byte, 256)
	round := func() {
		for _, p := range sphere0 {
			req, err := comms[p].Isend(1, 1, payload)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := req.Wait(); err != nil {
				t.Fatal(err)
			}
		}
		for _, p := range sphere1 {
			msg, err := comms[p].Recv(0, 1)
			if err != nil {
				t.Fatal(err)
			}
			msg.Release()
		}
	}
	for i := 0; i < 50; i++ {
		round()
	}
	// Budget: one request handle per Isend (two senders), plus slack for
	// the interface boxing around mpi.Request.
	if avg := testing.AllocsPerRun(100, round); avg > 4 {
		t.Errorf("degree-2 Isend round allocates %.2f, want ≤4", avg)
	}
}
