package redundancy

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"repro/internal/mpi"
)

// msgKind distinguishes the physical message types the layer exchanges.
type msgKind byte

const (
	// kindFull carries a complete application payload.
	kindFull msgKind = iota + 1
	// kindHash carries only the FNV-64a digest of the payload
	// (Msg-PlusHash mode).
	kindHash
	// kindEnvelope is a control message of the wildcard-receive protocol
	// carrying the virtual source chosen by a sibling replica.
	kindEnvelope
)

// wireHeaderLen is the fixed prefix prepended to every physical payload.
const wireHeaderLen = 1 + 1 + 4 + 4 // kind, senderIdx, virtSrc, tag

// encodeWire frames an application payload (or hash) for the physical
// transport into a fresh allocation.
func encodeWire(kind msgKind, senderIdx, virtSrc, tag int, payload []byte) []byte {
	buf := make([]byte, wireHeaderLen+len(payload))
	encodeWireInto(buf, kind, senderIdx, virtSrc, tag, payload)
	return buf
}

// encodeWireInto frames an application payload (or hash) into buf, which
// the caller has sized to wireHeaderLen+len(payload) — typically a pooled
// buffer about to be shared across the replica fan-out.
func encodeWireInto(buf []byte, kind msgKind, senderIdx, virtSrc, tag int, payload []byte) {
	buf[0] = byte(kind)
	buf[1] = byte(senderIdx)
	binary.LittleEndian.PutUint32(buf[2:], uint32(int32(virtSrc)))
	binary.LittleEndian.PutUint32(buf[6:], uint32(int32(tag)))
	copy(buf[wireHeaderLen:], payload)
}

// wireMsg is a decoded physical message. msg is the transport message the
// payload aliases (zero when decoded from a bare byte slice); delivery
// reframes the winning copy's msg and releases the losers' so their
// pooled buffers recycle.
type wireMsg struct {
	kind      msgKind
	senderIdx int
	virtSrc   int
	tag       int
	payload   []byte
	msg       mpi.Message
}

// decodeWire parses a framed physical payload.
func decodeWire(buf []byte) (wireMsg, error) {
	if len(buf) < wireHeaderLen {
		return wireMsg{}, fmt.Errorf("redundancy: wire message of %d bytes", len(buf))
	}
	k := msgKind(buf[0])
	if k != kindFull && k != kindHash && k != kindEnvelope {
		return wireMsg{}, fmt.Errorf("redundancy: unknown wire kind %d", buf[0])
	}
	return wireMsg{
		kind:      k,
		senderIdx: int(buf[1]),
		virtSrc:   int(int32(binary.LittleEndian.Uint32(buf[2:]))),
		tag:       int(int32(binary.LittleEndian.Uint32(buf[6:]))),
		payload:   buf[wireHeaderLen:],
	}, nil
}

// decodeWireFrom parses a framed physical message, keeping the transport
// message (and any pooled buffer it owns) attached to the result. On
// parse failure the message is released before returning.
func decodeWireFrom(msg mpi.Message) (wireMsg, error) {
	wm, err := decodeWire(msg.Data)
	if err != nil {
		msg.Release()
		return wireMsg{}, err
	}
	wm.msg = msg
	return wm, nil
}

// releaseCopies returns every collected copy's transport buffer to the
// pool except keep's (pass keep = -1 to release them all).
func releaseCopies(copies []wireMsg, keep int) {
	for i := range copies {
		if i != keep {
			copies[i].msg.Release()
		}
	}
}

// payloadHash is the digest Msg-PlusHash mode ships instead of the full
// payload: FNV-64a, cheap and collision-resistant enough for detecting
// the bit-flip corruptions RedMPI targets.
func payloadHash(payload []byte) []byte {
	return payloadHashInto(make([]byte, 8), payload)
}

// payloadHashInto writes the payload digest into dst[:8] (typically a
// scratch array reused across sends and verifications) and returns it.
func payloadHashInto(dst []byte, payload []byte) []byte {
	h := fnv.New64a()
	h.Write(payload) // hash.Hash.Write never returns an error
	binary.LittleEndian.PutUint64(dst, h.Sum64())
	return dst[:8]
}

// envelopePayload encodes the wildcard-protocol control record: the
// sequence number of the wildcard operation on this control channel and
// the virtual source (and original tag, for AnyTag operations) the leader
// matched.
func envelopePayload(seq uint64, virtSrc, tag int) []byte {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf, seq)
	binary.LittleEndian.PutUint32(buf[8:], uint32(int32(virtSrc)))
	binary.LittleEndian.PutUint32(buf[12:], uint32(int32(tag)))
	return buf
}

// decodeEnvelope parses an envelope control record.
func decodeEnvelope(buf []byte) (seq uint64, virtSrc, tag int, err error) {
	if len(buf) != 16 {
		return 0, 0, 0, fmt.Errorf("redundancy: envelope of %d bytes", len(buf))
	}
	seq = binary.LittleEndian.Uint64(buf)
	virtSrc = int(int32(binary.LittleEndian.Uint32(buf[8:])))
	tag = int(int32(binary.LittleEndian.Uint32(buf[12:])))
	return seq, virtSrc, tag, nil
}
