package redundancy

import (
	"bytes"
	"testing"
)

// FuzzDecodeWire hardens the wire decoder against arbitrary physical
// payloads: it must never panic, and every accepted frame must re-encode
// to an equivalent frame.
func FuzzDecodeWire(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeWire(kindFull, 1, 2, 3, []byte("payload")))
	f.Add(encodeWire(kindHash, 0, 0, 0, payloadHash([]byte("x"))))
	f.Add(encodeWire(kindEnvelope, 2, 9, 4, envelopePayload(7, 9, 4)))
	f.Fuzz(func(t *testing.T, data []byte) {
		wm, err := decodeWire(data)
		if err != nil {
			return
		}
		re := encodeWire(wm.kind, wm.senderIdx, wm.virtSrc, wm.tag, wm.payload)
		rm, err := decodeWire(re)
		if err != nil {
			t.Fatalf("re-encode of accepted frame rejected: %v", err)
		}
		if rm.kind != wm.kind || rm.virtSrc != wm.virtSrc || rm.tag != wm.tag ||
			!bytes.Equal(rm.payload, wm.payload) {
			t.Fatalf("re-encode drifted: %+v vs %+v", rm, wm)
		}
	})
}

// FuzzDecodeEnvelope hardens the wildcard-protocol control decoder.
func FuzzDecodeEnvelope(f *testing.F) {
	f.Add([]byte{})
	f.Add(envelopePayload(0, 0, 0))
	f.Add(envelopePayload(^uint64(0), -1, -1))
	f.Fuzz(func(t *testing.T, data []byte) {
		seq, src, tag, err := decodeEnvelope(data)
		if err != nil {
			return
		}
		re := envelopePayload(seq, src, tag)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted envelope does not round-trip: %x vs %x", re, data)
		}
	})
}
