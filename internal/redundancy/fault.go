// ULFM-style fault observation through the redundancy layer. The
// virtual world fails at sphere granularity: a physical replica death
// is masked (that is the point of redundancy), so the errhandler,
// FailureAck, and Shrink surface a virtual rank only when its whole
// replica sphere is dead. The failure-notification plumbing reuses the
// §3 wildcard control channels: the sphere leader, who is the only
// replica posting real physical wildcards, observes unacknowledged
// deaths and relays them to its siblings as failure envelopes so every
// replica of a virtual rank reaches the same failure view in the same
// wildcard position.

package redundancy

import (
	"fmt"
	"sort"

	"repro/internal/mpi"
)

// failureEnvelopeSrc marks a control envelope as a failure notice (the
// tag field then carries the dead virtual rank). Real envelopes carry a
// non-negative virtual source, so the sentinel cannot collide.
const failureEnvelopeSrc = -2

// SetErrhandler implements mpi.Comm. The handler observes virtual-rank
// failures: it fires at most once per failed virtual rank, from inside
// the observing call, and only once every replica of that rank is dead.
// Installing a handler also arms the physical comm's handler so the
// transport's wildcard gate (mpi.ErrFailurePending) engages.
func (c *Comm) SetErrhandler(fn func(mpi.FailureInfo)) {
	c.vhandler = fn
	if fn == nil {
		c.phys.SetErrhandler(nil)
		return
	}
	if c.vnotified == nil {
		c.vnotified = make(map[int]bool)
		c.unacked = make(map[int]bool)
	}
	c.phys.SetErrhandler(func(fi mpi.FailureInfo) {
		c.notePhysFailure(fi.Rank)
	})
}

// notePhysFailure translates one physical replica death into the
// virtual failure view: the owning virtual rank has failed only if no
// replica of its sphere remains alive.
func (c *Comm) notePhysFailure(phys int) {
	rep, err := c.m.Owner(phys)
	if err != nil {
		return
	}
	sphere, err := c.m.Sphere(rep.Virtual)
	if err != nil {
		return
	}
	for _, q := range sphere {
		if c.live.Alive(q) {
			return // a surviving replica masks the death
		}
	}
	c.failVirtual(rep.Virtual)
}

// failVirtual fires the handler for a newly failed virtual rank and
// marks it unacknowledged (gating wildcard receives). It reports
// whether the failure was fresh. Ranks a Shrink already excluded are
// repaired failures: they neither fire nor re-arm the gate.
func (c *Comm) failVirtual(v int) bool {
	if c.vhandler == nil || v < 0 || v >= c.m.VirtualSize() || c.vnotified[v] || c.excluded[v] {
		return false
	}
	c.vnotified[v] = true
	c.unacked[v] = true
	c.vhandler(mpi.FailureInfo{Rank: v})
	return true
}

// liftPhysDeaths acknowledges the physical comm's failures and lifts
// every death the ack reports into the virtual view. The physical ack
// marks deaths notified WITHOUT firing the translating handler, so an
// ack that is not followed by a lift silently swallows any observation
// the handler had not yet delivered — and a swallowed sphere exhaustion
// deadlocks the job (no replica ever learns the rank is gone). Every
// acknowledgement on this comm must therefore go through here.
func (c *Comm) liftPhysDeaths() {
	for _, q := range c.phys.FailureAck() {
		c.notePhysFailure(q)
	}
}

// FailureAck implements mpi.Comm: acknowledging clears the virtual
// wildcard gate (and the physical one beneath it) and returns the
// acknowledged failed virtual ranks in ascending order. Failures first
// observed by the ack itself are delivered to the errhandler from
// inside the call before being acknowledged.
func (c *Comm) FailureAck() []int {
	c.liftPhysDeaths()
	for v := range c.unacked {
		delete(c.unacked, v)
	}
	return c.ackedVirtualLocked()
}

// ackedVirtualLocked lists every virtual rank whose failure has been
// observed so far, ascending.
func (c *Comm) ackedVirtualLocked() []int {
	if len(c.vnotified) == 0 {
		return nil
	}
	out := make([]int, 0, len(c.vnotified))
	for v := range c.vnotified {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Agree implements mpi.Comm by delegating to the physical transport's
// fault-tolerant agreement: every live replica of every surviving
// virtual rank participates, so the flag is AND-reduced across exactly
// the endpoints that can still act on it.
func (c *Comm) Agree(flag bool) (bool, error) {
	return c.phys.Agree(flag)
}

// baseRanker exposes the survivor set a transport-level shrink agreed
// on; *mpi.Shrunk implements it.
type baseRanker interface {
	BaseRanks() []int
}

// Shrink implements mpi.Comm. The physical transport's shrink supplies
// the agreed physical survivor set — that collective is what makes
// every replica's view consistent — and the virtual survivors are the
// spheres retaining at least one surviving replica. The physical
// communicator itself is NOT narrowed (replica fan-out must keep
// addressing the full physical world, dead replicas skipped as usual);
// the agreed survivor set is lifted onto the virtual world instead.
func (c *Comm) Shrink() (mpi.Comm, error) {
	ps, err := c.phys.Shrink()
	if err != nil {
		return nil, err
	}
	br, ok := ps.(baseRanker)
	if !ok {
		return nil, fmt.Errorf("redundancy: physical shrink returned %T without a survivor set", ps)
	}
	physAlive := make(map[int]bool, len(br.BaseRanks()))
	for _, q := range br.BaseRanks() {
		physAlive[q] = true
	}
	var virtSurvivors []int
	survives := make(map[int]bool, c.m.VirtualSize())
	for v := 0; v < c.m.VirtualSize(); v++ {
		sphere, serr := c.m.Sphere(v)
		if serr != nil {
			return nil, serr
		}
		for _, q := range sphere {
			if physAlive[q] {
				virtSurvivors = append(virtSurvivors, v)
				survives[v] = true
				break
			}
		}
	}
	// Acknowledge selectively: the shrink repairs exactly the spheres it
	// excludes, so only their failures are cleared. A sphere that died
	// too late for this shrink's survivor agreement stays (or becomes)
	// pending, so it surfaces through the wildcard gate on every replica
	// and drives the next repair — clearing it here would strand the
	// failure on whichever replicas had already observed it. The physical
	// deaths the transport ack reports are lifted first so no observation
	// is swallowed (see liftPhysDeaths).
	if c.excluded == nil {
		c.excluded = make(map[int]bool)
	}
	for v := 0; v < c.m.VirtualSize(); v++ {
		if !survives[v] && !c.excluded[v] {
			c.excluded[v] = true
			delete(c.unacked, v)
		}
	}
	c.liftPhysDeaths()
	return mpi.NewShrunk(c, virtSurvivors)
}

// leaderObservedPending handles the leader's physical wildcard failing
// fast with mpi.ErrFailurePending: the physical deaths are acknowledged
// transport-side (the translating handler has already lifted them into
// the virtual view), and the call reports whether a whole sphere died —
// if not, the loss is masked and the wildcard should simply be
// retried.
func (c *Comm) leaderObservedPending() bool {
	c.liftPhysDeaths()
	return len(c.unacked) > 0
}

// notifyFailures relays this replica's unacknowledged virtual failures
// to its higher-indexed siblings as failure envelopes on the wildcard
// control channel, so followers parked on the envelope stream observe
// the failure at the same wildcard position. Failure envelopes do not
// consume a sequence number: the stream position they announce is the
// one the next real envelope will fill.
func (c *Comm) notifyFailures(mySphere []int, ctrl int, seq uint64) {
	var failed []int
	for v := range c.unacked {
		failed = append(failed, v)
	}
	sort.Ints(failed)
	for _, v := range failed {
		env := encodeWire(kindEnvelope, c.me.Index, c.me.Virtual, ctrl,
			envelopePayload(seq, failureEnvelopeSrc, v))
		for j := c.me.Index + 1; j < len(mySphere); j++ {
			if c.phys.Send(mySphere[j], ctrl, env) != nil {
				return
			}
			c.stats.envelopes.Add(1)
		}
	}
}

var errFailurePendingWildcard = fmt.Errorf(
	"redundancy: unacknowledged virtual failure: %w", mpi.ErrFailurePending)
