package redundancy

import (
	"testing"

	"repro/internal/simmpi"
)

// Hot-path benchmark for the CI bench gate (cmd/benchgate): the degree-2
// replica fan-out, where each virtual send becomes two physical sends.
// With the copy-on-write path both physical sends reference one pooled
// encode, so the gate's allocs/op floor guards the zero-copy win.

const benchBatch = 500

func BenchmarkDegree2Send(b *testing.B) {
	w, err := simmpi.NewWorld(4)
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewRankMap(2, 2)
	if err != nil {
		b.Fatal(err)
	}
	comms := make([]*Comm, 4)
	for p := range comms {
		pc, _ := w.Comm(p)
		comms[p], err = Wrap(pc, m)
		if err != nil {
			b.Fatal(err)
		}
	}
	sphere0, _ := m.Sphere(0)
	sphere1, _ := m.Sphere(1)
	payload := make([]byte, 256)
	b.SetBytes(benchBatch * int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < benchBatch; j++ {
			for _, p := range sphere0 {
				if err := comms[p].Send(1, 1, payload); err != nil {
					b.Fatal(err)
				}
			}
			for _, p := range sphere1 {
				msg, err := comms[p].Recv(0, 1)
				if err != nil {
					b.Fatal(err)
				}
				msg.Release()
			}
		}
	}
}
