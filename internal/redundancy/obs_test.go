package redundancy

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/simmpi"
)

// launchWithCorrupt runs a 2-virtual-rank world at the given degree with
// Options.Corrupt enabled on one physical rank's replica.
func launchWithCorrupt(t *testing.T, degree float64, corruptPhys int,
	fn func(c *Comm) error) map[string]Stats {
	t.Helper()
	m, err := NewRankMap(2, degree)
	if err != nil {
		t.Fatal(err)
	}
	w, err := simmpi.NewWorld(m.PhysicalSize())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	stats := map[string]Stats{}
	appErr, failures := w.Run(func(pc *simmpi.Comm) error {
		rc, err := New(pc, m, Options{Live: w, Corrupt: pc.Rank() == corruptPhys})
		if err != nil {
			return err
		}
		err = fn(rc)
		mu.Lock()
		stats[fmt.Sprintf("%d/%d", rc.Rank(), rc.ReplicaIndex())] = rc.Stats()
		mu.Unlock()
		return err
	})
	if appErr != nil {
		t.Fatalf("app error: %v", appErr)
	}
	if len(failures) != 0 {
		t.Fatalf("failures: %v", failures)
	}
	return stats
}

func TestCorruptOptionTriggersMismatchDetection(t *testing.T) {
	// At 2x, sphere(0) = two sender replicas; corrupting the SECOND
	// replica (non-lowest) means receivers detect a mismatch on every
	// delivery while the tie-broken winner stays clean.
	m, err := NewRankMap(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sphere0, err := m.Sphere(0)
	if err != nil {
		t.Fatal(err)
	}
	stats := launchWithCorrupt(t, 2, sphere0[1], pingPong)
	var mismatches, votes uint64
	for key, s := range stats {
		if key[0] == '1' { // receiver replicas
			mismatches += s.Mismatches
			votes += s.Votes
		}
	}
	if mismatches == 0 {
		t.Fatal("corrupt replica produced no mismatches")
	}
	if votes == 0 {
		t.Fatal("no votes counted despite replicated copies")
	}
}

func TestStatsCountVirtualSendsAndVotes(t *testing.T) {
	stats := launchWithCorrupt(t, 2, -1, pingPong)
	for key, s := range stats {
		switch key[0] {
		case '0': // sender replicas: one virtual send fanned out to r copies
			if s.VirtualSends != 1 {
				t.Errorf("%s: virtual sends = %d, want 1", key, s.VirtualSends)
			}
			if s.PhysicalSends != 2 {
				t.Errorf("%s: physical sends = %d, want 2", key, s.PhysicalSends)
			}
		case '1': // receiver replicas: one delivery, one cross-check
			if s.Deliveries != 1 || s.Votes != 1 {
				t.Errorf("%s: deliveries=%d votes=%d, want 1/1", key, s.Deliveries, s.Votes)
			}
			if s.Mismatches != 0 {
				t.Errorf("%s: clean run recorded %d mismatches", key, s.Mismatches)
			}
		}
	}
}
