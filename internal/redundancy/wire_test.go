package redundancy

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestWireRoundTrip(t *testing.T) {
	f := func(senderIdx uint8, virtSrc, tag uint16, payload []byte) bool {
		buf := encodeWire(kindFull, int(senderIdx), int(virtSrc), int(tag), payload)
		wm, err := decodeWire(buf)
		if err != nil {
			return false
		}
		return wm.kind == kindFull &&
			wm.senderIdx == int(senderIdx) &&
			wm.virtSrc == int(virtSrc) &&
			wm.tag == int(tag) &&
			bytes.Equal(wm.payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWireRejectsGarbage(t *testing.T) {
	if _, err := decodeWire(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := decodeWire(make([]byte, wireHeaderLen-1)); err == nil {
		t.Error("short buffer accepted")
	}
	bad := encodeWire(kindFull, 0, 0, 0, nil)
	bad[0] = 99
	if _, err := decodeWire(bad); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	f := func(seq uint64, virtSrc, tag int32) bool {
		s, v, tg, err := decodeEnvelope(envelopePayload(seq, int(virtSrc), int(tag)))
		return err == nil && s == seq && v == int(virtSrc) && tg == int(tag)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := decodeEnvelope(make([]byte, 15)); err == nil {
		t.Error("short envelope accepted")
	}
}

func TestPayloadHashStable(t *testing.T) {
	a := payloadHash([]byte("same"))
	b := payloadHash([]byte("same"))
	if !bytes.Equal(a, b) {
		t.Fatal("hash not deterministic")
	}
	if bytes.Equal(a, payloadHash([]byte("different"))) {
		t.Fatal("distinct payloads hashed equal")
	}
	if len(a) != 8 {
		t.Fatalf("hash length %d", len(a))
	}
}

func TestVotePlurality(t *testing.T) {
	good := []byte("good")
	bad := []byte("bad!")
	winner, win, agree, disagree := vote([][]byte{good, bad, good})
	if !bytes.Equal(winner, good) || win != 0 || agree != 2 || disagree != 1 {
		t.Fatalf("vote = %q@%d/%d/%d", winner, win, agree, disagree)
	}
	// Tie resolves to the lowest replica's copy (first element).
	winner, win, agree, disagree = vote([][]byte{good, bad})
	if !bytes.Equal(winner, good) || win != 0 || agree != 1 || disagree != 1 {
		t.Fatalf("tie vote = %q@%d/%d/%d", winner, win, agree, disagree)
	}
	winner, win, agree, disagree = vote([][]byte{good})
	if !bytes.Equal(winner, good) || win != 0 || agree != 1 || disagree != 0 {
		t.Fatalf("single vote = %q@%d/%d/%d", winner, win, agree, disagree)
	}
	// The winner index tracks the first plurality copy, not slot zero.
	winner, win, agree, disagree = vote([][]byte{bad, good, good})
	if !bytes.Equal(winner, good) || win != 1 || agree != 2 || disagree != 1 {
		t.Fatalf("shifted vote = %q@%d/%d/%d", winner, win, agree, disagree)
	}
}
