package redundancy

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/mpi"
)

// Mode selects how replicas cross-check message payloads (paper §2,
// RedMPI description).
type Mode int

const (
	// AllToAll sends complete messages from every sender replica to every
	// receiver replica; receivers compare all copies byte for byte and,
	// at triple redundancy, vote out a corrupt copy. This is the mode the
	// paper's experiments use.
	AllToAll Mode = iota + 1
	// MsgPlusHash sends one complete message plus hashes from the other
	// sender replicas, cutting bandwidth while retaining detection. The
	// full copy comes from sender replica (receiverIndex mod senderCount).
	// If that particular replica dies before sending, the payload is
	// unrecoverable (ErrPayloadLost); use AllToAll under failure
	// injection.
	MsgPlusHash
)

// Liveness reports which physical ranks are still alive. The failure
// injector provides the live view; failure-free runs use AllAlive.
type Liveness interface {
	Alive(phys int) bool
}

// AllAlive is the trivial liveness view for failure-free execution.
type AllAlive struct{}

// Alive always reports true.
func (AllAlive) Alive(int) bool { return true }

// Options configures the interposition layer.
//
// Deprecated: use Wrap with the shared mpi.Option surface.
type Options struct {
	// Mode defaults to AllToAll.
	Mode Mode
	// Live defaults to AllAlive.
	Live Liveness
	// Corrupt makes this replica flip the first byte of every outgoing
	// application payload — deterministic silent-data-corruption
	// injection for exercising the mismatch/vote machinery (the faults
	// RedMPI exists to catch). Corrupting a non-lowest replica keeps
	// delivered payloads clean at dual redundancy, since ties resolve to
	// the lowest replica's copy.
	Corrupt bool
}

// Errors specific to the redundancy layer.
var (
	// ErrSphereDead reports that every replica of the awaited virtual
	// rank died before sending; the virtual channel is gone.
	ErrSphereDead = errors.New("redundancy: all replicas of virtual peer dead")
	// ErrPayloadLost reports that in Msg-PlusHash mode the one replica
	// carrying the full payload died, leaving only hashes.
	ErrPayloadLost = errors.New("redundancy: full payload copy lost")
	// ErrPayloadCorrupt reports that payload verification failed with no
	// correct majority to vote from.
	ErrPayloadCorrupt = errors.New("redundancy: payload corrupt, no majority")
	// errProtocol reports an internal wildcard-protocol violation.
	errProtocol = errors.New("redundancy: wildcard protocol violation")
)

// Stats counts layer activity; all fields are totals since creation.
type Stats struct {
	// VirtualSends is the number of application-level sends issued.
	VirtualSends uint64
	// PhysicalSends is the number of physical point-to-point messages
	// sent (the paper's "up to four times the number of messages").
	// PhysicalSends - VirtualSends is the pure duplicate-send overhead
	// the redundancy degree buys.
	PhysicalSends uint64
	// Deliveries is the number of virtual messages delivered upward.
	Deliveries uint64
	// Votes counts deliveries that cross-checked two or more replica
	// copies (the comparisons the paper's overhead model charges for).
	Votes uint64
	// Mismatches counts deliveries where replica copies disagreed.
	Mismatches uint64
	// Corrections counts mismatches repaired by majority vote.
	Corrections uint64
	// EnvelopesSent counts wildcard-protocol control messages emitted.
	EnvelopesSent uint64
	// Failovers counts wildcard leader re-elections after a death.
	Failovers uint64
}

// Comm presents a virtual-rank mpi.Comm over a physical transport,
// transparently replicating traffic per the rank map. A Comm belongs to
// one replica goroutine and is not safe for concurrent use, matching MPI
// communicator semantics.
type Comm struct {
	m       *RankMap
	phys    mpi.Comm
	me      Replica
	live    Liveness
	mode    Mode
	corrupt bool

	// shared is phys's zero-copy fan-out capability, if it has one: the
	// encoded payload lives in one pooled buffer referenced by every
	// physical send instead of being deep-copied per replica. nil when
	// the transport doesn't pool (then sends fall back to plain copies).
	shared mpi.SharedSender

	// hashScratch backs payload digests on the send and verify paths so
	// the per-message hash does not allocate. Safe because a Comm belongs
	// to one replica goroutine.
	hashScratch [8]byte

	// Receive-path scratch, reused across blocking receives and
	// verifications for the same single-goroutine reason. Entries are
	// dead once the call returns: losers are released, the winner's
	// buffer ownership moves into the delivered message.
	copiesScratch []wireMsg
	fullsScratch  [][]byte
	fullIdx       []int
	hashesScratch [][]byte

	sent []atomic.Uint64
	recv []atomic.Uint64

	// wildcardSeq tracks, per control channel, how many wildcard
	// operations this replica has completed; it synchronises envelope
	// streams across leader failovers.
	wildcardSeq map[int]uint64

	// Virtual fault-observation state (single-goroutine, like the rest
	// of the Comm): the installed errhandler, the virtual ranks it has
	// been told about, and the not-yet-acknowledged subset that gates
	// wildcard receives with mpi.ErrFailurePending.
	vhandler  func(mpi.FailureInfo)
	vnotified map[int]bool
	unacked   map[int]bool
	// excluded records virtual ranks dropped by a Shrink this endpoint
	// participated in. Exclusion is decided by the shrink collective, so
	// the set is identical on every replica — which makes it the only
	// safe filter for failure notifications: observation *timing* (which
	// replica's handler fired first) is not replica-consistent, but
	// membership is.
	excluded map[int]bool

	stats struct {
		virtualSends  atomic.Uint64
		physicalSends atomic.Uint64
		deliveries    atomic.Uint64
		votes         atomic.Uint64
		mismatches    atomic.Uint64
		corrections   atomic.Uint64
		envelopes     atomic.Uint64
		failovers     atomic.Uint64
	}
}

var (
	_ mpi.Comm         = (*Comm)(nil)
	_ mpi.CountTracker = (*Comm)(nil)
)

// Wrap wraps a physical endpoint into its virtual-rank view, configured
// by the same mpi.Option list that configures simmpi.NewWorld — one
// option set threads through the whole stack, each layer applying the
// fields it understands. The physical comm's rank determines which
// replica this endpoint embodies; mpi.WithHashCompare selects
// Msg-PlusHash mode, mpi.WithLiveness supplies the failover view, and a
// physical rank listed in mpi.WithCorruptRanks makes this replica inject
// silent data corruption. mpi.WithDegree, when given, is cross-checked
// against the rank map's geometry.
func Wrap(phys mpi.Comm, m *RankMap, opts ...mpi.Option) (*Comm, error) {
	o := mpi.ResolveOptions(opts)
	if o.Degree != 0 {
		ref, err := NewRankMap(m.VirtualSize(), o.Degree)
		if err != nil {
			return nil, fmt.Errorf("redundancy: degree %g: %w", o.Degree, err)
		}
		if ref.PhysicalSize() != m.PhysicalSize() {
			return nil, fmt.Errorf("redundancy: degree %g needs %d physical ranks, rank map has %d",
				o.Degree, ref.PhysicalSize(), m.PhysicalSize())
		}
	}
	ropts := Options{}
	if o.HashCompare {
		ropts.Mode = MsgPlusHash
	}
	if o.Liveness != nil {
		ropts.Live = o.Liveness
	}
	for _, r := range o.CorruptRanks {
		if r == phys.Rank() {
			ropts.Corrupt = true
		}
	}
	return newComm(phys, m, ropts)
}

// New wraps a physical endpoint into its virtual-rank view. The physical
// comm's rank determines which replica this endpoint embodies.
//
// Deprecated: use Wrap with the shared mpi.Option surface.
func New(phys mpi.Comm, m *RankMap, opts Options) (*Comm, error) {
	return newComm(phys, m, opts)
}

func newComm(phys mpi.Comm, m *RankMap, opts Options) (*Comm, error) {
	if phys.Size() != m.PhysicalSize() {
		return nil, fmt.Errorf("redundancy: physical world %d, map needs %d",
			phys.Size(), m.PhysicalSize())
	}
	me, err := m.Owner(phys.Rank())
	if err != nil {
		return nil, err
	}
	if opts.Mode == 0 {
		opts.Mode = AllToAll
	}
	if opts.Live == nil {
		opts.Live = AllAlive{}
	}
	c := &Comm{
		m:           m,
		phys:        phys,
		me:          me,
		live:        opts.Live,
		mode:        opts.Mode,
		corrupt:     opts.Corrupt,
		sent:        make([]atomic.Uint64, m.VirtualSize()),
		recv:        make([]atomic.Uint64, m.VirtualSize()),
		wildcardSeq: make(map[int]uint64),
	}
	c.shared, _ = phys.(mpi.SharedSender)
	return c, nil
}

// Rank returns the virtual rank this replica embodies.
func (c *Comm) Rank() int { return c.me.Virtual }

// Size returns the virtual world size N.
func (c *Comm) Size() int { return c.m.VirtualSize() }

// ReplicaIndex returns this endpoint's index within its sphere.
func (c *Comm) ReplicaIndex() int { return c.me.Index }

// Physical returns the underlying physical rank. Layers that key
// telemetry streams by physical rank (the flight recorder) use this to
// keep a virtual rank's replicas on distinct streams.
func (c *Comm) Physical() int { return c.phys.Rank() }

// Map returns the rank map in use.
func (c *Comm) Map() *RankMap { return c.m }

// Stats returns a snapshot of the layer's counters.
func (c *Comm) Stats() Stats {
	return Stats{
		VirtualSends:  c.stats.virtualSends.Load(),
		PhysicalSends: c.stats.physicalSends.Load(),
		Deliveries:    c.stats.deliveries.Load(),
		Votes:         c.stats.votes.Load(),
		Mismatches:    c.stats.mismatches.Load(),
		Corrections:   c.stats.corrections.Load(),
		EnvelopesSent: c.stats.envelopes.Load(),
		Failovers:     c.stats.failovers.Load(),
	}
}

func (c *Comm) checkTag(tag int) error {
	if tag < 0 || tag >= mpi.TagControlBase {
		return fmt.Errorf("redundancy: tag %d: %w", tag, mpi.ErrInvalidTag)
	}
	return nil
}

// Send fans data out to every replica of the destination virtual rank
// (Fig. 1a/1b of the paper): r_dst physical sends per virtual send in
// All-to-all mode, full-or-hash per the static assignment in
// Msg-PlusHash mode.
func (c *Comm) Send(dst, tag int, data []byte) error {
	if err := c.checkTag(tag); err != nil {
		return err
	}
	sphere, err := c.m.Sphere(dst)
	if err != nil {
		return err
	}
	mySphere, err := c.m.Sphere(c.me.Virtual)
	if err != nil {
		return err
	}
	if c.corrupt && len(data) > 0 {
		tampered := make([]byte, len(data))
		copy(tampered, data)
		tampered[0] ^= 0xFF
		data = tampered
	}
	// Each kind is encoded once and those bytes back every physical send
	// of the fan-out. On a pooling transport the encode lands in a shared
	// pooled buffer each deposit merely references (the deep copy per
	// replica is elided); otherwise the transport copies at its boundary
	// as usual. Our acquire references are dropped on return, leaving the
	// receivers as the buffers' owners.
	var full, hashed []byte
	var fullPB, hashPB *mpi.PooledBuf
	defer func() {
		if fullPB != nil {
			fullPB.Release()
		}
		if hashPB != nil {
			hashPB.Release()
		}
	}()
	for j, q := range sphere {
		kind := kindFull
		if c.mode == MsgPlusHash && len(mySphere) > 1 && j%len(mySphere) != c.me.Index {
			kind = kindHash
		}
		var payload []byte
		var pb *mpi.PooledBuf
		switch kind {
		case kindFull:
			if full == nil {
				if c.shared != nil {
					full, fullPB = c.shared.AcquireBuffer(wireHeaderLen + len(data))
				} else {
					full = make([]byte, wireHeaderLen+len(data))
				}
				encodeWireInto(full, kindFull, c.me.Index, c.me.Virtual, tag, data)
			}
			payload, pb = full, fullPB
		default:
			if hashed == nil {
				h := payloadHashInto(c.hashScratch[:], data)
				if c.shared != nil {
					hashed, hashPB = c.shared.AcquireBuffer(wireHeaderLen + len(h))
				} else {
					hashed = make([]byte, wireHeaderLen+len(h))
				}
				encodeWireInto(hashed, kindHash, c.me.Index, c.me.Virtual, tag, h)
			}
			payload, pb = hashed, hashPB
		}
		var serr error
		if pb != nil {
			serr = c.shared.SendPooled(q, tag, payload, pb)
		} else {
			serr = c.phys.Send(q, tag, payload)
		}
		if serr != nil {
			return fmt.Errorf("redundancy: send to virtual %d replica %d: %w", dst, j, serr)
		}
		c.stats.physicalSends.Add(1)
	}
	c.sent[dst].Add(1)
	c.stats.virtualSends.Add(1)
	return nil
}

// Recv receives one virtual message matching (src, tag): it collects the
// replicated physical copies, cross-checks them, and delivers the agreed
// payload. src may be mpi.AnySource, which engages the paper's §3
// wildcard protocol so that every replica of this rank observes the same
// virtual sender order.
func (c *Comm) Recv(src, tag int) (mpi.Message, error) {
	if tag != mpi.AnyTag {
		if err := c.checkTag(tag); err != nil {
			return mpi.Message{}, err
		}
	}
	if src == mpi.AnySource {
		return c.recvWildcard(tag)
	}
	return c.recvSpecific(src, tag)
}

// recvSpecific collects one copy from each replica of virtual rank src.
func (c *Comm) recvSpecific(src, tag int) (mpi.Message, error) {
	sphere, err := c.m.Sphere(src)
	if err != nil {
		return mpi.Message{}, err
	}
	copies := c.copiesScratch[:0]
	for _, q := range sphere {
		msg, err := c.phys.Recv(q, tag)
		if err != nil {
			if errors.Is(err, mpi.ErrPeerDead) {
				continue // replica died before sending; its copy is lost
			}
			releaseCopies(copies, -1)
			return mpi.Message{}, err
		}
		wm, err := decodeWireFrom(msg)
		if err != nil {
			releaseCopies(copies, -1)
			return mpi.Message{}, err
		}
		copies = append(copies, wm)
	}
	c.copiesScratch = copies[:0]
	return c.deliverSpecific(src, copies)
}

// verify cross-checks the collected copies and returns the delivered
// payload plus the index (into copies) of the winning full copy, applying
// majority voting when copies disagree. The winner index lets the caller
// keep that copy's transport buffer while releasing the losers'.
func (c *Comm) verify(copies []wireMsg) ([]byte, int, error) {
	fulls := c.fullsScratch[:0]
	fullIdx := c.fullIdx[:0]
	hashes := c.hashesScratch[:0]
	for i, wm := range copies {
		switch wm.kind {
		case kindFull:
			fulls = append(fulls, wm.payload)
			fullIdx = append(fullIdx, i)
		case kindHash:
			hashes = append(hashes, wm.payload)
		default:
			return nil, -1, fmt.Errorf("%w: unexpected control message in data channel", errProtocol)
		}
	}
	c.fullsScratch, c.fullIdx, c.hashesScratch = fulls[:0], fullIdx[:0], hashes[:0]
	if len(fulls) == 0 {
		return nil, -1, ErrPayloadLost
	}
	if len(fulls)+len(hashes) > 1 {
		c.stats.votes.Add(1)
	}
	// Group identical payloads (full copies by bytes, then check hashes
	// against the winning payload's digest).
	winner, win, agree, disagree := vote(fulls)
	h := payloadHashInto(c.hashScratch[:], winner)
	for _, hv := range hashes {
		if string(hv) == string(h) {
			agree++
		} else {
			disagree++
		}
	}
	if disagree > 0 {
		c.stats.mismatches.Add(1)
		if agree >= 2 && agree > disagree {
			// Triple-redundancy style majority: corrupt copy voted out.
			c.stats.corrections.Add(1)
		} else if agree < disagree {
			return nil, -1, ErrPayloadCorrupt
		}
		// agree == disagree (e.g. 1 vs 1 at dual redundancy): detection
		// without correction; deliver the lowest-replica copy, counted as
		// a mismatch, mirroring RedMPI's detect-only capability at 2x.
	}
	return winner, fullIdx[win], nil
}

// vote groups byte-identical payloads and returns the plurality payload,
// its index in fulls, and how many copies agree/disagree with it. Ties
// resolve to the copy from the lowest replica (first in slice order).
// The unanimous case — every delivery without injected corruption — is
// detected with plain comparisons so the hot path never builds the map.
func vote(fulls [][]byte) (winner []byte, win, agree, disagree int) {
	unanimous := true
	for _, f := range fulls[1:] {
		if !bytes.Equal(f, fulls[0]) {
			unanimous = false
			break
		}
	}
	if unanimous {
		return fulls[0], 0, len(fulls), 0
	}
	counts := make(map[string]int, len(fulls))
	for _, f := range fulls {
		counts[string(f)]++
	}
	bestN := 0
	for i, f := range fulls {
		if n := counts[string(f)]; n > bestN {
			bestN = n
			winner = f
			win = i
		}
	}
	return winner, win, bestN, len(fulls) - bestN
}

// controlTag maps a user tag to its wildcard control channel.
func controlTag(tag int) int {
	if tag == mpi.AnyTag {
		return mpi.TagControlBase + mpi.TagUserMax
	}
	return mpi.TagControlBase + tag
}

// leaderIndex returns the lowest alive replica index of this rank's
// sphere, or -1 if the whole sphere is dead.
func (c *Comm) leaderIndex(sphere []int) int {
	for i, q := range sphere {
		if c.live.Alive(q) {
			return i
		}
	}
	return -1
}

// recvWildcard implements the §3 MPI_ANY_SOURCE protocol: the sphere's
// leader posts the physical wildcard receive, determines the envelope,
// forwards it to the other replicas, and everyone then collects the
// remaining replicated copies from the chosen virtual sender. Envelope
// streams carry sequence numbers so followers can resynchronise with a
// new leader after a death.
func (c *Comm) recvWildcard(tag int) (mpi.Message, error) {
	mySphere, err := c.m.Sphere(c.me.Virtual)
	if err != nil {
		return mpi.Message{}, err
	}
	ctrl := controlTag(tag)
	seq := c.wildcardSeq[ctrl]

	var virtSrc, actualTag, gotIdx int
	var first *wireMsg
	for {
		lead := c.leaderIndex(mySphere)
		if c.vhandler != nil && len(c.unacked) > 0 && (lead == -1 || lead == c.me.Index) {
			// ULFM semantics: a wildcard cannot block while a virtual
			// failure stands unacknowledged — the awaited sender may be
			// it. Only the sphere's leader may surface a locally observed
			// failure here, and it must relay it first: followers are
			// pinned to the leader's envelope stream, which fixes the
			// wildcard position every replica observes the failure at. A
			// follower that learned of the death out-of-band (its copy
			// collection hit the dead sphere) keeps draining envelopes —
			// real ones the leader sent before observing the failure —
			// until the leader's failure envelope arrives.
			c.notifyFailures(mySphere, ctrl, seq)
			return mpi.Message{}, errFailurePendingWildcard
		}
		if lead == -1 || lead == c.me.Index {
			// I lead (or everyone below me is dead): post the real
			// wildcard receive.
			virtSrc, actualTag, gotIdx, first, err = c.leadWildcard(tag)
			if errors.Is(err, mpi.ErrFailurePending) {
				if !c.leaderObservedPending() {
					continue // pure replica loss: redundancy masks it
				}
				// A whole sphere died: tell the followers, who are parked
				// on the envelope stream and cannot observe it themselves.
				c.notifyFailures(mySphere, ctrl, seq)
				return mpi.Message{}, errFailurePendingWildcard
			}
			if err != nil {
				return mpi.Message{}, err
			}
			break
		}
		// Follow: wait for the leader's envelope, resynchronising by
		// sequence number if the leadership changed mid-stream.
		env, ferr := c.phys.Recv(mySphere[lead], ctrl)
		if ferr != nil {
			if errors.Is(ferr, mpi.ErrPeerDead) {
				c.stats.failovers.Add(1)
				continue // re-elect and retry
			}
			return mpi.Message{}, ferr
		}
		wm, derr := decodeWire(env.Data)
		if derr != nil {
			env.Release()
			return mpi.Message{}, derr
		}
		if wm.kind != kindEnvelope {
			env.Release()
			return mpi.Message{}, fmt.Errorf("%w: data message on control channel", errProtocol)
		}
		eseq, esrc, etag, derr := decodeEnvelope(wm.payload)
		env.Release()
		if derr != nil {
			return mpi.Message{}, derr
		}
		if esrc == failureEnvelopeSrc {
			// The leader observed a whole-sphere death. Relay onward (a
			// sibling may fail over to this replica's stream) and surface
			// it. The failure may already be known locally — the copy
			// collection races the envelope stream — but it still
			// surfaces here, at the leader's chosen position, as long as
			// it stands unacknowledged; only an already-acknowledged
			// duplicate (a relay from an older repair) is skipped.
			fresh := c.failVirtual(etag)
			if fresh || c.unacked[etag] {
				c.notifyFailures(mySphere, ctrl, seq)
				return mpi.Message{}, errFailurePendingWildcard
			}
			continue
		}
		if eseq < seq {
			continue // stale envelope from a new leader's replayed stream
		}
		if eseq > seq {
			return mpi.Message{}, fmt.Errorf("%w: envelope seq %d, want %d", errProtocol, eseq, seq)
		}
		virtSrc, actualTag, gotIdx = esrc, etag, -1
		break
	}

	// Forward the envelope to higher-indexed siblings so any of them can
	// fail over to this replica's stream later.
	env := encodeWire(kindEnvelope, c.me.Index, c.me.Virtual, ctrl,
		envelopePayload(seq, virtSrc, actualTag))
	for j := c.me.Index + 1; j < len(mySphere); j++ {
		if err := c.phys.Send(mySphere[j], ctrl, env); err != nil {
			return mpi.Message{}, err
		}
		c.stats.envelopes.Add(1)
	}
	c.wildcardSeq[ctrl] = seq + 1

	// Collect the remaining copies from the chosen sender's sphere.
	srcSphere, err := c.m.Sphere(virtSrc)
	if err != nil {
		return mpi.Message{}, err
	}
	copies := make([]wireMsg, 0, len(srcSphere))
	if first != nil {
		copies = append(copies, *first)
	}
	for j, q := range srcSphere {
		if j == gotIdx {
			continue
		}
		msg, rerr := c.phys.Recv(q, actualTag)
		if rerr != nil {
			if errors.Is(rerr, mpi.ErrPeerDead) {
				continue
			}
			releaseCopies(copies, -1)
			return mpi.Message{}, rerr
		}
		wm, derr := decodeWireFrom(msg)
		if derr != nil {
			releaseCopies(copies, -1)
			return mpi.Message{}, derr
		}
		copies = append(copies, wm)
	}
	if len(copies) == 0 {
		c.failVirtual(virtSrc)
		return mpi.Message{}, fmt.Errorf("wildcard recv from virtual %d: %w", virtSrc, ErrSphereDead)
	}
	data, win, err := c.verify(copies)
	if err != nil {
		releaseCopies(copies, -1)
		return mpi.Message{}, fmt.Errorf("wildcard recv from virtual %d: %w", virtSrc, err)
	}
	releaseCopies(copies, win)
	c.recv[virtSrc].Add(1)
	c.stats.deliveries.Add(1)
	return copies[win].msg.Reframe(virtSrc, actualTag, data), nil
}

// leadWildcard performs the leader's physical wildcard receive, skipping
// stale control messages left over from dead ex-leaders.
func (c *Comm) leadWildcard(tag int) (virtSrc, actualTag, gotIdx int, first *wireMsg, err error) {
	for {
		msg, rerr := c.phys.Recv(mpi.AnySource, tag)
		if rerr != nil {
			return 0, 0, 0, nil, rerr
		}
		wm, derr := decodeWireFrom(msg)
		if derr != nil {
			return 0, 0, 0, nil, derr
		}
		if wm.kind == kindEnvelope {
			// Stale envelope from a dead ex-leader (possible only when
			// tag == AnyTag); drop and keep waiting for application data.
			wm.msg.Release()
			continue
		}
		return wm.virtSrc, wm.tag, wm.senderIdx, &wm, nil
	}
}

// Probe blocks until a matching virtual message is available. Only
// specific sources are supported: the leader-based wildcard protocol
// consumes its first physical message, which Probe must not do.
func (c *Comm) Probe(src, tag int) (mpi.Status, error) {
	if src == mpi.AnySource {
		return mpi.Status{}, fmt.Errorf("redundancy: wildcard probe unsupported: %w", mpi.ErrInvalidRank)
	}
	sphere, err := c.m.Sphere(src)
	if err != nil {
		return mpi.Status{}, err
	}
	for _, q := range sphere {
		st, perr := c.phys.Probe(q, tag)
		if perr != nil {
			if errors.Is(perr, mpi.ErrPeerDead) {
				continue
			}
			return mpi.Status{}, perr
		}
		return mpi.Status{Source: src, Tag: st.Tag, Len: st.Len - wireHeaderLen}, nil
	}
	c.failVirtual(src)
	return mpi.Status{}, fmt.Errorf("probe virtual %d: %w", src, ErrSphereDead)
}

// SentCounts implements mpi.CountTracker at virtual-rank granularity.
func (c *Comm) SentCounts() []uint64 {
	out := make([]uint64, len(c.sent))
	for i := range c.sent {
		out[i] = c.sent[i].Load()
	}
	return out
}

// RecvCounts implements mpi.CountTracker at virtual-rank granularity.
func (c *Comm) RecvCounts() []uint64 {
	out := make([]uint64, len(c.recv))
	for i := range c.recv {
		out[i] = c.recv[i].Load()
	}
	return out
}
