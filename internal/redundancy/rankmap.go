// Package redundancy is the RedMPI-equivalent interposition layer of the
// reproduction (paper §3): it presents N virtual ranks to the application
// while transparently running r physical replicas of each rank ("spheres"),
// fanning every point-to-point send and receive out to all replicas,
// enforcing identical message order across replicas (including the
// wildcard-receive envelope-forwarding protocol), verifying replica
// message payloads against each other (All-to-all mode) or against hashes
// (Msg-PlusHash mode), and voting out corrupt messages under triple
// redundancy.
//
// The layer is written against the mpi.Comm interface only, so it runs
// over any transport; in this repository that is the simmpi runtime.
package redundancy

import (
	"fmt"
	"math"

	"repro/internal/model"
)

// Replica identifies one physical process inside a virtual rank's sphere.
type Replica struct {
	// Virtual is the application-visible rank.
	Virtual int
	// Index is the replica's position within the sphere (0-based).
	Index int
}

// RankMap is the bidirectional virtual↔physical rank mapping for a given
// partial-redundancy degree, following Eqs. 5-8 of the paper with the
// interleaved assignment its experiments describe ("a redundancy degree
// of 1.5x means that every other process (i.e., every even process) has a
// replica").
type RankMap struct {
	degree    float64
	partition model.Partition
	// replicas[v] lists the physical ranks of virtual rank v's sphere in
	// replica-index order.
	replicas [][]int
	// owner[p] identifies physical rank p.
	owner []Replica
}

// NewRankMap builds the mapping for n virtual ranks at redundancy degree
// r ≥ 1. Virtual ranks receiving the extra replica are spread evenly
// (Bresenham-style) starting at rank 0, matching the paper's "every even
// process" convention at 1.5x.
func NewRankMap(n int, degree float64) (*RankMap, error) {
	part, err := model.PartitionRanks(n, degree)
	if err != nil {
		return nil, fmt.Errorf("redundancy: %w", err)
	}
	m := &RankMap{
		degree:    degree,
		partition: part,
		replicas:  make([][]int, n),
		owner:     make([]Replica, 0, part.TotalProcesses()),
	}
	next := 0
	for v := 0; v < n; v++ {
		copies := part.Floor
		if m.hasExtraReplica(v, n) {
			copies = part.Ceil
		}
		sphere := make([]int, copies)
		for i := range sphere {
			sphere[i] = next
			m.owner = append(m.owner, Replica{Virtual: v, Index: i})
			next++
		}
		m.replicas[v] = sphere
	}
	if next != part.TotalProcesses() {
		return nil, fmt.Errorf("redundancy: assigned %d physical ranks, partition says %d",
			next, part.TotalProcesses())
	}
	return m, nil
}

// hasExtraReplica reports whether virtual rank v belongs to the
// ⌈r⌉-replica set, spreading the NCeil members evenly across [0, n).
func (m *RankMap) hasExtraReplica(v, n int) bool {
	if m.partition.Floor == m.partition.Ceil {
		return true // integer degree: homogeneous system
	}
	return (v*m.partition.NCeil)%n < m.partition.NCeil
}

// Degree returns the requested redundancy degree.
func (m *RankMap) Degree() float64 { return m.degree }

// Partition returns the Eq. 5-8 split backing this map.
func (m *RankMap) Partition() model.Partition { return m.partition }

// VirtualSize returns N, the application-visible rank count.
func (m *RankMap) VirtualSize() int { return len(m.replicas) }

// PhysicalSize returns N_total (Eq. 8).
func (m *RankMap) PhysicalSize() int { return len(m.owner) }

// Sphere returns the physical ranks of virtual rank v, in replica order.
// The returned slice is shared; callers must not mutate it.
func (m *RankMap) Sphere(v int) ([]int, error) {
	if v < 0 || v >= len(m.replicas) {
		return nil, fmt.Errorf("redundancy: virtual rank %d of %d", v, len(m.replicas))
	}
	return m.replicas[v], nil
}

// Owner resolves a physical rank to its virtual rank and replica index.
func (m *RankMap) Owner(phys int) (Replica, error) {
	if phys < 0 || phys >= len(m.owner) {
		return Replica{}, fmt.Errorf("redundancy: physical rank %d of %d", phys, len(m.owner))
	}
	return m.owner[phys], nil
}

// EffectiveDegree returns PhysicalSize/VirtualSize, the degree actually
// realised after Eq. 6's flooring.
func (m *RankMap) EffectiveDegree() float64 {
	return float64(m.PhysicalSize()) / float64(m.VirtualSize())
}

// Validate checks internal consistency (every physical rank maps back to
// its sphere slot); it exists for property tests.
func (m *RankMap) Validate() error {
	seen := 0
	for v, sphere := range m.replicas {
		if len(sphere) == 0 {
			return fmt.Errorf("redundancy: virtual rank %d has no replicas", v)
		}
		want := m.partition.Floor
		if len(sphere) != want && len(sphere) != m.partition.Ceil {
			return fmt.Errorf("redundancy: virtual rank %d has %d replicas, want %d or %d",
				v, len(sphere), m.partition.Floor, m.partition.Ceil)
		}
		for i, p := range sphere {
			o, err := m.Owner(p)
			if err != nil {
				return err
			}
			if o.Virtual != v || o.Index != i {
				return fmt.Errorf("redundancy: physical %d maps to %+v, want {%d %d}", p, o, v, i)
			}
			seen++
		}
	}
	if seen != m.PhysicalSize() {
		return fmt.Errorf("redundancy: %d mapped ranks, %d physical", seen, m.PhysicalSize())
	}
	if math.Abs(m.EffectiveDegree()-m.degree) > 1.0/float64(m.VirtualSize())+1e-9 {
		return fmt.Errorf("redundancy: effective degree %v too far from requested %v",
			m.EffectiveDegree(), m.degree)
	}
	return nil
}
