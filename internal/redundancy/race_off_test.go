//go:build !race

package redundancy

const raceEnabled = false
