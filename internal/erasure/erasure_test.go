package erasure

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestNewRejectsBadShapes(t *testing.T) {
	for _, tc := range [][2]int{{0, 1}, {1, 0}, {-1, 2}, {2, -1}, {200, 56}} {
		if _, err := New(tc[0], tc[1]); err == nil {
			t.Errorf("New(%d, %d): want error", tc[0], tc[1])
		}
	}
	if _, err := New(4, 2); err != nil {
		t.Fatalf("New(4, 2): %v", err)
	}
}

func TestShardLen(t *testing.T) {
	for _, tc := range []struct{ k, size, want int }{
		{2, 0, 0}, {2, 1, 1}, {2, 2, 1}, {2, 3, 2}, {4, 4096, 1024}, {3, 10, 4},
	} {
		if got := ShardLen(tc.k, tc.size); got != tc.want {
			t.Errorf("ShardLen(%d, %d) = %d, want %d", tc.k, tc.size, got, tc.want)
		}
	}
}

func TestRoundTripNoLoss(t *testing.T) {
	c, err := New(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 1000) // not a multiple of k: exercises padding
	rand.New(rand.NewSource(1)).Read(data)
	shards := c.Encode(data, nil)
	if len(shards) != 5 {
		t.Fatalf("got %d shards", len(shards))
	}
	got, err := c.Reconstruct(shards, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("lossless round trip corrupted data")
	}
}

// TestAllLossCombos is the core property: for every (k, m) in a small
// grid and every way of deleting exactly m shards, the survivors
// reconstruct the original bytes exactly.
func TestAllLossCombos(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, kc := range []struct{ k, m int }{{2, 1}, {2, 2}, {3, 2}, {4, 2}, {4, 3}, {5, 1}} {
		c, err := New(kc.k, kc.m)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 257+kc.k) // odd size: padding in play
		rng.Read(data)
		base := c.Encode(data, nil)
		n := kc.k + kc.m
		// Iterate every subset of shard indices of size m via bitmask.
		for mask := 0; mask < 1<<n; mask++ {
			if popcount(mask) != kc.m {
				continue
			}
			shards := make([][]byte, n)
			for i := range shards {
				if mask&(1<<i) == 0 {
					shards[i] = base[i]
				}
			}
			got, err := c.Reconstruct(shards, len(data))
			if err != nil {
				t.Fatalf("k=%d m=%d mask=%b: %v", kc.k, kc.m, mask, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("k=%d m=%d mask=%b: reconstructed bytes differ", kc.k, kc.m, mask)
			}
		}
	}
}

func TestTooFewShards(t *testing.T) {
	c, _ := New(3, 2)
	data := []byte("the quick brown fox jumps over the lazy dog")
	shards := c.Encode(data, nil)
	shards[0], shards[2], shards[4] = nil, nil, nil // 2 left < k=3
	if _, err := c.Reconstruct(shards, len(data)); err == nil {
		t.Fatal("want error with fewer than k shards")
	}
}

func TestEncodeReusesScratch(t *testing.T) {
	c, _ := New(2, 1)
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i)
	}
	backing := make([]byte, 3*32)
	scratch := [][]byte{backing[0:0:32], backing[32:32:64], backing[64:64:96]}
	shards := c.Encode(data, scratch)
	for i := range shards {
		if &shards[i][0] != &backing[32*i] {
			t.Fatalf("shard %d did not reuse scratch backing", i)
		}
	}
	got, err := c.Reconstruct([][]byte{nil, shards[1], shards[2]}, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("scratch-encoded shards reconstructed wrong bytes")
	}
}

func TestEmptyData(t *testing.T) {
	c, _ := New(2, 1)
	shards := c.Encode(nil, nil)
	for i, s := range shards {
		if len(s) != 0 {
			t.Fatalf("shard %d of empty data has %d bytes", i, len(s))
		}
	}
	got, err := c.Reconstruct(shards, 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty reconstruct: %v, %d bytes", err, len(got))
	}
}

func TestGFFieldAxioms(t *testing.T) {
	// Multiplicative inverses and distributivity over a sample grid —
	// a cheap sanity net under the table-driven arithmetic.
	for a := 1; a < 256; a++ {
		if gfMul(byte(a), gfInv(byte(a))) != 1 {
			t.Fatalf("a * inv(a) != 1 for a=%d", a)
		}
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("distributivity fails for %d, %d, %d", a, b, c)
		}
		if gfMul(a, b) != gfMul(b, a) {
			t.Fatalf("commutativity fails for %d, %d", a, b)
		}
	}
}

// FuzzReconstruct throws arbitrary data and loss patterns at the codec
// and checks the invariant end to end: with at most m losses the bytes
// come back identical; with more the codec reports an error rather than
// fabricating data.
func FuzzReconstruct(f *testing.F) {
	f.Add([]byte("hello erasure world"), uint8(2), uint8(1), uint8(0b001))
	f.Add([]byte{0xff, 0x00, 0xab}, uint8(3), uint8(2), uint8(0b10100))
	f.Add(bytes.Repeat([]byte{7}, 300), uint8(4), uint8(3), uint8(0b1100001))
	f.Add([]byte{}, uint8(2), uint8(2), uint8(0b11))
	f.Fuzz(func(t *testing.T, data []byte, kRaw, mRaw, lossMask uint8) {
		k := int(kRaw)%8 + 1
		m := int(mRaw)%8 + 1
		c, err := New(k, m)
		if err != nil {
			t.Fatalf("New(%d, %d): %v", k, m, err)
		}
		base := c.Encode(data, nil)
		n := k + m
		shards := make([][]byte, n)
		lost := 0
		for i := 0; i < n; i++ {
			if lossMask&(1<<(i%8)) != 0 && lost < m {
				lost++
				continue
			}
			shards[i] = base[i]
		}
		got, err := c.Reconstruct(shards, len(data))
		if err != nil {
			t.Fatalf("k=%d m=%d lost=%d: %v", k, m, lost, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("k=%d m=%d lost=%d: bytes differ", k, m, lost)
		}
	})
}

func popcount(x int) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
