// Package erasure implements systematic Reed-Solomon coding over
// GF(2^8) for the peer checkpoint tier: a snapshot is split into k data
// shards and extended with m parity shards, and the original bytes can
// be reconstructed from any k of the k+m shards. The codec is pure Go
// (log/exp tables plus a 64 KiB per-coefficient product table), so it
// adds no dependencies and no cgo.
//
// The encoding matrix is a Vandermonde matrix normalised so its top k
// rows are the identity (systematic form: data shards are plain slices
// of the input). Any k rows of the normalised matrix remain invertible,
// which is exactly the "any m losses survive" property the peer store's
// shard placement relies on.
package erasure

import (
	"errors"
	"fmt"
)

// polynomial is the primitive polynomial x^8+x^4+x^3+x^2+1 (0x11d)
// generating GF(2^8), the conventional choice for Reed-Solomon codes.
const polynomial = 0x11d

// MaxShards bounds k+m: the Vandermonde evaluation points are the
// distinct powers α^0..α^254 of the field generator.
const MaxShards = 255

var (
	logTable [256]byte
	expTable [510]byte // doubled so gfMulSlow needs no mod 255
	// mulTable[c] is the multiply-by-c table the hot encode loop walks;
	// 64 KiB total, built once at package init.
	mulTable [256][256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		expTable[i+255] = byte(x)
		logTable[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= polynomial
		}
	}
	for c := 1; c < 256; c++ {
		lc := int(logTable[c])
		for a := 1; a < 256; a++ {
			mulTable[c][a] = expTable[lc+int(logTable[a])]
		}
	}
}

func gfMul(a, b byte) byte { return mulTable[a][b] }

func gfInv(a byte) byte {
	if a == 0 {
		panic("erasure: inverse of zero")
	}
	return expTable[255-int(logTable[a])]
}

// addMul computes dst[i] ^= c*src[i] — the inner loop of both encoding
// and reconstruction.
func addMul(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	mt := &mulTable[c]
	_ = dst[len(src)-1]
	for i, s := range src {
		dst[i] ^= mt[s]
	}
}

// mulInto computes dst[i] = c*src[i].
func mulInto(dst, src []byte, c byte) {
	mt := &mulTable[c]
	_ = dst[len(src)-1]
	for i, s := range src {
		dst[i] = mt[s]
	}
}

// Codec encodes k data shards into m additional parity shards and
// reconstructs the original data from any k survivors. Codecs are
// immutable and safe for concurrent use.
type Codec struct {
	k, m int
	// rows is the full (k+m) x k systematic encoding matrix; rows[0..k-1]
	// are the identity, rows[k..] generate the parity shards.
	rows [][]byte
}

// New builds a codec with k data and m parity shards.
func New(k, m int) (*Codec, error) {
	if k < 1 || m < 1 || k+m > MaxShards {
		return nil, fmt.Errorf("erasure: bad shard counts k=%d m=%d (need k,m >= 1, k+m <= %d)", k, m, MaxShards)
	}
	n := k + m
	// Vandermonde: V[i][j] = α^(i·j), evaluation points α^0..α^(n-1).
	v := make([][]byte, n)
	for i := range v {
		v[i] = make([]byte, k)
		for j := 0; j < k; j++ {
			v[i][j] = expTable[(i*j)%255]
		}
	}
	// Normalise: M = V · inv(top k rows), making the top identity while
	// preserving the any-k-rows-invertible property.
	top := make([][]byte, k)
	for i := range top {
		top[i] = append([]byte(nil), v[i]...)
	}
	inv, err := invertMatrix(top)
	if err != nil {
		return nil, fmt.Errorf("erasure: degenerate vandermonde: %w", err)
	}
	rows := make([][]byte, n)
	for i := 0; i < n; i++ {
		rows[i] = make([]byte, k)
		for j := 0; j < k; j++ {
			var acc byte
			for t := 0; t < k; t++ {
				acc ^= gfMul(v[i][t], inv[t][j])
			}
			rows[i][j] = acc
		}
	}
	return &Codec{k: k, m: m, rows: rows}, nil
}

// DataShards returns k.
func (c *Codec) DataShards() int { return c.k }

// ParityShards returns m.
func (c *Codec) ParityShards() int { return c.m }

// TotalShards returns k+m.
func (c *Codec) TotalShards() int { return c.k + c.m }

// ShardLen returns the per-shard length for an input of size bytes
// split into k data shards (the last data shard is zero-padded).
func ShardLen(k, size int) int {
	if size <= 0 {
		return 0
	}
	return (size + k - 1) / k
}

// Encode splits data into k data shards and computes m parity shards,
// all of length ShardLen(k, len(data)). scratch, when non-nil, supplies
// reusable backing: shard i aliases scratch[i] whenever cap(scratch[i])
// suffices, so a caller slicing k+m views out of one pooled buffer
// encodes with zero allocations. The returned slice has k+m entries
// (it is scratch itself when scratch has exactly k+m entries).
func (c *Codec) Encode(data []byte, scratch [][]byte) [][]byte {
	n := c.k + c.m
	sl := ShardLen(c.k, len(data))
	shards := scratch
	if len(shards) != n {
		shards = make([][]byte, n)
		copy(shards, scratch)
	}
	for i := range shards {
		if cap(shards[i]) >= sl {
			shards[i] = shards[i][:sl]
		} else {
			shards[i] = make([]byte, sl)
		}
	}
	if sl == 0 {
		return shards
	}
	// Data shards: plain slices of the input, last one zero-padded.
	for i := 0; i < c.k; i++ {
		lo := i * sl
		hi := lo + sl
		if hi > len(data) {
			hi = len(data)
		}
		var got int
		if lo < hi {
			got = copy(shards[i], data[lo:hi])
		}
		for j := got; j < sl; j++ {
			shards[i][j] = 0
		}
	}
	// Parity shards: row · data.
	for r := 0; r < c.m; r++ {
		row := c.rows[c.k+r]
		out := shards[c.k+r]
		mulInto(out, shards[0], row[0])
		for j := 1; j < c.k; j++ {
			addMul(out, shards[j], row[j])
		}
	}
	return shards
}

// ErrTooFewShards reports that fewer than k shards survived.
var ErrTooFewShards = errors.New("erasure: fewer than k shards present")

// Reconstruct recovers the original data (of length size) from any k
// present shards. shards must have k+m entries in shard-index order
// with nil marking a missing shard; present shards must all have length
// ShardLen(k, size). The input slice is not modified.
func (c *Codec) Reconstruct(shards [][]byte, size int) ([]byte, error) {
	n := c.k + c.m
	if len(shards) != n {
		return nil, fmt.Errorf("erasure: got %d shards, want %d", len(shards), n)
	}
	sl := ShardLen(c.k, size)
	if sl == 0 {
		return []byte{}, nil
	}
	out := make([]byte, c.k*sl)
	// Fast path: all data shards survived.
	allData := true
	for i := 0; i < c.k; i++ {
		if shards[i] == nil {
			allData = false
			break
		}
	}
	if allData {
		for i := 0; i < c.k; i++ {
			if len(shards[i]) != sl {
				return nil, fmt.Errorf("erasure: shard %d has %d bytes, want %d", i, len(shards[i]), sl)
			}
			copy(out[i*sl:], shards[i])
		}
		return out[:size], nil
	}
	// General path: gather the first k surviving rows, invert the k×k
	// submatrix they span, and multiply it into the survivors.
	rows := make([][]byte, 0, c.k)
	data := make([][]byte, 0, c.k)
	for i := 0; i < n && len(rows) < c.k; i++ {
		if shards[i] == nil {
			continue
		}
		if len(shards[i]) != sl {
			return nil, fmt.Errorf("erasure: shard %d has %d bytes, want %d", i, len(shards[i]), sl)
		}
		rows = append(rows, append([]byte(nil), c.rows[i]...))
		data = append(data, shards[i])
	}
	if len(rows) < c.k {
		return nil, fmt.Errorf("erasure: %d of %d shards present: %w", len(rows), n, ErrTooFewShards)
	}
	dec, err := invertMatrix(rows)
	if err != nil {
		return nil, fmt.Errorf("erasure: singular decode matrix: %w", err)
	}
	for i := 0; i < c.k; i++ {
		seg := out[i*sl : (i+1)*sl]
		mulInto(seg, data[0], dec[i][0])
		for j := 1; j < c.k; j++ {
			addMul(seg, data[j], dec[i][j])
		}
	}
	return out[:size], nil
}

// invertMatrix inverts a square matrix over GF(2^8) by Gauss-Jordan
// elimination with partial pivoting. The input rows are consumed as the
// working area.
func invertMatrix(mat [][]byte) ([][]byte, error) {
	k := len(mat)
	inv := make([][]byte, k)
	for i := range inv {
		if len(mat[i]) != k {
			return nil, fmt.Errorf("row %d has %d columns, want %d", i, len(mat[i]), k)
		}
		inv[i] = make([]byte, k)
		inv[i][i] = 1
	}
	for col := 0; col < k; col++ {
		pivot := -1
		for r := col; r < k; r++ {
			if mat[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("no pivot in column %d", col)
		}
		mat[col], mat[pivot] = mat[pivot], mat[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		if p := mat[col][col]; p != 1 {
			pi := gfInv(p)
			mulInto(mat[col], mat[col], pi)
			mulInto(inv[col], inv[col], pi)
		}
		for r := 0; r < k; r++ {
			if r == col || mat[r][col] == 0 {
				continue
			}
			f := mat[r][col]
			addMul(mat[r], mat[col], f)
			addMul(inv[r], inv[col], f)
		}
	}
	return inv, nil
}
