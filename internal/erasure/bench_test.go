package erasure

import (
	"math/rand"
	"testing"
)

// BenchmarkErasureEncode measures the steady-state cost of encoding one
// 4 KiB snapshot into 4+2 shards with reused scratch — the shape the
// peer store's writer replica pays per generation. Gated in benchgate.
func BenchmarkErasureEncode(b *testing.B) {
	c, err := New(4, 2)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(data)
	sl := ShardLen(4, len(data))
	backing := make([]byte, 6*sl)
	scratch := make([][]byte, 6)
	for i := range scratch {
		scratch[i] = backing[i*sl : i*sl : (i+1)*sl]
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Encode(data, scratch)
	}
}

// BenchmarkErasureReconstruct measures degraded-mode decode: m=2 data
// shards missing, worst case for the matrix-inversion path.
func BenchmarkErasureReconstruct(b *testing.B) {
	c, err := New(4, 2)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 4096)
	rand.New(rand.NewSource(2)).Read(data)
	base := c.Encode(data, nil)
	shards := make([][]byte, 6)
	copy(shards, base)
	shards[0], shards[2] = nil, nil
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Reconstruct(shards, len(data)); err != nil {
			b.Fatal(err)
		}
	}
}
