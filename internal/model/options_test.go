package model

import (
	"math"
	"testing"
)

func TestEvaluateExactReliabilityOption(t *testing.T) {
	p := paperCG(6 * Hour)
	lin, err := Evaluate(p, 2, Options{Reliability: ReliabilityLinearized})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Evaluate(p, 2, Options{Reliability: ReliabilityExact})
	if err != nil {
		t.Fatal(err)
	}
	// The linearised node-failure probability t/θ exceeds 1-e^{-t/θ}, so
	// the linearised model must be more pessimistic (lower reliability,
	// higher failure rate, longer completion).
	if lin.Reliability >= exact.Reliability {
		t.Fatalf("linearised reliability %v not below exact %v", lin.Reliability, exact.Reliability)
	}
	if lin.Lambda <= exact.Lambda {
		t.Fatalf("linearised λ %v not above exact %v", lin.Lambda, exact.Lambda)
	}
	if lin.Total <= exact.Total {
		t.Fatalf("linearised total %v not above exact %v", lin.Total, exact.Total)
	}
}

func TestExactAndLinearizedConvergeForReliableNodes(t *testing.T) {
	// For t ≪ θ the two forms agree to first order.
	p := paperCG(10 * Year)
	lin, err := Evaluate(p, 2, Options{Reliability: ReliabilityLinearized})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Evaluate(p, 2, Options{Reliability: ReliabilityExact})
	if err != nil {
		t.Fatal(err)
	}
	if lin.Lambda == 0 && exact.Lambda == 0 {
		return // both saw a perfectly reliable system; fine
	}
	rel := math.Abs(lin.Total-exact.Total) / exact.Total
	if rel > 1e-3 {
		t.Fatalf("forms diverge by %v at 10-year MTBF", rel)
	}
}

func TestEvaluationNodeHours(t *testing.T) {
	ev, err := Evaluate(paperCG(12*Hour), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(ev.NodesUsed) * ev.Total / Hour
	if math.Abs(ev.NodeHours()-want) > 1e-9 {
		t.Fatalf("NodeHours = %v, want %v", ev.NodeHours(), want)
	}
}

func TestCostFunctions(t *testing.T) {
	p := paperCG(12 * Hour)
	ev, err := Evaluate(p, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := TimeCost(ev); got != ev.Total {
		t.Errorf("TimeCost = %v", got)
	}
	if got := NodeHoursCost(ev); got != ev.NodeHours() {
		t.Errorf("NodeHoursCost = %v", got)
	}
	// Weighted cost: pure time weight ranks configurations like TimeCost;
	// pure node weight like NodesUsed.
	timeOnly := WeightedCost(p, 1, 0)
	nodesOnly := WeightedCost(p, 0, 1)
	ev1, err := Evaluate(p, 1, Options{})
	if err != nil && !math.IsInf(ev1.Total, 1) {
		t.Fatal(err)
	}
	ev3, err := Evaluate(p, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if (timeOnly(ev1) < timeOnly(ev3)) != (ev1.Total < ev3.Total) {
		t.Error("time-only weighted cost disagrees with TimeCost ordering")
	}
	if nodesOnly(ev1) >= nodesOnly(ev3) {
		t.Error("node-only weighted cost should favour fewer nodes")
	}
}

func TestOptimizeCostNodeHoursPrefersLowDegreeWhenReliable(t *testing.T) {
	// On a very reliable machine, extra replicas only burn node-hours.
	p := paperCG(1000 * Hour)
	opt, err := OptimizeCost(p, 1, 3, 0.5, Options{}, NodeHoursCost)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Best.Degree != 1 {
		t.Fatalf("node-hours optimum at r=%v, want 1 on a reliable machine", opt.Best.Degree)
	}
}

func TestOptimizeDegreeNeverCompletes(t *testing.T) {
	// A hopeless machine: every degree fails to make progress.
	p := Params{
		N:              100000,
		Work:           1000 * Hour,
		Alpha:          0.2,
		NodeMTBF:       1 * Hour,
		CheckpointCost: 600,
		RestartCost:    600,
	}
	_, err := OptimizeDegree(p, 1, 3, 1, Options{})
	if err == nil {
		t.Fatal("hopeless configuration returned an optimum")
	}
}
