package model

// Breakdown splits the modeled total execution time into the four
// categories of the Sandia study the paper reproduces as Tables 2-3:
// useful work, checkpointing, recomputation of lost work, and restart.
// Fractions sum to 1.
type Breakdown struct {
	Work       float64
	Checkpoint float64
	Recompute  float64
	Restart    float64
	// Total is the underlying T_total in seconds.
	Total float64
}

// BreakdownOf decomposes an Evaluation produced by Evaluate. The combined
// restart+rework term of Eq. 13 is split between restart and recompute
// proportionally to their expected contributions R and t_lw, matching how
// the Sandia study reports them separately.
func BreakdownOf(ev Evaluation, p Params) Breakdown {
	b := Breakdown{Total: ev.Total}
	if ev.Total <= 0 {
		return b
	}
	workTime := ev.RedundantTime
	ckptTime := 0.0
	if ev.Interval > 0 && ev.Checkpoints > 0 {
		ckptTime = ev.Checkpoints * p.CheckpointCost
	}
	rrTime := ev.Total - workTime - ckptTime
	if rrTime < 0 {
		rrTime = 0
	}
	restartShare := 0.0
	if denom := p.RestartCost + ev.LostWork; denom > 0 {
		restartShare = p.RestartCost / denom
	}
	b.Work = workTime / ev.Total
	b.Checkpoint = ckptTime / ev.Total
	b.Restart = rrTime * restartShare / ev.Total
	b.Recompute = rrTime * (1 - restartShare) / ev.Total
	return b
}

// WorkBreakdown evaluates the model at redundancy degree r and returns
// the resulting time breakdown; it is the generator behind Tables 2-3.
func WorkBreakdown(p Params, r float64, opts Options) (Breakdown, error) {
	ev, err := Evaluate(p, r, opts)
	if err != nil {
		return Breakdown{Total: ev.Total}, err
	}
	return BreakdownOf(ev, p), nil
}
