package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPartitionIntegerDegrees(t *testing.T) {
	for _, r := range []float64{1, 2, 3} {
		part, err := PartitionRanks(128, r)
		if err != nil {
			t.Fatalf("PartitionRanks(128, %v): %v", r, err)
		}
		if part.NFloor != 0 {
			t.Errorf("r=%v: NFloor = %d, want 0 (paper's integer special case)", r, part.NFloor)
		}
		if part.NCeil != 128 {
			t.Errorf("r=%v: NCeil = %d, want 128", r, part.NCeil)
		}
		if got, want := part.TotalProcesses(), 128*int(r); got != want {
			t.Errorf("r=%v: TotalProcesses = %d, want %d", r, got, want)
		}
	}
}

func TestPartitionHalfDegree(t *testing.T) {
	// 1.5x on 128 ranks: "every other process has a replica" — 64 ranks
	// single, 64 ranks doubled, 192 physical processes total.
	part, err := PartitionRanks(128, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if part.Floor != 1 || part.Ceil != 2 {
		t.Errorf("Floor/Ceil = %d/%d, want 1/2", part.Floor, part.Ceil)
	}
	if part.NFloor != 64 || part.NCeil != 64 {
		t.Errorf("NFloor/NCeil = %d/%d, want 64/64", part.NFloor, part.NCeil)
	}
	if got := part.TotalProcesses(); got != 192 {
		t.Errorf("TotalProcesses = %d, want 192", got)
	}
}

func TestPartitionQuarterSteps(t *testing.T) {
	// The paper assesses partial redundancy in 0.25x steps between 1x and
	// 3x. Check Eq. 6 literally at r = 2.25, N = 128:
	// N_floor = floor((3-2.25)*128) = 96 at 2 copies, 32 at 3 copies.
	part, err := PartitionRanks(128, 2.25)
	if err != nil {
		t.Fatal(err)
	}
	if part.NFloor != 96 || part.NCeil != 32 || part.Floor != 2 || part.Ceil != 3 {
		t.Errorf("got %+v, want NFloor=96 NCeil=32 Floor=2 Ceil=3", part)
	}
	if got := part.TotalProcesses(); got != 96*2+32*3 {
		t.Errorf("TotalProcesses = %d, want 288", got)
	}
}

func TestPartitionInvariants(t *testing.T) {
	f := func(nRaw uint16, rRaw uint8) bool {
		n := int(nRaw%10000) + 1
		r := 1 + float64(rRaw)/64.0 // r in [1, ~4.98]
		part, err := PartitionRanks(n, r)
		if err != nil {
			return false
		}
		total := part.TotalProcesses()
		// Eq. 5: partition covers all ranks.
		if part.NFloor+part.NCeil != n {
			return false
		}
		// Eq. 8 bound. The paper claims N_total <= N*r, but its Eq. 6
		// floors N_floor, which can push N_total one process above N*r;
		// the implementation follows Eq. 6 verbatim, so the honest bound
		// is N*floor(r) <= N_total < N*r + 1.
		if float64(total) >= float64(n)*r+1 || total < n*part.Floor {
			return false
		}
		// Effective degree stays within one rank of the request.
		return part.EffectiveDegree() <= r+1.0/float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionRejectsBadInput(t *testing.T) {
	if _, err := PartitionRanks(0, 2); err == nil {
		t.Error("PartitionRanks(0, 2) should fail")
	}
	if _, err := PartitionRanks(10, 0.5); err == nil {
		t.Error("PartitionRanks(10, 0.5) should fail")
	}
	if _, err := PartitionRanks(10, math.NaN()); err == nil {
		t.Error("PartitionRanks(10, NaN) should fail")
	}
}

func TestRedundantTime(t *testing.T) {
	// Eq. 1 with the paper's CG numbers: t = 46 min, α = 0.2.
	base := 46 * Minute
	if got := RedundantTime(base, 0.2, 1); got != base {
		t.Errorf("r=1 must leave time unchanged, got %v", got)
	}
	// r=2: (0.8 + 0.2*2)*46 = 1.2*46 = 55.2 min.
	if got, want := RedundantTime(base, 0.2, 2), 1.2*base; math.Abs(got-want) > 1e-9 {
		t.Errorf("r=2: got %v, want %v", got, want)
	}
	// r=3: 1.4*46 = 64.4 min (the paper's "expected linear increase" row
	// of Table 5 reports 64 min at 3x).
	if got, want := RedundantTime(base, 0.2, 3), 1.4*base; math.Abs(got-want) > 1e-9 {
		t.Errorf("r=3: got %v, want %v", got, want)
	}
	// Pure computation is immune to redundancy.
	if got := RedundantTime(100, 0, 3); got != 100 {
		t.Errorf("α=0: got %v, want 100", got)
	}
	// Pure communication dilates linearly.
	if got := RedundantTime(100, 1, 3); got != 300 {
		t.Errorf("α=1: got %v, want 300", got)
	}
}

func TestNodeFailureProbability(t *testing.T) {
	if got := NodeFailureProbability(10, 100, ReliabilityLinearized); got != 0.1 {
		t.Errorf("linearized: got %v, want 0.1", got)
	}
	// Linearized form clamps to 1 for mission times beyond the MTBF.
	if got := NodeFailureProbability(500, 100, ReliabilityLinearized); got != 1 {
		t.Errorf("linearized clamp: got %v, want 1", got)
	}
	want := 1 - math.Exp(-0.1)
	if got := NodeFailureProbability(10, 100, ReliabilityExact); math.Abs(got-want) > 1e-12 {
		t.Errorf("exact: got %v, want %v", got, want)
	}
	if got := NodeFailureProbability(-5, 100, ReliabilityExact); got != 0 {
		t.Errorf("negative time: got %v, want 0", got)
	}
}

func TestSystemReliabilityHandCalc(t *testing.T) {
	// 128 ranks, 2x, mission 3312 s, θ = 6 h: sphere failure probability
	// (3312/21600)^2, R = (1-p²)^128 (hand computation from Eq. 9).
	part, err := PartitionRanks(128, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := 3312.0 / 21600.0
	want := math.Pow(1-p*p, 128)
	got := SystemReliability(part, 3312, 6*Hour, ReliabilityLinearized)
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("R_sys = %v, want %v", got, want)
	}
}

func TestSystemReliabilityMixedPartition(t *testing.T) {
	// r = 1.5 on 4 ranks: 2 ranks at 1 copy, 2 ranks at 2 copies.
	part, err := PartitionRanks(4, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	p := 0.1
	want := math.Pow(1-p, 2) * math.Pow(1-p*p, 2)
	got := SystemReliability(part, 10, 100, ReliabilityLinearized)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("mixed R_sys = %v, want %v", got, want)
	}
}

func TestSystemReliabilityMonotoneInDegree(t *testing.T) {
	prev := -1.0
	for _, r := range []float64{1, 1.25, 1.5, 1.75, 2, 2.5, 3} {
		part, err := PartitionRanks(100, r)
		if err != nil {
			t.Fatal(err)
		}
		got := SystemReliability(part, 1000, 50000, ReliabilityLinearized)
		if got < prev {
			t.Fatalf("reliability decreased from %v to %v at r=%v", prev, got, r)
		}
		prev = got
	}
}

func TestSystemReliabilityBounds(t *testing.T) {
	f := func(nRaw uint8, rRaw uint8, tRaw, thetaRaw uint16) bool {
		n := int(nRaw%200) + 1
		r := 1 + float64(rRaw%128)/64.0
		mission := float64(tRaw) + 1
		theta := float64(thetaRaw) + 1
		part, err := PartitionRanks(n, r)
		if err != nil {
			return false
		}
		for _, m := range []ReliabilityModel{ReliabilityLinearized, ReliabilityExact} {
			rel := SystemReliability(part, mission, theta, m)
			if rel < 0 || rel > 1 || math.IsNaN(rel) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSystemRatesNoFailures(t *testing.T) {
	part, err := PartitionRanks(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Mission vanishes relative to MTBF ⇒ no failures.
	lambda, mtbf := SystemRates(part, 1e-300, 1e300, ReliabilityExact)
	if lambda != 0 || !math.IsInf(mtbf, 1) {
		t.Fatalf("got λ=%v Θ=%v, want 0 and +Inf", lambda, mtbf)
	}
}

func TestSystemRatesMatchUnreplicatedSum(t *testing.T) {
	// For r=1 and small t/θ, λ_sys ≈ N/θ (failure rates add).
	part, err := PartitionRanks(4351, 1)
	if err != nil {
		t.Fatal(err)
	}
	lambda, _ := SystemRates(part, 128*Hour, 5*Year, ReliabilityExact)
	want := 4351.0 / (5 * Year)
	if math.Abs(lambda-want)/want > 0.01 {
		t.Fatalf("λ_sys = %v, want ≈ %v (N/θ)", lambda, want)
	}
}

func TestSystemRatesExascaleNoUnderflow(t *testing.T) {
	// 1M ranks at r=1 underflows a direct product; log-space must survive.
	part, err := PartitionRanks(1_000_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	lambda, mtbf := SystemRates(part, 128*Hour, 5*Year, ReliabilityExact)
	if math.IsNaN(lambda) || lambda <= 0 || math.IsInf(lambda, 0) {
		t.Fatalf("λ_sys = %v; log-space computation failed", lambda)
	}
	want := 1e6 / (5 * Year)
	if math.Abs(lambda-want)/want > 0.02 {
		t.Fatalf("λ_sys = %v, want ≈ %v", lambda, want)
	}
	if mtbf <= 0 {
		t.Fatalf("Θ_sys = %v", mtbf)
	}
}

func TestBirthdayFormulaMatchesPaperPrint(t *testing.T) {
	// Verbatim Eq.: p(4) = 1 - (2/4)^(4*3/2) = 1 - 0.5^6.
	want := 1 - math.Pow(0.5, 6)
	if got := BirthdayFailureProbability(4); math.Abs(got-want) > 1e-12 {
		t.Fatalf("p(4) = %v, want %v", got, want)
	}
	if got := BirthdayFailureProbability(2); got != 1 {
		t.Fatalf("p(2) = %v, want 1 (degenerate)", got)
	}
}

func TestShadowPairProbabilityVanishes(t *testing.T) {
	if got := ShadowPairProbability(2); got != 1 {
		t.Errorf("n=2: got %v, want 1", got)
	}
	if got := ShadowPairProbability(100001); math.Abs(got-1e-5) > 1e-9 {
		t.Errorf("n=100001: got %v, want 1e-5", got)
	}
	prev := 2.0
	for _, n := range []int{2, 10, 100, 1000, 100000} {
		p := ShadowPairProbability(n)
		if p >= prev {
			t.Fatalf("ShadowPairProbability not decreasing at n=%d", n)
		}
		prev = p
	}
}
