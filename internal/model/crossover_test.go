package model

import (
	"math"
	"testing"
)

// exascaleJob is a Figures 13-14 style configuration: a 128-hour job under
// weak scaling. The paper does not publish its c/R/θ/α; these values are
// the ones our calibration lands on (see TestCalibrateCrossovers).
func exascaleJob(n int) Params {
	return Params{
		N:              n,
		Work:           128 * Hour,
		Alpha:          0.2,
		NodeMTBF:       5 * Year,
		CheckpointCost: 5 * Minute,
		RestartCost:    10 * Minute,
	}
}

func TestWeakScalingCurveShape(t *testing.T) {
	ns := []int{100, 1000, 10000, 50000, 100000}
	pts, err := WeakScalingCurve(exascaleJob(0), ns, []float64{1, 2, 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(ns) {
		t.Fatalf("got %d points, want %d", len(pts), len(ns))
	}
	// 1x runtime grows monotonically with N.
	prev := 0.0
	for _, pt := range pts {
		cur := pt.Totals[1]
		if cur < prev {
			t.Fatalf("1x total decreased at N=%d: %v < %v", pt.N, cur, prev)
		}
		prev = cur
	}
	// At 100k processes 2x beats 1x decisively (paper Figure 14 regime).
	last := pts[len(pts)-1]
	if !(last.Totals[2] < last.Totals[1]) {
		t.Fatalf("at N=100k want T(2x) < T(1x), got %v vs %v", last.Totals[2], last.Totals[1])
	}
}

func TestCrossoverFindsBoundary(t *testing.T) {
	n, err := Crossover(exascaleJob(0), 1, 2, 2, 1_000_000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n <= 2 || n > 1_000_000 {
		t.Fatalf("1x/2x crossover = %d, want an interior value", n)
	}
	// Verify the boundary property: 2x loses just below, wins at n.
	below := exascaleJob(n - 1)
	atEv := exascaleJob(n)
	evLow1, err := Evaluate(below, 1, Options{})
	if err != nil && !math.IsInf(evLow1.Total, 1) {
		t.Fatal(err)
	}
	evLow2, err := Evaluate(below, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if evLow2.Total < evLow1.Total {
		t.Fatalf("2x already wins at N=%d; crossover overshoots", n-1)
	}
	evAt1, err := Evaluate(atEv, 1, Options{})
	if err != nil && !math.IsInf(evAt1.Total, 1) {
		t.Fatal(err)
	}
	evAt2, err := Evaluate(atEv, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if evAt2.Total >= evAt1.Total {
		t.Fatalf("2x does not win at reported crossover N=%d", n)
	}
}

func TestCrossoverOrdering(t *testing.T) {
	// The 1x/3x crossover must land beyond the 1x/2x crossover (3x pays
	// more overhead, needs a higher failure rate to win), mirroring the
	// paper's 4,351 < 12,551.
	n12, err := Crossover(exascaleJob(0), 1, 2, 2, 2_000_000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n13, err := Crossover(exascaleJob(0), 1, 3, 2, 2_000_000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n23, err := Crossover(exascaleJob(0), 2, 3, 2, 20_000_000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !(n12 < n13 && n13 < n23) {
		t.Fatalf("crossover ordering violated: 1x/2x=%d, 1x/3x=%d, 2x/3x=%d", n12, n13, n23)
	}
}

func TestCrossoverNotReached(t *testing.T) {
	// With an essentially failure-free system, redundancy never wins.
	p := exascaleJob(0)
	p.NodeMTBF = 1e15
	n, err := Crossover(p, 1, 2, 2, 10000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 10001 {
		t.Fatalf("crossover = %d, want sentinel hi+1 = 10001", n)
	}
}

func TestThroughputBreakEven(t *testing.T) {
	// Figure 14's headline: some N where T(1x) = 2·T(2x). Verify the
	// break-even exists and the factor holds there.
	n, err := ThroughputBreakEven(exascaleJob(0), 2, 2, 2, 5_000_000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n > 5_000_000 {
		t.Fatal("2-jobs-for-1 break-even not found in range")
	}
	p := exascaleJob(n)
	e1, err := Evaluate(p, 1, Options{})
	if err != nil && !math.IsInf(e1.Total, 1) {
		t.Fatal(err)
	}
	e2, err := Evaluate(p, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e1.Total < 2*e2.Total {
		t.Fatalf("at N=%d, T(1x)=%v < 2·T(2x)=%v", n, e1.Total, 2*e2.Total)
	}
	// And it must follow the plain 1x/2x crossover.
	n12, err := Crossover(exascaleJob(0), 1, 2, 2, 5_000_000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n <= n12 {
		t.Fatalf("break-even %d should exceed crossover %d", n, n12)
	}
}

func TestCalibrateCrossovers(t *testing.T) {
	base := Params{
		N:     1000,
		Work:  128 * Hour,
		Alpha: 0.2,
		// CheckpointCost and NodeMTBF come from the grids.
		RestartCost: 10 * Minute,
	}
	targets := []CalibrationTarget{
		{RLow: 1, RHigh: 2, N: 4351},
		{RLow: 1, RHigh: 3, N: 12551},
	}
	res, err := Calibrate(base,
		[]float64{1 * Minute, 5 * Minute, 15 * Minute},
		[]float64{1 * Year, 2.5 * Year, 5 * Year, 10 * Year},
		targets, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range res.Crossovers {
		want := targets[i].N
		ratio := float64(got) / float64(want)
		if ratio < 0.1 || ratio > 10 {
			t.Errorf("target %d: calibrated crossover %d vs paper %d (off by >10x)", i, got, want)
		}
	}
	if res.Params.CheckpointCost == 0 || res.Params.NodeMTBF == 0 {
		t.Fatal("calibration returned empty params")
	}
}

func TestCalibrateNoTargets(t *testing.T) {
	if _, err := Calibrate(Params{}, []float64{1}, []float64{1}, nil, Options{}); err == nil {
		t.Fatal("Calibrate with no targets should fail")
	}
}
