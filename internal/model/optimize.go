package model

import (
	"fmt"
	"math"
)

// Optimum is the result of a redundancy-degree search.
type Optimum struct {
	// Best is the evaluation at the optimal degree.
	Best Evaluation
	// Curve contains every evaluated point, in degree order, so callers
	// can inspect or plot the full trade-off.
	Curve []Evaluation
}

// OptimizeDegree sweeps redundancy degrees in [lo, hi] at the given step
// (the paper uses steps of 0.25 between 1x and 3x) and returns the degree
// minimizing the modeled total wallclock time. Configurations that never
// complete participate with T = +Inf.
func OptimizeDegree(p Params, lo, hi, step float64, opts Options) (Optimum, error) {
	curve, err := Sweep(p, lo, hi, step, opts)
	if err != nil {
		return Optimum{}, err
	}
	if len(curve) == 0 {
		return Optimum{}, fmt.Errorf("model: empty sweep [%v, %v]", lo, hi)
	}
	best := curve[0]
	for _, ev := range curve[1:] {
		if ev.Total < best.Total {
			best = ev
		}
	}
	if math.IsInf(best.Total, 1) {
		return Optimum{Best: best, Curve: curve}, ErrNeverCompletes
	}
	return Optimum{Best: best, Curve: curve}, nil
}

// CostFunction scores an evaluation; lower is better. Section 1 of the
// paper: "A user may also create a cost function giving different weights
// to execution time and number of resources used."
type CostFunction func(Evaluation) float64

// TimeCost minimizes wallclock time alone.
func TimeCost(ev Evaluation) float64 { return ev.Total }

// NodeHoursCost minimizes total resource consumption (nodes held ×
// wallclock), the natural objective for capacity computing.
func NodeHoursCost(ev Evaluation) float64 { return ev.NodeHours() }

// WeightedCost blends normalized time and resource terms:
// cost = wTime·T/t + wNodes·N_total/N. Both terms are ≥ 1, so the weights
// express the user's relative aversion to slowdown versus extra nodes.
func WeightedCost(p Params, wTime, wNodes float64) CostFunction {
	return func(ev Evaluation) float64 {
		n := ev.Partition.NFloor + ev.Partition.NCeil
		if n == 0 || p.Work <= 0 {
			return math.Inf(1)
		}
		return wTime*ev.Total/p.Work + wNodes*float64(ev.NodesUsed)/float64(n)
	}
}

// OptimizeCost sweeps degrees like OptimizeDegree but minimizes an
// arbitrary cost function instead of raw wallclock time.
func OptimizeCost(p Params, lo, hi, step float64, opts Options, cost CostFunction) (Optimum, error) {
	curve, err := Sweep(p, lo, hi, step, opts)
	if err != nil {
		return Optimum{}, err
	}
	if len(curve) == 0 {
		return Optimum{}, fmt.Errorf("model: empty sweep [%v, %v]", lo, hi)
	}
	best := curve[0]
	bestCost := cost(best)
	for _, ev := range curve[1:] {
		if c := cost(ev); c < bestCost {
			best, bestCost = ev, c
		}
	}
	return Optimum{Best: best, Curve: curve}, nil
}

// OptimizeInterval searches for the checkpoint interval minimizing
// T_total at a fixed redundancy degree, by golden-section search over
// [1s, 4·Θ_sys]. It exists to validate Daly's closed form (Eq. 15)
// against direct numerical optimisation of Eq. 14.
func OptimizeInterval(p Params, r float64, opts Options) (bestDelta, bestTotal float64, err error) {
	probe := func(delta float64) float64 {
		o := opts
		o.Interval = delta
		ev, evalErr := Evaluate(p, r, o)
		if evalErr != nil {
			return math.Inf(1)
		}
		return ev.Total
	}
	// Establish the search bracket from the system MTBF.
	ev, err := Evaluate(p, r, opts)
	if err != nil {
		return 0, 0, err
	}
	lo, hi := 1.0, 4*ev.MTBF
	if math.IsInf(hi, 1) {
		// No failures: any interval works; longer is cheaper.
		return math.Inf(1), ev.RedundantTime, nil
	}
	const phi = 0.6180339887498949
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, fd := probe(c), probe(d)
	for i := 0; i < 200 && b-a > 1e-6*(1+b); i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = probe(c)
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = probe(d)
		}
	}
	bestDelta = (a + b) / 2
	return bestDelta, probe(bestDelta), nil
}
