package model

import (
	"fmt"
	"math"
)

// ShrinkEvaluation is the output of the shrink-and-continue model at one
// redundancy degree: the ULFM-style alternative the paper's Section 4
// restart model is compared against. Under shrink recovery the job never
// checkpoints and never restarts — when a replica sphere is exhausted
// the survivors repair the communicator and absorb the dead rank's
// share of the remaining work.
type ShrinkEvaluation struct {
	// Degree is the requested redundancy degree r.
	Degree float64
	// Partition is the Eq. 5-8 split of virtual processes.
	Partition Partition
	// NodesUsed is N_total (Eq. 8), the physical processes consumed at
	// the start of the run (capacity only shrinks from there).
	NodesUsed int
	// RedundantTime is t_Red (Eq. 1): the failure-free completion time,
	// which is also the aggregate work the survivors must finish.
	RedundantTime float64
	// Lambda and MTBF are λ_sys and Θ_sys (Eq. 10) of the initial
	// partition — the sphere-exhaustion rate while the job is whole.
	Lambda, MTBF float64
	// Total is the expected completion time T_shrink, seconds; +Inf when
	// the job cannot complete (see Feasible).
	Total float64
	// Episodes is the expected number of shrink episodes (sphere
	// exhaustions) over the run: λ_sys · t_Red.
	Episodes float64
	// RepairTime is the aggregate time spent in collective repair
	// (Shrink + work redistribution): Episodes · RestartCost.
	RepairTime float64
	// SurvivingFraction is the expected fraction of virtual ranks still
	// alive at completion, e^{-λ_sys·Total/n}.
	SurvivingFraction float64
	// Feasible is false when expected capacity decays to zero before the
	// work is done (λ_sys·t_Red ≥ n); Total is +Inf in that case.
	Feasible bool
}

// EvaluateShrink models shrink-and-continue recovery for parameters p at
// redundancy degree r. CheckpointCost is ignored (the policy takes no
// checkpoints); RestartCost is reinterpreted as the per-episode repair
// cost — the collective Shrink plus work redistribution that stalls the
// survivors after each sphere exhaustion, analogous in magnitude to the
// restart cost R it replaces.
//
// The model assumes malleable work, the semantics of the runtime's
// shrink-mode taskfarm: a dead rank's unfinished share is requeued onto
// the survivors, and no accumulated state is lost as long as the job
// retains at least one live rank per remaining task. n virtual ranks
// hold t_Red·n rank-seconds of work and the aggregate progress rate
// equals the surviving fraction s(t). Sphere exhaustions arrive at the
// initial rate λ_sys scaled by the surviving fraction (a shrunken job
// exposes proportionally fewer nodes):
//
//	ds/dt = -(λ_sys/n)·s  ⇒  s(t) = e^{-λ_sys·t/n}
//
// Completion requires ∫₀ᵀ s(t)dt = t_Red, which solves to the fluid
// completion time
//
//	T_fluid = -(n/λ_sys)·ln(1 - λ_sys·t_Red/n)
//
// finite only while λ_sys·t_Red < n — the expected-capacity feasibility
// boundary. Past it the job shrinks to nothing before the work is done
// and ErrNeverCompletes is returned with Total = +Inf. Repair stalls
// are added first-order on top: T_shrink = T_fluid + Episodes·R.
//
// The comparison this model exists for: against Eq. 14, shrink trades
// the checkpoint overhead t·c/δ and the global per-failure rollback
// stall λ·t_RR for a one-rank capacity loss plus a repair stall per
// episode. For malleable work that trade dominates wherever it is
// feasible; checkpoint/restart remains the policy for stateful
// non-malleable applications (a stencil rank's halo state dies with its
// sphere) and that is what Table 4 and Figures 4-6 cost out.
func EvaluateShrink(p Params, r float64) (ShrinkEvaluation, error) {
	if err := p.Validate(); err != nil {
		return ShrinkEvaluation{}, err
	}
	part, err := PartitionRanks(p.N, r)
	if err != nil {
		return ShrinkEvaluation{}, err
	}
	ev := ShrinkEvaluation{
		Degree:        r,
		Partition:     part,
		NodesUsed:     part.TotalProcesses(),
		RedundantTime: RedundantTime(p.Work, p.Alpha, r),
	}
	ev.Lambda, ev.MTBF = SystemRates(part, ev.RedundantTime, p.NodeMTBF, ReliabilityLinearized)
	ev.Episodes = ev.Lambda * ev.RedundantTime
	ev.RepairTime = ev.Episodes * p.RestartCost

	n := float64(p.N)
	drain := ev.Lambda * ev.RedundantTime / n
	if drain >= 1 {
		ev.Total = math.Inf(1)
		ev.SurvivingFraction = 0
		return ev, fmt.Errorf("evaluating shrink r=%v: %w", r, ErrNeverCompletes)
	}
	if ev.Lambda == 0 {
		ev.Total = ev.RedundantTime
		ev.SurvivingFraction = 1
		ev.Feasible = true
		return ev, nil
	}
	tFluid := -(n / ev.Lambda) * math.Log1p(-drain)
	ev.Total = tFluid + ev.RepairTime
	// Decay runs on compute time: repair stalls freeze progress and (to
	// first order) the failure clock alike.
	ev.SurvivingFraction = math.Exp(-ev.Lambda * tFluid / n)
	ev.Feasible = true
	return ev, nil
}
