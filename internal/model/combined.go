package model

import (
	"fmt"
	"math"
)

// Options tunes how the combined model is evaluated.
type Options struct {
	// Reliability selects the per-node failure-probability form; the
	// zero value uses the paper's linearised Eq. 3.
	Reliability ReliabilityModel
	// Interval fixes the checkpoint interval δ in seconds. When zero,
	// Daly's optimum (Eq. 15) for the redundancy-adjusted system MTBF is
	// used, matching the paper's checkpointer.
	Interval float64
	// UseYoung selects Young's first-order interval instead of Daly's
	// when Interval is zero.
	UseYoung bool
}

// Evaluation is the full output of the combined C/R + redundancy model
// (Section 4.3) at one redundancy degree.
type Evaluation struct {
	// Degree is the requested redundancy degree r.
	Degree float64
	// Partition is the Eq. 5-8 split of virtual processes.
	Partition Partition
	// NodesUsed is N_total (Eq. 8), the physical processes consumed.
	NodesUsed int
	// RedundantTime is t_Red (Eq. 1), seconds.
	RedundantTime float64
	// Reliability is R_sys (Eq. 9) over mission time t_Red.
	Reliability float64
	// Lambda and MTBF are λ_sys and Θ_sys (Eq. 10), 1/seconds and seconds.
	Lambda, MTBF float64
	// Interval is the checkpoint interval δ actually used, seconds.
	Interval float64
	// LostWork is t_lw (Eq. 12), seconds.
	LostWork float64
	// RestartRework is t_RR (Eq. 13), seconds.
	RestartRework float64
	// Total is T_total (Eq. 14), seconds.
	Total float64
	// Checkpoints is the expected checkpoint count t_Red/δ.
	Checkpoints float64
	// Failures is n_f (Eq. 11), the expected number of failures.
	Failures float64
}

// NodeHours is the resource cost of the run: physical nodes held for the
// full wallclock, in node-hours. This is the "cost" axis of the paper's
// time-versus-resources trade-off.
func (e Evaluation) NodeHours() float64 {
	return float64(e.NodesUsed) * e.Total / Hour
}

// Evaluate runs the combined model for parameters p at redundancy degree
// r: it dilates the execution time (Eq. 1), partitions ranks (Eqs. 5-8),
// derives the system failure rate (Eqs. 9-10), picks the checkpoint
// interval (Eq. 15 unless overridden), and solves Eq. 14 for the expected
// total time.
func Evaluate(p Params, r float64, opts Options) (Evaluation, error) {
	if err := p.Validate(); err != nil {
		return Evaluation{}, err
	}
	part, err := PartitionRanks(p.N, r)
	if err != nil {
		return Evaluation{}, err
	}

	ev := Evaluation{
		Degree:        r,
		Partition:     part,
		NodesUsed:     part.TotalProcesses(),
		RedundantTime: RedundantTime(p.Work, p.Alpha, r),
	}
	ev.Reliability = SystemReliability(part, ev.RedundantTime, p.NodeMTBF, opts.Reliability)
	ev.Lambda, ev.MTBF = SystemRates(part, ev.RedundantTime, p.NodeMTBF, opts.Reliability)

	switch {
	case opts.Interval > 0:
		ev.Interval = opts.Interval
	case opts.UseYoung:
		ev.Interval = YoungInterval(p.CheckpointCost, ev.MTBF)
	default:
		ev.Interval = DalyInterval(p.CheckpointCost, ev.MTBF)
	}

	ev.LostWork = ExpectedLostWork(ev.Interval, p.CheckpointCost, ev.MTBF)
	ev.RestartRework = ExpectedRestartRework(p.RestartCost, ev.LostWork, ev.MTBF)
	ev.Total, err = TotalTime(ev.RedundantTime, ev.Interval, p.CheckpointCost, ev.Lambda, ev.RestartRework)
	if err != nil {
		return ev, fmt.Errorf("evaluating r=%v: %w", r, err)
	}
	if !math.IsInf(ev.Interval, 1) {
		ev.Checkpoints = ev.RedundantTime / ev.Interval
	}
	ev.Failures = ExpectedFailures(ev.Total, ev.Lambda)
	return ev, nil
}

// EvaluateSimplified implements the Section 6 simplified model the paper
// fits against its cluster measurements (Figures 11-12): failures are not
// injected during checkpoint or restart phases, so the total time reduces
// to the dilated time plus checkpoint overhead plus per-failure restart
// cost:
//
//	T_total = t_Red · (1 + c/δ_opt + λ_sys·R)
//
// The paper prints the middle term as t_Red·√(2cΘ), which is dimensionally
// a time squared; δ_opt ≈ √(2cΘ) is the checkpoint interval, so the
// intended checkpoint-overhead term is t_Red·c/δ_opt (checkpoint count
// times cost). See DESIGN.md "Known paper idiosyncrasies".
func EvaluateSimplified(p Params, r float64, opts Options) (Evaluation, error) {
	if err := p.Validate(); err != nil {
		return Evaluation{}, err
	}
	part, err := PartitionRanks(p.N, r)
	if err != nil {
		return Evaluation{}, err
	}
	ev := Evaluation{
		Degree:        r,
		Partition:     part,
		NodesUsed:     part.TotalProcesses(),
		RedundantTime: RedundantTime(p.Work, p.Alpha, r),
	}
	ev.Reliability = SystemReliability(part, ev.RedundantTime, p.NodeMTBF, opts.Reliability)
	ev.Lambda, ev.MTBF = SystemRates(part, ev.RedundantTime, p.NodeMTBF, opts.Reliability)
	if opts.Interval > 0 {
		ev.Interval = opts.Interval
	} else {
		ev.Interval = DalyInterval(p.CheckpointCost, ev.MTBF)
	}

	ckptOverhead := 0.0
	if !math.IsInf(ev.Interval, 1) && ev.Interval > 0 {
		ckptOverhead = p.CheckpointCost / ev.Interval
		ev.Checkpoints = ev.RedundantTime / ev.Interval
	}
	ev.Total = ev.RedundantTime * (1 + ckptOverhead + ev.Lambda*p.RestartCost)
	ev.Failures = ExpectedFailures(ev.Total, ev.Lambda)
	return ev, nil
}

// Sweep evaluates the model across redundancy degrees from lo to hi in
// the given step and returns one Evaluation per degree, in order.
// Degrees whose configuration never completes are included with
// Total = +Inf so callers can still plot the curve shape.
func Sweep(p Params, lo, hi, step float64, opts Options) ([]Evaluation, error) {
	if step <= 0 || hi < lo {
		return nil, fmt.Errorf("model: invalid sweep [%v, %v] step %v", lo, hi, step)
	}
	var out []Evaluation
	for i := 0; ; i++ {
		r := lo + float64(i)*step
		if r > hi+1e-9 {
			break
		}
		ev, err := Evaluate(p, r, opts)
		if err != nil && !math.IsInf(ev.Total, 1) {
			return nil, err
		}
		out = append(out, ev)
	}
	return out, nil
}
