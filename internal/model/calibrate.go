package model

import (
	"fmt"
	"math"
)

// CalibrationTarget pins an observable the calibration should reproduce:
// the crossover process count at which degree RHigh starts beating RLow.
type CalibrationTarget struct {
	RLow, RHigh float64
	// N is the published crossover process count (e.g. 4,351 for 1x→2x
	// in Figure 13).
	N int
}

// CalibrationResult is the best configuration found and its residuals.
type CalibrationResult struct {
	Params Params
	// Crossovers holds the crossover N achieved by Params for each
	// target, in target order.
	Crossovers []int
	// Score is the sum of squared log-ratios between achieved and target
	// crossovers (0 is a perfect match).
	Score float64
}

// Calibrate grid-searches checkpoint cost and node MTBF to find a model
// configuration whose redundancy crossovers land near the published
// Figure 13/14 values (the paper does not state the c, R, θ, α it used
// for those plots). Work, Alpha and RestartCost are taken from the base
// parameters and held fixed; CheckpointCost and NodeMTBF are swept over
// the supplied candidate grids.
func Calibrate(base Params, ckptGrid, mtbfGrid []float64, targets []CalibrationTarget, opts Options) (CalibrationResult, error) {
	if len(targets) == 0 {
		return CalibrationResult{}, fmt.Errorf("model: no calibration targets")
	}
	maxN := 0
	for _, t := range targets {
		if t.N > maxN {
			maxN = t.N
		}
	}
	searchHi := maxN * 16

	best := CalibrationResult{Score: math.Inf(1)}
	for _, c := range ckptGrid {
		for _, theta := range mtbfGrid {
			p := base
			p.CheckpointCost = c
			p.NodeMTBF = theta
			crossovers := make([]int, 0, len(targets))
			score := 0.0
			feasible := true
			for _, t := range targets {
				n, err := Crossover(p, t.RLow, t.RHigh, 2, searchHi, opts)
				if err != nil {
					return CalibrationResult{}, err
				}
				if n > searchHi {
					feasible = false
					break
				}
				crossovers = append(crossovers, n)
				lr := math.Log(float64(n) / float64(t.N))
				score += lr * lr
			}
			if feasible && score < best.Score {
				best = CalibrationResult{Params: p, Crossovers: crossovers, Score: score}
			}
		}
	}
	if math.IsInf(best.Score, 1) {
		return best, fmt.Errorf("model: no grid point produced all target crossovers")
	}
	return best, nil
}
