package model

import (
	"fmt"
	"math"
)

// Partition is the split of N virtual processes into the two homogeneous
// redundancy subsystems of Eqs. 5-8: NFloor virtual processes replicated
// ⌊r⌋ times and NCeil virtual processes replicated ⌈r⌉ times. For integer
// r the floor set is empty and the system is homogeneous.
type Partition struct {
	// Floor and Ceil are ⌊r⌋ and ⌈r⌉, the two replica counts present.
	Floor, Ceil int
	// NFloor and NCeil are the virtual-process counts at each level
	// (Eqs. 6-7). NFloor + NCeil = N (Eq. 5).
	NFloor, NCeil int
}

// PartitionRanks computes the Eq. 5-8 partition of n virtual processes at
// redundancy degree r ≥ 1.
func PartitionRanks(n int, r float64) (Partition, error) {
	if n <= 0 {
		return Partition{}, fmt.Errorf("model: cannot partition %d ranks", n)
	}
	if r < 1 || math.IsNaN(r) || math.IsInf(r, 0) {
		return Partition{}, fmt.Errorf("%w: r = %v", ErrInvalidRedundancy, r)
	}
	floor := int(math.Floor(r))
	ceil := int(math.Ceil(r))
	// Eq. 6: N_⌊r⌋ = ⌊(⌈r⌉ - r)·N⌋. For integer r this is 0 and the
	// ceiling set carries everything (the paper's special case).
	nFloor := int(math.Floor((float64(ceil) - r) * float64(n)))
	if nFloor > n {
		nFloor = n
	}
	return Partition{
		Floor:  floor,
		Ceil:   ceil,
		NFloor: nFloor,
		NCeil:  n - nFloor, // Eq. 7
	}, nil
}

// TotalProcesses is N_total of Eq. 8: the number of physical processes
// (and, under the paper's assumption 2, nodes) needed to run the system.
func (p Partition) TotalProcesses() int {
	return p.NCeil*p.Ceil + p.NFloor*p.Floor
}

// EffectiveDegree is the achievable redundancy degree after rounding
// fractional processes away: N_total / N. Because Eq. 6 floors the
// lower-redundancy set, this can exceed the requested r by up to 1/N
// (the paper's Eq. 8 bound N_total ≤ N·r holds only when (⌈r⌉-r)·N is
// integral).
func (p Partition) EffectiveDegree() float64 {
	n := p.NFloor + p.NCeil
	if n == 0 {
		return 0
	}
	return float64(p.TotalProcesses()) / float64(n)
}

// RedundantTime is Eq. 1: the dilated execution time
// t_Red = (1-α)·t + α·t·r. Computation is unaffected by redundancy (the
// replicas have their own nodes, assumption 2); every point-to-point
// message is translated into r physical messages, dilating the
// communication fraction α linearly in r.
func RedundantTime(work, alpha, r float64) float64 {
	return (1-alpha)*work + alpha*work*r
}

// ReliabilityModel selects how per-node failure probability over a
// mission time is computed.
type ReliabilityModel int

const (
	// ReliabilityLinearized uses the paper's first-order approximation
	// Pr(node failure) = t/θ (Eq. 3), clamped to [0, 1] so it remains a
	// probability for short MTBFs.
	ReliabilityLinearized ReliabilityModel = iota + 1
	// ReliabilityExact uses the exponential form 1 - e^{-t/θ} (Eq. 2).
	ReliabilityExact
)

// NodeFailureProbability returns the probability that a single node fails
// before mission time t given node MTBF theta, under the chosen model.
func NodeFailureProbability(t, theta float64, m ReliabilityModel) float64 {
	if t <= 0 {
		return 0
	}
	switch m {
	case ReliabilityExact:
		return -math.Expm1(-t / theta)
	default:
		p := t / theta
		if p > 1 {
			return 1
		}
		return p
	}
}

// SystemReliability is Eq. 9: the probability that every virtual process
// survives mission time t, where a virtual process with k replicas
// survives unless all k physical processes fail (Eq. 4).
//
//	R_sys = [1-(t/θ)^⌊r⌋]^N_⌊r⌋ · [1-(t/θ)^⌈r⌉]^N_⌈r⌉
//
// Computed in log space: at exascale N the direct product underflows.
func SystemReliability(part Partition, t, theta float64, m ReliabilityModel) float64 {
	return math.Exp(logSystemReliability(part, t, theta, m))
}

func logSystemReliability(part Partition, t, theta float64, m ReliabilityModel) float64 {
	p := NodeFailureProbability(t, theta, m)
	logR := 0.0
	for _, sub := range []struct{ n, k int }{
		{part.NFloor, part.Floor},
		{part.NCeil, part.Ceil},
	} {
		if sub.n == 0 {
			continue
		}
		sphereFail := math.Pow(p, float64(sub.k))
		if sphereFail >= 1 {
			return math.Inf(-1)
		}
		logR += float64(sub.n) * math.Log1p(-sphereFail)
	}
	return logR
}

// SystemRates is Eq. 10: the system failure rate λ_sys = -ln(R_sys)/t and
// MTBF Θ_sys = 1/λ_sys over mission time t. A perfectly reliable system
// has λ_sys = 0 and Θ_sys = +Inf.
func SystemRates(part Partition, t, theta float64, m ReliabilityModel) (lambda, mtbf float64) {
	logR := logSystemReliability(part, t, theta, m)
	lambda = -logR / t
	if lambda <= 0 {
		return 0, math.Inf(1)
	}
	return lambda, 1 / lambda
}

// BirthdayFailureProbability is the Section 4.3 birthday-problem
// approximation as printed in the paper:
// p(n) ≈ 1 - ((n-2)/n)^(n(n-1)/2).
//
// Note: the paper asserts lim p(n) = 0, but the printed formula tends to
// 1 (its survival factor ≈ e^{-(n-1)}); the quantity that does vanish
// with n is the probability that a *particular* failed node's shadow is
// the next node to fail, ≈ 1/(n-1), exposed as ShadowPairProbability.
// We implement the printed formula verbatim and document the discrepancy
// in EXPERIMENTS.md.
func BirthdayFailureProbability(n int) float64 {
	if n < 3 {
		return 1
	}
	exponent := float64(n) * float64(n-1) / 2
	return -math.Expm1(exponent * math.Log(float64(n-2)/float64(n)))
}

// ShadowPairProbability is the probability that, after one node of a
// dual-redundant system of n nodes fails, the next failing node is
// exactly its shadow: 1/(n-1). This is the quantity Section 1 argues
// "becomes less likely as the number of nodes increases", the reason
// redundancy scales.
func ShadowPairProbability(n int) float64 {
	if n < 2 {
		return 1
	}
	return 1 / float64(n-1)
}
