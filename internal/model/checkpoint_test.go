package model

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestExpectedLostWorkSmallInterval(t *testing.T) {
	// For δ ≪ Θ and c ≪ δ, failures land uniformly in the interval and
	// the expected lost work tends to δ/2.
	got := ExpectedLostWork(100, 0.001, 1e9)
	if math.Abs(got-50) > 0.1 {
		t.Fatalf("t_lw = %v, want ≈ 50", got)
	}
}

func TestExpectedLostWorkBounded(t *testing.T) {
	f := func(dRaw, cRaw, thRaw uint16) bool {
		delta := float64(dRaw) + 1
		c := float64(cRaw)
		theta := float64(thRaw) + 1
		lw := ExpectedLostWork(delta, c, theta)
		// Lost work can never exceed the work interval nor be negative.
		return lw >= -1e-9 && lw <= delta+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedLostWorkZeroInterval(t *testing.T) {
	if got := ExpectedLostWork(0, 10, 100); got != 0 {
		t.Fatalf("t_lw with δ=0 should be 0, got %v", got)
	}
}

func TestExpectedLostWorkInfiniteMTBF(t *testing.T) {
	got := ExpectedLostWork(100, 20, math.Inf(1))
	want := 100 * (50.0 + 20) / 120 // the Θ→∞ limit
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Θ=∞ limit: got %v, want %v", got, want)
	}
}

func TestExpectedRestartRework(t *testing.T) {
	// Reliable system: phase always completes, expected duration is R + t_lw.
	if got := ExpectedRestartRework(500, 100, math.Inf(1)); got != 600 {
		t.Errorf("reliable t_RR = %v, want 600", got)
	}
	// Failure-prone system: expected duration below the maximum R + t_lw.
	got := ExpectedRestartRework(500, 100, 1000)
	if got <= 0 || got >= 600 {
		t.Errorf("t_RR = %v, want in (0, 600)", got)
	}
	if got := ExpectedRestartRework(0, 0, 1000); got != 0 {
		t.Errorf("zero-length phase: got %v, want 0", got)
	}
}

func TestExpectedRestartReworkBounded(t *testing.T) {
	f := func(rRaw, lwRaw, thRaw uint16) bool {
		r := float64(rRaw)
		lw := float64(lwRaw)
		theta := float64(thRaw) + 1
		tRR := ExpectedRestartRework(r, lw, theta)
		return tRR >= -1e-9 && tRR <= r+lw+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestTotalTimeNoFailures(t *testing.T) {
	got, err := TotalTime(1000, 100, 10, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// t + t*c/δ = 1000 + 100.
	if math.Abs(got-1100) > 1e-9 {
		t.Fatalf("T_total = %v, want 1100", got)
	}
}

func TestTotalTimeNeverCompletes(t *testing.T) {
	_, err := TotalTime(1000, 100, 10, 0.01, 200)
	if !errors.Is(err, ErrNeverCompletes) {
		t.Fatalf("λ·t_RR = 2 should never complete, got err = %v", err)
	}
}

func TestTotalTimeExceedsWork(t *testing.T) {
	f := func(lamRaw uint8, tRRRaw uint16) bool {
		lambda := float64(lamRaw) / 10000.0
		tRR := float64(tRRRaw % 100)
		got, err := TotalTime(1000, 50, 5, lambda, tRR)
		if err != nil {
			return math.IsInf(got, 1)
		}
		return got >= 1000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDalyIntervalHandCalc(t *testing.T) {
	// Hand evaluation of Eq. 15 at c = 120 s, Θ = 1088 s:
	// √(2cΘ) = √261120 ≈ 511.0, ratio = c/2Θ ≈ 0.05515.
	c, theta := 120.0, 1088.0
	ratio := c / (2 * theta)
	want := math.Sqrt(2*c*theta)*(1+math.Sqrt(ratio)/3+ratio/9) - c
	if got := DalyInterval(c, theta); math.Abs(got-want) > 1e-9 {
		t.Fatalf("DalyInterval = %v, want %v", got, want)
	}
	if want < 400 || want > 500 {
		t.Fatalf("sanity: δ_opt = %v, expected ≈ 434 s", want)
	}
}

func TestDalyIntervalPaperFigureRatio(t *testing.T) {
	// §4.3: Figures 4 and 6 differ only in c by 10x and the paper notes
	// δ_opt is "roughly magnified by √10". Verify that scaling law.
	theta := 10 * Hour
	big := DalyInterval(1000, theta)
	small := DalyInterval(100, theta)
	ratio := big / small
	if math.Abs(ratio-math.Sqrt(10)) > 0.2 {
		t.Fatalf("δ_opt ratio for 10x checkpoint cost = %v, want ≈ √10 ≈ 3.16", ratio)
	}
}

func TestDalyIntervalSaturates(t *testing.T) {
	// c ≥ 2Θ: Daly's regime boundary pins δ = Θ.
	if got := DalyInterval(100, 40); got != 40 {
		t.Fatalf("saturated δ = %v, want Θ = 40", got)
	}
}

func TestDalyIntervalEdges(t *testing.T) {
	if got := DalyInterval(0, 100); !math.IsInf(got, 1) {
		t.Errorf("free checkpoints: δ = %v, want +Inf", got)
	}
	if got := DalyInterval(10, math.Inf(1)); !math.IsInf(got, 1) {
		t.Errorf("no failures: δ = %v, want +Inf", got)
	}
}

func TestYoungVsDaly(t *testing.T) {
	// Daly's correction terms shrink relative to √(2cΘ) as Θ grows, so
	// Young and Daly converge for reliable systems.
	c := 120.0
	for _, theta := range []float64{1e5, 1e7, 1e9} {
		y := YoungInterval(c, theta)
		d := DalyInterval(c, theta)
		rel := math.Abs(y-d) / y
		if theta >= 1e9 && rel > 0.001 {
			t.Fatalf("Young %v vs Daly %v at Θ=%v: rel %v", y, d, theta, rel)
		}
	}
	// For less reliable systems Daly < Young + c relation: δ_daly ≈ young - c + corrections.
	y := YoungInterval(120, 1088)
	d := DalyInterval(120, 1088)
	if d >= y {
		t.Fatalf("Daly (%v) should fall below Young (%v) at low Θ", d, y)
	}
}

func TestOptimizeIntervalAgreesWithDaly(t *testing.T) {
	// Direct numerical minimisation of Eq. 14 should land near Daly's
	// closed form (it is an approximation, so allow 20%).
	p := Params{
		N:              128,
		Work:           46 * Minute,
		Alpha:          0.2,
		NodeMTBF:       24 * Hour,
		CheckpointCost: 120,
		RestartCost:    500,
	}
	ev, err := Evaluate(p, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	numDelta, numTotal, err := OptimizeInterval(p, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if relErr := math.Abs(numDelta-ev.Interval) / ev.Interval; relErr > 0.25 {
		t.Errorf("numerical δ* = %v vs Daly %v (rel %v)", numDelta, ev.Interval, relErr)
	}
	// Daly total should be within a whisker of the true optimum.
	if numTotal > ev.Total+1e-9 {
		t.Logf("numerical optimum %v beats Daly %v (expected, Daly approximates)", numTotal, ev.Total)
	}
	if (ev.Total-numTotal)/numTotal > 0.02 {
		t.Errorf("Daly total %v is >2%% worse than optimum %v", ev.Total, numTotal)
	}
}
