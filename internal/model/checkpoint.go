package model

import "math"

// ExpectedLostWork is Eq. 12: the expected amount of computation lost
// when a failure strikes, under periodic checkpointing with work interval
// delta, checkpoint cost c, and system MTBF theta. Failures during the
// work phase lose the work done since the segment start; failures during
// the checkpoint phase lose the whole interval delta.
//
//	t_lw = [Θ - Θ·e^{-δ/Θ} - δ·e^{-(δ+c)/Θ}] / (1 - e^{-(δ+c)/Θ})
func ExpectedLostWork(delta, c, theta float64) float64 {
	if delta <= 0 {
		return 0
	}
	if math.IsInf(theta, 1) {
		// Perfectly reliable system: failures never strike, but the limit
		// of Eq. 12 as Θ→∞ is δ·(δ/2 + c)/(δ + c); return that for
		// continuity (it is only used multiplied by λ = 0 anyway).
		return delta * (delta/2 + c) / (delta + c)
	}
	deltaC := delta + c
	den := -math.Expm1(-deltaC / theta)
	if den == 0 {
		return 0
	}
	num := -theta*math.Expm1(-delta/theta) - delta*math.Exp(-deltaC/theta)
	return num / den
}

// ExpectedRestartRework is Eq. 13: the expected duration of the combined
// restart + rework phase that follows each failure, accounting for
// failures that strike during the phase itself. With x = R + t_lw and
// q = e^{-x/Θ}:
//
//	t_RR = (1-q)·[Θ - q·(x+Θ)] + q·x
func ExpectedRestartRework(restart, lostWork, theta float64) float64 {
	x := restart + lostWork
	if x <= 0 {
		return 0
	}
	if math.IsInf(theta, 1) {
		return x
	}
	q := math.Exp(-x / theta)
	return (1-q)*(theta-q*(x+theta)) + q*x
}

// TotalTime is Eq. 14: the expected wallclock time to complete work t
// with checkpoint interval delta, checkpoint cost c, failure rate lambda,
// and per-failure restart/rework time tRR:
//
//	T_total = (t + t·c/δ) / (1 - λ·t_RR)
//
// It returns ErrNeverCompletes when λ·t_RR ≥ 1 (failures arrive faster
// than the system can recover from them).
func TotalTime(work, delta, c, lambda, tRR float64) (float64, error) {
	numerator := work
	if delta > 0 && c > 0 {
		numerator += work * c / delta
	}
	if math.IsInf(lambda, 1) {
		// Failures arrive instantly (Θ_sys = 0): no progress regardless
		// of t_RR; guards the Inf·0 = NaN corner.
		return math.Inf(1), ErrNeverCompletes
	}
	den := 1 - lambda*tRR
	if math.IsNaN(den) || den <= 0 {
		return math.Inf(1), ErrNeverCompletes
	}
	return numerator / den, nil
}

// ExpectedFailures is Eq. 11: n_f = T_total · λ.
func ExpectedFailures(totalTime, lambda float64) float64 {
	return totalTime * lambda
}

// DalyInterval is Eq. 15, Daly's higher-order optimum checkpoint
// interval for checkpoint cost c and system MTBF theta:
//
//	δ_opt = √(2cΘ)·[1 + (1/3)·(c/2Θ)^{1/2} + (1/9)·(c/2Θ)] - c
//
// Following Daly, the formula applies for c < 2Θ; beyond that the
// optimum saturates at δ = Θ.
func DalyInterval(c, theta float64) float64 {
	if c <= 0 {
		return math.Inf(1)
	}
	if math.IsInf(theta, 1) {
		return math.Inf(1)
	}
	if c >= 2*theta {
		return theta
	}
	ratio := c / (2 * theta)
	return math.Sqrt(2*c*theta)*(1+math.Sqrt(ratio)/3+ratio/9) - c
}

// YoungInterval is Young's first-order optimum checkpoint interval
// δ = √(2cΘ), provided for comparison with Daly's higher-order form.
func YoungInterval(c, theta float64) float64 {
	if c <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(2 * c * theta)
}
