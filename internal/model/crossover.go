package model

import (
	"fmt"
	"math"
)

// ScalingPoint is one x-axis point of Figures 13-14: the modeled
// wallclock of a weak-scaled job at a given virtual-process count, for
// each redundancy degree of interest.
type ScalingPoint struct {
	N      int
	Totals map[float64]float64 // degree -> T_total seconds (+Inf if never completes)
}

// WeakScalingCurve evaluates the model under weak scaling: the per-process
// work (and hence the base execution time t) is constant as N grows,
// matching the paper's Figure 13 setup ("the problem size is scaled at
// the same rate as the number of processes resulting in a constant
// compute overhead per process"). Degrees lists the redundancy levels to
// evaluate at every N in ns.
func WeakScalingCurve(p Params, ns []int, degrees []float64, opts Options) ([]ScalingPoint, error) {
	pts := make([]ScalingPoint, 0, len(ns))
	for _, n := range ns {
		if n <= 0 {
			return nil, fmt.Errorf("model: invalid process count %d", n)
		}
		pp := p
		pp.N = n
		sp := ScalingPoint{N: n, Totals: make(map[float64]float64, len(degrees))}
		for _, r := range degrees {
			ev, err := Evaluate(pp, r, opts)
			if err != nil && !math.IsInf(ev.Total, 1) {
				return nil, err
			}
			sp.Totals[r] = ev.Total
		}
		pts = append(pts, sp)
	}
	return pts, nil
}

// Crossover finds the smallest process count N in [lo, hi] at which
// redundancy degree rHigh completes faster than rLow, by bisection. The
// advantage of higher redundancy is monotone in N (more nodes mean a
// proportionally higher un-replicated failure rate), which makes
// bisection sound. It returns hi+1 if rHigh never wins in range.
func Crossover(p Params, rLow, rHigh float64, lo, hi int, opts Options) (int, error) {
	faster := func(n int) (bool, error) {
		pp := p
		pp.N = n
		lowEv, err := Evaluate(pp, rLow, opts)
		lowInf := math.IsInf(lowEv.Total, 1)
		if err != nil && !lowInf {
			return false, err
		}
		highEv, err := Evaluate(pp, rHigh, opts)
		if err != nil && !math.IsInf(highEv.Total, 1) {
			return false, err
		}
		return highEv.Total < lowEv.Total, nil
	}
	ok, err := faster(hi)
	if err != nil {
		return 0, err
	}
	if !ok {
		return hi + 1, nil
	}
	if ok, err = faster(lo); err != nil {
		return 0, err
	} else if ok {
		return lo, nil
	}
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		ok, err := faster(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// ThroughputBreakEven finds the smallest N in [lo, hi] where the
// no-redundancy runtime is at least `factor` times the runtime at degree
// r. The paper's headline: at ≈80,000 processes the 1x runtime doubles
// the 2x runtime, so two 2x jobs finish in the time of one 1x job
// (Figure 14). Returns hi+1 if the factor is never reached in range.
func ThroughputBreakEven(p Params, r, factor float64, lo, hi int, opts Options) (int, error) {
	reached := func(n int) (bool, error) {
		pp := p
		pp.N = n
		base, err := Evaluate(pp, 1, opts)
		baseInf := math.IsInf(base.Total, 1)
		if err != nil && !baseInf {
			return false, err
		}
		red, err := Evaluate(pp, r, opts)
		if err != nil && !math.IsInf(red.Total, 1) {
			return false, err
		}
		if math.IsInf(red.Total, 1) {
			return false, nil
		}
		return base.Total >= factor*red.Total, nil
	}
	ok, err := reached(hi)
	if err != nil {
		return 0, err
	}
	if !ok {
		return hi + 1, nil
	}
	if ok, err = reached(lo); err != nil {
		return 0, err
	} else if ok {
		return lo, nil
	}
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		ok, err := reached(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
