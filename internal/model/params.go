// Package model implements the analytic model of Elliott et al.,
// "Combining Partial Redundancy and Checkpointing for HPC" (ICDCS 2012),
// Section 4: the redundant execution-time dilation (Eq. 1), node and
// sphere reliability under partial redundancy (Eqs. 2-9), the derived
// system failure rate (Eq. 10), expected lost work and restart/rework
// time under periodic checkpointing (Eqs. 12-13), the combined total
// execution time (Eq. 14), and Daly's optimal checkpoint interval
// (Eq. 15). It also implements the simplified experimental model of
// Section 6, the work-breakdown accounting behind Tables 2-3, and the
// optimisers and crossover analysis behind Figures 13-14.
//
// All durations are float64 seconds: the model is continuous mathematics
// over quantities spanning milliseconds to years, where time.Duration
// arithmetic adds noise without safety. Helper constants (Hour, Day,
// Year) make call sites readable.
package model

import (
	"errors"
	"fmt"
)

// Time unit helpers, in seconds.
const (
	Minute = 60.0
	Hour   = 3600.0
	Day    = 24 * Hour
	// Year uses the 365-day convention common in reliability engineering
	// (MTBF figures like "5 years" in the paper are nominal, not civil).
	Year = 365 * Day
)

// Params describes an application run and its environment, mirroring the
// parameter list of Section 4 of the paper.
type Params struct {
	// N is the number of virtual processes (application-visible ranks).
	N int
	// Work is t, the base failure-free execution time of the application
	// without redundancy or checkpointing, in seconds.
	Work float64
	// Alpha is α, the communication/computation ratio of the application
	// in [0, 1]. The CG benchmark in the paper measures α = 0.2.
	Alpha float64
	// NodeMTBF is θ, the mean time to failure of a single node, in
	// seconds. Nodes fail independently following a Poisson process.
	NodeMTBF float64
	// CheckpointCost is c, the time one coordinated checkpoint adds to
	// execution, in seconds (120 s measured in the paper).
	CheckpointCost float64
	// RestartCost is R, the time to restart the application after a
	// failure before re-execution begins, in seconds (≈500 s measured).
	RestartCost float64
}

// Validate reports whether the parameters are physically meaningful.
func (p Params) Validate() error {
	switch {
	case p.N <= 0:
		return fmt.Errorf("model: N = %d, must be positive", p.N)
	case p.Work <= 0:
		return fmt.Errorf("model: Work = %v, must be positive", p.Work)
	case p.Alpha < 0 || p.Alpha > 1:
		return fmt.Errorf("model: Alpha = %v, must be in [0, 1]", p.Alpha)
	case p.NodeMTBF <= 0:
		return fmt.Errorf("model: NodeMTBF = %v, must be positive", p.NodeMTBF)
	case p.CheckpointCost < 0:
		return fmt.Errorf("model: CheckpointCost = %v, must be non-negative", p.CheckpointCost)
	case p.RestartCost < 0:
		return fmt.Errorf("model: RestartCost = %v, must be non-negative", p.RestartCost)
	}
	return nil
}

// ErrNeverCompletes is returned when the modeled failure rate is so high
// relative to the restart/rework time that the application makes no
// forward progress (the denominator of Eq. 14 is non-positive).
var ErrNeverCompletes = errors.New("model: failure rate too high, application never completes")

// ErrInvalidRedundancy is returned for redundancy degrees outside [1, ∞).
var ErrInvalidRedundancy = errors.New("model: redundancy degree must be >= 1")
