package model

import (
	"math"
	"testing"
)

// paperCG returns the experimental configuration of Section 6: NPB CG
// class D on 128 processes, 46 min base run, α = 0.2, c = 120 s,
// R = 500 s. NodeMTBF varies per experiment.
func paperCG(nodeMTBF float64) Params {
	return Params{
		N:              128,
		Work:           46 * Minute,
		Alpha:          0.2,
		NodeMTBF:       nodeMTBF,
		CheckpointCost: 120,
		RestartCost:    500,
	}
}

func TestEvaluateValidatesParams(t *testing.T) {
	bad := paperCG(6 * Hour)
	bad.Alpha = 2
	if _, err := Evaluate(bad, 2, Options{}); err == nil {
		t.Fatal("Evaluate should reject α > 1")
	}
	bad = paperCG(6 * Hour)
	bad.N = 0
	if _, err := Evaluate(bad, 2, Options{}); err == nil {
		t.Fatal("Evaluate should reject N = 0")
	}
	if _, err := Evaluate(paperCG(6*Hour), 0.25, Options{}); err == nil {
		t.Fatal("Evaluate should reject r < 1")
	}
}

func TestEvaluateHandChecked2x6h(t *testing.T) {
	// Hand-derivable intermediates at r=2, θ=6h (see also
	// TestSystemReliabilityHandCalc): t_Red = 1.2·2760 = 3312 s.
	ev, err := Evaluate(paperCG(6*Hour), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev.RedundantTime-3312) > 1e-9 {
		t.Errorf("t_Red = %v, want 3312", ev.RedundantTime)
	}
	// λ_sys = -ln((1-p²)^128)/3312 with p = 3312/21600 ⇒ Θ_sys ≈ 1096 s.
	p := 3312.0 / 21600.0
	wantLambda := -128 * math.Log1p(-p*p) / 3312
	if math.Abs(ev.Lambda-wantLambda)/wantLambda > 1e-9 {
		t.Errorf("λ_sys = %v, want %v", ev.Lambda, wantLambda)
	}
	if ev.MTBF < 1000 || ev.MTBF > 1200 {
		t.Errorf("Θ_sys = %v, want ≈ 1096 s", ev.MTBF)
	}
	// Total must exceed the failure-free dilated time and stay finite.
	if ev.Total <= ev.RedundantTime || math.IsInf(ev.Total, 1) {
		t.Errorf("T_total = %v, t_Red = %v", ev.Total, ev.RedundantTime)
	}
}

func TestEvaluateRedundancyOrderingAtHighFailureRate(t *testing.T) {
	// Paper observation (1): at MTBF 6 h the best performance is at the
	// highest redundancy; ordering T(3x) < T(2x) < T(1x).
	cfg := paperCG(6 * Hour)
	t1, err := Evaluate(cfg, 1, Options{})
	if err != nil && !math.IsInf(t1.Total, 1) {
		t.Fatal(err)
	}
	t2, err := Evaluate(cfg, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t3, err := Evaluate(cfg, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !(t3.Total < t2.Total && t2.Total < t1.Total) {
		t.Fatalf("want T(3x) < T(2x) < T(1x) at θ=6h, got %v / %v / %v",
			t3.Total, t2.Total, t1.Total)
	}
}

func TestEvaluateLowFailureRateFavors2x(t *testing.T) {
	// Paper observation (2): at MTBF 24-30 h the optimum is 2x and going
	// to 3x hurts.
	for _, mtbf := range []float64{24 * Hour, 30 * Hour} {
		cfg := paperCG(mtbf)
		opt, err := OptimizeDegree(cfg, 1, 3, 0.25, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if opt.Best.Degree < 1.75 || opt.Best.Degree > 2.5 {
			t.Errorf("θ=%vh: optimal degree %v, want near 2x", mtbf/Hour, opt.Best.Degree)
		}
		t2, err := Evaluate(cfg, 2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		t3, err := Evaluate(cfg, 3, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if t3.Total <= t2.Total {
			t.Errorf("θ=%vh: T(3x)=%v should exceed T(2x)=%v", mtbf/Hour, t3.Total, t2.Total)
		}
	}
}

func TestEvaluateQuarterStepPenalty(t *testing.T) {
	// Paper observation (4): 1.25x costs more overhead than its
	// reliability gain is worth next to 1x for modest failure rates —
	// verified in the model via redundant-time dilation exceeding MTBF
	// improvement. At θ=30h, T(1.25x) should not beat T(1x) by much and
	// T(2.25x) should exceed T(2x).
	cfg := paperCG(30 * Hour)
	e2, err := Evaluate(cfg, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e225, err := Evaluate(cfg, 2.25, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e225.Total <= e2.Total {
		t.Fatalf("T(2.25x)=%v should exceed T(2x)=%v at θ=30h", e225.Total, e2.Total)
	}
}

func TestEvaluateNodesUsed(t *testing.T) {
	ev, err := Evaluate(paperCG(6*Hour), 2.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// r=2.5, N=128: 64 ranks at 2, 64 at 3 ⇒ 320 nodes.
	if ev.NodesUsed != 320 {
		t.Fatalf("NodesUsed = %d, want 320", ev.NodesUsed)
	}
	if nh := ev.NodeHours(); nh <= 0 {
		t.Fatalf("NodeHours = %v", nh)
	}
}

func TestEvaluateSimplifiedBelowFullModel(t *testing.T) {
	// The simplified §6 model ignores failures during checkpoint/restart
	// and rework beyond the restart constant, so it should undercut the
	// full Eq. 14 model at matched parameters.
	cfg := paperCG(12 * Hour)
	for _, r := range []float64{1, 1.5, 2, 2.5, 3} {
		full, err := Evaluate(cfg, r, Options{})
		if err != nil {
			t.Fatal(err)
		}
		simp, err := EvaluateSimplified(cfg, r, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if simp.Total <= simp.RedundantTime {
			t.Errorf("r=%v: simplified total %v not above t_Red %v", r, simp.Total, simp.RedundantTime)
		}
		if simp.Total > full.Total*1.05 {
			t.Errorf("r=%v: simplified %v exceeds full model %v", r, simp.Total, full.Total)
		}
	}
}

func TestEvaluateSimplifiedHandCalc1x6h(t *testing.T) {
	// Hand calculation (DESIGN.md): r=1, θ=6h ⇒ Θ_sys ≈ 169 s,
	// δ_opt ≈ 129 s, T ≈ 2760·(1 + 120/129 + 500/169) ≈ 13.4e3 s ≈ 224 min.
	ev, err := EvaluateSimplified(paperCG(6*Hour), 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	minutes := ev.Total / Minute
	if minutes < 180 || minutes > 260 {
		t.Fatalf("simplified T(1x, 6h) = %.1f min, want ≈ 220 min (paper measures 275)", minutes)
	}
}

func TestSweepShape(t *testing.T) {
	curve, err := Sweep(paperCG(12*Hour), 1, 3, 0.25, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 9 {
		t.Fatalf("sweep returned %d points, want 9", len(curve))
	}
	for i, ev := range curve {
		want := 1 + 0.25*float64(i)
		if math.Abs(ev.Degree-want) > 1e-9 {
			t.Fatalf("point %d degree = %v, want %v", i, ev.Degree, want)
		}
	}
	if _, err := Sweep(paperCG(12*Hour), 3, 1, 0.25, Options{}); err == nil {
		t.Fatal("descending sweep should fail")
	}
	if _, err := Sweep(paperCG(12*Hour), 1, 3, 0, Options{}); err == nil {
		t.Fatal("zero step should fail")
	}
}

func TestFixedIntervalOption(t *testing.T) {
	o := Options{Interval: 300}
	ev, err := Evaluate(paperCG(12*Hour), 2, o)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Interval != 300 {
		t.Fatalf("Interval = %v, want fixed 300", ev.Interval)
	}
	// A deliberately bad interval must cost more than Daly's.
	daly, err := Evaluate(paperCG(12*Hour), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := Evaluate(paperCG(12*Hour), 2, Options{Interval: 20})
	if err != nil {
		t.Fatal(err)
	}
	if bad.Total <= daly.Total {
		t.Fatalf("δ=20s total %v should exceed Daly total %v", bad.Total, daly.Total)
	}
}

func TestYoungOption(t *testing.T) {
	y, err := Evaluate(paperCG(12*Hour), 2, Options{UseYoung: true})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Evaluate(paperCG(12*Hour), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if y.Interval == d.Interval {
		t.Fatal("Young and Daly intervals should differ at cluster-scale MTBF")
	}
	// Both near-optimal: totals within 2% of each other.
	if math.Abs(y.Total-d.Total)/d.Total > 0.02 {
		t.Fatalf("Young total %v vs Daly total %v differ by >2%%", y.Total, d.Total)
	}
}

func TestBreakdownSumsToOne(t *testing.T) {
	for _, mtbf := range []float64{6 * Hour, 30 * Hour, 5 * Year} {
		b, err := WorkBreakdown(paperCG(mtbf), 1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sum := b.Work + b.Checkpoint + b.Recompute + b.Restart
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("θ=%v: breakdown sums to %v", mtbf, sum)
		}
		if b.Work <= 0 || b.Work > 1 {
			t.Fatalf("θ=%v: work fraction %v", mtbf, b.Work)
		}
	}
}

func TestBreakdownWorkDecaysWithScale(t *testing.T) {
	// Table 2's trend: at fixed θ = 5 yr and 168 h of work, useful work
	// fraction decays as nodes grow 100 → 100,000.
	prev := 2.0
	for _, n := range []int{100, 1000, 10000, 100000} {
		p := Params{
			N:              n,
			Work:           168 * Hour,
			Alpha:          0.2,
			NodeMTBF:       5 * Year,
			CheckpointCost: 5 * Minute,
			RestartCost:    10 * Minute,
		}
		b, err := WorkBreakdown(p, 1, Options{})
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if b.Work >= prev {
			t.Fatalf("work fraction did not decay at N=%d: %v >= %v", n, b.Work, prev)
		}
		prev = b.Work
	}
}
