package model

import (
	"errors"
	"math"
	"testing"
)

// TestEvaluateShrinkLimits pins the closed form at its boundaries: a
// reliable system completes in exactly t_Red, and a failure rate that
// drains the expected capacity before the work is done is infeasible.
func TestEvaluateShrinkLimits(t *testing.T) {
	p := Params{
		N: 1000, Work: 10 * Hour, Alpha: 0.2,
		NodeMTBF: 1000 * Year, CheckpointCost: 600, RestartCost: 600,
	}
	ev, err := EvaluateShrink(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Feasible {
		t.Fatal("near-reliable system infeasible")
	}
	if rel := (ev.Total - ev.RedundantTime) / ev.RedundantTime; rel > 1e-3 {
		t.Errorf("Total %.1f drifts %.2e from t_Red %.1f at vanishing λ", ev.Total, rel, ev.RedundantTime)
	}

	p.NodeMTBF = 2 * Hour // drains the whole machine mid-run
	ev, err = EvaluateShrink(p, 1)
	if !errors.Is(err, ErrNeverCompletes) {
		t.Fatalf("err = %v, want ErrNeverCompletes", err)
	}
	if !math.IsInf(ev.Total, 1) || ev.Feasible {
		t.Errorf("infeasible point: Total=%v Feasible=%v", ev.Total, ev.Feasible)
	}
}

// TestEvaluateShrinkMonotone: completion time grows as node MTBF falls,
// and always exceeds the failure-free t_Red (capacity loss only hurts).
func TestEvaluateShrinkMonotone(t *testing.T) {
	p := Params{
		N: 100000, Work: 128 * Hour, Alpha: 0.2,
		NodeMTBF: 5 * Year, CheckpointCost: 600, RestartCost: 600,
	}
	prev := 0.0
	for _, mtbf := range []float64{25 * Year, 5 * Year, 1 * Year, 0.5 * Year} {
		p.NodeMTBF = mtbf
		ev, err := EvaluateShrink(p, 2)
		if err != nil {
			t.Fatalf("θ=%v: %v", mtbf, err)
		}
		if ev.Total <= ev.RedundantTime {
			t.Errorf("θ=%v: Total %.1f not above t_Red %.1f", mtbf, ev.Total, ev.RedundantTime)
		}
		if ev.Total <= prev {
			t.Errorf("θ=%v: Total %.1f not monotone in failure rate (prev %.1f)", mtbf, ev.Total, prev)
		}
		if ev.Episodes != ev.Lambda*ev.RedundantTime {
			t.Errorf("θ=%v: Episodes %.3f != λ·t_Red", mtbf, ev.Episodes)
		}
		if ev.SurvivingFraction <= 0 || ev.SurvivingFraction >= 1 {
			t.Errorf("θ=%v: SurvivingFraction %.4f outside (0,1)", mtbf, ev.SurvivingFraction)
		}
		prev = ev.Total
	}
}

// TestShrinkVsRestart pins the comparison's headline for malleable
// work: shrink beats the checkpoint/restart total wherever it is
// feasible (it pays a one-rank capacity loss and a repair stall per
// failure instead of a global rollback), and redundancy is what keeps
// the episode count — and hence the repair bill — down.
func TestShrinkVsRestart(t *testing.T) {
	p := Params{
		N: 100000, Work: 128 * Hour, Alpha: 0.2,
		CheckpointCost: 600, RestartCost: 600,
	}
	for _, mtbf := range []float64{25 * Year, 5 * Year, 1 * Year, 0.1 * Year} {
		p.NodeMTBF = mtbf
		sh, err := EvaluateShrink(p, 2)
		if err != nil {
			t.Fatalf("θ=%v: %v", mtbf, err)
		}
		re, err := Evaluate(p, 2, Options{})
		if err != nil {
			t.Fatalf("θ=%v: %v", mtbf, err)
		}
		if sh.Total >= re.Total {
			t.Errorf("θ=%.2fy: shrink %.1fh not below restart %.1fh",
				mtbf/Year, sh.Total/Hour, re.Total/Hour)
		}
		if want := sh.RedundantTime + sh.RepairTime; sh.Total < want {
			t.Errorf("θ=%.2fy: Total %.1fh below t_Red + repair %.1fh", mtbf/Year, sh.Total/Hour, want/Hour)
		}
	}

	// Dual redundancy masks node deaths: episodes at r=2 must be a tiny
	// fraction of the r=1 count on the same machine.
	p.NodeMTBF = 5 * Year
	sh1, err := EvaluateShrink(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	sh2, err := EvaluateShrink(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sh2.Episodes >= sh1.Episodes/10 {
		t.Errorf("episodes r=2 %.1f not ≪ r=1 %.1f", sh2.Episodes, sh1.Episodes)
	}
}
