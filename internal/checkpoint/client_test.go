package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/mpi"
	"repro/internal/redundancy"
	"repro/internal/simmpi"
)

func writeFileHelper(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// runWorld executes fn once per rank of a plain n-rank world.
func runWorld(t *testing.T, n int, fn func(c *simmpi.Comm) error) {
	t.Helper()
	w, err := simmpi.NewWorld(n)
	if err != nil {
		t.Fatal(err)
	}
	appErr, failures := w.Run(fn)
	if appErr != nil {
		t.Fatalf("app error: %v", appErr)
	}
	if len(failures) != 0 {
		t.Fatalf("failures: %v", failures)
	}
}

func TestNewClientRequiresStorage(t *testing.T) {
	w, err := simmpi.NewWorld(1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := w.Comm(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewClient(c, Config{}); err == nil {
		t.Fatal("nil storage accepted")
	}
}

func TestCoordinatedCheckpointAndRestore(t *testing.T) {
	const n = 4
	store := NewMemStorage()
	runWorld(t, n, func(c *simmpi.Comm) error {
		cl, err := NewClient(c, Config{Storage: store})
		if err != nil {
			return err
		}
		state := []byte(fmt.Sprintf("state of rank %d", c.Rank()))
		if err := cl.Checkpoint(state, true); err != nil {
			return err
		}
		if cl.Checkpoints() != 1 {
			return fmt.Errorf("checkpoints = %d", cl.Checkpoints())
		}
		return nil
	})
	// A fresh world restores every rank's state.
	runWorld(t, n, func(c *simmpi.Comm) error {
		cl, err := NewClient(c, Config{Storage: store})
		if err != nil {
			return err
		}
		state, ok, err := cl.Restore()
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("rank %d found no checkpoint", c.Rank())
		}
		want := fmt.Sprintf("state of rank %d", c.Rank())
		if string(state) != want {
			return fmt.Errorf("restored %q, want %q", state, want)
		}
		if cl.Restores() != 1 {
			return fmt.Errorf("restores = %d", cl.Restores())
		}
		return nil
	})
}

func TestRestoreWithoutCheckpoint(t *testing.T) {
	store := NewMemStorage()
	runWorld(t, 2, func(c *simmpi.Comm) error {
		cl, err := NewClient(c, Config{Storage: store})
		if err != nil {
			return err
		}
		_, ok, err := cl.Restore()
		if err != nil {
			return err
		}
		if ok {
			return fmt.Errorf("restore reported a checkpoint in an empty store")
		}
		return nil
	})
}

func TestGenerationsAdvance(t *testing.T) {
	const n = 3
	store := NewMemStorage()
	runWorld(t, n, func(c *simmpi.Comm) error {
		cl, err := NewClient(c, Config{Storage: store})
		if err != nil {
			return err
		}
		for i := 0; i < 3; i++ {
			if err := cl.Checkpoint([]byte{byte(i)}, true); err != nil {
				return fmt.Errorf("checkpoint %d: %w", i, err)
			}
		}
		return nil
	})
	gen, ranks, ok, err := store.Latest()
	if err != nil || !ok {
		t.Fatalf("Latest: %v %v", ok, err)
	}
	if ranks != n {
		t.Fatalf("ranks = %d", ranks)
	}
	state, err := store.Read(gen, 0)
	if err != nil || state[0] != 2 {
		t.Fatalf("latest generation holds %v (err %v), want the 3rd checkpoint", state, err)
	}
}

func TestMaybeCheckpointStepSchedule(t *testing.T) {
	const n = 2
	store := NewMemStorage()
	var mu sync.Mutex
	fired := map[int][]int{}
	runWorld(t, n, func(c *simmpi.Comm) error {
		cl, err := NewClient(c, Config{Storage: store, StepInterval: 3})
		if err != nil {
			return err
		}
		for step := 0; step <= 10; step++ {
			did, err := cl.MaybeCheckpoint(step, []byte{byte(step)}, true)
			if err != nil {
				return err
			}
			if did {
				mu.Lock()
				fired[c.Rank()] = append(fired[c.Rank()], step)
				mu.Unlock()
			}
		}
		return nil
	})
	want := fmt.Sprint([]int{3, 6, 9})
	for rank, steps := range fired {
		if fmt.Sprint(steps) != want {
			t.Fatalf("rank %d checkpointed at %v, want %v", rank, steps, want)
		}
	}
	if len(fired) != n {
		t.Fatalf("only %d ranks checkpointed", len(fired))
	}
}

func TestMaybeCheckpointDisabled(t *testing.T) {
	store := NewMemStorage()
	runWorld(t, 1, func(c *simmpi.Comm) error {
		cl, err := NewClient(c, Config{Storage: store})
		if err != nil {
			return err
		}
		did, err := cl.MaybeCheckpoint(100, nil, true)
		if err != nil {
			return err
		}
		if did {
			return fmt.Errorf("StepInterval=0 should disable MaybeCheckpoint")
		}
		return nil
	})
}

func TestBookmarkDetectsInFlightMessage(t *testing.T) {
	// Rank 0 sends a message rank 1 never receives: the bookmark exchange
	// must refuse to checkpoint.
	const n = 2
	store := NewMemStorage()
	w, err := simmpi.NewWorld(n)
	if err != nil {
		t.Fatal(err)
	}
	appErr, _ := w.Run(func(c *simmpi.Comm) error {
		cl, err := NewClient(c, Config{Storage: store, BookmarkRetries: 2})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := c.Send(1, 1, []byte("orphan")); err != nil {
				return err
			}
		}
		return cl.Checkpoint(nil, true)
	})
	if !errors.Is(appErr, ErrNotQuiescent) {
		t.Fatalf("checkpoint over dirty channel: err = %v, want ErrNotQuiescent", appErr)
	}
}

func TestBookmarkPassesAfterDrain(t *testing.T) {
	const n = 2
	store := NewMemStorage()
	runWorld(t, n, func(c *simmpi.Comm) error {
		cl, err := NewClient(c, Config{Storage: store})
		if err != nil {
			return err
		}
		// Balanced exchange: everything sent is received.
		if c.Rank() == 0 {
			if err := c.Send(1, 1, []byte("m")); err != nil {
				return err
			}
		} else {
			if _, err := c.Recv(0, 1); err != nil {
				return err
			}
		}
		return cl.Checkpoint([]byte("s"), true)
	})
}

func TestSkipBookmarkOption(t *testing.T) {
	const n = 2
	store := NewMemStorage()
	runWorld(t, n, func(c *simmpi.Comm) error {
		cl, err := NewClient(c, Config{Storage: store, SkipBookmark: true})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			// Leave an orphan in flight; SkipBookmark tolerates it.
			if err := c.Send(1, 1, []byte("orphan")); err != nil {
				return err
			}
		}
		return cl.Checkpoint(nil, true)
	})
}

func TestCheckpointUnderRedundancy(t *testing.T) {
	// All replicas run the protocol; only the lowest alive replica of
	// each rank writes. Restore then works from any replica.
	const n = 3
	const degree = 2.0
	store := NewMemStorage()
	m, err := redundancy.NewRankMap(n, degree)
	if err != nil {
		t.Fatal(err)
	}
	w, err := simmpi.NewWorld(m.PhysicalSize())
	if err != nil {
		t.Fatal(err)
	}
	appErr, failures := w.Run(func(pc *simmpi.Comm) error {
		rc, err := redundancy.Wrap(pc, m, mpi.WithLiveness(w))
		if err != nil {
			return err
		}
		cl, err := NewClient(rc, Config{Storage: store})
		if err != nil {
			return err
		}
		state := []byte(fmt.Sprintf("virtual %d", rc.Rank()))
		writer := rc.ReplicaIndex() == 0
		if err := cl.Checkpoint(state, writer); err != nil {
			return err
		}
		got, ok, err := cl.Restore()
		if err != nil || !ok {
			return fmt.Errorf("restore: %v %v", ok, err)
		}
		if string(got) != string(state) {
			return fmt.Errorf("restored %q", got)
		}
		return nil
	})
	if appErr != nil {
		t.Fatalf("app error: %v", appErr)
	}
	if len(failures) != 0 {
		t.Fatalf("failures: %v", failures)
	}
	if _, ranks, ok, _ := store.Latest(); !ok || ranks != n {
		t.Fatalf("store holds %d virtual ranks, want %d", ranks, n)
	}
}

func TestCheckpointWithTrackerlessComm(t *testing.T) {
	// A communicator without CountTracker skips the bookmark exchange.
	const n = 2
	store := NewMemStorage()
	runWorld(t, n, func(c *simmpi.Comm) error {
		cl, err := NewClient(noTracker{c}, Config{Storage: store})
		if err != nil {
			return err
		}
		return cl.Checkpoint([]byte("x"), true)
	})
}

// noTracker delegates mpi.Comm explicitly (no embedding, which would
// promote SentCounts/RecvCounts and defeat the purpose) so the client
// sees a transport without message totals.
type noTracker struct {
	c *simmpi.Comm
}

var _ mpi.Comm = noTracker{}

func (n noTracker) Rank() int { return n.c.Rank() }
func (n noTracker) Size() int { return n.c.Size() }
func (n noTracker) Send(dst, tag int, data []byte) error {
	return n.c.Send(dst, tag, data)
}
func (n noTracker) Recv(src, tag int) (mpi.Message, error) { return n.c.Recv(src, tag) }
func (n noTracker) Isend(dst, tag int, data []byte) (mpi.Request, error) {
	return n.c.Isend(dst, tag, data)
}
func (n noTracker) Irecv(src, tag int) (mpi.Request, error)  { return n.c.Irecv(src, tag) }
func (n noTracker) Probe(src, tag int) (mpi.Status, error)   { return n.c.Probe(src, tag) }
func (n noTracker) SetErrhandler(fn func(mpi.FailureInfo))   { n.c.SetErrhandler(fn) }
func (n noTracker) FailureAck() []int                        { return n.c.FailureAck() }
func (n noTracker) Shrink() (mpi.Comm, error)                { return n.c.Shrink() }
func (n noTracker) Agree(flag bool) (bool, error)            { return n.c.Agree(flag) }

func TestNoTrackerReallyHidesCounts(t *testing.T) {
	if _, ok := interface{}(noTracker{}).(mpi.CountTracker); ok {
		t.Fatal("noTracker still exposes CountTracker; the skip path is untested")
	}
}
