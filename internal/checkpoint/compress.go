package checkpoint

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"repro/internal/obs"
)

// compressScratch pools the per-Write compression state. Both pieces are
// reset-and-reused: checkpoint writers fire on every interval, and the
// flate.Writer alone is tens of kilobytes of window state.
type compressScratch struct {
	buf   bytes.Buffer
	w     *flate.Writer
	level int // the level w was built with; Reset cannot change it
}

var compressPool = sync.Pool{New: func() any { return new(compressScratch) }}

// CompressedStorage wraps a Storage and DEFLATE-compresses rank images on
// the way in — the "checkpoint compression" optimisation the paper
// surveys (§2): "a method for reducing the checkpoint latency by reducing
// the size of process images before writing them to stable storage."
// Compression composes with incremental encoding (compress the deltas).
type CompressedStorage struct {
	// Inner is the backing store.
	Inner Storage
	// Level is the flate level; zero means flate.DefaultCompression.
	Level int
	// Shards, when > 1, splits images larger than ChunkSize into
	// fixed-size framed chunks compressed by up to Shards goroutines in
	// parallel (the self-describing container format below). 0 or 1
	// keeps the single-stream layout. Read handles both layouts
	// regardless of the current setting, so stores written with either
	// configuration stay restorable.
	Shards int
	// ChunkSize is the raw bytes per chunk in sharded mode; zero means
	// DefaultChunkSize. Images at or below one chunk use the
	// single-stream layout even when Shards > 1.
	ChunkSize int
	// Obs, when non-nil, accumulates checkpoint_raw_bytes_total and
	// checkpoint_compressed_bytes_total; their ratio is the achieved
	// compression ratio. Writes are rare, so counters resolve lazily.
	Obs *obs.Registry
}

// DefaultChunkSize is the sharded-mode chunk granularity: large enough
// that per-chunk DEFLATE window warmup doesn't hurt the ratio much,
// small enough that typical rank images split across several workers.
const DefaultChunkSize = 256 * 1024

// shardMagic opens the sharded container. The first byte 0xD7 encodes
// DEFLATE block type 3 (reserved/invalid), so no legal single-stream
// flate payload can begin with it — Read distinguishes the two layouts
// from the payload alone.
var shardMagic = [4]byte{0xD7, 'C', 'K', 'S'}

var _ Storage = (*CompressedStorage)(nil)

// NewCompressedStorage wraps inner with default compression.
func NewCompressedStorage(inner Storage) *CompressedStorage {
	return &CompressedStorage{Inner: inner, Level: flate.DefaultCompression}
}

// deflateInto compresses data into sc.buf (reset first), reusing the
// scratch's flate.Writer when its level matches.
func deflateInto(sc *compressScratch, level int, data []byte) error {
	sc.buf.Reset()
	if sc.w == nil || sc.level != level {
		w, err := flate.NewWriter(&sc.buf, level)
		if err != nil {
			return fmt.Errorf("checkpoint: compressor: %w", err)
		}
		sc.w, sc.level = w, level
	} else {
		sc.w.Reset(&sc.buf)
	}
	if _, err := sc.w.Write(data); err != nil {
		return fmt.Errorf("checkpoint: compressing: %w", err)
	}
	if err := sc.w.Close(); err != nil {
		return fmt.Errorf("checkpoint: compressing: %w", err)
	}
	return nil
}

// Write implements Storage. The compressed image is built in pooled
// scratch and handed to Inner.Write, which must not retain it (every
// Storage implementation copies at its boundary).
func (s *CompressedStorage) Write(gen uint64, rank int, state []byte) error {
	level := s.Level
	if level == 0 {
		level = flate.DefaultCompression
	}
	chunkSize := s.ChunkSize
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	if s.Shards > 1 && len(state) > chunkSize {
		return s.writeSharded(gen, rank, state, level, chunkSize)
	}
	sc := compressPool.Get().(*compressScratch)
	defer compressPool.Put(sc)
	if err := deflateInto(sc, level, state); err != nil {
		return err
	}
	s.Obs.Counter("checkpoint_raw_bytes_total").Add(uint64(len(state)))
	s.Obs.Counter("checkpoint_compressed_bytes_total").Add(uint64(sc.buf.Len()))
	return s.Inner.Write(gen, rank, sc.buf.Bytes())
}

// writeSharded compresses fixed-size chunks of state in parallel and
// frames them in the self-describing sharded container:
//
//	magic(4) | uvarint rawSize | uvarint chunkSize | uvarint nChunks |
//	nChunks × (uvarint frameLen | frameLen bytes of DEFLATE)
//
// Chunk i covers raw bytes [i·chunkSize, min((i+1)·chunkSize, rawSize)).
func (s *CompressedStorage) writeSharded(gen uint64, rank int, state []byte, level, chunkSize int) error {
	nChunks := (len(state) + chunkSize - 1) / chunkSize
	workers := s.Shards
	if workers > nChunks {
		workers = nChunks
	}
	scratches := make([]*compressScratch, nChunks)
	errs := make([]error, nChunks)
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				lo := i * chunkSize
				hi := lo + chunkSize
				if hi > len(state) {
					hi = len(state)
				}
				sc := compressPool.Get().(*compressScratch)
				scratches[i] = sc
				errs[i] = deflateInto(sc, level, state[lo:hi])
			}
		}()
	}
	for i := 0; i < nChunks; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	defer func() {
		for _, sc := range scratches {
			if sc != nil {
				compressPool.Put(sc)
			}
		}
	}()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	out := make([]byte, 0, len(shardMagic)+3*binary.MaxVarintLen64+len(state)/2)
	out = append(out, shardMagic[:]...)
	out = appendUvarint(out, uint64(len(state)))
	out = appendUvarint(out, uint64(chunkSize))
	out = appendUvarint(out, uint64(nChunks))
	for _, sc := range scratches {
		out = appendUvarint(out, uint64(sc.buf.Len()))
		out = append(out, sc.buf.Bytes()...)
	}
	s.Obs.Counter("checkpoint_raw_bytes_total").Add(uint64(len(state)))
	s.Obs.Counter("checkpoint_compressed_bytes_total").Add(uint64(len(out)))
	return s.Inner.Write(gen, rank, out)
}

// Read implements Storage. It detects the layout from the payload:
// sharded containers open with shardMagic (whose first byte is an
// invalid DEFLATE block type), anything else is a legacy single stream.
func (s *CompressedStorage) Read(gen uint64, rank int) ([]byte, error) {
	compressed, err := s.Inner.Read(gen, rank)
	if err != nil {
		return nil, err
	}
	if len(compressed) >= len(shardMagic) && bytes.Equal(compressed[:len(shardMagic)], shardMagic[:]) {
		state, err := readSharded(compressed[len(shardMagic):], s.Shards)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: decompressing gen %d rank %d: %w", gen, rank, err)
		}
		return state, nil
	}
	r := flate.NewReader(bytes.NewReader(compressed))
	defer r.Close()
	state, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: decompressing gen %d rank %d: %w", gen, rank, err)
	}
	return state, nil
}

// readSharded decodes the sharded container, decompressing chunks with
// up to shards parallel workers (minimum one).
func readSharded(payload []byte, shards int) ([]byte, error) {
	rawSize, payload, err := readUvarint(payload)
	if err != nil {
		return nil, err
	}
	chunkSize, payload, err := readUvarint(payload)
	if err != nil {
		return nil, err
	}
	nChunks, payload, err := readUvarint(payload)
	if err != nil {
		return nil, err
	}
	// Harden against crafted headers before any header-driven allocation:
	// a DEFLATE stream inflates at most ~1032× (8 bits in, one 258-byte
	// match out is the format's densest encoding), so a container whose
	// claimed raw size exceeds that bound on the bytes actually present
	// is forged or corrupt — reject it instead of allocating terabytes.
	// Likewise every chunk costs at least one frame-length byte, bounding
	// nChunks by the remaining payload. These caps also keep the
	// ceil-division below from overflowing: rawSize is now small enough
	// that rawSize+chunkSize wraps only when chunkSize is absurd, and a
	// wrapped sum yields quotient 0 ≠ nChunks, which rejects.
	const maxDeflateRatio = 1032
	if rawSize > maxDeflateRatio*uint64(len(payload))+64 {
		return nil, fmt.Errorf("checkpoint: sharded header claims %d raw bytes from %d compressed",
			rawSize, len(payload))
	}
	if nChunks > uint64(len(payload)) {
		return nil, fmt.Errorf("checkpoint: sharded header claims %d chunks in %d bytes",
			nChunks, len(payload))
	}
	if chunkSize == 0 || nChunks == 0 ||
		nChunks != (rawSize+chunkSize-1)/chunkSize {
		return nil, fmt.Errorf("checkpoint: sharded header raw=%d chunk=%d n=%d inconsistent",
			rawSize, chunkSize, nChunks)
	}
	frames := make([][]byte, nChunks)
	for i := range frames {
		var frameLen uint64
		frameLen, payload, err = readUvarint(payload)
		if err != nil {
			return nil, err
		}
		if frameLen > uint64(len(payload)) {
			return nil, fmt.Errorf("checkpoint: sharded frame %d truncated", i)
		}
		frames[i] = payload[:frameLen]
		payload = payload[frameLen:]
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes after sharded frames", len(payload))
	}
	out := make([]byte, rawSize)
	if shards < 1 {
		shards = 1
	}
	if shards > len(frames) {
		shards = len(frames)
	}
	errs := make([]error, len(frames))
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(shards)
	for w := 0; w < shards; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				lo := uint64(i) * chunkSize
				hi := lo + chunkSize
				if hi > rawSize {
					hi = rawSize
				}
				r := flate.NewReader(bytes.NewReader(frames[i]))
				n, err := io.ReadFull(r, out[lo:hi])
				if err != nil {
					errs[i] = fmt.Errorf("chunk %d: %w", i, err)
					r.Close()
					continue
				}
				// The chunk must end exactly at its frame boundary.
				var extra [1]byte
				if m, _ := r.Read(extra[:]); m != 0 {
					errs[i] = fmt.Errorf("chunk %d: longer than %d raw bytes", i, n)
				}
				r.Close()
			}
		}()
	}
	for i := range frames {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Commit implements Storage.
func (s *CompressedStorage) Commit(gen uint64, n int) error { return s.Inner.Commit(gen, n) }

// Latest implements Storage.
func (s *CompressedStorage) Latest() (uint64, int, bool, error) { return s.Inner.Latest() }

// Drop implements Storage.
func (s *CompressedStorage) Drop(gen uint64) error { return s.Inner.Drop(gen) }
