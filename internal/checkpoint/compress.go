package checkpoint

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"

	"repro/internal/obs"
)

// CompressedStorage wraps a Storage and DEFLATE-compresses rank images on
// the way in — the "checkpoint compression" optimisation the paper
// surveys (§2): "a method for reducing the checkpoint latency by reducing
// the size of process images before writing them to stable storage."
// Compression composes with incremental encoding (compress the deltas).
type CompressedStorage struct {
	// Inner is the backing store.
	Inner Storage
	// Level is the flate level; zero means flate.DefaultCompression.
	Level int
	// Obs, when non-nil, accumulates checkpoint_raw_bytes_total and
	// checkpoint_compressed_bytes_total; their ratio is the achieved
	// compression ratio. Writes are rare, so counters resolve lazily.
	Obs *obs.Registry
}

var _ Storage = (*CompressedStorage)(nil)

// NewCompressedStorage wraps inner with default compression.
func NewCompressedStorage(inner Storage) *CompressedStorage {
	return &CompressedStorage{Inner: inner, Level: flate.DefaultCompression}
}

// Write implements Storage.
func (s *CompressedStorage) Write(gen uint64, rank int, state []byte) error {
	level := s.Level
	if level == 0 {
		level = flate.DefaultCompression
	}
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, level)
	if err != nil {
		return fmt.Errorf("checkpoint: compressor: %w", err)
	}
	if _, err := w.Write(state); err != nil {
		return fmt.Errorf("checkpoint: compressing: %w", err)
	}
	if err := w.Close(); err != nil {
		return fmt.Errorf("checkpoint: compressing: %w", err)
	}
	s.Obs.Counter("checkpoint_raw_bytes_total").Add(uint64(len(state)))
	s.Obs.Counter("checkpoint_compressed_bytes_total").Add(uint64(buf.Len()))
	return s.Inner.Write(gen, rank, buf.Bytes())
}

// Read implements Storage.
func (s *CompressedStorage) Read(gen uint64, rank int) ([]byte, error) {
	compressed, err := s.Inner.Read(gen, rank)
	if err != nil {
		return nil, err
	}
	r := flate.NewReader(bytes.NewReader(compressed))
	defer r.Close()
	state, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: decompressing gen %d rank %d: %w", gen, rank, err)
	}
	return state, nil
}

// Commit implements Storage.
func (s *CompressedStorage) Commit(gen uint64, n int) error { return s.Inner.Commit(gen, n) }

// Latest implements Storage.
func (s *CompressedStorage) Latest() (uint64, int, bool, error) { return s.Inner.Latest() }

// Drop implements Storage.
func (s *CompressedStorage) Drop(gen uint64) error { return s.Inner.Drop(gen) }
