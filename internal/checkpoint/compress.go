package checkpoint

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"

	"repro/internal/obs"
)

// compressScratch pools the per-Write compression state. Both pieces are
// reset-and-reused: checkpoint writers fire on every interval, and the
// flate.Writer alone is tens of kilobytes of window state.
type compressScratch struct {
	buf   bytes.Buffer
	w     *flate.Writer
	level int // the level w was built with; Reset cannot change it
}

var compressPool = sync.Pool{New: func() any { return new(compressScratch) }}

// CompressedStorage wraps a Storage and DEFLATE-compresses rank images on
// the way in — the "checkpoint compression" optimisation the paper
// surveys (§2): "a method for reducing the checkpoint latency by reducing
// the size of process images before writing them to stable storage."
// Compression composes with incremental encoding (compress the deltas).
type CompressedStorage struct {
	// Inner is the backing store.
	Inner Storage
	// Level is the flate level; zero means flate.DefaultCompression.
	Level int
	// Obs, when non-nil, accumulates checkpoint_raw_bytes_total and
	// checkpoint_compressed_bytes_total; their ratio is the achieved
	// compression ratio. Writes are rare, so counters resolve lazily.
	Obs *obs.Registry
}

var _ Storage = (*CompressedStorage)(nil)

// NewCompressedStorage wraps inner with default compression.
func NewCompressedStorage(inner Storage) *CompressedStorage {
	return &CompressedStorage{Inner: inner, Level: flate.DefaultCompression}
}

// Write implements Storage. The compressed image is built in pooled
// scratch and handed to Inner.Write, which must not retain it (every
// Storage implementation copies at its boundary).
func (s *CompressedStorage) Write(gen uint64, rank int, state []byte) error {
	level := s.Level
	if level == 0 {
		level = flate.DefaultCompression
	}
	sc := compressPool.Get().(*compressScratch)
	defer compressPool.Put(sc)
	sc.buf.Reset()
	if sc.w == nil || sc.level != level {
		w, err := flate.NewWriter(&sc.buf, level)
		if err != nil {
			return fmt.Errorf("checkpoint: compressor: %w", err)
		}
		sc.w, sc.level = w, level
	} else {
		sc.w.Reset(&sc.buf)
	}
	if _, err := sc.w.Write(state); err != nil {
		return fmt.Errorf("checkpoint: compressing: %w", err)
	}
	if err := sc.w.Close(); err != nil {
		return fmt.Errorf("checkpoint: compressing: %w", err)
	}
	s.Obs.Counter("checkpoint_raw_bytes_total").Add(uint64(len(state)))
	s.Obs.Counter("checkpoint_compressed_bytes_total").Add(uint64(sc.buf.Len()))
	return s.Inner.Write(gen, rank, sc.buf.Bytes())
}

// Read implements Storage.
func (s *CompressedStorage) Read(gen uint64, rank int) ([]byte, error) {
	compressed, err := s.Inner.Read(gen, rank)
	if err != nil {
		return nil, err
	}
	r := flate.NewReader(bytes.NewReader(compressed))
	defer r.Close()
	state, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: decompressing gen %d rank %d: %w", gen, rank, err)
	}
	return state, nil
}

// Commit implements Storage.
func (s *CompressedStorage) Commit(gen uint64, n int) error { return s.Inner.Commit(gen, n) }

// Latest implements Storage.
func (s *CompressedStorage) Latest() (uint64, int, bool, error) { return s.Inner.Latest() }

// Drop implements Storage.
func (s *CompressedStorage) Drop(gen uint64) error { return s.Inner.Drop(gen) }
