// Package checkpoint provides the coordinated checkpoint/restart service
// of the reproduction, substituting for BLCR + Open MPI's checkpoint
// coordination in the paper's experiments: a stable-storage abstraction
// with atomic generation commit, a bookmark-exchange quiescence check
// modeled on Open MPI's PML bookmark protocol ("Processes exchange
// message totals between all peers and wait until the totals equalize"),
// and a per-rank client that coordinates snapshots and restores.
//
// Checkpoints are application-level: the application serialises its own
// state at iteration boundaries (the paper's apps are
// iteration-structured; BLCR would capture the same state plus incidental
// process noise).
package checkpoint

import (
	"errors"
	"fmt"
	"sync"
)

// Storage is stable storage for checkpoint generations: "an abstraction
// for some storage devices ensuring that recovery data persists through
// failures" (paper §2). A generation becomes visible to restarts only
// after Commit, so a failure mid-checkpoint can never leave a
// half-written restart image.
type Storage interface {
	// Write stores one rank's state under the (not yet committed)
	// generation gen. Writing the same (gen, rank) twice overwrites;
	// replicas of a rank may race benignly since their states are
	// identical.
	Write(gen uint64, rank int, state []byte) error
	// Commit atomically publishes generation gen covering ranks [0, n).
	// Commit of an already-committed generation is a no-op.
	Commit(gen uint64, n int) error
	// Latest returns the newest committed generation and its rank count.
	// ok is false when nothing has been committed.
	Latest() (gen uint64, n int, ok bool, err error)
	// Read returns rank's state from committed generation gen.
	Read(gen uint64, rank int) ([]byte, error)
	// Drop removes a generation (committed or not); restarts keep only
	// the newest image, mirroring how HPC sites garbage-collect dumps.
	Drop(gen uint64) error
}

// Settler is the optional capability of storage tiers whose writes send
// asynchronous traffic of their own (the peer store's replicate
// frames). The checkpoint client's drain path calls Settle after waiting
// for its in-flight writes, so "drained" also means the tier's sends
// have landed, not just been issued. Settle must bound its wait: frames
// addressed to ranks that died mid-send never arrive.
type Settler interface {
	Settle()
}

// Errors returned by storage implementations.
var (
	// ErrNoCheckpoint reports that no committed generation exists.
	ErrNoCheckpoint = errors.New("checkpoint: no committed generation")
	// ErrNotCommitted reports a read of an uncommitted generation.
	ErrNotCommitted = errors.New("checkpoint: generation not committed")
	// ErrIncomplete reports a commit over missing rank states.
	ErrIncomplete = errors.New("checkpoint: generation missing rank states")
)

// MemStorage is an in-process Storage used by the functional test stack
// (every rank is a goroutine in one process, so memory shared across
// goroutines is "stable" with respect to injected rank failures — only a
// whole-process crash loses it, which the model charges to the restart
// path anyway).
type MemStorage struct {
	mu        sync.Mutex
	states    map[uint64]map[int][]byte
	committed map[uint64]int
	latest    uint64
	hasLatest bool
}

var _ Storage = (*MemStorage)(nil)

// NewMemStorage returns an empty in-memory store.
func NewMemStorage() *MemStorage {
	return &MemStorage{
		states:    make(map[uint64]map[int][]byte),
		committed: make(map[uint64]int),
	}
}

// Write implements Storage.
func (s *MemStorage) Write(gen uint64, rank int, state []byte) error {
	if rank < 0 {
		return fmt.Errorf("checkpoint: write rank %d", rank)
	}
	buf := make([]byte, len(state))
	copy(buf, state)
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.states[gen]
	if g == nil {
		g = make(map[int][]byte)
		s.states[gen] = g
	}
	g[rank] = buf
	return nil
}

// Commit implements Storage.
func (s *MemStorage) Commit(gen uint64, n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.committed[gen]; ok {
		return nil
	}
	g := s.states[gen]
	for rank := 0; rank < n; rank++ {
		if _, ok := g[rank]; !ok {
			return fmt.Errorf("commit gen %d: rank %d: %w", gen, rank, ErrIncomplete)
		}
	}
	s.committed[gen] = n
	if !s.hasLatest || gen > s.latest {
		s.latest = gen
		s.hasLatest = true
	}
	return nil
}

// Latest implements Storage.
func (s *MemStorage) Latest() (uint64, int, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.hasLatest {
		return 0, 0, false, nil
	}
	return s.latest, s.committed[s.latest], true, nil
}

// Read implements Storage.
func (s *MemStorage) Read(gen uint64, rank int) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.committed[gen]; !ok {
		return nil, fmt.Errorf("read gen %d: %w", gen, ErrNotCommitted)
	}
	state, ok := s.states[gen][rank]
	if !ok {
		return nil, fmt.Errorf("read gen %d rank %d: %w", gen, rank, ErrNoCheckpoint)
	}
	out := make([]byte, len(state))
	copy(out, state)
	return out, nil
}

// Drop implements Storage.
func (s *MemStorage) Drop(gen uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.states, gen)
	delete(s.committed, gen)
	if s.hasLatest && gen == s.latest {
		s.hasLatest = false
		s.latest = 0
		for g := range s.committed {
			if !s.hasLatest || g > s.latest {
				s.latest = g
				s.hasLatest = true
			}
		}
	}
	return nil
}
