package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"sync"
)

// FileStorage is a directory-backed Storage with the layout
//
//	<dir>/gen-<n>/rank-<i>.ckpt
//	<dir>/gen-<n>/COMMIT        (JSON manifest, written via tmp+rename)
//
// Rank images are written to a temporary name and renamed into place, and
// the COMMIT manifest is the atomic publication point, so readers never
// observe a torn generation — the property "stable storage" demands.
type FileStorage struct {
	dir string
	mu  sync.Mutex
}

var _ Storage = (*FileStorage)(nil)

// commitManifest is the COMMIT file payload.
type commitManifest struct {
	Generation uint64 `json:"generation"`
	Ranks      int    `json:"ranks"`
}

// NewFileStorage creates (if needed) and opens a checkpoint directory.
func NewFileStorage(dir string) (*FileStorage, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: creating %s: %w", dir, err)
	}
	return &FileStorage{dir: dir}, nil
}

func (s *FileStorage) genDir(gen uint64) string {
	return filepath.Join(s.dir, "gen-"+strconv.FormatUint(gen, 10))
}

func (s *FileStorage) rankPath(gen uint64, rank int) string {
	return filepath.Join(s.genDir(gen), "rank-"+strconv.Itoa(rank)+".ckpt")
}

// Write implements Storage.
func (s *FileStorage) Write(gen uint64, rank int, state []byte) error {
	if rank < 0 {
		return fmt.Errorf("checkpoint: write rank %d", rank)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := s.genDir(gen)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "rank-*.tmp")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(state); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("checkpoint: writing image: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(name, s.rankPath(gen, rank)); err != nil {
		os.Remove(name)
		return fmt.Errorf("checkpoint: publishing image: %w", err)
	}
	return nil
}

// Commit implements Storage.
func (s *FileStorage) Commit(gen uint64, n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	commitPath := filepath.Join(s.genDir(gen), "COMMIT")
	if _, err := os.Stat(commitPath); err == nil {
		return nil // already committed
	}
	for rank := 0; rank < n; rank++ {
		if _, err := os.Stat(s.rankPath(gen, rank)); err != nil {
			return fmt.Errorf("commit gen %d rank %d: %w", gen, rank, ErrIncomplete)
		}
	}
	payload, err := json.Marshal(commitManifest{Generation: gen, Ranks: n})
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	// The mutex only serialises committers in this process; under the
	// proc transport every worker process holds its own FileStorage over
	// the same directory, so the tmp name must be unique per committer
	// and losing a commit race to a peer is success, not failure.
	tmp, err := os.CreateTemp(s.genDir(gen), "COMMIT-*.tmp")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(name, commitPath); err != nil {
		os.Remove(name)
		if _, statErr := os.Stat(commitPath); statErr == nil {
			return nil // a concurrent process committed first
		}
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// Latest implements Storage.
func (s *FileStorage) Latest() (uint64, int, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, 0, false, fmt.Errorf("checkpoint: %w", err)
	}
	var best uint64
	bestRanks := 0
	found := false
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		gen, ok := parseGenDir(e.Name())
		if !ok {
			continue
		}
		manifest, err := s.readManifest(gen)
		if errors.Is(err, fs.ErrNotExist) {
			continue // uncommitted
		}
		if err != nil {
			return 0, 0, false, err
		}
		if !found || gen > best {
			best, bestRanks, found = gen, manifest.Ranks, true
		}
	}
	return best, bestRanks, found, nil
}

func parseGenDir(name string) (uint64, bool) {
	const prefix = "gen-"
	if len(name) <= len(prefix) || name[:len(prefix)] != prefix {
		return 0, false
	}
	gen, err := strconv.ParseUint(name[len(prefix):], 10, 64)
	return gen, err == nil
}

func (s *FileStorage) readManifest(gen uint64) (commitManifest, error) {
	raw, err := os.ReadFile(filepath.Join(s.genDir(gen), "COMMIT"))
	if err != nil {
		return commitManifest{}, err
	}
	var m commitManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return commitManifest{}, fmt.Errorf("checkpoint: corrupt manifest gen %d: %w", gen, err)
	}
	return m, nil
}

// Read implements Storage.
func (s *FileStorage) Read(gen uint64, rank int) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.readManifest(gen); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("read gen %d: %w", gen, ErrNotCommitted)
		}
		return nil, err
	}
	state, err := os.ReadFile(s.rankPath(gen, rank))
	if err != nil {
		return nil, fmt.Errorf("read gen %d rank %d: %w", gen, rank, ErrNoCheckpoint)
	}
	return state, nil
}

// Drop implements Storage.
func (s *FileStorage) Drop(gen uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.RemoveAll(s.genDir(gen)); err != nil {
		return fmt.Errorf("checkpoint: dropping gen %d: %w", gen, err)
	}
	return nil
}
