package checkpoint

import (
	"bytes"
	"testing"
)

// fuzzContainer builds a genuine container for seeding: state written
// through CompressedStorage with the given sharding config, read back
// raw from the inner store.
func fuzzContainer(t testing.TB, state []byte, shards, chunkSize int) []byte {
	inner := NewMemStorage()
	cs := &CompressedStorage{Inner: inner, Shards: shards, ChunkSize: chunkSize}
	if err := cs.Write(1, 0, state); err != nil {
		t.Fatalf("seed write: %v", err)
	}
	if err := inner.Commit(1, 1); err != nil {
		t.Fatalf("seed commit: %v", err)
	}
	raw, err := inner.Read(1, 0)
	if err != nil {
		t.Fatalf("seed readback: %v", err)
	}
	return raw
}

// FuzzShardedFrameDecode drives CompressedStorage.Read's layout
// autodetect path (sharded container vs legacy single stream) with
// arbitrary stored payloads. The decoder must never panic and never
// trust header-claimed sizes: a crafted rawSize/chunkSize/nChunks far
// beyond what the present bytes could inflate to must be rejected
// before allocation (the maxDeflateRatio and per-chunk-byte caps in
// readSharded), not after the OOM. When a mutated container still
// decodes, decoding it twice must agree — the path is deterministic.
func FuzzShardedFrameDecode(f *testing.F) {
	// Golden corpus: real containers across layouts — single-stream,
	// sharded multi-chunk, sharded with a ragged tail chunk, one-byte
	// and incompressible states — plus truncations and header edits.
	patterned := make([]byte, 8192)
	for i := range patterned {
		patterned[i] = byte(i % 251)
	}
	incompressible := make([]byte, 4096)
	x := uint32(2463534242)
	for i := range incompressible {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		incompressible[i] = byte(x)
	}
	seeds := [][]byte{
		fuzzContainer(f, patterned, 1, 0),           // legacy single stream
		fuzzContainer(f, patterned, 4, 1024),        // 8 even chunks
		fuzzContainer(f, patterned[:5000], 4, 1024), // ragged tail chunk
		fuzzContainer(f, []byte{42}, 4, 1024),       // below one chunk: single stream
		fuzzContainer(f, incompressible, 2, 1024),   // stored-block heavy frames
		fuzzContainer(f, nil, 2, 512),
	}
	for _, s := range seeds {
		f.Add(s)
		if len(s) > 8 {
			f.Add(s[:len(s)/2]) // truncated container
			mut := bytes.Clone(s)
			mut[5] ^= 0xFF // corrupt the size header region
			f.Add(mut)
		}
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		inner := NewMemStorage()
		if err := inner.Write(7, 0, payload); err != nil {
			t.Fatal(err)
		}
		if err := inner.Commit(7, 1); err != nil {
			t.Fatal(err)
		}
		cs := &CompressedStorage{Inner: inner, Shards: 4}
		got, err := cs.Read(7, 0)
		if err != nil {
			return // rejected: fine, as long as we didn't panic or OOM
		}
		again, err := cs.Read(7, 0)
		if err != nil {
			t.Fatalf("decode succeeded then failed on identical payload: %v", err)
		}
		if !bytes.Equal(got, again) {
			t.Fatalf("non-deterministic decode: %d bytes vs %d bytes", len(got), len(again))
		}
	})
}

// TestShardedHeaderBombRejected pins the decoder's header hardening
// deterministically: containers whose headers claim absurd sizes must be
// rejected by inspection — before the rawSize allocation — not by
// running out of memory.
func TestShardedHeaderBombRejected(t *testing.T) {
	craft := func(rawSize, chunkSize, nChunks uint64, tail []byte) []byte {
		p := append([]byte{}, shardMagic[:]...)
		p = appendUvarint(p, rawSize)
		p = appendUvarint(p, chunkSize)
		p = appendUvarint(p, nChunks)
		return append(p, tail...)
	}
	bombs := map[string][]byte{
		// 1 EiB claimed from a 1-frame payload: caught by the deflate
		// expansion cap.
		"huge rawSize": craft(1<<60, 1<<60, 1, []byte{1, 0}),
		// rawSize+chunkSize wraps uint64 so the old ceil-division
		// consistency check would have passed with a tiny quotient.
		"overflowing chunkSize": craft(1000, ^uint64(0)-1, 1, []byte{1, 0}),
		// 16M one-byte chunks claimed in a 64 KiB payload: the raw size
		// passes the expansion cap, so this one must be caught by the
		// chunk-count bound before the 16M-entry frame table is built.
		"huge nChunks": craft(1<<24, 1, 1<<24, make([]byte, 64<<10)),
	}
	for name, payload := range bombs {
		inner := NewMemStorage()
		if err := inner.Write(1, 0, payload); err != nil {
			t.Fatal(err)
		}
		if err := inner.Commit(1, 1); err != nil {
			t.Fatal(err)
		}
		cs := &CompressedStorage{Inner: inner, Shards: 4}
		if _, err := cs.Read(1, 0); err == nil {
			t.Errorf("%s: crafted header accepted", name)
		}
	}
}

// FuzzShardedRoundTrip fuzzes the write side: any state must survive a
// compress/decompress round trip bit-exactly under every layout the
// writer can emit, including chunk sizes that force ragged tails.
func FuzzShardedRoundTrip(f *testing.F) {
	f.Add([]byte(nil), uint8(1), uint16(0))
	f.Add([]byte("hello sharded world"), uint8(3), uint16(7))
	f.Add(bytes.Repeat([]byte{0xAB}, 5000), uint8(4), uint16(1024))
	f.Fuzz(func(t *testing.T, state []byte, shards uint8, chunkSize uint16) {
		inner := NewMemStorage()
		cs := &CompressedStorage{
			Inner:     inner,
			Shards:    int(shards % 8),
			ChunkSize: int(chunkSize),
		}
		if err := cs.Write(1, 0, state); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := inner.Commit(1, 1); err != nil {
			t.Fatalf("commit: %v", err)
		}
		got, err := cs.Read(1, 0)
		if err != nil {
			t.Fatalf("read back: %v", err)
		}
		if !bytes.Equal(got, state) {
			t.Fatalf("round trip changed state: %d bytes in, %d out", len(state), len(got))
		}
	})
}
