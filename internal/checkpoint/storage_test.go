package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

// storageUnderTest runs the same conformance suite against both backends.
func storageUnderTest(t *testing.T, name string, make func(t *testing.T) Storage) {
	t.Run(name+"/WriteCommitRead", func(t *testing.T) {
		s := make(t)
		for rank := 0; rank < 3; rank++ {
			if err := s.Write(1, rank, []byte{byte(rank), 0xAA}); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Commit(1, 3); err != nil {
			t.Fatal(err)
		}
		for rank := 0; rank < 3; rank++ {
			state, err := s.Read(1, rank)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(state, []byte{byte(rank), 0xAA}) {
				t.Fatalf("rank %d state %v", rank, state)
			}
		}
	})

	t.Run(name+"/LatestTracksNewest", func(t *testing.T) {
		s := make(t)
		if _, _, ok, err := s.Latest(); err != nil || ok {
			t.Fatalf("empty store Latest = ok=%v err=%v", ok, err)
		}
		for gen := uint64(1); gen <= 3; gen++ {
			if err := s.Write(gen, 0, []byte{byte(gen)}); err != nil {
				t.Fatal(err)
			}
			if err := s.Commit(gen, 1); err != nil {
				t.Fatal(err)
			}
		}
		gen, n, ok, err := s.Latest()
		if err != nil || !ok || gen != 3 || n != 1 {
			t.Fatalf("Latest = %d/%d/%v/%v", gen, n, ok, err)
		}
	})

	t.Run(name+"/CommitRequiresAllRanks", func(t *testing.T) {
		s := make(t)
		if err := s.Write(1, 0, []byte("only rank 0")); err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(1, 2); !errors.Is(err, ErrIncomplete) {
			t.Fatalf("partial commit err = %v, want ErrIncomplete", err)
		}
	})

	t.Run(name+"/ReadUncommittedFails", func(t *testing.T) {
		s := make(t)
		if err := s.Write(7, 0, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Read(7, 0); !errors.Is(err, ErrNotCommitted) {
			t.Fatalf("read uncommitted err = %v", err)
		}
	})

	t.Run(name+"/CommitIdempotent", func(t *testing.T) {
		s := make(t)
		if err := s.Write(1, 0, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(1, 1); err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(1, 1); err != nil {
			t.Fatalf("re-commit err = %v", err)
		}
	})

	t.Run(name+"/OverwriteIsBenign", func(t *testing.T) {
		s := make(t)
		// Replicas of a rank may both write identical state.
		if err := s.Write(1, 0, []byte("state")); err != nil {
			t.Fatal(err)
		}
		if err := s.Write(1, 0, []byte("state")); err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(1, 1); err != nil {
			t.Fatal(err)
		}
		got, err := s.Read(1, 0)
		if err != nil || string(got) != "state" {
			t.Fatalf("read %q err %v", got, err)
		}
	})

	t.Run(name+"/DropRetreatsLatest", func(t *testing.T) {
		s := make(t)
		for gen := uint64(1); gen <= 2; gen++ {
			if err := s.Write(gen, 0, []byte{byte(gen)}); err != nil {
				t.Fatal(err)
			}
			if err := s.Commit(gen, 1); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Drop(2); err != nil {
			t.Fatal(err)
		}
		gen, _, ok, err := s.Latest()
		if err != nil || !ok || gen != 1 {
			t.Fatalf("after drop: Latest = %d/%v/%v", gen, ok, err)
		}
		if err := s.Drop(1); err != nil {
			t.Fatal(err)
		}
		if _, _, ok, _ := s.Latest(); ok {
			t.Fatal("store should be empty after dropping everything")
		}
	})

	t.Run(name+"/ReadMissingRank", func(t *testing.T) {
		s := make(t)
		if err := s.Write(1, 0, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(1, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Read(1, 5); !errors.Is(err, ErrNoCheckpoint) {
			t.Fatalf("missing rank err = %v", err)
		}
	})

	t.Run(name+"/WriteRejectsNegativeRank", func(t *testing.T) {
		s := make(t)
		if err := s.Write(1, -1, nil); err == nil {
			t.Fatal("negative rank accepted")
		}
	})
}

func TestMemStorage(t *testing.T) {
	storageUnderTest(t, "mem", func(t *testing.T) Storage { return NewMemStorage() })
}

func TestFileStorage(t *testing.T) {
	storageUnderTest(t, "file", func(t *testing.T) Storage {
		s, err := NewFileStorage(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
}

func TestMemStorageIsolatesBuffers(t *testing.T) {
	s := NewMemStorage()
	buf := []byte("mutable")
	if err := s.Write(1, 0, buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "XXXXXXX")
	if err := s.Commit(1, 1); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "mutable" {
		t.Fatalf("storage aliased caller buffer: %q", got)
	}
	// Mutating the returned buffer must not poison the store.
	got[0] = 'Z'
	again, err := s.Read(1, 0)
	if err != nil || string(again) != "mutable" {
		t.Fatalf("reread %q err %v", again, err)
	}
}

func TestFileStorageSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewFileStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Write(4, 0, []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	if err := s1.Commit(4, 1); err != nil {
		t.Fatal(err)
	}
	// A restart opens a new handle over the same directory.
	s2, err := NewFileStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	gen, n, ok, err := s2.Latest()
	if err != nil || !ok || gen != 4 || n != 1 {
		t.Fatalf("Latest after reopen = %d/%d/%v/%v", gen, n, ok, err)
	}
	state, err := s2.Read(4, 0)
	if err != nil || string(state) != "persisted" {
		t.Fatalf("read %q err %v", state, err)
	}
}

func TestParseGenDir(t *testing.T) {
	cases := []struct {
		name string
		gen  uint64
		ok   bool
	}{
		{"gen-0", 0, true},
		{"gen-17", 17, true},
		{"gen-", 0, false},
		{"gen-x", 0, false},
		{"other", 0, false},
	}
	for _, tc := range cases {
		gen, ok := parseGenDir(tc.name)
		if gen != tc.gen || ok != tc.ok {
			t.Errorf("parseGenDir(%q) = %d/%v, want %d/%v", tc.name, gen, ok, tc.gen, tc.ok)
		}
	}
}

func TestUint64Codec(t *testing.T) {
	f := func(vs []uint64) bool {
		got, err := decodeUint64s(encodeUint64s(vs))
		if err != nil || len(got) != len(vs) {
			return false
		}
		for i := range vs {
			if got[i] != vs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := decodeUint64s(make([]byte, 3)); err == nil {
		t.Error("ragged payload accepted")
	}
	if _, err := decodeUint64(encodeUint64s([]uint64{1, 2})); err == nil {
		t.Error("two-value payload accepted as scalar")
	}
	v, err := decodeUint64(encodeUint64(42))
	if err != nil || v != 42 {
		t.Errorf("scalar round trip = %d/%v", v, err)
	}
}

func TestStoragePropertyRoundTrip(t *testing.T) {
	s := NewMemStorage()
	f := func(genRaw uint8, rankRaw uint8, state []byte) bool {
		gen := uint64(genRaw)
		rank := int(rankRaw % 16)
		if err := s.Write(gen, rank, state); err != nil {
			return false
		}
		// Commit over just this rank requires ranks [0, rank] present;
		// fill the gaps.
		for r := 0; r < rank; r++ {
			if err := s.Write(gen, r, nil); err != nil {
				return false
			}
		}
		if err := s.Commit(gen, rank+1); err != nil {
			return false
		}
		got, err := s.Read(gen, rank)
		return err == nil && bytes.Equal(got, state)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFileStorageCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(1, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(1, 1); err != nil {
		t.Fatal(err)
	}
	// Corrupt the COMMIT manifest; Latest must surface an error, not
	// silently treat the generation as valid.
	if err := writeFileHelper(fmt.Sprintf("%s/gen-1/COMMIT", dir), []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.Latest(); err == nil {
		t.Fatal("corrupt manifest not detected")
	}
}

func TestFileStorageConcurrentCommitAcrossHandles(t *testing.T) {
	// Under the proc transport every worker process opens its own
	// FileStorage over the shared directory, so the in-process mutex
	// offers no protection between committers. Hammer one generation
	// from many independent handles: every Commit must succeed (losing
	// the publication race to a peer is success).
	dir := t.TempDir()
	writer, err := NewFileStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	const ranks = 4
	for r := 0; r < ranks; r++ {
		if err := writer.Write(3, r, []byte{byte(r)}); err != nil {
			t.Fatal(err)
		}
	}
	const committers = 8
	errs := make([]error, committers)
	var wg sync.WaitGroup
	for i := 0; i < committers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := NewFileStorage(dir)
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = s.Commit(3, ranks)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("committer %d: %v", i, err)
		}
	}
	gen, n, ok, err := writer.Latest()
	if err != nil || !ok || gen != 3 || n != ranks {
		t.Fatalf("Latest = (%d, %d, %v, %v), want (3, %d, true, nil)", gen, n, ok, err, ranks)
	}
	// No orphaned tmp files survive the race.
	entries, err := os.ReadDir(fmt.Sprintf("%s/gen-3", dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("orphaned tmp file %s", e.Name())
		}
	}
}
