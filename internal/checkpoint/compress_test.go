package checkpoint

import (
	"bytes"
	"strings"
	"testing"
)

// The decompression error paths matter operationally: a restart that
// silently restores an empty or truncated image is far worse than one
// that fails loudly and falls back to an older generation. Each case
// must surface a decode error — never a nil-error short read.

func TestCompressedTruncatedStreamIsAnError(t *testing.T) {
	inner := NewMemStorage()
	s := NewCompressedStorage(inner)
	state := bytes.Repeat([]byte("snapshot-data-"), 200)
	if err := s.Write(3, 0, state); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(3, 1); err != nil {
		t.Fatal(err)
	}
	compressed, err := inner.Read(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(compressed) < 8 {
		t.Fatalf("sanity: compressed image only %d bytes", len(compressed))
	}
	// Simulate a partial write: keep only the first half of the stream.
	if err := inner.Write(3, 0, compressed[:len(compressed)/2]); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(3, 0)
	if err == nil {
		t.Fatalf("truncated stream restored %d bytes with nil error", len(got))
	}
	if !strings.Contains(err.Error(), "decompressing gen 3 rank 0") {
		t.Errorf("error %q does not identify the generation and rank", err)
	}
}

func TestCompressedEmptyStreamIsAnError(t *testing.T) {
	inner := NewMemStorage()
	s := NewCompressedStorage(inner)
	if err := inner.Write(1, 0, []byte{}); err != nil {
		t.Fatal(err)
	}
	if err := inner.Commit(1, 1); err != nil {
		t.Fatal(err)
	}
	if state, err := s.Read(1, 0); err == nil {
		t.Fatalf("empty stream restored %d bytes with nil error", len(state))
	}
}

func TestCompressedSingleBitFlipIsAnError(t *testing.T) {
	inner := NewMemStorage()
	s := NewCompressedStorage(inner)
	// Low-entropy state compresses hard, so a mid-stream bit flip lands
	// inside the Huffman-coded body rather than a stored block.
	state := bytes.Repeat([]byte{0xAB}, 4096)
	if err := s.Write(2, 0, state); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(2, 1); err != nil {
		t.Fatal(err)
	}
	compressed, err := inner.Read(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	flipped := make([]byte, len(compressed))
	copy(flipped, compressed)
	flipped[len(flipped)/2] ^= 0x40
	if err := inner.Write(2, 0, flipped); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(2, 0)
	if err == nil && bytes.Equal(got, state) {
		t.Skip("bit flip landed in a spot flate tolerates; corruption detection is best-effort")
	}
	if err == nil {
		t.Fatalf("corrupt stream decoded to %d wrong bytes with nil error", len(got))
	}
}

func TestCompressedReadPropagatesInnerErrors(t *testing.T) {
	s := NewCompressedStorage(NewMemStorage())
	if _, err := s.Read(9, 0); err == nil {
		t.Fatal("read of a generation that was never written must fail")
	}
}
