package checkpoint

import (
	"bytes"
	"strings"
	"testing"
)

// The decompression error paths matter operationally: a restart that
// silently restores an empty or truncated image is far worse than one
// that fails loudly and falls back to an older generation. Each case
// must surface a decode error — never a nil-error short read.

func TestCompressedTruncatedStreamIsAnError(t *testing.T) {
	inner := NewMemStorage()
	s := NewCompressedStorage(inner)
	state := bytes.Repeat([]byte("snapshot-data-"), 200)
	if err := s.Write(3, 0, state); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(3, 1); err != nil {
		t.Fatal(err)
	}
	compressed, err := inner.Read(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(compressed) < 8 {
		t.Fatalf("sanity: compressed image only %d bytes", len(compressed))
	}
	// Simulate a partial write: keep only the first half of the stream.
	if err := inner.Write(3, 0, compressed[:len(compressed)/2]); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(3, 0)
	if err == nil {
		t.Fatalf("truncated stream restored %d bytes with nil error", len(got))
	}
	if !strings.Contains(err.Error(), "decompressing gen 3 rank 0") {
		t.Errorf("error %q does not identify the generation and rank", err)
	}
}

func TestCompressedEmptyStreamIsAnError(t *testing.T) {
	inner := NewMemStorage()
	s := NewCompressedStorage(inner)
	if err := inner.Write(1, 0, []byte{}); err != nil {
		t.Fatal(err)
	}
	if err := inner.Commit(1, 1); err != nil {
		t.Fatal(err)
	}
	if state, err := s.Read(1, 0); err == nil {
		t.Fatalf("empty stream restored %d bytes with nil error", len(state))
	}
}

func TestCompressedSingleBitFlipIsAnError(t *testing.T) {
	inner := NewMemStorage()
	s := NewCompressedStorage(inner)
	// Low-entropy state compresses hard, so a mid-stream bit flip lands
	// inside the Huffman-coded body rather than a stored block.
	state := bytes.Repeat([]byte{0xAB}, 4096)
	if err := s.Write(2, 0, state); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(2, 1); err != nil {
		t.Fatal(err)
	}
	compressed, err := inner.Read(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	flipped := make([]byte, len(compressed))
	copy(flipped, compressed)
	flipped[len(flipped)/2] ^= 0x40
	if err := inner.Write(2, 0, flipped); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(2, 0)
	if err == nil && bytes.Equal(got, state) {
		t.Skip("bit flip landed in a spot flate tolerates; corruption detection is best-effort")
	}
	if err == nil {
		t.Fatalf("corrupt stream decoded to %d wrong bytes with nil error", len(got))
	}
}

func TestCompressedReadPropagatesInnerErrors(t *testing.T) {
	s := NewCompressedStorage(NewMemStorage())
	if _, err := s.Read(9, 0); err == nil {
		t.Fatal("read of a generation that was never written must fail")
	}
}

// Sharded-layout coverage. The container must round-trip, interoperate
// with the single-stream layout in both directions, and fail loudly on
// corruption — same bar as the legacy paths above.

// shardedTestState builds a compressible-but-not-trivial image.
func shardedTestState(n int) []byte {
	state := make([]byte, n)
	for i := range state {
		state[i] = byte(i * 31 / 7)
	}
	return state
}

func TestShardedRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name      string
		size      int
		shards    int
		chunkSize int
	}{
		{"even-chunks", 64 * 1024, 4, 16 * 1024},
		{"ragged-tail", 64*1024 + 123, 4, 16 * 1024},
		{"more-shards-than-chunks", 3 * 1024, 8, 1024},
		{"single-byte-tail", 2*1024 + 1, 2, 1024},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inner := NewMemStorage()
			s := &CompressedStorage{Inner: inner, Shards: tc.shards, ChunkSize: tc.chunkSize}
			state := shardedTestState(tc.size)
			if err := s.Write(1, 0, state); err != nil {
				t.Fatal(err)
			}
			if err := s.Commit(1, 1); err != nil {
				t.Fatal(err)
			}
			stored, err := inner.Read(1, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.HasPrefix(stored, shardMagic[:]) {
				t.Fatal("large image did not use the sharded container")
			}
			got, err := s.Read(1, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, state) {
				t.Fatal("sharded round trip mismatch")
			}
		})
	}
}

func TestShardedSmallImageStaysSingleStream(t *testing.T) {
	inner := NewMemStorage()
	s := &CompressedStorage{Inner: inner, Shards: 4, ChunkSize: 16 * 1024}
	state := shardedTestState(1024) // <= one chunk
	if err := s.Write(1, 0, state); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(1, 1); err != nil {
		t.Fatal(err)
	}
	stored, err := inner.Read(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.HasPrefix(stored, shardMagic[:]) {
		t.Fatal("small image was sharded")
	}
	got, err := s.Read(1, 0)
	if err != nil || !bytes.Equal(got, state) {
		t.Fatalf("round trip: %v", err)
	}
}

// TestShardedCrossLayoutRead: a store written sharded must be readable
// by a single-stream-configured instance and vice versa — restarts may
// run with different knobs than the job that wrote the checkpoint.
func TestShardedCrossLayoutRead(t *testing.T) {
	inner := NewMemStorage()
	sharded := &CompressedStorage{Inner: inner, Shards: 4, ChunkSize: 8 * 1024}
	plain := NewCompressedStorage(inner)
	state := shardedTestState(40 * 1024)

	if err := sharded.Write(1, 0, state); err != nil {
		t.Fatal(err)
	}
	if err := plain.Write(2, 0, state); err != nil {
		t.Fatal(err)
	}
	if err := inner.Commit(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := inner.Commit(2, 1); err != nil {
		t.Fatal(err)
	}
	if got, err := plain.Read(1, 0); err != nil || !bytes.Equal(got, state) {
		t.Fatalf("plain reader on sharded container: %v", err)
	}
	if got, err := sharded.Read(2, 0); err != nil || !bytes.Equal(got, state) {
		t.Fatalf("sharded reader on single stream: %v", err)
	}
}

func TestShardedCorruptionIsAnError(t *testing.T) {
	inner := NewMemStorage()
	s := &CompressedStorage{Inner: inner, Shards: 4, ChunkSize: 8 * 1024}
	state := shardedTestState(40 * 1024)
	if err := s.Write(1, 0, state); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(1, 1); err != nil {
		t.Fatal(err)
	}
	stored, err := inner.Read(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("truncated", func(t *testing.T) {
		if err := inner.Write(1, 0, stored[:len(stored)/2]); err != nil {
			t.Fatal(err)
		}
		if got, err := s.Read(1, 0); err == nil {
			t.Fatalf("truncated container restored %d bytes with nil error", len(got))
		}
	})
	t.Run("trailing-garbage", func(t *testing.T) {
		if err := inner.Write(1, 0, append(append([]byte(nil), stored...), 0xEE)); err != nil {
			t.Fatal(err)
		}
		if got, err := s.Read(1, 0); err == nil {
			t.Fatalf("trailing garbage restored %d bytes with nil error", len(got))
		}
	})
	t.Run("header-mismatch", func(t *testing.T) {
		bad := append([]byte(nil), stored...)
		bad[len(shardMagic)] ^= 0x01 // perturb the rawSize varint
		if err := inner.Write(1, 0, bad); err != nil {
			t.Fatal(err)
		}
		if got, err := s.Read(1, 0); err == nil {
			t.Fatalf("inconsistent header restored %d bytes with nil error", len(got))
		}
	})
}
