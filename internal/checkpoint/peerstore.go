package checkpoint

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/mpi"
	"repro/internal/obs"
)

// The peer store's wire protocol runs over reserved simmpi tags so it
// never collides with application, collective, or redundancy-control
// traffic. Requests (replicate + fetch) share one tag consumed only by
// Serve loops; replies use a second tag consumed only by fetchers.
const (
	tagPeerService = mpi.TagPeerBase
	tagPeerReply   = mpi.TagPeerBase + 1
)

// Peer protocol opcodes.
const (
	opReplicate = byte(iota + 1) // writer -> buddy: store this image
	opFetch                      // restorer -> holder: send me this image
	opFound                      // holder -> restorer: image payload
	opMiss                       // holder -> restorer: image not held
)

// ErrPeerFetchExhausted reports that every candidate holder of a rank's
// checkpoint image was dead or empty after the configured retry rounds;
// the orchestrator falls back to a full coordinated restart from stable
// storage.
var ErrPeerFetchExhausted = errors.New("checkpoint: peer fetch exhausted")

// Liveness is the minimal liveness oracle the peer store needs;
// *simmpi.World implements it.
type Liveness interface {
	Alive(rank int) bool
}

// PeerStoreConfig configures a PeerStore.
type PeerStoreConfig struct {
	// Spheres is the replica topology: Spheres[v] lists the physical
	// ranks of virtual rank v (redundancy.RankMap.Sphere order).
	Spheres [][]int
	// Replicas is k, the number of buddy ranks in *other* spheres that
	// receive a copy of each rank's image (clamped to the number of
	// other spheres).
	Replicas int
	// StableEvery forwards every StableEvery-th generation to Slow, so
	// peer generations can be much more frequent than stable ones (the
	// whole point of in-memory checkpointing). Zero or one means every
	// generation also goes to stable storage.
	StableEvery int
	// Slow is the stable-storage tier behind the peer tier; nil means
	// peer-memory only (a job failure beyond peer recovery then restarts
	// from scratch).
	Slow Storage
	// Live filters dead ranks out of holder candidate sets. Nil means
	// all ranks are presumed alive.
	Live Liveness
	// FetchRetries is how many rounds over the candidate holders a fetch
	// makes before giving up. Defaults to 4.
	FetchRetries int
	// FetchBackoff is the first inter-round backoff; it doubles each
	// round. Defaults to 500µs.
	FetchBackoff time.Duration
	// Obs receives the store's counters (peerstore_*, peer_fetch_*).
	// Registration happens here, not at package init, so jobs without
	// peer replication never see these instruments.
	Obs *obs.Registry
	// Trace, when non-nil, receives partial-restart fetch events.
	Trace *obs.Tracer
	// Flight, when non-nil, receives a "peer_fetch" span per fetch on
	// the fetching rank's black-box stream (sphere = virtual rank being
	// fetched, step = generation).
	Flight *obs.Recorder
}

// PeerStore keeps checkpoint images replicated in the memory of peer
// ranks, after ReStore (Hübner et al. 2022): each rank stashes its own
// image locally and the writer replica pushes copies to k buddies in
// other replica spheres over simmpi messages. Generations are
// double-buffered — a commit publishes atomically and garbage-collects
// everything older than the previous committed generation, so a failure
// mid-commit can never corrupt the last good generation.
//
// The control plane (holder registry, commit records) lives in shared
// memory under a mutex, standing in for ReStore's collective commit
// metadata; the data plane (images) moves over real messages, so the
// cost and failure surface of replication are modeled faithfully.
type PeerStore struct {
	cfg   PeerStoreConfig
	nPhys int
	// ownerOf maps a physical rank to its sphere (virtual rank).
	ownerOf map[int]int

	mu sync.Mutex
	// shards[p][gen][v] is the image of virtual rank v held in physical
	// rank p's memory.
	shards map[int]map[uint64]map[int][]byte
	// holders[gen][v] is the registry of physical ranks expected to hold
	// v's image for gen.
	holders map[uint64]map[int][]int
	// committed[gen] is the rank count of a published generation.
	committed map[uint64]int

	met peerMetrics
}

type peerMetrics struct {
	replicas   *obs.Counter // buddy copies pushed
	bytes      *obs.Counter // payload bytes replicated to buddies
	localHits  *obs.Counter // restores served from the rank's own shard
	remoteHits *obs.Counter // restores served by a peer fetch
	retries    *obs.Counter // fetch retry rounds
	exhausted  *obs.Counter // fetches that ran out of candidates
}

// NewPeerStore builds a peer store over the given sphere topology.
func NewPeerStore(cfg PeerStoreConfig) (*PeerStore, error) {
	if len(cfg.Spheres) == 0 {
		return nil, fmt.Errorf("checkpoint: peer store needs a sphere map")
	}
	if cfg.Replicas < 0 {
		return nil, fmt.Errorf("checkpoint: peer replicas = %d", cfg.Replicas)
	}
	if cfg.StableEvery <= 0 {
		cfg.StableEvery = 1
	}
	if cfg.FetchRetries <= 0 {
		cfg.FetchRetries = 4
	}
	if cfg.FetchBackoff <= 0 {
		cfg.FetchBackoff = 500 * time.Microsecond
	}
	ps := &PeerStore{
		cfg:       cfg,
		ownerOf:   make(map[int]int),
		shards:    make(map[int]map[uint64]map[int][]byte),
		holders:   make(map[uint64]map[int][]int),
		committed: make(map[uint64]int),
	}
	for v, sphere := range cfg.Spheres {
		if len(sphere) == 0 {
			return nil, fmt.Errorf("checkpoint: sphere %d is empty", v)
		}
		for _, p := range sphere {
			if _, dup := ps.ownerOf[p]; dup {
				return nil, fmt.Errorf("checkpoint: physical rank %d in two spheres", p)
			}
			ps.ownerOf[p] = v
			if p+1 > ps.nPhys {
				ps.nPhys = p + 1
			}
		}
	}
	ps.met = peerMetrics{
		replicas:   cfg.Obs.Counter("peerstore_replicas_total"),
		bytes:      cfg.Obs.Counter("peerstore_bytes_replicated_total"),
		localHits:  cfg.Obs.Counter("peer_fetch_local_total"),
		remoteHits: cfg.Obs.Counter("peer_fetch_remote_total"),
		retries:    cfg.Obs.Counter("peer_fetch_retries_total"),
		exhausted:  cfg.Obs.Counter("peer_fetch_exhausted_total"),
	}
	return ps, nil
}

// Buddies returns the physical ranks that receive copies of virtual rank
// v's image: the writer replica of the next k spheres (wrapping, own
// sphere excluded). The set is a function of the sphere alone, so every
// replica of v pushes to the same buddies and tests can predict exactly
// which deaths exhaust a fetch.
func (ps *PeerStore) Buddies(v int) []int {
	n := len(ps.cfg.Spheres)
	k := ps.cfg.Replicas
	if k > n-1 {
		k = n - 1
	}
	out := make([]int, 0, k)
	for i := 1; len(out) < k; i++ {
		out = append(out, ps.cfg.Spheres[(v+i)%n][0])
	}
	return out
}

func (ps *PeerStore) alive(p int) bool {
	return ps.cfg.Live == nil || ps.cfg.Live.Alive(p)
}

// stash records an image into a physical rank's shard and registers the
// rank as a holder.
func (ps *PeerStore) stash(phys int, gen uint64, v int, state []byte) {
	buf := make([]byte, len(state))
	copy(buf, state)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	shard := ps.shards[phys]
	if shard == nil {
		shard = make(map[uint64]map[int][]byte)
		ps.shards[phys] = shard
	}
	g := shard[gen]
	if g == nil {
		g = make(map[int][]byte)
		shard[gen] = g
	}
	g[v] = buf
	ps.registerHolderLocked(gen, v, phys)
}

func (ps *PeerStore) registerHolderLocked(gen uint64, v, phys int) {
	hg := ps.holders[gen]
	if hg == nil {
		hg = make(map[int][]int)
		ps.holders[gen] = hg
	}
	for _, h := range hg[v] {
		if h == phys {
			return
		}
	}
	hg[v] = append(hg[v], phys)
}

// lookup reads an image from a physical rank's shard.
func (ps *PeerStore) lookup(phys int, gen uint64, v int) ([]byte, bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	state, ok := ps.shards[phys][gen][v]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(state))
	copy(out, state)
	return out, true
}

// InvalidateRank wipes a physical rank's shard and holder registrations:
// the rank's memory is gone (it was killed), so fetches must not be
// routed to its revived incarnation until it re-stashes at the next
// checkpoint.
func (ps *PeerStore) InvalidateRank(phys int) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	delete(ps.shards, phys)
	for _, hg := range ps.holders {
		for v, hs := range hg {
			kept := hs[:0]
			for _, h := range hs {
				if h != phys {
					kept = append(kept, h)
				}
			}
			hg[v] = kept
		}
	}
}

// UsableGeneration returns the newest committed generation every virtual
// rank of which has at least one live holder — the generation a partial
// restart would restore. ok is false when no generation qualifies, which
// tells the orchestrator to fall back to a full restart.
func (ps *PeerStore) UsableGeneration() (gen uint64, n int, ok bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.usableLocked()
}

func (ps *PeerStore) usableLocked() (uint64, int, bool) {
	gens := make([]uint64, 0, len(ps.committed))
	for g := range ps.committed {
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	for _, g := range gens {
		if ps.coveredLocked(g, ps.committed[g]) {
			return g, ps.committed[g], true
		}
	}
	return 0, 0, false
}

func (ps *PeerStore) coveredLocked(gen uint64, n int) bool {
	hg := ps.holders[gen]
	for v := 0; v < n; v++ {
		live := false
		for _, h := range hg[v] {
			if ps.alive(h) {
				live = true
				break
			}
		}
		if !live {
			return false
		}
	}
	return true
}

// Serve runs the replication/fetch server for one physical rank until
// its communicator errors (kill, interrupt, or abort). The orchestrator
// runs one Serve goroutine per rank per epoch, concurrently with the
// application, so buddies absorb images and answer fetches without the
// application's cooperation.
func (ps *PeerStore) Serve(comm mpi.Comm) {
	me := comm.Rank()
	for {
		msg, err := comm.Recv(mpi.AnySource, tagPeerService)
		if err != nil {
			return
		}
		op, gen, v, payload, derr := decodePeer(msg.Data)
		if derr != nil {
			msg.Release()
			continue
		}
		switch op {
		case opReplicate:
			// stash copies the image, so the transport buffer can recycle.
			ps.stash(me, gen, v, payload)
			msg.Release()
		case opFetch:
			msg.Release()
			reply := encodePeer(opMiss, gen, v, nil)
			if state, ok := ps.lookup(me, gen, v); ok {
				reply = encodePeer(opFound, gen, v, state)
			}
			if err := comm.Send(msg.Source, tagPeerReply, reply); err != nil {
				return
			}
		}
	}
}

// View binds the store to one physical rank's communicator and returns
// the Storage the rank's checkpoint client writes through. Views are
// cheap; the orchestrator makes a fresh one per rank per epoch.
func (ps *PeerStore) View(comm mpi.Comm) Storage {
	return &peerView{ps: ps, comm: comm}
}

// peerView is the per-rank Storage facade over a PeerStore. The rank
// argument of Write/Read is the *virtual* rank (that is what the
// checkpoint client passes); the physical identity comes from the bound
// communicator.
type peerView struct {
	ps   *PeerStore
	comm mpi.Comm
}

var _ Storage = (*peerView)(nil)

// isSphereWriter reports whether this view's physical rank is the lowest
// live replica of sphere v — the one that pushes buddy copies and writes
// the stable tier (every replica stashes its own copy locally).
func (pv *peerView) isSphereWriter(v int) bool {
	for _, p := range pv.ps.cfg.Spheres[v] {
		if pv.ps.alive(p) {
			return p == pv.comm.Rank()
		}
	}
	return false
}

// Write implements Storage: stash locally, and — as the sphere's writer
// replica — push copies to the buddies and to the stable tier at its
// cadence.
func (pv *peerView) Write(gen uint64, rank int, state []byte) error {
	ps := pv.ps
	if rank < 0 || rank >= len(ps.cfg.Spheres) {
		return fmt.Errorf("checkpoint: peer write rank %d of %d", rank, len(ps.cfg.Spheres))
	}
	ps.stash(pv.comm.Rank(), gen, rank, state)
	if !pv.isSphereWriter(rank) {
		return nil
	}
	payload := encodePeer(opReplicate, gen, rank, state)
	for _, buddy := range ps.Buddies(rank) {
		if !ps.alive(buddy) {
			continue
		}
		if err := pv.comm.Send(buddy, tagPeerService, payload); err != nil {
			return fmt.Errorf("checkpoint: replicating gen %d rank %d to %d: %w",
				gen, rank, buddy, err)
		}
		ps.mu.Lock()
		ps.registerHolderLocked(gen, rank, buddy)
		ps.mu.Unlock()
		ps.met.replicas.Inc()
		ps.met.bytes.Add(uint64(len(state)))
	}
	if ps.cfg.Slow != nil && gen%uint64(ps.cfg.StableEvery) == 0 {
		if err := ps.cfg.Slow.Write(gen, rank, state); err != nil {
			return err
		}
	}
	return nil
}

// Commit implements Storage: publish the generation in the peer control
// plane (requiring a registered holder for every rank — the mid-commit
// double-buffer guarantee), forward stable-cadence generations to the
// slow tier, and garbage-collect everything older than the previous
// committed generation.
func (pv *peerView) Commit(gen uint64, n int) error {
	ps := pv.ps
	ps.mu.Lock()
	if _, done := ps.committed[gen]; !done {
		hg := ps.holders[gen]
		for v := 0; v < n; v++ {
			if len(hg[v]) == 0 {
				ps.mu.Unlock()
				return fmt.Errorf("commit gen %d: rank %d: %w", gen, v, ErrIncomplete)
			}
		}
		ps.committed[gen] = n
		ps.gcLocked(gen)
	}
	ps.mu.Unlock()
	if ps.cfg.Slow != nil && gen%uint64(ps.cfg.StableEvery) == 0 {
		return ps.cfg.Slow.Commit(gen, n)
	}
	return nil
}

// gcLocked drops every generation older than the committed generation
// preceding justCommitted, keeping exactly the double buffer: the new
// generation and its committed predecessor.
func (ps *PeerStore) gcLocked(justCommitted uint64) {
	var prev uint64
	hasPrev := false
	for g := range ps.committed {
		if g < justCommitted && (!hasPrev || g > prev) {
			prev = g
			hasPrev = true
		}
	}
	floor := justCommitted
	if hasPrev {
		floor = prev
	}
	for g := range ps.holders {
		if g < floor {
			delete(ps.holders, g)
			delete(ps.committed, g)
			for _, shard := range ps.shards {
				delete(shard, g)
			}
		}
	}
}

// Latest implements Storage: the newest generation restorable right now,
// preferring the peer tier when its best live-covered generation is at
// least as new as stable storage's.
func (pv *peerView) Latest() (uint64, int, bool, error) {
	ps := pv.ps
	ps.mu.Lock()
	fastGen, fastN, fastOK := ps.usableLocked()
	ps.mu.Unlock()
	if ps.cfg.Slow != nil {
		slowGen, slowN, slowOK, err := ps.cfg.Slow.Latest()
		if err != nil {
			return 0, 0, false, err
		}
		if slowOK && (!fastOK || slowGen > fastGen) {
			return slowGen, slowN, true, nil
		}
	}
	return fastGen, fastN, fastOK, nil
}

// Read implements Storage: own shard first (survivors restore with zero
// traffic), then bounded-retry fetch over the live holders, then — for
// generations stable storage also has — the slow tier.
func (pv *peerView) Read(gen uint64, rank int) ([]byte, error) {
	ps := pv.ps
	ps.mu.Lock()
	_, fastCommitted := ps.committed[gen]
	ps.mu.Unlock()
	if !fastCommitted {
		if ps.cfg.Slow != nil {
			return ps.cfg.Slow.Read(gen, rank)
		}
		return nil, fmt.Errorf("read gen %d: %w", gen, ErrNotCommitted)
	}
	if state, ok := ps.lookup(pv.comm.Rank(), gen, rank); ok {
		ps.met.localHits.Inc()
		return state, nil
	}
	state, err := pv.fetch(gen, rank)
	if err == nil {
		// Cache the image: this rank is now a holder too, which both
		// localises its future restores and thickens the holder set.
		ps.stash(pv.comm.Rank(), gen, rank, state)
		return state, nil
	}
	if errors.Is(err, ErrPeerFetchExhausted) && ps.cfg.Slow != nil {
		if slow, serr := ps.cfg.Slow.Read(gen, rank); serr == nil {
			return slow, nil
		}
	}
	return nil, err
}

// fetch asks live holders for the image, FetchRetries rounds over the
// candidate set with exponentially backed-off pauses between rounds (a
// replicate may still be in a buddy's mailbox when the fetch starts).
func (pv *peerView) fetch(gen uint64, rank int) ([]byte, error) {
	ps := pv.ps
	me := pv.comm.Rank()
	sp := ps.cfg.Flight.StartSpan("peer_fetch", me, rank, int(gen))
	defer sp.End()
	backoff := ps.cfg.FetchBackoff
	for round := 0; round < ps.cfg.FetchRetries; round++ {
		if round > 0 {
			ps.met.retries.Inc()
			time.Sleep(backoff)
			backoff *= 2
		}
		ps.mu.Lock()
		candidates := append([]int(nil), ps.holders[gen][rank]...)
		ps.mu.Unlock()
		sort.Ints(candidates)
		for _, c := range candidates {
			if c == me || !ps.alive(c) {
				continue
			}
			if err := pv.comm.Send(c, tagPeerService, encodePeer(opFetch, gen, rank, nil)); err != nil {
				return nil, err
			}
			msg, err := pv.comm.Recv(c, tagPeerReply)
			if errors.Is(err, mpi.ErrPeerDead) {
				continue // holder died mid-request; try the next one
			}
			if err != nil {
				return nil, err
			}
			op, rgen, rv, payload, derr := decodePeer(msg.Data)
			if derr != nil || rgen != gen || rv != rank {
				continue
			}
			if op == opFound {
				ps.met.remoteHits.Inc()
				ps.cfg.Trace.Emit("peer_fetch", me, rank, int(gen), map[string]any{
					"holder": c, "bytes": len(payload), "round": round,
				})
				return payload, nil
			}
		}
	}
	ps.met.exhausted.Inc()
	return nil, fmt.Errorf("gen %d rank %d after %d rounds: %w",
		gen, rank, ps.cfg.FetchRetries, ErrPeerFetchExhausted)
}

// Drop implements Storage.
func (pv *peerView) Drop(gen uint64) error {
	ps := pv.ps
	ps.mu.Lock()
	delete(ps.holders, gen)
	delete(ps.committed, gen)
	for _, shard := range ps.shards {
		delete(shard, gen)
	}
	ps.mu.Unlock()
	if ps.cfg.Slow != nil {
		return ps.cfg.Slow.Drop(gen)
	}
	return nil
}

// --- wire codec: op byte | gen (8 bytes LE) | vrank (8 bytes LE) | payload ---

const peerHeaderLen = 17

func encodePeer(op byte, gen uint64, v int, payload []byte) []byte {
	buf := make([]byte, peerHeaderLen+len(payload))
	buf[0] = op
	for b := 0; b < 8; b++ {
		buf[1+b] = byte(gen >> (8 * b))
		buf[9+b] = byte(uint64(v) >> (8 * b))
	}
	copy(buf[peerHeaderLen:], payload)
	return buf
}

func decodePeer(buf []byte) (op byte, gen uint64, v int, payload []byte, err error) {
	if len(buf) < peerHeaderLen {
		return 0, 0, 0, nil, fmt.Errorf("checkpoint: peer frame of %d bytes", len(buf))
	}
	op = buf[0]
	var vu uint64
	for b := 0; b < 8; b++ {
		gen |= uint64(buf[1+b]) << (8 * b)
		vu |= uint64(buf[9+b]) << (8 * b)
	}
	return op, gen, int(int64(vu)), buf[peerHeaderLen:], nil
}
