package checkpoint

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/erasure"
	"repro/internal/mpi"
	"repro/internal/obs"
)

// The peer store's wire protocol runs over reserved simmpi tags so it
// never collides with application, collective, or redundancy-control
// traffic. Requests (replicate + fetch) share one tag consumed only by
// Serve loops; replies use a second tag consumed only by fetchers.
const (
	tagPeerService = mpi.TagPeerBase
	tagPeerReply   = mpi.TagPeerBase + 1
)

// Peer protocol opcodes.
const (
	opReplicate = byte(iota + 1) // writer -> buddy: store this image/shard
	opFetch                      // restorer -> holder: send me what you hold
	opFound                      // holder -> restorer: image or shard payload
	opMiss                       // holder -> restorer: nothing held
)

// ErrPeerFetchExhausted reports that every candidate holder of a rank's
// checkpoint image was dead or empty after the configured retry rounds
// (in erasure mode: fewer than k distinct shards were recoverable); the
// orchestrator falls back to a full coordinated restart from stable
// storage.
var ErrPeerFetchExhausted = errors.New("checkpoint: peer fetch exhausted")

// maxPeerShards bounds DataShards+ParityShards so shard coverage checks
// fit in one word. Far above any sensible configuration: each extra
// shard costs a sphere.
const maxPeerShards = 64

// Liveness is the minimal liveness oracle the peer store needs;
// *simmpi.World implements it.
type Liveness interface {
	Alive(rank int) bool
}

// PeerStoreConfig configures a PeerStore.
type PeerStoreConfig struct {
	// Spheres is the replica topology: Spheres[v] lists the physical
	// ranks of virtual rank v (redundancy.RankMap.Sphere order).
	Spheres [][]int
	// Replicas is k, the number of buddy ranks in *other* spheres that
	// receive a full copy of each rank's image (clamped to the number of
	// other spheres). Mutually exclusive with DataShards.
	Replicas int
	// DataShards and ParityShards switch the store from full-copy
	// replication to Reed-Solomon erasure coding: each snapshot of size
	// S is split into DataShards data shards plus ParityShards parity
	// shards of ceil(S/DataShards) bytes each, spread across
	// DataShards+ParityShards replica spheres, so the tier costs
	// ~S·(k+m)/k resident bytes instead of S·(replicas+1) while any
	// ParityShards sphere losses remain recoverable. DataShards of 0
	// (or 1) keeps the full-copy mode.
	DataShards   int
	ParityShards int
	// BudgetBytes caps the resident peer-tier bytes of any one physical
	// rank; 0 means unlimited. A stash that pushes a rank over budget
	// evicts the rank's oldest resident generation (never the one being
	// written), counted by peer_store_evictions_total.
	BudgetBytes int64
	// StableEvery forwards every StableEvery-th generation to Slow, so
	// peer generations can be much more frequent than stable ones (the
	// whole point of in-memory checkpointing). Zero or one means every
	// generation also goes to stable storage.
	StableEvery int
	// Slow is the stable-storage tier behind the peer tier; nil means
	// peer-memory only (a job failure beyond peer recovery then restarts
	// from scratch).
	Slow Storage
	// Live filters dead ranks out of holder candidate sets. Nil means
	// all ranks are presumed alive.
	Live Liveness
	// FetchRetries is how many rounds over the candidate holders a fetch
	// makes before giving up. Defaults to 4.
	FetchRetries int
	// FetchBackoff is the first inter-round backoff; it doubles each
	// round. Defaults to 500µs.
	FetchBackoff time.Duration
	// Obs receives the store's counters (peerstore_*, peer_fetch_*,
	// peer_store_*). Registration happens here, not at package init, so
	// jobs without peer replication never see these instruments.
	Obs *obs.Registry
	// Trace, when non-nil, receives partial-restart fetch events.
	Trace *obs.Tracer
	// Flight, when non-nil, receives a "peer_fetch" span per fetch on
	// the fetching rank's black-box stream (sphere = virtual rank being
	// fetched, step = generation).
	Flight *obs.Recorder
}

// PeerStore keeps checkpoint images replicated in the memory of peer
// ranks, after ReStore (Hübner et al. 2022): each rank stashes its own
// image (or, in erasure mode, its sphere's shard) locally and the
// writer replica pushes copies — full images to Replicas buddies, or
// one erasure shard to each of DataShards+ParityShards−1 neighbouring
// spheres — over simmpi messages. Generations are double-buffered — a
// commit publishes atomically and garbage-collects everything older
// than the previous committed generation, so a failure mid-commit can
// never corrupt the last good generation.
//
// The control plane (holder registry, commit records) lives in shared
// memory under a mutex, standing in for ReStore's collective commit
// metadata; the data plane (images) moves over real messages, so the
// cost and failure surface of replication are modeled faithfully. The
// data plane is slot-based and arena-backed — generation slots, holder
// lists, and payload buffers all recycle — so steady-state replication
// allocates nothing per generation.
type PeerStore struct {
	cfg     PeerStoreConfig
	nPhys   int
	nVirt   int
	ownerOf map[int]int // physical rank -> its sphere (virtual rank)
	// codec is non-nil in erasure mode.
	codec       *erasure.Codec
	totalShards int

	// pending counts replicate frames sent but not yet absorbed by a
	// Serve loop; Settle waits for it so Drain covers in-flight sends.
	pending atomic.Int64

	mu sync.Mutex
	// floor is the oldest generation worth keeping (the committed
	// predecessor of the newest commit); replicate frames that arrive
	// after their generation was garbage-collected are dropped instead
	// of resurrecting dead slots.
	floor uint64
	// ranks[p] is physical rank p's resident slice of the store.
	ranks []rankShard
	// ctrls is the control plane, one entry per live generation,
	// ascending by generation.
	ctrls    []*genCtrl
	freeCtrl []*genCtrl
	resident int64 // total payload bytes resident across all ranks

	met peerMetrics
}

type peerMetrics struct {
	replicas   *obs.Counter // buddy copies/shards pushed
	bytes      *obs.Counter // payload bytes replicated to buddies
	localHits  *obs.Counter // restores served from the rank's own memory
	remoteHits *obs.Counter // restores served by a peer fetch
	retries    *obs.Counter // fetch retry rounds
	exhausted  *obs.Counter // fetches that ran out of candidates
	evictions  *obs.Counter // generation slots evicted by the budget
	resident   *obs.Gauge   // resident payload bytes, store-wide
}

// rankShard is one physical rank's resident generations, ascending by
// generation. Dropped slots move to a free list so steady-state stash
// traffic reuses them.
type rankShard struct {
	gens     []*rankGen
	free     []*rankGen
	resident int64
}

// rankGen is the set of images one physical rank holds for one
// generation. imgs is sorted by virtual rank and stays small: a rank
// holds its own sphere's entry plus whatever shards its buddies pushed.
type rankGen struct {
	gen   uint64
	imgs  []image
	bytes int64
}

// image is one resident payload: a full snapshot (idx == shardFull) or
// one erasure shard. data aliases a pooled buffer when pb is non-nil.
type image struct {
	v    int32
	idx  int16
	size uint32 // original snapshot size (== len(data) for full images)
	data []byte
	pb   *mpi.PooledBuf
}

// genCtrl is the shared-memory control record of one generation.
type genCtrl struct {
	gen uint64
	// committedN is the published rank count; 0 means uncommitted.
	committedN int
	// holders[v] is the registry of physical ranks expected to hold
	// v's image or shards for this generation.
	holders [][]holderRef
}

type holderRef struct {
	phys int32
	idx  int16
}

// NewPeerStore builds a peer store over the given sphere topology.
func NewPeerStore(cfg PeerStoreConfig) (*PeerStore, error) {
	if len(cfg.Spheres) == 0 {
		return nil, fmt.Errorf("checkpoint: peer store needs a sphere map")
	}
	if cfg.Replicas < 0 {
		return nil, fmt.Errorf("checkpoint: peer replicas = %d", cfg.Replicas)
	}
	if cfg.StableEvery <= 0 {
		cfg.StableEvery = 1
	}
	if cfg.FetchRetries <= 0 {
		cfg.FetchRetries = 4
	}
	if cfg.FetchBackoff <= 0 {
		cfg.FetchBackoff = 500 * time.Microsecond
	}
	ps := &PeerStore{
		cfg:     cfg,
		nVirt:   len(cfg.Spheres),
		ownerOf: make(map[int]int),
	}
	for v, sphere := range cfg.Spheres {
		if len(sphere) == 0 {
			return nil, fmt.Errorf("checkpoint: sphere %d is empty", v)
		}
		for _, p := range sphere {
			if _, dup := ps.ownerOf[p]; dup {
				return nil, fmt.Errorf("checkpoint: physical rank %d in two spheres", p)
			}
			ps.ownerOf[p] = v
			if p+1 > ps.nPhys {
				ps.nPhys = p + 1
			}
		}
	}
	if cfg.DataShards != 0 || cfg.ParityShards != 0 {
		switch {
		case cfg.Replicas > 0:
			return nil, fmt.Errorf("checkpoint: Replicas and DataShards are mutually exclusive")
		case cfg.DataShards < 2:
			return nil, fmt.Errorf("checkpoint: erasure coding needs DataShards >= 2, got %d", cfg.DataShards)
		case cfg.ParityShards < 1:
			return nil, fmt.Errorf("checkpoint: erasure coding needs ParityShards >= 1, got %d", cfg.ParityShards)
		case cfg.DataShards+cfg.ParityShards > maxPeerShards:
			return nil, fmt.Errorf("checkpoint: DataShards+ParityShards = %d exceeds %d",
				cfg.DataShards+cfg.ParityShards, maxPeerShards)
		case cfg.DataShards+cfg.ParityShards > len(cfg.Spheres):
			return nil, fmt.Errorf("checkpoint: DataShards+ParityShards = %d needs that many spheres, have %d",
				cfg.DataShards+cfg.ParityShards, len(cfg.Spheres))
		}
		codec, err := erasure.New(cfg.DataShards, cfg.ParityShards)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: %w", err)
		}
		ps.codec = codec
		ps.totalShards = cfg.DataShards + cfg.ParityShards
	}
	if cfg.BudgetBytes < 0 {
		return nil, fmt.Errorf("checkpoint: peer budget = %d bytes", cfg.BudgetBytes)
	}
	ps.ranks = make([]rankShard, ps.nPhys)
	ps.met = peerMetrics{
		replicas:   cfg.Obs.Counter("peerstore_replicas_total"),
		bytes:      cfg.Obs.Counter("peerstore_bytes_replicated_total"),
		localHits:  cfg.Obs.Counter("peer_fetch_local_total"),
		remoteHits: cfg.Obs.Counter("peer_fetch_remote_total"),
		retries:    cfg.Obs.Counter("peer_fetch_retries_total"),
		exhausted:  cfg.Obs.Counter("peer_fetch_exhausted_total"),
		evictions:  cfg.Obs.Counter("peer_store_evictions_total"),
		resident:   cfg.Obs.Gauge("peer_store_resident_bytes"),
	}
	return ps, nil
}

// Erasure reports whether the store runs in erasure-coded mode.
func (ps *PeerStore) Erasure() bool { return ps.codec != nil }

// Buddies returns the physical ranks that receive copies of virtual
// rank v's image: the writer replica of each of the next spheres
// (wrapping, own sphere excluded) — Replicas of them in full-copy mode,
// DataShards+ParityShards−1 in erasure mode (one shard each; shard 0
// stays in v's own sphere). The set is a function of the sphere alone,
// so every replica of v pushes to the same buddies and tests can
// predict exactly which deaths exhaust a fetch.
func (ps *PeerStore) Buddies(v int) []int {
	n := len(ps.cfg.Spheres)
	k := ps.cfg.Replicas
	if ps.codec != nil {
		k = ps.totalShards - 1
	}
	if k > n-1 {
		k = n - 1
	}
	out := make([]int, 0, k)
	for i := 1; len(out) < k; i++ {
		out = append(out, ps.cfg.Spheres[(v+i)%n][0])
	}
	return out
}

func (ps *PeerStore) alive(p int) bool {
	return ps.cfg.Live == nil || ps.cfg.Live.Alive(p)
}

// --- control plane -----------------------------------------------------

// ctrlLocked finds the control record of gen, inserting one (recycled
// from the free list when possible) if create is set.
func (ps *PeerStore) ctrlLocked(gen uint64, create bool) *genCtrl {
	i := len(ps.ctrls)
	for i > 0 && ps.ctrls[i-1].gen > gen {
		i--
	}
	if i > 0 && ps.ctrls[i-1].gen == gen {
		return ps.ctrls[i-1]
	}
	if !create {
		return nil
	}
	var c *genCtrl
	if n := len(ps.freeCtrl); n > 0 {
		c = ps.freeCtrl[n-1]
		ps.freeCtrl = ps.freeCtrl[:n-1]
	} else {
		c = &genCtrl{holders: make([][]holderRef, ps.nVirt)}
	}
	c.gen = gen
	c.committedN = 0
	ps.ctrls = append(ps.ctrls, nil)
	copy(ps.ctrls[i+1:], ps.ctrls[i:])
	ps.ctrls[i] = c
	return c
}

// releaseCtrlLocked recycles a control record, keeping the holder
// slices' capacity.
func (ps *PeerStore) releaseCtrlLocked(c *genCtrl) {
	for v := range c.holders {
		c.holders[v] = c.holders[v][:0]
	}
	ps.freeCtrl = append(ps.freeCtrl, c)
}

// registerHolderLocked records that phys holds shard idx (or the full
// image) of v for gen. A full image upgrades a previous shard record
// for the same rank.
func (ps *PeerStore) registerHolderLocked(gen uint64, v, phys int, idx int16) {
	c := ps.ctrlLocked(gen, true)
	hs := c.holders[v]
	for i := range hs {
		if int(hs[i].phys) == phys {
			if idx == shardFull {
				hs[i].idx = shardFull
			}
			return
		}
	}
	c.holders[v] = append(hs, holderRef{phys: int32(phys), idx: idx})
}

func (ps *PeerStore) deregisterHolderLocked(gen uint64, v, phys int) {
	c := ps.ctrlLocked(gen, false)
	if c == nil {
		return
	}
	hs := c.holders[v]
	kept := hs[:0]
	for _, h := range hs {
		if int(h.phys) != phys {
			kept = append(kept, h)
		}
	}
	c.holders[v] = kept
}

// --- data plane --------------------------------------------------------

// rankGenLocked finds rank p's slot for gen, inserting one (recycled
// when possible) if create is set.
func (ps *PeerStore) rankGenLocked(phys int, gen uint64, create bool) *rankGen {
	rs := &ps.ranks[phys]
	i := len(rs.gens)
	for i > 0 && rs.gens[i-1].gen > gen {
		i--
	}
	if i > 0 && rs.gens[i-1].gen == gen {
		return rs.gens[i-1]
	}
	if !create {
		return nil
	}
	var rg *rankGen
	if n := len(rs.free); n > 0 {
		rg = rs.free[n-1]
		rs.free = rs.free[:n-1]
	} else {
		rg = &rankGen{}
	}
	rg.gen = gen
	rs.gens = append(rs.gens, nil)
	copy(rs.gens[i+1:], rs.gens[i:])
	rs.gens[i] = rg
	return rg
}

// dropRankGenLocked releases slot i of rank p: payload buffers return
// to their arena, holder registrations are withdrawn, and the slot
// moves to the rank's free list.
func (ps *PeerStore) dropRankGenLocked(phys, i int) {
	rs := &ps.ranks[phys]
	rg := rs.gens[i]
	for j := range rg.imgs {
		img := &rg.imgs[j]
		ps.deregisterHolderLocked(rg.gen, int(img.v), phys)
		if img.pb != nil {
			img.pb.Release()
		}
		*img = image{}
	}
	rs.resident -= rg.bytes
	ps.resident -= rg.bytes
	rg.imgs = rg.imgs[:0]
	rg.bytes = 0
	copy(rs.gens[i:], rs.gens[i+1:])
	rs.gens = rs.gens[:len(rs.gens)-1]
	rs.free = append(rs.free, rg)
}

func (rg *rankGen) find(v int) *image {
	for i := range rg.imgs {
		if int(rg.imgs[i].v) == v {
			return &rg.imgs[i]
		}
	}
	return nil
}

// stashImage copies payload into a pooled buffer and records it as
// phys's image (idx == shardFull) or shard of (gen, v), registering the
// holder and enforcing the memory budget.
func (ps *PeerStore) stashImage(phys int, gen uint64, v int, idx int16, size uint32, payload []byte) {
	if phys < 0 || phys >= ps.nPhys || v < 0 || v >= ps.nVirt {
		return
	}
	buf, pb := snapPool.acquire(len(payload))
	copy(buf, payload)
	ps.mu.Lock()
	if gen < ps.floor {
		// A straggler frame for a garbage-collected generation: it can
		// never become the restore point again, so stashing it would only
		// churn slots until the next gc sweep.
		ps.mu.Unlock()
		if pb != nil {
			pb.Release()
		}
		return
	}
	rg := ps.rankGenLocked(phys, gen, true)
	rs := &ps.ranks[phys]
	if img := rg.find(v); img != nil {
		// Re-stash (e.g. a fetched full image replacing the local
		// shard): swap payloads and adjust the accounting.
		delta := int64(len(buf)) - int64(len(img.data))
		if img.pb != nil {
			img.pb.Release()
		}
		if idx == shardFull || img.idx != shardFull {
			img.idx, img.size, img.data, img.pb = idx, size, buf, pb
			rg.bytes += delta
			rs.resident += delta
			ps.resident += delta
		} else if pb != nil {
			// Never downgrade a full image to a shard.
			pb.Release()
		}
	} else {
		rg.imgs = append(rg.imgs, image{v: int32(v), idx: idx, size: size, data: buf, pb: pb})
		rg.bytes += int64(len(buf))
		rs.resident += int64(len(buf))
		ps.resident += int64(len(buf))
	}
	ps.registerHolderLocked(gen, v, phys, idx)
	ps.evictOverBudgetLocked(phys, gen)
	ps.met.resident.Set(ps.resident)
	ps.mu.Unlock()
}

// evictOverBudgetLocked drops rank p's oldest resident generations
// until the rank is back under BudgetBytes, never touching the
// generation currently being written. The specpriv checkpoint manager's
// saturation check: bound the resident set, sacrifice the oldest.
func (ps *PeerStore) evictOverBudgetLocked(phys int, keep uint64) {
	if ps.cfg.BudgetBytes <= 0 {
		return
	}
	rs := &ps.ranks[phys]
	for rs.resident > ps.cfg.BudgetBytes && len(rs.gens) > 0 {
		if rs.gens[0].gen == keep {
			break
		}
		ps.dropRankGenLocked(phys, 0)
		ps.met.evictions.Inc()
	}
}

// stash records a full image into a physical rank's slice of the store
// (the replicate-receive path and a test seam).
func (ps *PeerStore) stash(phys int, gen uint64, v int, state []byte) {
	ps.stashImage(phys, gen, v, shardFull, uint32(len(state)), state)
}

// lookup returns a copy of the full image phys holds for (gen, v), if
// any. Shards don't count: a single shard cannot restore a rank.
func (ps *PeerStore) lookup(phys int, gen uint64, v int) ([]byte, bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if phys < 0 || phys >= ps.nPhys {
		return nil, false
	}
	rg := ps.rankGenLocked(phys, gen, false)
	if rg == nil {
		return nil, false
	}
	img := rg.find(v)
	if img == nil || img.idx != shardFull {
		return nil, false
	}
	out := make([]byte, len(img.data))
	copy(out, img.data)
	return out, true
}

// lookupAny returns a copy of whatever phys holds for (gen, v) — a full
// image or a shard — for the fetch-reply path.
func (ps *PeerStore) lookupAny(phys int, gen uint64, v int) (data []byte, idx int16, size uint32, ok bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if phys < 0 || phys >= ps.nPhys {
		return nil, 0, 0, false
	}
	rg := ps.rankGenLocked(phys, gen, false)
	if rg == nil {
		return nil, 0, 0, false
	}
	img := rg.find(v)
	if img == nil {
		return nil, 0, 0, false
	}
	out := make([]byte, len(img.data))
	copy(out, img.data)
	return out, img.idx, img.size, true
}

// InvalidateRank wipes a physical rank's slice of the store and its
// holder registrations: the rank's memory is gone (it was killed), so
// fetches must not be routed to its revived incarnation until it
// re-stashes at the next checkpoint.
func (ps *PeerStore) InvalidateRank(phys int) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if phys < 0 || phys >= ps.nPhys {
		return
	}
	for len(ps.ranks[phys].gens) > 0 {
		ps.dropRankGenLocked(phys, 0)
	}
	// Withdraw registrations with no resident payload behind them
	// (frames lost in flight when the rank died).
	for _, c := range ps.ctrls {
		for v := range c.holders {
			ps.deregisterHolderLocked(c.gen, v, phys)
		}
	}
	ps.met.resident.Set(ps.resident)
}

// UsableGeneration returns the newest committed generation every
// virtual rank of which is still recoverable from live holders — at
// least one full image, or (erasure mode) at least DataShards distinct
// shards. ok is false when no generation qualifies, which tells the
// orchestrator to fall back to a full restart.
func (ps *PeerStore) UsableGeneration() (gen uint64, n int, ok bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.usableLocked()
}

func (ps *PeerStore) usableLocked() (uint64, int, bool) {
	for i := len(ps.ctrls) - 1; i >= 0; i-- {
		c := ps.ctrls[i]
		if c.committedN == 0 {
			continue
		}
		if ps.coveredLocked(c, c.committedN, true, false) {
			return c.gen, c.committedN, true
		}
	}
	return 0, 0, false
}

// coveredLocked reports whether every virtual rank below n is
// recoverable for c's generation. liveOnly restricts the holder set to
// live ranks; stashed additionally requires the payload to actually be
// resident (the recovery-time promotion check, which must not trust
// registrations whose frames died in a mailbox).
func (ps *PeerStore) coveredLocked(c *genCtrl, n int, liveOnly, stashed bool) bool {
	for v := 0; v < n; v++ {
		var shardSet uint64
		shardCount, full := 0, false
		for _, h := range c.holders[v] {
			phys := int(h.phys)
			if liveOnly && !ps.alive(phys) {
				continue
			}
			idx := h.idx
			if stashed {
				rg := ps.rankGenLocked(phys, c.gen, false)
				if rg == nil {
					continue
				}
				img := rg.find(v)
				if img == nil {
					continue
				}
				idx = img.idx
			}
			if idx == shardFull {
				full = true
				break
			}
			if bit := uint64(1) << uint(idx); shardSet&bit == 0 {
				shardSet |= bit
				shardCount++
			}
		}
		if full {
			continue
		}
		if ps.codec == nil || shardCount < ps.cfg.DataShards {
			return false
		}
	}
	return true
}

// PromoteComplete commits the newest uncommitted generation whose
// payloads are fully resident on live ranks. The recovery path calls it
// after flushing the async pipeline: under the commit-lags-one
// protocol the latest generation's writes may have drained without any
// rank reaching the next checkpoint line to commit them — promoting it
// makes the partial restart as cheap as the synchronous tier's. The
// slow tier is left alone: its own commit record still comes from the
// regular cadence.
func (ps *PeerStore) PromoteComplete() (uint64, int, bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for i := len(ps.ctrls) - 1; i >= 0; i-- {
		c := ps.ctrls[i]
		if c.committedN > 0 {
			break // everything older is committed or superseded
		}
		if ps.coveredLocked(c, ps.nVirt, true, true) {
			c.committedN = ps.nVirt
			ps.gcLocked(c.gen)
			return c.gen, ps.nVirt, true
		}
	}
	return 0, 0, false
}

// settleTimeout bounds how long Settle waits for in-flight replicate
// frames; frames addressed to a rank that died mid-send never arrive,
// so the wait also gives up once the pending count stops moving.
const settleTimeout = 50 * time.Millisecond

// Settle waits (bounded) until every replicate frame sent so far has
// been absorbed by a Serve loop, extending the checkpoint client's
// Drain to cover in-flight peer sends: after Drain+Settle, the latest
// generation's shards are resident at their holders, not just in
// flight.
func (ps *PeerStore) Settle() {
	deadline := time.Now().Add(settleTimeout)
	last := ps.pending.Load()
	stable := 0
	for last > 0 {
		if time.Now().After(deadline) {
			return
		}
		time.Sleep(50 * time.Microsecond)
		cur := ps.pending.Load()
		if cur == last {
			if stable++; stable >= 40 {
				return // no progress: frames were dropped at a dead rank's door
			}
		} else {
			stable, last = 0, cur
		}
	}
}

// ResetPending clears the in-flight send count. The recovery path calls
// it after quiescing the world: undelivered frames from the failed
// epoch are purged with the epoch's traffic and will never arrive.
func (ps *PeerStore) ResetPending() { ps.pending.Store(0) }

// Serve runs the replication/fetch server for one physical rank until
// its communicator errors (kill, interrupt, or abort). The orchestrator
// runs one Serve goroutine per rank per epoch, concurrently with the
// application, so buddies absorb images and answer fetches without the
// application's cooperation.
func (ps *PeerStore) Serve(comm mpi.Comm) {
	me := comm.Rank()
	for {
		msg, err := comm.Recv(mpi.AnySource, tagPeerService)
		if err != nil {
			return
		}
		fr, derr := decodePeer(msg.Data)
		if derr != nil {
			msg.Release()
			continue
		}
		switch fr.op {
		case opReplicate:
			// stashImage copies the payload, so the transport buffer can
			// recycle immediately.
			ps.stashImage(me, fr.gen, fr.v, fr.idx, fr.size, fr.payload)
			ps.pending.Add(-1)
			msg.Release()
		case opFetch:
			msg.Release()
			reply := peerFrame{op: opMiss, gen: fr.gen, v: fr.v}
			if data, idx, size, ok := ps.lookupAny(me, fr.gen, fr.v); ok {
				reply = peerFrame{op: opFound, gen: fr.gen, v: fr.v, idx: idx, size: size, payload: data}
			}
			if err := sendPeerFrame(comm, msg.Source, tagPeerReply, reply); err != nil {
				return
			}
		default:
			msg.Release()
		}
	}
}

// View binds the store to one physical rank's communicator and returns
// the Storage the rank's checkpoint client writes through. Views are
// cheap; the orchestrator makes a fresh one per rank per epoch.
func (ps *PeerStore) View(comm mpi.Comm) Storage {
	return &peerView{ps: ps, comm: comm}
}

// peerView is the per-rank Storage facade over a PeerStore. The rank
// argument of Write/Read is the *virtual* rank (that is what the
// checkpoint client passes); the physical identity comes from the bound
// communicator.
type peerView struct {
	ps   *PeerStore
	comm mpi.Comm
}

var (
	_ Storage = (*peerView)(nil)
	_ Settler = (*peerView)(nil)
)

// Settle implements Settler: Drain waits for this view's store to
// absorb in-flight replicate frames.
func (pv *peerView) Settle() { pv.ps.Settle() }

// isSphereWriter reports whether this view's physical rank is the lowest
// live replica of sphere v — the one that pushes buddy copies/shards
// and writes the stable tier (every replica stashes its own slice of
// the image locally).
func (pv *peerView) isSphereWriter(v int) bool {
	for _, p := range pv.ps.cfg.Spheres[v] {
		if pv.ps.alive(p) {
			return p == pv.comm.Rank()
		}
	}
	return false
}

// Write implements Storage: stash locally, and — as the sphere's writer
// replica — push copies (full-copy mode) or erasure shards to the
// buddies and the full image to the stable tier at its cadence. Under
// an async Pipeline this whole method runs on a background worker; the
// pending counter plus Settle keep the drain/commit contract honest.
func (pv *peerView) Write(gen uint64, rank int, state []byte) error {
	ps := pv.ps
	if rank < 0 || rank >= len(ps.cfg.Spheres) {
		return fmt.Errorf("checkpoint: peer write rank %d of %d", rank, len(ps.cfg.Spheres))
	}
	if ps.codec != nil {
		if err := pv.writeErasure(gen, rank, state); err != nil {
			return err
		}
	} else if err := pv.writeFullCopy(gen, rank, state); err != nil {
		return err
	}
	if pv.isSphereWriter(rank) && ps.cfg.Slow != nil && gen%uint64(ps.cfg.StableEvery) == 0 {
		if err := ps.cfg.Slow.Write(gen, rank, state); err != nil {
			return err
		}
	}
	return nil
}

// writeFullCopy is the classic ReStore layout: every replica stashes
// the whole image, the writer pushes whole-image copies to Replicas
// buddies — one pooled encode shared across the fan-out.
func (pv *peerView) writeFullCopy(gen uint64, rank int, state []byte) error {
	ps := pv.ps
	me := pv.comm.Rank()
	ps.stash(me, gen, rank, state)
	if !pv.isSphereWriter(rank) {
		return nil
	}
	fr := peerFrame{op: opReplicate, gen: gen, v: rank, idx: shardFull, size: uint32(len(state)), payload: state}
	ss, shared := pv.comm.(mpi.SharedSender)
	var buf []byte
	var pb *mpi.PooledBuf
	if shared {
		buf, pb = ss.AcquireBuffer(peerHeaderLen + len(state))
		encodePeerInto(buf, fr)
	} else {
		buf = encodePeer(fr)
	}
	defer func() {
		if pb != nil {
			pb.Release()
		}
	}()
	// Same walk as Buddies(rank), without materialising the slice — this
	// runs once per rank per generation on the hot write path.
	n := len(ps.cfg.Spheres)
	k := ps.cfg.Replicas
	if k > n-1 {
		k = n - 1
	}
	for i := 1; i <= k; i++ {
		buddy := ps.cfg.Spheres[(rank+i)%n][0]
		if !ps.alive(buddy) {
			continue
		}
		ps.pending.Add(1)
		var err error
		if shared {
			err = ss.SendPooled(buddy, tagPeerService, buf, pb)
		} else {
			err = pv.comm.Send(buddy, tagPeerService, buf)
		}
		if err != nil {
			ps.pending.Add(-1)
			return fmt.Errorf("checkpoint: replicating gen %d rank %d to %d: %w", gen, rank, buddy, err)
		}
		ps.mu.Lock()
		ps.registerHolderLocked(gen, rank, buddy, shardFull)
		ps.mu.Unlock()
		ps.met.replicas.Inc()
		ps.met.bytes.Add(uint64(len(state)))
	}
	return nil
}

// writeErasure is the erasure-coded layout: every replica stashes shard
// 0 (a plain slice of the image — the code is systematic), and the
// writer encodes the remaining DataShards+ParityShards−1 shards into
// one pooled scratch buffer and sends shard i to the writer replica of
// sphere (rank+i) mod n. Losing any ParityShards spheres therefore
// loses at most ParityShards distinct shards.
func (pv *peerView) writeErasure(gen uint64, rank int, state []byte) error {
	ps := pv.ps
	me := pv.comm.Rank()
	k, t := ps.cfg.DataShards, ps.totalShards
	sl := erasure.ShardLen(k, len(state))
	ps.stashImage(me, gen, rank, 0, uint32(len(state)), state[:sl])
	if !pv.isSphereWriter(rank) {
		return nil
	}
	buf, pb := snapPool.acquire(t * sl)
	var arr [maxPeerShards][]byte
	scratch := arr[:t]
	for i := 0; i < t; i++ {
		scratch[i] = buf[i*sl : i*sl : (i+1)*sl]
	}
	shards := ps.codec.Encode(state, scratch)
	n := len(ps.cfg.Spheres)
	for i := 1; i < t; i++ {
		dst := ps.cfg.Spheres[(rank+i)%n][0]
		if !ps.alive(dst) {
			continue // shard lost; parity absorbs up to ParityShards of these
		}
		fr := peerFrame{op: opReplicate, gen: gen, v: rank, idx: int16(i), size: uint32(len(state)), payload: shards[i]}
		ps.pending.Add(1)
		if err := sendPeerFrame(pv.comm, dst, tagPeerService, fr); err != nil {
			ps.pending.Add(-1)
			if pb != nil {
				pb.Release()
			}
			return fmt.Errorf("checkpoint: replicating gen %d rank %d shard %d to %d: %w", gen, rank, i, dst, err)
		}
		ps.mu.Lock()
		ps.registerHolderLocked(gen, rank, dst, int16(i))
		ps.mu.Unlock()
		ps.met.replicas.Inc()
		ps.met.bytes.Add(uint64(sl))
	}
	if pb != nil {
		pb.Release()
	}
	return nil
}

// Commit implements Storage: publish the generation in the peer control
// plane (requiring registered holders able to restore every rank — the
// mid-commit double-buffer guarantee), forward stable-cadence
// generations to the slow tier, and garbage-collect everything older
// than the previous committed generation.
func (pv *peerView) Commit(gen uint64, n int) error {
	ps := pv.ps
	ps.mu.Lock()
	c := ps.ctrlLocked(gen, true)
	if c.committedN == 0 {
		if !ps.coveredLocked(c, n, false, false) {
			ps.mu.Unlock()
			return fmt.Errorf("commit gen %d: %w", gen, ErrIncomplete)
		}
		c.committedN = n
		ps.gcLocked(gen)
	}
	ps.mu.Unlock()
	if ps.cfg.Slow != nil && gen%uint64(ps.cfg.StableEvery) == 0 {
		return ps.cfg.Slow.Commit(gen, n)
	}
	return nil
}

// gcLocked drops every generation older than the committed generation
// preceding justCommitted, keeping exactly the double buffer: the new
// generation and its committed predecessor.
func (ps *PeerStore) gcLocked(justCommitted uint64) {
	var prev uint64
	hasPrev := false
	for _, c := range ps.ctrls {
		if c.committedN > 0 && c.gen < justCommitted && (!hasPrev || c.gen > prev) {
			prev = c.gen
			hasPrev = true
		}
	}
	floor := justCommitted
	if hasPrev {
		floor = prev
	}
	if floor > ps.floor {
		ps.floor = floor
	}
	kept := ps.ctrls[:0]
	for _, c := range ps.ctrls {
		if c.gen < floor {
			ps.releaseCtrlLocked(c)
		} else {
			kept = append(kept, c)
		}
	}
	for i := len(kept); i < len(ps.ctrls); i++ {
		ps.ctrls[i] = nil
	}
	ps.ctrls = kept
	for p := range ps.ranks {
		for len(ps.ranks[p].gens) > 0 && ps.ranks[p].gens[0].gen < floor {
			ps.dropRankGenLocked(p, 0)
		}
	}
	ps.met.resident.Set(ps.resident)
}

// Latest implements Storage: the newest generation restorable right now,
// preferring the peer tier when its best live-covered generation is at
// least as new as stable storage's.
func (pv *peerView) Latest() (uint64, int, bool, error) {
	ps := pv.ps
	ps.mu.Lock()
	fastGen, fastN, fastOK := ps.usableLocked()
	ps.mu.Unlock()
	if ps.cfg.Slow != nil {
		slowGen, slowN, slowOK, err := ps.cfg.Slow.Latest()
		if err != nil {
			return 0, 0, false, err
		}
		if slowOK && (!fastOK || slowGen > fastGen) {
			return slowGen, slowN, true, nil
		}
	}
	return fastGen, fastN, fastOK, nil
}

// Read implements Storage: own full image first (survivors in full-copy
// mode restore with zero traffic), then bounded-retry fetch over the
// live holders — reconstructing from any DataShards surviving shards in
// erasure mode — then, for generations stable storage also has, the
// slow tier.
func (pv *peerView) Read(gen uint64, rank int) ([]byte, error) {
	ps := pv.ps
	ps.mu.Lock()
	c := ps.ctrlLocked(gen, false)
	fastCommitted := c != nil && c.committedN > 0
	ps.mu.Unlock()
	if !fastCommitted {
		if ps.cfg.Slow != nil {
			return ps.cfg.Slow.Read(gen, rank)
		}
		return nil, fmt.Errorf("read gen %d: %w", gen, ErrNotCommitted)
	}
	if state, ok := ps.lookup(pv.comm.Rank(), gen, rank); ok {
		ps.met.localHits.Inc()
		return state, nil
	}
	state, err := pv.fetch(gen, rank)
	if err == nil {
		// Cache the full image: this rank is now a holder too, which
		// both localises its future restores and thickens the holder
		// set.
		ps.stash(pv.comm.Rank(), gen, rank, state)
		return state, nil
	}
	if errors.Is(err, ErrPeerFetchExhausted) && ps.cfg.Slow != nil {
		if slow, serr := ps.cfg.Slow.Read(gen, rank); serr == nil {
			return slow, nil
		}
	}
	return nil, err
}

// fetch asks live holders for the image, FetchRetries rounds over the
// candidate set with exponentially backed-off pauses between rounds (a
// replicate may still be in a buddy's mailbox when the fetch starts).
// In erasure mode it accumulates distinct shards — seeded with this
// rank's own, if any — and reconstructs as soon as DataShards are in
// hand; a full image from any holder short-circuits either mode.
func (pv *peerView) fetch(gen uint64, rank int) ([]byte, error) {
	ps := pv.ps
	me := pv.comm.Rank()
	sp := ps.cfg.Flight.StartSpan("peer_fetch", me, rank, int(gen))
	defer sp.End()

	var shards [][]byte
	var size uint32
	have := 0
	if ps.codec != nil {
		shards = make([][]byte, ps.totalShards)
		if data, idx, sz, ok := ps.lookupAny(me, gen, rank); ok && idx >= 0 && int(idx) < ps.totalShards {
			shards[idx] = data
			size = sz
			have = 1
		}
	}
	finish := func(c, round int) ([]byte, error) {
		state, err := ps.codec.Reconstruct(shards, int(size))
		if err != nil {
			return nil, fmt.Errorf("gen %d rank %d: %w", gen, rank, err)
		}
		ps.met.remoteHits.Inc()
		ps.cfg.Trace.Emit("peer_fetch", me, rank, int(gen), map[string]any{
			"holder": c, "bytes": len(state), "round": round, "shards": have,
		})
		return state, nil
	}
	backoff := ps.cfg.FetchBackoff
	for round := 0; round < ps.cfg.FetchRetries; round++ {
		if round > 0 {
			ps.met.retries.Inc()
			time.Sleep(backoff)
			backoff *= 2
		}
		ps.mu.Lock()
		var candidates []int
		if c := ps.ctrlLocked(gen, false); c != nil {
			for _, h := range c.holders[rank] {
				candidates = append(candidates, int(h.phys))
			}
		}
		ps.mu.Unlock()
		sort.Ints(candidates)
		for _, c := range candidates {
			if c == me || !ps.alive(c) {
				continue
			}
			if err := sendPeerFrame(pv.comm, c, tagPeerService, peerFrame{op: opFetch, gen: gen, v: rank}); err != nil {
				return nil, err
			}
			msg, err := pv.comm.Recv(c, tagPeerReply)
			if errors.Is(err, mpi.ErrPeerDead) {
				continue // holder died mid-request; try the next one
			}
			if err != nil {
				return nil, err
			}
			fr, derr := decodePeer(msg.Data)
			if derr != nil || fr.gen != gen || fr.v != rank || fr.op != opFound {
				msg.Release()
				continue
			}
			if fr.idx == shardFull {
				state := make([]byte, len(fr.payload))
				copy(state, fr.payload)
				msg.Release()
				ps.met.remoteHits.Inc()
				ps.cfg.Trace.Emit("peer_fetch", me, rank, int(gen), map[string]any{
					"holder": c, "bytes": len(state), "round": round,
				})
				return state, nil
			}
			if ps.codec != nil && fr.idx >= 0 && int(fr.idx) < ps.totalShards && shards[fr.idx] == nil {
				shard := make([]byte, len(fr.payload))
				copy(shard, fr.payload)
				shards[fr.idx] = shard
				size = fr.size
				have++
				msg.Release()
				if have >= ps.cfg.DataShards {
					return finish(c, round)
				}
				continue
			}
			msg.Release()
		}
	}
	ps.met.exhausted.Inc()
	return nil, fmt.Errorf("gen %d rank %d after %d rounds (%d shards in hand): %w",
		gen, rank, ps.cfg.FetchRetries, have, ErrPeerFetchExhausted)
}

// Drop implements Storage.
func (pv *peerView) Drop(gen uint64) error {
	ps := pv.ps
	ps.mu.Lock()
	for p := range ps.ranks {
		for i := 0; i < len(ps.ranks[p].gens); {
			if ps.ranks[p].gens[i].gen == gen {
				ps.dropRankGenLocked(p, i)
			} else {
				i++
			}
		}
	}
	kept := ps.ctrls[:0]
	for _, c := range ps.ctrls {
		if c.gen == gen {
			ps.releaseCtrlLocked(c)
		} else {
			kept = append(kept, c)
		}
	}
	for i := len(kept); i < len(ps.ctrls); i++ {
		ps.ctrls[i] = nil
	}
	ps.ctrls = kept
	ps.met.resident.Set(ps.resident)
	ps.mu.Unlock()
	if ps.cfg.Slow != nil {
		return ps.cfg.Slow.Drop(gen)
	}
	return nil
}
