//go:build race

package checkpoint

// raceEnabled reports whether the race detector instruments this build;
// allocation-budget tests skip under it (instrumentation allocates).
const raceEnabled = true
