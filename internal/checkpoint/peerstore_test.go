package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/simmpi"
)

// testSpheres is the degree-2, four-virtual-rank topology most peer
// tests use: sphere v = {2v, 2v+1}.
func testSpheres() [][]int {
	return [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}}
}

func newTestPeerStore(t *testing.T, cfg PeerStoreConfig) *PeerStore {
	t.Helper()
	if cfg.Spheres == nil {
		cfg.Spheres = testSpheres()
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 1
	}
	ps, err := NewPeerStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func TestPeerStoreValidation(t *testing.T) {
	if _, err := NewPeerStore(PeerStoreConfig{}); err == nil {
		t.Error("empty sphere map accepted")
	}
	if _, err := NewPeerStore(PeerStoreConfig{Spheres: [][]int{{0}}, Replicas: -1}); err == nil {
		t.Error("negative replicas accepted")
	}
	if _, err := NewPeerStore(PeerStoreConfig{Spheres: [][]int{{0}, {0}}}); err == nil {
		t.Error("overlapping spheres accepted")
	}
	if _, err := NewPeerStore(PeerStoreConfig{Spheres: [][]int{{0}, {}}}); err == nil {
		t.Error("empty sphere accepted")
	}
}

func TestBuddiesAreSphereDeterministic(t *testing.T) {
	ps := newTestPeerStore(t, PeerStoreConfig{Replicas: 2})
	// Buddies of v are the first replicas of the next k spheres, wrapping.
	want := map[int][]int{
		0: {2, 4},
		1: {4, 6},
		2: {6, 0},
		3: {0, 2},
	}
	for v, w := range want {
		got := ps.Buddies(v)
		if fmt.Sprint(got) != fmt.Sprint(w) {
			t.Errorf("Buddies(%d) = %v, want %v", v, got, w)
		}
	}
}

func TestBuddiesClampedToOtherSpheres(t *testing.T) {
	ps := newTestPeerStore(t, PeerStoreConfig{
		Spheres:  [][]int{{0}, {1}},
		Replicas: 5, // more than the single other sphere
	})
	if got := ps.Buddies(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Buddies(0) = %v, want [1]", got)
	}
}

// runPeerWorld runs servers on every rank of an 8-rank world plus the
// given body on rank 0, tearing everything down via Interrupt.
func runPeerWorld(t *testing.T, ps *PeerStore, body func(w *simmpi.World) error) {
	t.Helper()
	w, err := simmpi.NewWorld(8)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		c, cerr := w.Comm(p)
		if cerr != nil {
			t.Fatal(cerr)
		}
		wg.Add(1)
		go func(c *simmpi.Comm) {
			defer wg.Done()
			ps.Serve(c)
		}(c)
	}
	bodyErr := body(w)
	w.Interrupt()
	wg.Wait()
	if bodyErr != nil {
		t.Fatal(bodyErr)
	}
}

func TestPeerWriteCommitReadRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	ps := newTestPeerStore(t, PeerStoreConfig{Obs: reg})
	runPeerWorld(t, ps, func(w *simmpi.World) error {
		// One writer per sphere pushes its image; the view is bound to the
		// sphere's first (writer) replica.
		for v := 0; v < 4; v++ {
			c, err := w.Comm(2 * v)
			if err != nil {
				return err
			}
			view := ps.View(c)
			if err := view.Write(1, v, []byte(fmt.Sprintf("state-%d", v))); err != nil {
				return err
			}
		}
		c0, _ := w.Comm(0)
		view := ps.View(c0)
		if err := view.Commit(1, 4); err != nil {
			return err
		}
		gen, n, ok, err := view.Latest()
		if err != nil || !ok || gen != 1 || n != 4 {
			return fmt.Errorf("Latest = (%d,%d,%v,%v), want (1,4,true,nil)", gen, n, ok, err)
		}
		// Rank 0 holds its own image: local read.
		state, err := view.Read(1, 0)
		if err != nil || !bytes.Equal(state, []byte("state-0")) {
			return fmt.Errorf("local read = %q, %v", state, err)
		}
		// Rank 0 does not hold sphere 1's image: remote fetch from a
		// holder (2, 3, or buddy 4), served by the Serve goroutines.
		state, err = view.Read(1, 1)
		if err != nil || !bytes.Equal(state, []byte("state-1")) {
			return fmt.Errorf("remote read = %q, %v", state, err)
		}
		return nil
	})
	got := map[string]uint64{}
	for _, c := range reg.Snapshot().Counters {
		got[c.Name] = c.Value
	}
	if got["peerstore_replicas_total"] != 4 {
		t.Errorf("peerstore_replicas_total = %d, want 4 (one buddy per sphere)", got["peerstore_replicas_total"])
	}
	if got["peer_fetch_local_total"] == 0 {
		t.Error("no local fetch recorded")
	}
	if got["peer_fetch_remote_total"] == 0 {
		t.Error("no remote fetch recorded")
	}
}

func TestPeerCommitRequiresEveryRank(t *testing.T) {
	ps := newTestPeerStore(t, PeerStoreConfig{})
	runPeerWorld(t, ps, func(w *simmpi.World) error {
		c0, _ := w.Comm(0)
		view := ps.View(c0)
		if err := view.Write(1, 0, []byte("only-rank-0")); err != nil {
			return err
		}
		if err := view.Commit(1, 4); !errors.Is(err, ErrIncomplete) {
			return fmt.Errorf("commit of partial generation: %v, want ErrIncomplete", err)
		}
		return nil
	})
}

func TestPeerGCKeepsDoubleBuffer(t *testing.T) {
	ps := newTestPeerStore(t, PeerStoreConfig{Spheres: [][]int{{0}, {1}}})
	w, err := simmpi.NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)
	// Stash directly (no buddy traffic needed for control-plane tests).
	for gen := uint64(1); gen <= 3; gen++ {
		ps.stash(0, gen, 0, []byte{byte(gen)})
		ps.stash(1, gen, 1, []byte{byte(gen)})
		view := ps.View(c0)
		if err := view.Commit(gen, 2); err != nil {
			t.Fatal(err)
		}
	}
	_ = c1
	// Gen 1 is older than the double buffer {2, 3}: gone everywhere.
	if _, ok := ps.lookup(0, 1, 0); ok {
		t.Error("gen 1 survived GC")
	}
	for gen := uint64(2); gen <= 3; gen++ {
		if _, ok := ps.lookup(0, gen, 0); !ok {
			t.Errorf("gen %d missing from double buffer", gen)
		}
	}
	if gen, _, ok := ps.UsableGeneration(); !ok || gen != 3 {
		t.Fatalf("UsableGeneration = (%d, %v), want (3, true)", gen, ok)
	}
}

// deadSet is a Liveness where listed ranks are dead.
type deadSet map[int]bool

func (d deadSet) Alive(rank int) bool { return !d[rank] }

func TestUsableGenerationRespectsLiveness(t *testing.T) {
	dead := deadSet{}
	ps := newTestPeerStore(t, PeerStoreConfig{
		Spheres: [][]int{{0}, {1}},
		Live:    dead,
	})
	ps.stash(0, 1, 0, []byte("a"))
	ps.stash(1, 1, 1, []byte("b"))
	w, _ := simmpi.NewWorld(2)
	c0, _ := w.Comm(0)
	if err := ps.View(c0).Commit(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := ps.UsableGeneration(); !ok {
		t.Fatal("fully-held generation not usable")
	}
	dead[1] = true // rank 1 was the only holder of virtual rank 1
	if _, _, ok := ps.UsableGeneration(); ok {
		t.Fatal("generation with a dead sole holder reported usable")
	}
}

func TestInvalidateRankRemovesHolder(t *testing.T) {
	ps := newTestPeerStore(t, PeerStoreConfig{Spheres: [][]int{{0}, {1}}})
	ps.stash(0, 1, 0, []byte("a"))
	ps.stash(1, 1, 0, []byte("a")) // rank 1 also holds v0's image
	ps.stash(1, 1, 1, []byte("b"))
	w, _ := simmpi.NewWorld(2)
	c0, _ := w.Comm(0)
	if err := ps.View(c0).Commit(1, 2); err != nil {
		t.Fatal(err)
	}
	ps.InvalidateRank(1)
	if _, ok := ps.lookup(1, 1, 0); ok {
		t.Error("invalidated rank still holds images")
	}
	// v1's only holder was rank 1: the generation is no longer usable.
	if _, _, ok := ps.UsableGeneration(); ok {
		t.Fatal("generation usable after its sole holder was invalidated")
	}
}

func TestPeerFetchExhaustedFallsBackToSlow(t *testing.T) {
	slow := NewMemStorage()
	reg := obs.NewRegistry()
	dead := deadSet{}
	ps := newTestPeerStore(t, PeerStoreConfig{
		Spheres:      [][]int{{0}, {1}},
		Slow:         slow,
		Live:         dead,
		FetchRetries: 2,
		FetchBackoff: 50 * time.Microsecond,
		Obs:          reg,
	})
	// Gen 1 exists in both tiers; then v1's only holder dies.
	if err := slow.Write(1, 1, []byte("stable")); err != nil {
		t.Fatal(err)
	}
	if err := slow.Write(1, 0, []byte("stable0")); err != nil {
		t.Fatal(err)
	}
	if err := slow.Commit(1, 2); err != nil {
		t.Fatal(err)
	}
	ps.stash(0, 1, 0, []byte("fast0"))
	ps.stash(1, 1, 1, []byte("fast1"))
	w, _ := simmpi.NewWorld(2)
	c0, _ := w.Comm(0)
	view := ps.View(c0)
	if err := view.Commit(1, 2); err != nil {
		t.Fatal(err)
	}
	dead[1] = true
	// Rank 0 restoring v1: no local copy, holder dead, every retry round
	// exhausted — but the same generation is on stable storage.
	state, err := view.Read(1, 1)
	if err != nil {
		t.Fatalf("read with slow fallback: %v", err)
	}
	if !bytes.Equal(state, []byte("stable")) {
		t.Fatalf("read = %q, want the stable tier's copy", state)
	}
	got := map[string]uint64{}
	for _, c := range reg.Snapshot().Counters {
		got[c.Name] = c.Value
	}
	if got["peer_fetch_exhausted_total"] != 1 {
		t.Errorf("peer_fetch_exhausted_total = %d, want 1", got["peer_fetch_exhausted_total"])
	}
	if got["peer_fetch_retries_total"] == 0 {
		t.Error("no retry rounds recorded")
	}
}

func TestPeerFetchExhaustedWithoutSlowTier(t *testing.T) {
	dead := deadSet{1: true}
	ps := newTestPeerStore(t, PeerStoreConfig{
		Spheres:      [][]int{{0}, {1}},
		Live:         dead,
		FetchRetries: 2,
		FetchBackoff: 50 * time.Microsecond,
	})
	ps.stash(0, 1, 0, []byte("a"))
	ps.stash(1, 1, 1, []byte("b"))
	ps.mu.Lock()
	ps.ctrlLocked(1, true).committedN = 2 // force-publish despite the dead holder
	ps.mu.Unlock()
	w, _ := simmpi.NewWorld(2)
	c0, _ := w.Comm(0)
	if _, err := ps.View(c0).Read(1, 1); !errors.Is(err, ErrPeerFetchExhausted) {
		t.Fatalf("read = %v, want ErrPeerFetchExhausted", err)
	}
}

func TestPeerStableCadence(t *testing.T) {
	slow := NewMemStorage()
	ps := newTestPeerStore(t, PeerStoreConfig{
		Spheres:     [][]int{{0}, {1}},
		Slow:        slow,
		StableEvery: 3,
	})
	w, _ := simmpi.NewWorld(2)
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)
	v0, v1 := ps.View(c0), ps.View(c1)
	for gen := uint64(1); gen <= 6; gen++ {
		if err := v0.Write(gen, 0, []byte{byte(gen)}); err != nil {
			t.Fatal(err)
		}
		if err := v1.Write(gen, 1, []byte{byte(gen)}); err != nil {
			t.Fatal(err)
		}
		if err := v0.Commit(gen, 2); err != nil {
			t.Fatal(err)
		}
	}
	// Only generations 3 and 6 reach stable storage.
	gen, _, ok, err := slow.Latest()
	if err != nil || !ok || gen != 6 {
		t.Fatalf("slow Latest = (%d,%v,%v), want (6,true,nil)", gen, ok, err)
	}
	if _, err := slow.Read(3, 0); err != nil {
		t.Errorf("gen 3 missing from stable tier: %v", err)
	}
	if _, err := slow.Read(5, 0); err == nil {
		t.Error("off-cadence gen 5 reached stable storage")
	}
}

func TestPeerLatestPrefersNewerStable(t *testing.T) {
	slow := NewMemStorage()
	dead := deadSet{}
	ps := newTestPeerStore(t, PeerStoreConfig{
		Spheres: [][]int{{0}, {1}},
		Slow:    slow,
		Live:    dead,
	})
	// Stable has gen 2; the peer tier's newest usable is gen 1.
	for _, gen := range []uint64{2} {
		if err := slow.Write(gen, 0, []byte("s0")); err != nil {
			t.Fatal(err)
		}
		if err := slow.Write(gen, 1, []byte("s1")); err != nil {
			t.Fatal(err)
		}
		if err := slow.Commit(gen, 2); err != nil {
			t.Fatal(err)
		}
	}
	ps.stash(0, 1, 0, []byte("f0"))
	ps.stash(1, 1, 1, []byte("f1"))
	w, _ := simmpi.NewWorld(2)
	c0, _ := w.Comm(0)
	view := ps.View(c0)
	ps.mu.Lock()
	ps.ctrlLocked(1, true).committedN = 2
	ps.mu.Unlock()
	gen, _, ok, err := view.Latest()
	if err != nil || !ok || gen != 2 {
		t.Fatalf("Latest = (%d,%v,%v), want stable gen 2", gen, ok, err)
	}
	// Reading the stable-only generation routes to the slow tier.
	state, err := view.Read(2, 1)
	if err != nil || !bytes.Equal(state, []byte("s1")) {
		t.Fatalf("stable-gen read = %q, %v", state, err)
	}
}

func TestPeerCodecRoundTripAndTruncation(t *testing.T) {
	in := peerFrame{op: opFound, gen: 42, v: 3, idx: 5, size: 4096, payload: []byte("payload")}
	frame := encodePeer(in)
	got, err := decodePeer(frame)
	if err != nil || got.op != opFound || got.gen != 42 || got.v != 3 ||
		got.idx != 5 || got.size != 4096 || !bytes.Equal(got.payload, []byte("payload")) {
		t.Fatalf("decode = %+v, %v", got, err)
	}
	full := peerFrame{op: opReplicate, gen: 1, v: 0, idx: shardFull, size: 7, payload: []byte("fullimg")}
	rt, err := decodePeer(encodePeer(full))
	if err != nil || rt.idx != shardFull {
		t.Fatalf("shardFull did not round-trip: %+v, %v", rt, err)
	}
	if _, err := decodePeer(frame[:peerHeaderLen-1]); err == nil {
		t.Fatal("truncated frame decoded")
	}
}
