package checkpoint

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/simmpi"
	"repro/internal/stats"
)

func TestIncrementalFullThenDeltas(t *testing.T) {
	enc := &IncrementalEncoder{PageSize: 8, FullEvery: 100}
	state := make([]byte, 64)
	img1raw, st1 := enc.Encode(state)
	if !st1.Full {
		t.Fatal("first image must be full")
	}
	// Encode's return is scratch, valid only until the next call — copy
	// because we hold img1 across the second Encode.
	img1 := append([]byte(nil), img1raw...)
	// Touch one byte: exactly one dirty page.
	state[17] = 0xAB
	img2, st2 := enc.Encode(state)
	if st2.Full {
		t.Fatal("second image should be a delta")
	}
	if st2.Pages != 1 {
		t.Fatalf("dirty pages = %d, want 1", st2.Pages)
	}
	if st2.EncodedBytes >= st1.EncodedBytes {
		t.Fatalf("delta (%d bytes) not smaller than full (%d)", st2.EncodedBytes, st1.EncodedBytes)
	}
	var dec IncrementalDecoder
	if err := dec.Apply(img1); err != nil {
		t.Fatal(err)
	}
	if err := dec.Apply(img2); err != nil {
		t.Fatal(err)
	}
	if got := dec.Current(); !bytes.Equal(got, state) {
		t.Fatalf("reconstructed state differs")
	}
}

func TestIncrementalStackedDeltas(t *testing.T) {
	enc := &IncrementalEncoder{PageSize: 4, FullEvery: 100}
	var dec IncrementalDecoder
	state := []byte("the quick brown fox jumps over the lazy dog!")
	rng := stats.NewStream(5)
	for round := 0; round < 30; round++ {
		// Mutate a few random bytes.
		for k := 0; k < 3; k++ {
			state[rng.Intn(len(state))] = byte(rng.Intn(256))
		}
		img, _ := enc.Encode(state)
		if err := dec.Apply(img); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !bytes.Equal(dec.Current(), state) {
			t.Fatalf("round %d: reconstruction diverged", round)
		}
	}
}

func TestIncrementalForcedFullEvery(t *testing.T) {
	enc := &IncrementalEncoder{PageSize: 4, FullEvery: 3}
	state := make([]byte, 16)
	fulls := 0
	for i := 0; i < 9; i++ {
		state[0] = byte(i)
		_, st := enc.Encode(state)
		if st.Full {
			fulls++
		}
	}
	// Pattern: full, d, d, full, d, d, full, d, d.
	if fulls != 3 {
		t.Fatalf("full images = %d, want 3", fulls)
	}
}

func TestIncrementalSizeChangeForcesFull(t *testing.T) {
	enc := &IncrementalEncoder{}
	_, st := enc.Encode(make([]byte, 100))
	if !st.Full {
		t.Fatal("first must be full")
	}
	_, st = enc.Encode(make([]byte, 200))
	if !st.Full {
		t.Fatal("grown state must force a full image")
	}
}

func TestIncrementalUnchangedStateEmptyDelta(t *testing.T) {
	enc := &IncrementalEncoder{PageSize: 16, FullEvery: 100}
	state := bytes.Repeat([]byte{7}, 256)
	enc.Encode(state)
	img, st := enc.Encode(state)
	if st.Full || st.Pages != 0 {
		t.Fatalf("unchanged state: %+v", st)
	}
	if st.EncodedBytes > 32 {
		t.Fatalf("empty delta weighs %d bytes", st.EncodedBytes)
	}
	var dec IncrementalDecoder
	dec.Apply(mustFull(t, state))
	if err := dec.Apply(img); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.Current(), state) {
		t.Fatal("state drifted through empty delta")
	}
}

func mustFull(t *testing.T, state []byte) []byte {
	t.Helper()
	enc := &IncrementalEncoder{}
	img, st := enc.Encode(state)
	if !st.Full {
		t.Fatal("expected full image")
	}
	return img
}

func TestIncrementalDecoderRejectsGarbage(t *testing.T) {
	var dec IncrementalDecoder
	if err := dec.Apply(nil); err == nil {
		t.Error("nil image accepted")
	}
	if err := dec.Apply([]byte("not an image at all")); err == nil {
		t.Error("bad magic accepted")
	}
	// Delta without a preceding full image.
	enc := &IncrementalEncoder{PageSize: 4, FullEvery: 100}
	state := make([]byte, 16)
	enc.Encode(state)
	state[3] = 9
	delta, _ := enc.Encode(state)
	var fresh IncrementalDecoder
	if err := fresh.Apply(delta); err == nil {
		t.Error("delta over empty state accepted")
	}
	// Truncated delta payload.
	var ok IncrementalDecoder
	ok.Apply(mustFull(t, make([]byte, 16)))
	if err := ok.Apply(delta[:len(delta)-2]); err == nil {
		t.Error("truncated delta accepted")
	}
}

func TestIncrementalPropertyRoundTrip(t *testing.T) {
	f := func(chunks [][]byte, pageSizeRaw uint8) bool {
		if len(chunks) == 0 {
			return true
		}
		size := 64
		enc := &IncrementalEncoder{PageSize: int(pageSizeRaw%32) + 1, FullEvery: 4}
		var dec IncrementalDecoder
		state := make([]byte, size)
		for _, chunk := range chunks {
			for i, b := range chunk {
				state[(i*7+int(b))%size] ^= b
			}
			img, _ := enc.Encode(state)
			if err := dec.Apply(img); err != nil {
				return false
			}
			if !bytes.Equal(dec.Current(), state) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedStorageRoundTrip(t *testing.T) {
	inner := NewMemStorage()
	s := NewCompressedStorage(inner)
	// Highly compressible state.
	state := bytes.Repeat([]byte("abcd"), 4096)
	if err := s.Write(1, 0, state); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(1, 1); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, state) {
		t.Fatal("round trip mismatch")
	}
	// Verify it actually compressed on the inner store.
	raw, err := inner.Read(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) >= len(state)/4 {
		t.Fatalf("stored %d bytes for a %d-byte repetitive image", len(raw), len(state))
	}
}

func TestCompressedStorageDelegates(t *testing.T) {
	s := NewCompressedStorage(NewMemStorage())
	if _, _, ok, err := s.Latest(); err != nil || ok {
		t.Fatalf("Latest on empty: %v %v", ok, err)
	}
	if err := s.Write(2, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(2, 1); err != nil {
		t.Fatal(err)
	}
	gen, n, ok, err := s.Latest()
	if err != nil || !ok || gen != 2 || n != 1 {
		t.Fatalf("Latest = %d/%d/%v/%v", gen, n, ok, err)
	}
	if err := s.Drop(2); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, _ := s.Latest(); ok {
		t.Fatal("Drop did not propagate")
	}
}

func TestCompressedStorageDetectsCorruption(t *testing.T) {
	inner := NewMemStorage()
	s := NewCompressedStorage(inner)
	if err := s.Write(1, 0, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// Corrupt the stored compressed bytes directly.
	if err := inner.Write(1, 0, []byte("definitely not deflate")); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(1, 0); err == nil {
		t.Fatal("corrupt stream decoded successfully")
	}
}

func TestCompressedThroughClientEndToEnd(t *testing.T) {
	// The client sees a normal Storage; compression is transparent.
	store := NewCompressedStorage(NewMemStorage())
	runWorld(t, 2, func(c *simmpi.Comm) error {
		cl, err := NewClient(c, Config{Storage: store})
		if err != nil {
			return err
		}
		state := bytes.Repeat([]byte{byte(c.Rank())}, 10000)
		if err := cl.Checkpoint(state, true); err != nil {
			return err
		}
		got, ok, err := cl.Restore()
		if err != nil || !ok {
			return err
		}
		if !bytes.Equal(got, state) {
			t.Errorf("rank %d: restore mismatch", c.Rank())
		}
		return nil
	})
}

// TestIncrementalEncodeSteadyStateAllocs pins the scratch-reuse contract:
// once the encoder's output buffer and dirty-page slice have grown to the
// workload's size, steady-state delta encoding allocates nothing.
func TestIncrementalEncodeSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under the race detector")
	}
	enc := &IncrementalEncoder{PageSize: 256, FullEvery: 1 << 30}
	state := make([]byte, 1<<16)
	i := 0
	round := func() {
		// Touch a handful of pages so every round is a non-empty delta.
		for k := 0; k < 4; k++ {
			state[(i*7919+k*104729)%len(state)]++
		}
		i++
		enc.Encode(state)
	}
	for k := 0; k < 20; k++ {
		round() // grow scratch and dirty to their steady-state sizes
	}
	if avg := testing.AllocsPerRun(100, round); avg > 0 {
		t.Errorf("steady-state delta Encode allocates %.2f, want 0", avg)
	}
	// Forced full images must also ride the same scratch buffer.
	encFull := &IncrementalEncoder{PageSize: 256, FullEvery: 1}
	for k := 0; k < 20; k++ {
		encFull.Encode(state)
	}
	if avg := testing.AllocsPerRun(100, func() { encFull.Encode(state) }); avg > 0 {
		t.Errorf("steady-state full Encode allocates %.2f, want 0", avg)
	}
}

// FuzzIncrementalDecoder hardens the image decoder against arbitrary
// bytes: it must never panic and never corrupt previously applied state
// silently on rejected input.
func FuzzIncrementalDecoder(f *testing.F) {
	enc := &IncrementalEncoder{PageSize: 8, FullEvery: 4}
	fullRaw, _ := enc.Encode(bytes.Repeat([]byte{1}, 32))
	full := append([]byte(nil), fullRaw...) // scratch is reused by the next Encode
	state := bytes.Repeat([]byte{1}, 32)
	state[3] = 9
	delta, _ := enc.Encode(state)
	f.Add(full)
	f.Add(delta)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var dec IncrementalDecoder
		if err := dec.Apply(full); err != nil {
			t.Fatal(err)
		}
		before := dec.Checksum()
		if err := dec.Apply(data); err != nil {
			// Rejected input may have partially patched pages only if it
			// failed mid-delta; but a failed *parse* before any page copy
			// (bad magic/kind/size) must leave state untouched.
			if len(data) < 9 && dec.Checksum() != before {
				t.Fatal("short garbage mutated state")
			}
		}
	})
}
