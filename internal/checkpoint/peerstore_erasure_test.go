package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/simmpi"
)

// singleSpheres builds n degree-1 spheres: sphere v = {v}. With one
// rank per sphere the resident-byte accounting is exact: full-copy mode
// costs S·(replicas+1) per snapshot, erasure mode S·(k+m)/k.
func singleSpheres(n int) [][]int {
	out := make([][]int, n)
	for v := range out {
		out[v] = []int{v}
	}
	return out
}

// runPeerWorldN is runPeerWorld for an arbitrary world size.
func runPeerWorldN(t *testing.T, n int, ps *PeerStore, body func(w *simmpi.World) error) {
	t.Helper()
	w, err := simmpi.NewWorld(n)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		c, cerr := w.Comm(p)
		if cerr != nil {
			t.Fatal(cerr)
		}
		wg.Add(1)
		go func(c *simmpi.Comm) {
			defer wg.Done()
			ps.Serve(c)
		}(c)
	}
	bodyErr := body(w)
	w.Interrupt()
	wg.Wait()
	if bodyErr != nil {
		t.Fatal(bodyErr)
	}
}

func TestErasureConfigValidation(t *testing.T) {
	base := func() PeerStoreConfig { return PeerStoreConfig{Spheres: singleSpheres(4)} }
	for name, mutate := range map[string]func(*PeerStoreConfig){
		"data shards of 1":         func(c *PeerStoreConfig) { c.DataShards = 1; c.ParityShards = 1 },
		"no parity":                func(c *PeerStoreConfig) { c.DataShards = 2 },
		"parity without data":      func(c *PeerStoreConfig) { c.ParityShards = 1 },
		"replicas plus shards":     func(c *PeerStoreConfig) { c.Replicas = 1; c.DataShards = 2; c.ParityShards = 1 },
		"more shards than spheres": func(c *PeerStoreConfig) { c.DataShards = 3; c.ParityShards = 2 },
		"negative budget":          func(c *PeerStoreConfig) { c.BudgetBytes = -1 },
	} {
		cfg := base()
		mutate(&cfg)
		if _, err := NewPeerStore(cfg); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := NewPeerStore(PeerStoreConfig{Spheres: singleSpheres(4), DataShards: 2, ParityShards: 2}); err != nil {
		t.Fatalf("valid erasure config rejected: %v", err)
	}
}

// TestErasureWritePlacement checks the shard layout: shard 0 stays in
// the writer's sphere, shard i lands on the writer replica of sphere
// (v+i) mod n, and the resident footprint is S·(k+m)/k per snapshot.
func TestErasureWritePlacement(t *testing.T) {
	const size = 4096
	ps, err := NewPeerStore(PeerStoreConfig{Spheres: singleSpheres(4), DataShards: 2, ParityShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	state := bytes.Repeat([]byte{0x7E}, size)
	runPeerWorldN(t, 4, ps, func(w *simmpi.World) error {
		for v := 0; v < 4; v++ {
			c, _ := w.Comm(v)
			if err := ps.View(c).Write(1, v, state); err != nil {
				return err
			}
		}
		ps.Settle()
		// Placement of v=0: shard 0 on rank 0, shard 1 on rank 1, shard 2
		// (parity) on rank 2; rank 3 holds nothing of v=0.
		for want, phys := range []int{0, 1, 2} {
			data, idx, sz, ok := ps.lookupAny(phys, 1, 0)
			if !ok || int(idx) != want || sz != size || len(data) != size/2 {
				return fmt.Errorf("rank %d: shard=(%d,%d,%d bytes,ok=%v), want shard %d of %d bytes",
					phys, idx, sz, len(data), ok, want, size/2)
			}
		}
		if _, _, _, ok := ps.lookupAny(3, 1, 0); ok {
			return fmt.Errorf("rank 3 holds a shard of v=0 outside the layout")
		}
		c0, _ := w.Comm(0)
		if err := ps.View(c0).Commit(1, 4); err != nil {
			return err
		}
		ps.mu.Lock()
		resident := ps.resident
		ps.mu.Unlock()
		// 4 snapshots × S×(k+m)/k = 4 × 4096×3/2.
		if want := int64(4 * size * 3 / 2); resident != want {
			return fmt.Errorf("resident = %d bytes, want %d (S·(k+m)/k per snapshot)", resident, want)
		}
		return nil
	})
}

// TestResidentBytesScaling pins the headline economics side by side:
// the same snapshots cost S·(replicas+1) resident bytes in full-copy
// mode and S·(k+m)/k in erasure mode.
func TestResidentBytesScaling(t *testing.T) {
	const size, nv = 4096, 4
	measure := func(cfg PeerStoreConfig) int64 {
		t.Helper()
		cfg.Spheres = singleSpheres(nv)
		ps, err := NewPeerStore(cfg)
		if err != nil {
			t.Fatal(err)
		}
		state := bytes.Repeat([]byte{0x11}, size)
		var resident int64
		runPeerWorldN(t, nv, ps, func(w *simmpi.World) error {
			for v := 0; v < nv; v++ {
				c, _ := w.Comm(v)
				if err := ps.View(c).Write(1, v, state); err != nil {
					return err
				}
			}
			ps.Settle()
			c0, _ := w.Comm(0)
			if err := ps.View(c0).Commit(1, nv); err != nil {
				return err
			}
			ps.mu.Lock()
			resident = ps.resident
			ps.mu.Unlock()
			return nil
		})
		return resident
	}
	fullCopy := measure(PeerStoreConfig{Replicas: 1})
	erasure := measure(PeerStoreConfig{DataShards: 2, ParityShards: 1})
	if want := int64(nv * size * (1 + 1)); fullCopy != want {
		t.Errorf("full-copy resident = %d, want %d (S·(replicas+1) per snapshot)", fullCopy, want)
	}
	if want := int64(nv * size * 3 / 2); erasure != want {
		t.Errorf("erasure resident = %d, want %d (S·(k+m)/k per snapshot)", erasure, want)
	}
	if erasure >= fullCopy {
		t.Errorf("erasure footprint %d not below full-copy %d", erasure, fullCopy)
	}
}

// TestErasureReadPaths exercises the degraded fetch: a reader holding
// its own shard needs only k−1 remote shards; a reader holding nothing
// needs k; and the reconstructed bytes are identical to the original.
func TestErasureReadPaths(t *testing.T) {
	dead := deadSet{}
	reg := obs.NewRegistry()
	ps, err := NewPeerStore(PeerStoreConfig{
		Spheres: singleSpheres(4), DataShards: 2, ParityShards: 1,
		Live: dead, FetchRetries: 2, FetchBackoff: 50 * time.Microsecond, Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	states := make([][]byte, 4)
	rng := rand.New(rand.NewSource(9))
	for v := range states {
		states[v] = make([]byte, 1000+v) // odd sizes: erasure padding in play
		rng.Read(states[v])
	}
	runPeerWorldN(t, 4, ps, func(w *simmpi.World) error {
		for v := 0; v < 4; v++ {
			c, _ := w.Comm(v)
			if err := ps.View(c).Write(1, v, states[v]); err != nil {
				return err
			}
		}
		ps.Settle()
		c0, _ := w.Comm(0)
		view := ps.View(c0)
		if err := view.Commit(1, 4); err != nil {
			return err
		}
		// Rank 0 restores its own sphere: local shard 0 + one remote.
		got, err := view.Read(1, 0)
		if err != nil || !bytes.Equal(got, states[0]) {
			return fmt.Errorf("own-sphere reconstruct: %v (match=%v)", err, bytes.Equal(got, states[0]))
		}
		// Rank 0 restores sphere 1 with sphere 1 dead (one loss = m):
		// shards survive on ranks 2 (data) and 3 (parity).
		dead[1] = true
		got, err = view.Read(1, 1)
		if err != nil || !bytes.Equal(got, states[1]) {
			return fmt.Errorf("degraded reconstruct: %v (match=%v)", err, bytes.Equal(got, states[1]))
		}
		return nil
	})
	var remote uint64
	for _, c := range reg.Snapshot().Counters {
		if c.Name == "peer_fetch_remote_total" {
			remote = c.Value
		}
	}
	if remote == 0 {
		t.Error("no remote reconstruct recorded")
	}
}

// TestErasureAnyMLossesRestore is the satellite property test: with
// k=3 data + m=2 parity shards spread over five spheres, every possible
// pair of sphere losses still restores byte-identical snapshots, and
// losing a third sphere does not.
func TestErasureAnyMLossesRestore(t *testing.T) {
	const k, m = 3, 2
	state := make([]byte, 2000)
	rand.New(rand.NewSource(77)).Read(state)
	holders := []int{0, 1, 2, 3, 4} // shard i of v=0 lives on rank i
	for a := 0; a < len(holders); a++ {
		for b := a + 1; b < len(holders); b++ {
			dead := deadSet{}
			ps, err := NewPeerStore(PeerStoreConfig{
				Spheres: singleSpheres(6), DataShards: k, ParityShards: m,
				Live: dead, FetchRetries: 2, FetchBackoff: 50 * time.Microsecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			runPeerWorldN(t, 6, ps, func(w *simmpi.World) error {
				for v := 0; v < 6; v++ {
					c, _ := w.Comm(v)
					if err := ps.View(c).Write(1, v, state); err != nil {
						return err
					}
				}
				ps.Settle()
				c5, _ := w.Comm(5)
				view := ps.View(c5)
				if err := view.Commit(1, 6); err != nil {
					return err
				}
				// The checkpoint was taken healthy; now two holders die.
				dead[holders[a]] = true
				dead[holders[b]] = true
				// Rank 5 holds nothing of v=0: a pure remote reconstruct
				// from the 3 surviving shards.
				got, err := view.Read(1, 0)
				if err != nil {
					return fmt.Errorf("dead={%d,%d}: %v", holders[a], holders[b], err)
				}
				if !bytes.Equal(got, state) {
					return fmt.Errorf("dead={%d,%d}: reconstructed bytes differ", holders[a], holders[b])
				}
				return nil
			})
		}
	}
	// m+1 losses among v=0's holders: the fetch must exhaust, not
	// fabricate data.
	dead := deadSet{}
	ps, err := NewPeerStore(PeerStoreConfig{
		Spheres: singleSpheres(6), DataShards: k, ParityShards: m,
		Live: dead, FetchRetries: 2, FetchBackoff: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	runPeerWorldN(t, 6, ps, func(w *simmpi.World) error {
		for v := 0; v < 6; v++ {
			c, _ := w.Comm(v)
			if err := ps.View(c).Write(1, v, state); err != nil {
				return err
			}
		}
		ps.Settle()
		c5, _ := w.Comm(5)
		view := ps.View(c5)
		if err := view.Commit(1, 6); err != nil {
			return err
		}
		dead[0], dead[1], dead[2] = true, true, true
		if _, err := view.Read(1, 0); !errors.Is(err, ErrPeerFetchExhausted) {
			return fmt.Errorf("read with k-1 shards = %v, want ErrPeerFetchExhausted", err)
		}
		return nil
	})
	if _, _, ok := ps.UsableGeneration(); ok {
		t.Error("generation with fewer than k live shards reported usable")
	}
}

// TestPeerBudgetEviction checks the memory budget: a stash that pushes
// a rank over BudgetBytes evicts the rank's oldest generation, never
// the one being written, and the metrics pair tracks it.
func TestPeerBudgetEviction(t *testing.T) {
	reg := obs.NewRegistry()
	ps, err := NewPeerStore(PeerStoreConfig{
		Spheres:     singleSpheres(2),
		Replicas:    1,
		BudgetBytes: 1500,
		Obs:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte{1}, 1000)
	// Gen 1 fits; gen 2 pushes rank 0 to 2000 > 1500: gen 1 is evicted.
	ps.stash(0, 1, 0, big)
	ps.stash(0, 2, 0, big)
	if _, ok := ps.lookup(0, 1, 0); ok {
		t.Error("over-budget stash kept the oldest generation")
	}
	if _, ok := ps.lookup(0, 2, 0); !ok {
		t.Error("eviction removed the generation being written")
	}
	// A single over-budget generation survives: the one being written is
	// never evicted.
	huge := bytes.Repeat([]byte{2}, 3000)
	ps.stash(0, 3, 0, huge)
	if _, ok := ps.lookup(0, 3, 0); !ok {
		t.Error("the generation being written was evicted")
	}
	snap := reg.Snapshot()
	got := map[string]uint64{}
	for _, c := range snap.Counters {
		got[c.Name] = c.Value
	}
	// Two evictions: gen 1 (stash of gen 2) and gen 2 (stash of gen 3).
	if got["peer_store_evictions_total"] != 2 {
		t.Errorf("peer_store_evictions_total = %d, want 2", got["peer_store_evictions_total"])
	}
	var resident int64 = -1
	for _, g := range snap.Gauges {
		if g.Name == "peer_store_resident_bytes" {
			resident = g.Value
		}
	}
	if resident != 3000 {
		t.Errorf("peer_store_resident_bytes = %d, want 3000 (gen 3 only)", resident)
	}
	// Evicted holders are withdrawn: nothing claims gen 1 anymore.
	ps.mu.Lock()
	c1 := ps.ctrlLocked(1, false)
	if c1 != nil && len(c1.holders[0]) != 0 {
		t.Errorf("evicted generation still has %d holders registered", len(c1.holders[0]))
	}
	ps.mu.Unlock()
}

// TestPromoteComplete covers the recovery-time commit promotion: a
// fully-resident uncommitted generation (writes drained, commit line
// never reached — the async commit-lags-one window) is promoted so a
// partial restart restores it instead of its predecessor.
func TestPromoteComplete(t *testing.T) {
	ps, err := NewPeerStore(PeerStoreConfig{Spheres: singleSpheres(2), Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	runPeerWorldN(t, 2, ps, func(w *simmpi.World) error {
		c0, _ := w.Comm(0)
		c1, _ := w.Comm(1)
		v0, v1 := ps.View(c0), ps.View(c1)
		// Gen 1: written and committed the normal way.
		for _, wr := range []struct {
			view Storage
			v    int
		}{{v0, 0}, {v1, 1}} {
			if err := wr.view.Write(1, wr.v, []byte("gen1")); err != nil {
				return err
			}
		}
		ps.Settle()
		if err := v0.Commit(1, 2); err != nil {
			return err
		}
		// Gen 2: written everywhere, never committed (the crash window).
		for _, wr := range []struct {
			view Storage
			v    int
		}{{v0, 0}, {v1, 1}} {
			if err := wr.view.Write(2, wr.v, []byte("gen2")); err != nil {
				return err
			}
		}
		ps.Settle()
		if gen, _, ok := ps.UsableGeneration(); !ok || gen != 1 {
			return fmt.Errorf("before promote: usable = (%d, %v), want (1, true)", gen, ok)
		}
		gen, n, ok := ps.PromoteComplete()
		if !ok || gen != 2 || n != 2 {
			return fmt.Errorf("PromoteComplete = (%d, %d, %v), want (2, 2, true)", gen, n, ok)
		}
		if gen, _, ok := ps.UsableGeneration(); !ok || gen != 2 {
			return fmt.Errorf("after promote: usable = (%d, %v), want (2, true)", gen, ok)
		}
		// Idempotent: nothing further to promote.
		if _, _, ok := ps.PromoteComplete(); ok {
			return fmt.Errorf("second PromoteComplete promoted again")
		}
		return nil
	})
}

// TestPromoteCompleteRefusesPartialGeneration: a generation missing a
// rank's payload (its write never drained) must not be promoted.
func TestPromoteCompleteRefusesPartialGeneration(t *testing.T) {
	ps, err := NewPeerStore(PeerStoreConfig{Spheres: singleSpheres(2), Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	ps.stash(0, 1, 0, []byte("only v0"))
	if _, _, ok := ps.PromoteComplete(); ok {
		t.Fatal("promoted a generation missing virtual rank 1")
	}
	// Registered but not resident (the frame died in a mailbox): the
	// stashed=true coverage check must reject it too.
	ps.mu.Lock()
	ps.registerHolderLocked(1, 1, 1, shardFull)
	ps.mu.Unlock()
	if _, _, ok := ps.PromoteComplete(); ok {
		t.Fatal("promoted a generation whose holder never stashed")
	}
}
