package checkpoint

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mpi"
)

// Asynchronous checkpoint pipeline.
//
// The synchronous protocol executes compression and Storage.Write inside
// the barrier-bracketed coordinated region, so every rank stalls for the
// full write latency δ on every interval. The pipeline moves that work
// off the checkpoint line:
//
//	stage 1 (foreground, inside the coordinated region):
//	    barrier → bookmark quiescence → generation agreement →
//	    drain own previous write → barrier → commit generation g−1 →
//	    snapshot-copy state into a pooled buffer → enqueue → barrier
//	stage 2 (background worker pool):
//	    compress (inside CompressedStorage) + Storage.Write(g)
//	stage 3 (next drain point):
//	    generation g commits once every rank's write has drained
//
// The foreground cost is one memcpy of the state plus the coordination
// rounds; compression and storage I/O overlap with application compute.
// The price is commit lag: generation g becomes restorable only at the
// next checkpoint (or an explicit Drain). Because Storage makes
// uncommitted generations invisible to Restore, a crash while writes for
// g are in flight recovers from g−1 — crash consistency needs no extra
// machinery.
//
// Ordering contract (the "drain/commit" rule): a generation is committed
// only after (a) this rank's own write for it finished (local WaitGroup)
// and (b) a barrier proved every other rank's did too. Drain runs the
// same two steps explicitly and must be called before Restore on a live
// job, before Finalize, and before tearing a world down for an
// injector-driven restart — so "latest committed" is always a complete,
// consistent cut.

// Pipeline is the background worker pool that executes checkpoint writes
// for async clients. One Pipeline is shared by all ranks of a job (all
// clients of all replicas); core.Run owns its lifecycle across restart
// attempts.
type Pipeline struct {
	jobs   chan asyncJob
	wg     sync.WaitGroup
	active atomic.Int64 // jobs submitted and not yet finished

	closeOnce sync.Once
}

// asyncJob is one rank-generation write travelling through the pipeline.
type asyncJob struct {
	storage Storage
	gen     uint64
	rank    int
	data    []byte
	pb      *mpi.PooledBuf // nil for oversized fallback snapshots
	cl      *Client
}

// NewPipeline starts a worker pool for asynchronous checkpoint writes.
// workers <= 0 uses GOMAXPROCS. Close must be called to stop the
// workers; jobs submitted before Close are always drained.
func NewPipeline(workers int) *Pipeline {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pipeline{jobs: make(chan asyncJob, 4*workers)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Close stops the pool after draining all submitted jobs. Safe to call
// more than once. Clients must have drained (or abandoned) their
// in-flight work before their storage is torn down, but Close itself
// guarantees no job is dropped.
func (p *Pipeline) Close() {
	p.closeOnce.Do(func() { close(p.jobs) })
	p.wg.Wait()
}

func (p *Pipeline) submit(j asyncJob) {
	p.active.Add(1)
	p.jobs <- j
}

// Flush waits until every submitted job has finished, without stopping
// the workers. The recovery path calls it after quiescing a failed
// world: once Flush returns, every write the failed epoch enqueued has
// either landed in its storage tier or failed, so the peer store's
// holder registry reflects reality and a complete latest generation can
// be promoted to committed.
func (p *Pipeline) Flush() {
	for p.active.Load() > 0 {
		time.Sleep(50 * time.Microsecond)
	}
}

func (p *Pipeline) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		start := time.Now()
		err := j.storage.Write(j.gen, j.rank, j.data)
		cl := j.cl
		cl.met.overlapNs.Add(uint64(time.Since(start).Nanoseconds()))
		if err != nil {
			cl.recordAsyncErr(fmt.Errorf("async checkpoint write gen %d rank %d: %w", j.gen, j.rank, err))
		} else {
			cl.met.bytesWritten.Add(uint64(len(j.data)))
		}
		if j.pb != nil {
			j.pb.Release()
		}
		cl.met.inflight.Add(-1)
		cl.inflightN.Add(-1)
		cl.inflight.Done()
		p.active.Add(-1)
	}
}

// snapArena pools the snapshot buffers the foreground stage copies state
// into. Same size-class design as the simmpi message arena, but sized
// for checkpoint images (1 KiB – 16 MiB) instead of wire payloads.
// Oversized states fall back to plain allocations with no handle.
const (
	snapMinClass = 1 << 10 // 1 KiB
	snapClasses  = 15      // 1 KiB << 14 == 16 MiB
)

type snapArena struct {
	classes [snapClasses]sync.Pool
}

var _ mpi.Recycler = (*snapArena)(nil)

var snapPool = newSnapArena()

func newSnapArena() *snapArena {
	a := &snapArena{}
	for c := range a.classes {
		size := snapMinClass << c
		a.classes[c].New = func() any {
			return mpi.NewPooledBuf(make([]byte, size), a)
		}
	}
	return a
}

func snapClassFor(n int) int {
	size := snapMinClass
	for c := 0; c < snapClasses; c++ {
		if n <= size {
			return c
		}
		size <<= 1
	}
	return -1
}

// acquire returns a buffer of length n holding one creator reference
// (nil handle for oversized fallback allocations).
func (a *snapArena) acquire(n int) ([]byte, *mpi.PooledBuf) {
	c := snapClassFor(n)
	if c < 0 {
		return make([]byte, n), nil
	}
	pb := a.classes[c].Get().(*mpi.PooledBuf)
	pb.Reset()
	return pb.Bytes()[:n], pb
}

// Recycle implements mpi.Recycler.
func (a *snapArena) Recycle(pb *mpi.PooledBuf) {
	c := snapClassFor(cap(pb.Bytes()))
	if c < 0 || snapMinClass<<c != cap(pb.Bytes()) {
		return // not one of ours; leave it to the GC
	}
	a.classes[c].Put(pb)
}

// recordAsyncErr stores the first background write failure; drainLocal
// surfaces it. Later failures of the same batch are dropped (the first
// one already poisons the pending generation).
func (cl *Client) recordAsyncErr(err error) {
	cl.asyncMu.Lock()
	if cl.asyncErr == nil {
		cl.asyncErr = err
	}
	cl.asyncMu.Unlock()
}

// drainLocal waits for this client's own in-flight write to finish and
// surfaces any background failure. The WaitGroup's happens-before edge
// makes the worker's error store visible here without extra fencing.
// Storage tiers with asynchronous sends of their own (the peer store)
// are then settled, so the drain/commit contract covers in-flight peer
// replication too, not just this rank's Write call.
func (cl *Client) drainLocal() error {
	if cl.inflightN.Load() > 0 {
		cl.met.drainWaits.Inc()
	}
	cl.inflight.Wait()
	if s, ok := cl.cfg.Storage.(Settler); ok {
		s.Settle()
	}
	cl.asyncMu.Lock()
	err := cl.asyncErr
	cl.asyncMu.Unlock()
	if err != nil {
		return err
	}
	return nil
}

// commitPending commits the deferred generation (if any) now that a
// barrier has proven every rank's write for it drained. All replicas of
// rank 0 may call Commit; it is idempotent.
func (cl *Client) commitPending(lead bool) error {
	if !cl.hasPending {
		return nil
	}
	if cl.comm.Rank() == 0 {
		if err := cl.cfg.Storage.Commit(cl.pendingGen, cl.comm.Size()); err != nil {
			return fmt.Errorf("checkpoint commit gen %d: %w", cl.pendingGen, err)
		}
		if lead {
			cl.met.committed.Inc()
			cl.cfg.Trace.Emit("ckpt_commit", 0, -1, int(cl.pendingGen), map[string]any{
				"ranks": cl.comm.Size(),
				"async": true,
			})
		}
	}
	cl.hasPending = false
	return nil
}

// checkpointAsync is the pipelined variant of Checkpoint. See the
// package comment at the top of this file for the stage layout and the
// drain/commit ordering contract.
func (cl *Client) checkpointAsync(state []byte, writer, lead bool) error {
	if err := mpi.Barrier(cl.comm); err != nil {
		return fmt.Errorf("checkpoint barrier: %w", err)
	}
	// The bookmark exchange is still sound under async: the client's
	// communicator tracks its own (virtual-level) send/receive totals,
	// and background workers never send through it — peer replication
	// rides the physical transport on reserved tags, invisible to these
	// counters. So message totals are exactly the application's.
	if !cl.cfg.SkipBookmark {
		if err := cl.bookmarkExchange(lead); err != nil {
			return err
		}
	}
	gen, err := cl.agreeGeneration()
	if err != nil {
		return err
	}
	// Drain the previous generation's write, then barrier so rank 0
	// knows every rank drained before it commits g−1.
	if err := cl.drainLocal(); err != nil {
		return err
	}
	if err := mpi.Barrier(cl.comm); err != nil {
		return fmt.Errorf("checkpoint drain barrier: %w", err)
	}
	if err := cl.commitPending(lead); err != nil {
		return err
	}
	if writer || cl.cfg.WriteAllReplicas {
		// Snapshot: one memcpy into a pooled buffer, then hand off. The
		// caller's state slice is never retained past this line, so the
		// application may mutate it the moment Checkpoint returns.
		buf, pb := snapPool.acquire(len(state))
		copy(buf, state)
		cl.inflight.Add(1)
		cl.inflightN.Add(1)
		cl.met.inflight.Add(1)
		cl.cfg.Pipeline.submit(asyncJob{
			storage: cl.cfg.Storage,
			gen:     gen,
			rank:    cl.comm.Rank(),
			data:    buf,
			pb:      pb,
			cl:      cl,
		})
	}
	cl.pendingGen, cl.hasPending = gen, true
	// Publish barrier: no rank races into the next interval (or a
	// restore) before every rank has recorded the pending generation.
	if err := mpi.Barrier(cl.comm); err != nil {
		return fmt.Errorf("checkpoint publish barrier: %w", err)
	}
	cl.gen = gen + 1
	cl.checkpoints++
	return nil
}

// Drain flushes the pipeline collectively: every rank waits for its own
// in-flight write, a barrier proves the whole generation is durable, and
// rank 0 commits it. Call it before Restore on a live job, before
// finalising, and before tearing the job down for a restart — after
// Drain, Latest() reflects every checkpoint taken so far. Collective:
// all ranks (and replicas) must call it together. A no-op in
// synchronous mode and when nothing is pending (beyond the barriers).
func (cl *Client) Drain() error {
	if cl.cfg.Pipeline == nil {
		return nil
	}
	sp := cl.cfg.Flight.StartSpan("pipeline_drain", cl.flightRank, -1, int(cl.gen))
	defer sp.End()
	if err := cl.drainLocal(); err != nil {
		return err
	}
	if err := mpi.Barrier(cl.comm); err != nil {
		return fmt.Errorf("checkpoint drain barrier: %w", err)
	}
	if err := cl.commitPending(cl.wasWriter && cl.comm.Rank() == 0); err != nil {
		return err
	}
	if err := mpi.Barrier(cl.comm); err != nil {
		return fmt.Errorf("checkpoint drain publish barrier: %w", err)
	}
	return nil
}
