package checkpoint

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mpi"
	"repro/internal/obs"
)

// ErrNotQuiescent reports that the bookmark exchange found in-flight
// messages: per-pair sent and received totals failed to equalise, so a
// consistent distributed snapshot cannot be taken at this point.
var ErrNotQuiescent = errors.New("checkpoint: channels not quiescent")

// Config configures a per-rank checkpoint client.
type Config struct {
	// Storage receives the snapshots. All ranks of a job must share one
	// logical store (the same MemStorage, or FileStorages over one
	// directory).
	Storage Storage
	// StepInterval makes MaybeCheckpoint fire every StepInterval steps.
	// Step-based scheduling is deterministic across replicas, which the
	// redundancy layer requires (wall-clock decisions would diverge
	// between a rank's replicas). The orchestrator converts the model's
	// time interval δ into steps. Zero disables MaybeCheckpoint.
	StepInterval int
	// SkipBookmark disables the quiescence verification (for
	// applications that checkpoint at points where channels are known
	// non-empty by design).
	SkipBookmark bool
	// BookmarkRetries is how many barrier-separated re-reads of the
	// totals to attempt before declaring ErrNotQuiescent. Defaults to 3.
	BookmarkRetries int
	// WriteAllReplicas makes every replica persist its rank's state, not
	// just the writer. Peer-replicated storage needs this: each replica
	// stashes into its *own* memory shard, so survivors of a partial
	// restart restore without any network traffic. The writer-only
	// job-level counters (attempted/committed) are unaffected.
	WriteAllReplicas bool
	// Pipeline, when non-nil, switches the client to asynchronous
	// pipelined checkpointing: Checkpoint snapshot-copies state into a
	// pooled buffer and returns while compression and Storage.Write run
	// on the pipeline's workers; the generation commits at the next
	// checkpoint or an explicit Drain. All clients of a job must share
	// one Pipeline (or all run synchronously). See async.go for the
	// stage layout and the drain/commit ordering contract.
	Pipeline *Pipeline
	// Obs, when non-nil, receives the protocol's counters (snapshots
	// attempted/committed, bytes written, bookmark retries, quiescence
	// failures, restores). Clients of one job should share a registry.
	Obs *obs.Registry
	// Trace, when non-nil, receives commit/restore/retry events. Only
	// the writer replica of each rank emits, so each virtual rank owns
	// one deterministic event stream.
	Trace *obs.Tracer
	// Flight, when non-nil, receives fixed-size recovery-phase spans
	// ("restore", "pipeline_drain"). The stream is the comm's physical
	// rank when the comm exposes one (redundancy-wrapped endpoints), so
	// a virtual rank's replicas never interleave on one stream; plain
	// comms use their own rank.
	Flight *obs.Recorder
}

// Client coordinates snapshots and restores for one rank (or one replica
// of a rank — all replicas run the protocol; writer selection decides who
// touches storage).
type Client struct {
	comm mpi.Comm
	cfg  Config
	gen  uint64

	// Stats.
	checkpoints int
	restores    int

	// Async-pipeline state (used only when cfg.Pipeline != nil). The
	// WaitGroup tracks this client's in-flight background write; the
	// worker's Done provides the happens-before edge that publishes
	// asyncErr to drainLocal without extra fencing. pendingGen is the
	// written-but-not-yet-committed generation awaiting the next drain
	// point.
	inflight   sync.WaitGroup
	inflightN  atomic.Int32
	asyncMu    sync.Mutex
	asyncErr   error
	pendingGen uint64
	hasPending bool
	wasWriter  bool

	// flightRank is the black-box stream Restore/Drain spans land on:
	// the physical rank for redundancy-wrapped comms, comm.Rank()
	// otherwise.
	flightRank int

	met clientMetrics
}

// physicalRanker is the optional comm capability exposing the physical
// rank beneath a virtual endpoint (redundancy.Comm implements it).
type physicalRanker interface {
	Physical() int
}

// clientMetrics holds the protocol's registry instruments (nil and
// therefore no-ops when Config.Obs is nil).
type clientMetrics struct {
	attempted    *obs.Counter
	committed    *obs.Counter
	bytesWritten *obs.Counter
	retries      *obs.Counter
	notQuiescent *obs.Counter
	restores     *obs.Counter
	stallNs      *obs.Counter
	overlapNs    *obs.Counter
	drainWaits   *obs.Counter
	inflight     *obs.Gauge
}

// NewClient creates a checkpoint client over the given communicator.
func NewClient(comm mpi.Comm, cfg Config) (*Client, error) {
	if cfg.Storage == nil {
		return nil, fmt.Errorf("checkpoint: nil storage")
	}
	if cfg.BookmarkRetries <= 0 {
		cfg.BookmarkRetries = 3
	}
	cl := &Client{comm: comm, cfg: cfg, flightRank: comm.Rank()}
	if pr, ok := comm.(physicalRanker); ok {
		cl.flightRank = pr.Physical()
	}
	cl.met = clientMetrics{
		attempted:    cfg.Obs.Counter("checkpoint_attempted_total"),
		committed:    cfg.Obs.Counter("checkpoint_committed_total"),
		bytesWritten: cfg.Obs.Counter("checkpoint_bytes_written_total"),
		retries:      cfg.Obs.Counter("checkpoint_bookmark_retries_total"),
		notQuiescent: cfg.Obs.Counter("checkpoint_not_quiescent_total"),
		restores:     cfg.Obs.Counter("checkpoint_restores_total"),
		stallNs:      cfg.Obs.Counter("checkpoint_stall_ns_total"),
		overlapNs:    cfg.Obs.Counter("checkpoint_overlap_ns_total"),
		drainWaits:   cfg.Obs.Counter("checkpoint_drain_waits_total"),
		inflight:     cfg.Obs.Gauge("checkpoint_async_inflight"),
	}
	return cl, nil
}

// Checkpoints returns how many snapshots this client has completed.
func (cl *Client) Checkpoints() int { return cl.checkpoints }

// Restores returns how many restores this client has completed.
func (cl *Client) Restores() int { return cl.restores }

// MaybeCheckpoint checkpoints when the deterministic step schedule says
// so: at every positive multiple of StepInterval. All ranks (and all
// replicas) must call it with the same step; the decision is pure
// arithmetic, so no coordination round is needed. writer selects whether
// this caller persists its rank's state — under redundancy, the lowest
// alive replica of each rank should write; plain ranks always write.
func (cl *Client) MaybeCheckpoint(step int, state []byte, writer bool) (bool, error) {
	k := cl.cfg.StepInterval
	if k <= 0 || step <= 0 || step%k != 0 {
		return false, nil
	}
	if err := cl.Checkpoint(state, writer); err != nil {
		return false, err
	}
	return true, nil
}

// Checkpoint runs one coordinated snapshot:
//
//  1. Barrier — every rank reaches the checkpoint line.
//  2. Bookmark exchange — all ranks allgather their per-peer sent totals
//     and verify recv[j][i] == sent[i][j] for every pair (Open MPI's
//     bookmark protocol); retries with barriers allow stragglers'
//     matching receives to complete.
//  3. Every writer stores its rank's state under the next generation.
//  4. Barrier, then rank 0 commits the generation atomically.
//
// The generation number is agreed by broadcasting rank 0's view, so
// clients that joined after a restart stay aligned.
//
// With Config.Pipeline set, the write runs asynchronously (see
// async.go): the state is snapshot-copied into a pooled buffer inside
// the coordinated region and the commit of this generation is deferred
// to the next checkpoint or Drain. In both modes the wall time spent
// inside this call accumulates in checkpoint_stall_ns_total (lead
// replica of rank 0 only), so stall/checkpoints is the effective δ the
// application observes.
func (cl *Client) Checkpoint(state []byte, writer bool) error {
	// Job-level counters are bumped by the writer replica of rank 0
	// only: the protocol is collective, so every rank (and under
	// redundancy, every replica) runs this code, and counting on one
	// deterministic participant keeps "attempted == generations tried".
	lead := writer && cl.comm.Rank() == 0
	cl.wasWriter = writer
	if lead {
		cl.met.attempted.Inc()
	}
	start := time.Now()
	var err error
	if cl.cfg.Pipeline != nil {
		err = cl.checkpointAsync(state, writer, lead)
	} else {
		err = cl.checkpointSync(state, writer, lead)
	}
	if err == nil && lead {
		cl.met.stallNs.Add(uint64(time.Since(start).Nanoseconds()))
	}
	return err
}

// checkpointSync is the original fully synchronous protocol: write and
// commit both happen inside the barrier-bracketed region.
func (cl *Client) checkpointSync(state []byte, writer, lead bool) error {
	if err := mpi.Barrier(cl.comm); err != nil {
		return fmt.Errorf("checkpoint barrier: %w", err)
	}
	if !cl.cfg.SkipBookmark {
		if err := cl.bookmarkExchange(lead); err != nil {
			return err
		}
	}
	// Agree on the generation: rank 0 proposes, everyone adopts.
	gen, err := cl.agreeGeneration()
	if err != nil {
		return err
	}
	if writer || cl.cfg.WriteAllReplicas {
		if err := cl.cfg.Storage.Write(gen, cl.comm.Rank(), state); err != nil {
			return fmt.Errorf("checkpoint write: %w", err)
		}
		cl.met.bytesWritten.Add(uint64(len(state)))
	}
	if err := mpi.Barrier(cl.comm); err != nil {
		return fmt.Errorf("checkpoint commit barrier: %w", err)
	}
	if cl.comm.Rank() == 0 {
		if err := cl.cfg.Storage.Commit(gen, cl.comm.Size()); err != nil {
			return fmt.Errorf("checkpoint commit: %w", err)
		}
		if lead {
			cl.met.committed.Inc()
			cl.cfg.Trace.Emit("ckpt_commit", 0, -1, int(gen), map[string]any{
				"ranks": cl.comm.Size(),
			})
		}
	}
	// Final barrier so no rank races ahead and checkpoints generation
	// gen+1 before gen is committed.
	if err := mpi.Barrier(cl.comm); err != nil {
		return fmt.Errorf("checkpoint publish barrier: %w", err)
	}
	cl.gen = gen + 1
	cl.checkpoints++
	return nil
}

// agreeGeneration broadcasts rank 0's next-generation proposal.
func (cl *Client) agreeGeneration() (uint64, error) {
	var proposal []byte
	if cl.comm.Rank() == 0 {
		gen := cl.gen
		if latest, _, ok, err := cl.cfg.Storage.Latest(); err != nil {
			return 0, fmt.Errorf("checkpoint: %w", err)
		} else if ok && latest+1 > gen {
			gen = latest + 1
		}
		proposal = encodeUint64(gen)
	}
	proposal, err := mpi.Bcast(cl.comm, 0, proposal)
	if err != nil {
		return 0, fmt.Errorf("checkpoint generation agreement: %w", err)
	}
	gen, err := decodeUint64(proposal)
	if err != nil {
		return 0, err
	}
	return gen, nil
}

// bookmarkExchange verifies channel quiescence from message totals.
// lead marks the single replica that owns the job-level counters.
func (cl *Client) bookmarkExchange(lead bool) error {
	tracker, ok := cl.comm.(mpi.CountTracker)
	if !ok {
		return nil // transport does not expose totals; trust the caller
	}
	n := cl.comm.Size()
	for attempt := 0; attempt < cl.cfg.BookmarkRetries; attempt++ {
		if attempt > 0 && lead {
			cl.met.retries.Inc()
			cl.cfg.Trace.Emit("bookmark_retry", 0, -1, int(cl.gen), map[string]any{
				"attempt": attempt,
			})
		}
		// Snapshot both counters before exchanging anything, then ship
		// them in a single allgather: the exchange's own traffic must not
		// appear in one counter but not the other.
		local := append(tracker.SentCounts(), tracker.RecvCounts()...)
		rows, err := mpi.Allgather(cl.comm, encodeUint64s(local))
		if err != nil {
			return fmt.Errorf("bookmark exchange: %w", err)
		}
		sentRows := make([][]byte, len(rows))
		recvRows := make([][]byte, len(rows))
		for i, row := range rows {
			if len(row) != 16*n {
				return fmt.Errorf("checkpoint: bookmark row of %d bytes, want %d", len(row), 16*n)
			}
			sentRows[i] = row[:8*n]
			recvRows[i] = row[8*n:]
		}
		quiescent, err := totalsEqualize(sentRows, recvRows)
		if err != nil {
			return err
		}
		if quiescent {
			return nil
		}
		// Allow in-flight matching receives to complete, then retry.
		if err := mpi.Barrier(cl.comm); err != nil {
			return fmt.Errorf("bookmark retry barrier: %w", err)
		}
	}
	if lead {
		cl.met.notQuiescent.Inc()
	}
	return ErrNotQuiescent
}

// totalsEqualize checks sent[i][j] == recv[j][i] for all pairs, ignoring
// the traffic of the exchange itself: the allgathers above add identical
// amounts to symmetric counters only after both sides' snapshots were
// taken, so pre-snapshot asymmetry is what this detects.
func totalsEqualize(sentRows, recvRows [][]byte) (bool, error) {
	n := len(sentRows)
	sent := make([][]uint64, n)
	recv := make([][]uint64, n)
	for i := 0; i < n; i++ {
		var err error
		if sent[i], err = decodeUint64s(sentRows[i]); err != nil {
			return false, err
		}
		if recv[i], err = decodeUint64s(recvRows[i]); err != nil {
			return false, err
		}
		if len(sent[i]) != n || len(recv[i]) != n {
			return false, fmt.Errorf("checkpoint: bookmark row length %d/%d, want %d",
				len(sent[i]), len(recv[i]), n)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if sent[i][j] < recv[j][i] {
				return false, fmt.Errorf("checkpoint: rank %d received %d from %d which sent %d",
					j, recv[j][i], i, sent[i][j])
			}
			if sent[i][j] > recv[j][i] {
				return false, nil // in flight; retry
			}
		}
	}
	return true, nil
}

// Restore loads this rank's state from the newest committed generation.
// ok is false when no checkpoint exists (fresh start).
func (cl *Client) Restore() (state []byte, ok bool, err error) {
	sp := cl.cfg.Flight.StartSpan("restore", cl.flightRank, -1, 0)
	defer sp.End()
	if cl.cfg.Pipeline != nil {
		// Never race a background write against storage reads. Restore
		// is not collective, so only the local wait happens here;
		// callers that want the pending generation to be restorable
		// must run the collective Drain first.
		if derr := cl.drainLocal(); derr != nil {
			return nil, false, derr
		}
	}
	gen, n, ok, err := cl.cfg.Storage.Latest()
	if err != nil {
		return nil, false, fmt.Errorf("restore: %w", err)
	}
	if !ok {
		return nil, false, nil
	}
	if cl.comm.Rank() >= n {
		return nil, false, fmt.Errorf("restore: rank %d not in committed generation of %d ranks",
			cl.comm.Rank(), n)
	}
	state, err = cl.cfg.Storage.Read(gen, cl.comm.Rank())
	if err != nil {
		return nil, false, fmt.Errorf("restore: %w", err)
	}
	cl.gen = gen + 1
	cl.restores++
	// Counted per process: under redundancy every replica restores, so
	// the total is physical-rank restores, not virtual-rank restores.
	cl.met.restores.Inc()
	cl.cfg.Trace.Emit("restore", cl.comm.Rank(), -1, int(gen), map[string]any{
		"bytes": len(state),
	})
	return state, true, nil
}

func encodeUint64(v uint64) []byte { return encodeUint64s([]uint64{v}) }

func decodeUint64(buf []byte) (uint64, error) {
	vs, err := decodeUint64s(buf)
	if err != nil {
		return 0, err
	}
	if len(vs) != 1 {
		return 0, fmt.Errorf("checkpoint: %d values, want 1", len(vs))
	}
	return vs[0], nil
}

func encodeUint64s(vs []uint64) []byte {
	buf := make([]byte, 8*len(vs))
	for i, v := range vs {
		for b := 0; b < 8; b++ {
			buf[8*i+b] = byte(v >> (8 * b))
		}
	}
	return buf
}

func decodeUint64s(buf []byte) ([]uint64, error) {
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("checkpoint: uint64 payload of %d bytes", len(buf))
	}
	vs := make([]uint64, len(buf)/8)
	for i := range vs {
		for b := 0; b < 8; b++ {
			vs[i] |= uint64(buf[8*i+b]) << (8 * b)
		}
	}
	return vs, nil
}
