package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// This file implements incremental checkpointing, one of the checkpoint
// optimisations the paper surveys (§2): "Incremental checkpointing
// reduces the checkpoint latency by saving only the changes made by the
// application from the last checkpoint. ... During recovery, incremental
// checkpoints are combined with the last full one to create a complete
// process image."
//
// State images are diffed at fixed-size page granularity (mirroring the
// MMU dirty-bit technique the paper cites): a full image is stored every
// FullEvery snapshots, and the ones between store only pages whose
// contents changed, identified by page index. Recovery replays the chain
// from the last full image. The encoder is self-describing, so Restore
// needs no out-of-band schedule.

// incrKind tags the two image layouts.
type incrKind byte

const (
	incrFull  incrKind = 1
	incrDelta incrKind = 2
)

// incrMagic guards against feeding plain images to the decoder.
const incrMagic = 0x49434B50 // "ICKP"

// IncrementalEncoder turns a sequence of full state images into a
// sequence of full-or-delta images. It lives on the application side of
// Storage: the application always provides its complete state; the
// encoder decides what actually needs persisting. One encoder serves one
// rank; it is not safe for concurrent use.
type IncrementalEncoder struct {
	// PageSize is the diff granularity in bytes (default 4096).
	PageSize int
	// FullEvery forces a full image every n-th snapshot (default 8);
	// long delta chains make recovery slower and fragile, exactly the
	// full/incremental trade-off of the literature.
	FullEvery int

	base    []byte // last full image
	since   int    // deltas since the last full image
	scratch []byte // reused output buffer; returned by Encode each call
	dirty   []int  // reused dirty-page index scratch
}

// Stats describes what one Encode call produced.
type IncrementalStats struct {
	// Full reports whether a full image was emitted.
	Full bool
	// Pages is the number of pages carried (all pages for full images).
	Pages int
	// RawBytes and EncodedBytes compare the plain image size to what was
	// actually produced.
	RawBytes, EncodedBytes int
}

func (e *IncrementalEncoder) pageSize() int {
	if e.PageSize <= 0 {
		return 4096
	}
	return e.PageSize
}

func (e *IncrementalEncoder) fullEvery() int {
	if e.FullEvery <= 0 {
		return 8
	}
	return e.FullEvery
}

// Encode produces the next image for state. The returned buffer is the
// encoder's reused scratch: it is valid only until the next Encode call
// on the same encoder. Callers that persist it synchronously (the normal
// checkpoint write path) need no copy; callers that retain it across
// snapshots must copy it first.
func (e *IncrementalEncoder) Encode(state []byte) ([]byte, IncrementalStats) {
	ps := e.pageSize()
	needFull := e.base == nil || len(e.base) != len(state) || e.since >= e.fullEvery()-1
	if needFull {
		e.base = append(e.base[:0], state...)
		e.since = 0
		out := appendIncrHeader(e.scratch[:0], incrFull, len(state))
		out = append(out, state...)
		e.scratch = out
		return out, IncrementalStats{
			Full:         true,
			Pages:        pageCount(len(state), ps),
			RawBytes:     len(state),
			EncodedBytes: len(out),
		}
	}
	// Delta: collect changed pages against the running base and update
	// the base so the next delta stacks on this one.
	dirty := e.dirty[:0]
	for p := 0; p < pageCount(len(state), ps); p++ {
		lo := p * ps
		hi := min(lo+ps, len(state))
		if !bytesEqual(state[lo:hi], e.base[lo:hi]) {
			dirty = append(dirty, p)
		}
	}
	e.dirty = dirty
	out := appendIncrHeader(e.scratch[:0], incrDelta, len(state))
	out = appendUvarint(out, uint64(ps))
	out = appendUvarint(out, uint64(len(dirty)))
	for _, p := range dirty {
		lo := p * ps
		hi := min(lo+ps, len(state))
		out = appendUvarint(out, uint64(p))
		out = append(out, state[lo:hi]...)
		copy(e.base[lo:hi], state[lo:hi])
	}
	e.scratch = out
	e.since++
	return out, IncrementalStats{
		Pages:        len(dirty),
		RawBytes:     len(state),
		EncodedBytes: len(out),
	}
}

// IncrementalDecoder reconstructs full states from an encoder's stream.
// Feed it every stored image in order; Current returns the materialised
// state.
type IncrementalDecoder struct {
	state []byte
}

// Apply consumes the next image.
func (d *IncrementalDecoder) Apply(img []byte) error {
	kind, size, rest, err := readIncrHeader(img)
	if err != nil {
		return err
	}
	switch kind {
	case incrFull:
		if len(rest) != size {
			return fmt.Errorf("checkpoint: full image declares %d bytes, has %d", size, len(rest))
		}
		d.state = append(d.state[:0], rest...)
		return nil
	case incrDelta:
		if len(d.state) != size {
			return fmt.Errorf("checkpoint: delta over %d-byte state, have %d", size, len(d.state))
		}
		ps, rest, err := readUvarint(rest)
		if err != nil {
			return err
		}
		n, rest, err := readUvarint(rest)
		if err != nil {
			return err
		}
		for i := uint64(0); i < n; i++ {
			var page uint64
			page, rest, err = readUvarint(rest)
			if err != nil {
				return err
			}
			lo := int(page) * int(ps)
			hi := min(lo+int(ps), size)
			if lo < 0 || lo >= size || hi > size || len(rest) < hi-lo {
				return fmt.Errorf("checkpoint: delta page %d out of bounds", page)
			}
			copy(d.state[lo:hi], rest[:hi-lo])
			rest = rest[hi-lo:]
		}
		if len(rest) != 0 {
			return fmt.Errorf("checkpoint: %d trailing delta bytes", len(rest))
		}
		return nil
	default:
		return fmt.Errorf("checkpoint: unknown incremental image kind %d", kind)
	}
}

// Current returns a copy of the materialised state.
func (d *IncrementalDecoder) Current() []byte {
	out := make([]byte, len(d.state))
	copy(out, d.state)
	return out
}

// Checksum returns a digest of the current state, for verification.
func (d *IncrementalDecoder) Checksum() uint64 {
	h := fnv.New64a()
	h.Write(d.state) // never errors
	return h.Sum64()
}

func appendIncrHeader(buf []byte, kind incrKind, size int) []byte {
	var hdr [9]byte
	binary.LittleEndian.PutUint32(hdr[:4], incrMagic)
	hdr[4] = byte(kind)
	binary.LittleEndian.PutUint32(hdr[5:], uint32(size))
	return append(buf, hdr[:]...)
}

func readIncrHeader(buf []byte) (incrKind, int, []byte, error) {
	if len(buf) < 9 {
		return 0, 0, nil, fmt.Errorf("checkpoint: %d-byte incremental image", len(buf))
	}
	if binary.LittleEndian.Uint32(buf[:4]) != incrMagic {
		return 0, 0, nil, fmt.Errorf("checkpoint: bad incremental magic")
	}
	return incrKind(buf[4]), int(binary.LittleEndian.Uint32(buf[5:9])), buf[9:], nil
}

func appendUvarint(buf []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(buf, tmp[:n]...)
}

func readUvarint(buf []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("checkpoint: truncated varint")
	}
	return v, buf[n:], nil
}

func pageCount(size, pageSize int) int {
	return (size + pageSize - 1) / pageSize
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
