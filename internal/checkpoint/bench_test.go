package checkpoint

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/simmpi"
)

// Hot-path benchmarks for the CI bench gate (cmd/benchgate). Each
// iteration performs a fixed batch of work so a single `-benchtime 1x`
// sample is well above timer granularity.

const benchGens = 200

// BenchmarkMemStorageWriteCommit measures the in-memory stable tier's
// write/commit/read cycle — the floor every other storage layers on.
func BenchmarkMemStorageWriteCommit(b *testing.B) {
	state := bytes.Repeat([]byte{0xCD}, 16<<10)
	b.SetBytes(benchGens * int64(len(state)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewMemStorage()
		for g := uint64(1); g <= benchGens; g++ {
			if err := s.Write(g, 0, state); err != nil {
				b.Fatal(err)
			}
			if err := s.Commit(g, 1); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Read(g, 0); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCompressedRoundTrip measures DEFLATE write+read through the
// storage middleware on a repetitive scientific-state image.
func BenchmarkCompressedRoundTrip(b *testing.B) {
	state := bytes.Repeat([]byte{0, 0, 0, 0, 0, 0, 240, 63}, 1<<12)
	const gens = 20
	b.SetBytes(gens * int64(len(state)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewCompressedStorage(NewMemStorage())
		for g := uint64(1); g <= gens; g++ {
			if err := s.Write(g, 0, state); err != nil {
				b.Fatal(err)
			}
			if err := s.Commit(g, 1); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Read(g, 0); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPeerReplicateCommit measures the peer tier's write path: every
// sphere writer stashes locally and pushes its shard to a buddy over
// messages, then commits — the steady-state cost of peer checkpointing.
func BenchmarkPeerReplicateCommit(b *testing.B) {
	state := bytes.Repeat([]byte{0xAB}, 4<<10)
	b.SetBytes(benchGens * 4 * int64(len(state)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ps, err := NewPeerStore(PeerStoreConfig{Spheres: testSpheres(), Replicas: 1})
		if err != nil {
			b.Fatal(err)
		}
		w, err := simmpi.NewWorld(8)
		if err != nil {
			b.Fatal(err)
		}
		var wg sync.WaitGroup
		views := make([]Storage, 4)
		for p := 0; p < 8; p++ {
			c, cerr := w.Comm(p)
			if cerr != nil {
				b.Fatal(cerr)
			}
			wg.Add(1)
			go func(c *simmpi.Comm) {
				defer wg.Done()
				ps.Serve(c)
			}(c)
			if p%2 == 0 {
				views[p/2] = ps.View(c)
			}
		}
		b.StartTimer()
		for g := uint64(1); g <= benchGens; g++ {
			for v := 0; v < 4; v++ {
				if err := views[v].Write(g, v, state); err != nil {
					b.Fatal(err)
				}
			}
			if err := views[0].Commit(g, 4); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		w.Interrupt()
		wg.Wait()
		b.StartTimer()
	}
}

// BenchmarkPeerCodec measures the wire codec for peer shards.
func BenchmarkPeerCodec(b *testing.B) {
	payload := bytes.Repeat([]byte{0x5A}, 4<<10)
	const frames = 5000
	b.SetBytes(frames * int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < frames; j++ {
			buf := encodePeer(opReplicate, uint64(j), 3, payload)
			op, gen, v, body, err := decodePeer(buf)
			if err != nil || op != opReplicate || gen != uint64(j) || v != 3 || len(body) != len(payload) {
				b.Fatalf("codec round trip broke: op=%d gen=%d v=%d err=%v", op, gen, v, err)
			}
		}
	}
}
