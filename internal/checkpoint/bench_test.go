package checkpoint

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/simmpi"
)

// Hot-path benchmarks for the CI bench gate (cmd/benchgate). Each
// iteration performs a fixed batch of work so a single `-benchtime 1x`
// sample is well above timer granularity.

const benchGens = 200

// BenchmarkMemStorageWriteCommit measures the in-memory stable tier's
// write/commit/read cycle — the floor every other storage layers on.
func BenchmarkMemStorageWriteCommit(b *testing.B) {
	state := bytes.Repeat([]byte{0xCD}, 16<<10)
	b.SetBytes(benchGens * int64(len(state)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewMemStorage()
		for g := uint64(1); g <= benchGens; g++ {
			if err := s.Write(g, 0, state); err != nil {
				b.Fatal(err)
			}
			if err := s.Commit(g, 1); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Read(g, 0); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCompressedRoundTrip measures DEFLATE write+read through the
// storage middleware on a repetitive scientific-state image.
func BenchmarkCompressedRoundTrip(b *testing.B) {
	state := bytes.Repeat([]byte{0, 0, 0, 0, 0, 0, 240, 63}, 1<<12)
	const gens = 20
	b.SetBytes(gens * int64(len(state)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewCompressedStorage(NewMemStorage())
		for g := uint64(1); g <= gens; g++ {
			if err := s.Write(g, 0, state); err != nil {
				b.Fatal(err)
			}
			if err := s.Commit(g, 1); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Read(g, 0); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPeerReplicateCommit measures the peer tier's write path: every
// sphere writer stashes locally and pushes its shard to a buddy over
// messages, then commits — the steady-state cost of peer checkpointing.
// The resident footprint (replicas+1 full copies per sphere, double
// buffered) is reported for comparison with BenchmarkPeerErasureCommit.
func BenchmarkPeerReplicateCommit(b *testing.B) {
	state := bytes.Repeat([]byte{0xAB}, 4<<10)
	b.SetBytes(benchGens * 4 * int64(len(state)))
	b.ReportAllocs()
	var resident int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ps, err := NewPeerStore(PeerStoreConfig{Spheres: testSpheres(), Replicas: 1})
		if err != nil {
			b.Fatal(err)
		}
		w, err := simmpi.NewWorld(8)
		if err != nil {
			b.Fatal(err)
		}
		var wg sync.WaitGroup
		views := make([]Storage, 4)
		for p := 0; p < 8; p++ {
			c, cerr := w.Comm(p)
			if cerr != nil {
				b.Fatal(cerr)
			}
			wg.Add(1)
			go func(c *simmpi.Comm) {
				defer wg.Done()
				ps.Serve(c)
			}(c)
			if p%2 == 0 {
				views[p/2] = ps.View(c)
			}
		}
		b.StartTimer()
		for g := uint64(1); g <= benchGens; g++ {
			for v := 0; v < 4; v++ {
				if err := views[v].Write(g, v, state); err != nil {
					b.Fatal(err)
				}
			}
			if err := views[0].Commit(g, 4); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		ps.Settle()
		ps.mu.Lock()
		resident = ps.resident
		ps.mu.Unlock()
		w.Interrupt()
		wg.Wait()
		b.StartTimer()
	}
	b.ReportMetric(float64(resident), "resident-bytes")
}

// benchDelayStorage emulates a stable store with a fixed per-image write
// latency, so the interval benchmark has real write time for the async
// pipeline to hide (a MemStorage write is sub-microsecond).
type benchDelayStorage struct {
	Storage
	latency time.Duration
}

func (s *benchDelayStorage) Write(gen uint64, rank int, state []byte) error {
	time.Sleep(s.latency)
	return s.Storage.Write(gen, rank, state)
}

// benchCheckpointInterval runs one checkpointed compute loop: each of the
// two ranks alternates an emulated compute step with a collective
// checkpoint against a store whose writes cost 2ms. The sync path pays
// compute+write per generation; the pipelined path pays only compute plus
// coordination, deferring writes to background workers.
func benchCheckpointInterval(b *testing.B, pipe *Pipeline) {
	const (
		gens         = 8
		computeDelay = time.Millisecond
		writeDelay   = 2 * time.Millisecond
	)
	state := bytes.Repeat([]byte{0xEE}, 64<<10)
	b.SetBytes(gens * int64(len(state)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store := &benchDelayStorage{Storage: NewMemStorage(), latency: writeDelay}
		w, err := simmpi.NewWorld(2)
		if err != nil {
			b.Fatal(err)
		}
		var wg sync.WaitGroup
		for r := 0; r < 2; r++ {
			c, cerr := w.Comm(r)
			if cerr != nil {
				b.Fatal(cerr)
			}
			wg.Add(1)
			go func(c *simmpi.Comm) {
				defer wg.Done()
				cl, err := NewClient(c, Config{Storage: store, Pipeline: pipe})
				if err != nil {
					b.Error(err)
					return
				}
				for g := 0; g < gens; g++ {
					time.Sleep(computeDelay)
					if err := cl.Checkpoint(state, true); err != nil {
						b.Error(err)
						return
					}
				}
				if err := cl.Drain(); err != nil {
					b.Error(err)
				}
			}(c)
		}
		wg.Wait()
	}
}

// BenchmarkCheckpointInterval contrasts the blocking and pipelined write
// paths on the same checkpointed compute loop; the gap between the two
// is the per-interval wall time the async pipeline returns to compute.
func BenchmarkCheckpointInterval(b *testing.B) {
	b.Run("sync", func(b *testing.B) {
		benchCheckpointInterval(b, nil)
	})
	b.Run("async", func(b *testing.B) {
		pipe := NewPipeline(2)
		defer pipe.Close()
		benchCheckpointInterval(b, pipe)
	})
}

// BenchmarkShardedCompress contrasts single-stream DEFLATE with the
// chunked parallel layout on a 4 MiB repetitive image (write+read). On a
// single-core host the sharded variant measures framing overhead rather
// than speedup; the gate pins both so a multi-core regression still
// shows.
func BenchmarkShardedCompress(b *testing.B) {
	state := bytes.Repeat([]byte{0, 0, 0, 0, 0, 0, 240, 63}, 1<<19)
	for _, bc := range []struct {
		name   string
		shards int
	}{
		{"single", 1},
		{"sharded", 4},
	} {
		b.Run(bc.name, func(b *testing.B) {
			s := &CompressedStorage{Inner: NewMemStorage(), Shards: bc.shards}
			b.SetBytes(int64(len(state)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Write(uint64(i+1), 0, state); err != nil {
					b.Fatal(err)
				}
				if err := s.Commit(uint64(i+1), 1); err != nil {
					b.Fatal(err)
				}
				if _, err := s.Read(uint64(i+1), 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPeerCodec measures the wire codec for peer shards on the
// pooled path production uses: encode into a size-class arena buffer,
// decode, release — zero steady-state allocations.
func BenchmarkPeerCodec(b *testing.B) {
	payload := bytes.Repeat([]byte{0x5A}, 4<<10)
	const frames = 5000
	b.SetBytes(frames * int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < frames; j++ {
			fr := peerFrame{op: opReplicate, gen: uint64(j), v: 3, idx: shardFull, size: uint32(len(payload)), payload: payload}
			buf, pb := snapPool.acquire(peerHeaderLen + len(payload))
			encodePeerInto(buf, fr)
			got, err := decodePeer(buf)
			if err != nil || got.op != opReplicate || got.gen != uint64(j) || got.v != 3 || len(got.payload) != len(payload) {
				b.Fatalf("codec round trip broke: %+v err=%v", got, err)
			}
			if pb != nil {
				pb.Release()
			}
		}
	}
}

// BenchmarkPeerErasureCommit is BenchmarkPeerReplicateCommit's workload
// on the erasure-coded layout (k=2 data + m=1 parity over the same four
// spheres): the same snapshots cost (k+m)/k resident bytes per sphere
// instead of replicas+1 full copies. The resident footprint is reported
// per iteration so the scaling is visible next to the gated numbers.
func BenchmarkPeerErasureCommit(b *testing.B) {
	state := bytes.Repeat([]byte{0xAB}, 4<<10)
	b.SetBytes(benchGens * 4 * int64(len(state)))
	b.ReportAllocs()
	var resident int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ps, err := NewPeerStore(PeerStoreConfig{Spheres: testSpheres(), DataShards: 2, ParityShards: 1})
		if err != nil {
			b.Fatal(err)
		}
		w, err := simmpi.NewWorld(8)
		if err != nil {
			b.Fatal(err)
		}
		var wg sync.WaitGroup
		views := make([]Storage, 4)
		for p := 0; p < 8; p++ {
			c, cerr := w.Comm(p)
			if cerr != nil {
				b.Fatal(cerr)
			}
			wg.Add(1)
			go func(c *simmpi.Comm) {
				defer wg.Done()
				ps.Serve(c)
			}(c)
			if p%2 == 0 {
				views[p/2] = ps.View(c)
			}
		}
		b.StartTimer()
		for g := uint64(1); g <= benchGens; g++ {
			for v := 0; v < 4; v++ {
				if err := views[v].Write(g, v, state); err != nil {
					b.Fatal(err)
				}
			}
			ps.Settle()
			if err := views[0].Commit(g, 4); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		ps.mu.Lock()
		resident = ps.resident
		ps.mu.Unlock()
		w.Interrupt()
		wg.Wait()
		b.StartTimer()
	}
	b.ReportMetric(float64(resident), "resident-bytes")
}
