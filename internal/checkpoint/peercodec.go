package checkpoint

import (
	"fmt"

	"repro/internal/mpi"
)

// Peer wire codec. Frames carry an opcode, the generation, the virtual
// rank, the shard index (shardFull for whole-image frames), and the
// original snapshot size a reconstructor needs to strip the erasure
// padding:
//
//	op (1) | gen (8 LE) | vrank (8 LE) | shard idx (2 LE, int16) | size (4 LE)
//
// The hot encode path writes into a transport-pooled buffer via
// sendPeerFrame, so steady-state replication allocates nothing; the
// plain encodePeer fallback exists for transports without the
// mpi.SharedSender capability and for tests.

const peerHeaderLen = 23

// shardFull marks a frame (or stored image) holding a whole snapshot
// rather than one erasure shard.
const shardFull = int16(-1)

// peerFrame is one decoded peer-protocol message.
type peerFrame struct {
	op      byte
	gen     uint64
	v       int
	idx     int16  // shard index, or shardFull
	size    uint32 // original snapshot size (pre-padding)
	payload []byte
}

// encodePeerInto writes the frame into buf, which must hold exactly
// peerHeaderLen+len(payload) bytes.
func encodePeerInto(buf []byte, fr peerFrame) {
	buf[0] = fr.op
	for b := 0; b < 8; b++ {
		buf[1+b] = byte(fr.gen >> (8 * b))
		buf[9+b] = byte(uint64(fr.v) >> (8 * b))
	}
	buf[17] = byte(uint16(fr.idx))
	buf[18] = byte(uint16(fr.idx) >> 8)
	for b := 0; b < 4; b++ {
		buf[19+b] = byte(fr.size >> (8 * b))
	}
	copy(buf[peerHeaderLen:], fr.payload)
}

// encodePeer allocates and fills a frame buffer.
func encodePeer(fr peerFrame) []byte {
	buf := make([]byte, peerHeaderLen+len(fr.payload))
	encodePeerInto(buf, fr)
	return buf
}

func decodePeer(buf []byte) (peerFrame, error) {
	if len(buf) < peerHeaderLen {
		return peerFrame{}, fmt.Errorf("checkpoint: peer frame of %d bytes", len(buf))
	}
	var fr peerFrame
	fr.op = buf[0]
	var vu uint64
	for b := 0; b < 8; b++ {
		fr.gen |= uint64(buf[1+b]) << (8 * b)
		vu |= uint64(buf[9+b]) << (8 * b)
	}
	fr.v = int(int64(vu))
	fr.idx = int16(uint16(buf[17]) | uint16(buf[18])<<8)
	for b := 0; b < 4; b++ {
		fr.size |= uint32(buf[19+b]) << (8 * b)
	}
	fr.payload = buf[peerHeaderLen:]
	return fr, nil
}

// sendPeerFrame encodes fr into a transport-pooled buffer (when the
// communicator supports shared sends) and ships it. The payload is
// copied into the wire buffer, so the caller's slice is free the moment
// this returns.
func sendPeerFrame(comm mpi.Comm, dst, tag int, fr peerFrame) error {
	n := peerHeaderLen + len(fr.payload)
	if ss, ok := comm.(mpi.SharedSender); ok {
		buf, pb := ss.AcquireBuffer(n)
		encodePeerInto(buf, fr)
		err := ss.SendPooled(dst, tag, buf, pb)
		if pb != nil {
			pb.Release()
		}
		return err
	}
	return comm.Send(dst, tag, encodePeer(fr))
}
