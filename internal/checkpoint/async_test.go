package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/simmpi"
)

// TestAsyncCommitLagsOneGeneration pins the pipeline's core contract:
// generation g is invisible to Restore until the next checkpoint (or a
// Drain) commits it, and Drain makes the newest snapshot restorable.
func TestAsyncCommitLagsOneGeneration(t *testing.T) {
	const n = 4
	store := NewMemStorage()
	pipe := NewPipeline(2)
	defer pipe.Close()
	runWorld(t, n, func(c *simmpi.Comm) error {
		cl, err := NewClient(c, Config{Storage: store, Pipeline: pipe})
		if err != nil {
			return err
		}
		state := func(gen int) []byte {
			return []byte(fmt.Sprintf("rank %d gen %d", c.Rank(), gen))
		}
		if err := cl.Checkpoint(state(0), true); err != nil {
			return err
		}
		// Generation 0 is written (or in flight) but must not be
		// committed: no drain point has passed yet. Safe to assert
		// between collective calls — the commit can only happen inside
		// the next checkpoint, which needs this rank's participation.
		if _, _, ok, err := store.Latest(); err != nil {
			return err
		} else if ok {
			return fmt.Errorf("rank %d: generation committed before any drain point", c.Rank())
		}
		if err := cl.Checkpoint(state(1), true); err != nil {
			return err
		}
		// The second checkpoint's drain point committed generation 0.
		if gen, _, ok, err := store.Latest(); err != nil {
			return err
		} else if !ok || gen != 0 {
			return fmt.Errorf("rank %d: latest = %d/%v, want 0/true", c.Rank(), gen, ok)
		}
		if err := cl.Drain(); err != nil {
			return err
		}
		if gen, _, ok, err := store.Latest(); err != nil {
			return err
		} else if !ok || gen != 1 {
			return fmt.Errorf("rank %d after drain: latest = %d/%v, want 1/true", c.Rank(), gen, ok)
		}
		got, ok, err := cl.Restore()
		if err != nil {
			return err
		}
		if !ok || !bytes.Equal(got, state(1)) {
			return fmt.Errorf("rank %d restored %q/%v, want %q", c.Rank(), got, ok, state(1))
		}
		if cl.Checkpoints() != 2 {
			return fmt.Errorf("checkpoints = %d, want 2", cl.Checkpoints())
		}
		return nil
	})
}

// TestAsyncStateNotRetained verifies the snapshot-copy semantics: the
// caller may mutate its state buffer the moment Checkpoint returns, and
// the checkpoint still holds the bytes from the checkpoint line.
func TestAsyncStateNotRetained(t *testing.T) {
	const n = 2
	store := NewMemStorage()
	pipe := NewPipeline(1)
	defer pipe.Close()
	runWorld(t, n, func(c *simmpi.Comm) error {
		cl, err := NewClient(c, Config{Storage: store, Pipeline: pipe})
		if err != nil {
			return err
		}
		state := bytes.Repeat([]byte{byte('A' + c.Rank())}, 8192)
		want := append([]byte(nil), state...)
		if err := cl.Checkpoint(state, true); err != nil {
			return err
		}
		for i := range state {
			state[i] = 0xFF // mutate immediately; the pipeline must not see this
		}
		if err := cl.Drain(); err != nil {
			return err
		}
		got, ok, err := cl.Restore()
		if err != nil {
			return err
		}
		if !ok || !bytes.Equal(got, want) {
			return fmt.Errorf("rank %d: snapshot leaked post-checkpoint mutations", c.Rank())
		}
		return nil
	})
}

// TestAsyncMetrics checks the pipeline's observability: the in-flight
// gauge returns to zero, overlap time accumulates, and attempted ==
// committed once drained.
func TestAsyncMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	store := NewMemStorage()
	pipe := NewPipeline(2)
	defer pipe.Close()
	runWorld(t, 2, func(c *simmpi.Comm) error {
		cl, err := NewClient(c, Config{Storage: store, Pipeline: pipe, Obs: reg})
		if err != nil {
			return err
		}
		for g := 0; g < 3; g++ {
			if err := cl.Checkpoint(bytes.Repeat([]byte{byte(g)}, 4096), true); err != nil {
				return err
			}
		}
		return cl.Drain()
	})
	snap := reg.Snapshot()
	if got := snap.Gauge("checkpoint_async_inflight"); got != 0 {
		t.Errorf("inflight gauge = %d after drain, want 0", got)
	}
	if snap.Counter("checkpoint_overlap_ns_total") == 0 {
		t.Error("no overlap time recorded")
	}
	if snap.Counter("checkpoint_stall_ns_total") == 0 {
		t.Error("no stall time recorded")
	}
	att, com := snap.Counter("checkpoint_attempted_total"), snap.Counter("checkpoint_committed_total")
	if att != 3 || com != 3 {
		t.Errorf("attempted/committed = %d/%d, want 3/3", att, com)
	}
	if snap.Counter("checkpoint_bytes_written_total") != 2*3*4096 {
		t.Errorf("bytes written = %d, want %d", snap.Counter("checkpoint_bytes_written_total"), 2*3*4096)
	}
}

// failingStorage fails every Write; Commit/Read succeed vacuously.
type failingStorage struct{ MemStorage }

var errDiskFull = errors.New("disk full")

func (f *failingStorage) Write(gen uint64, rank int, state []byte) error { return errDiskFull }

// TestAsyncWriteErrorSurfacesAtDrain: a background write failure must
// poison the pending generation and surface from Drain (and from the
// next checkpoint's drain point), not vanish.
func TestAsyncWriteErrorSurfacesAtDrain(t *testing.T) {
	store := &failingStorage{}
	pipe := NewPipeline(1)
	defer pipe.Close()
	w, err := simmpi.NewWorld(1)
	if err != nil {
		t.Fatal(err)
	}
	appErr, failures := w.Run(func(c *simmpi.Comm) error {
		cl, err := NewClient(c, Config{Storage: store, Pipeline: pipe})
		if err != nil {
			return err
		}
		if err := cl.Checkpoint([]byte("doomed"), true); err != nil {
			return err // the enqueue itself must not fail
		}
		if err := cl.Drain(); err == nil {
			return fmt.Errorf("drain swallowed the background write failure")
		} else if !errors.Is(err, errDiskFull) {
			return fmt.Errorf("drain error = %v, want wrapped errDiskFull", err)
		}
		return nil
	})
	if appErr != nil || len(failures) != 0 {
		t.Fatalf("appErr=%v failures=%v", appErr, failures)
	}
}

// TestPipelineCloseDrainsAndIsIdempotent: Close waits for submitted
// jobs and tolerates a second call.
func TestPipelineCloseDrainsAndIsIdempotent(t *testing.T) {
	store := NewMemStorage()
	pipe := NewPipeline(3)
	runWorld(t, 2, func(c *simmpi.Comm) error {
		cl, err := NewClient(c, Config{Storage: store, Pipeline: pipe})
		if err != nil {
			return err
		}
		if err := cl.Checkpoint([]byte("x"), true); err != nil {
			return err
		}
		return cl.Drain()
	})
	pipe.Close()
	pipe.Close()
}

// TestSyncModeDrainIsNoOp: Drain on a synchronous client must not
// attempt any collective round (callers invoke it unconditionally).
func TestSyncModeDrainIsNoOp(t *testing.T) {
	store := NewMemStorage()
	runWorld(t, 2, func(c *simmpi.Comm) error {
		cl, err := NewClient(c, Config{Storage: store})
		if err != nil {
			return err
		}
		if err := cl.Checkpoint([]byte("y"), true); err != nil {
			return err
		}
		// Ranks call Drain at different times; if it ran barriers it
		// could deadlock against ranks that already returned.
		return cl.Drain()
	})
}

// TestSnapArenaClasses pins the snapshot arena's size-class arithmetic
// and oversized fallback.
func TestSnapArenaClasses(t *testing.T) {
	cases := []struct{ n, class int }{
		{0, 0}, {1, 0}, {snapMinClass, 0}, {snapMinClass + 1, 1},
		{1 << 20, 10}, {16 << 20, snapClasses - 1}, {16<<20 + 1, -1},
	}
	for _, tc := range cases {
		if got := snapClassFor(tc.n); got != tc.class {
			t.Errorf("snapClassFor(%d) = %d, want %d", tc.n, got, tc.class)
		}
	}
	buf, pb := snapPool.acquire(100)
	if len(buf) != 100 || pb == nil {
		t.Fatalf("acquire(100) = len %d, handle %v", len(buf), pb)
	}
	pb.Release()
	big, pb2 := snapPool.acquire(17 << 20)
	if len(big) != 17<<20 || pb2 != nil {
		t.Fatalf("oversized acquire: len %d, handle %v", len(big), pb2)
	}
}

// TestAsyncUnderConcurrentIntervals hammers the pipeline across many
// back-to-back intervals so the race detector can see snapshot buffers,
// worker metrics, and drain ordering interact.
func TestAsyncUnderConcurrentIntervals(t *testing.T) {
	const n, gens = 3, 12
	store := NewMemStorage()
	pipe := NewPipeline(4)
	defer pipe.Close()
	var mu sync.Mutex
	finalStates := make(map[int][]byte)
	runWorld(t, n, func(c *simmpi.Comm) error {
		cl, err := NewClient(c, Config{Storage: store, Pipeline: pipe})
		if err != nil {
			return err
		}
		state := make([]byte, 3000)
		for g := 0; g < gens; g++ {
			for i := range state {
				state[i] = byte(g*7 + c.Rank())
			}
			if err := cl.Checkpoint(state, true); err != nil {
				return err
			}
		}
		if err := cl.Drain(); err != nil {
			return err
		}
		mu.Lock()
		finalStates[c.Rank()] = append([]byte(nil), state...)
		mu.Unlock()
		return nil
	})
	gen, ranks, ok, err := store.Latest()
	if err != nil || !ok || gen != gens-1 || ranks != n {
		t.Fatalf("latest = %d/%d/%v/%v, want %d/%d", gen, ranks, ok, err, gens-1, n)
	}
	for r := 0; r < n; r++ {
		got, err := store.Read(gen, r)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, finalStates[r]) {
			t.Fatalf("rank %d final generation mismatch", r)
		}
	}
}
