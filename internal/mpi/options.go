package mpi

import (
	"time"

	"repro/internal/obs"
)

// Liveness reports which physical ranks are still alive. The failure
// injector (via the simmpi World) provides the live view; failure-free
// runs leave it unset.
type Liveness interface {
	Alive(rank int) bool
}

// Options is the typed configuration surface shared by every
// communicator constructor — simmpi.NewWorld and redundancy.Wrap consume
// the same option list, each applying the fields it understands and
// ignoring the rest. This replaces the previous parallel parameter lists
// (World options here, redundancy.Options there) with one surface the
// CLIs and the core runner thread through unchanged.
type Options struct {
	// Degree is the redundancy degree r the option list was built for;
	// redundancy.Wrap validates it against the rank map. Zero means
	// unspecified (no validation).
	Degree float64
	// HashCompare selects the redundancy layer's Msg-PlusHash replica
	// comparison instead of the default All-to-all.
	HashCompare bool
	// CorruptRanks lists physical ranks whose replicas inject silent
	// data corruption into outgoing payloads (redundancy layer's SDC
	// knob).
	CorruptRanks []int
	// Liveness is the live view of physical ranks for replica failover
	// decisions; nil means assume everyone is alive.
	Liveness Liveness
	// SendDelay is the emulated per-physical-message wire latency.
	SendDelay time.Duration
	// Obs is the telemetry registry; meaningful only when ObsSet (a nil
	// registry with ObsSet disables telemetry entirely).
	Obs *obs.Registry
	// ObsSet records that WithObs was given, distinguishing "default
	// private registry" from "telemetry disabled".
	ObsSet bool
	// NoPooling disables the transport's buffer arena: every payload is
	// a fresh allocation and Release is a no-op. Debug/baseline knob.
	NoPooling bool
	// Flight is the bounded flight recorder receiving the transport's
	// forensic records (sends, drops, liveness transitions); nil
	// disables flight recording.
	Flight *obs.Recorder
}

// Option configures a communicator constructor.
type Option func(*Options)

// ResolveOptions folds an option list into its Options value.
func ResolveOptions(opts []Option) Options {
	var o Options
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	return o
}

// WithDegree records the redundancy degree r the job runs at, letting
// redundancy.Wrap cross-check the rank map it is given.
func WithDegree(r float64) Option {
	return func(o *Options) { o.Degree = r }
}

// WithHashCompare selects Msg-PlusHash replica comparison (one full copy
// plus hashes) instead of All-to-all full copies.
func WithHashCompare(on bool) Option {
	return func(o *Options) { o.HashCompare = on }
}

// WithCorruptRanks makes the listed physical ranks inject deterministic
// silent data corruption into every payload they send.
func WithCorruptRanks(ranks []int) Option {
	return func(o *Options) { o.CorruptRanks = ranks }
}

// WithLiveness supplies the live view of physical ranks used for replica
// failover decisions.
func WithLiveness(l Liveness) Option {
	return func(o *Options) { o.Liveness = l }
}

// WithSendDelay makes every physical send cost the sender the given
// latency, restoring a realistic communication/computation ratio for the
// in-process transport.
func WithSendDelay(d time.Duration) Option {
	return func(o *Options) { o.SendDelay = d }
}

// WithObs registers the transport's runtime instruments in the given
// registry; passing nil disables its telemetry entirely.
func WithObs(reg *obs.Registry) Option {
	return func(o *Options) {
		o.Obs = reg
		o.ObsSet = true
	}
}

// WithoutPooling disables the transport's buffer arena (every payload is
// freshly allocated, Release is a no-op) — the measurement baseline the
// pooled path is judged against.
func WithoutPooling() Option {
	return func(o *Options) { o.NoPooling = true }
}

// WithFlight attaches a bounded flight recorder to the transport: every
// send, drop, and liveness transition (kill, abort, interrupt, revive,
// resume) leaves a fixed-size record in the per-rank ring, the black
// box a post-mortem reads. Nil (the default) disables recording; the
// hot-path cost is then a single nil check.
func WithFlight(rec *obs.Recorder) Option {
	return func(o *Options) { o.Flight = rec }
}
