// ULFM-style fault surface: the notification type delivered to
// communicator errhandlers, and the generic Shrunk communicator every
// backend's Shrink builds on. The design mirrors the User-Level Failure
// Mitigation chapter of the MPI standard — failures are *notified*
// (errhandler), *acknowledged* (FailureAck), and *repaired* (Shrink +
// Agree) — so applications continue on survivors instead of rolling the
// whole job back to a checkpoint.

package mpi

import (
	"fmt"
	"sort"
)

// FailureInfo describes one observed process failure, delivered to the
// errhandler installed with Comm.SetErrhandler. Rank is in the
// observing communicator's own rank space: a redundancy-layer
// communicator reports virtual ranks (a virtual rank fails only when
// its whole replica sphere is dead), a transport communicator reports
// physical ranks, and a Shrunk communicator reports shrunk ranks.
type FailureInfo struct {
	// Rank is the failed rank.
	Rank int
}

// Shrunk is a communicator restricted to a subset of a base
// communicator's ranks, densely renumbered in ascending base-rank
// order. It is the common implementation of Comm.Shrink: a backend
// agrees on the survivor set (its own consensus problem) and wraps the
// base endpoint with NewShrunk. All traffic flows through the base
// communicator unchanged — Shrunk only translates rank spaces and
// filters wildcard deliveries from non-members, so it composes over any
// Comm (transport, redundancy layer, or another shrink's base).
type Shrunk struct {
	base    Comm
	ranks   []int // shrunk rank -> base rank, ascending
	newRank map[int]int
	rank    int // this endpoint's shrunk rank
}

var _ Comm = (*Shrunk)(nil)

// NewShrunk wraps base restricted to the given survivor set. survivors
// are base ranks; they are defensively copied and sorted. The base
// endpoint's own rank must be a member. Acknowledging the failures the
// shrink repaired is the backend's job before wrapping (Shrink implies
// failure_ack in ULFM, but which failures a shrink may ack is a
// backend-level decision: a replicated comm must keep failures that
// arrived too late for the survivor agreement pending).
func NewShrunk(base Comm, survivors []int) (*Shrunk, error) {
	if len(survivors) == 0 {
		return nil, fmt.Errorf("mpi: shrink to empty communicator")
	}
	ranks := append([]int(nil), survivors...)
	sort.Ints(ranks)
	s := &Shrunk{base: base, ranks: ranks, newRank: make(map[int]int, len(ranks)), rank: -1}
	for nr, br := range ranks {
		if br < 0 || br >= base.Size() {
			return nil, fmt.Errorf("mpi: shrink survivor %d outside base [0,%d): %w", br, base.Size(), ErrInvalidRank)
		}
		if _, dup := s.newRank[br]; dup {
			return nil, fmt.Errorf("mpi: duplicate shrink survivor %d: %w", br, ErrInvalidRank)
		}
		s.newRank[br] = nr
		if br == base.Rank() {
			s.rank = nr
		}
	}
	if s.rank < 0 {
		return nil, fmt.Errorf("mpi: rank %d is not a shrink survivor: %w", base.Rank(), ErrInvalidRank)
	}
	return s, nil
}

// Base returns the communicator the shrunk communicator was built over.
func (s *Shrunk) Base() Comm { return s.base }

// BaseRanks returns the survivor set in base-rank space, ascending; the
// slice is shared and must not be mutated.
func (s *Shrunk) BaseRanks() []int { return s.ranks }

// BaseRank translates a shrunk rank to its base rank.
func (s *Shrunk) BaseRank(rank int) (int, error) {
	if rank < 0 || rank >= len(s.ranks) {
		return 0, fmt.Errorf("mpi: shrunk rank %d of %d: %w", rank, len(s.ranks), ErrInvalidRank)
	}
	return s.ranks[rank], nil
}

// NewRank translates a base rank to its shrunk rank; ok is false for
// non-members.
func (s *Shrunk) NewRank(baseRank int) (int, bool) {
	nr, ok := s.newRank[baseRank]
	return nr, ok
}

// Rank implements Comm.
func (s *Shrunk) Rank() int { return s.rank }

// Size implements Comm.
func (s *Shrunk) Size() int { return len(s.ranks) }

// Send implements Comm.
func (s *Shrunk) Send(dst, tag int, data []byte) error {
	base, err := s.BaseRank(dst)
	if err != nil {
		return err
	}
	return s.base.Send(base, tag, data)
}

// Recv implements Comm. Wildcard receives filter the base stream:
// messages from ranks outside the survivor set (late traffic from the
// failed epoch) are released and skipped, never delivered.
func (s *Shrunk) Recv(src, tag int) (Message, error) {
	if src != AnySource {
		base, err := s.BaseRank(src)
		if err != nil {
			return Message{}, err
		}
		msg, err := s.base.Recv(base, tag)
		if err != nil {
			return Message{}, err
		}
		return msg.Reframe(src, msg.Tag, msg.Data), nil
	}
	for {
		msg, err := s.base.Recv(AnySource, tag)
		if err != nil {
			return Message{}, err
		}
		if nr, ok := s.newRank[msg.Source]; ok {
			return msg.Reframe(nr, msg.Tag, msg.Data), nil
		}
		msg.Release()
	}
}

// Probe implements Comm; wildcard probes consume and drop non-member
// messages so a stale envelope can never satisfy the probe.
func (s *Shrunk) Probe(src, tag int) (Status, error) {
	if src != AnySource {
		base, err := s.BaseRank(src)
		if err != nil {
			return Status{}, err
		}
		st, err := s.base.Probe(base, tag)
		if err != nil {
			return Status{}, err
		}
		st.Source = src
		return st, nil
	}
	for {
		st, err := s.base.Probe(AnySource, tag)
		if err != nil {
			return Status{}, err
		}
		if nr, ok := s.newRank[st.Source]; ok {
			st.Source = nr
			return st, nil
		}
		// Drain the stale message; the probe loop then re-inspects.
		msg, err := s.base.Recv(st.Source, st.Tag)
		if err != nil {
			return Status{}, err
		}
		msg.Release()
	}
}

// Isend implements Comm.
func (s *Shrunk) Isend(dst, tag int, data []byte) (Request, error) {
	base, err := s.BaseRank(dst)
	if err != nil {
		return nil, err
	}
	return s.base.Isend(base, tag, data)
}

// Irecv implements Comm.
func (s *Shrunk) Irecv(src, tag int) (Request, error) {
	baseSrc := AnySource
	if src != AnySource {
		var err error
		baseSrc, err = s.BaseRank(src)
		if err != nil {
			return nil, err
		}
	}
	req, err := s.base.Irecv(baseSrc, tag)
	if err != nil {
		return nil, err
	}
	return &shrunkRequest{s: s, inner: req, tag: tag}, nil
}

// shrunkRequest translates completed receives into the shrunk rank
// space; wildcard completions from non-members are dropped and the
// receive re-posted.
type shrunkRequest struct {
	s     *Shrunk
	inner Request
	tag   int

	done bool
	msg  Message
	st   Status
	err  error
}

var _ Request = (*shrunkRequest)(nil)

func (r *shrunkRequest) settle(msg Message, st Status, err error) (Message, Status, error) {
	if err == nil {
		if nr, ok := r.s.newRank[msg.Source]; ok {
			msg = msg.Reframe(nr, msg.Tag, msg.Data)
			st.Source = nr
		} else {
			// Stale sender: drop and re-post the wildcard receive.
			msg.Release()
			r.inner, r.err = r.s.base.Irecv(AnySource, r.tag)
			if r.err != nil {
				r.done = true
			}
			return Message{}, Status{}, r.err
		}
	}
	r.done, r.msg, r.st, r.err = true, msg, st, err
	return r.msg, r.st, r.err
}

func (r *shrunkRequest) Wait() (Message, Status, error) {
	for !r.done {
		msg, st, err := r.inner.Wait()
		r.settle(msg, st, err)
	}
	return r.msg, r.st, r.err
}

func (r *shrunkRequest) Test() (bool, Message, Status, error) {
	if r.done {
		return true, r.msg, r.st, r.err
	}
	done, msg, st, err := r.inner.Test()
	if !done {
		return false, Message{}, Status{}, nil
	}
	r.settle(msg, st, err)
	return r.done, r.msg, r.st, r.err
}

// SetErrhandler implements Comm: the handler sees shrunk ranks, and
// failures of non-member base ranks are filtered out.
func (s *Shrunk) SetErrhandler(fn func(FailureInfo)) {
	if fn == nil {
		s.base.SetErrhandler(nil)
		return
	}
	s.base.SetErrhandler(func(fi FailureInfo) {
		if nr, ok := s.newRank[fi.Rank]; ok {
			fn(FailureInfo{Rank: nr})
		}
	})
}

// FailureAck implements Comm, returning only member failures in shrunk
// rank space (the base ack still clears non-member failures).
func (s *Shrunk) FailureAck() []int {
	var out []int
	for _, br := range s.base.FailureAck() {
		if nr, ok := s.newRank[br]; ok {
			out = append(out, nr)
		}
	}
	sort.Ints(out)
	return out
}

// Shrink implements Comm by delegating to the base communicator: the
// base's survivor set is always a subset of this communicator's members
// (failures are monotone), so the base shrink *is* the shrink of this
// communicator, and stacking stays one level deep no matter how many
// times the application shrinks.
func (s *Shrunk) Shrink() (Comm, error) { return s.base.Shrink() }

// Agree implements Comm. The base's participant set (its survivors)
// equals this communicator's live members, so delegation preserves the
// agreement semantics.
func (s *Shrunk) Agree(flag bool) (bool, error) { return s.base.Agree(flag) }
