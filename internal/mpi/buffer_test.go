package mpi

import "testing"

// recordingRecycler counts Recycle callbacks so the tests can observe
// exactly when the last reference drops.
type recordingRecycler struct {
	got []*PooledBuf
}

func (r *recordingRecycler) Recycle(pb *PooledBuf) { r.got = append(r.got, pb) }

func TestPooledBufCreatorReferenceRecycles(t *testing.T) {
	rec := &recordingRecycler{}
	pb := NewPooledBuf(make([]byte, 16), rec)
	if len(rec.got) != 0 {
		t.Fatalf("recycled before any release: %d", len(rec.got))
	}
	pb.Release()
	if len(rec.got) != 1 || rec.got[0] != pb {
		t.Fatalf("want exactly one recycle of pb, got %v", rec.got)
	}
}

func TestPooledBufRetainDefersRecycle(t *testing.T) {
	rec := &recordingRecycler{}
	pb := NewPooledBuf(make([]byte, 16), rec)
	pb.Retain()
	pb.Retain()
	pb.Release()
	pb.Release()
	if len(rec.got) != 0 {
		t.Fatal("recycled while a reference was still outstanding")
	}
	pb.Release()
	if len(rec.got) != 1 {
		t.Fatalf("want one recycle after final release, got %d", len(rec.got))
	}
}

func TestPooledBufNilRecycler(t *testing.T) {
	pb := NewPooledBuf(make([]byte, 16), nil)
	pb.Retain()
	pb.Release()
	pb.Release() // must not panic: GC takes the buffer instead
}

func TestPooledBufResetRearms(t *testing.T) {
	rec := &recordingRecycler{}
	pb := NewPooledBuf(make([]byte, 16), rec)
	pb.Release()
	// The arena hands the same handle out again after a Reset.
	pb.Reset()
	pb.Release()
	if len(rec.got) != 2 {
		t.Fatalf("want recycle per acquire/release cycle, got %d", len(rec.got))
	}
}

func TestPooledBufBytesAliasesBacking(t *testing.T) {
	backing := []byte{1, 2, 3, 4}
	pb := NewPooledBuf(backing, nil)
	b := pb.Bytes()
	if len(b) != len(backing) {
		t.Fatalf("Bytes() len = %d, want %d", len(b), len(backing))
	}
	b[0] = 9
	if backing[0] != 9 {
		t.Fatal("Bytes() must alias the backing slice, not copy it")
	}
}
