//go:build !race

package mpi_test

const raceEnabled = false
