package mpi_test

import (
	"bytes"
	"testing"

	"repro/internal/mpi"
)

// FuzzFrameDecode hammers the strict whole-buffer decoder with arbitrary
// bytes: it must never panic, and whatever it accepts must re-encode to
// the identical wire bytes (canonical form).
func FuzzFrameDecode(f *testing.F) {
	seed, _ := mpi.AppendFrame(nil, mpi.Frame{Type: 1, Src: 0, Dst: 3, Tag: 7, Payload: []byte("payload")})
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 13})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})       // oversized length prefix
	f.Add(append(append([]byte{}, seed...), 0xEE)) // trailing byte
	f.Add(seed[:len(seed)-3])                      // truncated body
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := mpi.DecodeFrame(data)
		if err != nil {
			return
		}
		re, err := mpi.AppendFrame(nil, fr)
		if err != nil {
			t.Fatalf("decoded frame refused re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\n in %x\nout %x", data, re)
		}
	})
}

// FuzzFrameRoundTrip drives the encoder with arbitrary header fields and
// payloads: valid inputs must survive encode → strict decode → pooled
// stream decode unchanged, and invalid inputs must be refused by the
// encoder rather than producing undecodable bytes.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(byte(1), int32(0), int32(1), int32(7), []byte("x"))
	f.Add(byte(9), int32(-1), int32(-1), int32(-1), []byte{})
	f.Add(byte(0), int32(2), int32(2), int32(2), []byte("zero type"))
	f.Add(byte(4), int32(-2), int32(0), int32(0), []byte("bad src"))
	arena := mpi.NewArena()
	f.Fuzz(func(t *testing.T, typ byte, src, dst, tag int32, payload []byte) {
		in := mpi.Frame{Type: typ, Src: src, Dst: dst, Tag: tag, Payload: payload}
		enc, err := mpi.AppendFrame(nil, in)
		if err != nil {
			return // invalid fields are the encoder's to refuse
		}
		got, err := mpi.DecodeFrame(enc)
		if err != nil {
			t.Fatalf("encoder emitted undecodable bytes: %v", err)
		}
		if got.Type != typ || got.Src != src || got.Dst != dst || got.Tag != tag ||
			!bytes.Equal(got.Payload, payload) {
			t.Fatalf("round trip mismatch: got %+v want %+v", got, in)
		}
		sf, pb, err := mpi.ReadFrame(bytes.NewReader(enc), arena)
		if err != nil {
			t.Fatalf("stream decode of valid frame: %v", err)
		}
		if sf.Type != typ || !bytes.Equal(sf.Payload, payload) {
			t.Fatalf("stream round trip mismatch: got %+v want %+v", sf, in)
		}
		if pb != nil {
			pb.Release()
		}
	})
}
