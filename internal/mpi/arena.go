package mpi

import "sync"

// Arena is the sync.Pool-backed buffer pool every transport shares for
// message payloads. Senders borrow a buffer, copy (or encode) the
// payload once at the transport boundary, and enqueue it; the receiver
// owns the buffer until it calls Message.Release, which returns it here
// for the next send. Buffers are size-classed in powers of two so a
// recycled buffer is never undersized for its class, and each buffer
// keeps its PooledBuf handle for life — recycling re-uses the handle, so
// the steady-state send/receive/release cycle allocates nothing.
//
// Oversized payloads (beyond the largest class) fall back to plain
// allocations with no handle; they are rare (checkpoint images take the
// storage path, not the message path) and simply bypass reuse.
//
// The arena began life inside simmpi; it moved here when the transport
// grew a second backend (procmpi) whose socket receive path borrows the
// same pooled buffers for zero-copy frame delivery.
type Arena struct {
	classes [arenaClasses]sync.Pool
	// poison overwrites returned buffers with a sentinel so a
	// use-after-release reads garbage deterministically; enabled under
	// the race detector where such bugs should be loudest.
	poison bool
}

const (
	// arenaMinClass is the smallest pooled buffer (wire headers, hashes,
	// barrier tokens all fit).
	arenaMinClass = 64
	// arenaMaxClass bounds pooled buffers; beyond it the arena falls
	// back to plain allocation.
	arenaMaxClass = 64 * 1024
	arenaClasses  = 11 // 64 << 10 == 64 KiB
)

var _ Recycler = (*Arena)(nil)

// NewArena creates an empty arena. Poisoning of recycled buffers is
// enabled automatically under the race detector.
func NewArena() *Arena {
	a := &Arena{poison: raceEnabled}
	for c := range a.classes {
		size := arenaMinClass << c
		a.classes[c].New = func() any {
			return NewPooledBuf(make([]byte, size), a)
		}
	}
	return a
}

// classFor returns the index of the smallest class holding n bytes, or
// -1 when n exceeds the largest class.
func classFor(n int) int {
	size := arenaMinClass
	for c := 0; c < arenaClasses; c++ {
		if n <= size {
			return c
		}
		size <<= 1
	}
	return -1
}

// Acquire returns a buffer of length n and its refcounted handle (nil
// for oversized fallback allocations). The handle carries one creator
// reference.
func (a *Arena) Acquire(n int) ([]byte, *PooledBuf) {
	c := classFor(n)
	if c < 0 {
		return make([]byte, n), nil
	}
	pb := a.classes[c].Get().(*PooledBuf)
	pb.Reset()
	return pb.Bytes()[:n], pb
}

// Recycle implements Recycler: the buffer's last reference was released,
// so it goes back to its size class for the next Acquire.
func (a *Arena) Recycle(pb *PooledBuf) {
	b := pb.Bytes()
	c := classFor(cap(b))
	if c < 0 || arenaMinClass<<c != cap(b) {
		return // not one of ours; drop it for the GC
	}
	if a.poison {
		full := b[:cap(b)]
		for i := range full {
			full[i] = poisonByte
		}
	}
	a.classes[c].Put(pb)
}

// poisonByte fills recycled buffers under the race detector: any reader
// holding a released payload sees this pattern instead of stale (or
// worse, newly overwritten) data.
const poisonByte = 0xDB
