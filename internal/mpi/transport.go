package mpi

// Transport is a message-passing runtime hosting the physical ranks of
// one job attempt. It is the surface the restart orchestrator
// (internal/core) and the failure machinery program against, so the same
// recovery logic drives any backend:
//
//   - simmpi.World: ranks are goroutines in this process, mailboxes are
//     in-memory (the simulated backend, default).
//   - procmpi: ranks are real OS processes connected over Unix or TCP
//     sockets; a kill is a SIGKILL delivered to a child PID and liveness
//     is observed through socket EOF and heartbeat timeouts.
//
// The liveness/epoch protocol is shared: Kill fail-stops a rank (its
// operations return ErrKilled, receives posted against it by peers
// return ErrPeerDead, messages to it are dropped), Abort tears the whole
// attempt down with ErrAborted, and the Interrupt → Revive → Resume
// sequence pauses an epoch, brings dead ranks back, and releases
// everyone into a fresh epoch for an in-place recovery.
type Transport interface {
	Liveness

	// Size returns the number of physical ranks.
	Size() int
	// Endpoint returns the communicator endpoint bound to a rank. For
	// in-process backends every rank is addressable; a distributed
	// backend exposes only the ranks hosted in this process.
	Endpoint(rank int) (Comm, error)

	// Kill fail-stops a rank (idempotent; out-of-range is a no-op).
	Kill(rank int)
	// AliveCount returns the number of live ranks.
	AliveCount() int
	// ForEachDead calls fn for every dead rank in ascending order. The
	// view is racy under concurrent liveness transitions; call it from a
	// quiesced world when an exact set is needed.
	ForEachDead(fn func(rank int))
	// ForEachLive calls fn for every live rank in ascending order, with
	// the same snapshot caveat as ForEachDead.
	ForEachLive(fn func(rank int))

	// Abort tears the attempt down: every blocked or future operation on
	// any rank returns ErrAborted.
	Abort()
	// Aborted reports whether the transport has been aborted.
	Aborted() bool

	// Interrupt pauses the current epoch: blocked and future operations
	// return ErrInterrupted, but unlike Abort the world stays usable.
	Interrupt()
	// Interrupted reports whether the transport is paused for recovery.
	Interrupted() bool
	// Revive brings a dead rank back while the world is interrupted; its
	// previous incarnation's unread traffic is discarded.
	Revive(rank int)
	// Resume ends an interrupt and starts a fresh epoch: pending traffic
	// of the interrupted epoch is purged and per-peer bookmark counts
	// reset. Callers must ensure all rank drivers are parked first.
	Resume()
}
