package mpi_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"repro/internal/mpi"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []mpi.Frame{
		{Type: 1, Src: 0, Dst: 3, Tag: 7, Payload: []byte("hello")},
		{Type: 2, Src: -1, Dst: -1, Tag: -1},
		{Type: 255, Src: 1 << 20, Dst: 0, Tag: 1 << 22, Payload: bytes.Repeat([]byte{0xAB}, 4097)},
		{Type: 9, Src: 5, Dst: 5, Tag: 0, Payload: []byte{}},
	}
	for _, f := range cases {
		enc, err := mpi.AppendFrame(nil, f)
		if err != nil {
			t.Fatalf("AppendFrame(%+v): %v", f, err)
		}
		if len(enc) != mpi.EncodedFrameLen(len(f.Payload)) {
			t.Fatalf("encoded %d bytes, want %d", len(enc), mpi.EncodedFrameLen(len(f.Payload)))
		}
		got, err := mpi.DecodeFrame(enc)
		if err != nil {
			t.Fatalf("DecodeFrame: %v", err)
		}
		if got.Type != f.Type || got.Src != f.Src || got.Dst != f.Dst || got.Tag != f.Tag ||
			!bytes.Equal(got.Payload, f.Payload) {
			t.Fatalf("round trip: got %+v want %+v", got, f)
		}
	}
}

func TestFrameWriteReadStream(t *testing.T) {
	arena := mpi.NewArena()
	var wire bytes.Buffer
	var scratch []byte
	var err error
	frames := []mpi.Frame{
		{Type: 1, Src: 0, Dst: 1, Tag: 4, Payload: []byte("small")},
		{Type: 1, Src: 1, Dst: 0, Tag: 4, Payload: bytes.Repeat([]byte{7}, 3*4096)},
		{Type: 4, Src: 2, Dst: -1, Tag: 0},
	}
	for _, f := range frames {
		if scratch, err = mpi.WriteFrame(&wire, f, scratch); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for _, want := range frames {
		got, pb, err := mpi.ReadFrame(&wire, arena)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if got.Type != want.Type || got.Src != want.Src || got.Dst != want.Dst ||
			got.Tag != want.Tag || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("stream round trip: got %+v want %+v", got, want)
		}
		if pb != nil {
			pb.Release()
		}
	}
	if _, _, err := mpi.ReadFrame(&wire, arena); err != io.EOF {
		t.Fatalf("exhausted stream: err = %v, want io.EOF", err)
	}
}

func TestFrameDecodeRejects(t *testing.T) {
	good, err := mpi.AppendFrame(nil, mpi.Frame{Type: 1, Src: 0, Dst: 1, Tag: 2, Payload: []byte("xyz")})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncated", func(t *testing.T) {
		for cut := 1; cut <= len(good); cut++ {
			if _, err := mpi.DecodeFrame(good[:len(good)-cut]); err == nil {
				t.Fatalf("truncation by %d accepted", cut)
			}
		}
	})
	t.Run("trailing", func(t *testing.T) {
		if _, err := mpi.DecodeFrame(append(append([]byte{}, good...), 0)); !errors.Is(err, mpi.ErrFrameTrailing) {
			t.Fatalf("trailing byte: err = %v, want ErrFrameTrailing", err)
		}
	})
	t.Run("oversized prefix", func(t *testing.T) {
		bomb := append([]byte{}, good...)
		binary.BigEndian.PutUint32(bomb, uint32(mpi.FrameHeaderLen+mpi.MaxFramePayload+1))
		if _, err := mpi.DecodeFrame(bomb); !errors.Is(err, mpi.ErrFrameOversized) {
			t.Fatalf("oversized prefix: err = %v, want ErrFrameOversized", err)
		}
		// The streaming reader must reject before allocating the body.
		if _, _, err := mpi.ReadFrame(bytes.NewReader(bomb), nil); !errors.Is(err, mpi.ErrFrameOversized) {
			t.Fatalf("streaming oversized prefix: err = %v, want ErrFrameOversized", err)
		}
	})
	t.Run("zero type", func(t *testing.T) {
		bad := append([]byte{}, good...)
		bad[4] = 0
		if _, err := mpi.DecodeFrame(bad); !errors.Is(err, mpi.ErrFrameHeader) {
			t.Fatalf("zero type: err = %v, want ErrFrameHeader", err)
		}
	})
	t.Run("sub-wildcard coordinates", func(t *testing.T) {
		bad := append([]byte{}, good...)
		var minusTwo int32 = -2
		binary.BigEndian.PutUint32(bad[5:], uint32(minusTwo))
		if _, err := mpi.DecodeFrame(bad); !errors.Is(err, mpi.ErrFrameHeader) {
			t.Fatalf("src=-2: err = %v, want ErrFrameHeader", err)
		}
	})
	t.Run("short body declaration", func(t *testing.T) {
		short := append([]byte{}, good...)
		binary.BigEndian.PutUint32(short, uint32(mpi.FrameHeaderLen-1))
		if _, _, err := mpi.ReadFrame(bytes.NewReader(short), nil); !errors.Is(err, mpi.ErrFrameTruncated) {
			t.Fatalf("short body: err = %v, want ErrFrameTruncated", err)
		}
	})
}

func TestFrameReadPooledSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets are meaningless under the race detector")
	}
	arena := mpi.NewArena()
	payload := bytes.Repeat([]byte{3}, 512)
	enc, err := mpi.AppendFrame(nil, mpi.Frame{Type: 1, Src: 0, Dst: 1, Tag: 2, Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(enc)
	// Warm the size class.
	_, pb, err := mpi.ReadFrame(r, arena)
	if err != nil {
		t.Fatal(err)
	}
	pb.Release()
	allocs := testing.AllocsPerRun(200, func() {
		r.Reset(enc)
		_, pb, err := mpi.ReadFrame(r, arena)
		if err != nil {
			t.Fatal(err)
		}
		pb.Release()
	})
	if allocs > 0 {
		t.Fatalf("pooled ReadFrame allocates %.1f/op, want 0", allocs)
	}
}
