//go:build race

package mpi

// raceEnabled reports whether the race detector instruments this build.
// The arena uses it to poison recycled buffers, making use-after-release
// bugs deterministic exactly when they are loudest.
const raceEnabled = true
