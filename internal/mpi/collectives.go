package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Collective tags. Collectives must be called by all ranks in the same
// order (the standard MPI requirement); FIFO matching per (source, tag)
// then keeps back-to-back collectives of the same kind from interfering.
// Each collective gets a 64-tag window so multi-round algorithms
// (the dissemination barrier uses tag base+round) cannot collide with a
// neighbouring collective's tag.
const (
	tagBarrier  = TagCollectiveBase + 0*64
	tagBcast    = TagCollectiveBase + 1*64
	tagReduce   = TagCollectiveBase + 2*64
	tagGather   = TagCollectiveBase + 3*64
	tagScatter  = TagCollectiveBase + 4*64
	tagAlltoall = TagCollectiveBase + 5*64
)

// Barrier blocks until every rank has entered the barrier, using the
// dissemination algorithm (⌈log2 p⌉ rounds, no root bottleneck).
func Barrier(c Comm) error {
	size := c.Size()
	rank := c.Rank()
	for k := 0; 1<<k < size; k++ {
		dist := 1 << k
		dst := (rank + dist) % size
		src := (rank - dist + size) % size
		if err := c.Send(dst, tagBarrier+k, nil); err != nil {
			return fmt.Errorf("barrier round %d: %w", k, err)
		}
		msg, err := c.Recv(src, tagBarrier+k)
		if err != nil {
			return fmt.Errorf("barrier round %d: %w", k, err)
		}
		msg.Release() // round tokens are empty; recycle immediately
	}
	return nil
}

// Bcast distributes root's data to every rank along a binomial tree and
// returns the received copy (root returns data unchanged).
func Bcast(c Comm, root int, data []byte) ([]byte, error) {
	size := c.Size()
	rank := c.Rank()
	if root < 0 || root >= size {
		return nil, fmt.Errorf("bcast root %d: %w", root, ErrInvalidRank)
	}
	if size == 1 {
		return data, nil
	}
	relative := (rank - root + size) % size
	mask := 1
	for mask < size {
		if relative&mask != 0 {
			src := (relative - mask + root) % size
			msg, err := c.Recv(src, tagBcast)
			if err != nil {
				return nil, fmt.Errorf("bcast recv: %w", err)
			}
			data = msg.Data
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if relative+mask < size {
			dst := (relative + mask + root) % size
			if err := c.Send(dst, tagBcast, data); err != nil {
				return nil, fmt.Errorf("bcast send: %w", err)
			}
		}
		mask >>= 1
	}
	return data, nil
}

// Gather collects each rank's data at root. Root receives a slice indexed
// by rank (its own entry aliasing data); other ranks return nil.
func Gather(c Comm, root int, data []byte) ([][]byte, error) {
	size := c.Size()
	rank := c.Rank()
	if root < 0 || root >= size {
		return nil, fmt.Errorf("gather root %d: %w", root, ErrInvalidRank)
	}
	if rank != root {
		if err := c.Send(root, tagGather, data); err != nil {
			return nil, fmt.Errorf("gather send: %w", err)
		}
		return nil, nil
	}
	out := make([][]byte, size)
	out[root] = data
	for i := 0; i < size; i++ {
		if i == root {
			continue
		}
		msg, err := c.Recv(i, tagGather)
		if err != nil {
			return nil, fmt.Errorf("gather recv from %d: %w", i, err)
		}
		out[i] = msg.Data
	}
	return out, nil
}

// Allgather collects every rank's data at every rank, as a gather to rank
// 0 followed by a broadcast.
func Allgather(c Comm, data []byte) ([][]byte, error) {
	parts, err := Gather(c, 0, data)
	if err != nil {
		return nil, err
	}
	var packed []byte
	if c.Rank() == 0 {
		packed = packParts(parts)
	}
	packed, err = Bcast(c, 0, packed)
	if err != nil {
		return nil, err
	}
	return unpackParts(packed, c.Size())
}

// Scatter distributes parts[i] from root to rank i and returns this
// rank's part. Only root's parts argument is consulted.
func Scatter(c Comm, root int, parts [][]byte) ([]byte, error) {
	size := c.Size()
	rank := c.Rank()
	if root < 0 || root >= size {
		return nil, fmt.Errorf("scatter root %d: %w", root, ErrInvalidRank)
	}
	if rank == root {
		if len(parts) != size {
			return nil, fmt.Errorf("scatter: %d parts for %d ranks", len(parts), size)
		}
		for i, p := range parts {
			if i == root {
				continue
			}
			if err := c.Send(i, tagScatter, p); err != nil {
				return nil, fmt.Errorf("scatter send to %d: %w", i, err)
			}
		}
		return parts[root], nil
	}
	msg, err := c.Recv(root, tagScatter)
	if err != nil {
		return nil, fmt.Errorf("scatter recv: %w", err)
	}
	return msg.Data, nil
}

// Alltoall performs a personalized all-to-all exchange: rank i receives
// parts[i] from every rank j, returned indexed by source rank.
func Alltoall(c Comm, parts [][]byte) ([][]byte, error) {
	size := c.Size()
	rank := c.Rank()
	if len(parts) != size {
		return nil, fmt.Errorf("alltoall: %d parts for %d ranks", len(parts), size)
	}
	out := make([][]byte, size)
	out[rank] = parts[rank]
	// Eager sends complete immediately, so send everything then receive.
	for i := 0; i < size; i++ {
		if i == rank {
			continue
		}
		if err := c.Send(i, tagAlltoall, parts[i]); err != nil {
			return nil, fmt.Errorf("alltoall send to %d: %w", i, err)
		}
	}
	for i := 0; i < size; i++ {
		if i == rank {
			continue
		}
		msg, err := c.Recv(i, tagAlltoall)
		if err != nil {
			return nil, fmt.Errorf("alltoall recv from %d: %w", i, err)
		}
		out[i] = msg.Data
	}
	return out, nil
}

// ReduceOp is a built-in elementwise reduction operator.
type ReduceOp int

// Supported reduction operators.
const (
	OpSum ReduceOp = iota + 1
	OpMax
	OpMin
	OpProd
)

func (op ReduceOp) applyFloat64(a, b float64) float64 {
	switch op {
	case OpMax:
		return math.Max(a, b)
	case OpMin:
		return math.Min(a, b)
	case OpProd:
		return a * b
	default:
		return a + b
	}
}

func (op ReduceOp) applyInt64(a, b int64) int64 {
	switch op {
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	case OpProd:
		return a * b
	default:
		return a + b
	}
}

// ReduceFloat64s reduces equal-length vectors elementwise onto root along
// a binomial tree. Root returns the reduced vector; others return nil.
// The accumulator stays numeric end to end: each received payload is
// combined elementwise straight out of the wire buffer (released back to
// the arena afterwards), and the single encode happens only when this
// rank forwards its accumulation upward.
func ReduceFloat64s(c Comm, root int, in []float64, op ReduceOp) ([]float64, error) {
	size := c.Size()
	rank := c.Rank()
	if root < 0 || root >= size {
		return nil, fmt.Errorf("reduce root %d: %w", root, ErrInvalidRank)
	}
	acc := append([]float64(nil), in...)
	relative := (rank - root + size) % size
	for mask := 1; mask < size; mask <<= 1 {
		if relative&mask != 0 {
			dst := (relative - mask + root) % size
			if err := c.Send(dst, tagReduce, encodeFloat64s(acc)); err != nil {
				return nil, fmt.Errorf("reduce send: %w", err)
			}
			return nil, nil
		}
		if relative+mask < size {
			src := (relative + mask + root) % size
			msg, err := c.Recv(src, tagReduce)
			if err != nil {
				return nil, fmt.Errorf("reduce recv from %d: %w", src, err)
			}
			err = combineFloat64s(acc, msg.Data, op)
			msg.Release()
			if err != nil {
				return nil, err
			}
		}
	}
	return acc, nil
}

// AllreduceRDFloat64s is a recursive-doubling allreduce: log2(p) rounds
// of pairwise exchange-and-combine, the latency-optimal algorithm real
// MPI implementations use for short vectors. For non-power-of-two sizes
// the excess ranks fold into partners first and receive the result last.
// Note: unlike the tree-based AllreduceFloat64s, the combine order
// differs per rank, so results are only bit-identical across ranks for
// exactly associative operators (min/max, or sums of exactly
// representable values); CG uses the tree form for bit determinism.
// Every round encodes the accumulator into one reused scratch buffer
// (sends are eager and copy at the transport boundary, so the scratch
// may be overwritten the moment Send returns) and combines straight out
// of the received wire buffer before releasing it — the log2(p) rounds
// allocate nothing beyond the accumulator and scratch.
func AllreduceRDFloat64s(c Comm, in []float64, op ReduceOp) ([]float64, error) {
	size := c.Size()
	rank := c.Rank()
	acc := append([]float64(nil), in...)
	scratch := make([]byte, 8*len(acc))

	// Largest power of two ≤ size.
	pow2 := 1
	for pow2*2 <= size {
		pow2 *= 2
	}
	rem := size - pow2

	// Fold-in phase: ranks [pow2, size) send their vectors to
	// rank - pow2 and sit out the doubling rounds.
	const tagRD = TagCollectiveBase + 6*64
	switch {
	case rank >= pow2:
		encodeFloat64sInto(scratch, acc)
		if err := c.Send(rank-pow2, tagRD, scratch); err != nil {
			return nil, err
		}
	case rank < rem:
		msg, err := c.Recv(rank+pow2, tagRD)
		if err != nil {
			return nil, err
		}
		err = combineFloat64s(acc, msg.Data, op)
		msg.Release()
		if err != nil {
			return nil, err
		}
	}

	if rank < pow2 {
		for mask := 1; mask < pow2; mask <<= 1 {
			partner := rank ^ mask
			encodeFloat64sInto(scratch, acc)
			if err := c.Send(partner, tagRD+1, scratch); err != nil {
				return nil, err
			}
			msg, err := c.Recv(partner, tagRD+1)
			if err != nil {
				return nil, err
			}
			err = combineFloat64s(acc, msg.Data, op)
			msg.Release()
			if err != nil {
				return nil, err
			}
		}
	}

	// Fold-out phase: deliver the result to the excess ranks.
	switch {
	case rank < rem:
		encodeFloat64sInto(scratch, acc)
		if err := c.Send(rank+pow2, tagRD+2, scratch); err != nil {
			return nil, err
		}
	case rank >= pow2:
		msg, err := c.Recv(rank-pow2, tagRD+2)
		if err != nil {
			return nil, err
		}
		if len(msg.Data) != 8*len(acc) {
			return nil, fmt.Errorf("allreduce-rd: result payload of %d bytes for %d elements",
				len(msg.Data), len(acc))
		}
		for i := range acc {
			acc[i] = math.Float64frombits(binary.LittleEndian.Uint64(msg.Data[8*i:]))
		}
		msg.Release()
	}
	return acc, nil
}

// AllreduceFloat64s reduces elementwise and distributes the result to all
// ranks (reduce to rank 0, then broadcast).
func AllreduceFloat64s(c Comm, in []float64, op ReduceOp) ([]float64, error) {
	reduced, err := ReduceFloat64s(c, 0, in, op)
	if err != nil {
		return nil, err
	}
	var packed []byte
	if c.Rank() == 0 {
		packed = encodeFloat64s(reduced)
	}
	packed, err = Bcast(c, 0, packed)
	if err != nil {
		return nil, err
	}
	return decodeFloat64s(packed)
}

// ReduceInt64s reduces equal-length int64 vectors elementwise onto root,
// combining in place out of the wire buffers like ReduceFloat64s.
func ReduceInt64s(c Comm, root int, in []int64, op ReduceOp) ([]int64, error) {
	size := c.Size()
	rank := c.Rank()
	if root < 0 || root >= size {
		return nil, fmt.Errorf("reduce root %d: %w", root, ErrInvalidRank)
	}
	acc := append([]int64(nil), in...)
	relative := (rank - root + size) % size
	for mask := 1; mask < size; mask <<= 1 {
		if relative&mask != 0 {
			dst := (relative - mask + root) % size
			if err := c.Send(dst, tagReduce, encodeInt64s(acc)); err != nil {
				return nil, fmt.Errorf("reduce send: %w", err)
			}
			return nil, nil
		}
		if relative+mask < size {
			src := (relative + mask + root) % size
			msg, err := c.Recv(src, tagReduce)
			if err != nil {
				return nil, fmt.Errorf("reduce recv from %d: %w", src, err)
			}
			err = combineInt64s(acc, msg.Data, op)
			msg.Release()
			if err != nil {
				return nil, err
			}
		}
	}
	return acc, nil
}

// AllreduceInt64s reduces elementwise and distributes the result to all.
func AllreduceInt64s(c Comm, in []int64, op ReduceOp) ([]int64, error) {
	reduced, err := ReduceInt64s(c, 0, in, op)
	if err != nil {
		return nil, err
	}
	var packed []byte
	if c.Rank() == 0 {
		packed = encodeInt64s(reduced)
	}
	packed, err = Bcast(c, 0, packed)
	if err != nil {
		return nil, err
	}
	return decodeInt64s(packed)
}

func encodeFloat64s(xs []float64) []byte {
	buf := make([]byte, 8*len(xs))
	encodeFloat64sInto(buf, xs)
	return buf
}

// encodeFloat64sInto serialises xs into the caller-provided buffer
// (which must hold exactly 8*len(xs) bytes), letting multi-round
// algorithms reuse one scratch buffer instead of allocating per round.
func encodeFloat64sInto(buf []byte, xs []float64) {
	for i, x := range xs {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
	}
}

// combineFloat64s folds an encoded float64 vector into acc elementwise,
// reading straight from the wire buffer without an intermediate slice.
func combineFloat64s(acc []float64, buf []byte, op ReduceOp) error {
	if len(buf) != 8*len(acc) {
		return fmt.Errorf("reduce: payload of %d bytes for %d elements", len(buf), len(acc))
	}
	for i := range acc {
		acc[i] = op.applyFloat64(acc[i], math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:])))
	}
	return nil
}

// combineInt64s is combineFloat64s for int64 vectors.
func combineInt64s(acc []int64, buf []byte, op ReduceOp) error {
	if len(buf) != 8*len(acc) {
		return fmt.Errorf("reduce: payload of %d bytes for %d elements", len(buf), len(acc))
	}
	for i := range acc {
		acc[i] = op.applyInt64(acc[i], int64(binary.LittleEndian.Uint64(buf[8*i:])))
	}
	return nil
}

func decodeFloat64s(buf []byte) ([]float64, error) {
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("mpi: float64 payload of %d bytes", len(buf))
	}
	xs := make([]float64, len(buf)/8)
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return xs, nil
}

func encodeInt64s(xs []int64) []byte {
	buf := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(x))
	}
	return buf
}

func decodeInt64s(buf []byte) ([]int64, error) {
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("mpi: int64 payload of %d bytes", len(buf))
	}
	xs := make([]int64, len(buf)/8)
	for i := range xs {
		xs[i] = int64(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return xs, nil
}

// packParts length-prefixes a slice of byte slices into one payload.
func packParts(parts [][]byte) []byte {
	total := 4
	for _, p := range parts {
		total += 4 + len(p)
	}
	buf := make([]byte, 0, total)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(parts)))
	buf = append(buf, hdr[:]...)
	for _, p := range parts {
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
		buf = append(buf, hdr[:]...)
		buf = append(buf, p...)
	}
	return buf
}

// unpackParts reverses packParts, checking the count against want.
func unpackParts(buf []byte, want int) ([][]byte, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("mpi: truncated packed parts (%d bytes)", len(buf))
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if n != want {
		return nil, fmt.Errorf("mpi: packed %d parts, want %d", n, want)
	}
	buf = buf[4:]
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		if len(buf) < 4 {
			return nil, fmt.Errorf("mpi: truncated part header at %d", i)
		}
		ln := int(binary.LittleEndian.Uint32(buf))
		buf = buf[4:]
		if len(buf) < ln {
			return nil, fmt.Errorf("mpi: truncated part %d: have %d, want %d", i, len(buf), ln)
		}
		out = append(out, buf[:ln:ln])
		buf = buf[ln:]
	}
	if len(buf) != 0 {
		// Strict framing: every byte must be accounted for. Trailing
		// garbage means a corrupt or forged payload, and accepting it
		// would make the encoding ambiguous (two wire images, one part
		// list).
		return nil, fmt.Errorf("mpi: %d trailing bytes after %d packed parts", len(buf), n)
	}
	return out, nil
}
