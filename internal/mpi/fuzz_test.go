package mpi

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzUnpackParts drives the collective payload container (the
// length-prefixed part framing Allgather/Alltoall/Gather ride on) with
// arbitrary wire bytes. The decoder must never panic, never allocate
// proportionally to claimed-but-absent lengths, and on success must
// round-trip canonically: re-packing the unpacked parts reproduces the
// input bit-for-bit (the framing has exactly one encoding per part
// list), with every part aliasing the original buffer capacity-clipped
// so collective unpack can't silently append into a neighbor's bytes.
func FuzzUnpackParts(f *testing.F) {
	// Golden corpus: canonical packings of representative shapes.
	for _, parts := range [][][]byte{
		{},
		{nil},
		{{}, {}},
		{{1, 2, 3}},
		{{0xFF}, bytes.Repeat([]byte{7}, 300), {}},
		{make([]byte, 65), {1}, make([]byte, 2), {9, 9, 9}},
	} {
		f.Add(packParts(parts), len(parts))
	}
	// Adversarial seeds: truncated header, count/length mismatches,
	// length pointing past the buffer.
	f.Add([]byte{2, 0, 0}, 2)
	f.Add([]byte{1, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF}, 1)
	f.Add([]byte{3, 0, 0, 0, 2, 0, 0, 0, 'h', 'i'}, 3)
	f.Fuzz(func(t *testing.T, buf []byte, want int) {
		parts, err := unpackParts(buf, want)
		if err != nil {
			return // malformed input rejected: fine
		}
		if len(parts) != want {
			t.Fatalf("unpacked %d parts, want %d", len(parts), want)
		}
		repacked := packParts(parts)
		if !bytes.Equal(repacked, buf) {
			t.Fatalf("unpack/pack not canonical: %d bytes in, %d out", len(buf), len(repacked))
		}
		for i, p := range parts {
			if len(p) != cap(p) {
				t.Fatalf("part %d returned with %d spare capacity bytes of the shared buffer", i, cap(p)-len(p))
			}
		}
	})
}

// FuzzDecodeFloat64s drives the reduction-vector codec with arbitrary
// payloads: decode must reject exactly the non-multiple-of-8 lengths,
// and every accepted payload must survive decode→encode bit-exactly
// (float64 bit patterns — NaNs, negative zero, subnormals — must pass
// through reductions unmangled, not be normalized by a float round
// trip).
func FuzzDecodeFloat64s(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(encodeFloat64s([]float64{0, 1, -1, math.Pi}))
	f.Add(encodeFloat64s([]float64{math.Inf(1), math.Inf(-1), math.NaN(), math.Copysign(0, -1)}))
	f.Add(encodeFloat64s([]float64{math.SmallestNonzeroFloat64, math.MaxFloat64}))
	f.Add([]byte{1, 2, 3}) // ragged: must be rejected
	f.Fuzz(func(t *testing.T, buf []byte) {
		xs, err := decodeFloat64s(buf)
		if err != nil {
			if len(buf)%8 == 0 {
				t.Fatalf("aligned %d-byte payload rejected: %v", len(buf), err)
			}
			return
		}
		if len(buf)%8 != 0 {
			t.Fatalf("ragged %d-byte payload accepted", len(buf))
		}
		if !bytes.Equal(encodeFloat64s(xs), buf) {
			t.Fatal("decode→encode altered float64 bit patterns")
		}
	})
}

// FuzzDecodeInt64s is FuzzDecodeFloat64s for the int64 codec.
func FuzzDecodeInt64s(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(encodeInt64s([]int64{0, 1, -1, math.MaxInt64, math.MinInt64}))
	f.Add([]byte{9, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, buf []byte) {
		xs, err := decodeInt64s(buf)
		if err != nil {
			if len(buf)%8 == 0 {
				t.Fatalf("aligned %d-byte payload rejected: %v", len(buf), err)
			}
			return
		}
		if !bytes.Equal(encodeInt64s(xs), buf) {
			t.Fatal("decode→encode altered int64 values")
		}
	})
}

// FuzzCombineFloat64s checks the in-place wire-buffer fold used by the
// reduction trees: length mismatches must error before any element is
// touched, and a MAX fold of a vector with itself must be the identity
// (modulo NaN propagation, which applyFloat64 may resolve either way —
// those inputs are skipped).
func FuzzCombineFloat64s(f *testing.F) {
	f.Add(encodeFloat64s([]float64{1, 2, 3}), uint8(3))
	f.Add(encodeFloat64s([]float64{-0.5}), uint8(1))
	f.Add([]byte{1}, uint8(1))
	f.Fuzz(func(t *testing.T, buf []byte, n uint8) {
		acc := make([]float64, n)
		for i := range acc {
			if 8*(i+1) <= len(buf) {
				acc[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
			}
		}
		orig := append([]float64(nil), acc...)
		err := combineFloat64s(acc, buf, OpMax)
		if (err == nil) != (len(buf) == 8*len(acc)) {
			t.Fatalf("combine err=%v for %d bytes into %d elements", err, len(buf), len(acc))
		}
		if err != nil {
			return
		}
		for i := range acc {
			if math.IsNaN(orig[i]) {
				continue
			}
			if acc[i] != orig[i] {
				t.Fatalf("MAX(x, x) changed element %d: %v → %v", i, orig[i], acc[i])
			}
		}
	})
}
