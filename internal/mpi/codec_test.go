package mpi

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestFloat64sRoundTrip(t *testing.T) {
	f := func(xs []float64) bool {
		got, err := decodeFloat64s(encodeFloat64s(xs))
		if err != nil {
			return false
		}
		if len(got) != len(xs) {
			return false
		}
		for i := range xs {
			// NaNs round-trip bit-exactly via Float64bits.
			if got[i] != xs[i] && !(math.IsNaN(got[i]) && math.IsNaN(xs[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt64sRoundTrip(t *testing.T) {
	f := func(xs []int64) bool {
		got, err := decodeInt64s(encodeInt64s(xs))
		return err == nil && (len(xs) == 0 && len(got) == 0 || reflect.DeepEqual(got, xs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsRaggedPayload(t *testing.T) {
	if _, err := decodeFloat64s(make([]byte, 7)); err == nil {
		t.Error("decodeFloat64s accepted 7 bytes")
	}
	if _, err := decodeInt64s(make([]byte, 9)); err == nil {
		t.Error("decodeInt64s accepted 9 bytes")
	}
}

func TestPackPartsRoundTrip(t *testing.T) {
	f := func(parts [][]byte) bool {
		got, err := unpackParts(packParts(parts), len(parts))
		if err != nil {
			return false
		}
		if len(got) != len(parts) {
			return false
		}
		for i := range parts {
			if len(parts[i]) == 0 && len(got[i]) == 0 {
				continue
			}
			if !reflect.DeepEqual(got[i], parts[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnpackPartsValidation(t *testing.T) {
	packed := packParts([][]byte{{1}, {2, 3}})
	if _, err := unpackParts(packed, 3); err == nil {
		t.Error("wrong expected count accepted")
	}
	if _, err := unpackParts(packed[:5], 2); err == nil {
		t.Error("truncated payload accepted")
	}
	if _, err := unpackParts(nil, 0); err == nil {
		t.Error("empty payload accepted")
	}
}

func TestReduceOpTables(t *testing.T) {
	cases := []struct {
		op     ReduceOp
		a, b   float64
		ai, bi int64
		wantF  float64
		wantI  int64
	}{
		{OpSum, 2, 3, 2, 3, 5, 5},
		{OpMax, 2, 3, 2, 3, 3, 3},
		{OpMin, 2, 3, 2, 3, 2, 2},
		{OpProd, 2, 3, 2, 3, 6, 6},
	}
	for _, tc := range cases {
		if got := tc.op.applyFloat64(tc.a, tc.b); got != tc.wantF {
			t.Errorf("op %v float: got %v, want %v", tc.op, got, tc.wantF)
		}
		if got := tc.op.applyInt64(tc.ai, tc.bi); got != tc.wantI {
			t.Errorf("op %v int: got %v, want %v", tc.op, got, tc.wantI)
		}
	}
}

func TestTagRangesDisjoint(t *testing.T) {
	if TagUserMax >= TagCollectiveBase {
		t.Error("user tags overlap collective tags")
	}
	if TagCollectiveBase+7*64 >= TagControlBase {
		t.Error("collective tags overlap control tags")
	}
}

// The pack-codec fuzz targets live in fuzz_test.go
// (FuzzUnpackParts and friends), with a stronger canonical
// round-trip property than the original re-pack check.
