package mpi_test

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/mpi"
	"repro/internal/simmpi"
)

// tagRDExchange mirrors the recursive-doubling exchange tag inside
// AllreduceRDFloat64s (fold-in +0, exchange rounds +1, fold-out +2).
const tagRDExchange = mpi.TagCollectiveBase + 6*64 + 1

// TestAllreduceRDSteadyStateAllocs drives a two-rank recursive-doubling
// allreduce from a single goroutine: simmpi sends are eager, so rank 1's
// exchange message can be pre-deposited before rank 0 enters the
// collective, and rank 0's counterpart send is drained afterwards. With
// the pooled codec path warm, one call costs just the result vector and
// its encode scratch.
func TestAllreduceRDSteadyStateAllocs(t *testing.T) {
	w, err := simmpi.NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)
	in0 := []float64{1, 2, 3, 4}
	in1 := []float64{10, 20, 30, 40}
	payload1 := make([]byte, 8*len(in1))
	for i, x := range in1 {
		binary.LittleEndian.PutUint64(payload1[8*i:], math.Float64bits(x))
	}
	round := func() []float64 {
		// Pre-deposit rank 1's half of the single exchange round
		// (2 ranks: pow2 = 2, one round, partner = rank ^ 1).
		if err := c1.Send(0, tagRDExchange, payload1); err != nil {
			t.Fatal(err)
		}
		out, err := mpi.AllreduceRDFloat64s(c0, in0, mpi.OpSum)
		if err != nil {
			t.Fatal(err)
		}
		// Drain rank 0's exchange send so the next round starts clean.
		msg, err := c1.Recv(0, tagRDExchange)
		if err != nil {
			t.Fatal(err)
		}
		msg.Release()
		return out
	}

	out := round()
	want := []float64{11, 22, 33, 44}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("allreduce result = %v, want %v", out, want)
		}
	}

	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under the race detector")
	}
	for i := 0; i < 20; i++ {
		round() // warm the arena's size classes
	}
	// Budget: the returned accumulator and the encode scratch; the
	// message path itself must be allocation-free.
	if avg := testing.AllocsPerRun(50, func() { round() }); avg > 3 {
		t.Errorf("allreduce round allocates %.2f, want ≤3", avg)
	}
}
