package mpi

import "sync/atomic"

// Recycler receives a PooledBuf whose reference count dropped to zero.
// Transports implement it with their buffer arenas; the zero value of a
// message (no pooled backing) never reaches a Recycler.
type Recycler interface {
	Recycle(*PooledBuf)
}

// PooledBuf is the reference-counted handle of one pooled backing buffer.
// A transport hands the same handle to every message that aliases the
// buffer (copy-on-write fan-out: r physical sends share one encoded
// payload), and the buffer returns to its arena when the last reference
// is released. The handle travels with the buffer through the pool, so
// recycling costs no allocation.
//
// Reference protocol: the creator starts with one reference; every
// enqueued delivery takes one more (Retain before publication); every
// consumer that is done with its view calls Release. Dropping a handle
// without Release is safe — the buffer is garbage-collected instead of
// recycled — so legacy callers that retain Message.Data forever remain
// correct, they just opt out of reuse.
type PooledBuf struct {
	b    []byte
	refs atomic.Int32
	pool Recycler
}

// NewPooledBuf wraps a backing slice for the given arena. The returned
// handle carries one (creator) reference.
func NewPooledBuf(b []byte, pool Recycler) *PooledBuf {
	p := &PooledBuf{b: b, pool: pool}
	p.refs.Store(1)
	return p
}

// Reset rearms a recycled handle with one creator reference. Arenas call
// it when they hand the buffer out again.
func (p *PooledBuf) Reset() { p.refs.Store(1) }

// Bytes returns the full-capacity backing slice.
func (p *PooledBuf) Bytes() []byte { return p.b }

// Retain adds a reference. Call it before publishing another view of the
// buffer (e.g. before enqueueing the payload to one more destination).
func (p *PooledBuf) Retain() { p.refs.Add(1) }

// Release drops one reference; the last release returns the buffer to
// its arena. Using any slice view of the buffer after the final release
// is a use-after-free (the arena may poison or rewrite the bytes).
func (p *PooledBuf) Release() {
	if p.refs.Add(-1) == 0 && p.pool != nil {
		p.pool.Recycle(p)
	}
}

// SharedSender is the optional capability a transport exposes when it
// can fan one pooled payload out to several destinations without copying
// (the redundancy layer's copy-on-write replica sends). Acquire a buffer,
// encode into it once, send it to each replica, then drop the creator
// reference:
//
//	buf, pb := ss.AcquireBuffer(n)
//	... fill buf ...
//	for _, dst := range replicas {
//		ss.SendPooled(dst, tag, buf, pb)
//	}
//	pb.Release()
type SharedSender interface {
	// AcquireBuffer returns a pooled buffer of length n and its handle,
	// holding one creator reference.
	AcquireBuffer(n int) ([]byte, *PooledBuf)
	// SendPooled behaves like Comm.Send for data (which must alias pb's
	// buffer) but shares the buffer with the destination instead of
	// copying it. The implementation manages the delivery references;
	// the caller keeps its own reference across the call.
	SendPooled(dst, tag int, data []byte, pb *PooledBuf) error
}
