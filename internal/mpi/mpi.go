// Package mpi defines the transport-independent message-passing API the
// rest of the repository programs against: the Comm interface with
// MPI-style matched point-to-point semantics, wildcard receives,
// non-blocking requests, and the error taxonomy for failed/killed peers.
//
// Two implementations exist: simmpi.Comm, the base runtime (goroutine
// ranks, mailbox matching), and redundancy.Comm, the RedMPI-style
// interposition layer that transparently replicates ranks. Applications
// written against this interface run unmodified at any redundancy degree,
// exactly as the paper's §3 design requires ("No change is needed in the
// application source code").
package mpi

import "errors"

// Wildcard selectors for Recv/Irecv/Probe, mirroring MPI_ANY_SOURCE and
// MPI_ANY_TAG.
const (
	AnySource = -1
	AnyTag    = -1
)

// Tag ranges. User code must keep tags in [0, TagUserMax); the library
// reserves higher tags for collectives and the redundancy layer's control
// protocol (envelope forwarding for wildcard receives).
const (
	// TagUserMax is the exclusive upper bound for application tags.
	TagUserMax = 1 << 20
	// TagCollectiveBase is the base tag for collective operations.
	TagCollectiveBase = 1 << 21
	// TagControlBase is the base tag for redundancy-layer control
	// messages.
	TagControlBase = 1 << 22
	// TagPeerBase is the base tag for the peer-replicated checkpoint
	// store's replication/fetch protocol (checkpoint.PeerStore).
	TagPeerBase = 1 << 23
)

// Message is a received message with its envelope.
type Message struct {
	// Source is the rank that sent the message (the virtual rank when
	// received through the redundancy layer).
	Source int
	// Tag is the message tag.
	Tag int
	// Data is the payload. Ownership transfers to the receiver: it may
	// read and mutate Data freely until it calls Release. After Release
	// the slice must not be touched — the backing buffer returns to the
	// transport's arena and will be reused (and is poisoned under the
	// race detector to make violations loud). A receiver that never
	// calls Release keeps Data valid forever; the buffer is then
	// garbage-collected instead of recycled, so pre-existing callers
	// that retain payloads indefinitely remain correct.
	Data []byte

	// buf is the pooled backing buffer Data aliases, nil for unpooled
	// payloads (plain allocations, replay logs, zero-length sends).
	buf *PooledBuf
}

// NewMessage builds a message whose payload is backed by the given
// pooled buffer (nil for unpooled payloads). Transports use it to hand
// ownership of arena buffers to receivers.
func NewMessage(source, tag int, data []byte, buf *PooledBuf) Message {
	return Message{Source: source, Tag: tag, Data: data, buf: buf}
}

// Release returns the payload's backing buffer to the transport arena it
// came from. It is a no-op for unpooled payloads and for messages
// already released; releasing the zero Message is safe.
func (m *Message) Release() {
	if m.buf != nil {
		m.buf.Release()
		m.buf = nil
	}
	m.Data = nil
}

// Reframe transfers m's buffer ownership to a new message delivering
// data (which must alias m's payload buffer) under a new envelope.
// Interposition layers use it to strip their framing without copying:
// the returned message releases the underlying physical buffer. m must
// not be released afterwards.
func (m *Message) Reframe(source, tag int, data []byte) Message {
	out := Message{Source: source, Tag: tag, Data: data, buf: m.buf}
	m.buf = nil
	return out
}

// Status describes a completed or probed communication.
type Status struct {
	Source int
	Tag    int
	// Len is the payload length in bytes.
	Len int
}

// Request tracks a non-blocking operation, like an MPI_Request handle.
type Request interface {
	// Wait blocks until the operation completes and returns the
	// delivered message (zero for sends) along with its status. The
	// message's payload follows the ownership rules documented on
	// Message.Data. Wait after completion returns the same results.
	Wait() (Message, Status, error)
	// Test polls for completion without blocking. done reports whether
	// the operation finished; the message, status, and error are
	// meaningful only when done is true.
	Test() (done bool, msg Message, st Status, err error)
}

// Comm is a communicator endpoint bound to one rank, supporting matched
// point-to-point communication. Collective operations are built on top of
// this interface (see collectives.go), reflecting the paper's observation
// that "all collective communication in MPI is based on point-to-point
// MPI messages"; the redundancy layer therefore only needs to interpose
// point-to-point calls.
type Comm interface {
	// Rank returns this process's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks in the communicator.
	Size() int
	// Send delivers data to rank dst with the given tag. Sends are
	// buffered (eager): they complete without waiting for a matching
	// receive. Sending to a failed rank silently drops the message, as a
	// lost packet would.
	Send(dst, tag int, data []byte) error
	// Recv blocks until a message matching (src, tag) arrives, where
	// either selector may be a wildcard. Matching is FIFO per
	// (source, tag) pair.
	Recv(src, tag int) (Message, error)
	// Isend starts a non-blocking send.
	Isend(dst, tag int, data []byte) (Request, error)
	// Irecv starts a non-blocking receive.
	Irecv(src, tag int) (Request, error)
	// Probe blocks until a matching message is available and returns its
	// envelope without consuming it.
	Probe(src, tag int) (Status, error)

	// SetErrhandler installs fn as this communicator's fault-notification
	// handler, replacing any previous one (nil uninstalls). Once a
	// handler is installed the communicator switches from the legacy
	// sniff-the-error model to ULFM-style notification: fn is invoked at
	// most once per failed rank per communicator, from inside the
	// communication call that first observes the failure (never
	// concurrently with itself), and wildcard receives/probes refuse to
	// block past an unacknowledged failure — they fail fast with
	// ErrFailurePending until FailureAck is called. Communicators with no
	// handler keep the pre-existing behavior exactly.
	SetErrhandler(fn func(FailureInfo))
	// FailureAck acknowledges every failure observed so far (the
	// MPI_Comm_failure_ack analogue) and returns the acknowledged ranks
	// in ascending order. After the ack, wildcard operations proceed
	// past those failures; newly failed ranks re-arm ErrFailurePending.
	FailureAck() []int
	// Shrink builds a new communicator containing the surviving ranks,
	// densely renumbered in base-rank order (the MPI_Comm_shrink
	// analogue). It is a fault-tolerant collective: every surviving rank
	// must call it, and all survivors observe the identical membership.
	// A caller that is itself dead gets ErrKilled.
	Shrink() (Comm, error)
	// Agree runs a fault-tolerant agreement on a boolean flag (the
	// MPI_Comm_agree analogue): the result is the logical AND of the
	// flags contributed by participating survivors, identical on every
	// survivor, even when ranks fail during the call.
	Agree(flag bool) (bool, error)
}

// CountTracker is implemented by communicators that track per-peer
// message totals, which the checkpoint coordinator's bookmark-exchange
// protocol (modeled on Open MPI's PML bookmark protocol) uses to verify
// channel quiescence before a snapshot.
type CountTracker interface {
	// SentCounts returns the number of messages sent to each rank.
	SentCounts() []uint64
	// RecvCounts returns the number of messages received from each rank.
	RecvCounts() []uint64
}

// Errors returned by communicator operations.
var (
	// ErrKilled reports that the calling rank itself has been killed by
	// failure injection; the rank's goroutine should unwind.
	ErrKilled = errors.New("mpi: rank killed")
	// ErrPeerDead reports that the specific peer a receive was posted
	// against died before a matching message arrived.
	ErrPeerDead = errors.New("mpi: peer rank dead")
	// ErrAborted reports that the world was torn down (job failure or
	// shutdown) while the operation was in flight.
	ErrAborted = errors.New("mpi: world aborted")
	// ErrInterrupted reports that the world paused the current epoch for
	// an in-place recovery (sphere-local partial restart). Unlike
	// ErrAborted the world survives: after the orchestrator revives dead
	// ranks and resumes, ranks re-enter from the last checkpoint.
	ErrInterrupted = errors.New("mpi: epoch interrupted")
	// ErrFailurePending reports that a wildcard receive or probe cannot
	// proceed because a process failure has been observed but not yet
	// acknowledged (the MPI_ERR_PROC_FAILED_PENDING analogue): the dead
	// rank might have been the sender the wildcard was waiting for. Only
	// communicators with an errhandler installed raise it; calling
	// FailureAck clears the condition for the failures observed so far.
	ErrFailurePending = errors.New("mpi: unacknowledged process failure pending")
	// ErrInvalidRank reports a rank outside [0, Size).
	ErrInvalidRank = errors.New("mpi: invalid rank")
	// ErrInvalidTag reports a tag outside the permitted range.
	ErrInvalidTag = errors.New("mpi: invalid tag")
)

// WaitAll waits for every request and returns all errors encountered,
// aggregated with errors.Join, after waiting for all of them. Joining —
// rather than keeping only the first error — matters to the
// partial-restart orchestrator: a killed peer and an interrupted epoch
// can surface from the same request set, and errors.Is finds each
// through the joined error, so failure classification never depends on
// completion order. Delivered messages remain retrievable from the
// individual requests.
func WaitAll(reqs ...Request) error {
	var errs []error
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if _, _, err := r.Wait(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
