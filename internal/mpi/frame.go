package mpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Wire frame codec shared by socket transports (procmpi) and their
// tests/fuzzers. A frame is one length-prefixed message:
//
//	u32  body length (big endian) — header + payload, bounded
//	u8   type       (transport-defined, nonzero)
//	i32  src        (big endian; -1 means none/any)
//	i32  dst
//	i32  tag
//	...  payload    (body length - FrameHeaderLen bytes)
//
// The length prefix is validated before any allocation, so a hostile or
// corrupt peer cannot make the reader reserve unbounded memory, and
// decoding is strict: truncated bodies, oversized length prefixes, and
// trailing bytes are all rejected.

// Frame is one decoded wire frame. Payload aliases the decode buffer.
type Frame struct {
	Type byte
	Src  int32
	Dst  int32
	Tag  int32
	// Payload is the frame body after the fixed header. It aliases the
	// buffer it was decoded from; ownership follows that buffer.
	Payload []byte
}

const (
	// FrameHeaderLen is the fixed body header: type + src + dst + tag.
	FrameHeaderLen = 1 + 4 + 4 + 4
	// MaxFramePayload bounds one frame's payload (16 MiB): far above any
	// message the runtime sends, far below what a corrupt length prefix
	// could otherwise demand.
	MaxFramePayload = 1 << 24
)

// Frame decoding errors.
var (
	// ErrFrameTruncated reports a frame shorter than its declared length.
	ErrFrameTruncated = errors.New("mpi: truncated frame")
	// ErrFrameOversized reports a length prefix beyond MaxFramePayload.
	ErrFrameOversized = errors.New("mpi: oversized frame length prefix")
	// ErrFrameTrailing reports bytes after the declared frame end.
	ErrFrameTrailing = errors.New("mpi: trailing bytes after frame")
	// ErrFrameHeader reports an invalid header field (zero type, or a
	// rank/tag below the wildcard floor).
	ErrFrameHeader = errors.New("mpi: invalid frame header")
)

// EncodedFrameLen returns the on-wire size of a frame carrying a payload
// of n bytes.
func EncodedFrameLen(n int) int { return 4 + FrameHeaderLen + n }

// validFrameFields checks the header invariants shared by encode and
// decode: a nonzero type and coordinates no lower than the wildcard -1.
func validFrameFields(typ byte, src, dst, tag int32) error {
	if typ == 0 {
		return fmt.Errorf("%w: zero type", ErrFrameHeader)
	}
	if src < -1 || dst < -1 || tag < -1 {
		return fmt.Errorf("%w: src=%d dst=%d tag=%d", ErrFrameHeader, src, dst, tag)
	}
	return nil
}

// AppendFrame appends f's wire encoding to dst and returns the extended
// slice.
func AppendFrame(dst []byte, f Frame) ([]byte, error) {
	if len(f.Payload) > MaxFramePayload {
		return dst, fmt.Errorf("%w: payload %d", ErrFrameOversized, len(f.Payload))
	}
	if err := validFrameFields(f.Type, f.Src, f.Dst, f.Tag); err != nil {
		return dst, err
	}
	var hdr [4 + FrameHeaderLen]byte
	putFrameHeader(hdr[:], f, len(f.Payload))
	dst = append(dst, hdr[:]...)
	return append(dst, f.Payload...), nil
}

// putFrameHeader writes the length prefix and fixed header into
// b[:4+FrameHeaderLen].
func putFrameHeader(b []byte, f Frame, payloadLen int) {
	binary.BigEndian.PutUint32(b[0:], uint32(FrameHeaderLen+payloadLen))
	b[4] = f.Type
	binary.BigEndian.PutUint32(b[5:], uint32(f.Src))
	binary.BigEndian.PutUint32(b[9:], uint32(f.Dst))
	binary.BigEndian.PutUint32(b[13:], uint32(f.Tag))
}

// decodeFrameBody parses a frame body (everything after the length
// prefix). The returned payload aliases body.
func decodeFrameBody(body []byte) (Frame, error) {
	if len(body) < FrameHeaderLen {
		return Frame{}, fmt.Errorf("%w: body %d bytes", ErrFrameTruncated, len(body))
	}
	f := Frame{
		Type: body[0],
		Src:  int32(binary.BigEndian.Uint32(body[1:])),
		Dst:  int32(binary.BigEndian.Uint32(body[5:])),
		Tag:  int32(binary.BigEndian.Uint32(body[9:])),
	}
	if err := validFrameFields(f.Type, f.Src, f.Dst, f.Tag); err != nil {
		return Frame{}, err
	}
	if len(body) > FrameHeaderLen {
		f.Payload = body[FrameHeaderLen:]
	}
	return f, nil
}

// DecodeFrame strictly decodes one whole frame from buf: the buffer must
// contain exactly one frame — truncated bodies, length prefixes beyond
// MaxFramePayload, and trailing bytes are rejected. The returned payload
// aliases buf.
func DecodeFrame(buf []byte) (Frame, error) {
	if len(buf) < 4 {
		return Frame{}, fmt.Errorf("%w: %d bytes, no length prefix", ErrFrameTruncated, len(buf))
	}
	n := binary.BigEndian.Uint32(buf)
	if n > FrameHeaderLen+MaxFramePayload {
		return Frame{}, fmt.Errorf("%w: declared body %d", ErrFrameOversized, n)
	}
	if uint32(len(buf)-4) < n {
		return Frame{}, fmt.Errorf("%w: declared body %d, have %d", ErrFrameTruncated, n, len(buf)-4)
	}
	if uint32(len(buf)-4) > n {
		return Frame{}, fmt.Errorf("%w: declared body %d, have %d", ErrFrameTrailing, n, len(buf)-4)
	}
	return decodeFrameBody(buf[4:])
}

// ReadFrame reads one frame from r. The body lands in a buffer borrowed
// from arena (plain allocation when arena is nil or the frame is
// oversized for its classes), and the returned PooledBuf — nil for
// unpooled bodies — owns it: Release recycles the buffer, so a receiver
// that consumes the payload and releases runs allocation-free in steady
// state. The length prefix is validated before the body buffer is
// sized. io.EOF is returned unwrapped when the stream ends cleanly
// between frames.
func ReadFrame(r io.Reader, arena *Arena) (Frame, *PooledBuf, error) {
	// The prefix buffer is borrowed from the arena too: a stack array
	// would escape through the io.ReadFull interface call and cost an
	// allocation per frame.
	var prefix []byte
	var ppb *PooledBuf
	if arena != nil {
		prefix, ppb = arena.Acquire(4)
	} else {
		prefix = make([]byte, 4)
	}
	n, err := readFramePrefix(r, prefix)
	if ppb != nil {
		ppb.Release()
	}
	if err != nil {
		return Frame{}, nil, err
	}
	var body []byte
	var pb *PooledBuf
	if arena != nil {
		body, pb = arena.Acquire(int(n))
	} else {
		body = make([]byte, n)
	}
	if _, err := io.ReadFull(r, body); err != nil {
		if pb != nil {
			pb.Release()
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return Frame{}, nil, fmt.Errorf("%w: body short of %d bytes", ErrFrameTruncated, n)
		}
		return Frame{}, nil, err
	}
	f, err := decodeFrameBody(body)
	if err != nil {
		if pb != nil {
			pb.Release()
		}
		return Frame{}, nil, err
	}
	return f, pb, nil
}

// readFramePrefix fills prefix (4 bytes) from r and validates the
// declared body length before any body buffer is sized.
func readFramePrefix(r io.Reader, prefix []byte) (uint32, error) {
	if _, err := io.ReadFull(r, prefix); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, fmt.Errorf("%w: partial length prefix", ErrFrameTruncated)
		}
		return 0, err
	}
	n := binary.BigEndian.Uint32(prefix)
	if n > FrameHeaderLen+MaxFramePayload {
		return 0, fmt.Errorf("%w: declared body %d", ErrFrameOversized, n)
	}
	if n < FrameHeaderLen {
		return 0, fmt.Errorf("%w: declared body %d", ErrFrameTruncated, n)
	}
	return n, nil
}

// frameInlineMax is the payload size up to which WriteFrame copies the
// payload into the scratch buffer and issues one Write; larger payloads
// go out as header+payload writes to avoid the copy. Callers must hold
// their connection's write lock across the call either way.
const frameInlineMax = 4096

// WriteFrame writes f to w using scratch for the prefix and header
// (grown as needed) and returns the possibly-grown scratch for reuse.
func WriteFrame(w io.Writer, f Frame, scratch []byte) ([]byte, error) {
	if len(f.Payload) > MaxFramePayload {
		return scratch, fmt.Errorf("%w: payload %d", ErrFrameOversized, len(f.Payload))
	}
	if err := validFrameFields(f.Type, f.Src, f.Dst, f.Tag); err != nil {
		return scratch, err
	}
	need := 4 + FrameHeaderLen
	if len(f.Payload) <= frameInlineMax {
		need += len(f.Payload)
	}
	if cap(scratch) < need {
		scratch = make([]byte, need)
	}
	buf := scratch[:need]
	putFrameHeader(buf, f, len(f.Payload))
	if len(f.Payload) <= frameInlineMax {
		copy(buf[4+FrameHeaderLen:], f.Payload)
		_, err := w.Write(buf)
		return scratch[:0], err
	}
	if _, err := w.Write(buf[:4+FrameHeaderLen]); err != nil {
		return scratch[:0], err
	}
	_, err := w.Write(f.Payload)
	return scratch[:0], err
}
