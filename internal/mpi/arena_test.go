package mpi

import "testing"

func TestArenaClassFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0},
		{1, 0},
		{arenaMinClass, 0},
		{arenaMinClass + 1, 1},
		{4096, 6},
		{arenaMaxClass, arenaClasses - 1},
		{arenaMaxClass + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.want {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestArenaOversizedFallback(t *testing.T) {
	a := NewArena()
	b, pb := a.Acquire(arenaMaxClass + 1)
	if len(b) != arenaMaxClass+1 {
		t.Fatalf("oversized Acquire len = %d", len(b))
	}
	if pb != nil {
		t.Fatal("oversized Acquire must have no pooled handle")
	}
}

func TestArenaRecycleRejectsForeignBuffer(t *testing.T) {
	a := NewArena()
	// cap 100 matches no power-of-two class; Recycle must drop it
	// rather than poison a pool class with a short buffer.
	pb := NewPooledBuf(make([]byte, 100), a)
	a.Recycle(pb) // must not panic or Put
	b, got := a.Acquire(100)
	if got == pb {
		t.Fatal("foreign buffer re-issued from the pool")
	}
	if len(b) != 100 || cap(b) != 128 {
		t.Fatalf("Acquire(100) len/cap = %d/%d, want 100/128", len(b), cap(b))
	}
}

func TestArenaAcquireReleaseSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under the race detector")
	}
	a := NewArena()
	// Warm the size class.
	_, pb := a.Acquire(512)
	pb.Release()
	if avg := testing.AllocsPerRun(200, func() {
		_, pb := a.Acquire(512)
		pb.Release()
	}); avg > 0 {
		t.Errorf("warm Acquire/Release allocates %.2f per round, want 0", avg)
	}
}
