package transporttest

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/mpi"
)

// This file holds the survivor-recovery half of the conformance suite:
// the ULFM-style fault-notification contract (SetErrhandler /
// FailureAck / ErrFailurePending), fault-tolerant agreement, and
// shrink-and-continue. Both backends must present the identical
// contract — it is what the core shrink runner and the ported apps are
// written against.

// testErrhandler pins the notification contract: the handler fires at
// most once per failed rank from inside the observing call, wildcards
// fail fast with ErrFailurePending until FailureAck, queued messages
// still match first, and named receives keep their legacy ErrPeerDead
// semantics on handler-free endpoints.
func testErrhandler(t *testing.T, factory Factory) {
	tr := factory(t, 3)
	c0, c1 := endpoint(t, tr, 0), endpoint(t, tr, 1)

	var mu sync.Mutex
	var notified []int
	c0.SetErrhandler(func(fi mpi.FailureInfo) {
		mu.Lock()
		notified = append(notified, fi.Rank)
		mu.Unlock()
	})

	// A message queued before the death must still be deliverable.
	if err := c1.Send(0, 5, []byte("queued")); err != nil {
		t.Fatal(err)
	}
	if _, err := c0.Probe(1, 5); err != nil {
		t.Fatalf("probe: %v", err)
	}
	tr.Kill(1)

	// A wildcard that cannot match queued traffic must fail fast with
	// ErrFailurePending instead of blocking on a potentially-dead sender
	// (the death broadcast may still be in flight on a socket transport,
	// so the parked receive is woken when it lands).
	if _, err := c0.Recv(mpi.AnySource, 9); !errors.Is(err, mpi.ErrFailurePending) {
		t.Fatalf("wildcard with pending failure: err = %v, want ErrFailurePending", err)
	}
	mu.Lock()
	got := append([]int(nil), notified...)
	mu.Unlock()
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("handler notified %v, want [1]", got)
	}

	acked := c0.FailureAck()
	if len(acked) != 1 || acked[0] != 1 {
		t.Fatalf("FailureAck = %v, want [1]", acked)
	}

	// Match-first still holds: the queued message is delivered through a
	// wildcard after acknowledgment.
	msg, err := c0.Recv(mpi.AnySource, 5)
	if err != nil {
		t.Fatalf("queued message after ack: %v", err)
	}
	if msg.Source != 1 || string(msg.Data) != "queued" {
		t.Fatalf("queued message = %+v", msg)
	}
	msg.Release()

	// A named receive from the dead rank fails as before, and the
	// handler does not re-fire for an already-notified rank.
	if _, err := c0.Recv(1, 5); !errors.Is(err, mpi.ErrPeerDead) {
		t.Fatalf("named recv from dead: err = %v, want ErrPeerDead", err)
	}
	mu.Lock()
	n := len(notified)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("handler fired %d times, want once per failed rank", n)
	}

	// Handler-free endpoints keep the legacy contract: named receives
	// fail with ErrPeerDead and no pending gate engages.
	c2 := endpoint(t, tr, 2)
	if _, err := c2.Recv(1, 5); !errors.Is(err, mpi.ErrPeerDead) {
		t.Fatalf("handler-free recv from dead: err = %v, want ErrPeerDead", err)
	}
}

// testAgree pins fault-tolerant agreement: the flag is AND-reduced
// across live ranks, every live rank gets the same result, and dead
// ranks are excused.
func testAgree(t *testing.T, factory Factory) {
	const n = 3
	tr := factory(t, n)

	// Full world, mixed flags: AND is false everywhere.
	flags := []bool{true, false, true}
	results := make(chan error, n)
	for r := 0; r < n; r++ {
		go func(rank int) {
			c, err := tr.Endpoint(rank)
			if err != nil {
				results <- err
				return
			}
			out, err := c.Agree(flags[rank])
			if err != nil {
				results <- fmt.Errorf("rank %d agree: %w", rank, err)
				return
			}
			if out {
				results <- fmt.Errorf("rank %d agreed true, want false", rank)
				return
			}
			results <- nil
		}(r)
	}
	for r := 0; r < n; r++ {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}

	// With a rank dead, the survivors' round completes without it.
	tr.Kill(2)
	for _, r := range []int{0, 1} {
		go func(rank int) {
			c, err := tr.Endpoint(rank)
			if err != nil {
				results <- err
				return
			}
			out, err := c.Agree(true)
			if err != nil {
				results <- fmt.Errorf("rank %d agree after death: %w", rank, err)
				return
			}
			if !out {
				results <- fmt.Errorf("rank %d agreed false, want true", rank)
				return
			}
			results <- nil
		}(r)
	}
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}
}

// testShrink pins shrink-and-continue: the survivors agree on a
// communicator excluding the dead rank, with dense ascending
// renumbering, and traffic flows over it.
func testShrink(t *testing.T, factory Factory) {
	const n = 4
	tr := factory(t, n)
	tr.Kill(2)

	survivors := []int{0, 1, 3}
	results := make(chan error, len(survivors))
	for i, r := range survivors {
		go func(newRank, oldRank int) {
			c, err := tr.Endpoint(oldRank)
			if err != nil {
				results <- err
				return
			}
			sc, err := c.Shrink()
			if err != nil {
				results <- fmt.Errorf("rank %d shrink: %w", oldRank, err)
				return
			}
			if sc.Size() != len(survivors) {
				results <- fmt.Errorf("rank %d shrunk size = %d, want %d", oldRank, sc.Size(), len(survivors))
				return
			}
			if sc.Rank() != newRank {
				results <- fmt.Errorf("rank %d shrunk rank = %d, want %d", oldRank, sc.Rank(), newRank)
				return
			}
			// Ring over the shrunk communicator: rank translation and
			// matching must hold in the new numbering.
			m := sc.Size()
			if err := sc.Send((newRank+1)%m, 21, []byte{byte(newRank)}); err != nil {
				results <- fmt.Errorf("shrunk rank %d ring send: %w", newRank, err)
				return
			}
			msg, err := sc.Recv((newRank+m-1)%m, 21)
			if err != nil {
				results <- fmt.Errorf("shrunk rank %d ring recv: %w", newRank, err)
				return
			}
			if len(msg.Data) != 1 || msg.Data[0] != byte((newRank+m-1)%m) {
				results <- fmt.Errorf("shrunk rank %d ring payload %v", newRank, msg.Data)
				return
			}
			msg.Release()
			results <- nil
		}(i, r)
	}
	for range survivors {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}
}

// testShrinkRacesCollective drives the pattern the ported apps use —
// rounds of eager neighbor exchange closed by an Agree collective —
// with a kill landing at an arbitrary point: mid-exchange, mid-Agree,
// or mid-Shrink. Sends are eager and precede the receives, so every
// survivor reaches the round's agreement point even when its receive
// from the victim fails; the AND then routes all survivors into the
// same Shrink, and traffic must flow over the shrunk communicator.
func testShrinkRacesCollective(t *testing.T, factory Factory) {
	const n = 4
	const maxRounds = 200
	tr := factory(t, n)

	go func() {
		time.Sleep(5 * time.Millisecond)
		tr.Kill(3)
	}()

	results := make(chan error, n)
	for r := 0; r < n; r++ {
		go func(rank int) {
			results <- func() error {
				c, err := tr.Endpoint(rank)
				if err != nil {
					return err
				}
				for round := 0; round < maxRounds; round++ {
					size := c.Size()
					up, down := (c.Rank()+1)%size, (c.Rank()+size-1)%size
					tag := 50 + round // per-round tags keep pre-shrink stragglers out
					ok := true
					// Eager sends first: a failed receive below must not
					// starve a neighbor of this rank's contribution.
					if err := c.Send(up, tag, []byte{byte(c.Rank())}); err != nil {
						if errors.Is(err, mpi.ErrKilled) {
							return nil // this is the victim
						}
						return fmt.Errorf("rank %d round %d send: %w", rank, round, err)
					}
					if err := c.Send(down, tag, []byte{byte(c.Rank())}); err != nil {
						if errors.Is(err, mpi.ErrKilled) {
							return nil
						}
						return fmt.Errorf("rank %d round %d send: %w", rank, round, err)
					}
					for _, src := range []int{up, down} {
						msg, err := c.Recv(src, tag)
						switch {
						case err == nil:
							msg.Release()
						case errors.Is(err, mpi.ErrKilled):
							return nil
						case errors.Is(err, mpi.ErrPeerDead):
							ok = false
						default:
							return fmt.Errorf("rank %d round %d recv: %w", rank, round, err)
						}
					}
					agreed, err := c.Agree(ok)
					if errors.Is(err, mpi.ErrKilled) {
						return nil
					}
					if err != nil {
						return fmt.Errorf("rank %d round %d agree: %w", rank, round, err)
					}
					if agreed {
						// Healthy round: pace the loop so the kill timer
						// lands within the round budget.
						time.Sleep(500 * time.Microsecond)
						continue
					}
					sc, err := c.Shrink()
					if errors.Is(err, mpi.ErrKilled) {
						return nil
					}
					if err != nil {
						return fmt.Errorf("rank %d round %d shrink: %w", rank, round, err)
					}
					if sc.Size() != n-1 {
						return fmt.Errorf("rank %d shrunk size = %d, want %d", rank, sc.Size(), n-1)
					}
					// One verified ring over the survivors proves the
					// shrunk communicator carries traffic.
					m, nr := sc.Size(), sc.Rank()
					if err := sc.Send((nr+1)%m, 31, []byte{byte(nr)}); err != nil {
						return fmt.Errorf("shrunk rank %d send: %w", nr, err)
					}
					msg, err := sc.Recv((nr+m-1)%m, 31)
					if err != nil {
						return fmt.Errorf("shrunk rank %d recv: %w", nr, err)
					}
					if len(msg.Data) != 1 || msg.Data[0] != byte((nr+m-1)%m) {
						return fmt.Errorf("shrunk rank %d payload %v", nr, msg.Data)
					}
					msg.Release()
					return nil
				}
				return fmt.Errorf("rank %d: kill never observed in %d rounds", rank, maxRounds)
			}()
		}(r)
	}
	for r := 0; r < n; r++ {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}
}
