package transporttest

import (
	"testing"

	"repro/internal/mpi"
	"repro/internal/procmpi"
	"repro/internal/simmpi"
)

func TestSimTransportConformance(t *testing.T) {
	RunSuite(t, func(t *testing.T, n int) mpi.Transport {
		w, err := simmpi.NewWorld(n)
		if err != nil {
			t.Fatalf("simmpi.NewWorld(%d): %v", n, err)
		}
		return w
	})
}

func TestProcTransportConformance(t *testing.T) {
	RunSuite(t, func(t *testing.T, n int) mpi.Transport {
		l, err := procmpi.NewLocal(n, procmpi.LocalConfig{})
		if err != nil {
			t.Fatalf("procmpi.NewLocal(%d): %v", n, err)
		}
		t.Cleanup(l.Close)
		return l
	})
}

func TestProcTransportConformanceTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	RunSuite(t, func(t *testing.T, n int) mpi.Transport {
		l, err := procmpi.NewLocal(n, procmpi.LocalConfig{Network: "tcp"})
		if err != nil {
			t.Fatalf("procmpi.NewLocal(%d, tcp): %v", n, err)
		}
		t.Cleanup(l.Close)
		return l
	})
}
