// Package transporttest is the conformance suite every mpi.Transport
// backend must pass: the send/recv ordering law, wildcard receives,
// collective round trips, fail-stop kill semantics (including the
// match-first rule — a message queued before its sender died is still
// delivered), and the Interrupt → Revive → Resume epoch protocol. The
// simulated backend (simmpi) and the socket backend (procmpi) run the
// same suite, which is what makes "transport-agnostic recovery" a tested
// property instead of a design intention.
package transporttest

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/mpi"
)

// Factory builds a transport of n physical ranks for one test; register
// cleanup with t.Cleanup.
type Factory func(t *testing.T, n int) mpi.Transport

// RunSuite runs every conformance test against the factory's backend.
func RunSuite(t *testing.T, factory Factory) {
	t.Run("Ordering", func(t *testing.T) { testOrdering(t, factory) })
	t.Run("Wildcard", func(t *testing.T) { testWildcard(t, factory) })
	t.Run("Collective", func(t *testing.T) { testCollective(t, factory) })
	t.Run("RequestSet", func(t *testing.T) { testRequestSet(t, factory) })
	t.Run("QueuedBeforeDeath", func(t *testing.T) { testQueuedBeforeDeath(t, factory) })
	t.Run("KillSemantics", func(t *testing.T) { testKillSemantics(t, factory) })
	t.Run("AbortSemantics", func(t *testing.T) { testAbortSemantics(t, factory) })
	t.Run("EpochRevive", func(t *testing.T) { testEpochRevive(t, factory) })
	t.Run("Errhandler", func(t *testing.T) { testErrhandler(t, factory) })
	t.Run("Agree", func(t *testing.T) { testAgree(t, factory) })
	t.Run("Shrink", func(t *testing.T) { testShrink(t, factory) })
	t.Run("ShrinkRacesCollective", func(t *testing.T) { testShrinkRacesCollective(t, factory) })
}

func endpoint(t *testing.T, tr mpi.Transport, rank int) mpi.Comm {
	t.Helper()
	c, err := tr.Endpoint(rank)
	if err != nil {
		t.Fatalf("Endpoint(%d): %v", rank, err)
	}
	return c
}

// testOrdering pins the ordering law: matching is FIFO per (src, tag)
// pair, including under interleaved tags on the same pair of ranks.
func testOrdering(t *testing.T, factory Factory) {
	tr := factory(t, 2)
	c0, c1 := endpoint(t, tr, 0), endpoint(t, tr, 1)
	const n = 50
	errc := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := c0.Send(1, 7, []byte{byte(i)}); err != nil {
				errc <- err
				return
			}
			if err := c0.Send(1, 8, []byte{byte(n + i)}); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	// Drain tag 8 first: its FIFO must hold independently of tag 7's
	// undrained backlog.
	for i := 0; i < n; i++ {
		msg, err := c1.Recv(0, 8)
		if err != nil {
			t.Fatalf("recv tag 8 #%d: %v", i, err)
		}
		if len(msg.Data) != 1 || msg.Data[0] != byte(n+i) {
			t.Fatalf("tag 8 #%d out of order: got %v", i, msg.Data)
		}
		msg.Release()
	}
	for i := 0; i < n; i++ {
		msg, err := c1.Recv(0, 7)
		if err != nil {
			t.Fatalf("recv tag 7 #%d: %v", i, err)
		}
		if len(msg.Data) != 1 || msg.Data[0] != byte(i) {
			t.Fatalf("tag 7 #%d out of order: got %v", i, msg.Data)
		}
		msg.Release()
	}
	if err := <-errc; err != nil {
		t.Fatalf("sender: %v", err)
	}
}

// testWildcard covers AnySource and AnyTag receives.
func testWildcard(t *testing.T, factory Factory) {
	tr := factory(t, 3)
	c0 := endpoint(t, tr, 0)
	for r := 1; r <= 2; r++ {
		cr := endpoint(t, tr, r)
		if err := cr.Send(0, 100+r, []byte{byte(r)}); err != nil {
			t.Fatalf("send from %d: %v", r, err)
		}
	}
	seen := map[int]bool{}
	for i := 0; i < 2; i++ {
		msg, err := c0.Recv(mpi.AnySource, mpi.AnyTag)
		if err != nil {
			t.Fatalf("wildcard recv: %v", err)
		}
		if msg.Tag != 100+msg.Source || len(msg.Data) != 1 || int(msg.Data[0]) != msg.Source {
			t.Fatalf("wildcard envelope mismatch: %+v", msg)
		}
		seen[msg.Source] = true
		msg.Release()
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("wildcard receives missed a source: %v", seen)
	}
	// Source-wildcard with a pinned tag must skip the non-matching tag.
	c1 := endpoint(t, tr, 1)
	if err := c1.Send(0, 200, nil); err != nil {
		t.Fatal(err)
	}
	if err := c1.Send(0, 201, []byte("x")); err != nil {
		t.Fatal(err)
	}
	msg, err := c0.Recv(mpi.AnySource, 201)
	if err != nil {
		t.Fatalf("recv(*, 201): %v", err)
	}
	if msg.Tag != 201 || string(msg.Data) != "x" {
		t.Fatalf("recv(*, 201) got %+v", msg)
	}
	msg.Release()
}

// testCollective runs an allreduce across every rank — the collectives
// are built on point-to-point, so this exercises matched traffic in all
// directions at once.
func testCollective(t *testing.T, factory Factory) {
	const n = 4
	tr := factory(t, n)
	errs := make(chan error, n)
	for r := 0; r < n; r++ {
		go func(rank int) {
			c, err := tr.Endpoint(rank)
			if err != nil {
				errs <- err
				return
			}
			out, err := mpi.AllreduceFloat64s(c, []float64{float64(rank + 1)}, mpi.OpSum)
			if err != nil {
				errs <- fmt.Errorf("rank %d allreduce: %w", rank, err)
				return
			}
			want := float64(n * (n + 1) / 2)
			if len(out) != 1 || out[0] != want {
				errs <- fmt.Errorf("rank %d allreduce = %v, want [%v]", rank, out, want)
				return
			}
			errs <- nil
		}(r)
	}
	for r := 0; r < n; r++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// testRequestSet covers the non-blocking API: post-then-waitall with
// lazy receive matching.
func testRequestSet(t *testing.T, factory Factory) {
	tr := factory(t, 2)
	c0, c1 := endpoint(t, tr, 0), endpoint(t, tr, 1)
	var reqs []mpi.Request
	for i := 0; i < 4; i++ {
		r, err := c1.Irecv(0, 40+i)
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, r)
	}
	for i := 0; i < 4; i++ {
		r, err := c0.Isend(1, 40+i, []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := r.Wait(); err != nil {
			t.Fatalf("isend wait: %v", err)
		}
	}
	for i, r := range reqs {
		msg, st, err := r.Wait()
		if err != nil {
			t.Fatalf("irecv wait #%d: %v", i, err)
		}
		if st.Source != 0 || st.Tag != 40+i || len(msg.Data) != 1 || msg.Data[0] != byte(i) {
			t.Fatalf("irecv #%d got %+v %+v", i, msg, st)
		}
		msg.Release()
	}
}

// testQueuedBeforeDeath pins the match-first law: a message queued
// before its sender died is still delivered — death invalidates only
// future traffic — and only then does the posted receive fail with
// ErrPeerDead.
func testQueuedBeforeDeath(t *testing.T, factory Factory) {
	tr := factory(t, 2)
	c0, c1 := endpoint(t, tr, 0), endpoint(t, tr, 1)
	if err := c1.Send(0, 5, []byte("last words")); err != nil {
		t.Fatal(err)
	}
	// Probe synchronises: the message is in rank 0's mailbox before the
	// kill lands (Send alone is eager and may still be in flight on a
	// socket transport).
	st, err := c0.Probe(1, 5)
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	if st.Source != 1 || st.Tag != 5 {
		t.Fatalf("probe status %+v", st)
	}
	tr.Kill(1)
	if tr.Alive(1) {
		t.Fatal("rank 1 alive after Kill")
	}
	msg, err := c0.Recv(1, 5)
	if err != nil {
		t.Fatalf("queued-before-death message not delivered: %v", err)
	}
	if string(msg.Data) != "last words" {
		t.Fatalf("payload = %q", msg.Data)
	}
	msg.Release()
	if _, err := c0.Recv(1, 5); !errors.Is(err, mpi.ErrPeerDead) {
		t.Fatalf("recv from dead peer: err = %v, want ErrPeerDead", err)
	}
}

// testKillSemantics covers the fail-stop contract: the victim's own
// operations fail with ErrKilled, sends to it are silently dropped, and
// the liveness views update.
func testKillSemantics(t *testing.T, factory Factory) {
	tr := factory(t, 3)
	c0, c1 := endpoint(t, tr, 0), endpoint(t, tr, 1)
	// A receive parked before the kill must be woken with ErrPeerDead.
	parked := make(chan error, 1)
	go func() {
		_, err := c0.Recv(1, 9)
		parked <- err
	}()
	tr.Kill(1)
	if err := <-parked; !errors.Is(err, mpi.ErrPeerDead) {
		t.Fatalf("parked recv: err = %v, want ErrPeerDead", err)
	}
	if _, err := c1.Recv(0, 9); !errors.Is(err, mpi.ErrKilled) {
		t.Fatalf("victim recv: err = %v, want ErrKilled", err)
	}
	if err := c0.Send(1, 9, []byte("into the void")); err != nil {
		t.Fatalf("send to dead rank: err = %v, want silent drop", err)
	}
	if got := tr.AliveCount(); got != 2 {
		t.Fatalf("AliveCount = %d, want 2", got)
	}
	var dead []int
	tr.ForEachDead(func(r int) { dead = append(dead, r) })
	if len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("ForEachDead = %v, want [1]", dead)
	}
	tr.Kill(1) // idempotent
	if got := tr.AliveCount(); got != 2 {
		t.Fatalf("AliveCount after double kill = %d, want 2", got)
	}
}

// testAbortSemantics covers teardown: every parked and future operation
// fails with ErrAborted.
func testAbortSemantics(t *testing.T, factory Factory) {
	tr := factory(t, 2)
	c0 := endpoint(t, tr, 0)
	parked := make(chan error, 1)
	go func() {
		_, err := c0.Recv(1, 3)
		parked <- err
	}()
	// Give the receive a moment to park; the wakeup must find it.
	time.Sleep(20 * time.Millisecond)
	tr.Abort()
	if err := <-parked; !errors.Is(err, mpi.ErrAborted) {
		t.Fatalf("parked recv: err = %v, want ErrAborted", err)
	}
	if !tr.Aborted() {
		t.Fatal("Aborted() = false after Abort")
	}
	if err := c0.Send(1, 3, nil); !errors.Is(err, mpi.ErrAborted) {
		t.Fatalf("send after abort: err = %v, want ErrAborted", err)
	}
}

// testEpochRevive drives the full recovery protocol: kill a rank,
// interrupt the epoch (parked operations release with ErrInterrupted),
// revive the dead rank, resume, and prove the fresh epoch carries
// traffic for every rank — including the revived one — with purged
// mailboxes.
func testEpochRevive(t *testing.T, factory Factory) {
	const n = 4
	tr := factory(t, n)
	c3 := endpoint(t, tr, 3)

	// Stale traffic from the doomed epoch: must be purged by Resume.
	if err := c3.Send(0, 77, []byte("stale")); err != nil {
		t.Fatal(err)
	}
	c0 := endpoint(t, tr, 0)
	if _, err := c0.Probe(3, 77); err != nil {
		t.Fatalf("stale probe: %v", err)
	}

	tr.Kill(2)
	if _, err := c3.Recv(2, 9); !errors.Is(err, mpi.ErrPeerDead) {
		t.Fatalf("recv from dead: err = %v, want ErrPeerDead", err)
	}

	parked := make(chan error, 1)
	go func() {
		_, err := c3.Recv(1, 11)
		parked <- err
	}()
	time.Sleep(20 * time.Millisecond)
	tr.Interrupt()
	if !tr.Interrupted() {
		t.Fatal("Interrupted() = false after Interrupt")
	}
	if err := <-parked; !errors.Is(err, mpi.ErrInterrupted) {
		t.Fatalf("parked recv on interrupt: err = %v, want ErrInterrupted", err)
	}

	tr.Revive(2)
	if !tr.Alive(2) {
		t.Fatal("rank 2 dead after Revive")
	}
	tr.Resume()
	if tr.Interrupted() {
		t.Fatal("Interrupted() = true after Resume")
	}
	if got := tr.AliveCount(); got != n {
		t.Fatalf("AliveCount after revive = %d, want %d", got, n)
	}

	// Fresh epoch: a full ring with every rank participating. Endpoints
	// are re-fetched — a socket transport hands out the revived rank's
	// new incarnation.
	errs := make(chan error, n)
	for r := 0; r < n; r++ {
		go func(rank int) {
			c, err := tr.Endpoint(rank)
			if err != nil {
				errs <- err
				return
			}
			if err := c.Send((rank+1)%n, 13, []byte{byte(rank)}); err != nil {
				errs <- fmt.Errorf("rank %d ring send: %w", rank, err)
				return
			}
			msg, err := c.Recv((rank+n-1)%n, 13)
			if err != nil {
				errs <- fmt.Errorf("rank %d ring recv: %w", rank, err)
				return
			}
			if len(msg.Data) != 1 || msg.Data[0] != byte((rank+n-1)%n) {
				errs <- fmt.Errorf("rank %d ring payload %v", rank, msg.Data)
				return
			}
			msg.Release()
			errs <- nil
		}(r)
	}
	for r := 0; r < n; r++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	// The stale pre-interrupt message must have been purged: a receive
	// for it would hang, so probe via the non-blocking path.
	c0 = endpoint(t, tr, 0)
	req, err := c0.Irecv(3, 77)
	if err != nil {
		t.Fatal(err)
	}
	if done, msg, _, _ := req.Test(); done {
		t.Fatalf("stale epoch message survived resume: %+v", msg)
	}
}
