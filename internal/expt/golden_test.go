package expt

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden files instead of asserting against them:
//
//	go test ./internal/expt -run TestGolden -update
var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// goldenRuns is the small fixed Monte-Carlo sample used for the golden
// artefacts: large enough that every cell completes, small enough that
// the whole suite regenerates in seconds. The rendered output is a pure
// function of (seed, runs) at every parallelism level, which is exactly
// what this suite locks down.
const goldenRuns = 20

// goldenArtefacts renders every numbered artefact of the paper the same
// way cmd/paperbench emits it. The Monte-Carlo results (table4 family)
// are shared across artefacts, like paperbench -all does.
func goldenArtefacts(t *testing.T) map[string]string {
	t.Helper()
	out := make(map[string]string)

	out["table1"] = Table1().Format()

	t2, _, err := Table2(DefaultBreakdownParams())
	if err != nil {
		t.Fatal(err)
	}
	out["table2"] = t2.Format()

	t3, _, err := Table3(DefaultBreakdownParams())
	if err != nil {
		t.Fatal(err)
	}
	out["table3"] = t3.Format()

	fig2, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	out["fig2"] = fig2.Format()

	curves, err := Figures4to6()
	if err != nil {
		t.Fatal(err)
	}
	for _, fc := range curves {
		out[fc.Figure.ID] = fc.Figure.Format()
	}

	p := DefaultTable4Params()
	p.Runs = goldenRuns
	t4, err := Table4(p)
	if err != nil {
		t.Fatal(err)
	}
	out["table4"] = t4.Table.Format()
	out["fig8"] = Figure8(t4).Format()
	out["fig9"] = Figure9(t4).Format()

	t5, fig10 := Table5()
	out["table5"] = t5.Format()
	out["fig10"] = fig10.Format()

	fig11, modelMinutes, err := Figure11(0)
	if err != nil {
		t.Fatal(err)
	}
	out["fig11"] = fig11.Format()

	fig12, err := Figure12(t4, modelMinutes, nil)
	if err != nil {
		t.Fatal(err)
	}
	out["fig12"] = fig12.Figure.Format()

	for _, sc := range []struct {
		id   string
		maxN int
	}{{"fig13", 30000}, {"fig14", 200000}} {
		res, err := Scaling(DefaultScalingParams(), sc.maxN, sc.id)
		if err != nil {
			t.Fatal(err)
		}
		out[sc.id] = res.Figure.Format()
	}

	cmp, err := ShrinkVsRestart()
	if err != nil {
		t.Fatal(err)
	}
	out["shrinkcmp"] = cmp.Format()
	return out
}

// goldenIDs is the fixed artefact list — every numbered table and figure
// of the paper (fig3 and fig7 are schematic diagrams with no data), plus
// the shrink-vs-restart model comparison (shrinkcmp) this reproduction
// adds on top of the paper's restart-only evaluation.
var goldenIDs = []string{
	"table1", "table2", "table3", "table4", "table5",
	"fig2", "fig4", "fig5", "fig6", "fig8", "fig9",
	"fig10", "fig11", "fig12", "fig13", "fig14",
	"shrinkcmp",
}

func TestGoldenArtefacts(t *testing.T) {
	arts := goldenArtefacts(t)
	if len(arts) != len(goldenIDs) {
		t.Fatalf("rendered %d artefacts, expected %d", len(arts), len(goldenIDs))
	}
	for _, id := range goldenIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			got, ok := arts[id]
			if !ok {
				t.Fatalf("artefact %s not rendered", id)
			}
			path := filepath.Join("testdata", "golden", id+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with: go test ./internal/expt -run TestGolden -update)", err)
			}
			if got != string(want) {
				t.Fatalf("%s drifted from golden output.\n--- got ---\n%s\n--- want ---\n%s\n"+
					"(if the change is intentional, regenerate with -update)", id, got, want)
			}
		})
	}
}

// TestGoldenTable4StableAcrossParallelism re-renders the golden table4 at
// explicit parallelism levels and diffs against the committed file — the
// end-to-end proof that the parallel engine cannot drift the artefacts.
func TestGoldenTable4StableAcrossParallelism(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden", "table4.txt"))
	if err != nil {
		if *update {
			t.Skip("golden files being regenerated")
		}
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		p := DefaultTable4Params()
		p.Runs = goldenRuns
		p.Parallelism = par
		res, err := Table4(p)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Table.Format(); got != string(want) {
			t.Fatalf("parallelism %d drifted from golden table4:\n%s", par, got)
		}
	}
}

// TestGoldenFilesHaveNoStrays keeps testdata/golden in lockstep with the
// artefact list: a file without a generator (or vice versa) fails.
func TestGoldenFilesHaveNoStrays(t *testing.T) {
	if *update {
		t.Skip("golden files being regenerated")
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatal(err)
	}
	known := make(map[string]bool, len(goldenIDs))
	for _, id := range goldenIDs {
		known[id+".txt"] = true
	}
	for _, e := range entries {
		if !known[e.Name()] {
			t.Errorf("stray golden file %s", e.Name())
		}
		delete(known, e.Name())
	}
	for name := range known {
		t.Errorf("missing golden file %s", name)
	}
}
