package expt

import (
	"testing"
	"time"
)

// TestOverlapAsyncHidesWriteLatency pins the experiment's headline with
// the deterministic parts of the table: both modes checkpoint the same
// number of generations, the sync row's effective δ carries the emulated
// write latency while the async row's does not, and only the async row
// records hidden write time.
func TestOverlapAsyncHidesWriteLatency(t *testing.T) {
	p := DefaultOverlapParams()
	tab, err := Overlap(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	sync, async := tab.Rows[0], tab.Rows[1]
	if sync[0] != "sync" || async[0] != "async" {
		t.Fatalf("row order: %q, %q", sync[0], async[0])
	}
	if sync[1] != async[1] {
		t.Fatalf("checkpoint counts differ: sync=%s async=%s", sync[1], async[1])
	}
	dSync, err := time.ParseDuration(sync[2])
	if err != nil {
		t.Fatal(err)
	}
	dAsync, err := time.ParseDuration(async[2])
	if err != nil {
		t.Fatal(err)
	}
	// The sync path blocks on the emulated write; the pipelined path's
	// stall is coordination only. Half the write latency is a generous
	// margin against scheduler noise.
	if dSync < p.WriteLatency {
		t.Errorf("sync effective δ = %v, want ≥ write latency %v", dSync, p.WriteLatency)
	}
	if dAsync >= p.WriteLatency/2 {
		t.Errorf("async effective δ = %v, want well under write latency %v", dAsync, p.WriteLatency)
	}
	if dAsync >= dSync {
		t.Errorf("async δ %v not below sync δ %v", dAsync, dSync)
	}
	hiddenSync, err := time.ParseDuration(sync[3])
	if err != nil {
		t.Fatal(err)
	}
	hiddenAsync, err := time.ParseDuration(async[3])
	if err != nil {
		t.Fatal(err)
	}
	if hiddenSync != 0 {
		t.Errorf("sync row hid %v of write time; the blocking path hides nothing", hiddenSync)
	}
	if hiddenAsync < p.WriteLatency {
		t.Errorf("async hidden write time = %v, want ≥ one write latency %v", hiddenAsync, p.WriteLatency)
	}
}
