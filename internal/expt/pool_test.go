package expt

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 16, 0} {
		const n = 100
		counts := make([]atomic.Int32, n)
		if err := forEach(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := forEach(4, 0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachReportsLowestIndexError(t *testing.T) {
	// Indexes 3 and 7 both fail; the lowest recorded index must win
	// regardless of worker scheduling.
	for _, workers := range []int{1, 4} {
		err := forEach(workers, 10, func(i int) error {
			if i == 3 || i == 7 {
				return fmt.Errorf("fail@%d", i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: error swallowed", workers)
		}
		if err.Error() != "fail@3" {
			t.Fatalf("workers=%d: got %q, want fail@3", workers, err)
		}
	}
}

func TestForEachStopsHandingOutAfterFailure(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	err := forEach(1, 1000, func(i int) error {
		ran.Add(1)
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 3 {
		t.Fatalf("sequential path ran %d items after failure at index 2", got)
	}
}

func TestTable4DeterministicAcrossParallelism(t *testing.T) {
	// Same seed ⇒ byte-identical Table4Result at parallelism 1, 4, and
	// GOMAXPROCS: cell seeds derive from the cell index and trial streams
	// from stats.Substream, so scheduling cannot leak into the matrix.
	base := DefaultTable4Params()
	base.Runs = 25
	var ref *Table4Result
	var refText string
	for i, par := range []int{1, 4, 0} {
		p := base
		p.Parallelism = par
		res, err := Table4(p)
		if err != nil {
			t.Fatal(err)
		}
		text := res.Table.Format()
		if i == 0 {
			ref, refText = res, text
			continue
		}
		if !reflect.DeepEqual(res.Minutes, ref.Minutes) ||
			!reflect.DeepEqual(res.BestDegree, ref.BestDegree) {
			t.Fatalf("parallelism %d: matrix diverged from sequential", par)
		}
		if text != refText {
			t.Fatalf("parallelism %d: rendered table diverged:\n%s\nvs\n%s", par, text, refText)
		}
	}
}

func TestFigure11DeterministicAcrossParallelism(t *testing.T) {
	fSeq, minSeq, err := Figure11(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{4, 0} {
		f, mins, err := Figure11(par)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(mins, minSeq) {
			t.Fatalf("parallelism %d: minutes diverged", par)
		}
		if f.Format() != fSeq.Format() {
			t.Fatalf("parallelism %d: rendered figure diverged", par)
		}
	}
}

func TestScalingDeterministicAcrossParallelism(t *testing.T) {
	seq := DefaultScalingParams()
	seq.Parallelism = 1
	ref, err := Scaling(seq, 30000, "fig13")
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{4, 0} {
		p := DefaultScalingParams()
		p.Parallelism = par
		res, err := Scaling(p, 30000, "fig13")
		if err != nil {
			t.Fatal(err)
		}
		if res.Crossover12 != ref.Crossover12 || res.Crossover13 != ref.Crossover13 ||
			res.Crossover23 != ref.Crossover23 || res.TwoForOne != ref.TwoForOne {
			t.Fatalf("parallelism %d: crossovers diverged", par)
		}
		if res.Figure.Format() != ref.Figure.Format() {
			t.Fatalf("parallelism %d: rendered figure diverged", par)
		}
	}
}
