package expt

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/stats"
)

// Figure2 reproduces the reliability-versus-degree plot: R_sys over
// r ∈ [1, 3] for the paper's sample inputs — node MTBF 2.5 vs 5 years and
// varied communication ratios α (which enter through the mission time
// t_Red). The 128-hour, 100k-process job is the running exascale example.
func Figure2() (*Figure, error) {
	f := &Figure{
		ID:     "fig2",
		Title:  "Effect of Redundancy on Reliability",
		XLabel: "degree",
		YLabel: "R_sys",
	}
	const (
		n    = 100000
		work = 128 * model.Hour
	)
	cases := []struct {
		name  string
		theta float64
		alpha float64
	}{
		{"theta=2.5y alpha=0.2", 2.5 * model.Year, 0.2},
		{"theta=5y alpha=0.2", 5 * model.Year, 0.2},
		{"theta=5y alpha=0.05", 5 * model.Year, 0.05},
		{"theta=5y alpha=0.5", 5 * model.Year, 0.5},
	}
	for _, tc := range cases {
		s := Series{Name: tc.name}
		for r := 1.0; r <= 3.0001; r += 0.05 {
			part, err := model.PartitionRanks(n, r)
			if err != nil {
				return nil, err
			}
			tRed := model.RedundantTime(work, tc.alpha, r)
			rel := model.SystemReliability(part, tRed, tc.theta, model.ReliabilityLinearized)
			s.X = append(s.X, r)
			s.Y = append(s.Y, rel)
		}
		f.Series = append(f.Series, s)
	}
	f.Notes = append(f.Notes,
		"lower node MTBF demands higher redundancy before R_sys rises; larger alpha flattens the curve")
	return f, nil
}

// FigureConfig is one of the Figures 4-6 model configurations. The paper
// does not print its parameters, but its annotations pin them down: at
// r=1 Figure 4 expects 458 checkpoints of ≈600 s (76.3 h total) with
// δ_opt = 22.9 min, and Figure 6 expects 1,163 checkpoints of ≈60 s with
// δ_opt = 7.2 min — both of which Eq. 15 reproduces exactly for a
// 128-hour, 100,000-process job at 5-year node MTBF with c = 600 s and
// c = 60 s respectively (see EXPERIMENTS.md).
type FigureConfig struct {
	Name           string
	N              int
	Work           float64
	Alpha          float64
	NodeMTBF       float64
	CheckpointCost float64
	RestartCost    float64
}

// Figure456Configs returns the three recovered configurations.
func Figure456Configs() []FigureConfig {
	return []FigureConfig{
		{
			Name: "fig4", N: 100000, Work: 128 * model.Hour, Alpha: 0.2,
			NodeMTBF: 5 * model.Year, CheckpointCost: 600, RestartCost: 600,
		},
		{
			Name: "fig5", N: 100000, Work: 128 * model.Hour, Alpha: 0.2,
			NodeMTBF: 2.5 * model.Year, CheckpointCost: 600, RestartCost: 600,
		},
		{
			Name: "fig6", N: 100000, Work: 128 * model.Hour, Alpha: 0.2,
			NodeMTBF: 5 * model.Year, CheckpointCost: 60, RestartCost: 600,
		},
	}
}

// FigureCurve is the rendered curve plus the paper-style annotations.
type FigureCurve struct {
	Figure *Figure
	// TMin/TMax/TR1 are the annotation statistics in hours.
	TMin, TMax, TR1 float64
	// BestDegree is the argmin.
	BestDegree float64
	// CheckpointsAtR1 and DeltaAtR1 (seconds) annotate the r=1 point.
	CheckpointsAtR1 float64
	DeltaAtR1       float64
	// LambdaAtR1 is the r=1 failure rate (1/s).
	LambdaAtR1 float64
}

// Figures4to6 evaluates the combined model's completion time over the
// degree sweep for each configuration.
func Figures4to6() ([]FigureCurve, error) {
	var out []FigureCurve
	for _, cfg := range Figure456Configs() {
		params := model.Params{
			N:              cfg.N,
			Work:           cfg.Work,
			Alpha:          cfg.Alpha,
			NodeMTBF:       cfg.NodeMTBF,
			CheckpointCost: cfg.CheckpointCost,
			RestartCost:    cfg.RestartCost,
		}
		curve, err := model.Sweep(params, 1, 3, 0.05, model.Options{})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.Name, err)
		}
		fc := FigureCurve{
			Figure: &Figure{
				ID:     cfg.Name,
				Title:  fmt.Sprintf("Total Execution Time vs Degree of Redundancy (%s)", cfg.Name),
				XLabel: "degree",
				YLabel: "hours",
			},
			TMin: curve[0].Total / model.Hour,
		}
		s := Series{Name: "T_total"}
		for _, ev := range curve {
			hours := ev.Total / model.Hour
			s.X = append(s.X, ev.Degree)
			s.Y = append(s.Y, hours)
			if hours < fc.TMin {
				fc.TMin = hours
				fc.BestDegree = ev.Degree
			}
			if hours > fc.TMax {
				fc.TMax = hours
			}
		}
		fc.Figure.Series = append(fc.Figure.Series, s)
		r1, err := model.Evaluate(params, 1, model.Options{})
		if err == nil {
			fc.TR1 = r1.Total / model.Hour
			fc.CheckpointsAtR1 = r1.Checkpoints
			fc.DeltaAtR1 = r1.Interval
			fc.LambdaAtR1 = r1.Lambda
		} else {
			fc.TR1 = r1.Total / model.Hour // +Inf when it never completes
		}
		fc.Figure.Notes = append(fc.Figure.Notes, fmt.Sprintf(
			"T_min=%.1fh at r=%.2f; T_r=1=%.1fh; Chkpts(r=1)=%.0f; delta_opt(r=1)=%.1f min",
			fc.TMin, fc.BestDegree, fc.TR1, fc.CheckpointsAtR1, fc.DeltaAtR1/model.Minute))
		out = append(out, fc)
	}
	return out, nil
}

// Figure11 evaluates the Section 6 simplified model (the one the paper
// overlays against its measurements): completion time in minutes over the
// degree sweep, one series per MTBF. The MTBF rows evaluate across
// `parallelism` workers (0 = GOMAXPROCS); rows are assembled by index so
// the figure is identical at every setting.
func Figure11(parallelism int) (*Figure, [][]float64, error) {
	f := &Figure{
		ID:     "fig11",
		Title:  "Modeled Application Performance (simplified §6 model)",
		XLabel: "degree",
		YLabel: "minutes",
	}
	minutes := make([][]float64, len(MTBFHours))
	series := make([]Series, len(MTBFHours))
	err := forEach(resolveParallelism(parallelism), len(MTBFHours), func(i int) error {
		mtbf := MTBFHours[i]
		params := model.Params{
			N:              128,
			Work:           46 * model.Minute,
			Alpha:          0.2,
			NodeMTBF:       mtbf * model.Hour,
			CheckpointCost: 120,
			RestartCost:    500,
		}
		s := Series{Name: fmt.Sprintf("MTBF %dh", int(mtbf))}
		row := make([]float64, 0, len(Degrees))
		for _, d := range Degrees {
			ev, err := model.EvaluateSimplified(params, d, model.Options{})
			if err != nil {
				return fmt.Errorf("fig11 θ=%v r=%v: %w", mtbf, d, err)
			}
			mins := ev.Total / model.Minute
			s.X = append(s.X, d)
			s.Y = append(s.Y, mins)
			row = append(row, mins)
		}
		series[i] = s
		minutes[i] = row
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	f.Series = series
	f.Notes = append(f.Notes,
		"T = t_Red·(1 + c/δ_opt + λ_sys·R); the paper's printed middle term √(2cΘ) is a typo (units)")
	return f, minutes, nil
}

// Figure12Result is the observed-vs-modeled overlay plus fit statistics.
type Figure12Result struct {
	Figure *Figure
	// QQCorrelation is the Pearson correlation of the observed and
	// modeled quantiles ("a Q-Q plot ... indicates a close fit").
	QQCorrelation float64
	// MeanRelDeviation is the mean |obs-model|/model over all cells.
	MeanRelDeviation float64
}

// Figure12 overlays the simulated experiment (Table 4) on the simplified
// model (Figure 11) for selected MTBFs and computes the Q-Q fit.
func Figure12(t4 *Table4Result, modelMinutes [][]float64, selectMTBF []float64) (*Figure12Result, error) {
	if len(t4.Minutes) != len(modelMinutes) {
		return nil, fmt.Errorf("fig12: %d observed rows vs %d modeled", len(t4.Minutes), len(modelMinutes))
	}
	if selectMTBF == nil {
		selectMTBF = []float64{6, 18, 30}
	}
	f := &Figure{
		ID:     "fig12",
		Title:  "Observed (simulated experiment) vs Modeled Performance",
		XLabel: "degree",
		YLabel: "minutes",
	}
	var obsAll, modAll []float64
	for i, mtbf := range MTBFHours {
		obsAll = append(obsAll, t4.Minutes[i]...)
		modAll = append(modAll, modelMinutes[i]...)
		if !contains(selectMTBF, mtbf) {
			continue
		}
		f.Series = append(f.Series,
			Series{
				Name: fmt.Sprintf("observed %dh", int(mtbf)),
				X:    append([]float64(nil), Degrees...),
				Y:    append([]float64(nil), t4.Minutes[i]...),
			},
			Series{
				Name: fmt.Sprintf("model %dh", int(mtbf)),
				X:    append([]float64(nil), Degrees...),
				Y:    append([]float64(nil), modelMinutes[i]...),
			})
	}
	corr, dev := stats.QQFit(stats.QQ(obsAll, modAll, 20))
	f.Notes = append(f.Notes, fmt.Sprintf("Q-Q correlation %.4f, mean relative deviation %.3f", corr, dev))
	return &Figure12Result{Figure: f, QQCorrelation: corr, MeanRelDeviation: dev}, nil
}

func contains(xs []float64, v float64) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
