package expt

import (
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/model"
)

// OverlapParams configures the live sync-vs-async checkpoint comparison:
// the same CG job run twice against a stable store with an emulated write
// latency, once with the blocking write path and once with the pipelined
// one. The contrast isolates exactly the term the pipeline attacks — the
// checkpoint cost δ the *application* observes, as opposed to the cost
// the storage system pays.
type OverlapParams struct {
	// Ranks is the virtual process count (degree 1: every rank writes).
	Ranks int
	// Grid sizes the CG problem (grid² unknowns).
	Grid int
	// Iterations per run.
	Iterations int
	// StepInterval is the checkpoint cadence in steps.
	StepInterval int
	// ComputeDelay emulates per-step computation; the async pipeline can
	// only hide write latency behind it, so it must dominate the step.
	ComputeDelay time.Duration
	// WriteLatency emulates the stable-storage write cost per rank image
	// (a parallel file system's per-checkpoint tax).
	WriteLatency time.Duration
	// AsyncWorkers sizes the pipelined run's background pool.
	AsyncWorkers int
	// MTBFHours feeds the observed effective δ into Daly's optimal
	// interval, showing how the pipeline shifts the model's operating
	// point.
	MTBFHours float64
}

// DefaultOverlapParams keeps the whole experiment under a second while
// leaving an order of magnitude between the emulated write latency and
// the coordination cost, so the sync/async contrast is unambiguous.
func DefaultOverlapParams() OverlapParams {
	return OverlapParams{
		Ranks:        4,
		Grid:         6,
		Iterations:   40,
		StepInterval: 5,
		ComputeDelay: 2 * time.Millisecond,
		WriteLatency: 5 * time.Millisecond,
		AsyncWorkers: 2,
		MTBFHours:    24,
	}
}

// delayStorage emulates a stable store whose writes cost a fixed
// latency. Reads and metadata stay instant: the experiment measures the
// write path only.
type delayStorage struct {
	checkpoint.Storage
	latency time.Duration
}

func (d *delayStorage) Write(gen uint64, rank int, state []byte) error {
	time.Sleep(d.latency)
	return d.Storage.Write(gen, rank, state)
}

// Overlap runs the same deterministic CG job with the synchronous and
// the pipelined checkpoint write path and tabulates the effective
// checkpoint cost δ (wall time inside Checkpoint per generation, from
// checkpoint_stall_ns_total) each mode exposes to the application,
// alongside the Daly-optimal interval that δ implies. Wall-clock
// columns vary run to run; the structural claim — async δ well below
// the emulated write latency, sync δ at or above it — is deterministic
// enough to gate in tests.
func Overlap(p OverlapParams) (*Table, error) {
	m, err := apps.Laplacian2D(p.Grid)
	if err != nil {
		return nil, err
	}
	factory := func() apps.App { return &apps.CG{Matrix: m, Iterations: p.Iterations} }
	t := &Table{
		ID:    "overlap",
		Title: "Sync vs pipelined checkpoint write path on one CG job (live)",
		Header: []string{
			"Mode", "Checkpoints", "Effective δ", "Hidden write time", "Elapsed",
			fmt.Sprintf("Daly δ_opt (θ=%gh)", p.MTBFHours),
		},
	}
	thetaSec := p.MTBFHours * 3600
	for _, mode := range []struct {
		name  string
		async bool
	}{
		{"sync", false},
		{"async", true},
	} {
		res, err := core.Run(core.Config{
			Ranks:           p.Ranks,
			Degree:          1,
			Storage:         &delayStorage{Storage: checkpoint.NewMemStorage(), latency: p.WriteLatency},
			StepInterval:    p.StepInterval,
			AsyncCheckpoint: mode.async,
			AsyncWorkers:    p.AsyncWorkers,
			AttemptTimeout:  5 * time.Minute,
			ComputeDelay:    p.ComputeDelay,
		}, factory)
		if err != nil {
			return nil, fmt.Errorf("overlap %s: %w", mode.name, err)
		}
		if !res.Completed {
			return nil, fmt.Errorf("overlap %s: job did not complete", mode.name)
		}
		attempted := res.Metrics.Counter("checkpoint_attempted_total")
		if attempted == 0 {
			return nil, fmt.Errorf("overlap %s: no checkpoints attempted", mode.name)
		}
		stall := time.Duration(res.Metrics.Counter("checkpoint_stall_ns_total"))
		overlap := time.Duration(res.Metrics.Counter("checkpoint_overlap_ns_total"))
		deltaEff := stall / time.Duration(attempted)
		t.Rows = append(t.Rows, []string{
			mode.name,
			fmt.Sprintf("%d", attempted),
			deltaEff.Round(10 * time.Microsecond).String(),
			overlap.Round(10 * time.Microsecond).String(),
			res.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0fs", model.DalyInterval(deltaEff.Seconds(), thetaSec)),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("emulated stable-store write latency: %v per rank image; per-step compute: %v",
			p.WriteLatency, p.ComputeDelay),
		"effective δ = checkpoint_stall_ns_total / checkpoints: the wall time the application loses per generation",
		"hidden write time = checkpoint_overlap_ns_total: write latency paid by background workers instead of the checkpoint line",
		"a smaller effective δ shortens Daly's optimal interval — cheaper checkpoints are worth taking more often")
	return t, nil
}
