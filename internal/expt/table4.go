package expt

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/sim"
)

// Degrees is the redundancy sweep of the paper's experiments: 1x to 3x in
// quarter steps.
var Degrees = []float64{1, 1.25, 1.5, 1.75, 2, 2.25, 2.5, 2.75, 3}

// MTBFHours is the per-node MTBF sweep of Table 4.
var MTBFHours = []float64{6, 12, 18, 24, 30}

// PaperObservedRedundantMinutes is Table 5's observed failure-free
// execution time (minutes) at each degree of Degrees — the measured
// redundancy overhead of the paper's cluster, which grows faster than
// Eq. 1's linear model on the first partial step.
var PaperObservedRedundantMinutes = []float64{46, 55, 59, 61, 63, 70, 76, 78, 82}

// PaperTable4Minutes is the published Table 4 (execution time in
// minutes), MTBF rows 6..30 h by Degrees columns, for paper-vs-measured
// comparison in EXPERIMENTS.md.
var PaperTable4Minutes = [][]float64{
	{275, 279, 212, 189, 146, 158, 139, 132, 123},
	{201, 207, 167, 143, 103, 113, 98, 111, 125},
	{184, 179, 148, 120, 72, 126, 88, 80, 84},
	{159, 143, 133, 100, 67, 92, 78, 84, 83},
	{136, 128, 110, 101, 66, 73, 80, 82, 84},
}

// Table4Params configures the combined C/R + redundancy experiment.
type Table4Params struct {
	// N is the virtual process count (128 in the paper).
	N int
	// WorkMinutes is the failure-free base runtime (46 in the paper).
	WorkMinutes float64
	// Alpha, CheckpointCost and RestartCost as measured by the paper
	// (0.2, 120 s, 500 s).
	Alpha          float64
	CheckpointCost float64
	RestartCost    float64
	// UseObservedOverhead feeds the measured Table 5 dilation into the
	// simulator instead of Eq. 1 (closer to the physical experiment).
	UseObservedOverhead bool
	// Runs is the Monte-Carlo sample count per cell.
	Runs int
	// Seed drives the simulation.
	Seed int64
	// Parallelism is the worker count for the 45-cell (MTBF × degree)
	// grid; zero means GOMAXPROCS. Cell seeds derive from the cell index,
	// so the result is identical at every setting.
	Parallelism int
}

// DefaultTable4Params mirrors the paper's measured constants.
func DefaultTable4Params() Table4Params {
	return Table4Params{
		N:                   128,
		WorkMinutes:         46,
		Alpha:               0.2,
		CheckpointCost:      120,
		RestartCost:         500,
		UseObservedOverhead: true,
		Runs:                200,
		Seed:                1,
	}
}

// Table4Result carries the experiment matrix plus derived artefacts.
type Table4Result struct {
	Table *Table
	// Minutes[i][j] is the mean runtime at MTBFHours[i], Degrees[j].
	Minutes [][]float64
	// BestDegree[i] is the argmin degree per MTBF row.
	BestDegree []float64
}

// observedRedundantTime interpolates the measured dilation for degree r.
// The measurements only cover r ∈ [1, 3]: degrees below the first
// measured point (or NaN) are an error — redundancy degrees below 1 have
// no meaning in the paper's model — while degrees above the last measured
// point clamp to the 3x value (full triple redundancy is the physical
// ceiling of the testbed).
func observedRedundantTime(r float64) (float64, error) {
	if math.IsNaN(r) || r < Degrees[0] {
		return 0, fmt.Errorf("expt: degree %v outside measured range [%g, %g]",
			r, Degrees[0], Degrees[len(Degrees)-1])
	}
	for i, d := range Degrees {
		if math.Abs(d-r) < 1e-9 {
			return PaperObservedRedundantMinutes[i] * model.Minute, nil
		}
	}
	// Linear interpolation between surrounding measured degrees.
	for i := 1; i < len(Degrees); i++ {
		if r < Degrees[i] {
			frac := (r - Degrees[i-1]) / (Degrees[i] - Degrees[i-1])
			mins := PaperObservedRedundantMinutes[i-1] +
				frac*(PaperObservedRedundantMinutes[i]-PaperObservedRedundantMinutes[i-1])
			return mins * model.Minute, nil
		}
	}
	return PaperObservedRedundantMinutes[len(Degrees)-1] * model.Minute, nil
}

// Table4 runs the Monte-Carlo reproduction of the paper's cluster
// experiment: for each node MTBF and redundancy degree, the mean
// completion time of the CG job under injected failures with Daly-optimal
// checkpointing, in minutes.
func Table4(p Table4Params) (*Table4Result, error) {
	if p.Runs <= 0 {
		return nil, fmt.Errorf("expt: Runs = %d", p.Runs)
	}
	res := &Table4Result{
		Table: &Table{
			ID:    "table4",
			Title: "Application Performance (Execution Time [Minutes]) for Combined C/R+Redundancy",
			Header: append([]string{"MTBF"}, func() []string {
				out := make([]string, len(Degrees))
				for i, d := range Degrees {
					out[i] = fmt.Sprintf("%gx", d)
				}
				return out
			}()...),
		},
	}
	// The 45-cell grid runs across the worker pool. Each cell's seed is
	// p.Seed + 1 + its row-major index — the same mapping the sequential
	// loop used — and each cell runs its trials on one worker (the grid
	// itself saturates the pool), so the matrix is bit-identical at every
	// parallelism level.
	nCells := len(MTBFHours) * len(Degrees)
	estimates := make([]sim.Estimate, nCells)
	err := forEach(resolveParallelism(p.Parallelism), nCells, func(k int) error {
		i, j := k/len(Degrees), k%len(Degrees)
		mtbf, degree := MTBFHours[i], Degrees[j]
		cfg := sim.Config{
			N:              p.N,
			Degree:         degree,
			Work:           p.WorkMinutes * model.Minute,
			Alpha:          p.Alpha,
			NodeMTBF:       mtbf * model.Hour,
			CheckpointCost: p.CheckpointCost,
			RestartCost:    p.RestartCost,
			Parallelism:    1,
		}
		if p.UseObservedOverhead {
			rt, err := observedRedundantTime(degree)
			if err != nil {
				return fmt.Errorf("table4 θ=%vh r=%v: %w", mtbf, degree, err)
			}
			cfg.RedundantTime = rt
		}
		est, err := sim.Run(cfg, p.Runs, p.Seed+1+int64(k))
		if err != nil {
			return fmt.Errorf("table4 θ=%vh r=%v: %w", mtbf, degree, err)
		}
		estimates[k] = est
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, mtbf := range MTBFHours {
		row := make([]float64, len(Degrees))
		cells := []string{fmt.Sprintf("%.0f hrs", mtbf)}
		best := math.Inf(1)
		bestDeg := 1.0
		for j, degree := range Degrees {
			est := estimates[i*len(Degrees)+j]
			row[j] = est.Total.Mean / model.Minute
			cells = append(cells, formatMinutes(est.Total.Mean))
			if est.Total.Mean < best {
				best = est.Total.Mean
				bestDeg = degree
			}
		}
		res.Minutes = append(res.Minutes, row)
		res.BestDegree = append(res.BestDegree, bestDeg)
		res.Table.Rows = append(res.Table.Rows, cells)
	}
	res.Table.Notes = append(res.Table.Notes,
		fmt.Sprintf("Monte Carlo, %d runs/cell; observed overhead=%v; paper minima: 3x@6h, 2.5x@12h, 2x@18-30h",
			p.Runs, p.UseObservedOverhead))
	return res, nil
}

// Figure8 renders the Table 4 matrix as the paper's line graph data (one
// series per MTBF, x = degree, y = minutes).
func Figure8(res *Table4Result) *Figure {
	f := &Figure{
		ID:     "fig8",
		Title:  "Application Performance for Combined C/R+Redundancy (line graph of Table 4)",
		XLabel: "degree",
		YLabel: "minutes",
	}
	for i, mtbf := range MTBFHours {
		f.Series = append(f.Series, Series{
			Name: fmt.Sprintf("MTBF %dh", int(mtbf)),
			X:    append([]float64(nil), Degrees...),
			Y:    append([]float64(nil), res.Minutes[i]...),
		})
	}
	return f
}

// Figure9 renders the same matrix as the paper's surface plot: an ASCII
// grid (MTBF × degree → minutes), which is what a surface plot encodes.
func Figure9(res *Table4Result) *Table {
	t := &Table{
		ID:     "fig9",
		Title:  "Surface Plot data of Application Performance (minutes over MTBF × degree)",
		Header: append([]string{"MTBF\\degree"}, res.Table.Header[1:]...),
	}
	for i, mtbf := range MTBFHours {
		row := []string{fmt.Sprintf("%.0fh", mtbf)}
		for _, m := range res.Minutes[i] {
			row = append(row, fmt.Sprintf("%.0f", m))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "local minima across the surface reflect the MTBF/redundancy interplay")
	return t
}
