package expt

import (
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
)

// RecoveryParams configures the live full-vs-partial restart comparison:
// one deterministic whole-sphere kill schedule replayed under both
// recovery strategies on a Table 5-style dual-redundancy CG run.
type RecoveryParams struct {
	// Ranks is the virtual process count (degree is fixed at 2 so every
	// sphere has a survivor-free death when both replicas are killed).
	Ranks int
	// Grid sizes the CG problem (grid² unknowns).
	Grid int
	// Iterations per run.
	Iterations int
	// StepInterval is the peer-tier checkpoint cadence in steps.
	StepInterval int
	// StableEvery pushes every Nth peer generation to stable storage;
	// the gap between the two cadences is exactly the work a full
	// restart recomputes and a partial restart does not.
	StableEvery int
	// Kills is the step-triggered schedule; the default kills one whole
	// sphere between a peer generation and the next stable one.
	Kills []core.StepKill
	// ComputeDelay emulates per-step computation.
	ComputeDelay time.Duration
}

// DefaultRecoveryParams mirrors the fixed-seed chaos fixture: peer
// generations every 5 steps, stable every 20, sphere 2 (physical ranks
// 4 and 5) killed at step 38 — 3 steps past the freshest peer
// generation but 18 past the freshest stable one.
func DefaultRecoveryParams() RecoveryParams {
	return RecoveryParams{
		Ranks:        4,
		Grid:         6,
		Iterations:   60,
		StepInterval: 5,
		StableEvery:  4,
		Kills:        []core.StepKill{{Step: 38, Rank: 4}, {Step: 38, Rank: 5}},
		ComputeDelay: 200 * time.Microsecond,
	}
}

// Recovery runs the same deterministic sphere kill under a full
// coordinated restart and under sphere-local partial restart from the
// peer tier, and tabulates what each strategy recomputed. The
// recomputed-steps column is deterministic; elapsed is wall clock.
func Recovery(p RecoveryParams) (*Table, error) {
	m, err := apps.Laplacian2D(p.Grid)
	if err != nil {
		return nil, err
	}
	factory := func() apps.App { return &apps.CG{Matrix: m, Iterations: p.Iterations} }
	t := &Table{
		ID:    "recovery",
		Title: "Full vs partial restart on one deterministic sphere kill (live)",
		Header: []string{
			"Strategy", "Full restarts", "Partial restarts", "Recomputed steps", "Elapsed",
		},
	}
	for _, strat := range []struct {
		name    string
		partial bool
	}{
		{"full restart", false},
		{"partial restart", true},
	} {
		res, err := core.Run(core.Config{
			Ranks:               p.Ranks,
			Degree:              2,
			StepInterval:        p.StepInterval,
			PeerReplicas:        1,
			StableEvery:         p.StableEvery,
			PartialRestart:      strat.partial,
			PartialRestartLimit: 2,
			StepKills:           p.Kills,
			MaxRestarts:         3,
			AttemptTimeout:      5 * time.Minute,
			ComputeDelay:        p.ComputeDelay,
		}, factory)
		if err != nil {
			return nil, fmt.Errorf("recovery %s: %w", strat.name, err)
		}
		if !res.Completed {
			return nil, fmt.Errorf("recovery %s: job did not complete", strat.name)
		}
		t.Rows = append(t.Rows, []string{
			strat.name,
			fmt.Sprintf("%d", res.Restarts),
			fmt.Sprintf("%d", res.PartialRestarts),
			fmt.Sprintf("%d", res.RecomputedSteps),
			res.Elapsed.Round(time.Millisecond).String(),
		})
	}
	t.Notes = append(t.Notes,
		"same kill schedule: partial restart rolls back to the peer generation, full restart to the sparser stable one",
		"the recomputed-steps gap is the ReStore-style win the peer tier buys")
	return t, nil
}
