package expt

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// resolveParallelism maps the shared Parallelism knob used across the
// experiment generators onto a concrete worker count: zero (or negative)
// means runtime.GOMAXPROCS(0), anything else is taken literally.
func resolveParallelism(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// forEach runs fn(i) for every i in [0, n) across at most workers
// goroutines and waits for all of them. Callers must write their results
// into index-addressed slots so the output is independent of scheduling;
// forEach guarantees the same for errors by reporting the lowest-index
// failure. After any failure no new indexes are handed out (in-flight
// calls drain). workers <= 0 means GOMAXPROCS.
func forEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if errs[i] = fn(i); errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
