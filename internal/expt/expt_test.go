package expt

import (
	"math"
	"strings"
	"testing"

	"repro/internal/model"
)

func TestTable1Static(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 5 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	out := tab.Format()
	if !strings.Contains(out, "ASC BG/L") || !strings.Contains(out, "6.9 hrs") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestTable2Shape(t *testing.T) {
	tab, breakdowns, err := Table2(DefaultBreakdownParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 || len(breakdowns) != 4 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	// The paper's trend: work fraction decays 96% → 35%-ish; strictly
	// decreasing with node count and the 100k row dominated by non-work.
	for i := 1; i < len(breakdowns); i++ {
		if breakdowns[i].Work >= breakdowns[i-1].Work {
			t.Fatalf("work fraction not decreasing at row %d: %v >= %v",
				i, breakdowns[i].Work, breakdowns[i-1].Work)
		}
	}
	if breakdowns[0].Work < 0.85 {
		t.Errorf("100-node work fraction %v, want high (paper: 96%%)", breakdowns[0].Work)
	}
	if breakdowns[3].Work > 0.75 {
		t.Errorf("100k-node work fraction %v, want low (paper: 35%%)", breakdowns[3].Work)
	}
}

func TestTable3Shape(t *testing.T) {
	tab, breakdowns, err := Table3(DefaultBreakdownParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	// Row 3 (5000 h at 1 yr MTBF) must be catastrophically worse than
	// row 1 — either starving entirely or with tiny useful work.
	if breakdowns[2].Total != 0 && breakdowns[2].Work > breakdowns[0].Work/2 {
		t.Errorf("harsh row work fraction %v vs %v", breakdowns[2].Work, breakdowns[0].Work)
	}
}

func TestFigure2Shape(t *testing.T) {
	f, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 4 {
		t.Fatalf("series %d", len(f.Series))
	}
	for _, s := range f.Series {
		// Reliability is a probability and non-decreasing in r.
		for i, y := range s.Y {
			if y < 0 || y > 1 {
				t.Fatalf("%s: R_sys %v out of range", s.Name, y)
			}
			if i > 0 && y < s.Y[i-1]-1e-12 {
				t.Fatalf("%s: reliability decreased at r=%v", s.Name, s.X[i])
			}
		}
		// Plain 1x at exascale is hopeless; 3x must be far better.
		if s.Y[len(s.Y)-1] < s.Y[0] {
			t.Fatalf("%s: no reliability gain from redundancy", s.Name)
		}
	}
	// Lower MTBF curve (2.5y) stays below the 5y curve at every r.
	lo, hi := f.Series[0], f.Series[1]
	for i := range lo.Y {
		if lo.Y[i] > hi.Y[i]+1e-12 {
			t.Fatalf("2.5y reliability above 5y at r=%v", lo.X[i])
		}
	}
}

func TestFigures4to6Annotations(t *testing.T) {
	curves, err := Figures4to6()
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 3 {
		t.Fatalf("curves %d", len(curves))
	}
	fig4, fig5, fig6 := curves[0], curves[1], curves[2]

	// The recovered configuration must reproduce the paper's printed
	// annotations: ≈458 checkpoints and δ≈17-23 min at r=1 for Figure 4;
	// ≈1163 checkpoints and δ≈6.6-7.2 min for Figure 6 (√10 ratio).
	if fig4.CheckpointsAtR1 < 400 || fig4.CheckpointsAtR1 > 520 {
		t.Errorf("fig4 checkpoints at r=1: %v, paper says 458", fig4.CheckpointsAtR1)
	}
	if fig6.CheckpointsAtR1 < 1050 || fig6.CheckpointsAtR1 > 1300 {
		t.Errorf("fig6 checkpoints at r=1: %v, paper says 1163", fig6.CheckpointsAtR1)
	}
	// The paper quotes δ = 22.9 and 7.2 min — exactly √(2cΘ), the leading
	// (Young) term, whose ratio is √10. Daly's correction terms shrink
	// the full-formula ratio toward ≈2.5; accept that band and check the
	// Young-term ratio exactly.
	ratio := fig4.DeltaAtR1 / fig6.DeltaAtR1
	if ratio < 2.2 || ratio > 3.5 {
		t.Errorf("delta ratio fig4/fig6 = %v, want in [2.2, 3.5] (paper's leading term gives √10)", ratio)
	}
	cfgs := Figure456Configs()
	_, mtbf4 := model.SystemRates(mustPart(t, cfgs[0].N, 1),
		model.RedundantTime(cfgs[0].Work, cfgs[0].Alpha, 1), cfgs[0].NodeMTBF, model.ReliabilityLinearized)
	young4 := model.YoungInterval(cfgs[0].CheckpointCost, mtbf4)
	young6 := model.YoungInterval(cfgs[2].CheckpointCost, mtbf4)
	if math.Abs(young4/model.Minute-22.9) > 1.0 {
		t.Errorf("fig4 Young δ = %.1f min, paper annotation says 22.9", young4/model.Minute)
	}
	if math.Abs(young6/model.Minute-7.2) > 0.5 {
		t.Errorf("fig6 Young δ = %.1f min, paper annotation says 7.2", young6/model.Minute)
	}
	// "a redundancy level of 2 is the best choice in all cases".
	for _, fc := range []FigureCurve{fig4, fig5, fig6} {
		if fc.BestDegree < 1.9 || fc.BestDegree > 2.3 {
			t.Errorf("%s best degree %v, want ≈2", fc.Figure.ID, fc.BestDegree)
		}
		if fc.TMin >= fc.TR1 && !math.IsInf(fc.TR1, 1) {
			t.Errorf("%s: redundancy does not beat 1x (Tmin %v, Tr1 %v)",
				fc.Figure.ID, fc.TMin, fc.TR1)
		}
	}
	// Figure 6's cheap checkpoints make its r=1 total far below fig4's.
	if !(fig6.TR1 < fig4.TR1) {
		t.Errorf("fig6 TR1 %v should undercut fig4 TR1 %v", fig6.TR1, fig4.TR1)
	}
}

func TestTable4Reproduction(t *testing.T) {
	p := DefaultTable4Params()
	p.Runs = 120
	res, err := Table4(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Minutes) != len(MTBFHours) {
		t.Fatalf("rows %d", len(res.Minutes))
	}
	// Shape target 1: at 6 h MTBF, high redundancy wins (paper: 3x best).
	if res.BestDegree[0] < 2.5 {
		t.Errorf("6h best degree %v, paper found 3x", res.BestDegree[0])
	}
	// Shape target 2: at 24-30 h, ≈2x is the sweet spot and 3x is worse
	// than 2x.
	for _, i := range []int{3, 4} {
		if res.BestDegree[i] < 1.75 || res.BestDegree[i] > 2.6 {
			t.Errorf("%vh best degree %v, paper found 2x", MTBFHours[i], res.BestDegree[i])
		}
		if res.Minutes[i][8] <= res.Minutes[i][4] {
			t.Errorf("%vh: T(3x)=%v should exceed T(2x)=%v",
				MTBFHours[i], res.Minutes[i][8], res.Minutes[i][4])
		}
	}
	// Shape target 3: every row improves from 1x to its best degree by a
	// large margin (paper: 275→123, 136→66).
	for i := range res.Minutes {
		best := res.Minutes[i][0]
		for _, v := range res.Minutes[i] {
			if v < best {
				best = v
			}
		}
		if best > 0.75*res.Minutes[i][0] {
			t.Errorf("row %v: best %v not clearly below 1x %v", MTBFHours[i], best, res.Minutes[i][0])
		}
	}
	// Shape target 4 (observation 4): 1.25x does not beat 1x by much —
	// the overhead jump eats the reliability gain. Allow it to be equal
	// or worse at the low-failure-rate end.
	last := len(MTBFHours) - 1
	if res.Minutes[last][1] < 0.85*res.Minutes[last][0] {
		t.Errorf("30h: 1.25x (%v) unexpectedly far below 1x (%v)",
			res.Minutes[last][1], res.Minutes[last][0])
	}
}

func TestTable4MatchesPaperWithinBand(t *testing.T) {
	// Quantitative closeness: mean relative deviation from the published
	// Table 4 within a generous band (the paper itself reports model-vs-
	// observed deviations; our simulator replays their injected process).
	p := DefaultTable4Params()
	p.Runs = 150
	res, err := Table4(p)
	if err != nil {
		t.Fatal(err)
	}
	var devSum float64
	var cells int
	for i := range res.Minutes {
		for j := range res.Minutes[i] {
			paper := PaperTable4Minutes[i][j]
			devSum += math.Abs(res.Minutes[i][j]-paper) / paper
			cells++
		}
	}
	meanDev := devSum / float64(cells)
	if meanDev > 0.45 {
		t.Errorf("mean relative deviation from paper Table 4 = %.2f, want < 0.45", meanDev)
	}
	t.Logf("mean relative deviation from published Table 4: %.3f", meanDev)
}

func TestTable5StaticRows(t *testing.T) {
	tab, fig := Table5()
	if len(tab.Rows) != 9 || len(fig.Series) != 2 {
		t.Fatalf("rows %d series %d", len(tab.Rows), len(fig.Series))
	}
	// Eq. 1 row at 3x: 1.4·46 ≈ 64 min, matching the paper's printed
	// "expected linear increase" row.
	lin := fig.Series[1].Y
	if math.Abs(lin[8]-64.4) > 0.5 {
		t.Errorf("linear 3x = %v, want ≈64", lin[8])
	}
	// Observed exceeds linear at every partial degree.
	obs := fig.Series[0].Y
	for i := 1; i < len(obs); i++ {
		if obs[i] < lin[i] {
			t.Errorf("degree %v: observed %v below linear %v", Degrees[i], obs[i], lin[i])
		}
	}
	// Observation (4): the first step's jump exceeds the second's.
	if obs[1]-obs[0] <= obs[2]-obs[1] {
		t.Errorf("first-step jump %v not larger than second %v", obs[1]-obs[0], obs[2]-obs[1])
	}
}

func TestObservedRedundantTimeInterpolation(t *testing.T) {
	mustObserved := func(r float64) float64 {
		t.Helper()
		got, err := observedRedundantTime(r)
		if err != nil {
			t.Fatalf("r=%v: %v", r, err)
		}
		return got
	}
	// Exact at the measured boundaries.
	if got := mustObserved(1); got != 46*model.Minute {
		t.Errorf("r=1: %v", got)
	}
	if got := mustObserved(3); got != 82*model.Minute {
		t.Errorf("r=3: %v", got)
	}
	// Interpolated between 1x (46) and 1.25x (55).
	got := mustObserved(1.125)
	want := 50.5 * model.Minute
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("r=1.125: %v, want %v", got, want)
	}
	// Interpolated between 2.5x (76) and 2.75x (78).
	got = mustObserved(2.6)
	want = 76.8 * model.Minute
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("r=2.6: %v, want %v", got, want)
	}
	// Clamped beyond the sweep.
	if got := mustObserved(3.5); got != 82*model.Minute {
		t.Errorf("r=3.5: %v", got)
	}
}

func TestObservedRedundantTimeRejectsOutOfRange(t *testing.T) {
	// Degrees below the measured range used to fall through to silent
	// extrapolation; they must error now.
	for _, r := range []float64{0, 0.5, 0.999, -1, math.NaN()} {
		if _, err := observedRedundantTime(r); err == nil {
			t.Errorf("r=%v accepted", r)
		}
	}
}

func TestFigure11SimplifiedModel(t *testing.T) {
	f, minutes, err := Figure11(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != len(MTBFHours) || len(minutes) != len(MTBFHours) {
		t.Fatalf("series %d", len(f.Series))
	}
	// 1x at 6h lands near the hand calculation (≈220 min).
	if minutes[0][0] < 180 || minutes[0][0] > 260 {
		t.Errorf("modeled 1x@6h = %v min", minutes[0][0])
	}
	// Modeled curves drop from 1x to 2x at every MTBF (the paper's
	// Figure 11 shape).
	for i := range minutes {
		if minutes[i][4] >= minutes[i][0] {
			t.Errorf("MTBF %vh: model says 2x (%v) no better than 1x (%v)",
				MTBFHours[i], minutes[i][4], minutes[i][0])
		}
	}
}

func TestFigure12Fit(t *testing.T) {
	p := DefaultTable4Params()
	p.Runs = 100
	t4, err := Table4(p)
	if err != nil {
		t.Fatal(err)
	}
	_, modelMinutes, err := Figure11(0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Figure12(t4, modelMinutes, nil)
	if err != nil {
		t.Fatal(err)
	}
	// "a Q-Q plot of the modeled and observed values indicates a close
	// fit": correlation near 1.
	if res.QQCorrelation < 0.9 {
		t.Errorf("Q-Q correlation %v, want > 0.9", res.QQCorrelation)
	}
	if res.MeanRelDeviation > 0.5 {
		t.Errorf("mean relative deviation %v", res.MeanRelDeviation)
	}
	if len(res.Figure.Series) != 6 {
		t.Errorf("series %d, want 3 MTBFs × (observed+model)", len(res.Figure.Series))
	}
}

func TestScalingFigure13(t *testing.T) {
	res, err := Scaling(DefaultScalingParams(), 30000, "fig13")
	if err != nil {
		t.Fatal(err)
	}
	// Crossover ordering and ballpark: both in the thousands, 1x/2x
	// before 1x/3x (paper: 4,351 and 12,551).
	if res.Crossover12 <= 0 || res.Crossover12 > 200_000 {
		t.Errorf("1x/2x crossover %d out of plausible range", res.Crossover12)
	}
	if res.Crossover13 <= res.Crossover12 {
		t.Errorf("1x/3x crossover %d not after 1x/2x %d", res.Crossover13, res.Crossover12)
	}
	// At the top of the Figure 13 range, 2x must beat 1x.
	last := res.Figure.Series
	oneX, twoX := seriesByName(t, last, "1x"), seriesByName(t, last, "2x")
	n := len(oneX.Y) - 1
	if oneX.Y[n] > 0 && oneX.Y[n] < twoX.Y[n] {
		t.Errorf("at N=30k, 1x (%vh) still beats 2x (%vh)", oneX.Y[n], twoX.Y[n])
	}
}

func TestScalingFigure14(t *testing.T) {
	res, err := Scaling(DefaultScalingParams(), 200000, "fig14")
	if err != nil {
		t.Fatal(err)
	}
	// The two-jobs-for-one point exists and follows the crossover.
	if res.TwoForOne <= res.Crossover12 {
		t.Errorf("two-for-one %d not beyond crossover %d", res.TwoForOne, res.Crossover12)
	}
	// 3x eventually beats 2x, far beyond the 1x crossovers (paper:
	// 771,251).
	if res.Crossover23 <= res.Crossover13 {
		t.Errorf("2x/3x crossover %d not beyond 1x/3x %d", res.Crossover23, res.Crossover13)
	}
	t.Logf("crossovers: 1x/2x=%d 1x/3x=%d two-for-one=%d 2x/3x=%d",
		res.Crossover12, res.Crossover13, res.TwoForOne, res.Crossover23)
}

func mustPart(t *testing.T, n int, r float64) model.Partition {
	t.Helper()
	p, err := model.PartitionRanks(n, r)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func seriesByName(t *testing.T, ss []Series, name string) Series {
	t.Helper()
	for _, s := range ss {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("series %q not found", name)
	return Series{}
}

func TestRenderTableAndCSV(t *testing.T) {
	tab := &Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "two,with comma"}},
		Notes:  []string{"note line"},
	}
	out := tab.Format()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "note line") {
		t.Fatalf("format:\n%s", out)
	}
	csv := tab.CSV()
	if !strings.Contains(csv, "\"two,with comma\"") {
		t.Fatalf("csv:\n%s", csv)
	}
}

func TestRenderFigure(t *testing.T) {
	f := &Figure{
		ID: "y", Title: "fig", XLabel: "x", YLabel: "y",
		Series: []Series{{Name: "s", X: []float64{1, 2}, Y: []float64{3.5, 1e6}}},
	}
	out := f.Format()
	if !strings.Contains(out, "3.500") || !strings.Contains(out, "1000000") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestLogGrid(t *testing.T) {
	g := logGrid(100, 30000, 8)
	if g[0] != 100 || g[len(g)-1] != 30000 {
		t.Fatalf("grid endpoints %v", g)
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Fatalf("grid not increasing: %v", g)
		}
	}
}
