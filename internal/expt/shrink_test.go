package expt

import (
	"strings"
	"testing"
)

// TestShrinkVsRestartShape pins the analytic table's structure and its
// headline facts: shrink wins every cell where it is feasible, both
// policies die together at the 0.02y boundary, and the r=2 episode
// column is far below the r=1 one at the same MTBF.
func TestShrinkVsRestartShape(t *testing.T) {
	tab, err := ShrinkVsRestart()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d, want 12 (6 MTBFs × 2 degrees)", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		winner := row[len(row)-1]
		shrinkT := row[3]
		switch {
		case shrinkT == "never" && winner == "shrink":
			t.Errorf("row %v: infeasible shrink declared winner", row)
		case shrinkT != "never" && winner != "shrink":
			t.Errorf("row %v: feasible shrink lost — the malleable-work model should dominate", row)
		}
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "0.02y" || last[len(last)-1] != "neither" {
		t.Errorf("boundary row %v: want both policies infeasible at 0.02y", last)
	}
}

// TestShrinkLiveDeterministicColumns runs the live comparison and pins
// every deterministic cell: one restart and a restore on the rollback
// arm, one shrink episode and structurally zero restores on the other.
func TestShrinkLiveDeterministicColumns(t *testing.T) {
	tab, err := ShrinkLive(DefaultShrinkLiveParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	restart, shrink := tab.Rows[0], tab.Rows[1]
	if restart[0] != "checkpoint/restart" || shrink[0] != "shrink-and-continue" {
		t.Fatalf("row order: %q, %q", restart[0], shrink[0])
	}
	if restart[1] != "1" {
		t.Errorf("restart arm restarts = %s, want 1", restart[1])
	}
	if restart[2] == "0" {
		t.Errorf("restart arm restored nothing: %v", restart)
	}
	if restart[3] != "0" {
		t.Errorf("restart arm shrink episodes = %s, want 0", restart[3])
	}
	if shrink[1] != "0" || shrink[2] != "0" {
		t.Errorf("shrink arm rolled back: %v", shrink)
	}
	if shrink[3] != "1" {
		t.Errorf("shrink arm episodes = %s, want 1", shrink[3])
	}
	if !strings.Contains(tab.Format(), "shrinklive") {
		t.Error("table did not render its id")
	}
}
