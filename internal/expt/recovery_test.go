package expt

import (
	"strconv"
	"testing"
)

// TestRecoveryPartialBeatsFull pins the experiment's headline: on the
// same deterministic kill schedule the partial-restart row recomputes
// strictly fewer steps than the full-restart row.
func TestRecoveryPartialBeatsFull(t *testing.T) {
	tab, err := Recovery(DefaultRecoveryParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	full, partial := tab.Rows[0], tab.Rows[1]
	if full[0] != "full restart" || partial[0] != "partial restart" {
		t.Fatalf("row order: %q, %q", full[0], partial[0])
	}
	if full[1] != "1" || full[2] != "0" {
		t.Fatalf("full row restarts: %v", full)
	}
	if partial[1] != "0" || partial[2] != "1" {
		t.Fatalf("partial row restarts: %v", partial)
	}
	fullSteps, err := strconv.Atoi(full[3])
	if err != nil {
		t.Fatal(err)
	}
	partialSteps, err := strconv.Atoi(partial[3])
	if err != nil {
		t.Fatal(err)
	}
	if partialSteps == 0 || partialSteps >= fullSteps {
		t.Fatalf("recomputed steps: partial=%d full=%d; partial must be strictly cheaper",
			partialSteps, fullSteps)
	}
}
