package expt

import (
	"fmt"

	"repro/internal/model"
)

// Table1 reproduces the paper's background Table 1, the reliability
// survey of HPC clusters (static reference data from Hsu & Feng via the
// paper; included so the harness covers every numbered artefact).
func Table1() *Table {
	return &Table{
		ID:     "table1",
		Title:  "Reliability of HPC Clusters (survey, static)",
		Header: []string{"System", "# CPUs", "MTBF/I"},
		Rows: [][]string{
			{"ASCI Q", "8,192", "6.5 hrs"},
			{"ASCI White", "8,192", "5/40 hrs ('01/'03)"},
			{"PSC Lemieux", "3,016", "9.7 hrs"},
			{"Google", "15,000", "20 reboots/day"},
			{"ASC BG/L", "212,992", "6.9 hrs (LLNL est.)"},
		},
		Notes: []string{"verbatim survey data; not produced by the model"},
	}
}

// BreakdownParams configures the Table 2/3 work-breakdown generators.
type BreakdownParams struct {
	// Work is the job's useful computation time in seconds.
	Work float64
	// NodeMTBF is the per-node MTBF in seconds.
	NodeMTBF float64
	// CheckpointCost and RestartCost in seconds.
	CheckpointCost float64
	RestartCost    float64
	// Alpha is the communication fraction (only used via Eq. 1 at r=1,
	// where it has no effect; kept for completeness).
	Alpha float64
}

// DefaultBreakdownParams mirrors the Sandia study's regime: multi-minute
// coordinated checkpoint dumps and a 10-minute restart.
func DefaultBreakdownParams() BreakdownParams {
	return BreakdownParams{
		Work:           168 * model.Hour,
		NodeMTBF:       5 * model.Year,
		CheckpointCost: 5 * model.Minute,
		RestartCost:    10 * model.Minute,
		Alpha:          0.2,
	}
}

// Table2 reproduces Table 2: the work / checkpoint / recompute / restart
// split of a 168-hour job at 5-year node MTBF as the node count grows
// from 100 to 100,000, computed from the Eq. 14 terms at r = 1.
func Table2(p BreakdownParams) (*Table, []model.Breakdown, error) {
	ns := []int{100, 1000, 10000, 100000}
	t := &Table{
		ID:     "table2",
		Title:  "168-hour Job, 5 year MTBF — time breakdown vs node count",
		Header: []string{"# Nodes", "work", "checkpt", "recomp.", "restart"},
	}
	breakdowns := make([]model.Breakdown, 0, len(ns))
	for _, n := range ns {
		params := model.Params{
			N:              n,
			Work:           p.Work,
			Alpha:          p.Alpha,
			NodeMTBF:       p.NodeMTBF,
			CheckpointCost: p.CheckpointCost,
			RestartCost:    p.RestartCost,
		}
		b, err := model.WorkBreakdown(params, 1, model.Options{})
		if err != nil {
			return nil, nil, fmt.Errorf("table2 N=%d: %w", n, err)
		}
		breakdowns = append(breakdowns, b)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			formatPct(b.Work), formatPct(b.Checkpoint),
			formatPct(b.Recompute), formatPct(b.Restart),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"c = %.0fs, R = %.0fs, Daly interval; paper reports 96/92/75/35%% work",
		p.CheckpointCost, p.RestartCost))
	return t, breakdowns, nil
}

// Table3 reproduces Table 3: the same breakdown for a 100k-node job at
// (168 h, 5 yr), (700 h, 5 yr) and (5000 h, 1 yr).
func Table3(p BreakdownParams) (*Table, []model.Breakdown, error) {
	cases := []struct {
		work float64
		mtbf float64
	}{
		{168 * model.Hour, 5 * model.Year},
		{700 * model.Hour, 5 * model.Year},
		{5000 * model.Hour, 1 * model.Year},
	}
	t := &Table{
		ID:     "table3",
		Title:  "100k-node Job, varied MTBF — time breakdown",
		Header: []string{"job work", "MTBF", "work", "checkpt", "recomp.", "restart"},
	}
	breakdowns := make([]model.Breakdown, 0, len(cases))
	for _, tc := range cases {
		params := model.Params{
			N:              100000,
			Work:           tc.work,
			Alpha:          p.Alpha,
			NodeMTBF:       tc.mtbf,
			CheckpointCost: p.CheckpointCost,
			RestartCost:    p.RestartCost,
		}
		b, err := model.WorkBreakdown(params, 1, model.Options{})
		if err != nil {
			// The (5000 h, 1 yr) row may never complete under the full
			// model — exactly the paper's point that "useful work becomes
			// insignificant". Report it as a starved row.
			breakdowns = append(breakdowns, model.Breakdown{})
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.0f hrs", tc.work/model.Hour),
				fmt.Sprintf("%.0f yrs", tc.mtbf/model.Year),
				"-", "-", "-", "≈100% (never completes)",
			})
			continue
		}
		breakdowns = append(breakdowns, b)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f hrs", tc.work/model.Hour),
			fmt.Sprintf("%.0f yrs", tc.mtbf/model.Year),
			formatPct(b.Work), formatPct(b.Checkpoint),
			formatPct(b.Recompute), formatPct(b.Restart),
		})
	}
	t.Notes = append(t.Notes,
		"paper reports 35/38/5% work for the three rows; restart dominates")
	return t, breakdowns, nil
}
