package expt

import (
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/model"
)

// Table5 reproduces Table 5 / Figure 10: failure-free execution time as
// the redundancy degree grows, comparing the paper's observed cluster
// measurements against the Eq. 1 linear expectation (the paper's
// "expected linear increase" row is Eq. 1 with t = 46 min, α = 0.2).
func Table5() (*Table, *Figure) {
	t := &Table{
		ID:     "table5",
		Title:  "Increase in Execution Time with Redundancy (failure-free, minutes)",
		Header: []string{"Degree", "Observed (paper)", "Expected linear (Eq. 1)"},
	}
	f := &Figure{
		ID:     "fig10",
		Title:  "Increase in Execution Time with Redundancy",
		XLabel: "degree",
		YLabel: "minutes",
		Series: []Series{
			{Name: "observed"},
			{Name: "linear (Eq. 1)"},
		},
	}
	for i, d := range Degrees {
		linear := model.RedundantTime(46*model.Minute, 0.2, d) / model.Minute
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%gx", d),
			fmt.Sprintf("%.0f", PaperObservedRedundantMinutes[i]),
			fmt.Sprintf("%.0f", linear),
		})
		f.Series[0].X = append(f.Series[0].X, d)
		f.Series[0].Y = append(f.Series[0].Y, PaperObservedRedundantMinutes[i])
		f.Series[1].X = append(f.Series[1].X, d)
		f.Series[1].Y = append(f.Series[1].Y, linear)
	}
	t.Notes = append(t.Notes,
		"observed exceeds linear most at the first partial step (1x→1.25x), the paper's observation (4)")
	return t, f
}

// Table5LiveParams configures the live functional-stack measurement of
// the redundancy overhead (the in-process analogue of the paper's
// separate failure-free experiment).
type Table5LiveParams struct {
	// Ranks is the virtual process count.
	Ranks int
	// Grid sizes the CG problem (grid² unknowns).
	Grid int
	// Iterations per run.
	Iterations int
	// SendDelay emulates wire latency so communication is a realistic
	// fraction of runtime and dilates with the degree (Eq. 1).
	SendDelay time.Duration
	// ComputeDelay emulates per-iteration computation.
	ComputeDelay time.Duration
	// Degrees to measure; nil uses the standard sweep.
	Degrees []float64
}

// DefaultTable5LiveParams keeps the measurement under ~20 s total.
func DefaultTable5LiveParams() Table5LiveParams {
	return Table5LiveParams{
		Ranks:        8,
		Grid:         8,
		Iterations:   40,
		SendDelay:    100 * time.Microsecond,
		ComputeDelay: 2 * time.Millisecond,
		Degrees:      Degrees,
	}
}

// Table5Live measures failure-free runtime at each degree by actually
// running CG through the full redundancy stack, returning seconds per
// degree alongside the rendered table.
func Table5Live(p Table5LiveParams) (*Table, []float64, error) {
	if p.Degrees == nil {
		p.Degrees = Degrees
	}
	m, err := apps.Laplacian2D(p.Grid)
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		ID:     "table5-live",
		Title:  "Measured failure-free runtime vs degree (functional stack)",
		Header: []string{"Degree", "Elapsed", "Physical ranks", "Physical sends"},
	}
	secs := make([]float64, 0, len(p.Degrees))
	for _, degree := range p.Degrees {
		res, err := core.Run(core.Config{
			Ranks:          p.Ranks,
			Degree:         degree,
			SendDelay:      p.SendDelay,
			ComputeDelay:   p.ComputeDelay,
			AttemptTimeout: 5 * time.Minute,
		}, func() apps.App { return &apps.CG{Matrix: m, Iterations: p.Iterations} })
		if err != nil {
			return nil, nil, fmt.Errorf("table5-live r=%v: %w", degree, err)
		}
		secs = append(secs, res.Elapsed.Seconds())
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%gx", degree),
			res.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", res.PhysicalRanks),
			fmt.Sprintf("%d", res.Redundancy.PhysicalSends),
		})
	}
	t.Notes = append(t.Notes,
		"runtime and message count dilate with degree as Eq. 1 predicts")
	return t, secs, nil
}
