// Package expt generates every table and figure of the paper's
// evaluation: the background work-breakdown tables (Tables 2-3), the
// reliability and completion-time model plots (Figures 2, 4-6, 11), the
// combined C/R + redundancy experiment matrix (Table 4 / Figures 8-9),
// the failure-free redundancy overhead (Table 5 / Figure 10), the
// observed-versus-modeled comparison with its Q-Q fit (Figure 12), and
// the weak-scaling crossover analysis (Figures 13-14). Each generator
// returns structured data plus an ASCII/CSV rendering, so cmd/paperbench
// can print the same rows the paper reports and tests can assert on the
// numbers.
package expt

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a rendered experiment table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Format renders the table as aligned ASCII.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quoted minimally).
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Header)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, cell := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(cell, ",\"\n") {
			b.WriteString(strconv.Quote(cell))
		} else {
			b.WriteString(cell)
		}
	}
	b.WriteByte('\n')
}

// Series is one line of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a rendered experiment figure: the series data the paper
// plots, printed as aligned columns.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Format renders the figure's series as a column-aligned data block,
// assuming all series share X (true for every generator here).
func (f *Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "x = %s, y = %s\n", f.XLabel, f.YLabel)
	if len(f.Series) == 0 {
		return b.String()
	}
	header := append([]string{f.XLabel}, seriesNames(f.Series)...)
	rows := make([][]string, 0, len(f.Series[0].X))
	for i := range f.Series[0].X {
		row := []string{formatNum(f.Series[0].X[i])}
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, formatNum(s.Y[i]))
			} else {
				row = append(row, "")
			}
		}
		rows = append(rows, row)
	}
	tab := Table{Header: header, Rows: rows}
	// Reuse the table layout minus its title line.
	formatted := tab.Format()
	if idx := strings.IndexByte(formatted, '\n'); idx >= 0 {
		formatted = formatted[idx+1:]
	}
	b.WriteString(formatted)
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func seriesNames(ss []Series) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name
	}
	return out
}

func formatNum(v float64) string {
	abs := v
	if abs < 0 {
		abs = -abs
	}
	switch {
	case v == float64(int64(v)) && abs < 1e15:
		return strconv.FormatInt(int64(v), 10)
	case abs >= 1000:
		return strconv.FormatFloat(v, 'f', 1, 64)
	case abs >= 1:
		return strconv.FormatFloat(v, 'f', 3, 64)
	default:
		return strconv.FormatFloat(v, 'g', 4, 64)
	}
}

func formatPct(v float64) string {
	return strconv.Itoa(int(v*100+0.5)) + "%"
}

func formatMinutes(seconds float64) string {
	return strconv.Itoa(int(seconds/60 + 0.5))
}
