package expt

import (
	"fmt"
	"math"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/model"
)

// ShrinkVsRestart renders the analytic shrink-vs-restart comparison on
// the Figure 4 exascale configuration (100k processes, 128h job,
// c = R = 600s): for each node MTBF and redundancy degree, the Eq. 14
// checkpoint/restart total next to the shrink-and-continue total of
// model.EvaluateShrink, with the expected episode count and surviving
// capacity. Pure model — byte-deterministic and golden-tested.
func ShrinkVsRestart() (*Table, error) {
	base := model.Params{
		N: 100000, Work: 128 * model.Hour, Alpha: 0.2,
		CheckpointCost: 600, RestartCost: 600,
	}
	t := &Table{
		ID:    "shrinkcmp",
		Title: "Checkpoint/restart (Eq. 14) vs shrink-and-continue, malleable work",
		Header: []string{
			"MTBF/node", "r", "T restart (h)", "T shrink (h)",
			"episodes", "surviving", "winner",
		},
	}
	mtbfs := []struct {
		label string
		theta float64
	}{
		{"25y", 25 * model.Year},
		{"5y", 5 * model.Year},
		{"1y", 1 * model.Year},
		{"0.5y", 0.5 * model.Year},
		{"0.1y", 0.1 * model.Year},
		{"0.02y", 0.02 * model.Year},
	}
	for _, m := range mtbfs {
		for _, r := range []float64{1, 2} {
			p := base
			p.NodeMTBF = m.theta
			re, reErr := model.Evaluate(p, r, model.Options{})
			sh, shErr := model.EvaluateShrink(p, r)
			row := []string{m.label, fmt.Sprintf("%g", r)}
			row = append(row, hoursCell(re.Total, reErr), hoursCell(sh.Total, shErr))
			if shErr == nil {
				row = append(row,
					fmt.Sprintf("%.1f", sh.Episodes),
					fmt.Sprintf("%.2f%%", 100*sh.SurvivingFraction))
			} else {
				row = append(row, "-", "0%")
			}
			switch {
			case reErr != nil && shErr != nil:
				row = append(row, "neither")
			case shErr != nil:
				row = append(row, "restart")
			case reErr != nil || sh.Total < re.Total:
				row = append(row, "shrink")
			default:
				row = append(row, "restart")
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"shrink pays one rank of capacity plus an R-length repair per episode; restart pays a global rollback (Eq. 13) per failure",
		"for malleable work shrink dominates wherever feasible; the stateful apps behind Figures 4-6 cannot shrink and keep paying Eq. 14",
		"redundancy still earns its keep under shrink: it divides the episode count, not the completion time")
	return t, nil
}

func hoursCell(seconds float64, err error) string {
	if err != nil || math.IsInf(seconds, 1) {
		return "never"
	}
	return fmt.Sprintf("%.1f", seconds/model.Hour)
}

// ShrinkLiveParams configures the live shrink-vs-restart run: the same
// deterministic whole-sphere kill replayed under both recovery
// policies on a dual-redundant Jacobi stencil.
type ShrinkLiveParams struct {
	// Ranks is the virtual process count (degree is fixed at 2).
	Ranks int
	// Grid sizes the stencil (Grid × Grid including boundary).
	Grid int
	// Iterations is the relaxation count.
	Iterations int
	// StepInterval is the checkpoint cadence for the restart arm (the
	// shrink arm takes no checkpoints by construction).
	StepInterval int
	// Kills is the step-triggered schedule; the default exhausts one
	// interior sphere mid-run.
	Kills []core.StepKill
	// ComputeDelay emulates per-iteration computation.
	ComputeDelay time.Duration
}

// DefaultShrinkLiveParams kills both replicas of virtual rank 2
// (physical ranks 4 and 5) at step 6 of a 25-iteration stencil.
func DefaultShrinkLiveParams() ShrinkLiveParams {
	return ShrinkLiveParams{
		Ranks:        4,
		Grid:         14,
		Iterations:   25,
		StepInterval: 5,
		Kills:        []core.StepKill{{Step: 6, Rank: 4}, {Step: 6, Rank: 5}},
		ComputeDelay: 100 * time.Microsecond,
	}
}

// ShrinkLive runs the same deterministic sphere kill under the restart
// policy (checkpoint, tear down, re-execute) and under ULFM-style
// shrink-and-continue (survivors repair the communicator and
// re-decompose the grid), and tabulates what each policy did. Every
// column except elapsed is deterministic.
func ShrinkLive(p ShrinkLiveParams) (*Table, error) {
	factory := func() apps.App {
		return &apps.Stencil{Width: p.Grid, Height: p.Grid, Iterations: p.Iterations, HotBoundary: 1}
	}
	t := &Table{
		ID:    "shrinklive",
		Title: "Restart vs shrink-and-continue on one deterministic sphere kill (live)",
		Header: []string{
			"Policy", "Restarts", "Restores", "Shrink episodes", "Elapsed",
		},
	}
	for _, arm := range []struct {
		name   string
		policy core.RecoveryPolicy
	}{
		{"checkpoint/restart", core.RecoverRestart},
		{"shrink-and-continue", core.RecoverShrink},
	} {
		cfg := core.Config{
			Ranks:          p.Ranks,
			Degree:         2,
			RecoveryPolicy: arm.policy,
			StepKills:      p.Kills,
			AttemptTimeout: 5 * time.Minute,
			ComputeDelay:   p.ComputeDelay,
		}
		if arm.policy == core.RecoverRestart {
			cfg.StepInterval = p.StepInterval
			cfg.MaxRestarts = 3
		}
		res, err := core.Run(cfg, factory)
		if err != nil {
			return nil, fmt.Errorf("shrinklive %s: %w", arm.name, err)
		}
		if !res.Completed {
			return nil, fmt.Errorf("shrinklive %s: job did not complete", arm.name)
		}
		t.Rows = append(t.Rows, []string{
			arm.name,
			fmt.Sprintf("%d", res.Restarts),
			fmt.Sprintf("%d", res.Metrics.Counter("checkpoint_restores_total")),
			fmt.Sprintf("%d", res.ShrinkEpisodes),
			res.Elapsed.Round(time.Millisecond).String(),
		})
	}
	t.Notes = append(t.Notes,
		"same kill schedule: the restart arm rolls every rank back to a checkpoint, the shrink arm re-decomposes the grid over the survivors",
		"the shrink arm's zero-restores column is structural — it never opened a checkpoint store")
	return t, nil
}
