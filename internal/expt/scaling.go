package expt

import (
	"fmt"
	"math"

	"repro/internal/model"
)

// ScalingParams configures the Figures 13-14 weak-scaling analysis. The
// paper omits its parameters; these defaults are the calibrated
// configuration whose crossovers land nearest the published process
// counts (see model.Calibrate and EXPERIMENTS.md).
type ScalingParams struct {
	Work           float64
	Alpha          float64
	NodeMTBF       float64
	CheckpointCost float64
	RestartCost    float64
	// Degrees are the curves to plot.
	Degrees []float64
	// Parallelism is the worker count for the process-count grid and the
	// crossover searches; zero means GOMAXPROCS. Results are identical at
	// every setting.
	Parallelism int
}

// DefaultScalingParams returns the calibrated Figure 13/14 configuration:
// c = 600 s and θ = 5 years — the same values recovered from the
// Figure 4 annotations — put the 1x/2x crossover at N = 4,313 and the
// 1x/3x crossover at N = 12,367 against the paper's published 4,351 and
// 12,551 (model.Calibrate grid search; see EXPERIMENTS.md).
func DefaultScalingParams() ScalingParams {
	return ScalingParams{
		Work:           128 * model.Hour,
		Alpha:          0.2,
		NodeMTBF:       5 * model.Year,
		CheckpointCost: 600,
		RestartCost:    10 * model.Minute,
		Degrees:        []float64{1, 1.5, 2, 2.5, 3},
	}
}

func (p ScalingParams) modelParams(n int) model.Params {
	return model.Params{
		N:              n,
		Work:           p.Work,
		Alpha:          p.Alpha,
		NodeMTBF:       p.NodeMTBF,
		CheckpointCost: p.CheckpointCost,
		RestartCost:    p.RestartCost,
	}
}

// ScalingResult is the weak-scaling curve set plus the crossover and
// throughput annotations of Figures 13-14.
type ScalingResult struct {
	Figure *Figure
	// Crossover12 and Crossover13 are the process counts where 2x and 3x
	// first beat 1x (paper: 4,351 and 12,551).
	Crossover12, Crossover13 int
	// Crossover23 is where 3x first beats 2x (paper: ≈771,251, beyond the
	// plotted range).
	Crossover23 int
	// TwoForOne is where T(1x) ≥ 2·T(2x), the "two 128-hour jobs in the
	// time of one" point (paper: ≈78,536).
	TwoForOne int
}

// logGrid builds a roughly logarithmic process-count grid over [lo, hi].
func logGrid(lo, hi, pointsPerDecade int) []int {
	var out []int
	ratio := math.Pow(10, 1/float64(pointsPerDecade))
	prev := 0
	for x := float64(lo); x <= float64(hi)*1.0001; x *= ratio {
		n := int(math.Round(x))
		if n > prev {
			out = append(out, n)
			prev = n
		}
	}
	if prev < hi {
		out = append(out, hi)
	}
	return out
}

// Scaling computes the modeled wallclock of the weak-scaled job for each
// degree over process counts up to maxN, with the crossover annotations.
// Use maxN = 30_000 for Figure 13 and 200_000 for Figure 14.
func Scaling(p ScalingParams, maxN int, figID string) (*ScalingResult, error) {
	if p.Degrees == nil {
		p.Degrees = DefaultScalingParams().Degrees
	}
	workers := resolveParallelism(p.Parallelism)
	ns := logGrid(100, maxN, 8)
	// Each grid point is an independent model evaluation; fan them out
	// across the pool and assemble by index.
	pts := make([]model.ScalingPoint, len(ns))
	err := forEach(workers, len(ns), func(i int) error {
		out, err := model.WeakScalingCurve(p.modelParams(0), ns[i:i+1], p.Degrees, model.Options{})
		if err != nil {
			return err
		}
		pts[i] = out[0]
		return nil
	})
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:     figID,
		Title:  fmt.Sprintf("Modeled Wallclock of a %.0f-hour Job up to %d processes", p.Work/model.Hour, maxN),
		XLabel: "processes",
		YLabel: "hours",
	}
	for _, d := range p.Degrees {
		s := Series{Name: fmt.Sprintf("%gx", d)}
		for _, pt := range pts {
			s.X = append(s.X, float64(pt.N))
			hours := pt.Totals[d] / model.Hour
			if math.IsInf(hours, 1) {
				hours = -1 // sentinel: never completes
			}
			s.Y = append(s.Y, hours)
		}
		f.Series = append(f.Series, s)
	}

	res := &ScalingResult{Figure: f}
	// The four bisection searches are independent; run them concurrently.
	const searchHi = 4_000_000
	searches := []struct {
		dst *int
		run func() (int, error)
	}{
		{&res.Crossover12, func() (int, error) {
			return model.Crossover(p.modelParams(0), 1, 2, 2, searchHi, model.Options{})
		}},
		{&res.Crossover13, func() (int, error) {
			return model.Crossover(p.modelParams(0), 1, 3, 2, searchHi, model.Options{})
		}},
		{&res.Crossover23, func() (int, error) {
			return model.Crossover(p.modelParams(0), 2, 3, 2, 40_000_000, model.Options{})
		}},
		{&res.TwoForOne, func() (int, error) {
			return model.ThroughputBreakEven(p.modelParams(0), 2, 2, 2, searchHi, model.Options{})
		}},
	}
	err = forEach(workers, len(searches), func(i int) error {
		n, err := searches[i].run()
		if err != nil {
			return err
		}
		*searches[i].dst = n
		return nil
	})
	if err != nil {
		return nil, err
	}
	f.Notes = append(f.Notes,
		fmt.Sprintf("1x/2x crossover at N=%d (paper 4,351); 1x/3x at N=%d (paper 12,551)",
			res.Crossover12, res.Crossover13),
		fmt.Sprintf("two-2x-jobs-for-one point at N=%d (paper ≈78,536); 2x/3x crossover at N=%d (paper ≈771,251)",
			res.TwoForOne, res.Crossover23),
		"y = -1 marks configurations that never complete under pure C/R",
	)
	return res, nil
}
