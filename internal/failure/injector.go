// Package failure implements the paper's §5 failure-injection framework:
// a background process that draws per-physical-node failure times from an
// exponential distribution (Poisson arrivals, assumption 3), maintains
// the virtual→physical sphere mapping, kills physical ranks as their
// times arrive, and declares job failure exactly when every physical
// process of some virtual process has died (Fig. 7) — at which point the
// orchestrator tears the job down and restarts from the last checkpoint.
package failure

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
)

// KillTarget is the runtime surface the injector drives; *simmpi.World
// implements it.
type KillTarget interface {
	// Kill fail-stops a physical rank (idempotent).
	Kill(rank int)
}

// Kill records one injected failure.
type Kill struct {
	// Rank is the physical rank killed.
	Rank int
	// After is the offset from injector start.
	After time.Duration
}

// Config configures an injector for one job attempt.
type Config struct {
	// Stream drives the exponential draws. Required unless Schedule is
	// set.
	Stream *stats.Stream
	// NodeMTBF is the per-node mean time to failure (scaled down for
	// laptop-scale experiments, as the paper scales its cluster MTBFs).
	// Required unless Schedule is set.
	NodeMTBF time.Duration
	// Horizon stops generating failures past this offset; zero means no
	// bound (failures keep arriving until Stop).
	Horizon time.Duration
	// Schedule, when non-nil, replaces random generation with an explicit
	// deterministic kill list (for tests).
	Schedule []Kill
	// Obs, when non-nil, counts injections: failure_kills_total plus
	// per-node and per-sphere breakdowns
	// (failure_kills_node_<p>_total, failure_kills_sphere_<v>_total).
	Obs *obs.Registry
	// Trace, when non-nil, receives one "kill" event per injection
	// (rank = physical rank, sphere = its replica sphere).
	Trace *obs.Tracer
	// Flight, when non-nil, receives one fixed-size "kill" record per
	// injection (arg = kill ordinal) and a "sphere_exhausted" record when
	// a kill empties a replica sphere — the black-box view of why a
	// recovery started.
	Flight *obs.Recorder
}

// Injector drives one job attempt's failures.
type Injector struct {
	target  KillTarget
	spheres [][]int
	cfg     Config

	// sphereOf maps a physical rank to its sphere index; -1 if unmapped.
	sphereOf []int

	// Accounting is O(active failures), never O(world size): dead ranks
	// live in a compact bitset with a side list of the ranks actually
	// killed this epoch, and spheres that lost a replica go on a dirty
	// list — so Rearm after an in-place recovery undoes exactly the
	// kills that happened (two slice walks of length #kills), instead of
	// rebuilding per-sphere state across a 100k-rank world.
	mu          sync.Mutex
	remaining   []int    // live replicas per sphere
	deadWords   []uint64 // bitset of ranks currently counted dead
	deadList    []int    // the set bits of deadWords, in kill order
	dirtySphere []int    // spheres with at least one dead replica this epoch
	log         []Kill
	stopped     bool
	stopCh      chan struct{}
	doneCh      chan struct{}
	jobFailed   chan int // sphere index whose last replica died; capacity 1
	started     bool
}

func bitGet(words []uint64, i int) bool { return words[i>>6]&(1<<(uint(i)&63)) != 0 }

func bitSet(words []uint64, i int)   { words[i>>6] |= 1 << (uint(i) & 63) }
func bitClear(words []uint64, i int) { words[i>>6] &^= 1 << (uint(i) & 63) }

// New creates an injector over the given sphere map (spheres[v] lists the
// physical ranks of virtual rank v, as redundancy.RankMap.Sphere returns).
func New(target KillTarget, spheres [][]int, cfg Config) (*Injector, error) {
	if target == nil {
		return nil, fmt.Errorf("failure: nil target")
	}
	if cfg.Schedule == nil {
		if cfg.Stream == nil {
			return nil, fmt.Errorf("failure: need Stream or explicit Schedule")
		}
		if cfg.NodeMTBF <= 0 {
			return nil, fmt.Errorf("failure: NodeMTBF = %v", cfg.NodeMTBF)
		}
	}
	maxPhys := -1
	for _, sphere := range spheres {
		for _, p := range sphere {
			if p > maxPhys {
				maxPhys = p
			}
		}
	}
	inj := &Injector{
		target:    target,
		spheres:   spheres,
		cfg:       cfg,
		sphereOf:  make([]int, maxPhys+1),
		remaining: make([]int, len(spheres)),
		deadWords: make([]uint64, (maxPhys+64)/64),
		stopCh:    make(chan struct{}),
		doneCh:    make(chan struct{}),
		jobFailed: make(chan int, 1),
	}
	for i := range inj.sphereOf {
		inj.sphereOf[i] = -1
	}
	for v, sphere := range spheres {
		inj.remaining[v] = len(sphere)
		for _, p := range sphere {
			if inj.sphereOf[p] != -1 {
				return nil, fmt.Errorf("failure: physical rank %d in two spheres", p)
			}
			inj.sphereOf[p] = v
		}
	}
	return inj, nil
}

// JobFailed delivers the virtual rank whose sphere was exhausted; the
// channel fires at most once per attempt.
func (inj *Injector) JobFailed() <-chan int { return inj.jobFailed }

// Log returns the kills performed so far, in injection order.
func (inj *Injector) Log() []Kill {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make([]Kill, len(inj.log))
	copy(out, inj.log)
	return out
}

// Failures returns the number of kills performed so far.
func (inj *Injector) Failures() int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return len(inj.log)
}

// Start launches the background killer goroutine. Call Stop to halt it
// and wait for it to exit.
func (inj *Injector) Start() {
	inj.mu.Lock()
	if inj.started {
		inj.mu.Unlock()
		return
	}
	inj.started = true
	inj.mu.Unlock()
	go inj.run()
}

// Stop halts injection and waits for the background goroutine.
func (inj *Injector) Stop() {
	inj.mu.Lock()
	if !inj.started {
		inj.started = true // absorb Start after Stop
		close(inj.doneCh)
		inj.stopped = true
		inj.mu.Unlock()
		return
	}
	if inj.stopped {
		inj.mu.Unlock()
		<-inj.doneCh
		return
	}
	inj.stopped = true
	inj.mu.Unlock()
	close(inj.stopCh)
	<-inj.doneCh
}

// schedule builds the kill sequence: explicit, or one exponential draw
// per physical node (its first failure; nodes are not repaired within an
// attempt, so only the first matters).
func (inj *Injector) schedule() []Kill {
	if inj.cfg.Schedule != nil {
		out := make([]Kill, len(inj.cfg.Schedule))
		copy(out, inj.cfg.Schedule)
		sort.SliceStable(out, func(i, j int) bool { return out[i].After < out[j].After })
		return out
	}
	var kills []Kill
	for _, sphere := range inj.spheres {
		for _, p := range sphere {
			after := time.Duration(inj.cfg.Stream.Exp(float64(inj.cfg.NodeMTBF)))
			if inj.cfg.Horizon > 0 && after > inj.cfg.Horizon {
				continue
			}
			kills = append(kills, Kill{Rank: p, After: after})
		}
	}
	sort.Slice(kills, func(i, j int) bool { return kills[i].After < kills[j].After })
	return kills
}

func (inj *Injector) run() {
	defer close(inj.doneCh)
	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	for _, kill := range inj.schedule() {
		wait := kill.After - time.Since(start)
		if wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-inj.stopCh:
				return
			}
		} else {
			select {
			case <-inj.stopCh:
				return
			default:
			}
		}
		inj.kill(kill.Rank, time.Since(start))
	}
	// Schedule exhausted; wait for Stop so Log stays available.
	<-inj.stopCh
}

// kill performs one fail-stop and updates sphere accounting.
func (inj *Injector) kill(rank int, at time.Duration) {
	inj.target.Kill(rank)
	inj.mu.Lock()
	inj.log = append(inj.log, Kill{Rank: rank, After: at})
	ordinal := int64(len(inj.log))
	var exhausted = -1
	sphere := -1
	if rank < len(inj.sphereOf) && !bitGet(inj.deadWords, rank) {
		bitSet(inj.deadWords, rank)
		inj.deadList = append(inj.deadList, rank)
		if v := inj.sphereOf[rank]; v >= 0 {
			sphere = v
			if inj.remaining[v] == len(inj.spheres[v]) {
				inj.dirtySphere = append(inj.dirtySphere, v)
			}
			inj.remaining[v]--
			if inj.remaining[v] == 0 {
				exhausted = v
			}
		}
	}
	inj.mu.Unlock()
	if reg := inj.cfg.Obs; reg != nil {
		reg.Counter("failure_kills_total").Inc()
		reg.Counter(fmt.Sprintf("failure_kills_node_%d_total", rank)).Inc()
		if sphere >= 0 {
			reg.Counter(fmt.Sprintf("failure_kills_sphere_%d_total", sphere)).Inc()
		}
		if exhausted >= 0 {
			reg.Counter("failure_sphere_exhausted_total").Inc()
		}
	}
	inj.cfg.Trace.Emit("kill", rank, sphere, 0, map[string]any{
		"after_ms": at.Milliseconds(),
	})
	// Arg carries the kill ordinal (1-based), never wall time, so
	// deterministic-mode dumps stay byte-stable.
	inj.cfg.Flight.Emit("kill", rank, sphere, 0, ordinal)
	if exhausted >= 0 {
		inj.cfg.Flight.Emit("sphere_exhausted", rank, exhausted, 0, ordinal)
		select {
		case inj.jobFailed <- exhausted:
		default:
		}
	}
}

// InjectNow kills a specific physical rank immediately, outside the
// schedule (test hook and manual chaos control).
func (inj *Injector) InjectNow(rank int) {
	inj.kill(rank, 0)
}

// Rearm resets the sphere accounting after an in-place recovery has
// revived every dead rank: all spheres return to full strength and any
// undelivered job-failure event is discarded as stale (it described a
// sphere that is alive again). The kill log is preserved — Failures()
// keeps counting across recoveries. Cost is O(kills this epoch): only
// the dirty spheres and the actually-dead bits are reset, never the full
// world.
func (inj *Injector) Rearm() {
	inj.mu.Lock()
	for _, v := range inj.dirtySphere {
		inj.remaining[v] = len(inj.spheres[v])
	}
	inj.dirtySphere = inj.dirtySphere[:0]
	for _, r := range inj.deadList {
		bitClear(inj.deadWords, r)
	}
	inj.deadList = inj.deadList[:0]
	inj.mu.Unlock()
	select {
	case <-inj.jobFailed:
	default:
	}
}

// PlainSpheres builds the degenerate sphere map for an unreplicated
// n-rank job: sphere v = {v}. With it, any single failure exhausts a
// sphere, which is exactly the 1x behaviour of the paper.
func PlainSpheres(n int) [][]int {
	out := make([][]int, n)
	for v := range out {
		out[v] = []int{v}
	}
	return out
}
