package failure

import (
	"testing"
)

func TestRearmRestoresSphereAccounting(t *testing.T) {
	r := &recorder{}
	spheres := [][]int{{0, 1}, {2, 3}}
	inj, err := New(r, spheres, Config{Schedule: []Kill{}})
	if err != nil {
		t.Fatal(err)
	}
	inj.Start()
	defer inj.Stop()

	inj.InjectNow(2)
	inj.InjectNow(3)
	select {
	case v := <-inj.JobFailed():
		if v != 1 {
			t.Fatalf("exhausted sphere = %d, want 1", v)
		}
	default:
		t.Fatal("sphere 1 exhausted but no job-failure event")
	}

	// After an in-place recovery every rank is alive again; the same
	// sphere must be exhaustible a second time.
	inj.Rearm()
	inj.InjectNow(2)
	inj.InjectNow(3)
	select {
	case v := <-inj.JobFailed():
		if v != 1 {
			t.Fatalf("second exhausted sphere = %d, want 1", v)
		}
	default:
		t.Fatal("rearm did not restore sphere accounting")
	}
	if inj.Failures() != 4 {
		t.Fatalf("Failures = %d, want 4 (kill log survives Rearm)", inj.Failures())
	}
}

func TestRearmDiscardsStaleEvent(t *testing.T) {
	r := &recorder{}
	inj, err := New(r, [][]int{{0}, {1}}, Config{Schedule: []Kill{}})
	if err != nil {
		t.Fatal(err)
	}
	inj.Start()
	defer inj.Stop()
	inj.InjectNow(0) // exhausts sphere 0; event queued, never consumed
	inj.Rearm()
	select {
	case v := <-inj.JobFailed():
		t.Fatalf("stale job-failure event for sphere %d survived Rearm", v)
	default:
	}
}

func TestReKillOfDeadRankDoesNotDoubleCount(t *testing.T) {
	r := &recorder{}
	inj, err := New(r, [][]int{{0, 1}}, Config{Schedule: []Kill{}})
	if err != nil {
		t.Fatal(err)
	}
	inj.Start()
	defer inj.Stop()
	// Killing the same rank twice must not exhaust a 2-replica sphere.
	inj.InjectNow(0)
	inj.InjectNow(0)
	select {
	case <-inj.JobFailed():
		t.Fatal("double-kill of one rank exhausted a two-replica sphere")
	default:
	}
	inj.InjectNow(1)
	select {
	case <-inj.JobFailed():
	default:
		t.Fatal("sphere really exhausted but no event")
	}
}
