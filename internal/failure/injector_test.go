package failure

import (
	"sync"
	"testing"
	"time"

	"repro/internal/stats"
)

// recorder is a KillTarget remembering kill order.
type recorder struct {
	mu    sync.Mutex
	kills []int
}

func (r *recorder) Kill(rank int) {
	r.mu.Lock()
	r.kills = append(r.kills, rank)
	r.mu.Unlock()
}

func (r *recorder) killed() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, len(r.kills))
	copy(out, r.kills)
	return out
}

func TestNewValidation(t *testing.T) {
	r := &recorder{}
	if _, err := New(nil, PlainSpheres(2), Config{Schedule: []Kill{}}); err == nil {
		t.Error("nil target accepted")
	}
	if _, err := New(r, PlainSpheres(2), Config{}); err == nil {
		t.Error("missing stream accepted")
	}
	if _, err := New(r, PlainSpheres(2), Config{Stream: stats.NewStream(1)}); err == nil {
		t.Error("missing MTBF accepted")
	}
	if _, err := New(r, [][]int{{0}, {0}}, Config{Schedule: []Kill{}}); err == nil {
		t.Error("overlapping spheres accepted")
	}
}

func TestDeterministicSchedule(t *testing.T) {
	r := &recorder{}
	inj, err := New(r, PlainSpheres(4), Config{Schedule: []Kill{
		{Rank: 2, After: 5 * time.Millisecond},
		{Rank: 0, After: 1 * time.Millisecond},
	}})
	if err != nil {
		t.Fatal(err)
	}
	inj.Start()
	deadline := time.After(3 * time.Second)
	select {
	case v := <-inj.JobFailed():
		// Sphere 0 = {0}: killing rank 0 exhausts it first.
		if v != 0 {
			t.Fatalf("job failed on sphere %d, want 0", v)
		}
	case <-deadline:
		t.Fatal("no job failure signalled")
	}
	// Wait until both kills landed, then stop.
	for i := 0; i < 100 && inj.Failures() < 2; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	inj.Stop()
	got := r.killed()
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("kill order %v, want [0 2]", got)
	}
	log := inj.Log()
	if len(log) != 2 || log[0].Rank != 0 {
		t.Fatalf("log %v", log)
	}
}

func TestSphereExhaustionDetection(t *testing.T) {
	// Two spheres of two replicas: killing both replicas of sphere 1
	// (ranks 2, 3) fails the job; killing one replica of sphere 0 first
	// must not.
	spheres := [][]int{{0, 1}, {2, 3}}
	r := &recorder{}
	inj, err := New(r, spheres, Config{Schedule: []Kill{
		{Rank: 0, After: 1 * time.Millisecond},
		{Rank: 2, After: 2 * time.Millisecond},
		{Rank: 3, After: 3 * time.Millisecond},
	}})
	if err != nil {
		t.Fatal(err)
	}
	inj.Start()
	select {
	case v := <-inj.JobFailed():
		if v != 1 {
			t.Fatalf("exhausted sphere %d, want 1", v)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("sphere exhaustion not signalled")
	}
	inj.Stop()
	if n := inj.Failures(); n != 3 {
		t.Fatalf("failures = %d, want 3", n)
	}
}

func TestSingleReplicaDeathDoesNotFailJob(t *testing.T) {
	spheres := [][]int{{0, 1}}
	r := &recorder{}
	inj, err := New(r, spheres, Config{Schedule: []Kill{
		{Rank: 1, After: 1 * time.Millisecond},
	}})
	if err != nil {
		t.Fatal(err)
	}
	inj.Start()
	select {
	case v := <-inj.JobFailed():
		t.Fatalf("job failed on sphere %d though one replica survives", v)
	case <-time.After(100 * time.Millisecond):
	}
	inj.Stop()
}

func TestInjectNow(t *testing.T) {
	r := &recorder{}
	inj, err := New(r, PlainSpheres(3), Config{Schedule: []Kill{}})
	if err != nil {
		t.Fatal(err)
	}
	inj.InjectNow(1)
	select {
	case v := <-inj.JobFailed():
		if v != 1 {
			t.Fatalf("sphere %d, want 1", v)
		}
	default:
		t.Fatal("InjectNow did not signal job failure")
	}
	if got := r.killed(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("kills %v", got)
	}
}

func TestStopBeforeFirstKill(t *testing.T) {
	r := &recorder{}
	inj, err := New(r, PlainSpheres(2), Config{Schedule: []Kill{
		{Rank: 0, After: time.Hour},
	}})
	if err != nil {
		t.Fatal(err)
	}
	inj.Start()
	inj.Stop()
	if n := inj.Failures(); n != 0 {
		t.Fatalf("failures = %d after immediate stop", n)
	}
	// Stop again is safe.
	inj.Stop()
}

func TestStopWithoutStart(t *testing.T) {
	r := &recorder{}
	inj, err := New(r, PlainSpheres(1), Config{Schedule: []Kill{}})
	if err != nil {
		t.Fatal(err)
	}
	inj.Stop() // must not hang
}

func TestRandomScheduleStatistics(t *testing.T) {
	// With n nodes at MTBF θ and horizon h ≪ θ, expected kills ≈ n·h/θ.
	const n = 2000
	mtbf := 10 * time.Second
	horizon := 100 * time.Millisecond
	r := &recorder{}
	inj, err := New(r, PlainSpheres(n), Config{
		Stream:   stats.NewStream(99),
		NodeMTBF: mtbf,
		Horizon:  horizon,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched := inj.schedule()
	want := float64(n) * float64(horizon) / float64(mtbf) // 20
	if got := float64(len(sched)); got < want/2 || got > want*2 {
		t.Fatalf("schedule has %v kills, want ≈ %v", got, want)
	}
	for i := 1; i < len(sched); i++ {
		if sched[i].After < sched[i-1].After {
			t.Fatal("schedule not sorted")
		}
		if sched[i].After > horizon {
			t.Fatal("kill past horizon")
		}
	}
}

func TestScheduleReproducible(t *testing.T) {
	mk := func() []Kill {
		r := &recorder{}
		inj, err := New(r, PlainSpheres(50), Config{
			Stream:   stats.NewStream(7),
			NodeMTBF: time.Second,
			Horizon:  time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return inj.schedule()
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPlainSpheres(t *testing.T) {
	s := PlainSpheres(3)
	if len(s) != 3 {
		t.Fatalf("len %d", len(s))
	}
	for v, sphere := range s {
		if len(sphere) != 1 || sphere[0] != v {
			t.Fatalf("sphere %d = %v", v, sphere)
		}
	}
}
