package apps

import (
	"math"
	"sync"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/mpi"
	"repro/internal/redundancy"
	"repro/internal/simmpi"
)

// serialJacobi is an independent single-threaded reference implementation.
func serialJacobi(width, height, iters int, hot float64) []float64 {
	grid := make([]float64, width*height)
	for x := 0; x < width; x++ {
		grid[x] = hot
	}
	next := make([]float64, len(grid))
	for it := 0; it < iters; it++ {
		copy(next, grid)
		for y := 1; y < height-1; y++ {
			for x := 1; x < width-1; x++ {
				idx := y*width + x
				next[idx] = 0.25 * (grid[idx-width] + grid[idx+width] + grid[idx-1] + grid[idx+1])
			}
		}
		grid, next = next, grid
	}
	return grid
}

func runStencil(t *testing.T, n int, mk func() *Stencil) []*Stencil {
	t.Helper()
	w, err := simmpi.NewWorld(n)
	if err != nil {
		t.Fatal(err)
	}
	apps := make([]*Stencil, n)
	appErr, failures := w.Run(func(c *simmpi.Comm) error {
		app := mk()
		apps[c.Rank()] = app
		return app.Run(&Context{Comm: c})
	})
	if appErr != nil {
		t.Fatalf("app error: %v", appErr)
	}
	if len(failures) != 0 {
		t.Fatalf("failures: %v", failures)
	}
	return apps
}

func TestStencilMatchesSerialReference(t *testing.T) {
	const (
		width, height = 8, 12
		iters         = 25
		hot           = 100.0
	)
	ref := serialJacobi(width, height, iters, hot)
	var wantHeat float64
	for _, v := range ref {
		wantHeat += v
	}
	for _, ranks := range []int{1, 2, 3, 4} {
		apps := runStencil(t, ranks, func() *Stencil {
			return &Stencil{Width: width, Height: height, Iterations: iters, HotBoundary: hot}
		})
		for rank, app := range apps {
			if math.Abs(app.Heat-wantHeat) > 1e-9*math.Abs(wantHeat) {
				t.Fatalf("ranks=%d rank=%d heat %v, want %v", ranks, rank, app.Heat, wantHeat)
			}
		}
	}
}

func TestStencilHeatPositiveAndBounded(t *testing.T) {
	apps := runStencil(t, 2, func() *Stencil {
		return &Stencil{Width: 6, Height: 6, Iterations: 50, HotBoundary: 10}
	})
	maxPossible := 10.0 * 6 * 6
	if apps[0].Heat <= 0 || apps[0].Heat > maxPossible {
		t.Fatalf("heat %v out of (0, %v]", apps[0].Heat, maxPossible)
	}
}

func TestStencilValidation(t *testing.T) {
	w, err := simmpi.NewWorld(1)
	if err != nil {
		t.Fatal(err)
	}
	appErr, _ := w.Run(func(c *simmpi.Comm) error {
		return (&Stencil{Width: 2, Height: 2, Iterations: 1}).Run(&Context{Comm: c})
	})
	if appErr == nil {
		t.Fatal("2x2 grid accepted")
	}
}

func TestStencilCheckpointRestartEquivalence(t *testing.T) {
	const (
		width, height = 6, 9
		iters         = 20
		hot           = 50.0
	)
	want := runStencil(t, 3, func() *Stencil {
		return &Stencil{Width: width, Height: height, Iterations: iters, HotBoundary: hot}
	})[0].Heat

	store := checkpoint.NewMemStorage()
	// Phase 1: first 10 iterations with a checkpoint at 10.
	w1, err := simmpi.NewWorld(3)
	if err != nil {
		t.Fatal(err)
	}
	appErr, _ := w1.Run(func(c *simmpi.Comm) error {
		cl, err := checkpoint.NewClient(c, checkpoint.Config{Storage: store, StepInterval: 10})
		if err != nil {
			return err
		}
		app := &Stencil{Width: width, Height: height, Iterations: 10, HotBoundary: hot}
		return app.Run(&Context{Comm: c, Ckpt: cl})
	})
	if appErr != nil {
		t.Fatal(appErr)
	}
	// Phase 2: resume to the full 20.
	w2, err := simmpi.NewWorld(3)
	if err != nil {
		t.Fatal(err)
	}
	heats := make([]float64, 3)
	appErr, _ = w2.Run(func(c *simmpi.Comm) error {
		cl, err := checkpoint.NewClient(c, checkpoint.Config{Storage: store})
		if err != nil {
			return err
		}
		app := &Stencil{Width: width, Height: height, Iterations: iters, HotBoundary: hot}
		if err := app.Run(&Context{Comm: c, Ckpt: cl}); err != nil {
			return err
		}
		heats[c.Rank()] = app.Heat
		return nil
	})
	if appErr != nil {
		t.Fatal(appErr)
	}
	if heats[0] != want {
		t.Fatalf("resumed heat %v, want %v", heats[0], want)
	}
}

func TestStencilUnderRedundancy(t *testing.T) {
	const n = 3
	plain := runStencil(t, n, func() *Stencil {
		return &Stencil{Width: 7, Height: 9, Iterations: 15, HotBoundary: 5}
	})[0].Heat

	rm, err := redundancy.NewRankMap(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := simmpi.NewWorld(rm.PhysicalSize())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var heats []float64
	appErr, failures := w.Run(func(pc *simmpi.Comm) error {
		rc, err := redundancy.Wrap(pc, rm, mpi.WithLiveness(w))
		if err != nil {
			return err
		}
		app := &Stencil{Width: 7, Height: 9, Iterations: 15, HotBoundary: 5}
		if err := app.Run(&Context{Comm: rc}); err != nil {
			return err
		}
		mu.Lock()
		heats = append(heats, app.Heat)
		mu.Unlock()
		return nil
	})
	if appErr != nil {
		t.Fatal(appErr)
	}
	if len(failures) != 0 {
		t.Fatalf("failures: %v", failures)
	}
	for _, h := range heats {
		if h != plain {
			t.Fatalf("redundant heat %v != plain %v", h, plain)
		}
	}
}

func TestStencilStateCodec(t *testing.T) {
	s := &stencilState{iter: 7, grid: []float64{1, 2, 3}}
	got, err := decodeStencilState(s.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.iter != 7 || len(got.grid) != 3 || got.grid[2] != 3 {
		t.Fatalf("round trip %+v", got)
	}
	if _, err := decodeStencilState([]byte{1}); err == nil {
		t.Error("garbage accepted")
	}
}
