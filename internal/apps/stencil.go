package apps

import (
	"fmt"
	"math"

	"repro/internal/mpi"
)

// Stencil is a 2-D Jacobi heat-diffusion kernel: the grid is partitioned
// into horizontal slabs, and each iteration exchanges halo rows with the
// two neighbouring ranks then relaxes every interior point. It is the
// nearest-neighbour communication pattern complementing CG's global
// reductions.
type Stencil struct {
	// Width and Height are the global grid dimensions (including the
	// fixed boundary).
	Width, Height int
	// Iterations is the relaxation count.
	Iterations int
	// HotBoundary is the temperature applied along the top edge; the
	// other edges are held at zero.
	HotBoundary float64

	// Heat is the global heat sum after Run (identical on all ranks).
	Heat float64
}

var _ App = (*Stencil)(nil)

// Name implements App.
func (st *Stencil) Name() string { return "stencil" }

const (
	tagHaloUp   = 101
	tagHaloDown = 102
)

// stencilState is the checkpointable state: the owned slab (with halo
// rows) and the iteration counter.
type stencilState struct {
	iter int
	grid []float64 // (rows+2) × width, including halo rows
}

func (s *stencilState) encode() []byte {
	var w stateWriter
	w.int(s.iter)
	w.float64s(s.grid)
	return w.bytes()
}

func decodeStencilState(buf []byte) (*stencilState, error) {
	r := stateReader{buf: buf}
	var s stencilState
	var err error
	if s.iter, err = r.int(); err != nil {
		return nil, err
	}
	if s.grid, err = r.float64s(); err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Run implements App.
func (st *Stencil) Run(ctx *Context) error {
	if st.Width < 3 || st.Height < 3 || st.Iterations <= 0 {
		return fmt.Errorf("stencil: need ≥3×3 grid and positive iterations")
	}
	c := ctx.Comm
	lo, hi := RowRange(st.Height, c.Rank(), c.Size())
	rows := hi - lo
	if rows == 0 {
		return fmt.Errorf("stencil: rank %d owns no rows (height %d, ranks %d)",
			c.Rank(), st.Height, c.Size())
	}
	w := st.Width

	state := &stencilState{grid: make([]float64, (rows+2)*w)}
	// Apply the hot top boundary if this rank owns global row 0.
	if lo == 0 {
		for x := 0; x < w; x++ {
			state.grid[1*w+x] = st.HotBoundary
		}
	}

	if snap, ok, err := ctx.restore(); err != nil {
		return err
	} else if ok {
		restored, derr := decodeStencilState(snap)
		if derr != nil {
			return fmt.Errorf("stencil: restoring: %w", derr)
		}
		if len(restored.grid) != len(state.grid) {
			return fmt.Errorf("stencil: checkpoint grid %d cells, want %d",
				len(restored.grid), len(state.grid))
		}
		state = restored
	}

	up := c.Rank() - 1
	down := c.Rank() + 1
	next := make([]float64, len(state.grid))
	for ; state.iter < st.Iterations; state.iter++ {
		// Halo exchange: send my first owned row up, last owned row down.
		if up >= 0 {
			if err := c.Send(up, tagHaloUp, encodeVec(state.grid[w:2*w])); err != nil {
				return err
			}
		}
		if down < c.Size() {
			if err := c.Send(down, tagHaloDown, encodeVec(state.grid[rows*w:(rows+1)*w])); err != nil {
				return err
			}
		}
		if down < c.Size() {
			msg, err := c.Recv(down, tagHaloUp)
			if err != nil {
				return err
			}
			halo, derr := decodeVec(msg.Data)
			if derr != nil {
				return derr
			}
			copy(state.grid[(rows+1)*w:], halo)
		}
		if up >= 0 {
			msg, err := c.Recv(up, tagHaloDown)
			if err != nil {
				return err
			}
			halo, derr := decodeVec(msg.Data)
			if derr != nil {
				return derr
			}
			copy(state.grid[:w], halo)
		}

		// Relax interior points; global boundary rows/columns stay fixed.
		for r := 1; r <= rows; r++ {
			globalRow := lo + r - 1
			if globalRow == 0 || globalRow == st.Height-1 {
				copy(next[r*w:(r+1)*w], state.grid[r*w:(r+1)*w])
				continue
			}
			next[r*w] = state.grid[r*w]
			next[r*w+w-1] = state.grid[r*w+w-1]
			for x := 1; x < w-1; x++ {
				idx := r*w + x
				next[idx] = 0.25 * (state.grid[idx-w] + state.grid[idx+w] +
					state.grid[idx-1] + state.grid[idx+1])
			}
		}
		copy(state.grid[w:(rows+1)*w], next[w:(rows+1)*w])
		ctx.compute()

		if _, err := ctx.maybeCheckpoint(state.iter+1, snapshotStencil(state)); err != nil {
			return err
		}
	}

	// Global heat: sum of owned cells, allreduced.
	var local float64
	for r := 1; r <= rows; r++ {
		for x := 0; x < w; x++ {
			local += state.grid[r*w+x]
		}
	}
	out, err := mpi.AllreduceFloat64s(c, []float64{local}, mpi.OpSum)
	if err != nil {
		return err
	}
	st.Heat = out[0]
	if math.IsNaN(st.Heat) {
		return fmt.Errorf("stencil: heat diverged to NaN")
	}
	return nil
}

func snapshotStencil(s *stencilState) []byte {
	snap := stencilState{iter: s.iter + 1, grid: s.grid}
	return snap.encode()
}
