package apps

import (
	"fmt"
	"math"

	"repro/internal/mpi"
)

// Stencil is a 2-D Jacobi heat-diffusion kernel: the grid is partitioned
// into horizontal slabs, and each iteration exchanges halo rows with the
// two neighbouring ranks then relaxes every interior point. It is the
// nearest-neighbour communication pattern complementing CG's global
// reductions.
type Stencil struct {
	// Width and Height are the global grid dimensions (including the
	// fixed boundary).
	Width, Height int
	// Iterations is the relaxation count.
	Iterations int
	// HotBoundary is the temperature applied along the top edge; the
	// other edges are held at zero.
	HotBoundary float64

	// Heat is the global heat sum after Run (identical on all ranks).
	Heat float64
}

var _ App = (*Stencil)(nil)

// Name implements App.
func (st *Stencil) Name() string { return "stencil" }

const (
	tagHaloUp   = 101
	tagHaloDown = 102
	tagRedist   = 103 // post-shrink row redistribution
)

// stencilState is the checkpointable state: the owned slab (with halo
// rows) and the iteration counter.
type stencilState struct {
	iter int
	grid []float64 // (rows+2) × width, including halo rows
}

func (s *stencilState) encode() []byte {
	var w stateWriter
	w.int(s.iter)
	w.float64s(s.grid)
	return w.bytes()
}

func decodeStencilState(buf []byte) (*stencilState, error) {
	r := stateReader{buf: buf}
	var s stencilState
	var err error
	if s.iter, err = r.int(); err != nil {
		return nil, err
	}
	if s.grid, err = r.float64s(); err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Run implements App.
func (st *Stencil) Run(ctx *Context) error {
	if st.Width < 3 || st.Height < 3 || st.Iterations <= 0 {
		return fmt.Errorf("stencil: need ≥3×3 grid and positive iterations")
	}
	if ctx.ShrinkRecovery {
		return st.runShrink(ctx)
	}
	c := ctx.Comm
	lo, hi := RowRange(st.Height, c.Rank(), c.Size())
	rows := hi - lo
	if rows == 0 {
		return fmt.Errorf("stencil: rank %d owns no rows (height %d, ranks %d)",
			c.Rank(), st.Height, c.Size())
	}
	w := st.Width

	state := &stencilState{grid: make([]float64, (rows+2)*w)}
	// Apply the hot top boundary if this rank owns global row 0.
	if lo == 0 {
		for x := 0; x < w; x++ {
			state.grid[1*w+x] = st.HotBoundary
		}
	}

	if snap, ok, err := ctx.restore(); err != nil {
		return err
	} else if ok {
		restored, derr := decodeStencilState(snap)
		if derr != nil {
			return fmt.Errorf("stencil: restoring: %w", derr)
		}
		if len(restored.grid) != len(state.grid) {
			return fmt.Errorf("stencil: checkpoint grid %d cells, want %d",
				len(restored.grid), len(state.grid))
		}
		state = restored
	}

	up := c.Rank() - 1
	down := c.Rank() + 1
	next := make([]float64, len(state.grid))
	for ; state.iter < st.Iterations; state.iter++ {
		// Halo exchange: send my first owned row up, last owned row down.
		if up >= 0 {
			if err := c.Send(up, tagHaloUp, encodeVec(state.grid[w:2*w])); err != nil {
				return err
			}
		}
		if down < c.Size() {
			if err := c.Send(down, tagHaloDown, encodeVec(state.grid[rows*w:(rows+1)*w])); err != nil {
				return err
			}
		}
		if down < c.Size() {
			msg, err := c.Recv(down, tagHaloUp)
			if err != nil {
				return err
			}
			halo, derr := decodeVec(msg.Data)
			if derr != nil {
				return derr
			}
			copy(state.grid[(rows+1)*w:], halo)
		}
		if up >= 0 {
			msg, err := c.Recv(up, tagHaloDown)
			if err != nil {
				return err
			}
			halo, derr := decodeVec(msg.Data)
			if derr != nil {
				return derr
			}
			copy(state.grid[:w], halo)
		}

		// Relax interior points; global boundary rows/columns stay fixed.
		for r := 1; r <= rows; r++ {
			globalRow := lo + r - 1
			if globalRow == 0 || globalRow == st.Height-1 {
				copy(next[r*w:(r+1)*w], state.grid[r*w:(r+1)*w])
				continue
			}
			next[r*w] = state.grid[r*w]
			next[r*w+w-1] = state.grid[r*w+w-1]
			for x := 1; x < w-1; x++ {
				idx := r*w + x
				next[idx] = 0.25 * (state.grid[idx-w] + state.grid[idx+w] +
					state.grid[idx-1] + state.grid[idx+1])
			}
		}
		copy(state.grid[w:(rows+1)*w], next[w:(rows+1)*w])
		ctx.compute()

		if _, err := ctx.maybeCheckpoint(state.iter+1, snapshotStencil(state)); err != nil {
			return err
		}
	}

	// Global heat: sum of owned cells, allreduced.
	var local float64
	for r := 1; r <= rows; r++ {
		for x := 0; x < w; x++ {
			local += state.grid[r*w+x]
		}
	}
	out, err := mpi.AllreduceFloat64s(c, []float64{local}, mpi.OpSum)
	if err != nil {
		return err
	}
	st.Heat = out[0]
	if math.IsNaN(st.Heat) {
		return fmt.Errorf("stencil: heat diverged to NaN")
	}
	return nil
}

func snapshotStencil(s *stencilState) []byte {
	snap := stencilState{iter: s.iter + 1, grid: s.grid}
	return snap.encode()
}

// runShrink is the fault-tolerant stencil: every iteration is a round
// of eager halo sends, failure-tolerant receives, and a fault-tolerant
// Agree that keeps the survivors in lockstep. When any rank observes a
// failure (through the errhandler, the single fault-observation path)
// the agreement fails on every survivor, all of them meet at the Shrink
// collective, and the global grid is re-decomposed over the shrunk
// communicator: surviving rows are redistributed to their new owners
// and the dead rank's rows restart cold (boundary values reapplied).
// The failed iteration is then redone on the new decomposition, so the
// relaxation never mixes pre- and post-shrink neighbourhoods.
func (st *Stencil) runShrink(ctx *Context) error {
	c := ctx.Comm
	w := st.Width
	failed, handled := 0, 0
	install := func(comm mpi.Comm) {
		comm.SetErrhandler(func(mpi.FailureInfo) { failed++ })
	}
	install(c)

	size, rank := c.Size(), c.Rank()
	lo, hi := RowRange(st.Height, rank, size)
	rows := hi - lo
	if rows == 0 {
		return fmt.Errorf("stencil: rank %d owns no rows (height %d, ranks %d)",
			rank, st.Height, size)
	}
	grid := make([]float64, (rows+2)*w)
	if lo == 0 {
		for x := 0; x < w; x++ {
			grid[1*w+x] = st.HotBoundary
		}
	}
	next := make([]float64, len(grid))

	for iter := 0; iter < st.Iterations; {
		ok := true
		// A failure-class error marks the round failed but must not abort:
		// the handler has been notified, and the Agree below routes every
		// survivor into the same repair. Errors with no notification behind
		// them (own death, abort, genuine bugs) stay fatal.
		tolerate := func(err error) bool {
			if failed > handled {
				ok = false
				return true
			}
			return false
		}
		// Eager sends first: a failed receive below must never starve a
		// neighbour of this rank's halo (sends to the dead are dropped).
		if rank > 0 {
			if err := c.Send(rank-1, tagHaloUp, encodeVec(grid[w:2*w])); err != nil {
				return err
			}
		}
		if rank < size-1 {
			if err := c.Send(rank+1, tagHaloDown, encodeVec(grid[rows*w:(rows+1)*w])); err != nil {
				return err
			}
		}
		// Both receives are always attempted, each tolerated individually,
		// so every survivor-to-survivor halo of a failed round is consumed
		// — otherwise a stale halo would desynchronise the redone round.
		if rank < size-1 {
			msg, err := c.Recv(rank+1, tagHaloUp)
			if err == nil {
				halo, derr := decodeVec(msg.Data)
				if derr != nil {
					return derr
				}
				copy(grid[(rows+1)*w:], halo)
			} else if !tolerate(err) {
				return err
			}
		}
		if rank > 0 {
			msg, err := c.Recv(rank-1, tagHaloDown)
			if err == nil {
				halo, derr := decodeVec(msg.Data)
				if derr != nil {
					return derr
				}
				copy(grid[:w], halo)
			} else if !tolerate(err) {
				return err
			}
		}

		agreed, err := c.Agree(ok)
		if err != nil {
			return err
		}
		if !agreed {
			// Watermark to the count observed BEFORE the repair: a failure
			// the errhandler delivers during the repair's own collectives
			// arrived too late for the shrink's survivor agreement and is
			// still pending — it must fail the next round and trigger
			// another repair, not be absorbed by this one.
			observed := failed
			nc, nsize, nrank, nlo, nhi, ngrid, rerr := st.shrinkRepair(c, size, rank, lo, hi, grid)
			if rerr != nil {
				return rerr
			}
			c, size, rank, lo, hi, grid = nc, nsize, nrank, nlo, nhi, ngrid
			rows = hi - lo
			next = make([]float64, len(grid))
			install(c)
			handled = observed
			continue // redo this iteration on the new decomposition
		}

		for r := 1; r <= rows; r++ {
			globalRow := lo + r - 1
			if globalRow == 0 || globalRow == st.Height-1 {
				copy(next[r*w:(r+1)*w], grid[r*w:(r+1)*w])
				continue
			}
			next[r*w] = grid[r*w]
			next[r*w+w-1] = grid[r*w+w-1]
			for x := 1; x < w-1; x++ {
				idx := r*w + x
				next[idx] = 0.25 * (grid[idx-w] + grid[idx+w] +
					grid[idx-1] + grid[idx+1])
			}
		}
		copy(grid[w:(rows+1)*w], next[w:(rows+1)*w])
		ctx.compute()
		iter++
		if ctx.NoteStep != nil && ctx.writer() {
			ctx.NoteStep(iter)
		}
	}

	var local float64
	for r := 1; r <= rows; r++ {
		for x := 0; x < w; x++ {
			local += grid[r*w+x]
		}
	}
	out, err := mpi.AllreduceFloat64s(c, []float64{local}, mpi.OpSum)
	if err != nil {
		return err
	}
	st.Heat = out[0]
	if math.IsNaN(st.Heat) {
		return fmt.Errorf("stencil: heat diverged to NaN")
	}
	return nil
}

// shrinkRepair shrinks the communicator and re-decomposes the grid over
// the survivors. Rows that survived move (eagerly, then received in
// ascending-row order per sender) to their new owners; rows owned by a
// dead rank are reinitialised with the fixed boundary values. A second
// failure landing during the redistribution itself is not repaired —
// it surfaces as an error and fails the job.
func (st *Stencil) shrinkRepair(c mpi.Comm, size, rank, lo, hi int, grid []float64,
) (nc mpi.Comm, nsize, nrank, nlo, nhi int, ngrid []float64, err error) {
	w := st.Width
	sh, err := shrinkComm(c)
	if err != nil {
		return nil, 0, 0, 0, 0, nil, err
	}
	nsize, nrank = sh.Size(), sh.Rank()
	nlo, nhi = RowRange(st.Height, nrank, nsize)
	ngrid = make([]float64, (nhi-nlo+2)*w)

	// Ship away the rows this rank keeps no claim on.
	for r := lo; r < hi; r++ {
		owner := rowOwner(st.Height, nsize, r)
		if owner == nrank {
			continue
		}
		var enc stateWriter
		enc.int(r)
		enc.float64s(grid[(r-lo+1)*w : (r-lo+2)*w])
		if serr := sh.Send(owner, tagRedist, enc.bytes()); serr != nil {
			return nil, 0, 0, 0, 0, nil, serr
		}
	}
	// Assemble the new slab: local copy, peer receive, or cold restart
	// for rows lost with the failed rank.
	for r := nlo; r < nhi; r++ {
		dst := ngrid[(r-nlo+1)*w : (r-nlo+2)*w]
		old := rowOwner(st.Height, size, r)
		if old == rank {
			copy(dst, grid[(r-lo+1)*w:(r-lo+2)*w])
			continue
		}
		if from, alive := shrinkRemap(c, sh, old); alive {
			msg, rerr := sh.Recv(from, tagRedist)
			if rerr != nil {
				return nil, 0, 0, 0, 0, nil, rerr
			}
			dec := stateReader{buf: msg.Data}
			gotRow, derr := dec.int()
			if derr != nil {
				return nil, 0, 0, 0, 0, nil, derr
			}
			vec, derr := dec.float64s()
			if derr != nil {
				return nil, 0, 0, 0, 0, nil, derr
			}
			msg.Release()
			if gotRow != r || len(vec) != w {
				return nil, 0, 0, 0, 0, nil, fmt.Errorf(
					"stencil: redistribution row %d (%d cells), want row %d (%d cells)",
					gotRow, len(vec), r, w)
			}
			copy(dst, vec)
		} else if r == 0 {
			for x := 0; x < w; x++ {
				dst[x] = st.HotBoundary
			}
		}
	}
	return sh, nsize, nrank, nlo, nhi, ngrid, nil
}

// rowOwner inverts RowRange: the rank owning global row r when height
// rows are decomposed over size ranks.
func rowOwner(height, size, r int) int {
	per := height / size
	rem := height % size
	wide := (per + 1) * rem // rows covered by the ranks holding per+1 rows
	if r < wide {
		return r / (per + 1)
	}
	if per == 0 {
		return size - 1
	}
	return rem + (r-wide)/per
}
