package apps

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/mpi"
	"repro/internal/redundancy"
	"repro/internal/simmpi"
)

// runPlain executes app.Run over a plain n-rank world, one app value per
// rank (returned for inspection).
func runPlainCG(t *testing.T, n int, mk func() *CG, ckpt func(rank int, c *simmpi.Comm) *checkpoint.Client) []*CG {
	t.Helper()
	w, err := simmpi.NewWorld(n)
	if err != nil {
		t.Fatal(err)
	}
	apps := make([]*CG, n)
	appErr, failures := w.Run(func(c *simmpi.Comm) error {
		app := mk()
		apps[c.Rank()] = app
		ctx := &Context{Comm: c}
		if ckpt != nil {
			ctx.Ckpt = ckpt(c.Rank(), c)
		}
		return app.Run(ctx)
	})
	if appErr != nil {
		t.Fatalf("app error: %v", appErr)
	}
	if len(failures) != 0 {
		t.Fatalf("failures: %v", failures)
	}
	return apps
}

func TestCGSolvesLaplacian(t *testing.T) {
	m, err := Laplacian2D(8) // 64 unknowns
	if err != nil {
		t.Fatal(err)
	}
	apps := runPlainCG(t, 4, func() *CG {
		return &CG{Matrix: m, Iterations: 120}
	}, nil)
	// b = A·ones, so the solution is ones and the checksum is N.
	for rank, app := range apps {
		if app.ResidualNorm > 1e-8 {
			t.Fatalf("rank %d residual %v", rank, app.ResidualNorm)
		}
		if math.Abs(app.Checksum-64) > 1e-6 {
			t.Fatalf("rank %d checksum %v, want 64", rank, app.Checksum)
		}
	}
}

func TestCGRandomSPD(t *testing.T) {
	m, err := RandomSPD(60, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	apps := runPlainCG(t, 3, func() *CG {
		return &CG{Matrix: m, Iterations: 100}
	}, nil)
	if apps[0].ResidualNorm > 1e-6 {
		t.Fatalf("residual %v", apps[0].ResidualNorm)
	}
	if math.Abs(apps[0].Checksum-60) > 1e-4 {
		t.Fatalf("checksum %v, want 60", apps[0].Checksum)
	}
}

func TestCGDeterministicAcrossRuns(t *testing.T) {
	m, err := Laplacian2D(6)
	if err != nil {
		t.Fatal(err)
	}
	run := func() (float64, float64) {
		apps := runPlainCG(t, 4, func() *CG {
			return &CG{Matrix: m, Iterations: 25}
		}, nil)
		return apps[0].ResidualNorm, apps[0].Checksum
	}
	r1, c1 := run()
	r2, c2 := run()
	if r1 != r2 || c1 != c2 {
		t.Fatalf("nondeterministic: (%v,%v) vs (%v,%v)", r1, c1, r2, c2)
	}
}

func TestCGRepeats(t *testing.T) {
	m, err := Laplacian2D(5)
	if err != nil {
		t.Fatal(err)
	}
	single := runPlainCG(t, 2, func() *CG {
		return &CG{Matrix: m, Iterations: 60, Repeats: 1}
	}, nil)
	tripled := runPlainCG(t, 2, func() *CG {
		return &CG{Matrix: m, Iterations: 60, Repeats: 3}
	}, nil)
	// Each repeat resets and re-solves: the final state matches a single
	// solve.
	if single[0].Checksum != tripled[0].Checksum {
		t.Fatalf("checksums differ: %v vs %v", single[0].Checksum, tripled[0].Checksum)
	}
}

func TestCGValidation(t *testing.T) {
	w, err := simmpi.NewWorld(1)
	if err != nil {
		t.Fatal(err)
	}
	appErr, _ := w.Run(func(c *simmpi.Comm) error {
		return (&CG{}).Run(&Context{Comm: c})
	})
	if appErr == nil {
		t.Fatal("missing matrix accepted")
	}
}

func TestCGCheckpointRestartEquivalence(t *testing.T) {
	// Run 40 iterations with checkpoints every 10; then simulate a crash
	// by re-running from storage in a fresh world. The resumed run's
	// result must equal an uninterrupted run's bit for bit.
	m, err := Laplacian2D(6)
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	uninterrupted := runPlainCG(t, n, func() *CG {
		return &CG{Matrix: m, Iterations: 40}
	}, nil)

	store := checkpoint.NewMemStorage()
	mkClient := func(rank int, c *simmpi.Comm) *checkpoint.Client {
		cl, err := checkpoint.NewClient(c, checkpoint.Config{Storage: store, StepInterval: 10})
		if err != nil {
			t.Fatal(err)
		}
		return cl
	}
	// First attempt: runs to completion, leaving checkpoints behind —
	// then the "restarted" world resumes from generation covering step 40.
	runPlainCG(t, n, func() *CG { return &CG{Matrix: m, Iterations: 40} }, mkClient)
	resumed := runPlainCG(t, n, func() *CG { return &CG{Matrix: m, Iterations: 40} }, mkClient)
	if resumed[0].Checksum != uninterrupted[0].Checksum {
		t.Fatalf("resumed checksum %v != uninterrupted %v",
			resumed[0].Checksum, uninterrupted[0].Checksum)
	}
	if resumed[0].ResidualNorm != uninterrupted[0].ResidualNorm {
		t.Fatalf("resumed residual %v != uninterrupted %v",
			resumed[0].ResidualNorm, uninterrupted[0].ResidualNorm)
	}
}

func TestCGMidRunRestore(t *testing.T) {
	// Checkpoint at step 10 of 20, then restore into a world that still
	// has 20 iterations configured: the resume must pick up at step 11,
	// not replay from zero — verified by matching the uninterrupted run.
	m, err := Laplacian2D(6)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2
	want := runPlainCG(t, n, func() *CG {
		return &CG{Matrix: m, Iterations: 20}
	}, nil)

	store := checkpoint.NewMemStorage()
	// Phase 1: run only the first 10 iterations, checkpointing at 10.
	runPlainCG(t, n, func() *CG { return &CG{Matrix: m, Iterations: 10} },
		func(rank int, c *simmpi.Comm) *checkpoint.Client {
			cl, err := checkpoint.NewClient(c, checkpoint.Config{Storage: store, StepInterval: 10})
			if err != nil {
				t.Fatal(err)
			}
			return cl
		})
	// Phase 2: fresh world, full 20-iteration config, restores at step 10.
	resumed := runPlainCG(t, n, func() *CG { return &CG{Matrix: m, Iterations: 20} },
		func(rank int, c *simmpi.Comm) *checkpoint.Client {
			cl, err := checkpoint.NewClient(c, checkpoint.Config{Storage: store})
			if err != nil {
				t.Fatal(err)
			}
			return cl
		})
	if resumed[0].Checksum != want[0].Checksum {
		t.Fatalf("resumed checksum %v, want %v", resumed[0].Checksum, want[0].Checksum)
	}
}

func TestCGIdenticalAcrossRedundancyDegrees(t *testing.T) {
	// The headline transparency property: the same CG at 1x, 1.5x, 2x and
	// 3x produces bit-identical results, and replicas agree.
	m, err := Laplacian2D(6)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	results := map[float64][]float64{}
	for _, degree := range []float64{1, 1.5, 2, 3} {
		rm, err := redundancy.NewRankMap(n, degree)
		if err != nil {
			t.Fatal(err)
		}
		w, err := simmpi.NewWorld(rm.PhysicalSize())
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		var sums []float64
		appErr, failures := w.Run(func(pc *simmpi.Comm) error {
			rc, err := redundancy.Wrap(pc, rm, mpi.WithLiveness(w))
			if err != nil {
				return err
			}
			app := &CG{Matrix: m, Iterations: 30}
			if err := app.Run(&Context{Comm: rc}); err != nil {
				return err
			}
			mu.Lock()
			sums = append(sums, app.Checksum)
			mu.Unlock()
			return nil
		})
		if appErr != nil {
			t.Fatalf("degree %v: %v", degree, appErr)
		}
		if len(failures) != 0 {
			t.Fatalf("degree %v failures: %v", degree, failures)
		}
		for _, s := range sums[1:] {
			if s != sums[0] {
				t.Fatalf("degree %v: replicas disagree: %v", degree, sums)
			}
		}
		results[degree] = sums
	}
	base := results[1][0]
	for degree, sums := range results {
		if sums[0] != base {
			t.Fatalf("degree %v checksum %v differs from 1x %v", degree, sums[0], base)
		}
	}
}

func TestStateCodecRejectsCorruption(t *testing.T) {
	s := &cgState{repeat: 1, iter: 2, x: []float64{1}, r: []float64{2}, p: []float64{3}, rho: 4}
	buf := s.encode()
	if _, err := decodeCGState(buf[:len(buf)-1]); err == nil {
		t.Error("truncated state accepted")
	}
	if _, err := decodeCGState(append(buf, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	got, err := decodeCGState(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.repeat != 1 || got.iter != 2 || got.rho != 4 || got.x[0] != 1 {
		t.Fatalf("round trip %+v", got)
	}
}

func TestEncodeVecRoundTrip(t *testing.T) {
	for _, xs := range [][]float64{nil, {}, {1.5, -2.25, math.Pi}} {
		got, err := decodeVec(encodeVec(xs))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(xs) {
			t.Fatalf("length %d vs %d", len(got), len(xs))
		}
		for i := range xs {
			if got[i] != xs[i] {
				t.Fatalf("entry %d: %v vs %v", i, got[i], xs[i])
			}
		}
	}
	if _, err := decodeVec([]byte{1, 2, 3}); err == nil {
		t.Error("garbage accepted")
	}
}

func TestCGUnevenPartition(t *testing.T) {
	// 25 unknowns across 4 ranks: 7/6/6/6 split must still solve.
	m, err := Laplacian2D(5)
	if err != nil {
		t.Fatal(err)
	}
	apps := runPlainCG(t, 4, func() *CG {
		return &CG{Matrix: m, Iterations: 80}
	}, nil)
	if apps[0].ResidualNorm > 1e-8 {
		t.Fatalf("residual %v", apps[0].ResidualNorm)
	}
	if math.Abs(apps[0].Checksum-25) > 1e-6 {
		t.Fatalf("checksum %v", apps[0].Checksum)
	}
}

func TestCGSingleRank(t *testing.T) {
	m, err := Laplacian2D(4)
	if err != nil {
		t.Fatal(err)
	}
	apps := runPlainCG(t, 1, func() *CG {
		return &CG{Matrix: m, Iterations: 60}
	}, nil)
	if math.Abs(apps[0].Checksum-16) > 1e-8 {
		t.Fatalf("checksum %v", apps[0].Checksum)
	}
}

func ExampleCG() {
	m, _ := Laplacian2D(4)
	w, _ := simmpi.NewWorld(2)
	var once sync.Once
	var checksum float64
	w.Run(func(c *simmpi.Comm) error {
		app := &CG{Matrix: m, Iterations: 50}
		if err := app.Run(&Context{Comm: c}); err != nil {
			return err
		}
		once.Do(func() { checksum = app.Checksum })
		return nil
	})
	fmt.Printf("checksum ≈ %.0f\n", checksum)
	// Output: checksum ≈ 16
}
