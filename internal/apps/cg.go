package apps

import (
	"fmt"
	"math"

	"repro/internal/mpi"
)

// CG is the conjugate-gradient benchmark: it solves A·x = b for a sparse
// SPD matrix with rows partitioned contiguously across ranks, using
// allreduce for the dot products and allgather to assemble the full
// iterate for the matrix-vector product — the communication-heavy,
// irregular pattern the paper picked NPB CG for. Like the paper's
// modified benchmark, the solve is repeated Repeats times to extend the
// run ("repeating the computation performed between MPI_Init() and
// MPI_Finalize() n number of times").
//
// The result is bit-deterministic for a fixed virtual size: reductions
// run over a fixed binomial tree, so every replica and every redundancy
// degree produces the identical iterate.
type CG struct {
	// Matrix is the system matrix; every rank holds the full structure
	// (as NPB CG does) but computes only its row block.
	Matrix *CSRMatrix
	// Iterations is the CG iteration count per solve.
	Iterations int
	// Repeats re-runs the solve to extend execution time. Zero means 1.
	Repeats int

	// Result, populated on rank 0 after Run: the final residual norm and
	// a solution checksum (sum of entries), used by tests to verify that
	// runs at different degrees agree bit-for-bit.
	ResidualNorm float64
	Checksum     float64
}

var _ App = (*CG)(nil)

// Name implements App.
func (cg *CG) Name() string { return "cg" }

// cgState is the checkpointable inter-iteration state of one rank.
type cgState struct {
	repeat int // current solve
	iter   int // next iteration within the solve
	x      []float64
	r      []float64
	p      []float64
	rho    float64
}

func (s *cgState) encode() []byte {
	var w stateWriter
	w.int(s.repeat)
	w.int(s.iter)
	w.float64s(s.x)
	w.float64s(s.r)
	w.float64s(s.p)
	w.uint64(math.Float64bits(s.rho))
	return w.bytes()
}

func decodeCGState(buf []byte) (*cgState, error) {
	r := stateReader{buf: buf}
	var s cgState
	var err error
	if s.repeat, err = r.int(); err != nil {
		return nil, err
	}
	if s.iter, err = r.int(); err != nil {
		return nil, err
	}
	if s.x, err = r.float64s(); err != nil {
		return nil, err
	}
	if s.r, err = r.float64s(); err != nil {
		return nil, err
	}
	if s.p, err = r.float64s(); err != nil {
		return nil, err
	}
	bits, err := r.uint64()
	if err != nil {
		return nil, err
	}
	s.rho = math.Float64frombits(bits)
	if err := r.done(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Run implements App.
func (cg *CG) Run(ctx *Context) error {
	if cg.Matrix == nil || cg.Iterations <= 0 {
		return fmt.Errorf("cg: need Matrix and positive Iterations")
	}
	c := ctx.Comm
	n := cg.Matrix.N
	lo, hi := RowRange(n, c.Rank(), c.Size())
	local := hi - lo

	// b = A·ones, so the exact solution is all-ones — verifiable.
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	b := make([]float64, local)
	if err := cg.Matrix.MulRows(lo, hi, ones, b); err != nil {
		return err
	}

	state := &cgState{
		x: make([]float64, local),
		r: append([]float64(nil), b...), // r0 = b - A·0 = b
		p: append([]float64(nil), b...),
	}
	var err error
	state.rho, err = dot(c, state.r, state.r)
	if err != nil {
		return err
	}

	// Resume from checkpoint if one exists.
	if snap, ok, rerr := ctx.restore(); rerr != nil {
		return rerr
	} else if ok {
		if state, err = decodeCGState(snap); err != nil {
			return fmt.Errorf("cg: restoring: %w", err)
		}
		if len(state.x) != local {
			return fmt.Errorf("cg: checkpoint for %d rows, rank now owns %d", len(state.x), local)
		}
	}

	repeats := cg.Repeats
	if repeats <= 0 {
		repeats = 1
	}
	full := make([]float64, 0, n)
	ap := make([]float64, local)
	globalStep := state.repeat*cg.Iterations + state.iter
	for ; state.repeat < repeats; state.repeat++ {
		for ; state.iter < cg.Iterations; state.iter++ {
			// Assemble the full search direction for the matvec.
			full = full[:0]
			parts, gerr := mpi.Allgather(c, encodeVec(state.p))
			if gerr != nil {
				return gerr
			}
			for _, part := range parts {
				vec, derr := decodeVec(part)
				if derr != nil {
					return derr
				}
				full = append(full, vec...)
			}
			if len(full) != n {
				return fmt.Errorf("cg: assembled %d of %d entries", len(full), n)
			}
			if merr := cg.Matrix.MulRows(lo, hi, full, ap); merr != nil {
				return merr
			}
			ctx.compute()

			pap, derr := dot2(c, state.p, ap)
			if derr != nil {
				return derr
			}
			if pap == 0 {
				break // converged to machine precision
			}
			alpha := state.rho / pap
			for i := range state.x {
				state.x[i] += alpha * state.p[i]
				state.r[i] -= alpha * ap[i]
			}
			rhoNew, derr2 := dot(c, state.r, state.r)
			if derr2 != nil {
				return derr2
			}
			beta := rhoNew / state.rho
			state.rho = rhoNew
			for i := range state.p {
				state.p[i] = state.r[i] + beta*state.p[i]
			}

			globalStep++
			if _, cerr := ctx.maybeCheckpoint(globalStep, snapshotCG(state)); cerr != nil {
				return cerr
			}
		}
		state.iter = 0
		if state.repeat+1 < repeats {
			// Reset the solve but keep the repeat counter moving, exactly
			// like the paper's outer repetition loop.
			copy(state.x, make([]float64, local))
			copy(state.r, b)
			copy(state.p, b)
			if state.rho, err = dot(c, state.r, state.r); err != nil {
				return err
			}
		}
	}

	// Final reporting (every rank computes them; they are identical).
	norm, err := dot(c, state.r, state.r)
	if err != nil {
		return err
	}
	cg.ResidualNorm = math.Sqrt(norm)
	sum, err := mpi.AllreduceFloat64s(c, []float64{kahanSum(state.x)}, mpi.OpSum)
	if err != nil {
		return err
	}
	cg.Checksum = sum[0]
	return nil
}

// snapshotCG freezes the state after the just-finished iteration; iter
// points at the next iteration to run.
func snapshotCG(s *cgState) []byte {
	snap := *s
	snap.iter = s.iter + 1
	return snap.encode()
}

// dot computes the global dot product of two distributed vectors.
func dot(c mpi.Comm, a, b []float64) (float64, error) {
	return dot2(c, a, b)
}

func dot2(c mpi.Comm, a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("cg: dot length mismatch %d vs %d", len(a), len(b))
	}
	var local float64
	for i := range a {
		local += a[i] * b[i]
	}
	out, err := mpi.AllreduceFloat64s(c, []float64{local}, mpi.OpSum)
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

func kahanSum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

func encodeVec(xs []float64) []byte {
	var w stateWriter
	w.float64s(xs)
	return w.bytes()
}

func decodeVec(buf []byte) ([]float64, error) {
	r := stateReader{buf: buf}
	xs, err := r.float64s()
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return xs, nil
}
