package apps

import (
	"math"
	"sync"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/mpi"
	"repro/internal/redundancy"
	"repro/internal/simmpi"
)

// smallestEigenvalueLaplacian2D returns the exact smallest eigenvalue of
// the g×g 5-point Laplacian with Dirichlet boundary:
// λ_min = 4 - 2cos(π/(g+1)) - 2cos(π/(g+1)).
func smallestEigenvalueLaplacian2D(g int) float64 {
	c := math.Cos(math.Pi / float64(g+1))
	return 4 - 4*c
}

func runEigen(t *testing.T, ranks int, mk func() *Eigen) []*Eigen {
	t.Helper()
	w, err := simmpi.NewWorld(ranks)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*Eigen, ranks)
	appErr, failures := w.Run(func(c *simmpi.Comm) error {
		app := mk()
		out[c.Rank()] = app
		return app.Run(&Context{Comm: c})
	})
	if appErr != nil {
		t.Fatalf("app error: %v", appErr)
	}
	if len(failures) != 0 {
		t.Fatalf("failures: %v", failures)
	}
	return out
}

func TestEigenConvergesToAnalyticValue(t *testing.T) {
	const g = 6
	m, err := Laplacian2D(g)
	if err != nil {
		t.Fatal(err)
	}
	apps := runEigen(t, 3, func() *Eigen {
		return &Eigen{Matrix: m, OuterIterations: 12, InnerIterations: 80}
	})
	want := smallestEigenvalueLaplacian2D(g)
	for rank, app := range apps {
		if math.Abs(app.Eigenvalue-want)/want > 1e-6 {
			t.Fatalf("rank %d: λ_min = %v, want %v", rank, app.Eigenvalue, want)
		}
	}
}

func TestEigenDeterministicAcrossRankCounts(t *testing.T) {
	m, err := Laplacian2D(5)
	if err != nil {
		t.Fatal(err)
	}
	want := smallestEigenvalueLaplacian2D(5)
	for _, ranks := range []int{1, 2, 4} {
		apps := runEigen(t, ranks, func() *Eigen {
			return &Eigen{Matrix: m, OuterIterations: 10, InnerIterations: 60}
		})
		if math.Abs(apps[0].Eigenvalue-want)/want > 1e-5 {
			t.Fatalf("ranks=%d: λ = %v, want %v", ranks, apps[0].Eigenvalue, want)
		}
	}
}

func TestEigenValidation(t *testing.T) {
	w, err := simmpi.NewWorld(1)
	if err != nil {
		t.Fatal(err)
	}
	appErr, _ := w.Run(func(c *simmpi.Comm) error {
		return (&Eigen{}).Run(&Context{Comm: c})
	})
	if appErr == nil {
		t.Fatal("empty config accepted")
	}
}

func TestEigenCheckpointRestart(t *testing.T) {
	const g = 5
	m, err := Laplacian2D(g)
	if err != nil {
		t.Fatal(err)
	}
	uninterrupted := runEigen(t, 2, func() *Eigen {
		return &Eigen{Matrix: m, OuterIterations: 8, InnerIterations: 50}
	})[0].Eigenvalue

	store := checkpoint.NewMemStorage()
	// Phase 1: four outer iterations, checkpoint at 4.
	w1, err := simmpi.NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	appErr, _ := w1.Run(func(c *simmpi.Comm) error {
		cl, err := checkpoint.NewClient(c, checkpoint.Config{Storage: store, StepInterval: 4})
		if err != nil {
			return err
		}
		return (&Eigen{Matrix: m, OuterIterations: 4, InnerIterations: 50}).
			Run(&Context{Comm: c, Ckpt: cl})
	})
	if appErr != nil {
		t.Fatal(appErr)
	}
	// Phase 2: resume to 8.
	w2, err := simmpi.NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, 2)
	appErr, _ = w2.Run(func(c *simmpi.Comm) error {
		cl, err := checkpoint.NewClient(c, checkpoint.Config{Storage: store})
		if err != nil {
			return err
		}
		app := &Eigen{Matrix: m, OuterIterations: 8, InnerIterations: 50}
		if err := app.Run(&Context{Comm: c, Ckpt: cl}); err != nil {
			return err
		}
		vals[c.Rank()] = app.Eigenvalue
		return nil
	})
	if appErr != nil {
		t.Fatal(appErr)
	}
	if vals[0] != uninterrupted {
		t.Fatalf("resumed λ = %v, uninterrupted %v", vals[0], uninterrupted)
	}
}

func TestEigenUnderRedundancy(t *testing.T) {
	m, err := Laplacian2D(5)
	if err != nil {
		t.Fatal(err)
	}
	want := runEigen(t, 2, func() *Eigen {
		return &Eigen{Matrix: m, OuterIterations: 6, InnerIterations: 40}
	})[0].Eigenvalue

	rm, err := redundancy.NewRankMap(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := simmpi.NewWorld(rm.PhysicalSize())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var vals []float64
	appErr, failures := w.Run(func(pc *simmpi.Comm) error {
		rc, err := redundancy.Wrap(pc, rm, mpi.WithLiveness(w))
		if err != nil {
			return err
		}
		app := &Eigen{Matrix: m, OuterIterations: 6, InnerIterations: 40}
		if err := app.Run(&Context{Comm: rc}); err != nil {
			return err
		}
		mu.Lock()
		vals = append(vals, app.Eigenvalue)
		mu.Unlock()
		return nil
	})
	if appErr != nil {
		t.Fatal(appErr)
	}
	if len(failures) != 0 {
		t.Fatalf("failures: %v", failures)
	}
	for _, v := range vals {
		if v != want {
			t.Fatalf("redundant λ = %v, plain %v", v, want)
		}
	}
}

func TestEigenStateCodec(t *testing.T) {
	s := &eigenState{outer: 3, estimate: 0.5, x: []float64{1, 2}}
	got, err := decodeEigenState(s.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.outer != 3 || got.estimate != 0.5 || got.x[1] != 2 {
		t.Fatalf("round trip %+v", got)
	}
	if _, err := decodeEigenState([]byte{1, 2, 3}); err == nil {
		t.Error("garbage accepted")
	}
}

func TestEigenRandomSPD(t *testing.T) {
	// Smallest eigenvalue of a diagonally dominant matrix with
	// diag = 1 + Σ|off| is ≥ 1 (Gershgorin); inverse power iteration must
	// land inside the Gershgorin band and match across rank counts.
	m, err := RandomSPD(40, 3, 99)
	if err != nil {
		t.Fatal(err)
	}
	a := runEigen(t, 2, func() *Eigen {
		return &Eigen{Matrix: m, OuterIterations: 15, InnerIterations: 80}
	})[0].Eigenvalue
	if a < 0.5 {
		t.Fatalf("λ_min = %v below Gershgorin floor", a)
	}
	b := runEigen(t, 4, func() *Eigen {
		return &Eigen{Matrix: m, OuterIterations: 15, InnerIterations: 80}
	})[0].Eigenvalue
	if math.Abs(a-b)/a > 1e-8 {
		t.Fatalf("rank-count dependence: %v vs %v", a, b)
	}
}
