package apps

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// CSRMatrix is a sparse matrix in compressed-sparse-row form.
type CSRMatrix struct {
	N      int
	RowPtr []int
	ColIdx []int
	Values []float64
}

// Laplacian2D builds the standard 5-point finite-difference Laplacian on
// a g×g grid (n = g² unknowns): symmetric positive definite with known
// conditioning, the canonical CG test matrix.
func Laplacian2D(g int) (*CSRMatrix, error) {
	if g <= 0 {
		return nil, fmt.Errorf("apps: grid size %d", g)
	}
	n := g * g
	m := &CSRMatrix{N: n, RowPtr: make([]int, 0, n+1)}
	m.RowPtr = append(m.RowPtr, 0)
	for row := 0; row < n; row++ {
		i, j := row/g, row%g
		add := func(col int, v float64) {
			m.ColIdx = append(m.ColIdx, col)
			m.Values = append(m.Values, v)
		}
		// Emit in ascending column order for determinism.
		if i > 0 {
			add(row-g, -1)
		}
		if j > 0 {
			add(row-1, -1)
		}
		add(row, 4)
		if j < g-1 {
			add(row+1, -1)
		}
		if i < g-1 {
			add(row+g, -1)
		}
		m.RowPtr = append(m.RowPtr, len(m.ColIdx))
	}
	return m, nil
}

// RandomSPD builds a random sparse symmetric diagonally-dominant matrix
// in the spirit of NPB CG's randomly structured input: nnzPerRow random
// off-diagonal entries per row (symmetrised), with diagonals large enough
// to guarantee positive definiteness. The seed makes it reproducible.
func RandomSPD(n, nnzPerRow int, seed int64) (*CSRMatrix, error) {
	if n <= 0 || nnzPerRow < 0 || nnzPerRow >= n {
		return nil, fmt.Errorf("apps: RandomSPD(%d, %d)", n, nnzPerRow)
	}
	rng := stats.NewStream(seed)
	// Accumulate entries in a dense-ish map per row, then CSR-ify sorted.
	entries := make([]map[int]float64, n)
	for i := range entries {
		entries[i] = make(map[int]float64, nnzPerRow*2+1)
	}
	for i := 0; i < n; i++ {
		for k := 0; k < nnzPerRow; k++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			v := -(rng.Float64() + 0.1)
			entries[i][j] = v
			entries[j][i] = v // symmetrise
		}
	}
	m := &CSRMatrix{N: n, RowPtr: make([]int, 0, n+1)}
	m.RowPtr = append(m.RowPtr, 0)
	for i := 0; i < n; i++ {
		cols := make([]int, 0, len(entries[i])+1)
		for j := range entries[i] {
			cols = append(cols, j)
		}
		cols = append(cols, i)
		sort.Ints(cols)
		// Diagonal dominance: |a_ii| > Σ|a_ij|, accumulated in sorted
		// column order so the same seed yields bit-identical matrices.
		var offSum float64
		for _, j := range cols {
			if j != i {
				offSum += -entries[i][j]
			}
		}
		diag := offSum + 1
		for _, j := range cols {
			if j == i {
				m.ColIdx = append(m.ColIdx, i)
				m.Values = append(m.Values, diag)
			} else {
				m.ColIdx = append(m.ColIdx, j)
				m.Values = append(m.Values, entries[i][j])
			}
		}
		m.RowPtr = append(m.RowPtr, len(m.ColIdx))
	}
	return m, nil
}

// RowRange returns the contiguous row block owned by rank of size ranks,
// balancing remainders across the leading ranks.
func RowRange(n, rank, ranks int) (lo, hi int) {
	per := n / ranks
	rem := n % ranks
	lo = rank*per + min(rank, rem)
	hi = lo + per
	if rank < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// MulRows computes y = A[lo:hi) · x for the owned row block against the
// full vector x.
func (m *CSRMatrix) MulRows(lo, hi int, x, y []float64) error {
	if lo < 0 || hi > m.N || len(x) != m.N || len(y) != hi-lo {
		return fmt.Errorf("apps: MulRows bounds lo=%d hi=%d len(x)=%d len(y)=%d n=%d",
			lo, hi, len(x), len(y), m.N)
	}
	for row := lo; row < hi; row++ {
		var sum float64
		for k := m.RowPtr[row]; k < m.RowPtr[row+1]; k++ {
			sum += m.Values[k] * x[m.ColIdx[k]]
		}
		y[row-lo] = sum
	}
	return nil
}

// Dense returns the dense form, for small-matrix verification in tests.
func (m *CSRMatrix) Dense() [][]float64 {
	out := make([][]float64, m.N)
	for i := range out {
		out[i] = make([]float64, m.N)
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			out[i][m.ColIdx[k]] = m.Values[k]
		}
	}
	return out
}
