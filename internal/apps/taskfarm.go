package apps

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/mpi"
)

// TaskFarm is a master/worker application: rank 0 hands out task indices
// and collects results with wildcard receives (MPI_ANY_SOURCE), the
// pattern whose replica-consistent handling needs the paper's §3
// envelope-forwarding protocol. Workers compute f(task) for a simple
// integer function, so the aggregate is exact and order-independent.
//
// The farm runs to completion in one attempt (its wildcard-driven state
// is not checkpointed); it exists to exercise wildcard receives under
// redundancy and as the paper's master/slave ABFT-style example workload.
type TaskFarm struct {
	// Tasks is the number of work items.
	Tasks int

	// Total is the aggregated result on every rank after Run.
	Total int64
}

var _ App = (*TaskFarm)(nil)

// Name implements App.
func (tf *TaskFarm) Name() string { return "taskfarm" }

const (
	tagWork   = 201 // master → worker: task index, or control sentinel
	tagResult = 202 // worker → master: task result
	tagTotal  = 203 // master → workers: final aggregate
)

// Control sentinels carried on tagWork in place of a task index.
const (
	taskStop   = -1 // no more work: leave the farm
	taskShrink = -2 // a worker died: meet at the Shrink collective
)

// taskValue is the work function: a small deterministic computation.
func taskValue(task int) int64 {
	v := int64(task)
	return v*v%9973 + v
}

// Run implements App.
func (tf *TaskFarm) Run(ctx *Context) error {
	if tf.Tasks <= 0 {
		return fmt.Errorf("taskfarm: need positive Tasks")
	}
	c := ctx.Comm
	if c.Size() < 2 {
		return fmt.Errorf("taskfarm: need at least 2 ranks")
	}
	if ctx.ShrinkRecovery {
		if c.Rank() == 0 {
			return tf.masterShrink(ctx)
		}
		return tf.workerShrink(ctx)
	}
	if c.Rank() == 0 {
		return tf.master(ctx)
	}
	return tf.worker(ctx)
}

func (tf *TaskFarm) master(ctx *Context) error {
	c := ctx.Comm
	workers := c.Size() - 1
	next := 0
	outstanding := 0
	var total int64

	// Prime every worker with one task (or stop it immediately).
	for w := 1; w <= workers; w++ {
		if next < tf.Tasks {
			if err := c.Send(w, tagWork, encodeTask(next)); err != nil {
				return err
			}
			next++
			outstanding++
		} else {
			if err := c.Send(w, tagWork, encodeTask(-1)); err != nil {
				return err
			}
		}
	}
	// Collect results with wildcard receives, handing out work until
	// exhausted.
	for outstanding > 0 {
		msg, err := c.Recv(mpi.AnySource, tagResult)
		if err != nil {
			return err
		}
		task, value, err := decodeResult(msg.Data)
		if err != nil {
			return err
		}
		if want := taskValue(task); value != want {
			return fmt.Errorf("taskfarm: task %d returned %d, want %d", task, value, want)
		}
		total += value
		outstanding--
		reply := -1
		if next < tf.Tasks {
			reply = next
			next++
			outstanding++
		}
		if err := c.Send(msg.Source, tagWork, encodeTask(reply)); err != nil {
			return err
		}
	}
	// Publish the aggregate so every rank (and test) can check it.
	if _, err := mpi.Bcast(c, 0, encodeTask64(total)); err != nil {
		return err
	}
	tf.Total = total
	return nil
}

func (tf *TaskFarm) worker(ctx *Context) error {
	c := ctx.Comm
	for {
		msg, err := c.Recv(0, tagWork)
		if err != nil {
			return err
		}
		task, err := decodeTask(msg.Data)
		if err != nil {
			return err
		}
		if task < 0 {
			break
		}
		ctx.compute()
		if err := c.Send(0, tagResult, encodeResult(task, taskValue(task))); err != nil {
			return err
		}
	}
	buf, err := mpi.Bcast(c, 0, nil)
	if err != nil {
		return err
	}
	tf.Total, err = decodeTask64(buf)
	return err
}

// masterShrink is the fault-tolerant master: it observes worker deaths
// through the communicator's errhandler (never by sniffing error
// identities), requeues the dead worker's in-flight task, and repairs
// the farm on the survivors with a Shrink collective. Unlike the plain
// master it never stops an idle worker early — every survivor stays in
// its receive loop so it can reach the Shrink collective of a later
// repair — and the stop sentinel goes out only once all tasks are done.
// The master itself is the farm's single point of failure: its death is
// not survivable and simply fails the job.
func (tf *TaskFarm) masterShrink(ctx *Context) error {
	c := ctx.Comm
	failed, handled := 0, 0
	install := func(comm mpi.Comm) {
		comm.SetErrhandler(func(mpi.FailureInfo) { failed++ })
	}
	install(c)

	next, completed := 0, 0
	var requeued []int
	inflight := make(map[int]int) // worker rank (current comm) → task
	var total int64

	// assign hands the next task (requeued first) to an idle worker; with
	// nothing left the worker is left parked in its receive loop.
	assign := func(w int) error {
		task := -1
		if n := len(requeued); n > 0 {
			task = requeued[n-1]
			requeued = requeued[:n-1]
		} else if next < tf.Tasks {
			task = next
			next++
		}
		if task < 0 {
			return nil
		}
		if err := c.Send(w, tagWork, encodeTask(task)); err != nil {
			return err
		}
		inflight[w] = task
		return nil
	}
	for w := 1; w < c.Size(); w++ {
		if err := assign(w); err != nil {
			return err
		}
	}

	for completed < tf.Tasks {
		msg, err := c.Recv(mpi.AnySource, tagResult)
		if err != nil {
			if failed == handled {
				return err // not a failure this master was notified of
			}
			// Watermark to the count observed BEFORE the repair: the
			// errhandler can fire during the repair's own collectives (a
			// second sphere dying mid-Shrink), and such a failure arrived
			// too late for the shrink's survivor agreement — it is still
			// pending and must trigger the next repair, not be absorbed.
			observed := failed
			nc, rerr := tf.repairMaster(c, inflight, &requeued)
			if rerr != nil {
				return rerr
			}
			c = nc
			install(c)
			handled = observed
			if c.Size() < 2 {
				return fmt.Errorf("taskfarm: no workers survived")
			}
			for w := 1; w < c.Size(); w++ {
				if _, busy := inflight[w]; !busy {
					if err := assign(w); err != nil {
						return err
					}
				}
			}
			continue
		}
		task, value, err := decodeResult(msg.Data)
		if err != nil {
			return err
		}
		if want := taskValue(task); value != want {
			return fmt.Errorf("taskfarm: task %d returned %d, want %d", task, value, want)
		}
		total += value
		completed++
		delete(inflight, msg.Source)
		if ctx.NoteStep != nil && ctx.writer() {
			ctx.NoteStep(completed)
		}
		if err := assign(msg.Source); err != nil {
			return err
		}
	}

	for w := 1; w < c.Size(); w++ {
		if err := c.Send(w, tagWork, encodeTask(taskStop)); err != nil {
			return err
		}
	}
	if _, err := mpi.Bcast(c, 0, encodeTask64(total)); err != nil {
		return err
	}
	tf.Total = total
	return nil
}

// repairMaster runs one shrink episode: every live worker is directed
// to the Shrink collective, the survivors agree on the new
// communicator, and in-flight work owed by non-survivors goes back on
// the queue. Requeueing is driven by post-shrink membership, not by the
// failure notifications, so a death landing mid-repair still has its
// task recovered.
func (tf *TaskFarm) repairMaster(c mpi.Comm, inflight map[int]int, requeued *[]int) (mpi.Comm, error) {
	// Sends to dead ranks are silently dropped, so the fan-out is safe.
	for w := 1; w < c.Size(); w++ {
		if err := c.Send(w, tagWork, encodeTask(taskShrink)); err != nil {
			return nil, err
		}
	}
	sh, err := shrinkComm(c)
	if err != nil {
		return nil, err
	}
	// Iterate workers in rank order: master replicas must make identical
	// requeue (and hence reassignment) decisions in identical order.
	busy := make([]int, 0, len(inflight))
	for w := range inflight {
		busy = append(busy, w)
	}
	sort.Ints(busy)
	moved := make(map[int]int, len(inflight))
	for _, w := range busy {
		if nw, ok := shrinkRemap(c, sh, w); ok {
			moved[nw] = inflight[w]
		} else {
			*requeued = append(*requeued, inflight[w])
		}
		delete(inflight, w)
	}
	for w, t := range moved {
		inflight[w] = t
	}
	return sh, nil
}

// workerShrink is the fault-tolerant worker: the plain work loop plus
// the shrink sentinel, which routes it into the repair collective. A
// worker never observes its peers' deaths directly — the master
// serialises every repair through tagWork — so a receive error here
// means the master (or this worker itself) is gone, which is fatal.
func (tf *TaskFarm) workerShrink(ctx *Context) error {
	c := ctx.Comm
	for {
		msg, err := c.Recv(0, tagWork)
		if err != nil {
			return err
		}
		task, err := decodeTask(msg.Data)
		if err != nil {
			return err
		}
		if task == taskShrink {
			sh, serr := shrinkComm(c)
			if serr != nil {
				return serr
			}
			c = sh
			continue
		}
		if task < 0 {
			break
		}
		ctx.compute()
		if err := c.Send(0, tagResult, encodeResult(task, taskValue(task))); err != nil {
			return err
		}
	}
	buf, err := mpi.Bcast(c, 0, nil)
	if err != nil {
		return err
	}
	tf.Total, err = decodeTask64(buf)
	return err
}

func encodeTask(task int) []byte { return encodeTask64(int64(task)) }

func encodeTask64(v int64) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	return buf[:]
}

func decodeTask(buf []byte) (int, error) {
	v, err := decodeTask64(buf)
	return int(v), err
}

func decodeTask64(buf []byte) (int64, error) {
	if len(buf) != 8 {
		return 0, fmt.Errorf("taskfarm: %d-byte task message", len(buf))
	}
	return int64(binary.LittleEndian.Uint64(buf)), nil
}

func encodeResult(task int, value int64) []byte {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(int64(task)))
	binary.LittleEndian.PutUint64(buf[8:], uint64(value))
	return buf[:]
}

func decodeResult(buf []byte) (task int, value int64, err error) {
	if len(buf) != 16 {
		return 0, 0, fmt.Errorf("taskfarm: %d-byte result message", len(buf))
	}
	return int(int64(binary.LittleEndian.Uint64(buf[:8]))),
		int64(binary.LittleEndian.Uint64(buf[8:])), nil
}
