package apps

import (
	"encoding/binary"
	"fmt"

	"repro/internal/mpi"
)

// TaskFarm is a master/worker application: rank 0 hands out task indices
// and collects results with wildcard receives (MPI_ANY_SOURCE), the
// pattern whose replica-consistent handling needs the paper's §3
// envelope-forwarding protocol. Workers compute f(task) for a simple
// integer function, so the aggregate is exact and order-independent.
//
// The farm runs to completion in one attempt (its wildcard-driven state
// is not checkpointed); it exists to exercise wildcard receives under
// redundancy and as the paper's master/slave ABFT-style example workload.
type TaskFarm struct {
	// Tasks is the number of work items.
	Tasks int

	// Total is the aggregated result on every rank after Run.
	Total int64
}

var _ App = (*TaskFarm)(nil)

// Name implements App.
func (tf *TaskFarm) Name() string { return "taskfarm" }

const (
	tagWork   = 201 // master → worker: task index, or stop sentinel
	tagResult = 202 // worker → master: task result
	tagTotal  = 203 // master → workers: final aggregate
)

// taskValue is the work function: a small deterministic computation.
func taskValue(task int) int64 {
	v := int64(task)
	return v*v%9973 + v
}

// Run implements App.
func (tf *TaskFarm) Run(ctx *Context) error {
	if tf.Tasks <= 0 {
		return fmt.Errorf("taskfarm: need positive Tasks")
	}
	c := ctx.Comm
	if c.Size() < 2 {
		return fmt.Errorf("taskfarm: need at least 2 ranks")
	}
	if c.Rank() == 0 {
		return tf.master(ctx)
	}
	return tf.worker(ctx)
}

func (tf *TaskFarm) master(ctx *Context) error {
	c := ctx.Comm
	workers := c.Size() - 1
	next := 0
	outstanding := 0
	var total int64

	// Prime every worker with one task (or stop it immediately).
	for w := 1; w <= workers; w++ {
		if next < tf.Tasks {
			if err := c.Send(w, tagWork, encodeTask(next)); err != nil {
				return err
			}
			next++
			outstanding++
		} else {
			if err := c.Send(w, tagWork, encodeTask(-1)); err != nil {
				return err
			}
		}
	}
	// Collect results with wildcard receives, handing out work until
	// exhausted.
	for outstanding > 0 {
		msg, err := c.Recv(mpi.AnySource, tagResult)
		if err != nil {
			return err
		}
		task, value, err := decodeResult(msg.Data)
		if err != nil {
			return err
		}
		if want := taskValue(task); value != want {
			return fmt.Errorf("taskfarm: task %d returned %d, want %d", task, value, want)
		}
		total += value
		outstanding--
		reply := -1
		if next < tf.Tasks {
			reply = next
			next++
			outstanding++
		}
		if err := c.Send(msg.Source, tagWork, encodeTask(reply)); err != nil {
			return err
		}
	}
	// Publish the aggregate so every rank (and test) can check it.
	if _, err := mpi.Bcast(c, 0, encodeTask64(total)); err != nil {
		return err
	}
	tf.Total = total
	return nil
}

func (tf *TaskFarm) worker(ctx *Context) error {
	c := ctx.Comm
	for {
		msg, err := c.Recv(0, tagWork)
		if err != nil {
			return err
		}
		task, err := decodeTask(msg.Data)
		if err != nil {
			return err
		}
		if task < 0 {
			break
		}
		ctx.compute()
		if err := c.Send(0, tagResult, encodeResult(task, taskValue(task))); err != nil {
			return err
		}
	}
	buf, err := mpi.Bcast(c, 0, nil)
	if err != nil {
		return err
	}
	tf.Total, err = decodeTask64(buf)
	return err
}

func encodeTask(task int) []byte { return encodeTask64(int64(task)) }

func encodeTask64(v int64) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	return buf[:]
}

func decodeTask(buf []byte) (int, error) {
	v, err := decodeTask64(buf)
	return int(v), err
}

func decodeTask64(buf []byte) (int64, error) {
	if len(buf) != 8 {
		return 0, fmt.Errorf("taskfarm: %d-byte task message", len(buf))
	}
	return int64(binary.LittleEndian.Uint64(buf)), nil
}

func encodeResult(task int, value int64) []byte {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(int64(task)))
	binary.LittleEndian.PutUint64(buf[8:], uint64(value))
	return buf[:]
}

func decodeResult(buf []byte) (task int, value int64, err error) {
	if len(buf) != 16 {
		return 0, 0, fmt.Errorf("taskfarm: %d-byte result message", len(buf))
	}
	return int(int64(binary.LittleEndian.Uint64(buf[:8]))),
		int64(binary.LittleEndian.Uint64(buf[8:])), nil
}
