// Package apps contains the benchmark applications the reproduction runs
// under combined redundancy + checkpoint/restart: a distributed
// conjugate-gradient solver standing in for the NPB CG kernel the paper
// modified ("irregular long distance communication", allreduce-heavy), a
// 2-D Jacobi heat stencil (halo exchange), and a master/worker task farm
// (exercises MPI_ANY_SOURCE and hence the wildcard-receive protocol).
//
// Applications are written against mpi.Comm only, so the same code runs
// unreplicated or at any partial-redundancy degree — the paper's "no
// change is needed in the application source code" requirement. They must
// be deterministic (no wall-clock or randomness in results): replicas of
// a rank must produce bit-identical messages.
package apps

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/mpi"
)

// Context is what the runtime hands each application process.
type Context struct {
	// Comm is the (virtual) communicator.
	Comm mpi.Comm
	// Ckpt coordinates snapshots; nil disables checkpointing.
	Ckpt *checkpoint.Client
	// IsWriter reports whether this process should persist its rank's
	// checkpoint state right now (the lowest alive replica of the rank).
	// Always true for unreplicated runs. May be nil, meaning true.
	IsWriter func() bool
	// ComputeDelay emulates per-iteration computation time. The paper's
	// cluster spends (1-α) of its time computing; in-process message
	// passing is so fast that α would otherwise be ≈1.
	ComputeDelay time.Duration
	// NoteStep, when non-nil, is invoked by the writer replica once per
	// application step with the global step number — the runner's hook
	// for recomputed-work accounting and step-triggered failure
	// injection.
	NoteStep func(step int)
	// ShrinkRecovery tells the application that the runtime never
	// restarts: process failures must be survived in place through the
	// communicator's fault-notification API (SetErrhandler, FailureAck,
	// Agree, Shrink). Checkpointing is disabled under this policy (Ckpt
	// is nil). Applications that do not implement shrink-and-continue
	// simply fail when a peer dies, exactly as they would without the
	// flag.
	ShrinkRecovery bool
}

func (ctx *Context) writer() bool {
	if ctx.IsWriter == nil {
		return true
	}
	return ctx.IsWriter()
}

// maybeCheckpoint snapshots at the client's step schedule, if enabled.
// It also reports step progress through NoteStep — once per virtual rank
// per step, because only the writer replica reports.
func (ctx *Context) maybeCheckpoint(step int, state []byte) (bool, error) {
	if ctx.NoteStep != nil && ctx.writer() {
		ctx.NoteStep(step)
	}
	if ctx.Ckpt == nil {
		return false, nil
	}
	return ctx.Ckpt.MaybeCheckpoint(step, state, ctx.writer())
}

// restore loads this rank's state if a checkpoint exists.
func (ctx *Context) restore() ([]byte, bool, error) {
	if ctx.Ckpt == nil {
		return nil, false, nil
	}
	return ctx.Ckpt.Restore()
}

// compute burns the configured emulated computation time.
func (ctx *Context) compute() {
	if ctx.ComputeDelay > 0 {
		time.Sleep(ctx.ComputeDelay)
	}
}

// shrinkComm runs Comm.Shrink and narrows the result to *mpi.Shrunk,
// the concrete type every backend's Shrink builds (the apps need its
// rank-translation accessors to carry bookkeeping across a repair).
func shrinkComm(c mpi.Comm) (*mpi.Shrunk, error) {
	sc, err := c.Shrink()
	if err != nil {
		return nil, err
	}
	sh, ok := sc.(*mpi.Shrunk)
	if !ok {
		return nil, fmt.Errorf("apps: Shrink returned %T, want *mpi.Shrunk", sc)
	}
	return sh, nil
}

// shrinkRemap translates a rank of the pre-shrink communicator old into
// the post-shrink communicator sh; ok is false when the rank did not
// survive. Shrunk communicators stack one level deep over a common
// base, so the translation goes through base-rank space.
func shrinkRemap(old mpi.Comm, sh *mpi.Shrunk, rank int) (int, bool) {
	base := rank
	if os, isShrunk := old.(*mpi.Shrunk); isShrunk {
		br, err := os.BaseRank(rank)
		if err != nil {
			return 0, false
		}
		base = br
	}
	return sh.NewRank(base)
}

// App is a deterministic distributed application.
type App interface {
	// Name identifies the application in logs and results.
	Name() string
	// Run executes this process's part of the computation. It is invoked
	// once per process per job attempt; after a restart it must resume
	// from the last checkpoint via the Context.
	Run(ctx *Context) error
}

// --- small binary state codec shared by the applications ---

// stateWriter builds length-delimited binary snapshots.
type stateWriter struct {
	buf []byte
}

func (w *stateWriter) uint64(v uint64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	w.buf = append(w.buf, tmp[:]...)
}

func (w *stateWriter) int(v int) { w.uint64(uint64(int64(v))) }

func (w *stateWriter) float64s(xs []float64) {
	w.int(len(xs))
	for _, x := range xs {
		w.uint64(math.Float64bits(x))
	}
}

func (w *stateWriter) bytes() []byte { return w.buf }

// stateReader parses snapshots written by stateWriter.
type stateReader struct {
	buf []byte
}

func (r *stateReader) uint64() (uint64, error) {
	if len(r.buf) < 8 {
		return 0, fmt.Errorf("apps: truncated state (%d bytes left)", len(r.buf))
	}
	v := binary.LittleEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v, nil
}

func (r *stateReader) int() (int, error) {
	v, err := r.uint64()
	return int(int64(v)), err
}

func (r *stateReader) float64s() ([]float64, error) {
	n, err := r.int()
	if err != nil {
		return nil, err
	}
	if n < 0 || len(r.buf) < 8*n {
		return nil, fmt.Errorf("apps: state declares %d floats, %d bytes left", n, len(r.buf))
	}
	xs := make([]float64, n)
	for i := range xs {
		v, err := r.uint64()
		if err != nil {
			return nil, err
		}
		xs[i] = math.Float64frombits(v)
	}
	return xs, nil
}

func (r *stateReader) done() error {
	if len(r.buf) != 0 {
		return fmt.Errorf("apps: %d trailing state bytes", len(r.buf))
	}
	return nil
}
