package apps

import (
	"fmt"
	"math"

	"repro/internal/mpi"
)

// Eigen estimates the smallest eigenvalue of a sparse SPD matrix via
// inverse power iteration with inner CG solves — exactly what the NPB CG
// benchmark the paper runs actually computes ("It is used to compute an
// approximation to the smallest eigenvalue of a large sparse symmetric
// positive definite matrix"). Each outer iteration solves A·z = x with
// CG, normalises z, and updates the Rayleigh-quotient estimate; outer
// iterations are the checkpoint boundary.
type Eigen struct {
	// Matrix is the SPD system matrix.
	Matrix *CSRMatrix
	// OuterIterations is the inverse-power-iteration count.
	OuterIterations int
	// InnerIterations is the CG iteration budget per solve.
	InnerIterations int

	// Eigenvalue is the smallest-eigenvalue estimate after Run
	// (identical on every rank).
	Eigenvalue float64
}

var _ App = (*Eigen)(nil)

// Name implements App.
func (e *Eigen) Name() string { return "eigen" }

// eigenState is the checkpointable outer-iteration state.
type eigenState struct {
	outer    int
	estimate float64
	x        []float64 // current normalised iterate (local rows)
}

func (s *eigenState) encode() []byte {
	var w stateWriter
	w.int(s.outer)
	w.uint64(math.Float64bits(s.estimate))
	w.float64s(s.x)
	return w.bytes()
}

func decodeEigenState(buf []byte) (*eigenState, error) {
	r := stateReader{buf: buf}
	var s eigenState
	var err error
	if s.outer, err = r.int(); err != nil {
		return nil, err
	}
	bits, err := r.uint64()
	if err != nil {
		return nil, err
	}
	s.estimate = math.Float64frombits(bits)
	if s.x, err = r.float64s(); err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Run implements App.
func (e *Eigen) Run(ctx *Context) error {
	if e.Matrix == nil || e.OuterIterations <= 0 || e.InnerIterations <= 0 {
		return fmt.Errorf("eigen: need Matrix and positive iteration counts")
	}
	c := ctx.Comm
	n := e.Matrix.N
	lo, hi := RowRange(n, c.Rank(), c.Size())
	local := hi - lo

	state := &eigenState{x: make([]float64, local)}
	// Deterministic non-degenerate start vector: x_i = 1 + i/n.
	for i := range state.x {
		state.x[i] = 1 + float64(lo+i)/float64(n)
	}
	if err := normalize(c, state.x); err != nil {
		return err
	}

	if snap, ok, err := ctx.restore(); err != nil {
		return err
	} else if ok {
		restored, derr := decodeEigenState(snap)
		if derr != nil {
			return fmt.Errorf("eigen: restoring: %w", derr)
		}
		if len(restored.x) != local {
			return fmt.Errorf("eigen: checkpoint for %d rows, rank owns %d", len(restored.x), local)
		}
		state = restored
	}

	for ; state.outer < e.OuterIterations; state.outer++ {
		// Solve A·z = x with CG (inner iterations, warm zero start).
		z, err := e.cgSolve(ctx, lo, hi, state.x)
		if err != nil {
			return err
		}
		// Rayleigh-quotient update for the smallest eigenvalue:
		// λ_min ≈ (x·x)/(x·z) with z = A⁻¹x and ‖x‖ = 1.
		xz, err := dot(c, state.x, z)
		if err != nil {
			return err
		}
		if xz == 0 {
			return fmt.Errorf("eigen: degenerate iterate at outer %d", state.outer)
		}
		state.estimate = 1 / xz
		copy(state.x, z)
		if err := normalize(c, state.x); err != nil {
			return err
		}
		ctx.compute()
		if _, err := ctx.maybeCheckpoint(state.outer+1, snapshotEigen(state)); err != nil {
			return err
		}
	}
	e.Eigenvalue = state.estimate
	return nil
}

func snapshotEigen(s *eigenState) []byte {
	snap := eigenState{outer: s.outer + 1, estimate: s.estimate, x: s.x}
	return snap.encode()
}

// cgSolve runs InnerIterations of CG for A·z = b (local row block b).
func (e *Eigen) cgSolve(ctx *Context, lo, hi int, b []float64) ([]float64, error) {
	c := ctx.Comm
	n := e.Matrix.N
	local := hi - lo
	z := make([]float64, local)
	r := append([]float64(nil), b...)
	p := append([]float64(nil), b...)
	rho, err := dot(c, r, r)
	if err != nil {
		return nil, err
	}
	ap := make([]float64, local)
	full := make([]float64, 0, n)
	for iter := 0; iter < e.InnerIterations && rho > 1e-28; iter++ {
		full = full[:0]
		parts, err := mpi.Allgather(c, encodeVec(p))
		if err != nil {
			return nil, err
		}
		for _, part := range parts {
			vec, derr := decodeVec(part)
			if derr != nil {
				return nil, derr
			}
			full = append(full, vec...)
		}
		if err := e.Matrix.MulRows(lo, hi, full, ap); err != nil {
			return nil, err
		}
		pap, err := dot(c, p, ap)
		if err != nil {
			return nil, err
		}
		if pap == 0 {
			break
		}
		alpha := rho / pap
		for i := range z {
			z[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rhoNew, err := dot(c, r, r)
		if err != nil {
			return nil, err
		}
		beta := rhoNew / rho
		rho = rhoNew
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
	}
	return z, nil
}

// normalize scales the distributed vector to unit 2-norm in place.
func normalize(c mpi.Comm, x []float64) error {
	nrm2, err := dot(c, x, x)
	if err != nil {
		return err
	}
	if nrm2 <= 0 {
		return fmt.Errorf("eigen: zero iterate")
	}
	inv := 1 / math.Sqrt(nrm2)
	for i := range x {
		x[i] *= inv
	}
	return nil
}
