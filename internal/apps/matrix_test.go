package apps

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLaplacian2DStructure(t *testing.T) {
	m, err := Laplacian2D(3)
	if err != nil {
		t.Fatal(err)
	}
	if m.N != 9 {
		t.Fatalf("N = %d", m.N)
	}
	d := m.Dense()
	// Symmetry and diagonal.
	for i := 0; i < m.N; i++ {
		if d[i][i] != 4 {
			t.Fatalf("diag[%d] = %v", i, d[i][i])
		}
		for j := 0; j < m.N; j++ {
			if d[i][j] != d[j][i] {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
			if i != j && d[i][j] != 0 && d[i][j] != -1 {
				t.Fatalf("off-diagonal (%d,%d) = %v", i, j, d[i][j])
			}
		}
	}
	// Center point (1,1) has 4 neighbours.
	center := 4
	count := 0
	for j := 0; j < m.N; j++ {
		if j != center && d[center][j] == -1 {
			count++
		}
	}
	if count != 4 {
		t.Fatalf("center has %d neighbours", count)
	}
}

func TestLaplacianRejectsBadSize(t *testing.T) {
	if _, err := Laplacian2D(0); err == nil {
		t.Fatal("g=0 accepted")
	}
}

func TestRandomSPDProperties(t *testing.T) {
	m, err := RandomSPD(40, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	d := m.Dense()
	for i := 0; i < m.N; i++ {
		var off float64
		for j := 0; j < m.N; j++ {
			if d[i][j] != d[j][i] {
				t.Fatalf("asymmetric at (%d,%d): %v vs %v", i, j, d[i][j], d[j][i])
			}
			if i != j {
				off += math.Abs(d[i][j])
			}
		}
		if d[i][i] <= off {
			t.Fatalf("row %d not diagonally dominant: %v <= %v", i, d[i][i], off)
		}
	}
	// CSR columns strictly ascending per row.
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i] + 1; k < m.RowPtr[i+1]; k++ {
			if m.ColIdx[k] <= m.ColIdx[k-1] {
				t.Fatalf("row %d columns not ascending", i)
			}
		}
	}
}

func TestRandomSPDReproducible(t *testing.T) {
	a, err := RandomSPD(20, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomSPD(20, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Values) != len(b.Values) {
		t.Fatal("nnz differ")
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] || a.ColIdx[i] != b.ColIdx[i] {
			t.Fatal("same seed produced different matrices")
		}
	}
}

func TestRandomSPDValidation(t *testing.T) {
	if _, err := RandomSPD(0, 1, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := RandomSPD(4, 4, 1); err == nil {
		t.Error("nnzPerRow=n accepted")
	}
}

func TestRowRangeCoversExactly(t *testing.T) {
	f := func(nRaw, ranksRaw uint8) bool {
		n := int(nRaw) + 1
		ranks := int(ranksRaw%16) + 1
		covered := 0
		prevHi := 0
		for r := 0; r < ranks; r++ {
			lo, hi := RowRange(n, r, ranks)
			if lo != prevHi || hi < lo {
				return false
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == n && prevHi == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRowRangeBalance(t *testing.T) {
	// Block sizes differ by at most one.
	lo0, hi0 := RowRange(10, 0, 3)
	lo1, hi1 := RowRange(10, 1, 3)
	lo2, hi2 := RowRange(10, 2, 3)
	sizes := []int{hi0 - lo0, hi1 - lo1, hi2 - lo2}
	if sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 3 {
		t.Fatalf("sizes %v", sizes)
	}
}

func TestMulRowsMatchesDense(t *testing.T) {
	m, err := Laplacian2D(4)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, m.N)
	for i := range x {
		x[i] = float64(i%5) - 2
	}
	d := m.Dense()
	want := make([]float64, m.N)
	for i := range want {
		for j := range x {
			want[i] += d[i][j] * x[j]
		}
	}
	got := make([]float64, m.N)
	if err := m.MulRows(0, m.N, x, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("row %d: %v vs %v", i, got[i], want[i])
		}
	}
	// Partial row block agrees too.
	part := make([]float64, 5)
	if err := m.MulRows(3, 8, x, part); err != nil {
		t.Fatal(err)
	}
	for i := range part {
		if part[i] != got[3+i] {
			t.Fatalf("block row %d differs", i)
		}
	}
}

func TestMulRowsValidation(t *testing.T) {
	m, err := Laplacian2D(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.MulRows(0, 5, make([]float64, 4), make([]float64, 5)); err == nil {
		t.Error("hi > N accepted")
	}
	if err := m.MulRows(0, 2, make([]float64, 3), make([]float64, 2)); err == nil {
		t.Error("short x accepted")
	}
	if err := m.MulRows(0, 2, make([]float64, 4), make([]float64, 1)); err == nil {
		t.Error("short y accepted")
	}
}
