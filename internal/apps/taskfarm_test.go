package apps

import (
	"sync"
	"testing"

	"repro/internal/mpi"
	"repro/internal/redundancy"
	"repro/internal/simmpi"
)

func expectedFarmTotal(tasks int) int64 {
	var total int64
	for t := 0; t < tasks; t++ {
		total += taskValue(t)
	}
	return total
}

func TestTaskFarmPlain(t *testing.T) {
	const ranks, tasks = 4, 37
	w, err := simmpi.NewWorld(ranks)
	if err != nil {
		t.Fatal(err)
	}
	totals := make([]int64, ranks)
	appErr, failures := w.Run(func(c *simmpi.Comm) error {
		app := &TaskFarm{Tasks: tasks}
		if err := app.Run(&Context{Comm: c}); err != nil {
			return err
		}
		totals[c.Rank()] = app.Total
		return nil
	})
	if appErr != nil {
		t.Fatalf("app error: %v", appErr)
	}
	if len(failures) != 0 {
		t.Fatalf("failures: %v", failures)
	}
	want := expectedFarmTotal(tasks)
	for rank, got := range totals {
		if got != want {
			t.Fatalf("rank %d total %d, want %d", rank, got, want)
		}
	}
}

func TestTaskFarmMoreWorkersThanTasks(t *testing.T) {
	const ranks, tasks = 6, 3
	w, err := simmpi.NewWorld(ranks)
	if err != nil {
		t.Fatal(err)
	}
	appErr, _ := w.Run(func(c *simmpi.Comm) error {
		app := &TaskFarm{Tasks: tasks}
		if err := app.Run(&Context{Comm: c}); err != nil {
			return err
		}
		if app.Total != expectedFarmTotal(tasks) {
			t.Errorf("rank %d total %d", c.Rank(), app.Total)
		}
		return nil
	})
	if appErr != nil {
		t.Fatal(appErr)
	}
}

func TestTaskFarmUnderRedundancy(t *testing.T) {
	// The master's wildcard receives must behave identically on both of
	// its replicas — the full §3 protocol in a realistic workload.
	for _, degree := range []float64{1.5, 2, 3} {
		degree := degree
		const n, tasks = 4, 25
		rm, err := redundancy.NewRankMap(n, degree)
		if err != nil {
			t.Fatal(err)
		}
		w, err := simmpi.NewWorld(rm.PhysicalSize())
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		var totals []int64
		appErr, failures := w.Run(func(pc *simmpi.Comm) error {
			rc, err := redundancy.Wrap(pc, rm, mpi.WithLiveness(w))
			if err != nil {
				return err
			}
			app := &TaskFarm{Tasks: tasks}
			if err := app.Run(&Context{Comm: rc}); err != nil {
				return err
			}
			mu.Lock()
			totals = append(totals, app.Total)
			mu.Unlock()
			return nil
		})
		if appErr != nil {
			t.Fatalf("degree %v: %v", degree, appErr)
		}
		if len(failures) != 0 {
			t.Fatalf("degree %v failures: %v", degree, failures)
		}
		want := expectedFarmTotal(tasks)
		for i, got := range totals {
			if got != want {
				t.Fatalf("degree %v replica %d total %d, want %d", degree, i, got, want)
			}
		}
	}
}

func TestTaskFarmValidation(t *testing.T) {
	w, err := simmpi.NewWorld(1)
	if err != nil {
		t.Fatal(err)
	}
	appErr, _ := w.Run(func(c *simmpi.Comm) error {
		return (&TaskFarm{Tasks: 5}).Run(&Context{Comm: c})
	})
	if appErr == nil {
		t.Fatal("single-rank farm accepted")
	}
	w2, err := simmpi.NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	appErr, _ = w2.Run(func(c *simmpi.Comm) error {
		return (&TaskFarm{}).Run(&Context{Comm: c})
	})
	if appErr == nil {
		t.Fatal("zero tasks accepted")
	}
}

func TestTaskCodecs(t *testing.T) {
	if v, err := decodeTask(encodeTask(-1)); err != nil || v != -1 {
		t.Fatalf("sentinel round trip %d/%v", v, err)
	}
	task, val, err := decodeResult(encodeResult(12, 345))
	if err != nil || task != 12 || val != 345 {
		t.Fatalf("result round trip %d/%d/%v", task, val, err)
	}
	if _, err := decodeTask([]byte{1, 2}); err == nil {
		t.Error("short task accepted")
	}
	if _, _, err := decodeResult([]byte{1}); err == nil {
		t.Error("short result accepted")
	}
}
