package sim

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/stats"
)

// paperConfig is the §6 experimental setup: 128-process CG, 46 min base
// run, α = 0.2, c = 120 s, R = 500 s, Daly interval, failures suppressed
// during checkpoint/restart as in the paper's experiment.
func paperConfig(mtbfHours, degree float64) Config {
	return Config{
		N:              128,
		Degree:         degree,
		Work:           46 * model.Minute,
		Alpha:          0.2,
		NodeMTBF:       mtbfHours * model.Hour,
		CheckpointCost: 120,
		RestartCost:    500,
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{},
		{N: 1, Degree: 0.5, Work: 1, NodeMTBF: 1},
		{N: 1, Degree: 1, Work: 0, NodeMTBF: 1},
		{N: 1, Degree: 1, Work: 1, NodeMTBF: 0},
		{N: 1, Degree: 1, Work: 1, NodeMTBF: 1, Alpha: 2},
		{N: 1, Degree: 1, Work: 1, NodeMTBF: 1, CheckpointCost: -1},
	}
	for i, cfg := range bad {
		if _, err := Simulate(cfg, stats.NewStream(1)); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestFailureFreeRunExactTime(t *testing.T) {
	// Effectively infinite MTBF: total = t_Red + checkpoints·c with the
	// Daly interval resolved from the enormous MTBF (→ +Inf → disabled).
	cfg := paperConfig(1e12, 2)
	res, err := Simulate(cfg, stats.NewStream(1))
	if err != nil {
		t.Fatal(err)
	}
	tRed := model.RedundantTime(cfg.Work, cfg.Alpha, 2)
	want := tRed + float64(res.Checkpoints)*cfg.CheckpointCost
	if math.Abs(res.Total-want) > 1e-6 {
		t.Fatalf("total %v, want %v (ckpts %d)", res.Total, want, res.Checkpoints)
	}
	if res.Failures != 0 {
		t.Fatalf("failures %d", res.Failures)
	}
}

func TestFixedIntervalCheckpointCount(t *testing.T) {
	// 1000 s of work at δ = 300 s: checkpoints at 300, 600, 900; the last
	// 100 s finish without a final checkpoint.
	cfg := Config{
		N: 4, Degree: 1, Work: 1000, Alpha: 0,
		NodeMTBF: 1e15, CheckpointCost: 10, RestartCost: 0, Interval: 300,
	}
	res, err := Simulate(cfg, stats.NewStream(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoints != 3 {
		t.Fatalf("checkpoints = %d, want 3", res.Checkpoints)
	}
	if math.Abs(res.Total-1030) > 1e-9 {
		t.Fatalf("total %v, want 1030", res.Total)
	}
}

func TestCheckpointingDisabled(t *testing.T) {
	cfg := Config{
		N: 2, Degree: 1, Work: 500, Alpha: 0,
		NodeMTBF: 1e15, CheckpointCost: 10, Interval: -1,
	}
	res, err := Simulate(cfg, stats.NewStream(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoints != 0 || res.Total != 500 {
		t.Fatalf("%+v", res)
	}
}

func TestReproducibleWithSeed(t *testing.T) {
	cfg := paperConfig(6, 2)
	a, err := Run(cfg, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total.Mean != b.Total.Mean || a.MeanFailures != b.MeanFailures {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestRunDeterministicAcrossParallelism(t *testing.T) {
	// The tentpole guarantee: same seed ⇒ byte-identical Estimate at
	// parallelism 1, 4, and GOMAXPROCS. The worker pool hands trials out
	// through an atomic counter, so scheduling differs run to run; only
	// the Substream derivation plus the index-ordered reduction keep the
	// output bit-stable.
	base := paperConfig(6, 2)
	var ref Estimate
	for i, par := range []int{1, 4, 0} {
		cfg := base
		cfg.Parallelism = par
		est, err := Run(cfg, 64, 7)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = est
			continue
		}
		if !reflect.DeepEqual(est, ref) {
			t.Fatalf("parallelism %d diverged from sequential:\n%+v\nvs\n%+v", par, est, ref)
		}
	}
}

func TestRunMatchesSequentialSubstreamLoop(t *testing.T) {
	// Guards the Split() → Substream migration: Run at any parallelism
	// is exactly `runs` independent Simulate calls on Substream(seed, i)
	// reduced in index order — verified here against a hand-rolled
	// sequential loop.
	cfg := paperConfig(12, 2)
	const runs, seed = 40, 9
	est, err := Run(cfg, runs, seed)
	if err != nil {
		t.Fatal(err)
	}
	totals := make([]float64, runs)
	var failures, ckpts, lost stats.Accumulator
	var interval float64
	for i := 0; i < runs; i++ {
		res, err := Simulate(cfg, stats.Substream(seed, i))
		if err != nil {
			t.Fatal(err)
		}
		totals[i] = res.Total
		failures.Add(float64(res.Failures))
		ckpts.Add(float64(res.Checkpoints))
		lost.Add(res.LostWork)
		if i == 0 {
			interval = res.Interval
		}
	}
	want := Estimate{
		Runs:            runs,
		Total:           stats.Summarize(totals),
		MeanFailures:    failures.Sum() / runs,
		MeanCheckpoints: ckpts.Sum() / runs,
		MeanLostWork:    lost.Sum() / runs,
		Interval:        interval,
	}
	if !reflect.DeepEqual(est, want) {
		t.Fatalf("Run diverged from the sequential Substream loop:\n%+v\nvs\n%+v", est, want)
	}
}

func TestRunParallelStress(t *testing.T) {
	// Exercise the worker pool hard under the race detector: many
	// concurrent Run invocations, each fanning out its own workers, all
	// of which must agree with the sequential reference.
	cfg := paperConfig(6, 1.75)
	cfg.Parallelism = 1
	ref, err := Run(cfg, 50, 21)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < len(errs); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := cfg
			c.Parallelism = 1 + g%5
			est, err := Run(c, 50, 21)
			if err != nil {
				errs[g] = err
				return
			}
			if !reflect.DeepEqual(est, ref) {
				errs[g] = fmt.Errorf("goroutine %d (parallelism %d) diverged", g, c.Parallelism)
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

func TestRunRejectsNegativeParallelism(t *testing.T) {
	cfg := paperConfig(6, 2)
	cfg.Parallelism = -1
	if _, err := Run(cfg, 4, 1); err == nil {
		t.Fatal("negative parallelism accepted")
	}
}

func TestFailuresOccurAtHighRate(t *testing.T) {
	// 128 nodes at 6 h MTBF over a ≳46 min run: failures are essentially
	// certain at 1x.
	est, err := Run(paperConfig(6, 1), 30, 11)
	if err != nil {
		t.Fatal(err)
	}
	if est.MeanFailures < 1 {
		t.Fatalf("mean failures %v, expected ≥ 1", est.MeanFailures)
	}
	if est.Total.Mean <= 46*model.Minute {
		t.Fatalf("mean total %v not above base work", est.Total.Mean)
	}
	if est.MeanLostWork <= 0 {
		t.Fatalf("lost work %v", est.MeanLostWork)
	}
}

func TestRedundancyReducesFailureRate(t *testing.T) {
	// Sphere exhaustion needs both replicas dead: at 2x the job failure
	// count collapses relative to 1x.
	e1, err := Run(paperConfig(6, 1), 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Run(paperConfig(6, 2), 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	if e2.MeanFailures >= e1.MeanFailures/2 {
		t.Fatalf("2x failures %v vs 1x %v — redundancy not effective",
			e2.MeanFailures, e1.MeanFailures)
	}
}

func TestPaperOrderingAtSixHours(t *testing.T) {
	// Paper observation (1): at MTBF 6 h, higher redundancy wins:
	// T(3x) < T(2x) < T(1x).
	t3, err := Run(paperConfig(6, 3), 60, 13)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Run(paperConfig(6, 2), 60, 13)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := Run(paperConfig(6, 1), 60, 13)
	if err != nil {
		t.Fatal(err)
	}
	if !(t3.Total.Mean < t2.Total.Mean && t2.Total.Mean < t1.Total.Mean) {
		t.Fatalf("ordering violated: 3x=%v 2x=%v 1x=%v",
			t3.Total.Mean/60, t2.Total.Mean/60, t1.Total.Mean/60)
	}
}

func TestPaperOrderingAtThirtyHours(t *testing.T) {
	// Paper observation (2): at MTBF 30 h, 2x beats 3x (overhead exceeds
	// the reliability gain).
	t2, err := Run(paperConfig(30, 2), 80, 17)
	if err != nil {
		t.Fatal(err)
	}
	t3, err := Run(paperConfig(30, 3), 80, 17)
	if err != nil {
		t.Fatal(err)
	}
	if t3.Total.Mean <= t2.Total.Mean {
		t.Fatalf("3x (%v min) should lose to 2x (%v min) at θ=30h",
			t3.Total.Mean/60, t2.Total.Mean/60)
	}
}

func TestMonotoneInMTBF(t *testing.T) {
	// Less reliable nodes, slower completion (all else equal). Compare
	// the extremes only — adjacent MTBF steps differ by less than the
	// Monte-Carlo noise at moderate sample counts.
	rich, err := Run(paperConfig(30, 2), 60, 23)
	if err != nil {
		t.Fatal(err)
	}
	poor, err := Run(paperConfig(6, 2), 60, 23)
	if err != nil {
		t.Fatal(err)
	}
	if poor.Total.Mean <= rich.Total.Mean {
		t.Fatalf("θ=6h total %v should exceed θ=30h total %v",
			poor.Total.Mean, rich.Total.Mean)
	}
}

func TestAgreementWithAnalyticModel(t *testing.T) {
	// The full-exposure simulation and Eq. 14 describe the same process;
	// their predictions should agree within Monte-Carlo noise and model
	// approximation error (the paper's own Fig. 12 shows the same level
	// of deviation against real runs).
	for _, tc := range []struct{ mtbf, degree float64 }{
		{12, 2}, {24, 2}, {18, 3},
	} {
		cfg := paperConfig(tc.mtbf, tc.degree)
		cfg.FailDuringCheckpoint = true
		cfg.FailDuringRestart = true
		est, err := Run(cfg, 200, 31)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := model.Evaluate(model.Params{
			N:              cfg.N,
			Work:           cfg.Work,
			Alpha:          cfg.Alpha,
			NodeMTBF:       cfg.NodeMTBF,
			CheckpointCost: cfg.CheckpointCost,
			RestartCost:    cfg.RestartCost,
		}, tc.degree, model.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rel := stats.RelativeError(est.Total.Mean, ev.Total)
		if rel > 0.30 {
			t.Errorf("θ=%vh r=%v: sim %v min vs model %v min (rel %.2f)",
				tc.mtbf, tc.degree, est.Total.Mean/60, ev.Total/60, rel)
		}
	}
}

func TestSimplifiedRegimeIsFaster(t *testing.T) {
	// Suppressing failures during checkpoint/restart can only help.
	full := paperConfig(6, 2)
	full.FailDuringCheckpoint = true
	full.FailDuringRestart = true
	ef, err := Run(full, 100, 41)
	if err != nil {
		t.Fatal(err)
	}
	es, err := Run(paperConfig(6, 2), 100, 41)
	if err != nil {
		t.Fatal(err)
	}
	if es.Total.Mean > ef.Total.Mean*1.05 {
		t.Fatalf("suppressed regime slower: %v vs %v", es.Total.Mean, ef.Total.Mean)
	}
}

func TestMeasuredOverheadOverride(t *testing.T) {
	// Feeding Table 5's measured 3x runtime (82 min) instead of Eq. 1's
	// 64.4 min must dilate the simulated total accordingly.
	base := paperConfig(30, 3)
	modeled, err := Run(base, 50, 43)
	if err != nil {
		t.Fatal(err)
	}
	measured := base
	measured.RedundantTime = 82 * model.Minute
	observed, err := Run(measured, 50, 43)
	if err != nil {
		t.Fatal(err)
	}
	if observed.Total.Mean <= modeled.Total.Mean {
		t.Fatalf("measured overhead (%v) should exceed modeled (%v)",
			observed.Total.Mean, modeled.Total.Mean)
	}
}

func TestNoProgressGuard(t *testing.T) {
	// An impossible configuration (restart keeps failing) must hit the
	// progress bound rather than loop forever.
	cfg := Config{
		N: 20, Degree: 1, Work: 10 * model.Hour, Alpha: 0,
		NodeMTBF: 60, CheckpointCost: 30, RestartCost: 120,
		Interval:             -1, // no checkpointing: restart from scratch
		FailDuringRestart:    true,
		FailDuringCheckpoint: true,
		MaxTime:              3600,
	}
	_, err := Simulate(cfg, stats.NewStream(3))
	if err == nil {
		t.Fatal("hopeless configuration completed")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(paperConfig(6, 2), 0, 1); err == nil {
		t.Fatal("runs=0 accepted")
	}
}

func TestJobFailureTimeDistribution(t *testing.T) {
	// For n singleton spheres, job failure = min of n Exp(θ) draws, which
	// is Exp(θ/n).
	stream := stats.NewStream(17)
	sizes := make([]int, 100)
	for i := range sizes {
		sizes[i] = 1
	}
	const theta = 1000.0
	var sum float64
	const draws = 20000
	for i := 0; i < draws; i++ {
		sum += jobFailureTime(stream, sizes, theta)
	}
	got := sum / draws
	want := theta / 100
	if stats.RelativeError(got, want) > 0.05 {
		t.Fatalf("mean job failure time %v, want ≈ %v", got, want)
	}
}

func TestLawSphereKinderToDualRedundancy(t *testing.T) {
	// The exact sphere process produces fewer early failures at 2x than
	// the exponentialised model rate — the divergence documented in
	// EXPERIMENTS.md. Totals under LawSphere must come in at or below
	// LawModelRate.
	modelLaw := paperConfig(6, 2)
	modelLaw.Law = LawModelRate
	em, err := Run(modelLaw, 150, 61)
	if err != nil {
		t.Fatal(err)
	}
	sphereLaw := paperConfig(6, 2)
	sphereLaw.Law = LawSphere
	es, err := Run(sphereLaw, 150, 61)
	if err != nil {
		t.Fatal(err)
	}
	if es.Total.Mean > em.Total.Mean*1.02 {
		t.Fatalf("sphere law (%v min) slower than model law (%v min)",
			es.Total.Mean/60, em.Total.Mean/60)
	}
	if es.MeanFailures > em.MeanFailures {
		t.Fatalf("sphere law failures %v above model law %v",
			es.MeanFailures, em.MeanFailures)
	}
}

func TestLawDefaultIsModelRate(t *testing.T) {
	a := paperConfig(12, 2)
	b := paperConfig(12, 2)
	b.Law = LawModelRate
	ea, err := Run(a, 30, 71)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := Run(b, 30, 71)
	if err != nil {
		t.Fatal(err)
	}
	if ea.Total.Mean != eb.Total.Mean {
		t.Fatalf("zero law (%v) differs from explicit LawModelRate (%v)",
			ea.Total.Mean, eb.Total.Mean)
	}
}

func TestSphereDeathSlowerThanNodeDeath(t *testing.T) {
	// A sphere of 2 dies at max(two exponentials): mean 1.5·θ.
	stream := stats.NewStream(19)
	const theta = 100.0
	var sum float64
	const draws = 50000
	for i := 0; i < draws; i++ {
		sum += jobFailureTime(stream, []int{2}, theta)
	}
	got := sum / draws
	want := 1.5 * theta
	if stats.RelativeError(got, want) > 0.05 {
		t.Fatalf("sphere death mean %v, want ≈ %v", got, want)
	}
}

func TestExpectedFailuresMatchEq11(t *testing.T) {
	// Cross-validate the Monte Carlo against Eq. 11: n_f = T_total·λ.
	cfg := paperConfig(12, 2)
	cfg.FailDuringCheckpoint = true
	cfg.FailDuringRestart = true
	est, err := Run(cfg, 300, 97)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := model.Evaluate(model.Params{
		N: cfg.N, Work: cfg.Work, Alpha: cfg.Alpha,
		NodeMTBF: cfg.NodeMTBF, CheckpointCost: cfg.CheckpointCost,
		RestartCost: cfg.RestartCost,
	}, 2, model.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelativeError(est.MeanFailures, ev.Failures) > 0.35 {
		t.Fatalf("simulated failures %v vs Eq. 11 %v", est.MeanFailures, ev.Failures)
	}
}

func TestCheckpointCountMatchesExpectation(t *testing.T) {
	// In a failure-free run, the checkpoint count equals
	// ceil(t_Red/δ) - 1 (no final checkpoint after the last segment).
	cfg := paperConfig(1e12, 1)
	cfg.Interval = 500
	res, err := Simulate(cfg, stats.NewStream(9))
	if err != nil {
		t.Fatal(err)
	}
	tRed := 46 * model.Minute
	want := int(math.Ceil(tRed/500)) - 1
	if res.Checkpoints != want {
		t.Fatalf("checkpoints = %d, want %d", res.Checkpoints, want)
	}
}
