// Package sim is the Monte-Carlo discrete-event simulator of a job
// running under combined partial redundancy + checkpoint/restart. It
// reproduces the paper's cluster experiment (§5-6) at the paper's actual
// parameters — 46-minute CG runs, 128 processes, per-node MTBFs of 6-30
// hours — which would take weeks of wall time on the functional stack:
// per-node failure times are drawn from the exponential distribution, a
// virtual process dies only when its whole replica sphere is exhausted
// (Fig. 7), failed jobs pay the restart cost and recompute from the last
// checkpoint, and checkpoints recur at Daly's optimal interval
// (Eqs. 10 + 15) exactly as the paper's background checkpointer does.
//
// The §6 experimental simplification ("failures are not triggered when a
// checkpoint is performed or when restart is in progress") is a pair of
// toggles, so both the full §4 model and the experiment's regime can be
// simulated.
package sim

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/stats"
)

// Config describes one simulated job.
type Config struct {
	// N is the number of virtual processes.
	N int
	// Degree is the redundancy degree r ≥ 1.
	Degree float64
	// Work is the base failure-free execution time t in seconds.
	Work float64
	// Alpha is the communication/computation ratio α.
	Alpha float64
	// RedundantTime overrides Eq. 1's dilated execution time t_Red in
	// seconds (for feeding in the *measured* redundancy overhead of
	// Table 5, which grows faster than the linear model); zero computes
	// Eq. 1 from Work, Alpha, Degree.
	RedundantTime float64
	// NodeMTBF is θ, seconds.
	NodeMTBF float64
	// CheckpointCost is c, seconds.
	CheckpointCost float64
	// RestartCost is R, seconds.
	RestartCost float64
	// Interval is the checkpoint interval δ in seconds; zero uses Daly's
	// optimum for the redundancy-adjusted system MTBF, like the paper's
	// checkpointer. Negative disables checkpointing entirely (every
	// failure restarts from scratch).
	Interval float64
	// Law selects the stochastic process generating job failures; zero
	// means LawModelRate.
	Law FailureLaw
	// FailDuringCheckpoint exposes checkpoint phases to failures (the
	// full §4 model). The paper's experiment runs with this false.
	FailDuringCheckpoint bool
	// FailDuringRestart exposes restart phases to failures.
	FailDuringRestart bool
	// MaxTime aborts a run whose simulated clock exceeds this bound
	// (seconds); zero means 10000× the work, a generous progress bound.
	MaxTime float64
	// Parallelism is the number of worker goroutines Run spreads its
	// trials across; zero means runtime.GOMAXPROCS(0), one forces the
	// sequential path. Results are bit-identical at every setting: trial
	// i always draws from stats.Substream(seed, i) and the reduction
	// walks trials in index order.
	Parallelism int
}

// Validate checks the configuration.
func (cfg Config) Validate() error {
	switch {
	case cfg.N <= 0:
		return fmt.Errorf("sim: N = %d", cfg.N)
	case cfg.Degree < 1:
		return fmt.Errorf("sim: Degree = %v", cfg.Degree)
	case cfg.Work <= 0:
		return fmt.Errorf("sim: Work = %v", cfg.Work)
	case cfg.Alpha < 0 || cfg.Alpha > 1:
		return fmt.Errorf("sim: Alpha = %v", cfg.Alpha)
	case cfg.NodeMTBF <= 0:
		return fmt.Errorf("sim: NodeMTBF = %v", cfg.NodeMTBF)
	case cfg.CheckpointCost < 0:
		return fmt.Errorf("sim: CheckpointCost = %v", cfg.CheckpointCost)
	case cfg.RestartCost < 0:
		return fmt.Errorf("sim: RestartCost = %v", cfg.RestartCost)
	case cfg.Parallelism < 0:
		return fmt.Errorf("sim: Parallelism = %d", cfg.Parallelism)
	}
	return nil
}

// FailureLaw selects how job-failure times are generated.
type FailureLaw int

const (
	// LawModelRate draws job-failure inter-arrival times from
	// Exp(Θ_sys), with Θ_sys derived exactly as the paper's model does
	// (Eq. 9-10, linearised node-failure probability over the dilated
	// mission time). This is the stochastic process the paper's analysis
	// assumes, and it reproduces Table 4's orderings — including 3x
	// winning at a 6-hour MTBF.
	LawModelRate FailureLaw = iota + 1
	// LawSphere samples the exact renewal process: each node's first
	// failure is Exp(θ), a sphere dies when its last replica dies, the
	// job when its first sphere dies, and every restart brings fresh
	// spares. This exact process is *kinder to low redundancy* than the
	// exponentialised model (a sphere of two young nodes rarely dies
	// early), which shifts the 6-hour-MTBF optimum from 3x toward 2x —
	// an observable divergence between the paper's model and the true
	// sphere stochastics, quantified in the ablation bench.
	LawSphere
)

// ErrNoProgress reports a run that exceeded its simulated-time bound.
var ErrNoProgress = errors.New("sim: job made no progress within the time bound")

// RunResult is the outcome of one simulated run.
type RunResult struct {
	// Total is the simulated wallclock in seconds.
	Total float64
	// Failures is the number of job failures (sphere exhaustions).
	Failures int
	// Checkpoints completed across all attempts.
	Checkpoints int
	// LostWork is the total recomputed work in seconds.
	LostWork float64
	// Interval is the checkpoint interval used (resolved Daly value).
	Interval float64
}

// sphereSizes expands the Eq. 5-8 partition into per-sphere replica
// counts.
func sphereSizes(part model.Partition) []int {
	sizes := make([]int, 0, part.NFloor+part.NCeil)
	for i := 0; i < part.NFloor; i++ {
		sizes = append(sizes, part.Floor)
	}
	for i := 0; i < part.NCeil; i++ {
		sizes = append(sizes, part.Ceil)
	}
	return sizes
}

// jobFailureTime samples the offset at which the job next fails given all
// nodes fresh: each node's first failure is Exp(θ); a sphere dies when
// its last replica dies (max); the job dies with its first dead sphere
// (min).
func jobFailureTime(stream *stats.Stream, sizes []int, theta float64) float64 {
	job := math.Inf(1)
	for _, k := range sizes {
		var sphere float64
		for i := 0; i < k; i++ {
			if d := stream.Exp(theta); d > sphere {
				sphere = d
			}
		}
		if sphere < job {
			job = sphere
		}
	}
	return job
}

// Simulate runs one job to completion and returns its timeline result.
func Simulate(cfg Config, stream *stats.Stream) (RunResult, error) {
	if err := cfg.Validate(); err != nil {
		return RunResult{}, err
	}
	part, err := model.PartitionRanks(cfg.N, cfg.Degree)
	if err != nil {
		return RunResult{}, err
	}
	sizes := sphereSizes(part)

	tRed := cfg.RedundantTime
	if tRed <= 0 {
		tRed = model.RedundantTime(cfg.Work, cfg.Alpha, cfg.Degree)
	}
	// The paper's background checkpointer: Θ_sys from Eq. 10 over the
	// dilated mission time, δ from Eq. 15.
	_, sysMTBF := model.SystemRates(part, tRed, cfg.NodeMTBF, model.ReliabilityLinearized)
	delta := cfg.Interval
	if delta == 0 {
		delta = model.DalyInterval(cfg.CheckpointCost, sysMTBF)
	}
	checkpointing := delta > 0 && !math.IsInf(delta, 1)

	sampleFailure := func() float64 {
		if cfg.Law == LawSphere {
			return jobFailureTime(stream, sizes, cfg.NodeMTBF)
		}
		if math.IsInf(sysMTBF, 1) {
			return math.Inf(1)
		}
		if sysMTBF <= 0 {
			// The linearised model says the system cannot survive an
			// instant (Eq. 9 evaluates to zero reliability).
			return 0
		}
		return stream.Exp(sysMTBF)
	}

	maxTime := cfg.MaxTime
	if maxTime <= 0 {
		maxTime = 10000 * cfg.Work
	}

	res := RunResult{Interval: delta}
	var total float64    // simulated clock
	var doneWork float64 // checkpoint-committed progress through tRed
	// maxFailures bounds pathological zero-advance failure loops (e.g. a
	// modeled MTBF of zero) that the simulated-time bound cannot catch.
	const maxFailures = 1_000_000
	for doneWork < tRed {
		if total > maxTime || res.Failures > maxFailures {
			return res, fmt.Errorf("%w: %.0fs elapsed, %d failures, %.0f/%.0f work done",
				ErrNoProgress, total, res.Failures, doneWork, tRed)
		}
		// Fresh attempt: spare nodes replaced any dead ones (assumption 5).
		failAt := sampleFailure()
		attempt, lost, committed, ckpts, completed := runAttempt(cfg, tRed, doneWork, delta, checkpointing, failAt)
		total += attempt
		res.Checkpoints += ckpts
		if completed {
			doneWork = tRed
			break
		}
		// Job failure: pay the restart phase, which may itself fail.
		res.Failures++
		res.LostWork += lost
		doneWork += committed
		for cfg.RestartCost > 0 {
			if !cfg.FailDuringRestart {
				total += cfg.RestartCost
				break
			}
			restartFail := sampleFailure()
			if restartFail >= cfg.RestartCost {
				total += cfg.RestartCost
				break
			}
			total += restartFail
			res.Failures++
			if total > maxTime || res.Failures > maxFailures {
				return res, fmt.Errorf("%w: stuck in restart loop at %.0fs after %d failures",
					ErrNoProgress, total, res.Failures)
			}
		}
	}
	res.Total = total
	return res, nil
}

// runAttempt walks one attempt's timeline from already-committed progress
// until completion or until the sampled failure offset strikes. It
// returns the attempt's elapsed time, the work lost to the failure, the
// new work committed by checkpoints before the failure, the checkpoints
// completed, and whether the job finished.
//
// The failure offset failAt is measured in *exposed* time: when
// cfg.FailDuringCheckpoint is false, checkpoint phases do not advance the
// failure clock (the paper's experimental regime).
func runAttempt(cfg Config, tRed, done, delta float64, checkpointing bool, failAt float64,
) (elapsed, lost, committed float64, ckpts int, completed bool) {
	var exposed float64
	start := done
	progressed := done
	for {
		segment := tRed - progressed
		if checkpointing && delta < segment {
			segment = delta
		}
		// Work phase.
		if failAt-exposed < segment {
			run := failAt - exposed
			elapsed += run
			lost = (progressed - done) + run
			return elapsed, lost, done - start, ckpts, false
		}
		exposed += segment
		elapsed += segment
		progressed += segment
		if progressed >= tRed {
			return elapsed, 0, progressed - start, ckpts, true
		}
		// Checkpoint phase.
		if cfg.FailDuringCheckpoint {
			if failAt-exposed < cfg.CheckpointCost {
				elapsed += failAt - exposed
				// The segment just worked is uncommitted: all lost.
				lost = progressed - done
				return elapsed, lost, done - start, ckpts, false
			}
			exposed += cfg.CheckpointCost
		}
		elapsed += cfg.CheckpointCost
		ckpts++
		done = progressed
	}
}

// Estimate aggregates repeated simulations.
type Estimate struct {
	// Runs is the sample count.
	Runs int
	// Total summarises the wallclock distribution (seconds).
	Total stats.Summary
	// MeanFailures and MeanCheckpoints are per-run averages.
	MeanFailures    float64
	MeanCheckpoints float64
	// MeanLostWork is the average recomputed time per run (seconds).
	MeanLostWork float64
	// Interval is the checkpoint interval used.
	Interval float64
}

// Run performs `runs` independent simulations seeded from seed and
// aggregates them. Trials execute across cfg.Parallelism worker
// goroutines (default GOMAXPROCS); trial i always draws from
// stats.Substream(seed, i), so the estimate is bit-identical at every
// parallelism level and across run-to-run scheduling.
func Run(cfg Config, runs int, seed int64) (Estimate, error) {
	if runs <= 0 {
		return Estimate{}, fmt.Errorf("sim: runs = %d", runs)
	}
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > runs {
		workers = runs
	}
	results := make([]RunResult, runs)
	errs := make([]error, runs)
	if workers == 1 {
		for i := 0; i < runs; i++ {
			if results[i], errs[i] = Simulate(cfg, stats.Substream(seed, i)); errs[i] != nil {
				break
			}
		}
	} else {
		// Workers claim trial indexes from a shared counter; each trial's
		// stream and result slot depend only on its index, never on which
		// worker runs it. A failed trial stops the hand-out (in-flight
		// trials drain) and the lowest-index error is reported.
		var next atomic.Int64
		var failed atomic.Bool
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= runs || failed.Load() {
						return
					}
					if results[i], errs[i] = Simulate(cfg, stats.Substream(seed, i)); errs[i] != nil {
						failed.Store(true)
					}
				}
			}()
		}
		wg.Wait()
	}
	est := Estimate{Runs: runs}
	for i, err := range errs {
		if err != nil {
			return est, fmt.Errorf("run %d: %w", i, err)
		}
	}
	// Deterministic reduction: fold per-trial statistics in trial order
	// with compensated summation, independent of the worker count.
	totals := make([]float64, runs)
	var failures, ckpts, lost stats.Accumulator
	for i, res := range results {
		totals[i] = res.Total
		failures.Add(float64(res.Failures))
		ckpts.Add(float64(res.Checkpoints))
		lost.Add(res.LostWork)
	}
	est.Interval = results[0].Interval
	est.Total = stats.Summarize(totals)
	est.MeanFailures = failures.Sum() / float64(runs)
	est.MeanCheckpoints = ckpts.Sum() / float64(runs)
	est.MeanLostWork = lost.Sum() / float64(runs)
	return est, nil
}
