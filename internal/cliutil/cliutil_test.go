package cliutil

import (
	"math"
	"testing"

	"repro/internal/model"
)

func TestParseSeconds(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"120s", 120},
		{"46m", 46 * 60},
		{"6h", 6 * 3600},
		{"1.5h", 1.5 * 3600},
		{"2d", 2 * model.Day},
		{"5y", 5 * model.Year},
		{"2.5y", 2.5 * model.Year},
		{"0.5d", 0.5 * model.Day},
	}
	for _, tc := range cases {
		got, err := ParseSeconds(tc.in)
		if err != nil {
			t.Errorf("ParseSeconds(%q): %v", tc.in, err)
			continue
		}
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("ParseSeconds(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseSecondsErrors(t *testing.T) {
	for _, in := range []string{"", "abc", "5x", "y", "d", "--3h"} {
		if _, err := ParseSeconds(in); err == nil {
			t.Errorf("ParseSeconds(%q) succeeded", in)
		}
	}
}

func TestFormatHours(t *testing.T) {
	if got := FormatHours(2 * model.Hour); got != "2.00" {
		t.Errorf("FormatHours = %q", got)
	}
	if got := FormatHours(math.Inf(1)); got != "inf" {
		t.Errorf("FormatHours(+Inf) = %q", got)
	}
}
