// Package cliutil holds small helpers shared by the command-line tools:
// duration parsing extended with day/year suffixes (reliability
// parameters are naturally expressed as "5y"), and number formatting for
// sweep tables.
package cliutil

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/model"
)

// ParseSeconds parses a duration into float64 seconds. It accepts
// everything time.ParseDuration does, plus "d" (days) and "y" (365-day
// years) suffixes with a decimal coefficient.
func ParseSeconds(s string) (float64, error) {
	switch {
	case strings.HasSuffix(s, "y") && !strings.HasSuffix(s, "ny") && !strings.HasSuffix(s, "µy"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "y"), 64)
		if err != nil {
			return 0, fmt.Errorf("cliutil: %q: %w", s, err)
		}
		return v * model.Year, nil
	case strings.HasSuffix(s, "d"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "d"), 64)
		if err != nil {
			return 0, fmt.Errorf("cliutil: %q: %w", s, err)
		}
		return v * model.Day, nil
	default:
		d, err := time.ParseDuration(s)
		if err != nil {
			return 0, fmt.Errorf("cliutil: %q: %w", s, err)
		}
		return d.Seconds(), nil
	}
}

// FormatHours renders seconds as fixed-point hours, with "inf" for
// configurations that never complete.
func FormatHours(seconds float64) string {
	if math.IsInf(seconds, 1) {
		return "inf"
	}
	return strconv.FormatFloat(seconds/model.Hour, 'f', 2, 64)
}
