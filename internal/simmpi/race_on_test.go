//go:build race

package simmpi

// raceEnabled reports whether the race detector instruments this build;
// timing-budget tests skip under it because instrumented atomics cost
// multiples of their production price.
const raceEnabled = true
