package simmpi

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/mpi"
)

// faultState is one communicator's slice of the ULFM-style notification
// surface: the installed errhandler, the set of failures already
// delivered to it, and the acknowledgement watermark that gates
// wildcard operations (mpi.ErrFailurePending fires while ack lags the
// world's death sequence).
type faultState struct {
	mu       sync.Mutex
	handler  func(mpi.FailureInfo)
	notified map[int]bool

	// has mirrors handler != nil so the hot receive path can skip the
	// whole machinery with one atomic load; ack is the world deathSeq
	// watermark this communicator has acknowledged.
	has atomic.Bool
	ack atomic.Uint64
}

// SetErrhandler implements mpi.Comm.
func (c *Comm) SetErrhandler(fn func(mpi.FailureInfo)) {
	c.fault.mu.Lock()
	c.fault.handler = fn
	c.fault.mu.Unlock()
	c.fault.has.Store(fn != nil)
}

// failurePending reports whether an unacknowledged failure should stop
// this communicator's wildcard operations. Only handler-bearing
// communicators opt in, so legacy code keeps the block-until-abort
// behavior unchanged.
func (c *Comm) failurePending() bool {
	return c.fault.has.Load() && c.fault.ack.Load() < c.world.deathSeq.Load()
}

// fireHandler delivers not-yet-notified failures to the errhandler. It
// is called from the communication paths that observe a failure-class
// error; the handler runs outside the fault lock so it may call
// FailureAck / Shrink / Agree itself.
func (c *Comm) fireHandler(err error) {
	if err == nil || !c.fault.has.Load() {
		return
	}
	if !errors.Is(err, mpi.ErrPeerDead) && !errors.Is(err, mpi.ErrFailurePending) {
		return
	}
	c.fault.mu.Lock()
	fn := c.fault.handler
	if fn == nil {
		c.fault.mu.Unlock()
		return
	}
	if c.fault.notified == nil {
		c.fault.notified = make(map[int]bool)
	}
	var fresh []int
	c.world.dead.forEachSet(func(r int) {
		if !c.fault.notified[r] {
			c.fault.notified[r] = true
			fresh = append(fresh, r)
		}
	})
	c.fault.mu.Unlock()
	for _, r := range fresh {
		fn(mpi.FailureInfo{Rank: r})
	}
}

// FailureAck implements mpi.Comm: it acknowledges the failures observed
// so far (wildcards proceed past them afterwards) and returns the
// currently-dead ranks in ascending order.
func (c *Comm) FailureAck() []int {
	w := c.world
	seq := w.deathSeq.Load()
	c.fault.mu.Lock()
	if c.fault.notified == nil {
		c.fault.notified = make(map[int]bool)
	}
	var acked []int
	w.dead.forEachSet(func(r int) {
		c.fault.notified[r] = true
		acked = append(acked, r)
	})
	c.fault.ack.Store(seq)
	c.fault.mu.Unlock()
	return acked
}

// Agree implements mpi.Comm: the fault-tolerant AND across survivors.
// Contributions from ranks that fail during the call may or may not be
// folded in (exactly the latitude MPI_Comm_agree allows); survivors
// always observe the identical result.
func (c *Comm) Agree(flag bool) (bool, error) {
	res, err := c.world.agreeGate.run(c.rank, flag)
	if err != nil {
		return false, err
	}
	if c.world.dead.get(c.rank) {
		return false, mpi.ErrKilled
	}
	return res.flag, nil
}

// Shrink implements mpi.Comm: survivors agree on the live membership
// and each wraps its endpoint in a densely renumbered mpi.Shrunk. The
// agreement is the gate's live-arrival barrier, so every survivor sees
// the same membership even when ranks die during the call.
func (c *Comm) Shrink() (mpi.Comm, error) {
	res, err := c.world.shrinkGate.run(c.rank, true)
	if err != nil {
		return nil, err
	}
	member := false
	for _, r := range res.survivors {
		if r == c.rank {
			member = true
			break
		}
	}
	if !member {
		return nil, mpi.ErrKilled
	}
	c.world.flight.Emit("shrink", c.rank, -1, len(res.survivors), 0)
	c.FailureAck() // Shrink implies failure_ack at the transport level
	return mpi.NewShrunk(c, res.survivors)
}

// ftRound is one invocation of a fault-tolerant collective. Completion
// requires every *live* rank to have arrived — ranks that die before or
// during the round are excused by the kill hook, so the barrier makes
// progress through failures, which is the whole point.
type ftRound struct {
	arrived []bool
	counted []bool // arrived while still alive (contributes to liveIn)
	liveIn  int
	flag    bool // AND-fold of contributions

	completed bool
	survivors []int // live set at completion (ascending)
}

// ftGate serializes one kind of fault-tolerant collective (agree or
// shrink) for a world. Waiters park on the condition variable; kills,
// aborts, and interrupts broadcast so no waiter outlives the condition
// it is waiting for.
type ftGate struct {
	w    *World
	mu   sync.Mutex
	cond *sync.Cond
	cur  *ftRound
}

func newFtGate(w *World) *ftGate {
	g := &ftGate{w: w}
	g.cond = sync.NewCond(&g.mu)
	g.cur = g.newRound()
	return g
}

func (g *ftGate) newRound() *ftRound {
	return &ftRound{
		arrived: make([]bool, g.w.size),
		counted: make([]bool, g.w.size),
		flag:    true,
	}
}

// run contributes flag for rank and blocks until the round completes or
// the caller's world state makes completion irrelevant (own death,
// abort, interrupt).
func (g *ftGate) run(rank int, flag bool) (ftRound, error) {
	w := g.w
	if err := w.errIfDown(rank, rank); err != nil {
		return ftRound{}, err
	}
	g.mu.Lock()
	r := g.cur
	if r.arrived[rank] {
		g.mu.Unlock()
		return ftRound{}, mpi.ErrInvalidRank // concurrent double arrival: protocol misuse
	}
	r.arrived[rank] = true
	if !flag {
		r.flag = false
	}
	if !w.dead.get(rank) {
		r.counted[rank] = true
		r.liveIn++
	}
	g.checkCompleteLocked(r)
	for !r.completed {
		if w.aborted.Load() {
			g.mu.Unlock()
			return ftRound{}, mpi.ErrAborted
		}
		if w.interrupted.Load() {
			g.mu.Unlock()
			return ftRound{}, mpi.ErrInterrupted
		}
		if w.dead.get(rank) {
			g.mu.Unlock()
			return ftRound{}, mpi.ErrKilled
		}
		g.cond.Wait()
	}
	out := *r
	g.mu.Unlock()
	return out, nil
}

// checkCompleteLocked completes the round when every live rank has
// arrived. The live snapshot taken here is the round's survivor set.
func (g *ftGate) checkCompleteLocked(r *ftRound) {
	w := g.w
	if r.completed || w.aborted.Load() || w.interrupted.Load() {
		return
	}
	if r.liveIn == 0 || r.liveIn != int(w.alive.Load()) {
		return
	}
	r.completed = true
	w.dead.forEachClear(func(p int) { r.survivors = append(r.survivors, p) })
	g.cur = g.newRound()
	g.cond.Broadcast()
}

// onKill excuses a dead rank from the current round (and wakes it if it
// was parked): the barrier must not wait for the dead.
func (g *ftGate) onKill(rank int) {
	g.mu.Lock()
	r := g.cur
	if r.counted[rank] {
		r.counted[rank] = false
		r.liveIn--
	}
	g.checkCompleteLocked(r)
	g.cond.Broadcast()
	g.mu.Unlock()
}

// wake unparks every waiter so it can observe an abort or interrupt.
func (g *ftGate) wake() {
	g.mu.Lock()
	g.cond.Broadcast()
	g.mu.Unlock()
}

// reset discards the current round at an epoch boundary (Resume): the
// interrupted epoch's partial arrivals must not leak into the next one.
func (g *ftGate) reset() {
	g.mu.Lock()
	g.cur = g.newRound()
	g.cond.Broadcast()
	g.mu.Unlock()
}
