package simmpi

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/mpi"
)

// The targeted-wakeup rework replaced the mailbox's single broadcast
// condvar with per-(source, tag) wait queues. These tests pin the wakeup
// routing: deposits wake only matching selectors, probes hand their
// wakeup on, wildcards still match everything, and the waiter map does
// not leak entries.

func TestTargetedWakeupRoutesEachTagToItsWaiter(t *testing.T) {
	const waiters = 16
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)
	var wg sync.WaitGroup
	errs := make(chan error, waiters)
	wg.Add(waiters)
	for tag := 1; tag <= waiters; tag++ {
		go func(tag int) {
			defer wg.Done()
			msg, err := c1.Recv(0, tag)
			if err != nil {
				errs <- err
				return
			}
			if len(msg.Data) != tag {
				errs <- fmt.Errorf("tag %d got %d bytes", tag, len(msg.Data))
			}
			msg.Release()
		}(tag)
	}
	// Deposit in reverse order so late tags wake first — any cross-tag
	// wakeup misrouting shows up as a hang or a wrong payload.
	for tag := waiters; tag >= 1; tag-- {
		if err := c0.Send(1, tag, make([]byte, tag)); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestProbePassesWakeupToReceiver: a probe and a receive block on the
// same selector; one deposit arrives. The deposit's single wakeup for
// that selector may land on the probe, which does not consume the
// message — the probe must chain-signal so the receiver still gets it.
// (The converse race — the receiver consumes first and the probe keeps
// waiting for a future message — is legal probe semantics, so only the
// receiver's completion is guaranteed after one deposit; a second
// deposit then releases the probe.)
func TestProbePassesWakeupToReceiver(t *testing.T) {
	for round := 0; round < 50; round++ {
		w, err := NewWorld(2)
		if err != nil {
			t.Fatal(err)
		}
		c0, _ := w.Comm(0)
		c1, _ := w.Comm(1)
		probeDone := make(chan error, 1)
		recvDone := make(chan error, 1)
		go func() {
			_, err := c1.Probe(0, 7)
			probeDone <- err
		}()
		go func() {
			msg, err := c1.Recv(0, 7)
			if err == nil {
				msg.Release()
			}
			recvDone <- err
		}()
		// Give both waiters time to park before the single deposit.
		time.Sleep(100 * time.Microsecond)
		if err := c0.Send(1, 7, []byte("x")); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-recvDone:
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("round %d: wakeup lost — receiver stranded behind the probe", round)
		}
		// A second message releases the probe if the receiver consumed
		// the first one before the probe saw it.
		if err := c0.Send(1, 7, []byte("y")); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-probeDone:
			if err != nil {
				t.Fatalf("round %d: probe: %v", round, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("round %d: probe never woke", round)
		}
	}
}

func TestWildcardWaitersWakeOnSpecificDeposit(t *testing.T) {
	w, err := NewWorld(3)
	if err != nil {
		t.Fatal(err)
	}
	c0, _ := w.Comm(0)
	c2, _ := w.Comm(2)
	cases := []struct{ src, tag int }{
		{mpi.AnySource, mpi.AnyTag},
		{mpi.AnySource, 9},
		{0, mpi.AnyTag},
	}
	for _, tc := range cases {
		done := make(chan error, 1)
		go func() {
			msg, err := c2.Recv(tc.src, tc.tag)
			if err == nil {
				msg.Release()
			}
			done <- err
		}()
		time.Sleep(100 * time.Microsecond)
		if err := c0.Send(2, 9, []byte("w")); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("selector (%d,%d): %v", tc.src, tc.tag, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("selector (%d,%d): wildcard waiter never woke", tc.src, tc.tag)
		}
	}
}

// TestWaiterMapDrains: wait-queue entries must be dropped when their
// last waiter leaves; a long-lived world must not accumulate dead
// selector entries.
func TestWaiterMapDrains(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)
	for tag := 1; tag <= 100; tag++ {
		done := make(chan struct{})
		go func(tag int) {
			defer close(done)
			msg, err := c1.Recv(0, tag)
			if err != nil {
				t.Error(err)
				return
			}
			msg.Release()
		}(tag)
		time.Sleep(20 * time.Microsecond) // let the waiter park
		if err := c0.Send(1, tag, []byte("d")); err != nil {
			t.Fatal(err)
		}
		<-done
	}
	s := w.table.shardFor(1)
	s.mu.Lock()
	n := len(s.box(1).waiters)
	act := len(s.active)
	s.mu.Unlock()
	if n != 0 {
		t.Fatalf("waiter map holds %d stale entries after all waiters left", n)
	}
	if act != 0 {
		t.Fatalf("shard active list holds %d stale queues after all waiters left", act)
	}
}

// TestKillWakesAllSelectors: liveness transitions must reach every wait
// queue, not just matching selectors.
func TestKillWakesAllSelectors(t *testing.T) {
	w, err := NewWorld(3)
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := w.Comm(2)
	const n = 8
	done := make(chan error, n)
	for tag := 1; tag <= n; tag++ {
		go func(tag int) {
			_, err := c2.Recv(0, tag)
			done <- err
		}(tag)
	}
	time.Sleep(200 * time.Microsecond)
	w.Kill(0) // the awaited peer dies; every waiter must error out
	for i := 0; i < n; i++ {
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("receive returned a message from a dead rank")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("kill did not wake a parked waiter")
		}
	}
}
