package simmpi

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/mpi"
)

// The targeted-wakeup rework replaced the mailbox's single broadcast
// condvar with per-(source, tag) wait queues. These tests pin the wakeup
// routing: deposits wake only matching selectors, probes hand their
// wakeup on, wildcards still match everything, and the waiter map does
// not leak entries.

func TestTargetedWakeupRoutesEachTagToItsWaiter(t *testing.T) {
	const waiters = 16
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)
	var wg sync.WaitGroup
	errs := make(chan error, waiters)
	wg.Add(waiters)
	for tag := 1; tag <= waiters; tag++ {
		go func(tag int) {
			defer wg.Done()
			msg, err := c1.Recv(0, tag)
			if err != nil {
				errs <- err
				return
			}
			if len(msg.Data) != tag {
				errs <- fmt.Errorf("tag %d got %d bytes", tag, len(msg.Data))
			}
			msg.Release()
		}(tag)
	}
	// Deposit in reverse order so late tags wake first — any cross-tag
	// wakeup misrouting shows up as a hang or a wrong payload.
	for tag := waiters; tag >= 1; tag-- {
		if err := c0.Send(1, tag, make([]byte, tag)); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestProbePassesWakeupToReceiver: a probe and a receive block on the
// same selector; one deposit arrives. The deposit's single wakeup for
// that selector may land on the probe, which does not consume the
// message — the probe must chain-signal so the receiver still gets it.
// (The converse race — the receiver consumes first and the probe keeps
// waiting for a future message — is legal probe semantics, so only the
// receiver's completion is guaranteed after one deposit; a second
// deposit then releases the probe.)
func TestProbePassesWakeupToReceiver(t *testing.T) {
	for round := 0; round < 50; round++ {
		w, err := NewWorld(2)
		if err != nil {
			t.Fatal(err)
		}
		c0, _ := w.Comm(0)
		c1, _ := w.Comm(1)
		probeDone := make(chan error, 1)
		recvDone := make(chan error, 1)
		go func() {
			_, err := c1.Probe(0, 7)
			probeDone <- err
		}()
		go func() {
			msg, err := c1.Recv(0, 7)
			if err == nil {
				msg.Release()
			}
			recvDone <- err
		}()
		// Give both waiters time to park before the single deposit.
		time.Sleep(100 * time.Microsecond)
		if err := c0.Send(1, 7, []byte("x")); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-recvDone:
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("round %d: wakeup lost — receiver stranded behind the probe", round)
		}
		// A second message releases the probe if the receiver consumed
		// the first one before the probe saw it.
		if err := c0.Send(1, 7, []byte("y")); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-probeDone:
			if err != nil {
				t.Fatalf("round %d: probe: %v", round, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("round %d: probe never woke", round)
		}
	}
}

func TestWildcardWaitersWakeOnSpecificDeposit(t *testing.T) {
	w, err := NewWorld(3)
	if err != nil {
		t.Fatal(err)
	}
	c0, _ := w.Comm(0)
	c2, _ := w.Comm(2)
	cases := []struct{ src, tag int }{
		{mpi.AnySource, mpi.AnyTag},
		{mpi.AnySource, 9},
		{0, mpi.AnyTag},
	}
	for _, tc := range cases {
		done := make(chan error, 1)
		go func() {
			msg, err := c2.Recv(tc.src, tc.tag)
			if err == nil {
				msg.Release()
			}
			done <- err
		}()
		time.Sleep(100 * time.Microsecond)
		if err := c0.Send(2, 9, []byte("w")); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("selector (%d,%d): %v", tc.src, tc.tag, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("selector (%d,%d): wildcard waiter never woke", tc.src, tc.tag)
		}
	}
}

// TestWaiterMapDrains: wait-queue entries must be dropped when their
// last waiter leaves; a long-lived world must not accumulate dead
// selector entries.
func TestWaiterMapDrains(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)
	for tag := 1; tag <= 100; tag++ {
		done := make(chan struct{})
		go func(tag int) {
			defer close(done)
			msg, err := c1.Recv(0, tag)
			if err != nil {
				t.Error(err)
				return
			}
			msg.Release()
		}(tag)
		time.Sleep(20 * time.Microsecond) // let the waiter park
		if err := c0.Send(1, tag, []byte("d")); err != nil {
			t.Fatal(err)
		}
		<-done
	}
	s := w.table.shardFor(1)
	s.mu.Lock()
	n := len(s.box(1).waiters)
	act := len(s.active)
	s.mu.Unlock()
	if n != 0 {
		t.Fatalf("waiter map holds %d stale entries after all waiters left", n)
	}
	if act != 0 {
		t.Fatalf("shard active list holds %d stale queues after all waiters left", act)
	}
}

// TestKillWakesAllSelectors: liveness transitions must reach every wait
// queue, not just matching selectors.
func TestKillWakesAllSelectors(t *testing.T) {
	w, err := NewWorld(3)
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := w.Comm(2)
	const n = 8
	done := make(chan error, n)
	for tag := 1; tag <= n; tag++ {
		go func(tag int) {
			_, err := c2.Recv(0, tag)
			done <- err
		}(tag)
	}
	time.Sleep(200 * time.Microsecond)
	w.Kill(0) // the awaited peer dies; every waiter must error out
	for i := 0; i < n; i++ {
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("receive returned a message from a dead rank")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("kill did not wake a parked waiter")
		}
	}
}

// TestOverlappingSelectorsNoLostWakeup regression-tests a lost-wakeup
// hazard in arrival signaling. Waiter A parks on (src=1, AnyTag), waiter
// B on (AnySource, tag=5); rank 1 deposits (1,3) then (1,5). Both
// deposits route a Signal to A's queue — and sync.Cond.Signal reaches
// only goroutines blocked in Wait, so if A is momentarily awake (woken
// by the first deposit, not yet re-holding the shard lock) the second
// Signal is a silent no-op. A protocol that stops at the first populated
// selector queue then never tries (AnySource, 5): A consumes (1,3) and
// leaves, and B strands parked with (1,5) deliverable in the box. The
// fixed protocol signals every matching selector pattern, so B gets its
// own wakeup regardless of A's scheduling. The race window depends on
// timing, so the scenario loops; outcomes are deterministic (A always
// takes (1,3), the only message matching (1,3)'s selector set first by
// arrival order, B takes (1,5)), and a global deadline turns the old
// code's deadlock into a failure instead of a hung test run.
func TestOverlappingSelectorsNoLostWakeup(t *testing.T) {
	const iters = 2000
	w, err := NewWorld(4)
	if err != nil {
		t.Fatal(err)
	}
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)
	finished := make(chan error, 1)
	go func() {
		for i := 0; i < iters; i++ {
			var wg sync.WaitGroup
			errs := make(chan error, 2)
			wg.Add(2)
			go func() { // waiter A: exact source, any tag
				defer wg.Done()
				msg, err := c0.Recv(1, mpi.AnyTag)
				if err != nil {
					errs <- err
					return
				}
				if msg.Tag != 3 {
					errs <- fmt.Errorf("A got tag %d, want 3", msg.Tag)
				}
				msg.Release()
			}()
			go func() { // waiter B: any source, exact tag
				defer wg.Done()
				msg, err := c0.Recv(mpi.AnySource, 5)
				if err != nil {
					errs <- err
					return
				}
				if msg.Tag != 5 {
					errs <- fmt.Errorf("B got tag %d, want 5", msg.Tag)
				}
				msg.Release()
			}()
			if err := c1.Send(0, 3, []byte{1}); err != nil {
				finished <- err
				return
			}
			if err := c1.Send(0, 5, []byte{2}); err != nil {
				finished <- err
				return
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					finished <- err
					return
				}
			}
		}
		finished <- nil
	}()
	select {
	case err := <-finished:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("lost wakeup: a receiver stranded with a deliverable message (wake-one signal absorbed by an awake waiter)")
	}
}
