//go:build simmpi_ref

package simmpi

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/mpi"
	"repro/internal/stats"
)

// TestShardedMatchesReference replays random operation scripts —
// Send/TryRecv/Kill/Interrupt+Revive+Resume with wildcard selectors —
// against a real sharded World and the single-lock reference model, and
// requires identical outcomes at every step: the same accept/drop/error
// result for sends, the same (source, tag, payload) for every receive
// (which pins delivery order per (src, dst, tag) exactly), the same
// error classes, and the same pending counts per rank at every epoch
// boundary and at the end.
//
// Worlds both below and above the shard cap are exercised, so the test
// covers the degenerate one-rank-per-shard layout and true striping
// with multi-rank shards.
func TestShardedMatchesReference(t *testing.T) {
	sizes := []int{2, 3, 5, 8, 16, 600}
	const scripts = 8
	const opsPerScript = 600
	for _, n := range sizes {
		for script := 0; script < scripts; script++ {
			seed := int64(n)*1000 + int64(script)
			runReferenceScript(t, n, seed, opsPerScript)
		}
	}
}

func runReferenceScript(t *testing.T, n int, seed int64, ops int) {
	t.Helper()
	rng := stats.NewStream(seed)
	w, err := NewWorld(n)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefRuntime(n)
	comms := make([]*Comm, n)
	for i := range comms {
		comms[i], _ = w.Comm(i)
	}

	// selector draws a (src, tag) receive selector, wildcards included.
	selector := func() (int, int) {
		src := rng.Intn(n)
		if rng.Intn(4) == 0 {
			src = mpi.AnySource
		}
		tag := 1 + rng.Intn(3)
		if rng.Intn(4) == 0 {
			tag = mpi.AnyTag
		}
		return src, tag
	}
	sameErrClass := func(a, b error) bool {
		for _, cls := range []error{mpi.ErrKilled, mpi.ErrPeerDead, mpi.ErrAborted, mpi.ErrInterrupted} {
			if errors.Is(a, cls) != errors.Is(b, cls) {
				return false
			}
		}
		return (a == nil) == (b == nil)
	}
	checkPending := func(step int) {
		for r := 0; r < n; r++ {
			if got, want := w.table.pending(r), ref.pending(r); got != want {
				t.Fatalf("n=%d seed=%d step %d: rank %d pending %d, reference %d",
					n, seed, step, r, got, want)
			}
		}
	}

	nextPayload := 0
	for step := 0; step < ops; step++ {
		switch draw := rng.Intn(100); {
		case draw < 45: // Send
			src, dst := rng.Intn(n), rng.Intn(n)
			tag := 1 + rng.Intn(3)
			var data [8]byte
			binary.LittleEndian.PutUint64(data[:], uint64(nextPayload))
			nextPayload++
			gotErr := comms[src].Send(dst, tag, data[:])
			wantErr := ref.send(src, dst, tag, data[:])
			if !sameErrClass(gotErr, wantErr) {
				t.Fatalf("n=%d seed=%d step %d: Send(%d→%d tag %d) err %v, reference %v",
					n, seed, step, src, dst, tag, gotErr, wantErr)
			}
		case draw < 85: // TryRecv
			owner := rng.Intn(n)
			src, tag := selector()
			msg, gotOK, gotErr := w.table.tryReceive(owner, src, tag)
			refMsg, wantOK, wantErr := ref.tryRecv(owner, src, tag)
			if gotOK != wantOK || !sameErrClass(gotErr, wantErr) {
				t.Fatalf("n=%d seed=%d step %d: TryRecv(%d, src %d, tag %d) = (ok %v, err %v), reference (ok %v, err %v)",
					n, seed, step, owner, src, tag, gotOK, gotErr, wantOK, wantErr)
			}
			if gotOK && gotErr == nil {
				if msg.Source != refMsg.src || msg.Tag != refMsg.tag || !bytes.Equal(msg.Data, refMsg.data) {
					t.Fatalf("n=%d seed=%d step %d: TryRecv(%d, src %d, tag %d) delivered (src %d, tag %d, %x), reference (src %d, tag %d, %x) — per-(src,dst,tag) order diverged",
						n, seed, step, owner, src, tag, msg.Source, msg.Tag, msg.Data, refMsg.src, refMsg.tag, refMsg.data)
				}
				msg.Release()
			}
		case draw < 92: // Kill a random rank
			r := rng.Intn(n)
			w.Kill(r)
			ref.kill(r)
		case draw < 94: // Epoch boundary: interrupt, revive all dead, resume
			w.Interrupt()
			ref.interrupt()
			// Collect first, revive after: Revive mutates the bitset
			// being iterated.
			var dead []int
			w.ForEachDead(func(r int) { dead = append(dead, r) })
			for _, r := range dead {
				w.Revive(r)
				ref.revive(r)
			}
			w.Resume()
			ref.resume()
			checkPending(step)
		default: // Pending audit mid-stream
			checkPending(step)
		}
	}
	checkPending(ops)
}
