package simmpi

import (
	"testing"

	"repro/internal/mpi"
)

// Arena unit tests live beside the pool in internal/mpi; these tests
// cover the World's end-to-end use of it.

// poisonByte mirrors the arena's recycled-buffer sentinel (the constant
// is part of the mpi.Arena debugging contract).
const poisonByte = 0xDB

// TestSendRecvSteadyStateAllocs pins the tentpole win: once the pool is
// warm, a blocking send/receive/release round trip allocates nothing on
// the message path.
func TestSendRecvSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under the race detector")
	}
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)
	payload := make([]byte, 256)
	round := func() {
		if err := c0.Send(1, 1, payload); err != nil {
			t.Fatal(err)
		}
		msg, err := c1.Recv(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		msg.Release()
	}
	for i := 0; i < 50; i++ {
		round() // warm the pool and the mailbox ring
	}
	if avg := testing.AllocsPerRun(100, round); avg > 1 {
		t.Errorf("send/recv/release steady state allocates %.2f per round, want ≤1", avg)
	}
}

// TestPoolPoisonOnRelease verifies the race-build debugging aid: the
// arena overwrites a buffer with poisonByte the moment its last
// reference drops, so any use-after-release reads a loud constant
// instead of silently stale (or recycled) payload bytes.
func TestPoolPoisonOnRelease(t *testing.T) {
	if !raceEnabled {
		t.Skip("poison-on-put is enabled only under the race detector")
	}
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)
	payload := []byte("not yet poisoned payload bytes")
	if err := c0.Send(1, 1, payload); err != nil {
		t.Fatal(err)
	}
	msg, err := c1.Recv(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	alias := msg.Data
	msg.Release()
	// Reading alias now is exactly the bug the poison exists to expose;
	// the test holds the alias deliberately to observe the sentinel.
	for i, b := range alias {
		if b != poisonByte {
			t.Fatalf("alias[%d] = %#x after release, want poison %#x", i, b, poisonByte)
		}
	}
}

// TestWithoutPooling covers the opt-out: a world built with
// mpi.WithoutPooling still delivers messages (plain allocations, no
// handles) and Release degrades to a no-op.
func TestWithoutPooling(t *testing.T) {
	w, err := NewWorld(2, mpi.WithoutPooling())
	if err != nil {
		t.Fatal(err)
	}
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)
	payload := []byte{1, 2, 3}
	if err := c0.Send(1, 1, payload); err != nil {
		t.Fatal(err)
	}
	msg, err := c1.Recv(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(msg.Data) != string(payload) {
		t.Fatalf("payload = %v, want %v", msg.Data, payload)
	}
	keep := msg.Data
	msg.Release() // no pool: must not panic, must not poison
	if string(keep) != string(payload) {
		t.Fatalf("unpooled payload mutated by Release: %v", keep)
	}
}
