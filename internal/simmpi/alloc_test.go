package simmpi

import (
	"testing"

	"repro/internal/mpi"
)

func TestClassFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0},
		{1, 0},
		{arenaMinClass, 0},
		{arenaMinClass + 1, 1},
		{4096, 6},
		{arenaMaxClass, arenaClasses - 1},
		{arenaMaxClass + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.want {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestArenaOversizedFallback(t *testing.T) {
	a := newArena()
	b, pb := a.acquire(arenaMaxClass + 1)
	if len(b) != arenaMaxClass+1 {
		t.Fatalf("oversized acquire len = %d", len(b))
	}
	if pb != nil {
		t.Fatal("oversized acquire must have no pooled handle")
	}
}

func TestArenaRecycleRejectsForeignBuffer(t *testing.T) {
	a := newArena()
	// cap 100 matches no power-of-two class; Recycle must drop it
	// rather than poison a pool class with a short buffer.
	pb := mpi.NewPooledBuf(make([]byte, 100), a)
	a.Recycle(pb) // must not panic or Put
	b, got := a.acquire(100)
	if got == pb {
		t.Fatal("foreign buffer re-issued from the pool")
	}
	if len(b) != 100 || cap(b) != 128 {
		t.Fatalf("acquire(100) len/cap = %d/%d, want 100/128", len(b), cap(b))
	}
}

// TestSendRecvSteadyStateAllocs pins the tentpole win: once the pool is
// warm, a blocking send/receive/release round trip allocates nothing on
// the message path.
func TestSendRecvSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under the race detector")
	}
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)
	payload := make([]byte, 256)
	round := func() {
		if err := c0.Send(1, 1, payload); err != nil {
			t.Fatal(err)
		}
		msg, err := c1.Recv(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		msg.Release()
	}
	for i := 0; i < 50; i++ {
		round() // warm the pool and the mailbox ring
	}
	if avg := testing.AllocsPerRun(100, round); avg > 1 {
		t.Errorf("send/recv/release steady state allocates %.2f per round, want ≤1", avg)
	}
}

// TestPoolPoisonOnRelease verifies the race-build debugging aid: the
// arena overwrites a buffer with poisonByte the moment its last
// reference drops, so any use-after-release reads a loud constant
// instead of silently stale (or recycled) payload bytes.
func TestPoolPoisonOnRelease(t *testing.T) {
	if !raceEnabled {
		t.Skip("poison-on-put is enabled only under the race detector")
	}
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)
	payload := []byte("not yet poisoned payload bytes")
	if err := c0.Send(1, 1, payload); err != nil {
		t.Fatal(err)
	}
	msg, err := c1.Recv(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	alias := msg.Data
	msg.Release()
	// Reading alias now is exactly the bug the poison exists to expose;
	// the test holds the alias deliberately to observe the sentinel.
	for i, b := range alias {
		if b != poisonByte {
			t.Fatalf("alias[%d] = %#x after release, want poison %#x", i, b, poisonByte)
		}
	}
}

// TestWithoutPooling covers the opt-out: a world built with
// mpi.WithoutPooling still delivers messages (plain allocations, no
// handles) and Release degrades to a no-op.
func TestWithoutPooling(t *testing.T) {
	w, err := NewWorld(2, mpi.WithoutPooling())
	if err != nil {
		t.Fatal(err)
	}
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)
	payload := []byte{1, 2, 3}
	if err := c0.Send(1, 1, payload); err != nil {
		t.Fatal(err)
	}
	msg, err := c1.Recv(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(msg.Data) != string(payload) {
		t.Fatalf("payload = %v, want %v", msg.Data, payload)
	}
	keep := msg.Data
	msg.Release() // no pool: must not panic, must not poison
	if string(keep) != string(payload) {
		t.Fatalf("unpooled payload mutated by Release: %v", keep)
	}
}
