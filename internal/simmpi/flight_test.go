package simmpi

import (
	"sync"
	"testing"

	"repro/internal/mpi"
	"repro/internal/obs"
)

func TestFlightRecordsTransportEvents(t *testing.T) {
	rec := obs.NewRecorder(64, false)
	w, err := NewWorld(2, mpi.WithFlight(rec))
	if err != nil {
		t.Fatal(err)
	}
	c0, _ := w.Comm(0)
	if err := c0.Send(1, 7, []byte("x")); err != nil {
		t.Fatal(err)
	}
	w.Kill(1)
	if err := c0.Send(1, 7, []byte("x")); err != nil {
		t.Fatal(err) // dropped, not an error
	}
	w.Interrupt()
	w.Revive(1)
	w.Resume()
	w.Abort()

	counts := map[string]int{}
	var sendRec obs.Record
	for _, r := range rec.Records() {
		counts[r.Kind]++
		if r.Kind == "send" && sendRec.Kind == "" {
			sendRec = r
		}
	}
	want := map[string]int{"send": 2, "drop": 1, "dead": 1, "interrupt": 1, "revive": 1, "resume": 1, "abort": 1}
	for kind, n := range want {
		if counts[kind] != n {
			t.Errorf("%s records = %d, want %d (all: %v)", kind, counts[kind], n, counts)
		}
	}
	if sendRec.Rank != 0 || sendRec.Step != 7 || sendRec.Arg != 1 {
		t.Errorf("send record = %+v, want rank=0 tag(step)=7 dst(arg)=1", sendRec)
	}
}

// TestFlightKillReviveStorm hammers Emit from every transport path at
// once — senders, a kill/revive storm, interrupt/resume cycles, and
// concurrent black-box reads — under the race detector. The invariant
// check is modest (the recorder saw traffic and stayed bounded); the
// real assertion is that -race stays silent.
func TestFlightKillReviveStorm(t *testing.T) {
	const ranks, rounds = 16, 300
	rec := obs.NewRecorder(32, true)
	w, err := NewWorld(ranks, mpi.WithFlight(rec))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() { // storm: kill and revive a rotating victim set
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			victim := i % ranks
			w.Kill(victim)
			w.Interrupt()
			w.Revive(victim)
			w.Resume()
		}
		close(stop)
	}()

	wg.Add(1)
	go func() { // concurrent black-box reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rec.Tail(8)
			rec.Dropped()
		}
	}()

	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, cerr := w.Comm(rank)
			if cerr != nil {
				t.Error(cerr)
				return
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Errors are expected casualties of the storm; keep sending.
				c.Send((rank+1)%ranks, 1, []byte("p")) //nolint:errcheck
			}
		}(r)
	}
	wg.Wait()

	if len(rec.Records()) == 0 {
		t.Fatal("storm left no flight records")
	}
	if got, max := len(rec.Records()), (ranks+1)*rec.Cap(); got > max {
		t.Fatalf("recorder unbounded: %d records > %d (ranks+1)*cap", got, max)
	}
}
