package simmpi

import (
	"bytes"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mpi"
)

// runAll executes fn on every rank of a fresh n-rank world and fails the
// test on any error.
func runAll(t *testing.T, n int, fn func(c *Comm) error) {
	t.Helper()
	w := newTestWorld(t, n)
	appErr, failures := w.Run(fn)
	if appErr != nil {
		t.Fatalf("app error: %v", appErr)
	}
	if len(failures) != 0 {
		t.Fatalf("failure errors: %v", failures)
	}
}

func TestBarrierAllArrive(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			var before, after atomic.Int32
			runAll(t, n, func(c *Comm) error {
				before.Add(1)
				// Give stragglers a chance to expose a broken barrier.
				time.Sleep(time.Duration(c.Rank()) * time.Millisecond)
				if err := mpi.Barrier(c); err != nil {
					return err
				}
				if got := before.Load(); got != int32(n) {
					return fmt.Errorf("passed barrier with only %d/%d arrived", got, n)
				}
				after.Add(1)
				return nil
			})
			if after.Load() != int32(n) {
				t.Fatalf("only %d ranks exited the barrier", after.Load())
			}
		})
	}
}

func TestBarrierRepeated(t *testing.T) {
	runAll(t, 8, func(c *Comm) error {
		for i := 0; i < 20; i++ {
			if err := mpi.Barrier(c); err != nil {
				return fmt.Errorf("barrier %d: %w", i, err)
			}
		}
		return nil
	})
}

func TestBcast(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16} {
		for root := 0; root < n; root += 3 {
			n, root := n, root
			t.Run(fmt.Sprintf("n=%d root=%d", n, root), func(t *testing.T) {
				payload := []byte("broadcast payload")
				runAll(t, n, func(c *Comm) error {
					var data []byte
					if c.Rank() == root {
						data = payload
					}
					got, err := mpi.Bcast(c, root, data)
					if err != nil {
						return err
					}
					if !bytes.Equal(got, payload) {
						return fmt.Errorf("rank %d got %q", c.Rank(), got)
					}
					return nil
				})
			})
		}
	}
}

func TestBcastInvalidRoot(t *testing.T) {
	runAll(t, 2, func(c *Comm) error {
		if _, err := mpi.Bcast(c, 5, nil); err == nil {
			return fmt.Errorf("invalid root accepted")
		}
		return nil
	})
}

func TestGatherScatter(t *testing.T) {
	const n = 9
	runAll(t, n, func(c *Comm) error {
		// Gather rank bytes at root 2.
		parts, err := mpi.Gather(c, 2, []byte{byte(c.Rank())})
		if err != nil {
			return err
		}
		if c.Rank() == 2 {
			for i, p := range parts {
				if len(p) != 1 || p[0] != byte(i) {
					return fmt.Errorf("gathered part %d = %v", i, p)
				}
			}
		} else if parts != nil {
			return fmt.Errorf("non-root got parts %v", parts)
		}
		// Scatter doubled values back out.
		var outParts [][]byte
		if c.Rank() == 2 {
			outParts = make([][]byte, n)
			for i := range outParts {
				outParts[i] = []byte{byte(2 * i)}
			}
		}
		mine, err := mpi.Scatter(c, 2, outParts)
		if err != nil {
			return err
		}
		if len(mine) != 1 || mine[0] != byte(2*c.Rank()) {
			return fmt.Errorf("scattered part %v", mine)
		}
		return nil
	})
}

func TestAllgather(t *testing.T) {
	const n = 6
	runAll(t, n, func(c *Comm) error {
		parts, err := mpi.Allgather(c, []byte(fmt.Sprintf("r%d", c.Rank())))
		if err != nil {
			return err
		}
		if len(parts) != n {
			return fmt.Errorf("got %d parts", len(parts))
		}
		for i, p := range parts {
			if string(p) != fmt.Sprintf("r%d", i) {
				return fmt.Errorf("part %d = %q", i, p)
			}
		}
		return nil
	})
}

func TestAlltoall(t *testing.T) {
	const n = 5
	runAll(t, n, func(c *Comm) error {
		parts := make([][]byte, n)
		for i := range parts {
			parts[i] = []byte{byte(c.Rank()), byte(i)}
		}
		got, err := mpi.Alltoall(c, parts)
		if err != nil {
			return err
		}
		for i, p := range got {
			if len(p) != 2 || p[0] != byte(i) || p[1] != byte(c.Rank()) {
				return fmt.Errorf("from %d got %v", i, p)
			}
		}
		return nil
	})
}

func TestAlltoallWrongPartCount(t *testing.T) {
	runAll(t, 2, func(c *Comm) error {
		if _, err := mpi.Alltoall(c, make([][]byte, 3)); err == nil {
			return fmt.Errorf("wrong part count accepted")
		}
		return nil
	})
}

func TestReduceSum(t *testing.T) {
	const n = 8
	runAll(t, n, func(c *Comm) error {
		in := []float64{float64(c.Rank()), 1}
		out, err := mpi.ReduceFloat64s(c, 0, in, mpi.OpSum)
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			if out != nil {
				return fmt.Errorf("non-root got %v", out)
			}
			return nil
		}
		wantSum := float64(n*(n-1)) / 2
		if out[0] != wantSum || out[1] != n {
			return fmt.Errorf("reduce = %v, want [%v %v]", out, wantSum, float64(n))
		}
		return nil
	})
}

func TestAllreduceOps(t *testing.T) {
	const n = 7
	runAll(t, n, func(c *Comm) error {
		r := float64(c.Rank())
		sum, err := mpi.AllreduceFloat64s(c, []float64{r}, mpi.OpSum)
		if err != nil {
			return err
		}
		if sum[0] != 21 {
			return fmt.Errorf("sum = %v", sum)
		}
		maxV, err := mpi.AllreduceFloat64s(c, []float64{r}, mpi.OpMax)
		if err != nil {
			return err
		}
		if maxV[0] != 6 {
			return fmt.Errorf("max = %v", maxV)
		}
		minV, err := mpi.AllreduceFloat64s(c, []float64{r + 1}, mpi.OpMin)
		if err != nil {
			return err
		}
		if minV[0] != 1 {
			return fmt.Errorf("min = %v", minV)
		}
		prod, err := mpi.AllreduceFloat64s(c, []float64{2}, mpi.OpProd)
		if err != nil {
			return err
		}
		if prod[0] != math.Pow(2, n) {
			return fmt.Errorf("prod = %v", prod)
		}
		return nil
	})
}

func TestAllreduceInt64(t *testing.T) {
	const n = 6
	runAll(t, n, func(c *Comm) error {
		out, err := mpi.AllreduceInt64s(c, []int64{int64(c.Rank()), 10}, mpi.OpSum)
		if err != nil {
			return err
		}
		if out[0] != 15 || out[1] != 60 {
			return fmt.Errorf("got %v", out)
		}
		mx, err := mpi.AllreduceInt64s(c, []int64{int64(-c.Rank())}, mpi.OpMin)
		if err != nil {
			return err
		}
		if mx[0] != int64(-(n - 1)) {
			return fmt.Errorf("min = %v", mx)
		}
		return nil
	})
}

func TestReduceLengthMismatch(t *testing.T) {
	w := newTestWorld(t, 2)
	appErr, _ := w.Run(func(c *Comm) error {
		in := make([]float64, 1+c.Rank()) // deliberately unequal
		_, err := mpi.ReduceFloat64s(c, 0, in, mpi.OpSum)
		return err
	})
	if appErr == nil {
		t.Fatal("length mismatch should surface an error")
	}
}

func TestCollectivesBackToBack(t *testing.T) {
	// Consecutive same-kind collectives must not cross-match.
	const n = 4
	runAll(t, n, func(c *Comm) error {
		for iter := 0; iter < 25; iter++ {
			want := []byte{byte(iter)}
			var data []byte
			if c.Rank() == iter%n {
				data = want
			}
			got, err := mpi.Bcast(c, iter%n, data)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, want) {
				return fmt.Errorf("iter %d: got %v", iter, got)
			}
			sum, err := mpi.AllreduceFloat64s(c, []float64{1}, mpi.OpSum)
			if err != nil {
				return err
			}
			if sum[0] != n {
				return fmt.Errorf("iter %d: sum %v", iter, sum)
			}
		}
		return nil
	})
}

func TestSingleRankCollectives(t *testing.T) {
	runAll(t, 1, func(c *Comm) error {
		if err := mpi.Barrier(c); err != nil {
			return err
		}
		got, err := mpi.Bcast(c, 0, []byte("solo"))
		if err != nil || string(got) != "solo" {
			return fmt.Errorf("bcast: %v %q", err, got)
		}
		sum, err := mpi.AllreduceFloat64s(c, []float64{3}, mpi.OpSum)
		if err != nil || sum[0] != 3 {
			return fmt.Errorf("allreduce: %v %v", err, sum)
		}
		return nil
	})
}

func TestAllreduceRecursiveDoubling(t *testing.T) {
	// Power-of-two and non-power-of-two sizes, all operators.
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			runAll(t, n, func(c *Comm) error {
				r := float64(c.Rank())
				sum, err := mpi.AllreduceRDFloat64s(c, []float64{r, 1}, mpi.OpSum)
				if err != nil {
					return err
				}
				wantSum := float64(n*(n-1)) / 2
				if sum[0] != wantSum || sum[1] != float64(n) {
					return fmt.Errorf("sum = %v, want [%v %v]", sum, wantSum, float64(n))
				}
				mx, err := mpi.AllreduceRDFloat64s(c, []float64{r}, mpi.OpMax)
				if err != nil {
					return err
				}
				if mx[0] != float64(n-1) {
					return fmt.Errorf("max = %v", mx)
				}
				mn, err := mpi.AllreduceRDFloat64s(c, []float64{r + 5}, mpi.OpMin)
				if err != nil {
					return err
				}
				if mn[0] != 5 {
					return fmt.Errorf("min = %v", mn)
				}
				return nil
			})
		})
	}
}

func TestAllreduceRDBackToBack(t *testing.T) {
	const n = 6
	runAll(t, n, func(c *Comm) error {
		for iter := 1; iter <= 20; iter++ {
			out, err := mpi.AllreduceRDFloat64s(c, []float64{float64(iter)}, mpi.OpSum)
			if err != nil {
				return err
			}
			if out[0] != float64(iter*n) {
				return fmt.Errorf("iter %d: %v", iter, out)
			}
		}
		return nil
	})
}

func TestAllreduceRDMatchesTreeForm(t *testing.T) {
	const n = 5
	runAll(t, n, func(c *Comm) error {
		in := []float64{float64(c.Rank() + 1)}
		tree, err := mpi.AllreduceFloat64s(c, in, mpi.OpSum)
		if err != nil {
			return err
		}
		rd, err := mpi.AllreduceRDFloat64s(c, in, mpi.OpSum)
		if err != nil {
			return err
		}
		// Small integer sums are exact under any association order.
		if tree[0] != rd[0] {
			return fmt.Errorf("tree %v vs recursive doubling %v", tree, rd)
		}
		return nil
	})
}
