package simmpi

import (
	"fmt"
	"testing"

	"repro/internal/mpi"
	"repro/internal/stats"
)

// TestRandomTrafficConservation drives a random all-pairs workload: every
// rank sends a randomized (but per-rank deterministic) schedule of
// messages, then receives exactly what was addressed to it. No message
// may be lost, duplicated, or delivered out of FIFO order per
// (source, tag) pair.
func TestRandomTrafficConservation(t *testing.T) {
	const (
		ranks    = 10
		rounds   = 40
		tagSpace = 3
	)
	w := newTestWorld(t, ranks)

	// Precompute everyone's send schedule so receivers know what to
	// expect: schedule[src][dst][tag] = payload sequence.
	type key struct{ dst, tag int }
	schedules := make([]map[key][]byte, ranks)
	for src := 0; src < ranks; src++ {
		rng := stats.NewStream(int64(src) * 7331)
		sched := make(map[key][]byte)
		for r := 0; r < rounds; r++ {
			dst := rng.Intn(ranks)
			tag := rng.Intn(tagSpace)
			sched[key{dst, tag}] = append(sched[key{dst, tag}], byte(r))
		}
		schedules[src] = sched
	}

	appErr, failures := w.Run(func(c *Comm) error {
		// Re-derive my schedule and send it.
		rng := stats.NewStream(int64(c.Rank()) * 7331)
		for r := 0; r < rounds; r++ {
			dst := rng.Intn(ranks)
			tag := rng.Intn(tagSpace)
			if err := c.Send(dst, tag, []byte{byte(r)}); err != nil {
				return err
			}
		}
		// Receive exactly what the schedules say is coming, checking
		// FIFO per (source, tag).
		for src := 0; src < ranks; src++ {
			for tag := 0; tag < tagSpace; tag++ {
				expected := schedules[src][key{c.Rank(), tag}]
				for i, want := range expected {
					msg, err := c.Recv(src, tag)
					if err != nil {
						return fmt.Errorf("recv %d/%d from %d tag %d: %w", i, len(expected), src, tag, err)
					}
					if msg.Data[0] != want {
						return fmt.Errorf("from %d tag %d: got seq %d, want %d (FIFO violation)",
							src, tag, msg.Data[0], want)
					}
				}
			}
		}
		if n := c.PendingMessages(); n != 0 {
			return fmt.Errorf("rank %d still has %d pending messages", c.Rank(), n)
		}
		return nil
	})
	if appErr != nil {
		t.Fatal(appErr)
	}
	if len(failures) != 0 {
		t.Fatalf("failures: %v", failures)
	}
}

// TestConcurrentWildcardConsumers runs several goroutine "threads" of one
// logical receiver... not supported: a Comm is single-goroutine. Instead
// stress wildcard matching under heavy interleaving from many senders.
func TestWildcardUnderHeavyInterleaving(t *testing.T) {
	const (
		ranks   = 8
		perRank = 50
	)
	w := newTestWorld(t, ranks)
	appErr, failures := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			counts := make([]int, ranks)
			for i := 0; i < (ranks-1)*perRank; i++ {
				msg, err := c.Recv(mpi.AnySource, 1)
				if err != nil {
					return err
				}
				// Per-source FIFO: payload must be the per-source counter.
				if int(msg.Data[0]) != counts[msg.Source] {
					return fmt.Errorf("source %d: got %d, want %d",
						msg.Source, msg.Data[0], counts[msg.Source])
				}
				counts[msg.Source]++
			}
			for src := 1; src < ranks; src++ {
				if counts[src] != perRank {
					return fmt.Errorf("source %d delivered %d, want %d", src, counts[src], perRank)
				}
			}
			return nil
		}
		for i := 0; i < perRank; i++ {
			if err := c.Send(0, 1, []byte{byte(i)}); err != nil {
				return err
			}
		}
		return nil
	})
	if appErr != nil {
		t.Fatal(appErr)
	}
	if len(failures) != 0 {
		t.Fatalf("failures: %v", failures)
	}
}

// TestSendDelayChargesSender verifies the WithSendDelay emulation: the
// sender's wallclock dilates with its message count.
func TestSendDelayChargesSender(t *testing.T) {
	w, err := NewWorld(2, WithSendDelay(0))
	if err != nil {
		t.Fatal(err)
	}
	c0, err := w.Comm(0)
	if err != nil {
		t.Fatal(err)
	}
	// Zero delay must not sleep (smoke: 10k sends finish instantly).
	for i := 0; i < 10000; i++ {
		if err := c0.Send(1, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
}
