package simmpi

import (
	"errors"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/obs"
)

func TestInterruptUnblocksBlockedRecv(t *testing.T) {
	w := newTestWorld(t, 2)
	c1 := comm(t, w, 1)
	errCh := make(chan error, 1)
	go func() {
		_, err := c1.Recv(0, 7)
		errCh <- err
	}()
	time.Sleep(5 * time.Millisecond)
	w.Interrupt()
	select {
	case err := <-errCh:
		if !errors.Is(err, mpi.ErrInterrupted) {
			t.Fatalf("recv err = %v, want ErrInterrupted", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Recv still blocked after Interrupt")
	}
	if !w.Interrupted() {
		t.Fatal("world not marked interrupted")
	}
}

func TestSendDuringInterruptFails(t *testing.T) {
	w := newTestWorld(t, 2)
	c0 := comm(t, w, 0)
	w.Interrupt()
	if err := c0.Send(1, 1, []byte("x")); !errors.Is(err, mpi.ErrInterrupted) {
		t.Fatalf("send err = %v, want ErrInterrupted", err)
	}
}

func TestResumeAfterInterruptRestoresTraffic(t *testing.T) {
	w := newTestWorld(t, 2)
	c0, c1 := comm(t, w, 0), comm(t, w, 1)
	// A message left in flight across the interrupt must not leak into
	// the next epoch: Resume purges every mailbox.
	if err := c0.Send(1, 1, []byte("stale")); err != nil {
		t.Fatal(err)
	}
	w.Interrupt()
	w.Resume()
	if w.Interrupted() {
		t.Fatal("world still interrupted after Resume")
	}
	if err := c0.Send(1, 2, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	msg, err := c1.Recv(mpi.AnySource, mpi.AnyTag)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Tag != 2 || string(msg.Data) != "fresh" {
		t.Fatalf("got tag %d data %q; stale pre-interrupt message leaked", msg.Tag, msg.Data)
	}
}

func TestReviveRejoinsKilledRank(t *testing.T) {
	w := newTestWorld(t, 2)
	c0, c1 := comm(t, w, 0), comm(t, w, 1)
	w.Kill(1)
	if err := c1.Send(0, 1, []byte("x")); !errors.Is(err, mpi.ErrKilled) {
		t.Fatalf("send from dead rank err = %v, want ErrKilled", err)
	}
	w.Interrupt()
	w.Revive(1)
	w.Resume()
	if !w.Alive(1) {
		t.Fatal("rank 1 not alive after Revive")
	}
	if n := w.AliveCount(); n != 2 {
		t.Fatalf("AliveCount = %d, want 2", n)
	}
	// Full round trip both ways through the revived rank.
	if err := c1.Send(0, 3, []byte("hello")); err != nil {
		t.Fatalf("send from revived rank: %v", err)
	}
	if _, err := c0.Recv(1, 3); err != nil {
		t.Fatalf("recv from revived rank: %v", err)
	}
	if err := c0.Send(1, 4, []byte("back")); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Recv(0, 4); err != nil {
		t.Fatalf("revived rank recv: %v", err)
	}
}

func TestReviveIsIdempotentAndBounded(t *testing.T) {
	w := newTestWorld(t, 2)
	w.Revive(-1) // out of range: no-op
	w.Revive(5)  // out of range: no-op
	w.Revive(0)  // alive already: no-op
	w.Kill(1)
	w.Revive(1)
	w.Revive(1) // second revive of a live rank: no-op
	if !w.Alive(1) {
		t.Fatal("rank 1 should be alive")
	}
}

func TestInterruptAfterAbortIsNoop(t *testing.T) {
	w := newTestWorld(t, 2)
	w.Abort()
	w.Interrupt()
	if w.Interrupted() {
		t.Fatal("aborted world must not enter the interrupted state")
	}
	c0 := comm(t, w, 0)
	if err := c0.Send(1, 1, []byte("x")); !errors.Is(err, mpi.ErrAborted) {
		t.Fatalf("send err = %v, want ErrAborted", err)
	}
}

func TestResumeResetsCommCounters(t *testing.T) {
	w := newTestWorld(t, 2)
	c0, c1 := comm(t, w, 0), comm(t, w, 1)
	if err := c0.Send(1, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Recv(0, 1); err != nil {
		t.Fatal(err)
	}
	if sent := c0.SentCounts(); sent[1] == 0 {
		t.Fatal("sanity: sent count should be nonzero before the epoch boundary")
	}
	w.Interrupt()
	w.Resume()
	if sent := c0.SentCounts(); sent[1] != 0 {
		t.Fatalf("sent counts survived Resume: %v", sent)
	}
	if recv := c1.RecvCounts(); recv[0] != 0 {
		t.Fatalf("recv counts survived Resume: %v", recv)
	}
}

func TestInterruptReviveCountersExposed(t *testing.T) {
	reg := obs.NewRegistry()
	w, err := NewWorld(2, WithObs(reg))
	if err != nil {
		t.Fatal(err)
	}
	w.Kill(1)
	w.Interrupt()
	w.Revive(1)
	w.Resume()
	got := map[string]uint64{}
	for _, c := range reg.Snapshot().Counters {
		got[c.Name] = c.Value
	}
	if got["simmpi_interrupts_total"] != 1 {
		t.Fatalf("simmpi_interrupts_total = %d, want 1", got["simmpi_interrupts_total"])
	}
	if got["simmpi_revives_total"] != 1 {
		t.Fatalf("simmpi_revives_total = %d, want 1", got["simmpi_revives_total"])
	}
}
