package simmpi

import (
	"errors"
	"testing"
	"time"

	"repro/internal/mpi"
)

// parkedWaiters sums the registered waiters across every shard.
func parkedWaiters(w *World) int {
	total := 0
	for i := range w.table.shards {
		s := &w.table.shards[i]
		s.mu.Lock()
		total += s.nwaiters
		s.mu.Unlock()
	}
	return total
}

// TestEpochWakeupsBoundedByParkedWaiters pins the liveness-transition
// cost contract: a Kill or epoch boundary wakes exactly the parked
// waiters — blocked ranks sit on their gate's condition variable, never
// re-polling — and the wakeup count is independent of world size. The
// same scenario runs in a 64-rank world and an 8192-rank world (16×
// more ranks than shards, so striping is fully engaged); the waiter
// population is identical, and so must be the wakeup bill.
func TestEpochWakeupsBoundedByParkedWaiters(t *testing.T) {
	const waiters = 8
	for _, n := range []int{64, 8192} {
		w, err := NewWorld(n)
		if err != nil {
			t.Fatal(err)
		}
		victim := n - 1
		done := make(chan error, waiters)
		for i := 0; i < waiters; i++ {
			c, _ := w.Comm(i)
			go func(c *Comm) {
				_, err := c.Recv(victim, 5)
				done <- err
			}(c)
		}
		deadline := time.Now().Add(5 * time.Second)
		for parkedWaiters(w) != waiters {
			if time.Now().After(deadline) {
				t.Fatalf("n=%d: only %d/%d waiters parked", n, parkedWaiters(w), waiters)
			}
			time.Sleep(100 * time.Microsecond)
		}

		// One kill: every parked waiter must be woken exactly once to
		// observe the death — no more (no thundering rebroadcasts), no
		// less (no stranded waiter), and no O(world) sweep. The counter
		// tallies registered-waiters-notified, an upper bound on actual
		// unparks; here the two coincide because no traffic is in flight,
		// so every registered waiter is quiescently blocked in Wait when
		// the broadcast lands (see wakeAll).
		base := w.LivenessWakeups()
		w.Kill(victim)
		for i := 0; i < waiters; i++ {
			if err := <-done; !errors.Is(err, mpi.ErrPeerDead) {
				t.Fatalf("n=%d: waiter err = %v, want ErrPeerDead", n, err)
			}
		}
		if got := w.LivenessWakeups() - base; got != waiters {
			t.Fatalf("n=%d: kill woke %d waiters, want exactly %d (independent of world size)",
				n, got, waiters)
		}

		// A full epoch boundary with nobody parked must cost zero
		// wakeups, regardless of the 8k ranks it nominally spans.
		base = w.LivenessWakeups()
		w.Interrupt()
		w.Revive(victim)
		w.Resume()
		if got := w.LivenessWakeups() - base; got != 0 {
			t.Fatalf("n=%d: idle epoch boundary woke %d waiters, want 0", n, got)
		}
	}
}
