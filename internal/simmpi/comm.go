package simmpi

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mpi"
)

// denseCountThreshold bounds the world size at which per-peer message
// counters use dense atomic arrays. The dense layout costs O(n²) words
// across a world (two arrays of n per rank) — fine at laptop scale,
// 160 GB at 100k ranks — so larger worlds fall back to lazy sparse maps:
// a rank only pays for the peers it actually exchanges with, which for
// collective patterns is O(log n).
const denseCountThreshold = 1024

// peerCounts tracks per-peer message totals for one direction. Exactly
// one representation is active: dense (lock-free, preallocated at world
// construction) below the threshold, sparse (mutex + lazy map) above.
type peerCounts struct {
	dense []atomic.Uint64

	mu     sync.Mutex
	sparse map[int]uint64
}

func (p *peerCounts) add(peer int) {
	if p.dense != nil {
		p.dense[peer].Add(1)
		return
	}
	p.mu.Lock()
	if p.sparse == nil {
		p.sparse = make(map[int]uint64)
	}
	p.sparse[peer]++
	p.mu.Unlock()
}

// snapshot materializes the dense view the bookmark exchange consumes.
func (p *peerCounts) snapshot(n int) []uint64 {
	out := make([]uint64, n)
	if p.dense != nil {
		for i := range p.dense {
			out[i] = p.dense[i].Load()
		}
		return out
	}
	p.mu.Lock()
	for peer, v := range p.sparse {
		out[peer] = v
	}
	p.mu.Unlock()
	return out
}

func (p *peerCounts) reset() {
	if p.dense != nil {
		for i := range p.dense {
			p.dense[i].Store(0)
		}
		return
	}
	p.mu.Lock()
	p.sparse = nil
	p.mu.Unlock()
}

// Comm is the communicator endpoint for one rank of a World. It
// implements mpi.Comm and mpi.CountTracker.
type Comm struct {
	world *World
	rank  int

	// Per-peer message totals for the checkpoint bookmark exchange.
	sent peerCounts
	recv peerCounts

	// fault is the ULFM-style notification state (see fault.go).
	fault faultState
}

var (
	_ mpi.Comm         = (*Comm)(nil)
	_ mpi.CountTracker = (*Comm)(nil)
	_ mpi.SharedSender = (*Comm)(nil)
)

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// World returns the world this communicator belongs to.
func (c *Comm) World() *World { return c.world }

func (c *Comm) checkPeer(rank int) error {
	if rank < 0 || rank >= c.world.size {
		return fmt.Errorf("simmpi: peer %d of %d: %w", rank, c.world.size, mpi.ErrInvalidRank)
	}
	return nil
}

// sendPrologue performs the common Send-side checks and bookkeeping.
// ok reports whether the message should actually be deposited (false
// with a nil error means the destination is dead and the send is
// silently dropped, like a lost packet).
func (c *Comm) sendPrologue(dst, tag int, n int) (ok bool, err error) {
	if err := c.checkPeer(dst); err != nil {
		return false, err
	}
	w := c.world
	if w.aborted.Load() {
		return false, mpi.ErrAborted
	}
	if w.dead.get(c.rank) {
		return false, mpi.ErrKilled
	}
	if w.interrupted.Load() {
		return false, mpi.ErrInterrupted
	}
	c.sent.add(dst)
	w.met.sends.Inc()
	w.met.sendBytes.Add(uint64(n))
	w.flight.Emit("send", c.rank, -1, tag, int64(dst))
	if d := w.sendDelay; d > 0 {
		// Emulated wire latency is charged to the sender whether or not
		// the destination is alive, like a NIC pushing into the fabric.
		time.Sleep(d)
	}
	if w.dead.get(dst) {
		w.met.drops.Inc()
		w.flight.Emit("drop", c.rank, -1, tag, int64(dst))
		return false, nil
	}
	return true, nil
}

// Send delivers data to dst. Sends are eager and buffered: the message is
// copied once at the transport boundary — into a pooled arena buffer the
// receiver owns until it releases it (see mpi.Message.Data) — and the
// call returns, so the sender may reuse data immediately. Sends from a
// killed rank fail with mpi.ErrKilled; sends to a dead rank are silently
// dropped (fail-stop peers just stop reading the network).
func (c *Comm) Send(dst, tag int, data []byte) error {
	ok, err := c.sendPrologue(dst, tag, len(data))
	if !ok {
		return err
	}
	// Copy at the boundary: the sender may reuse its buffer immediately.
	var buf []byte
	var pb *mpi.PooledBuf
	if data != nil {
		if c.world.pool != nil {
			buf, pb = c.world.pool.Acquire(len(data))
			c.world.met.bytesPooled.Add(uint64(len(data)))
		} else {
			buf = make([]byte, len(data))
		}
		copy(buf, data)
	}
	if !c.world.table.deposit(dst, c.rank, tag, buf, pb) && pb != nil {
		pb.Release() // dropped at the door (dead/aborted/interrupted)
	}
	return nil
}

// AcquireBuffer implements mpi.SharedSender: it hands out a pooled
// buffer the caller encodes into once and then shares across several
// SendPooled calls.
func (c *Comm) AcquireBuffer(n int) ([]byte, *mpi.PooledBuf) {
	if c.world.pool == nil || n == 0 {
		return make([]byte, n), nil
	}
	c.world.met.bytesPooled.Add(uint64(n))
	return c.world.pool.Acquire(n)
}

// SendPooled implements mpi.SharedSender: like Send, but data (a view of
// pb's pooled buffer) is shared with the destination instead of copied —
// the copy-on-write fan-out path the redundancy layer uses to send one
// encoded payload to every replica. Each successful deposit takes its
// own reference on pb; the caller's reference survives the call.
func (c *Comm) SendPooled(dst, tag int, data []byte, pb *mpi.PooledBuf) error {
	if pb == nil {
		return c.Send(dst, tag, data)
	}
	ok, err := c.sendPrologue(dst, tag, len(data))
	if !ok {
		return err
	}
	// Retain before publication: the receiver may consume and release
	// the very moment the deposit lands.
	pb.Retain()
	if !c.world.table.deposit(dst, c.rank, tag, data, pb) {
		pb.Release()
		return nil
	}
	c.world.met.copiesElided.Inc()
	return nil
}

// Recv blocks until a message matching (src, tag) arrives.
func (c *Comm) Recv(src, tag int) (mpi.Message, error) {
	if src != mpi.AnySource {
		if err := c.checkPeer(src); err != nil {
			return mpi.Message{}, err
		}
	}
	msg, err := c.world.table.receive(c.rank, src, tag)
	if err != nil {
		c.fireHandler(err)
		return mpi.Message{}, err
	}
	c.noteRecv(msg.Source)
	return msg, nil
}

// noteRecv performs per-peer and world-level receive bookkeeping.
func (c *Comm) noteRecv(src int) {
	c.recv.add(src)
	c.world.met.recvs.Inc()
}

// Probe blocks until a matching message is available without consuming it.
func (c *Comm) Probe(src, tag int) (mpi.Status, error) {
	if src != mpi.AnySource {
		if err := c.checkPeer(src); err != nil {
			return mpi.Status{}, err
		}
	}
	st, err := c.world.table.probe(c.rank, src, tag)
	if err != nil {
		c.fireHandler(err)
	}
	return st, err
}

// Isend starts a non-blocking send. Because sends are eager, the
// operation completes immediately; the returned request is a fulfilled
// handle carrying any error.
func (c *Comm) Isend(dst, tag int, data []byte) (mpi.Request, error) {
	err := c.Send(dst, tag, data)
	return &request{
		done: true,
		st:   mpi.Status{Source: c.rank, Tag: tag, Len: len(data)},
		err:  err,
	}, nil
}

// statusOf derives a completion status from a delivered message.
func statusOf(msg mpi.Message) mpi.Status {
	return mpi.Status{Source: msg.Source, Tag: msg.Tag, Len: len(msg.Data)}
}

// Irecv starts a non-blocking receive. Completion is lazy: the matching
// happens at Wait or Test time, preserving post-order semantics for the
// common post-then-waitall pattern.
func (c *Comm) Irecv(src, tag int) (mpi.Request, error) {
	if src != mpi.AnySource {
		if err := c.checkPeer(src); err != nil {
			return nil, err
		}
	}
	return &request{comm: c, src: src, tag: tag, isRecv: true}, nil
}

// SentCounts implements mpi.CountTracker.
func (c *Comm) SentCounts() []uint64 { return c.sent.snapshot(c.world.size) }

// RecvCounts implements mpi.CountTracker.
func (c *Comm) RecvCounts() []uint64 { return c.recv.snapshot(c.world.size) }

// resetCounts zeroes the per-peer totals at an epoch boundary (Resume):
// the purged traffic will never be received, so carrying its counts
// forward would wedge every future bookmark exchange.
func (c *Comm) resetCounts() {
	c.sent.reset()
	c.recv.reset()
}

// PendingMessages returns the number of deposited-but-unreceived messages
// for this rank. The checkpoint coordinator uses it in tests to verify
// quiescence.
func (c *Comm) PendingMessages() int {
	return c.world.table.pending(c.rank)
}

// request implements mpi.Request for simmpi operations.
type request struct {
	comm   *Comm
	src    int
	tag    int
	isRecv bool

	mu   sync.Mutex
	done bool
	st   mpi.Status
	msg  mpi.Message
	err  error
}

var _ mpi.Request = (*request)(nil)

// Wait blocks until the operation completes and returns the delivered
// message (zero for sends), its status, and any error. Buffer ownership
// transfers to the caller with the message (see mpi.Message.Data).
func (r *request) Wait() (mpi.Message, mpi.Status, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return r.msg, r.st, r.err
	}
	msg, err := r.comm.Recv(r.src, r.tag)
	r.done = true
	r.err = err
	if err == nil {
		r.msg = msg
		r.st = statusOf(msg)
	}
	return r.msg, r.st, r.err
}

// Test polls for completion without blocking.
func (r *request) Test() (bool, mpi.Message, mpi.Status, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return true, r.msg, r.st, r.err
	}
	msg, ok, err := r.comm.world.table.tryReceive(r.comm.rank, r.src, r.tag)
	if !ok {
		return false, mpi.Message{}, mpi.Status{}, nil
	}
	r.done = true
	r.err = err
	if err != nil {
		r.comm.fireHandler(err)
	}
	if err == nil {
		r.comm.noteRecv(msg.Source)
		r.msg = msg
		r.st = statusOf(msg)
	}
	return true, r.msg, r.st, r.err
}
