// Package simmpi is the message-passing runtime substituting for Open MPI
// in this reproduction: a World of ranks executing as goroutines inside
// one process, communicating through matched mailboxes with MPI
// point-to-point semantics (FIFO per (source, tag), wildcard receives,
// buffered eager sends, non-blocking requests).
//
// The runtime also provides the failure surface the paper's experimental
// framework needs: any rank can be killed at any time (fail-stop), after
// which its own operations return mpi.ErrKilled, messages sent to it are
// dropped, and receives posted against it complete with mpi.ErrPeerDead.
// An entire World can be aborted, unblocking every rank with
// mpi.ErrAborted — this is how the orchestrator tears a job down when a
// whole replica sphere has died and a restart from checkpoint is needed.
//
// The runtime is sized for the paper's operating point: worlds of 100k+
// virtual ranks. Mailboxes live in a lock-striped shard table (see
// table.go), liveness is a compact atomic bitset, and every liveness
// transition costs O(parked waiters + ranks with traffic), never O(world
// size).
package simmpi

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mpi"
	"repro/internal/obs"
)

// World is a set of communicating ranks, the analogue of an MPI job's
// MPI_COMM_WORLD plus its runtime.
type World struct {
	size      int
	sendDelay time.Duration
	table     *mboxTable
	comms     []*Comm

	// pool is the payload buffer arena; nil when pooling is disabled
	// (mpi.WithoutPooling), in which case every send allocates fresh.
	pool *arena

	dead        *atomicBitset
	alive       atomic.Int64
	aborted     atomic.Bool
	interrupted atomic.Bool

	// deathSeq increments on every kill; communicators compare it
	// against their per-comm acknowledgement watermark to decide whether
	// an unacknowledged failure should fail wildcard operations with
	// mpi.ErrFailurePending (only when an errhandler is installed).
	deathSeq atomic.Uint64

	// agreeGate and shrinkGate host the two fault-tolerant collectives
	// (mpi.Comm.Agree / Shrink): live-arrival barriers that kills excuse
	// instead of wedging.
	agreeGate  *ftGate
	shrinkGate *ftGate

	// livenessWakeups counts registered waiters notified by liveness
	// broadcasts (Kill/Abort/Interrupt/Resume) — an upper bound on
	// goroutines unparked (see LivenessWakeups). The epoch-gate
	// regression tests pin this to the number of parked waiters, proving
	// transitions do not scale with world size.
	livenessWakeups atomic.Uint64

	// Telemetry. reg defaults to a fresh private registry; mpi.WithObs
	// injects a shared one (or nil to disable entirely). flight is the
	// bounded forensic recorder (mpi.WithFlight), nil when disabled.
	reg    *obs.Registry
	met    worldMetrics
	flight *obs.Recorder
}

// worldMetrics holds the runtime's instruments, resolved once at world
// construction so hot paths pay a single atomic add (or a nil check when
// telemetry is disabled).
type worldMetrics struct {
	sends      *obs.Counter // physical messages accepted from senders
	recvs      *obs.Counter // messages matched by receivers
	sendBytes  *obs.Counter // payload bytes pushed by senders
	drops      *obs.Counter // sends discarded because the peer was dead
	kills      *obs.Counter // fail-stops (replaces the old ad-hoc deaths counter)
	aborts     *obs.Counter // world teardowns
	interrupts *obs.Counter // epoch pauses for in-place recovery
	revives    *obs.Counter // dead ranks brought back by Revive
	mailboxHWM *obs.Gauge   // deepest unmatched-message backlog of any rank

	// Zero-copy path instruments.
	bytesPooled  *obs.Counter // payload bytes carried in arena buffers
	copiesElided *obs.Counter // deep copies avoided by shared (COW) sends
}

func newWorldMetrics(reg *obs.Registry) worldMetrics {
	return worldMetrics{
		sends:        reg.Counter("simmpi_sends_total"),
		recvs:        reg.Counter("simmpi_recvs_total"),
		sendBytes:    reg.Counter("simmpi_send_bytes_total"),
		drops:        reg.Counter("simmpi_drops_total"),
		kills:        reg.Counter("simmpi_kills_total"),
		aborts:       reg.Counter("simmpi_aborts_total"),
		interrupts:   reg.Counter("simmpi_interrupts_total"),
		revives:      reg.Counter("simmpi_revives_total"),
		mailboxHWM:   reg.Gauge("simmpi_mailbox_depth_hwm"),
		bytesPooled:  reg.Counter("simmpi_bytes_pooled_total"),
		copiesElided: reg.Counter("simmpi_copies_elided_total"),
	}
}

// Option configures a World. It is the shared mpi.Option surface: the
// same option list a caller hands to NewWorld also configures
// redundancy.Wrap, each constructor applying the fields it understands.
type Option = mpi.Option

// WithSendDelay makes every physical Send cost the sender the given
// latency before the message is deposited. In-process channel transfer is
// orders of magnitude faster than a cluster interconnect; this option
// restores a realistic communication/computation ratio α and, because the
// redundancy layer fans each virtual send into r physical sends, it makes
// communication time dilate linearly in the redundancy degree exactly as
// Eq. 1 of the paper models.
//
// Deprecated: use mpi.WithSendDelay.
func WithSendDelay(d time.Duration) Option { return mpi.WithSendDelay(d) }

// WithObs registers the world's runtime instruments (message, byte,
// drop, kill, abort counters and the mailbox-depth high-water mark) in
// the given registry, so an orchestrator can aggregate them with the
// rest of a job's telemetry. Without this option each world keeps a
// private registry, readable via Obs. Passing nil disables the world's
// telemetry entirely (the no-op benchmark baseline); note Deaths then
// reads as zero.
//
// Deprecated: use mpi.WithObs.
func WithObs(reg *obs.Registry) Option { return mpi.WithObs(reg) }

// NewWorld creates a world with n ranks, all alive. Options are the
// shared mpi.Option set; NewWorld applies SendDelay, Obs, and pooling
// and ignores the redundancy-layer fields (degree, hash comparison,
// corrupt ranks), so one option list can configure the whole stack.
//
// Construction is cheap per rank: mailboxes materialize lazily in the
// shard table on first traffic, and per-peer counters are dense arrays
// only below denseCountThreshold ranks, so a 100k-rank world costs
// megabytes, not the O(n²) the dense layout would.
func NewWorld(n int, opts ...Option) (*World, error) {
	if n <= 0 {
		return nil, fmt.Errorf("simmpi: world size %d: %w", n, mpi.ErrInvalidRank)
	}
	o := mpi.ResolveOptions(opts)
	w := &World{
		size:      n,
		sendDelay: o.SendDelay,
		comms:     make([]*Comm, n),
		dead:      newAtomicBitset(n),
	}
	w.alive.Store(int64(n))
	w.table = newMboxTable(w, n)
	if !o.NoPooling {
		w.pool = newArena()
	}
	if o.ObsSet {
		w.reg = o.Obs
	} else {
		w.reg = obs.NewRegistry()
	}
	w.met = newWorldMetrics(w.reg)
	w.flight = o.Flight
	w.agreeGate = newFtGate(w)
	w.shrinkGate = newFtGate(w)
	dense := n <= denseCountThreshold
	for i := range w.comms {
		c := &Comm{world: w, rank: i}
		if dense {
			c.sent.dense = make([]atomic.Uint64, n)
			c.recv.dense = make([]atomic.Uint64, n)
		}
		w.comms[i] = c
	}
	return w, nil
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Comm returns the communicator endpoint for the given rank.
func (w *World) Comm(rank int) (*Comm, error) {
	if rank < 0 || rank >= w.size {
		return nil, fmt.Errorf("simmpi: rank %d of %d: %w", rank, w.size, mpi.ErrInvalidRank)
	}
	return w.comms[rank], nil
}

// Endpoint implements mpi.Transport; it is Comm behind the
// backend-neutral interface.
func (w *World) Endpoint(rank int) (mpi.Comm, error) { return w.Comm(rank) }

var _ mpi.Transport = (*World)(nil)

// errIfDown returns the error that should abort an operation by owner
// waiting on src, or nil if the owner may keep waiting.
func (w *World) errIfDown(owner, src int) error {
	if w.aborted.Load() {
		return mpi.ErrAborted
	}
	if w.dead.get(owner) {
		return mpi.ErrKilled
	}
	if w.interrupted.Load() {
		return mpi.ErrInterrupted
	}
	if src != mpi.AnySource && w.dead.get(src) {
		return mpi.ErrPeerDead
	}
	if src == mpi.AnySource && w.comms[owner].failurePending() {
		// ULFM wildcard rule: with an errhandler installed, a wildcard
		// must not block past an unacknowledged failure — the dead rank
		// might have been the sender it was waiting for.
		return mpi.ErrFailurePending
	}
	return nil
}

// Kill marks a rank failed (fail-stop). Its pending and future operations
// error, messages addressed to it are dropped, and receives posted
// against it by peers fail with mpi.ErrPeerDead. Killing a dead rank is a
// no-op.
//
// Cost is O(parked waiters): the dead bit is one CAS, and the wakeup
// broadcast visits only shards advertising waiters. The bit is published
// (sequentially consistent) before the waiter flags are read, and
// waiters register before their final liveness check, so a kill can
// never slip between a waiter's check and its park.
func (w *World) Kill(rank int) {
	if rank < 0 || rank >= w.size {
		return
	}
	if w.dead.set(rank) {
		return
	}
	w.alive.Add(-1)
	w.deathSeq.Add(1)
	w.met.kills.Inc()
	w.flight.Emit("dead", rank, -1, 0, 0)
	w.livenessWakeups.Add(uint64(w.table.wakeAll()))
	w.agreeGate.onKill(rank)
	w.shrinkGate.onKill(rank)
}

// Alive reports whether the rank is still alive.
func (w *World) Alive(rank int) bool {
	if rank < 0 || rank >= w.size {
		return false
	}
	return !w.dead.get(rank)
}

// AliveCount returns the number of live ranks in O(1).
func (w *World) AliveCount() int { return int(w.alive.Load()) }

// ForEachDead calls fn for every dead rank in ascending order, skipping
// fully-live regions 64 ranks at a time. This is the O(failures) sweep
// the recovery paths use instead of polling Alive across the world.
// Concurrent Kill/Revive make the iteration a racy view, not a snapshot;
// call it from a quiesced world (epoch gate held, injector stopped) when
// an exact set is needed.
func (w *World) ForEachDead(fn func(rank int)) { w.dead.forEachSet(fn) }

// ForEachLive calls fn for every live rank in ascending order. The same
// snapshot caveat as ForEachDead applies.
func (w *World) ForEachLive(fn func(rank int)) { w.dead.forEachClear(fn) }

// Deaths returns the number of kills so far, read from the
// simmpi_kills_total counter (zero when telemetry is disabled via
// WithObs(nil)).
func (w *World) Deaths() int { return int(w.met.kills.Value()) }

// LivenessWakeups returns the cumulative number of registered waiters
// notified by liveness broadcasts (Kill, Abort, Interrupt, Resume). A
// waiter counts from register to deregister, so one that is awake
// re-scanning when the broadcast lands is included even though no
// goroutine is unparked for it: the value is an upper bound on actual
// wakeups, exact when all waiters are quiescently parked. Regression
// tests arrange that regime and use it to pin the wakeup cost of an
// epoch transition to the number of parked waiters, independent of
// world size.
func (w *World) LivenessWakeups() uint64 { return w.livenessWakeups.Load() }

// Obs returns the registry holding this world's runtime instruments
// (nil when telemetry was disabled with WithObs(nil)).
func (w *World) Obs() *obs.Registry { return w.reg }

// Abort tears the world down: every blocked or future operation on any
// rank returns mpi.ErrAborted. Used on job failure before a restart.
func (w *World) Abort() {
	if w.aborted.Swap(true) {
		return
	}
	w.met.aborts.Inc()
	w.flight.Emit("abort", -1, -1, 0, 0)
	w.livenessWakeups.Add(uint64(w.table.wakeAll()))
	w.agreeGate.wake()
	w.shrinkGate.wake()
}

// Aborted reports whether the world has been aborted.
func (w *World) Aborted() bool { return w.aborted.Load() }

// Interrupt pauses the current epoch: every blocked or future operation
// on any rank returns mpi.ErrInterrupted (messages already queued can
// still be matched; new deposits are dropped). Unlike Abort the world
// stays usable — the orchestrator revives dead ranks, then calls Resume
// to start a fresh epoch in which every rank restarts from the last
// checkpoint. Interrupting an interrupted or aborted world is a no-op.
func (w *World) Interrupt() {
	if w.aborted.Load() || w.interrupted.Swap(true) {
		return
	}
	w.met.interrupts.Inc()
	w.flight.Emit("interrupt", -1, -1, 0, 0)
	w.livenessWakeups.Add(uint64(w.table.wakeAll()))
	w.agreeGate.wake()
	w.shrinkGate.wake()
}

// Interrupted reports whether the world is paused for recovery.
func (w *World) Interrupted() bool { return w.interrupted.Load() }

// Revive brings a dead rank back (the respawn half of rejoin support).
// The rank's mailbox is wiped: its previous incarnation's unread traffic
// belongs to the interrupted epoch. Only meaningful while the world is
// interrupted — reviving mid-epoch would desynchronise peers that
// already observed the death. Reviving a live rank is a no-op.
func (w *World) Revive(rank int) {
	if rank < 0 || rank >= w.size {
		return
	}
	if !w.dead.clear(rank) {
		return
	}
	w.alive.Add(1)
	w.met.revives.Inc()
	w.flight.Emit("revive", rank, -1, 0, 0)
	w.table.purgeRank(rank)
}

// Resume ends an interrupt and starts a fresh epoch: every mailbox with
// traffic is purged (in-flight messages of the interrupted epoch must
// not leak into the recomputation) and every communicator's per-peer
// sent/received totals are zeroed so the bookmark-exchange quiescence
// check starts from a symmetric state. Callers must ensure all rank
// goroutines are parked before resuming. The purge walks only the
// shards' dirty lists — ranks untouched since the last sweep cost
// nothing.
func (w *World) Resume() {
	if !w.interrupted.Load() {
		return
	}
	w.table.purgeAll()
	for _, c := range w.comms {
		c.resetCounts()
	}
	w.interrupted.Store(false)
	w.flight.Emit("resume", -1, -1, 0, 0)
	w.livenessWakeups.Add(uint64(w.table.wakeAll()))
	w.agreeGate.reset()
	w.shrinkGate.reset()
}

// RankError pairs a rank with the error its function returned.
type RankError struct {
	Rank int
	Err  error
}

func (e RankError) Error() string { return fmt.Sprintf("rank %d: %v", e.Rank, e.Err) }

func (e RankError) Unwrap() error { return e.Err }

// Run executes fn once per rank, each on its own goroutine, and waits for
// all of them. It returns the first "real" failure: errors caused by
// kills and aborts (mpi.ErrKilled, mpi.ErrPeerDead, mpi.ErrAborted) are
// expected under failure injection and reported via the second return
// value instead.
func (w *World) Run(fn func(c *Comm) error) (appErr error, failureErrs []RankError) {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	wg.Add(w.size)
	for i := 0; i < w.size; i++ {
		go func(rank int) {
			defer wg.Done()
			errs[rank] = fn(w.comms[rank])
		}(i)
	}
	wg.Wait()
	for rank, err := range errs {
		if err == nil {
			continue
		}
		if isFailureErr(err) {
			failureErrs = append(failureErrs, RankError{Rank: rank, Err: err})
			continue
		}
		if appErr == nil {
			appErr = RankError{Rank: rank, Err: err}
		}
	}
	return appErr, failureErrs
}
